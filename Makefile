GO ?= go
BENCH_JSON ?= BENCH_PR1.json

.PHONY: all build test race vet bench clean

all: build test

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

vet:
	$(GO) vet ./...

# Runs every testing.B wrapper once with -benchmem and records the
# results as machine-readable JSON (one object per benchmark with
# ns/op, B/op, allocs/op) in $(BENCH_JSON). The raw go output is kept
# alongside in $(BENCH_JSON:.json=.txt).
bench:
	$(GO) test -run '^$$' -bench . -benchmem -count 1 . | tee $(BENCH_JSON:.json=.txt)
	awk 'BEGIN { print "[" } \
	  /^Benchmark/ { \
	    if (seen++) printf ",\n"; \
	    name = $$1; sub(/-[0-9]+$$/, "", name); \
	    printf "  {\"name\": \"%s\", \"iterations\": %s", name, $$2; \
	    for (i = 3; i < NF; i += 2) { \
	      unit = $$(i + 1); gsub(/\//, "_per_", unit); \
	      printf ", \"%s\": %s", unit, $$i; \
	    } \
	    printf "}"; \
	  } \
	  END { print "\n]" }' $(BENCH_JSON:.json=.txt) > $(BENCH_JSON)

clean:
	rm -f $(BENCH_JSON) $(BENCH_JSON:.json=.txt)
	$(GO) clean ./...
