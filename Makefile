GO ?= go
BENCH_JSON ?= BENCH_PR4.json
VERSION ?= $(shell git describe --tags --always --dirty 2>/dev/null || echo dev)
LDFLAGS = -ldflags "-X main.version=$(VERSION)"

.PHONY: all build test race race-focus vet bench run-server clean

all: build test

# Stamps each binary's `version` via -X so `vmat-* -version` reports the
# commit it was built from.
build:
	$(GO) build $(LDFLAGS) ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

# The race-sensitive subset: packages with real concurrency (per-slot
# step goroutines, parallel trial workers, the job queue, the result
# store's shared journal, the sweep orchestrator's fan-out) plus the
# fault schedule and the engine's deadline/degradation paths, which both
# run under the per-slot fan-out. CI runs this instead of the full -race
# sweep to keep the loop fast.
race-focus:
	$(GO) test -race ./internal/simnet ./internal/experiments ./internal/service ./internal/faults ./internal/core ./internal/store ./internal/sweep

vet:
	$(GO) vet ./...

# Builds and starts the aggregation service on :8080 (override with
# ADDR=:9090 make run-server).
ADDR ?= :8080
run-server:
	$(GO) run $(LDFLAGS) ./cmd/vmat-server -addr $(ADDR)

# Runs every testing.B wrapper once with -benchmem and records the
# results as machine-readable JSON (one object per benchmark with
# ns/op, B/op, allocs/op) in $(BENCH_JSON). The raw go output is kept
# alongside in $(BENCH_JSON:.json=.txt).
bench:
	$(GO) test -run '^$$' -bench . -benchmem -count 1 . | tee $(BENCH_JSON:.json=.txt)
	awk 'BEGIN { print "[" } \
	  /^Benchmark/ { \
	    if (seen++) printf ",\n"; \
	    name = $$1; sub(/-[0-9]+$$/, "", name); \
	    printf "  {\"name\": \"%s\", \"iterations\": %s", name, $$2; \
	    for (i = 3; i < NF; i += 2) { \
	      unit = $$(i + 1); gsub(/\//, "_per_", unit); \
	      printf ", \"%s\": %s", unit, $$i; \
	    } \
	    printf "}"; \
	  } \
	  END { print "\n]" }' $(BENCH_JSON:.json=.txt) > $(BENCH_JSON)

clean:
	rm -f $(BENCH_JSON) $(BENCH_JSON:.json=.txt)
	$(GO) clean ./...
