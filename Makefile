GO ?= go
BENCH_JSON ?= BENCH_PR6.json
CLUSTER_BENCH_JSON ?= BENCH_PR7.json
STORE_BENCH_JSON ?= BENCH_PR9.json
TENANT_BENCH_JSON ?= BENCH_PR10.json
VERSION ?= $(shell git describe --tags --always --dirty 2>/dev/null || echo dev)
LDFLAGS = -ldflags "-X main.version=$(VERSION)"

.PHONY: all build test race race-focus vet bench bench-cluster bench-store bench-tenant run-server run-worker smoke-cluster smoke-chaos smoke-store smoke-tenants clean

all: build test

# Stamps each binary's `version` via -X so `vmat-* -version` reports the
# commit it was built from.
build:
	$(GO) build $(LDFLAGS) ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

# The race-sensitive subset: packages with real concurrency (parallel
# trial workers, the job queue, the result store's shared journal, the
# sweep orchestrator's fan-out, the cluster coordinator/worker plane and
# its shared backoff helper). The simnet event loop itself is
# single-threaded, but simnet/core/faults stay in this list because
# RunTrials drives many engine executions — each with its own network,
# fault schedule, and deadline/degradation paths — concurrently, which
# is exactly where accidental sharing between executions would surface.
# internal/chaos rides along for its recovery paths: the harness's own
# poll/fire loop is single-threaded, but store/sweep/cluster recovery
# (WAL replay racing a live listener and re-registering workers) is not.
# CI runs this instead of the full -race sweep to keep the loop fast.
race-focus:
	$(GO) test -race ./internal/simnet ./internal/experiments ./internal/service ./internal/faults ./internal/core ./internal/store ./internal/sweep ./internal/cluster ./internal/backoff ./internal/shard ./internal/wire ./internal/chaos ./internal/tenant

vet:
	$(GO) vet ./...

# Builds and starts the aggregation service on :8080 (override with
# ADDR=:9090 make run-server). Add CLUSTER=1 to host the distributed
# execution plane for vmat-worker fleets.
ADDR ?= :8080
CLUSTER ?=
run-server:
	$(GO) run $(LDFLAGS) ./cmd/vmat-server -addr $(ADDR) $(if $(CLUSTER),-cluster)

# Starts one worker against a cluster-mode server (override with
# SERVER=http://host:8080 WORKER_NAME=lab-3 make run-worker). Run it as
# many times as you want concurrent units in flight.
SERVER ?= http://localhost:8080
WORKER_NAME ?= $(shell hostname)-$$$$
run-worker:
	$(GO) run $(LDFLAGS) ./cmd/vmat-worker -server $(SERVER) -name $(WORKER_NAME)

# Two-process smoke test: real vmat-server -cluster and a real
# vmat-worker process, one job dispatched through the fleet, clean
# SIGTERM drains for both. CI runs this against every push.
smoke-cluster: build
	./scripts/smoke-cluster.sh

# Deterministic crash harness: SIGKILLs a real vmat-server mid-sweep
# under a 4-worker fleet, restarts it, and verifies the recovered run's
# CSV is bit-identical to an undisturbed baseline with no stored cell
# re-executed. Seeded — rerun with SEED=n to reproduce a failure.
smoke-chaos: build
	./scripts/chaos-cluster.sh

# Storage-engine soak: a real vmat-server with a tiny segment threshold
# writes enough results to roll several journal segments, gets SIGKILLed
# mid-write, is verified offline with vmat-store, restarted, and every
# key plus a bit-identical CSV export is checked against the pre-kill
# baseline. CI runs this against every push.
smoke-store: build
	./scripts/smoke-store.sh

# Multi-tenant front-door smoke test: a real vmat-server with a keyfile
# of two tenants, one rate-limited into 429 + Retry-After while the
# other keeps submitting, plus 401 for bad keys, shed-tier /healthz,
# per-tenant metrics, and a SIGHUP keyfile hot reload. CI runs this
# against every push.
smoke-tenants: build
	./scripts/smoke-tenants.sh

# Runs every testing.B wrapper once with -benchmem and records the
# results as machine-readable JSON in $(BENCH_JSON): an "env" object
# (go version, GOOS/GOARCH, CPU model, GOMAXPROCS) so the numbers are
# interpretable across machines, and a "benchmarks" array with one
# object per benchmark (ns/op, B/op, allocs/op, custom metrics). The
# raw go output is kept alongside in $(BENCH_JSON:.json=.txt).
bench:
	$(GO) test -run '^$$' -bench . -benchmem -count 1 . | tee $(BENCH_JSON:.json=.txt)
	awk -v goversion="$$($(GO) env GOVERSION)" -f scripts/bench-json.awk $(BENCH_JSON:.json=.txt) > $(BENCH_JSON)

# The distributed-plane comparisons only: the same job batch dispatched
# to the local pool vs a two-worker HTTP-polling fleet, and one large
# scenario dispatched at shard granularities whole/64/256/1024 trials
# across 1/2/4 wire-streaming workers. -benchtime 2x bounds the sweep's
# wall time; the JSON records GOMAXPROCS, without which the speedup
# columns are meaningless (a single-core runner cannot show one).
bench-cluster:
	$(GO) test -run '^$$' -bench 'BenchmarkClusterDispatch|BenchmarkShardGranularity' -benchmem -benchtime 2x -count 1 . | tee $(CLUSTER_BENCH_JSON:.json=.txt)
	awk -v goversion="$$($(GO) env GOVERSION)" -f scripts/bench-json.awk $(CLUSTER_BENCH_JSON:.json=.txt) > $(CLUSTER_BENCH_JSON)

# The storage-engine numbers only: reopen time via index snapshot vs
# full journal replay at 10k/100k/1M entries (the snapshot's ≥10x edge
# is the headline), and warm hit latency at the same scales. Reopen runs
# -benchtime 3x because each iteration is a whole million-entry open;
# hit latency gets 2000x so per-Get numbers aren't cold-cache noise.
bench-store:
	$(GO) test -run '^$$' -bench BenchmarkStoreReopen -benchmem -benchtime 3x -count 1 -timeout 30m . | tee $(STORE_BENCH_JSON:.json=.txt)
	$(GO) test -run '^$$' -bench BenchmarkStoreHitLatency -benchmem -benchtime 2000x -count 1 -timeout 30m . | tee -a $(STORE_BENCH_JSON:.json=.txt)
	awk -v goversion="$$($(GO) env GOVERSION)" -f scripts/bench-json.awk $(STORE_BENCH_JSON:.json=.txt) > $(STORE_BENCH_JSON)

# The front-door numbers only: admission overhead open vs keyed on a
# cache-warm job (the keyed path must stay within 5% of open),
# saturated submission from 1 vs 8 tenants, and the deficit-round-robin
# drain-share ratios (fair_min/fair_max must stay within 2x of each
# tenant's weight share; the benchmark fails itself otherwise).
bench-tenant:
	$(GO) test -run '^$$' -bench BenchmarkTenantAdmission -benchmem -benchtime 200x -count 1 . | tee $(TENANT_BENCH_JSON:.json=.txt)
	awk -v goversion="$$($(GO) env GOVERSION)" -f scripts/bench-json.awk $(TENANT_BENCH_JSON:.json=.txt) > $(TENANT_BENCH_JSON)

clean:
	rm -f $(BENCH_JSON) $(BENCH_JSON:.json=.txt) $(CLUSTER_BENCH_JSON) $(CLUSTER_BENCH_JSON:.json=.txt) $(STORE_BENCH_JSON) $(STORE_BENCH_JSON:.json=.txt) $(TENANT_BENCH_JSON) $(TENANT_BENCH_JSON:.json=.txt)
	$(GO) clean ./...
