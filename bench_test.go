// Package repro benchmarks regenerate every evaluation artifact of the
// paper at benchmark-friendly scale, one testing.B target per figure or
// claim. Run the paper-scale versions with cmd/vmat-bench.
//
//	BenchmarkFig7MisRevocation      Figure 7  (mis-revocation vs theta)
//	BenchmarkFig8ApproxError        Figure 8  (synopsis approximation error)
//	BenchmarkCommComplexity         Section IX communication comparison
//	BenchmarkFloodingRounds         Section I  O(1) vs Omega(log n) rounds
//	BenchmarkPinpointing            Theorem 6  pinpointing cost
//	BenchmarkRevocationCampaign     Section I  >90% fewer key announcements
//	BenchmarkWormholeTreeFormation  Figure 2(c) hop-count vs timestamp
//	BenchmarkSOFChoking             Lemma 1   veto delivery under choking
//
// Micro-benchmarks cover the hot primitives underneath: MACs, synopsis
// derivation, one full honest execution, and one full pinpointing run.
package repro

import (
	"context"
	"errors"
	"fmt"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"testing"
	"time"

	"repro/internal/adversary"
	"repro/internal/backoff"
	"repro/internal/baseline"
	"repro/internal/cluster"
	"repro/internal/core"
	"repro/internal/crypto"
	"repro/internal/experiments"
	"repro/internal/keydist"
	"repro/internal/metrics"
	"repro/internal/service"
	"repro/internal/store"
	"repro/internal/synopsis"
	"repro/internal/tenant"
	"repro/internal/topology"
)

func BenchmarkFig7MisRevocation(b *testing.B) {
	cfg := experiments.Fig7Config{
		NetworkSizes:    []int{1000},
		MaliciousCounts: []int{1, 20},
		Thetas:          []int{1, 7, 27},
		Trials:          2,
		Params:          keydist.PaperParams(),
		Seed:            2011,
	}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		rows, err := experiments.RunFig7(cfg)
		if err != nil {
			b.Fatal(err)
		}
		if len(rows) == 0 {
			b.Fatal("no rows")
		}
	}
}

func BenchmarkFig8ApproxError(b *testing.B) {
	cfg := experiments.Fig8Config{Synopses: 100, Counts: []int{100, 1000}, Trials: 20, Seed: 2011}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if rows := experiments.RunFig8(cfg); len(rows) != 2 {
			b.Fatal("bad row count")
		}
	}
}

func BenchmarkCommComplexity(b *testing.B) {
	cfg := experiments.CommConfig{NetworkSizes: []int{200}, Synopses: 100, Seed: 2011}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		rows, err := experiments.RunComm(cfg)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(float64(rows[0].VMATMaxNodeBytes), "vmat_max_node_B")
		b.ReportMetric(float64(rows[0].NaiveMaxNodeBytes), "naive_max_node_B")
	}
}

func BenchmarkFloodingRounds(b *testing.B) {
	cfg := experiments.RoundsConfig{NetworkSizes: []int{200}, Repeats: 3, Seed: 2011}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		rows, err := experiments.RunRounds(cfg)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(rows[0].VMATRounds, "vmat_rounds")
		b.ReportMetric(float64(rows[0].SamplingRounds), "sampling_rounds")
	}
}

func BenchmarkPinpointing(b *testing.B) {
	cfg := experiments.PinpointConfig{NetworkSizes: []int{60}, Trials: 2, Seed: 2011}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		rows, err := experiments.RunPinpoint(cfg)
		if err != nil {
			b.Fatal(err)
		}
		for _, r := range rows {
			if r.Sound != r.Triggered {
				b.Fatalf("unsound revocation in %s", r.Strategy)
			}
		}
	}
}

func BenchmarkRevocationCampaign(b *testing.B) {
	cfg := experiments.CampaignConfig{N: 40, Thetas: []int{7}, MaxExecutions: 60, Trials: 1, Seed: 2011}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		rows, err := experiments.RunCampaign(cfg)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(rows[0].AvgRingCoverage, "ring_coverage")
	}
}

func BenchmarkWormholeTreeFormation(b *testing.B) {
	cfg := experiments.WormholeConfig{NetworkSizes: []int{60}, Trials: 2, Seed: 2011}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		rows, err := experiments.RunWormhole(cfg)
		if err != nil {
			b.Fatal(err)
		}
		if rows[0].TimestampInvalid != 0 {
			b.Fatal("timestamp formation broke")
		}
	}
}

func BenchmarkSOFChoking(b *testing.B) {
	cfg := experiments.ChokingConfig{N: 50, MaliciousCounts: []int{2}, Trials: 3, Seed: 2011}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		rows, err := experiments.RunChoking(cfg)
		if err != nil {
			b.Fatal(err)
		}
		if rows[0].VetoDelivered != rows[0].Trials {
			b.Fatal("Lemma 1 violated")
		}
	}
}

func BenchmarkMultipathLossAblation(b *testing.B) {
	cfg := experiments.LossConfig{N: 60, LossRates: []float64{0.1}, Trials: 4, Seed: 2011}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		rows, err := experiments.RunLoss(cfg)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(float64(rows[0].MultiCorrect), "multi_correct")
		b.ReportMetric(float64(rows[0].SingleCorrect), "single_correct")
	}
}

// BenchmarkServiceSubmitToDone measures the full service round trip:
// submit a scenario job to the manager's bounded queue, execute it on
// the worker pool, and observe completion — the latency an HTTP client
// of vmat-server sees between POST /v1/jobs and the job turning done.
func BenchmarkServiceSubmitToDone(b *testing.B) {
	mgr := service.New(service.Config{
		QueueSize: 8,
		Workers:   1,
		Retain:    8,
		Metrics:   metrics.New(),
	})
	defer mgr.Drain(context.Background())
	spec := service.Spec{ScenarioConfig: experiments.ScenarioConfig{
		N: 30, Topology: "geometric", Query: "min",
		Attack: "drop", Malicious: 1,
		Trials: 2, Seed: 7, Workers: 1,
	}}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		job, err := mgr.Submit(spec)
		if err != nil {
			b.Fatal(err)
		}
		<-job.Done()
		if job.Status() != service.StatusDone {
			b.Fatalf("job finished %s: %s", job.Status(), job.Err())
		}
	}
}

// BenchmarkStoreHitVsColdExecution quantifies the result store's win:
// "cold" executes a paper-style scenario through the service worker
// pool, "warm" serves the identical spec from the content-addressed
// store. The warm path is expected to be orders of magnitude (>=100x)
// faster since it replaces an engine run with one index lookup.
func BenchmarkStoreHitVsColdExecution(b *testing.B) {
	spec := service.Spec{ScenarioConfig: experiments.ScenarioConfig{
		N: 60, Topology: "geometric", Query: "min",
		Attack: "drop", Malicious: 2,
		Trials: 5, Seed: 2011, Workers: 1,
	}}

	b.Run("cold", func(b *testing.B) {
		mgr := service.New(service.Config{QueueSize: 8, Workers: 1, Retain: 8, Metrics: metrics.New()})
		defer mgr.Drain(context.Background())
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			job, err := mgr.Submit(spec)
			if err != nil {
				b.Fatal(err)
			}
			<-job.Done()
			if job.Status() != service.StatusDone {
				b.Fatalf("job finished %s: %s", job.Status(), job.Err())
			}
		}
	})

	b.Run("warm", func(b *testing.B) {
		st, err := store.Open(b.TempDir(), store.Config{})
		if err != nil {
			b.Fatal(err)
		}
		defer st.Close()
		mgr := service.New(service.Config{QueueSize: 8, Workers: 1, Retain: 8, Metrics: metrics.New(), Store: st})
		defer mgr.Drain(context.Background())
		// Prime the store with one real execution.
		job, err := mgr.Submit(spec)
		if err != nil {
			b.Fatal(err)
		}
		<-job.Done()
		if job.Status() != service.StatusDone {
			b.Fatalf("priming job finished %s: %s", job.Status(), job.Err())
		}
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			job, err := mgr.Submit(spec)
			if err != nil {
				b.Fatal(err)
			}
			<-job.Done()
			if v := job.View(); v.Status != service.StatusDone || v.Source != "store" {
				b.Fatalf("job not served from store: %+v", v)
			}
		}
	})
}

// BenchmarkClusterDispatch compares the same batch of jobs dispatched
// to the service's local pool vs a two-worker fleet over loopback HTTP
// (registration, leases, heartbeats, CRC-verified uploads included).
// The fleet pays the wire cost per unit but runs units concurrently, so
// this is the break-even measurement for `make bench-cluster`:
// distribution wins once units are expensive relative to the protocol.
func BenchmarkClusterDispatch(b *testing.B) {
	spec := service.Spec{ScenarioConfig: experiments.ScenarioConfig{
		N: 40, Topology: "geometric", Query: "min",
		Attack: "drop", Malicious: 1,
		Trials: 4, Seed: 7, Workers: 1,
	}}
	const batch = 6

	runBatch := func(b *testing.B, mgr *service.Manager) {
		b.Helper()
		jobs := make([]*service.Job, 0, batch)
		for i := 0; i < batch; i++ {
			job, err := mgr.Submit(spec)
			if err != nil {
				b.Fatal(err)
			}
			jobs = append(jobs, job)
		}
		for _, job := range jobs {
			<-job.Done()
			if job.Status() != service.StatusDone {
				b.Fatalf("job finished %s: %s", job.Status(), job.Err())
			}
		}
	}

	b.Run("local-pool", func(b *testing.B) {
		mgr := service.New(service.Config{QueueSize: 2 * batch, Workers: 2, Retain: 2 * batch, Metrics: metrics.New()})
		defer mgr.Drain(context.Background())
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			runBatch(b, mgr)
		}
	})

	b.Run("two-workers", func(b *testing.B) {
		coord := cluster.NewCoordinator(cluster.CoordinatorConfig{Metrics: metrics.New()})
		defer coord.Close()
		mux := http.NewServeMux()
		cluster.RegisterHTTP(mux, coord)
		srv := httptest.NewServer(mux)
		defer srv.Close()
		ctx, cancel := context.WithCancel(context.Background())
		defer cancel()
		for i := 0; i < 2; i++ {
			w := cluster.NewWorker(cluster.WorkerConfig{
				Server: srv.URL,
				Name:   fmt.Sprintf("bench-%d", i),
				Poll:   backoff.Policy{Base: time.Millisecond, Max: 5 * time.Millisecond},
			})
			go w.Run(ctx)
		}
		for coord.WorkersStatus().Connected < 2 {
			time.Sleep(time.Millisecond)
		}
		mgr := service.New(service.Config{QueueSize: 2 * batch, Workers: 2 * batch, Retain: 2 * batch, Metrics: metrics.New(), Cluster: coord})
		defer mgr.Drain(context.Background())
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			runBatch(b, mgr)
		}
	})
}

// BenchmarkShardGranularity measures the sharded streaming fabric's
// reason to exist: ONE large scenario (1024 trials, spec.Workers=1 so a
// single job cannot parallelize inside the trial loop) dispatched to
// wire-streaming fleets of 1/2/4 workers at shard granularities
// whole/64/256/1024 trials, against the serial local pool. Whole-unit
// dispatch cannot beat local no matter the fleet size — one unit, one
// worker — while 64-trial shards spread the same scenario across every
// conn; the gap between shard sizes prices the per-unit protocol
// overhead (grant + completion + merge) against lost parallelism.
func BenchmarkShardGranularity(b *testing.B) {
	spec := service.Spec{ScenarioConfig: experiments.ScenarioConfig{
		N: 24, Topology: "line", Query: "min", Attack: "none",
		Trials: 1024, Seed: 2011, Workers: 1,
	}}

	runOne := func(b *testing.B, mgr *service.Manager) {
		b.Helper()
		job, err := mgr.Submit(spec)
		if err != nil {
			b.Fatal(err)
		}
		<-job.Done()
		if job.Status() != service.StatusDone {
			b.Fatalf("job finished %s: %s", job.Status(), job.Err())
		}
	}

	b.Run("local-serial", func(b *testing.B) {
		mgr := service.New(service.Config{QueueSize: 4, Workers: 1, Retain: 4, Metrics: metrics.New()})
		defer mgr.Drain(context.Background())
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			runOne(b, mgr)
		}
	})

	for _, sh := range []int{0, 64, 256, 1024} {
		for _, nw := range []int{1, 2, 4} {
			name := fmt.Sprintf("shard=%d/workers=%d", sh, nw)
			if sh == 0 {
				name = fmt.Sprintf("shard=whole/workers=%d", nw)
			}
			b.Run(name, func(b *testing.B) {
				coord := cluster.NewCoordinator(cluster.CoordinatorConfig{ShardTrials: sh, Metrics: metrics.New()})
				defer coord.Close()
				if _, err := coord.StartWire("127.0.0.1:0"); err != nil {
					b.Fatal(err)
				}
				mux := http.NewServeMux()
				cluster.RegisterHTTP(mux, coord)
				srv := httptest.NewServer(mux)
				defer srv.Close()
				ctx, cancel := context.WithCancel(context.Background())
				defer cancel()
				for i := 0; i < nw; i++ {
					w := cluster.NewWorker(cluster.WorkerConfig{
						Server: srv.URL,
						Name:   fmt.Sprintf("bench-%d", i),
						Poll:   backoff.Policy{Base: time.Millisecond, Max: 5 * time.Millisecond},
					})
					go w.Run(ctx)
				}
				for coord.WorkersStatus().WireConnected < nw {
					time.Sleep(time.Millisecond)
				}
				mgr := service.New(service.Config{QueueSize: 4, Workers: 4, Retain: 4, Metrics: metrics.New(), Cluster: coord})
				defer mgr.Drain(context.Background())
				b.ReportAllocs()
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					runOne(b, mgr)
				}
			})
		}
	}
}

// benchController writes a keyfile with n tenants t0..t(n-1), keys
// key-0..key-(n-1), weights cycling 1..4, and returns the controller
// plus the resolved tenants.
func benchController(b *testing.B, n int) (*tenant.Controller, []*tenant.Tenant) {
	b.Helper()
	doc := `{"tenants": [`
	for i := 0; i < n; i++ {
		if i > 0 {
			doc += ","
		}
		doc += fmt.Sprintf(`{"id": "t%d", "key": "key-%d", "weight": %d}`, i, i, i%4+1)
	}
	doc += `]}`
	path := filepath.Join(b.TempDir(), "tenants.json")
	if err := os.WriteFile(path, []byte(doc), 0o600); err != nil {
		b.Fatal(err)
	}
	ctl, err := tenant.NewController(tenant.Config{Path: path, Metrics: metrics.New()})
	if err != nil {
		b.Fatal(err)
	}
	tenants := make([]*tenant.Tenant, n)
	for i := range tenants {
		t, err := ctl.Authenticate(fmt.Sprintf("key-%d", i))
		if err != nil {
			b.Fatal(err)
		}
		tenants[i] = t
	}
	return ctl, tenants
}

// BenchmarkTenantAdmission prices the multi-tenant front door, for
// `make bench-tenant` (BENCH_PR10.json):
//
//   - overhead/{open,keyed} is the admission tax: the same cache-warm
//     job submitted through a nil-keyfile manager (pre-tenancy path)
//     vs through authentication + rate bucket + fair queue. The
//     acceptance bar is keyed within 5% of open.
//   - saturation/tenants={1,8} drives a saturated single-worker queue
//     with 8 cache-warm jobs per iteration from 1 vs 8 tenants, with
//     queue-full retries — the end-to-end cost of contention at the
//     front door.
//   - drain-fairness/tenants=8 fills per-tenant backlogs (weights
//     cycling 1..4) and pops under deficit round robin, reporting each
//     tenant's drain share relative to its weight share; every tenant
//     must land within 2x (fair_min/fair_max ratios).
func BenchmarkTenantAdmission(b *testing.B) {
	spec := service.Spec{ScenarioConfig: experiments.ScenarioConfig{
		N: 30, Topology: "geometric", Query: "min",
		Attack: "drop", Malicious: 1,
		Trials: 2, Seed: 7, Workers: 1,
	}}

	// warmManager returns a manager whose store already holds spec's
	// result, so every benchmarked submission is a store hit and the
	// numbers price admission, not the engine.
	warmManager := func(b *testing.B, ctl *tenant.Controller) *service.Manager {
		b.Helper()
		st, err := store.Open(b.TempDir(), store.Config{DisableFsync: true})
		if err != nil {
			b.Fatal(err)
		}
		b.Cleanup(func() { st.Close() })
		mgr := service.New(service.Config{QueueSize: 8, Workers: 1, Retain: 16, Metrics: metrics.New(), Store: st, Tenants: ctl})
		b.Cleanup(func() { mgr.Drain(context.Background()) })
		job, err := mgr.Submit(spec)
		if err != nil {
			b.Fatal(err)
		}
		<-job.Done()
		if job.Status() != service.StatusDone {
			b.Fatalf("priming job finished %s: %s", job.Status(), job.Err())
		}
		return mgr
	}

	b.Run("overhead/open", func(b *testing.B) {
		mgr := warmManager(b, nil)
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			job, err := mgr.Submit(spec)
			if err != nil {
				b.Fatal(err)
			}
			<-job.Done()
		}
	})

	b.Run("overhead/keyed", func(b *testing.B) {
		ctl, tenants := benchController(b, 1)
		mgr := warmManager(b, ctl)
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			job, err := mgr.SubmitAs(tenants[0], spec)
			if err != nil {
				b.Fatal(err)
			}
			<-job.Done()
		}
	})

	for _, nt := range []int{1, 8} {
		b.Run(fmt.Sprintf("saturation/tenants=%d", nt), func(b *testing.B) {
			ctl, tenants := benchController(b, nt)
			mgr := warmManager(b, ctl)
			const batch = 8
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				jobs := make([]*service.Job, 0, batch)
				for j := 0; j < batch; j++ {
					for {
						job, err := mgr.SubmitAs(tenants[j%nt], spec)
						if err == nil {
							jobs = append(jobs, job)
							break
						}
						if !errors.Is(err, service.ErrQueueFull) {
							b.Fatal(err)
						}
						time.Sleep(100 * time.Microsecond) // saturated: wait a slot out
					}
				}
				for _, job := range jobs {
					<-job.Done()
				}
			}
		})
	}

	b.Run("drain-fairness/tenants=8", func(b *testing.B) {
		ctl, tenants := benchController(b, 8)
		const perTenant, pops = 16, 64
		totalWeight := 0
		for _, t := range tenants {
			totalWeight += t.Weight()
		}
		minRatio, maxRatio := 1.0, 1.0
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			q := tenant.NewQueue[int](ctl, tenant.QueueConfig{Capacity: 256})
			for ti, t := range tenants {
				for j := 0; j < perTenant; j++ {
					if err := q.Push(t, ti); err != nil {
						b.Fatal(err)
					}
				}
			}
			counts := make([]int, len(tenants))
			for j := 0; j < pops; j++ {
				ti, ok := q.Pop()
				if !ok {
					b.Fatal("queue drained early")
				}
				counts[ti]++
			}
			for ti, c := range counts {
				expected := float64(pops) * float64(tenants[ti].Weight()) / float64(totalWeight)
				ratio := float64(c) / expected
				if ratio < minRatio {
					minRatio = ratio
				}
				if ratio > maxRatio {
					maxRatio = ratio
				}
				if ratio < 0.5 || ratio > 2 {
					b.Fatalf("tenant t%d drained %d of %d pops, expected ~%.1f (ratio %.2f outside 2x)", ti, c, pops, expected, ratio)
				}
			}
			q.Close()
		}
		b.ReportMetric(minRatio, "fair_min_ratio")
		b.ReportMetric(maxRatio, "fair_max_ratio")
	})
}

// --- micro-benchmarks ---

func BenchmarkComputeMAC(b *testing.B) {
	key := crypto.KeyFromUint64(1)
	payload := make([]byte, 24)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		crypto.ComputeMAC(key, payload)
	}
}

func BenchmarkSynopsisGenerate(b *testing.B) {
	nonce := []byte("bench-nonce")
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		synopsis.Generate(nonce, topology.NodeID(i%1000+1), 1, i%100)
	}
}

func benchEnv(b *testing.B, n int, seed uint64) core.Config {
	b.Helper()
	rng := crypto.NewStreamFromSeed(seed)
	g, _ := topology.RandomGeometric(n, 0.25, rng.Fork([]byte("topo")))
	dep, err := keydist.NewDeployment(n, keydist.Params{PoolSize: 5000, RingSize: 220},
		crypto.KeyFromUint64(seed), rng.Fork([]byte("keys")))
	if err != nil {
		b.Fatal(err)
	}
	return core.Config{
		Graph:      g,
		Deployment: dep,
		Readings: func(id topology.NodeID, _ int) float64 {
			if id == topology.BaseStation {
				return core.Inf()
			}
			return 100 + float64(id)
		},
		Seed: seed,
	}
}

func BenchmarkHonestMinExecution(b *testing.B) {
	cfg := benchEnv(b, 80, 99)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		eng, err := core.NewEngine(cfg)
		if err != nil {
			b.Fatal(err)
		}
		out, err := eng.Run()
		if err != nil {
			b.Fatal(err)
		}
		if out.Kind != core.OutcomeResult {
			b.Fatalf("outcome %v", out.Kind)
		}
	}
}

func BenchmarkCountQuery100Synopses(b *testing.B) {
	cfg := benchEnv(b, 80, 100)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res, err := core.RunCount(cfg, func(id topology.NodeID) bool { return true }, 100)
		if err != nil {
			b.Fatal(err)
		}
		if !res.Answered() {
			b.Fatal("count did not answer")
		}
	}
}

func BenchmarkEnvelopeSealOpen(b *testing.B) {
	key := crypto.KeyFromUint64(7)
	msg := core.AggMsg{Records: make([]core.Record, 100)} // a 2.4KB aggregate
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		env := core.Seal(5, key, 1, 2, msg)
		if _, ok := env.Open(key, 1, 2); !ok {
			b.Fatal("open failed")
		}
	}
}

func BenchmarkKeyDeploymentPaperScale(b *testing.B) {
	// One Eschenauer-Gligor deployment at the paper's Figure 7 scale:
	// 1,000 sensors x 250-key rings from a 100,000-key pool.
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := keydist.NewDeployment(1000, keydist.PaperParams(),
			crypto.KeyFromUint64(uint64(i)), crypto.NewStreamFromSeed(uint64(i))); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkSHIAExecution(b *testing.B) {
	g := topology.Grid(8, 8)
	dep, err := keydist.NewDeployment(64, keydist.Params{PoolSize: 500, RingSize: 60},
		crypto.KeyFromUint64(8), crypto.NewStreamFromSeed(8))
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s := &baseline.SHIA{
			Graph:      g,
			Deployment: dep,
			Readings:   func(id topology.NodeID) int64 { return int64(id) },
			Seed:       uint64(i),
		}
		if res := s.Run(); res.Alarm {
			b.Fatal("honest SHIA alarmed")
		}
	}
}

func BenchmarkFullPinpointingRun(b *testing.B) {
	// A deterministic dropping attack end to end, including the predicate
	//-test binary searches and the revocation broadcast.
	g := topology.New(6)
	g.AddEdge(0, 1)
	g.AddEdge(1, 2)
	g.AddEdge(2, 4)
	g.AddEdge(1, 3)
	g.AddEdge(3, 5)
	g.AddEdge(5, 4)
	rng := crypto.NewStreamFromSeed(101)
	dep, err := keydist.NewDeployment(6, keydist.Params{PoolSize: 600, RingSize: 90},
		crypto.KeyFromUint64(101), rng)
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		cfg := core.Config{
			Graph:      g,
			Deployment: dep,
			Malicious:  map[topology.NodeID]bool{2: true},
			Adversary:  adversary.NewDropper(50),
			Seed:       uint64(i),
			Readings: func(id topology.NodeID, _ int) float64 {
				switch id {
				case 0:
					return core.Inf()
				case 4:
					return 1
				default:
					return 100 + float64(id)
				}
			},
		}
		eng, err := core.NewEngine(cfg)
		if err != nil {
			b.Fatal(err)
		}
		out, err := eng.Run()
		if err != nil {
			b.Fatal(err)
		}
		if out.Kind != core.OutcomeVetoRevocation {
			b.Fatalf("outcome %v", out.Kind)
		}
	}
}

// populateStore fills a fresh store directory with n small entries
// (fsync off — this is bulk load) and closes it cleanly, leaving an
// index snapshot behind. Keys are 64-hex strings like real content
// addresses.
func populateStore(b *testing.B, n int) string {
	b.Helper()
	dir := b.TempDir()
	s, err := store.Open(dir, store.Config{DisableFsync: true, CacheEntries: 16})
	if err != nil {
		b.Fatal(err)
	}
	for i := 0; i < n; i++ {
		key := fmt.Sprintf("%064x", i)
		if err := s.Put(key, "bench", [3]int64{int64(i), int64(i * 7), 42}, store.Meta{}); err != nil {
			b.Fatal(err)
		}
	}
	if err := s.Close(); err != nil {
		b.Fatal(err)
	}
	return dir
}

// BenchmarkStoreReopen measures open-time over a populated store at
// three scales, both ways: via the index snapshot (one binary load plus
// tail replay) and via full journal replay (snapshot deleted first).
// The ratio between the two is the snapshot's reason to exist — the
// acceptance bar is ≥10x at the million-entry scale.
func BenchmarkStoreReopen(b *testing.B) {
	for _, n := range []int{10_000, 100_000, 1_000_000} {
		dir := populateStore(b, n)
		b.Run(fmt.Sprintf("snapshot/n=%d", n), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				s, err := store.Open(dir, store.Config{DisableFsync: true})
				if err != nil {
					b.Fatal(err)
				}
				if s.Len() != n {
					b.Fatalf("reopened %d entries, want %d", s.Len(), n)
				}
				b.StopTimer()
				s.Close()
				b.StartTimer()
			}
		})
		b.Run(fmt.Sprintf("replay/n=%d", n), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				b.StopTimer()
				os.Remove(filepath.Join(dir, store.SnapshotName))
				b.StartTimer()
				s, err := store.Open(dir, store.Config{DisableFsync: true})
				if err != nil {
					b.Fatal(err)
				}
				if s.Len() != n {
					b.Fatalf("reopened %d entries, want %d", s.Len(), n)
				}
				b.StopTimer()
				s.Close() // rewrites the snapshot; removed again above
				b.StartTimer()
			}
		})
	}
}

// BenchmarkStoreHitLatency measures a warm store hit — index lookup
// plus segment read plus record decode — across scales, cycling keys so
// most lookups miss the small LRU and pay the real disk path.
func BenchmarkStoreHitLatency(b *testing.B) {
	for _, n := range []int{10_000, 100_000, 1_000_000} {
		dir := populateStore(b, n)
		b.Run(fmt.Sprintf("n=%d", n), func(b *testing.B) {
			s, err := store.Open(dir, store.Config{DisableFsync: true})
			if err != nil {
				b.Fatal(err)
			}
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				key := fmt.Sprintf("%064x", i%n)
				if _, ok, err := s.Get(key); !ok || err != nil {
					b.Fatalf("Get(%s): ok=%v err=%v", key, ok, err)
				}
			}
			// Close rewrites the O(n) index snapshot — keep it out of
			// the per-Get numbers.
			b.StopTimer()
			s.Close()
		})
	}
}
