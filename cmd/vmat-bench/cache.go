package main

import (
	"encoding/json"
	"fmt"

	"repro/internal/store"
)

// benchCache fronts the persistent result store for the CLI: each
// experiment's row set is keyed by the experiment name plus its full
// config (with execution-only knobs zeroed), so repeating an invocation
// with the same -cache-dir prints identical tables straight from disk
// without touching the engine.
type benchCache struct {
	st     *store.Store
	hits   int
	misses int
}

// cachedRows returns the experiment's rows from the store when present,
// otherwise executes run and writes the rows back. keySpec must be the
// experiment config as actually run, minus fields that cannot change
// the rows (callers zero Workers — the trial runner is deterministic
// for any worker count).
func cachedRows[T any](c *benchCache, exp string, keySpec any, run func() ([]T, error)) ([]T, error) {
	if c == nil {
		return run()
	}
	kind := "bench/" + exp
	key, err := store.KeyJSON(kind, keySpec)
	if err != nil {
		return nil, err
	}
	if e, ok, err := c.st.Get(key); err == nil && ok {
		var rows []T
		if err := json.Unmarshal(e.Value, &rows); err == nil {
			c.hits++
			return rows, nil
		}
	}
	c.misses++
	rows, err := run()
	if err != nil {
		return nil, err
	}
	if err := c.st.Put(key, kind, rows, store.Meta{Version: version}); err != nil {
		return nil, fmt.Errorf("cache write-back (%s): %w", exp, err)
	}
	return rows, nil
}
