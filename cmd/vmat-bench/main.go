// Command vmat-bench regenerates the paper's evaluation artifacts: every
// figure of Section IX plus the complexity-claim comparisons of Sections
// I and VII. Each experiment prints the same series the paper plots.
//
// Usage:
//
//	vmat-bench -exp fig7            # Figure 7 at paper scale
//	vmat-bench -exp fig8 -quick     # Figure 8, reduced trials
//	vmat-bench -exp all -quick      # everything, reduced scale
//	vmat-bench -exp scale           # simulator capacity sweep to 1M nodes
//
// Experiments: fig7, fig8, comm, rounds, pinpoint, campaign, wormhole,
// choking, faults, scale, all. The scale sweep measures this machine's
// wall clock and memory, so it is excluded from "all" (whose rows are
// deterministic and cacheable) and must be requested explicitly.
//
// The -cpuprofile and -memprofile flags write pprof profiles covering
// the selected experiments.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"

	"repro/internal/experiments"
	"repro/internal/keydist"
	"repro/internal/prof"
	"repro/internal/store"
)

// version is stamped by the Makefile via -ldflags "-X main.version=...".
var version = "dev"

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "vmat-bench:", err)
		os.Exit(1)
	}
}

func run(args []string, w io.Writer) error {
	fs := flag.NewFlagSet("vmat-bench", flag.ContinueOnError)
	exp := fs.String("exp", "all", "experiment: fig7|fig8|msweep|comm|rounds|pinpoint|campaign|wormhole|choking|loss|avail|scenario|faults|scale|all (scale is not part of all)")
	quick := fs.Bool("quick", false, "reduced scale (fewer trials, smaller networks)")
	seed := fs.Uint64("seed", 2011, "simulation seed")
	workers := fs.Int("workers", 0, "parallel trial workers (0 = all cores); results are identical for any value")
	cacheDir := fs.String("cache-dir", "", "persist experiment rows in a content-addressed store under this directory; repeated runs print from disk")
	cpuProfile := fs.String("cpuprofile", "", "write a CPU profile to this file")
	memProfile := fs.String("memprofile", "", "write a heap profile to this file at exit")
	showVersion := fs.Bool("version", false, "print version and exit")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *showVersion {
		fmt.Fprintln(w, "vmat-bench", version)
		return nil
	}
	stopProfiles, err := prof.Start(*cpuProfile, *memProfile)
	if err != nil {
		return err
	}
	defer stopProfiles()

	var cache *benchCache
	if *cacheDir != "" {
		st, err := store.Open(*cacheDir, store.Config{})
		if err != nil {
			return fmt.Errorf("open cache: %w", err)
		}
		defer st.Close()
		cache = &benchCache{st: st}
	}

	runners := map[string]func() error{
		"fig7":     func() error { return runFig7(w, cache, *quick, *seed, *workers) },
		"fig8":     func() error { return runFig8(w, cache, *quick, *seed, *workers) },
		"comm":     func() error { return runComm(w, cache, *quick, *seed, *workers) },
		"rounds":   func() error { return runRounds(w, cache, *quick, *seed, *workers) },
		"pinpoint": func() error { return runPinpoint(w, cache, *quick, *seed, *workers) },
		"campaign": func() error { return runCampaign(w, cache, *quick, *seed, *workers) },
		"wormhole": func() error { return runWormhole(w, cache, *quick, *seed, *workers) },
		"choking":  func() error { return runChoking(w, cache, *quick, *seed, *workers) },
		"loss":     func() error { return runLoss(w, cache, *quick, *seed, *workers) },
		"avail":    func() error { return runAvailability(w, cache, *quick, *seed, *workers) },
		"msweep":   func() error { return runMSweep(w, cache, *quick, *seed, *workers) },
		"scenario": func() error { return runScenario(w, cache, *quick, *seed, *workers) },
		"faults":   func() error { return runFaults(w, cache, *quick, *seed, *workers) },
		"scale":    func() error { return runScale(w, *quick, *seed) },
	}
	if *exp == "all" {
		for _, name := range []string{"fig7", "fig8", "msweep", "comm", "rounds", "pinpoint", "campaign", "wormhole", "choking", "loss", "avail", "scenario", "faults"} {
			if err := runners[name](); err != nil {
				return fmt.Errorf("%s: %w", name, err)
			}
			fmt.Fprintln(w)
		}
		cacheSummary(w, cache)
		return nil
	}
	r, ok := runners[*exp]
	if !ok {
		return fmt.Errorf("unknown experiment %q", *exp)
	}
	if err := r(); err != nil {
		return err
	}
	cacheSummary(w, cache)
	return nil
}

// cacheSummary reports cache effectiveness for the run; a warm rerun
// shows zero misses, proving the tables came from the store.
func cacheSummary(w io.Writer, cache *benchCache) {
	if cache == nil {
		return
	}
	fmt.Fprintf(w, "cache: %d hits, %d misses (%d entries)\n",
		cache.hits, cache.misses, cache.st.Len())
}

func runFig7(w io.Writer, c *benchCache, quick bool, seed uint64, workers int) error {
	cfg := experiments.DefaultFig7()
	cfg.Seed = seed
	cfg.Workers = workers
	if quick {
		cfg.NetworkSizes = []int{1000}
		cfg.Trials = 10
	}
	keyCfg := cfg
	keyCfg.Workers = 0
	rows, err := cachedRows(c, "fig7", keyCfg, func() ([]experiments.Fig7Row, error) {
		return experiments.RunFig7(cfg)
	})
	if err != nil {
		return err
	}
	return experiments.Fig7Table(rows).Write(w)
}

func runFig8(w io.Writer, c *benchCache, quick bool, seed uint64, workers int) error {
	cfg := experiments.DefaultFig8()
	cfg.Seed = seed
	cfg.Workers = workers
	if quick {
		cfg.Trials = 50
		cfg.Counts = []int{10, 100, 1000}
	}
	keyCfg := cfg
	keyCfg.Workers = 0
	rows, err := cachedRows(c, "fig8", keyCfg, func() ([]experiments.Fig8Row, error) {
		return experiments.RunFig8(cfg), nil
	})
	if err != nil {
		return err
	}
	return experiments.Fig8Table(rows, cfg.Synopses).Write(w)
}

func runMSweep(w io.Writer, c *benchCache, quick bool, seed uint64, workers int) error {
	cfg := experiments.DefaultMSweep()
	cfg.Seed = seed
	cfg.Workers = workers
	if quick {
		cfg.Trials = 40
	}
	keyCfg := cfg
	keyCfg.Workers = 0
	rows, err := cachedRows(c, "msweep", keyCfg, func() ([]experiments.MSweepRow, error) {
		return experiments.RunMSweep(cfg), nil
	})
	if err != nil {
		return err
	}
	return experiments.MSweepTable(rows, cfg.Count).Write(w)
}

// runScenario runs the default service workload (the same driver
// cmd/vmat-server executes jobs with), printing one row per trial.
func runScenario(w io.Writer, c *benchCache, quick bool, seed uint64, workers int) error {
	cfg := experiments.DefaultScenario()
	cfg.Seed = seed
	cfg.Workers = workers
	if quick {
		cfg.N = 40
		cfg.Trials = 5
	}
	keyCfg := cfg
	keyCfg.Workers = 0
	rows, err := cachedRows(c, "scenario", keyCfg, func() ([]experiments.ScenarioRow, error) {
		return experiments.RunScenario(cfg)
	})
	if err != nil {
		return err
	}
	return experiments.ScenarioTable(cfg, rows).Write(w)
}

// runFaults sweeps crash churn and burst loss with the ARQ on, printing
// availability and exact-answer rates for both aggregation modes.
func runFaults(w io.Writer, c *benchCache, quick bool, seed uint64, workers int) error {
	cfg := experiments.DefaultFaults()
	cfg.Seed = seed
	cfg.Workers = workers
	if quick {
		cfg.N = 40
		cfg.CrashProbs = []float64{0, 0.005}
		cfg.BurstLoss = []float64{0, 0.5}
		cfg.Trials = 3
	}
	keyCfg := cfg
	keyCfg.Workers = 0
	rows, err := cachedRows(c, "faults", keyCfg, func() ([]experiments.FaultsRow, error) {
		return experiments.RunFaults(cfg)
	})
	if err != nil {
		return err
	}
	return experiments.FaultsTable(rows).Write(w)
}

// runScale probes the simulator's capacity ceiling: full MIN queries on
// 10k/100k/1M-node grids with wall-clock and memory columns. Its rows
// measure this machine, so they bypass the content-addressed cache (a
// cached timing would silently misreport a different host or build).
func runScale(w io.Writer, quick bool, seed uint64) error {
	cfg := experiments.DefaultScale()
	if quick {
		cfg = experiments.QuickScale()
	}
	cfg.Seed = seed
	rows, err := experiments.RunScale(cfg)
	if err != nil {
		return err
	}
	return experiments.ScaleTable(rows).Write(w)
}

func runComm(w io.Writer, c *benchCache, quick bool, seed uint64, workers int) error {
	cfg := experiments.DefaultComm()
	cfg.Seed = seed
	cfg.Workers = workers
	if quick {
		cfg.NetworkSizes = []int{100, 1000}
	}
	keyCfg := cfg
	keyCfg.Workers = 0
	rows, err := cachedRows(c, "comm", keyCfg, func() ([]experiments.CommRow, error) {
		return experiments.RunComm(cfg)
	})
	if err != nil {
		return err
	}
	return experiments.CommTable(rows).Write(w)
}

func runRounds(w io.Writer, c *benchCache, quick bool, seed uint64, workers int) error {
	cfg := experiments.DefaultRounds()
	cfg.Seed = seed
	cfg.Workers = workers
	if quick {
		cfg.NetworkSizes = []int{50, 100, 400}
	}
	keyCfg := cfg
	keyCfg.Workers = 0
	rows, err := cachedRows(c, "rounds", keyCfg, func() ([]experiments.RoundsRow, error) {
		return experiments.RunRounds(cfg)
	})
	if err != nil {
		return err
	}
	return experiments.RoundsTable(rows).Write(w)
}

func runPinpoint(w io.Writer, c *benchCache, quick bool, seed uint64, workers int) error {
	cfg := experiments.DefaultPinpoint()
	cfg.Seed = seed
	cfg.Workers = workers
	if quick {
		cfg.NetworkSizes = []int{50}
		cfg.Trials = 4
	}
	keyCfg := cfg
	keyCfg.Workers = 0
	rows, err := cachedRows(c, "pinpoint", keyCfg, func() ([]experiments.PinpointRow, error) {
		return experiments.RunPinpoint(cfg)
	})
	if err != nil {
		return err
	}
	return experiments.PinpointTable(rows).Write(w)
}

func runCampaign(w io.Writer, c *benchCache, quick bool, seed uint64, workers int) error {
	cfg := experiments.DefaultCampaign()
	cfg.Seed = seed
	cfg.Workers = workers
	if quick {
		cfg.Thetas = []int{0, 7}
		cfg.Trials = 2
	}
	keyCfg := cfg
	keyCfg.Workers = 0
	rows, err := cachedRows(c, "campaign", keyCfg, func() ([]experiments.CampaignRow, error) {
		return experiments.RunCampaign(cfg)
	})
	if err != nil {
		return err
	}
	ringSize := keydist.Params{PoolSize: 10000, RingSize: 300}.RingSize
	return experiments.CampaignTable(rows, ringSize).Write(w)
}

func runWormhole(w io.Writer, c *benchCache, quick bool, seed uint64, workers int) error {
	cfg := experiments.DefaultWormhole()
	cfg.Seed = seed
	cfg.Workers = workers
	if quick {
		cfg.NetworkSizes = []int{60}
		cfg.Trials = 4
	}
	keyCfg := cfg
	keyCfg.Workers = 0
	rows, err := cachedRows(c, "wormhole", keyCfg, func() ([]experiments.WormholeRow, error) {
		return experiments.RunWormhole(cfg)
	})
	if err != nil {
		return err
	}
	return experiments.WormholeTable(rows).Write(w)
}

func runLoss(w io.Writer, c *benchCache, quick bool, seed uint64, workers int) error {
	cfg := experiments.DefaultLoss()
	cfg.Seed = seed
	cfg.Workers = workers
	if quick {
		cfg.N = 60
		cfg.Trials = 5
	}
	keyCfg := cfg
	keyCfg.Workers = 0
	rows, err := cachedRows(c, "loss", keyCfg, func() ([]experiments.LossRow, error) {
		return experiments.RunLoss(cfg)
	})
	if err != nil {
		return err
	}
	return experiments.LossTable(rows).Write(w)
}

func runAvailability(w io.Writer, c *benchCache, quick bool, seed uint64, workers int) error {
	cfg := experiments.DefaultAvailability()
	cfg.Seed = seed
	cfg.Workers = workers
	if quick {
		cfg.Trials = 2
		cfg.Executions = 20
	}
	keyCfg := cfg
	keyCfg.Workers = 0
	rows, err := cachedRows(c, "avail", keyCfg, func() ([]experiments.AvailabilityRow, error) {
		return experiments.RunAvailability(cfg)
	})
	if err != nil {
		return err
	}
	return experiments.AvailabilityTable(rows).Write(w)
}

func runChoking(w io.Writer, c *benchCache, quick bool, seed uint64, workers int) error {
	cfg := experiments.DefaultChoking()
	cfg.Seed = seed
	cfg.Workers = workers
	if quick {
		cfg.N = 50
		cfg.Trials = 5
	}
	keyCfg := cfg
	keyCfg.Workers = 0
	rows, err := cachedRows(c, "choking", keyCfg, func() ([]experiments.ChokingRow, error) {
		return experiments.RunChoking(cfg)
	})
	if err != nil {
		return err
	}
	return experiments.ChokingTable(rows).Write(w)
}
