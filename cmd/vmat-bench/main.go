// Command vmat-bench regenerates the paper's evaluation artifacts: every
// figure of Section IX plus the complexity-claim comparisons of Sections
// I and VII. Each experiment prints the same series the paper plots.
//
// Usage:
//
//	vmat-bench -exp fig7            # Figure 7 at paper scale
//	vmat-bench -exp fig8 -quick     # Figure 8, reduced trials
//	vmat-bench -exp all -quick      # everything, reduced scale
//
// Experiments: fig7, fig8, comm, rounds, pinpoint, campaign, wormhole,
// choking, faults, all.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"

	"repro/internal/experiments"
	"repro/internal/keydist"
)

// version is stamped by the Makefile via -ldflags "-X main.version=...".
var version = "dev"

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "vmat-bench:", err)
		os.Exit(1)
	}
}

func run(args []string, w io.Writer) error {
	fs := flag.NewFlagSet("vmat-bench", flag.ContinueOnError)
	exp := fs.String("exp", "all", "experiment: fig7|fig8|msweep|comm|rounds|pinpoint|campaign|wormhole|choking|loss|avail|scenario|faults|all")
	quick := fs.Bool("quick", false, "reduced scale (fewer trials, smaller networks)")
	seed := fs.Uint64("seed", 2011, "simulation seed")
	workers := fs.Int("workers", 0, "parallel trial workers (0 = all cores); results are identical for any value")
	showVersion := fs.Bool("version", false, "print version and exit")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *showVersion {
		fmt.Fprintln(w, "vmat-bench", version)
		return nil
	}

	runners := map[string]func() error{
		"fig7":     func() error { return runFig7(w, *quick, *seed, *workers) },
		"fig8":     func() error { return runFig8(w, *quick, *seed, *workers) },
		"comm":     func() error { return runComm(w, *quick, *seed, *workers) },
		"rounds":   func() error { return runRounds(w, *quick, *seed, *workers) },
		"pinpoint": func() error { return runPinpoint(w, *quick, *seed, *workers) },
		"campaign": func() error { return runCampaign(w, *quick, *seed, *workers) },
		"wormhole": func() error { return runWormhole(w, *quick, *seed, *workers) },
		"choking":  func() error { return runChoking(w, *quick, *seed, *workers) },
		"loss":     func() error { return runLoss(w, *quick, *seed, *workers) },
		"avail":    func() error { return runAvailability(w, *quick, *seed, *workers) },
		"msweep":   func() error { return runMSweep(w, *quick, *seed, *workers) },
		"scenario": func() error { return runScenario(w, *quick, *seed, *workers) },
		"faults":   func() error { return runFaults(w, *quick, *seed, *workers) },
	}
	if *exp == "all" {
		for _, name := range []string{"fig7", "fig8", "msweep", "comm", "rounds", "pinpoint", "campaign", "wormhole", "choking", "loss", "avail", "scenario", "faults"} {
			if err := runners[name](); err != nil {
				return fmt.Errorf("%s: %w", name, err)
			}
			fmt.Fprintln(w)
		}
		return nil
	}
	r, ok := runners[*exp]
	if !ok {
		return fmt.Errorf("unknown experiment %q", *exp)
	}
	return r()
}

func runFig7(w io.Writer, quick bool, seed uint64, workers int) error {
	cfg := experiments.DefaultFig7()
	cfg.Seed = seed
	cfg.Workers = workers
	if quick {
		cfg.NetworkSizes = []int{1000}
		cfg.Trials = 10
	}
	rows, err := experiments.RunFig7(cfg)
	if err != nil {
		return err
	}
	return experiments.Fig7Table(rows).Write(w)
}

func runFig8(w io.Writer, quick bool, seed uint64, workers int) error {
	cfg := experiments.DefaultFig8()
	cfg.Seed = seed
	cfg.Workers = workers
	if quick {
		cfg.Trials = 50
		cfg.Counts = []int{10, 100, 1000}
	}
	rows := experiments.RunFig8(cfg)
	return experiments.Fig8Table(rows, cfg.Synopses).Write(w)
}

func runMSweep(w io.Writer, quick bool, seed uint64, workers int) error {
	cfg := experiments.DefaultMSweep()
	cfg.Seed = seed
	cfg.Workers = workers
	if quick {
		cfg.Trials = 40
	}
	rows := experiments.RunMSweep(cfg)
	return experiments.MSweepTable(rows, cfg.Count).Write(w)
}

// runScenario runs the default service workload (the same driver
// cmd/vmat-server executes jobs with), printing one row per trial.
func runScenario(w io.Writer, quick bool, seed uint64, workers int) error {
	cfg := experiments.DefaultScenario()
	cfg.Seed = seed
	cfg.Workers = workers
	if quick {
		cfg.N = 40
		cfg.Trials = 5
	}
	rows, err := experiments.RunScenario(cfg)
	if err != nil {
		return err
	}
	return experiments.ScenarioTable(cfg, rows).Write(w)
}

// runFaults sweeps crash churn and burst loss with the ARQ on, printing
// availability and exact-answer rates for both aggregation modes.
func runFaults(w io.Writer, quick bool, seed uint64, workers int) error {
	cfg := experiments.DefaultFaults()
	cfg.Seed = seed
	cfg.Workers = workers
	if quick {
		cfg.N = 40
		cfg.CrashProbs = []float64{0, 0.005}
		cfg.BurstLoss = []float64{0, 0.5}
		cfg.Trials = 3
	}
	rows, err := experiments.RunFaults(cfg)
	if err != nil {
		return err
	}
	return experiments.FaultsTable(rows).Write(w)
}

func runComm(w io.Writer, quick bool, seed uint64, workers int) error {
	cfg := experiments.DefaultComm()
	cfg.Seed = seed
	cfg.Workers = workers
	if quick {
		cfg.NetworkSizes = []int{100, 1000}
	}
	rows, err := experiments.RunComm(cfg)
	if err != nil {
		return err
	}
	return experiments.CommTable(rows).Write(w)
}

func runRounds(w io.Writer, quick bool, seed uint64, workers int) error {
	cfg := experiments.DefaultRounds()
	cfg.Seed = seed
	cfg.Workers = workers
	if quick {
		cfg.NetworkSizes = []int{50, 100, 400}
	}
	rows, err := experiments.RunRounds(cfg)
	if err != nil {
		return err
	}
	return experiments.RoundsTable(rows).Write(w)
}

func runPinpoint(w io.Writer, quick bool, seed uint64, workers int) error {
	cfg := experiments.DefaultPinpoint()
	cfg.Seed = seed
	cfg.Workers = workers
	if quick {
		cfg.NetworkSizes = []int{50}
		cfg.Trials = 4
	}
	rows, err := experiments.RunPinpoint(cfg)
	if err != nil {
		return err
	}
	return experiments.PinpointTable(rows).Write(w)
}

func runCampaign(w io.Writer, quick bool, seed uint64, workers int) error {
	cfg := experiments.DefaultCampaign()
	cfg.Seed = seed
	cfg.Workers = workers
	if quick {
		cfg.Thetas = []int{0, 7}
		cfg.Trials = 2
	}
	rows, err := experiments.RunCampaign(cfg)
	if err != nil {
		return err
	}
	ringSize := keydist.Params{PoolSize: 10000, RingSize: 300}.RingSize
	return experiments.CampaignTable(rows, ringSize).Write(w)
}

func runWormhole(w io.Writer, quick bool, seed uint64, workers int) error {
	cfg := experiments.DefaultWormhole()
	cfg.Seed = seed
	cfg.Workers = workers
	if quick {
		cfg.NetworkSizes = []int{60}
		cfg.Trials = 4
	}
	rows, err := experiments.RunWormhole(cfg)
	if err != nil {
		return err
	}
	return experiments.WormholeTable(rows).Write(w)
}

func runLoss(w io.Writer, quick bool, seed uint64, workers int) error {
	cfg := experiments.DefaultLoss()
	cfg.Seed = seed
	cfg.Workers = workers
	if quick {
		cfg.N = 60
		cfg.Trials = 5
	}
	rows, err := experiments.RunLoss(cfg)
	if err != nil {
		return err
	}
	return experiments.LossTable(rows).Write(w)
}

func runAvailability(w io.Writer, quick bool, seed uint64, workers int) error {
	cfg := experiments.DefaultAvailability()
	cfg.Seed = seed
	cfg.Workers = workers
	if quick {
		cfg.Trials = 2
		cfg.Executions = 20
	}
	rows, err := experiments.RunAvailability(cfg)
	if err != nil {
		return err
	}
	return experiments.AvailabilityTable(rows).Write(w)
}

func runChoking(w io.Writer, quick bool, seed uint64, workers int) error {
	cfg := experiments.DefaultChoking()
	cfg.Seed = seed
	cfg.Workers = workers
	if quick {
		cfg.N = 50
		cfg.Trials = 5
	}
	rows, err := experiments.RunChoking(cfg)
	if err != nil {
		return err
	}
	return experiments.ChokingTable(rows).Write(w)
}
