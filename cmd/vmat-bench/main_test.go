package main

import (
	"bytes"
	"strings"
	"testing"
)

func runBench(t *testing.T, args ...string) string {
	t.Helper()
	var buf bytes.Buffer
	if err := run(args, &buf); err != nil {
		t.Fatalf("run(%v): %v", args, err)
	}
	return buf.String()
}

func TestBenchUnknownExperiment(t *testing.T) {
	var buf bytes.Buffer
	if err := run([]string{"-exp", "nope"}, &buf); err == nil {
		t.Fatal("unknown experiment accepted")
	}
}

func TestBenchWormholeQuick(t *testing.T) {
	out := runBench(t, "-exp", "wormhole", "-quick")
	if !strings.Contains(out, "Figure 2(c)") || !strings.Contains(out, "hopcount_invalid") {
		t.Fatalf("wormhole table malformed:\n%s", out)
	}
}

func TestBenchFig8Quick(t *testing.T) {
	out := runBench(t, "-exp", "fig8", "-quick")
	if !strings.Contains(out, "Figure 8") || !strings.Contains(out, "avg_rel_err") {
		t.Fatalf("fig8 table malformed:\n%s", out)
	}
	if len(strings.Split(strings.TrimSpace(out), "\n")) < 5 {
		t.Fatalf("fig8 table too short:\n%s", out)
	}
}

func TestBenchCampaignQuick(t *testing.T) {
	out := runBench(t, "-exp", "campaign", "-quick")
	if !strings.Contains(out, "revocation campaign") || !strings.Contains(out, "ring_coverage") {
		t.Fatalf("campaign table malformed:\n%s", out)
	}
}

func TestBenchLossQuick(t *testing.T) {
	out := runBench(t, "-exp", "loss", "-quick")
	if !strings.Contains(out, "radio loss") {
		t.Fatalf("loss table malformed:\n%s", out)
	}
}

func TestBenchSeedFlag(t *testing.T) {
	a := runBench(t, "-exp", "wormhole", "-quick", "-seed", "5")
	b := runBench(t, "-exp", "wormhole", "-quick", "-seed", "5")
	if a != b {
		t.Fatal("same seed produced different tables")
	}
}

func TestBenchWorkersFlagInvisibleInOutput(t *testing.T) {
	a := runBench(t, "-exp", "choking", "-quick", "-workers", "1")
	b := runBench(t, "-exp", "choking", "-quick", "-workers", "8")
	if a != b {
		t.Fatalf("worker count changed the table:\n%s\nvs\n%s", a, b)
	}
}

func TestBenchFaultsQuick(t *testing.T) {
	out := runBench(t, "-exp", "faults", "-quick")
	if !strings.Contains(out, "Graceful degradation") || !strings.Contains(out, "avg_retransmits") {
		t.Fatalf("faults table malformed:\n%s", out)
	}
}

func TestBenchVersionFlag(t *testing.T) {
	var buf bytes.Buffer
	if err := run([]string{"-version"}, &buf); err != nil {
		t.Fatalf("run: %v", err)
	}
	if out := buf.String(); !strings.Contains(out, "vmat-bench") || !strings.Contains(out, version) {
		t.Fatalf("version output = %q", out)
	}
}

func TestBenchScenarioQuick(t *testing.T) {
	var buf bytes.Buffer
	if err := run([]string{"-exp", "scenario", "-quick"}, &buf); err != nil {
		t.Fatalf("run: %v", err)
	}
	if out := buf.String(); !strings.Contains(out, "trial") {
		t.Fatalf("scenario output missing trial rows:\n%s", out)
	}
}

// stripCacheLines removes the cache-summary line so warm and cold
// outputs can be compared for table equality.
func stripCacheLines(out string) string {
	var kept []string
	for _, line := range strings.Split(out, "\n") {
		if strings.HasPrefix(line, "cache: ") {
			continue
		}
		kept = append(kept, line)
	}
	return strings.Join(kept, "\n")
}

// TestBenchCacheDirWarmRun is the CLI face of the result store: the
// second identical invocation prints byte-identical tables with zero
// cache misses, i.e. nothing was re-executed.
func TestBenchCacheDirWarmRun(t *testing.T) {
	dir := t.TempDir()
	cold := runBench(t, "-exp", "scenario", "-quick", "-cache-dir", dir)
	if !strings.Contains(cold, "cache: 0 hits, 1 misses") {
		t.Fatalf("cold run summary wrong:\n%s", cold)
	}
	warm := runBench(t, "-exp", "scenario", "-quick", "-cache-dir", dir)
	if !strings.Contains(warm, "cache: 1 hits, 0 misses") {
		t.Fatalf("warm run did not hit the store:\n%s", warm)
	}
	if stripCacheLines(cold) != stripCacheLines(warm) {
		t.Fatalf("warm table differs from cold table:\ncold:\n%s\nwarm:\n%s", cold, warm)
	}
	// Different seed is a different content address.
	other := runBench(t, "-exp", "scenario", "-quick", "-seed", "99", "-cache-dir", dir)
	if !strings.Contains(other, "cache: 0 hits, 1 misses") {
		t.Fatalf("changed seed still hit the cache:\n%s", other)
	}
	// Worker count is execution-only: it must not change the address.
	rewarm := runBench(t, "-exp", "scenario", "-quick", "-workers", "3", "-cache-dir", dir)
	if !strings.Contains(rewarm, "cache: 1 hits, 0 misses") {
		t.Fatalf("worker count changed the cache key:\n%s", rewarm)
	}
	// Without the flag nothing is cached and no summary is printed.
	plain := runBench(t, "-exp", "scenario", "-quick")
	if strings.Contains(plain, "cache:") {
		t.Fatalf("cacheless run printed a cache summary:\n%s", plain)
	}
}

// TestBenchCacheAcrossExperiments warms two experiments into one store
// and confirms each is keyed independently.
func TestBenchCacheAcrossExperiments(t *testing.T) {
	dir := t.TempDir()
	runBench(t, "-exp", "choking", "-quick", "-cache-dir", dir)
	runBench(t, "-exp", "wormhole", "-quick", "-cache-dir", dir)
	warmA := runBench(t, "-exp", "choking", "-quick", "-cache-dir", dir)
	warmB := runBench(t, "-exp", "wormhole", "-quick", "-cache-dir", dir)
	for _, out := range []string{warmA, warmB} {
		if !strings.Contains(out, "cache: 1 hits, 0 misses (2 entries)") {
			t.Fatalf("warm rerun summary wrong:\n%s", out)
		}
	}
}
