package main

import (
	"bytes"
	"strings"
	"testing"
)

func runBench(t *testing.T, args ...string) string {
	t.Helper()
	var buf bytes.Buffer
	if err := run(args, &buf); err != nil {
		t.Fatalf("run(%v): %v", args, err)
	}
	return buf.String()
}

func TestBenchUnknownExperiment(t *testing.T) {
	var buf bytes.Buffer
	if err := run([]string{"-exp", "nope"}, &buf); err == nil {
		t.Fatal("unknown experiment accepted")
	}
}

func TestBenchWormholeQuick(t *testing.T) {
	out := runBench(t, "-exp", "wormhole", "-quick")
	if !strings.Contains(out, "Figure 2(c)") || !strings.Contains(out, "hopcount_invalid") {
		t.Fatalf("wormhole table malformed:\n%s", out)
	}
}

func TestBenchFig8Quick(t *testing.T) {
	out := runBench(t, "-exp", "fig8", "-quick")
	if !strings.Contains(out, "Figure 8") || !strings.Contains(out, "avg_rel_err") {
		t.Fatalf("fig8 table malformed:\n%s", out)
	}
	if len(strings.Split(strings.TrimSpace(out), "\n")) < 5 {
		t.Fatalf("fig8 table too short:\n%s", out)
	}
}

func TestBenchCampaignQuick(t *testing.T) {
	out := runBench(t, "-exp", "campaign", "-quick")
	if !strings.Contains(out, "revocation campaign") || !strings.Contains(out, "ring_coverage") {
		t.Fatalf("campaign table malformed:\n%s", out)
	}
}

func TestBenchLossQuick(t *testing.T) {
	out := runBench(t, "-exp", "loss", "-quick")
	if !strings.Contains(out, "radio loss") {
		t.Fatalf("loss table malformed:\n%s", out)
	}
}

func TestBenchSeedFlag(t *testing.T) {
	a := runBench(t, "-exp", "wormhole", "-quick", "-seed", "5")
	b := runBench(t, "-exp", "wormhole", "-quick", "-seed", "5")
	if a != b {
		t.Fatal("same seed produced different tables")
	}
}

func TestBenchWorkersFlagInvisibleInOutput(t *testing.T) {
	a := runBench(t, "-exp", "choking", "-quick", "-workers", "1")
	b := runBench(t, "-exp", "choking", "-quick", "-workers", "8")
	if a != b {
		t.Fatalf("worker count changed the table:\n%s\nvs\n%s", a, b)
	}
}

func TestBenchFaultsQuick(t *testing.T) {
	out := runBench(t, "-exp", "faults", "-quick")
	if !strings.Contains(out, "Graceful degradation") || !strings.Contains(out, "avg_retransmits") {
		t.Fatalf("faults table malformed:\n%s", out)
	}
}

func TestBenchVersionFlag(t *testing.T) {
	var buf bytes.Buffer
	if err := run([]string{"-version"}, &buf); err != nil {
		t.Fatalf("run: %v", err)
	}
	if out := buf.String(); !strings.Contains(out, "vmat-bench") || !strings.Contains(out, version) {
		t.Fatalf("version output = %q", out)
	}
}

func TestBenchScenarioQuick(t *testing.T) {
	var buf bytes.Buffer
	if err := run([]string{"-exp", "scenario", "-quick"}, &buf); err != nil {
		t.Fatalf("run: %v", err)
	}
	if out := buf.String(); !strings.Contains(out, "trial") {
		t.Fatalf("scenario output missing trial rows:\n%s", out)
	}
}
