// Command vmat-chaos is the deterministic crash harness CLI: it runs a
// sweep twice against real vmat-server and vmat-worker binaries — once
// undisturbed (zero fleet workers) as the baseline, once under a seeded
// fault schedule with a live fleet — and verifies the recovery
// contract: bit-identical final CSV, every server kill recovered by an
// unprompted sweep resume, and total engine executions bounded so
// completed work is provably never redone.
//
// Usage:
//
//	vmat-chaos -server-bin ./vmat-server -worker-bin ./vmat-worker \
//	    -workers 4 -seed 11 -kills 1
//
// The schedule is a pure function of -seed (and the counts), so a
// failing run is reproduced by rerunning the same invocation.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"time"

	"repro/internal/chaos"
)

// version is stamped by the Makefile via -ldflags "-X main.version=...".
var version = "dev"

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "vmat-chaos:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("vmat-chaos", flag.ContinueOnError)
	serverBin := fs.String("server-bin", "./vmat-server", "vmat-server binary to drive")
	workerBin := fs.String("worker-bin", "./vmat-worker", "vmat-worker binary to drive")
	workers := fs.Int("workers", 4, "fleet size for the chaos run (the baseline always runs with 0)")
	seed := fs.Int64("seed", 11, "schedule seed — same seed, same faults")
	kills := fs.Int("kills", 1, "server SIGKILL+restart events")
	severs := fs.Int("severs", 0, "connection-sever events (drop every live streaming conn)")
	stops := fs.Int("stops", 0, "graceful worker SIGTERM events")
	workerKills := fs.Int("worker-kills", 0, "worker SIGKILL events (lease expiry path)")
	grid := fs.String("grid", `{"n":[30,35,40,45,50,55],"attack":["none","drop"],"trials":3,"seed":11,"workers":1}`,
		"sweep grid JSON")
	trials := fs.Int("trials", 3, "trials per cell in -grid (denominates the execution bound)")
	leaseTTL := fs.Duration("lease-ttl", 2*time.Second, "server lease TTL")
	shardTrials := fs.Int("shard-trials", 0, "server -shard-trials")
	workDir := fs.String("work-dir", "", "working directory for logs and data dirs (default: a temp dir)")
	timeout := fs.Duration("timeout", 5*time.Minute, "per-run sweep deadline")
	showVersion := fs.Bool("version", false, "print version and exit")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *showVersion {
		fmt.Println("vmat-chaos", version)
		return nil
	}

	work := *workDir
	if work == "" {
		var err error
		if work, err = os.MkdirTemp("", "vmat-chaos-"); err != nil {
			return err
		}
		fmt.Println("vmat-chaos: work dir", work, "(kept for inspection)")
	}

	// The execution bound is denominated in trials; catch a -grid /
	// -trials mismatch before spending two full runs on it.
	var g struct {
		Trials int `json:"trials"`
	}
	if err := json.Unmarshal([]byte(*grid), &g); err != nil {
		return fmt.Errorf("bad -grid JSON: %w", err)
	}
	if g.Trials != 0 && g.Trials != *trials {
		return fmt.Errorf("-trials %d does not match the grid's trials %d", *trials, g.Trials)
	}

	cfg := chaos.Config{
		ServerBin:   *serverBin,
		WorkerBin:   *workerBin,
		Workers:     *workers,
		Grid:        *grid,
		Trials:      *trials,
		DataDir:     filepath.Join(work, "data"),
		WorkDir:     filepath.Join(work, "run"),
		LeaseTTL:    *leaseTTL,
		ShardTrials: *shardTrials,
		Timeout:     *timeout,
		Log: func(format string, args ...any) {
			fmt.Printf("vmat-chaos: "+format+"\n", args...)
		},
	}

	fmt.Println("vmat-chaos: baseline run (0 fleet workers, no faults)")
	baseline, err := chaos.Baseline(cfg)
	if err != nil {
		return fmt.Errorf("baseline run: %w", err)
	}
	fmt.Printf("vmat-chaos: baseline done: %d cells, %d CSV bytes\n", baseline.View.Cells, len(baseline.CSV))

	cfg.Schedule = chaos.Generate(*seed, *workers, baseline.View.Cells, map[chaos.Kind]int{
		chaos.KillServer: *kills,
		chaos.SeverConns: *severs,
		chaos.StopWorker: *stops,
		chaos.KillWorker: *workerKills,
	})
	fmt.Printf("vmat-chaos: chaos run (%d workers, %s)\n", *workers, cfg.Schedule)
	rep, err := chaos.Run(cfg)
	if err != nil {
		return fmt.Errorf("chaos run: %w", err)
	}
	if err := chaos.Verify(rep, baseline, *trials); err != nil {
		return err
	}
	fmt.Printf("vmat-chaos: PASS — sweep %s: %d cells, CSV bit-identical, %d resumed, %d cached of %d done before last kill, executions server=%d fleet=%d\n",
		rep.SweepID, rep.View.Cells, rep.ResumedSweeps, rep.View.Cached, rep.DoneBeforeLastKill,
		rep.ServerExecutions, rep.WorkerExecutions)
	return nil
}
