package main

import (
	"context"
	"encoding/json"
	"io"
	"net/http"
	"os"
	"strings"
	"syscall"
	"testing"
	"time"

	"repro/internal/cluster"
)

// TestClusterModeEndToEnd boots the real server binary with -cluster,
// verifies /healthz reports the empty fleet as degraded, joins an
// in-process worker, runs a job through the fleet, checks the cluster
// metrics are exposed, and SIGTERMs the whole thing — the drain order
// (cluster first, then sweeps, jobs, listener) must exit cleanly with
// the worker still attached.
func TestClusterModeEndToEnd(t *testing.T) {
	addr := freeAddr(t)
	var buf strings.Builder
	done := make(chan error, 1)
	go func() {
		done <- run([]string{
			"-addr", addr, "-workers", "2", "-cluster",
			"-lease-ttl", "2s", "-data-dir", t.TempDir(),
		}, &buf)
	}()
	base := "http://" + addr
	waitHealthy(t, base)

	healthz := func() map[string]any {
		t.Helper()
		resp, err := http.Get(base + "/healthz")
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		var body map[string]any
		if err := json.NewDecoder(resp.Body).Decode(&body); err != nil {
			t.Fatal(err)
		}
		return body
	}
	if body := healthz(); body["status"] != "degraded" {
		t.Fatalf("healthz with -cluster and no workers = %v, want degraded", body)
	}

	wctx, stopWorker := context.WithCancel(context.Background())
	defer stopWorker()
	w := cluster.NewWorker(cluster.WorkerConfig{Server: base, Name: "e2e-worker"})
	workerDone := make(chan error, 1)
	go func() { workerDone <- w.Run(wctx) }()

	deadline := time.Now().Add(10 * time.Second)
	for healthz()["status"] != "ok" {
		if time.Now().After(deadline) {
			t.Fatalf("healthz never recovered after worker joined: %v", healthz())
		}
		time.Sleep(10 * time.Millisecond)
	}

	spec := `{"n":24,"topology":"line","query":"min","attack":"none","trials":2,"seed":9}`
	resp, err := http.Post(base+"/v1/jobs", "application/json", strings.NewReader(spec))
	if err != nil {
		t.Fatal(err)
	}
	var submitted struct {
		ID string `json:"id"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&submitted); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	for {
		var view struct {
			Status string          `json:"status"`
			Rows   json.RawMessage `json:"rows"`
		}
		r, err := http.Get(base + "/v1/jobs/" + submitted.ID)
		if err != nil {
			t.Fatal(err)
		}
		if err := json.NewDecoder(r.Body).Decode(&view); err != nil {
			t.Fatal(err)
		}
		r.Body.Close()
		if view.Status == "done" {
			if len(view.Rows) == 0 {
				t.Fatal("done job has no rows")
			}
			break
		}
		if view.Status == "failed" || view.Status == "cancelled" {
			t.Fatalf("job ended %s", view.Status)
		}
		if time.Now().After(deadline) {
			t.Fatal("job never finished")
		}
		time.Sleep(10 * time.Millisecond)
	}

	mresp, err := http.Get(base + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	mbody, _ := io.ReadAll(mresp.Body)
	mresp.Body.Close()
	for _, want := range []string{
		`service_jobs_executed_total{path="cluster"} 1`,
		`cluster_units_completed_total{worker="e2e-worker"} 1`,
		"cluster_workers_connected 1",
	} {
		if !strings.Contains(string(mbody), want) {
			t.Errorf("metrics missing %q", want)
		}
	}

	// SIGTERM with the worker still connected: the coordinator drains
	// first, so the exit is clean and the worker sees an orderly plane.
	if err := syscall.Kill(os.Getpid(), syscall.SIGTERM); err != nil {
		t.Fatal(err)
	}
	select {
	case err := <-done:
		if err != nil {
			t.Fatalf("run after SIGTERM = %v\noutput:\n%s", err, buf.String())
		}
	case <-time.After(60 * time.Second):
		t.Fatalf("cluster-mode server did not drain\noutput:\n%s", buf.String())
	}
	stopWorker()
	<-workerDone // the worker exits on its own cancel; errors are fine once the server is gone
	out := buf.String()
	for _, want := range []string{"cluster mode on", "drained, bye"} {
		if !strings.Contains(out, want) {
			t.Errorf("output missing %q:\n%s", want, out)
		}
	}
}
