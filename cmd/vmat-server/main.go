// Command vmat-server serves VMAT aggregation as a service: scenario
// jobs are submitted over HTTP, run on a bounded worker pool through the
// same deterministic trial-runner as the CLIs, and their results,
// traces, and metrics are retrievable while the server runs.
//
// Usage:
//
//	vmat-server -addr :8080 -queue 64 -workers 4 -data-dir /var/lib/vmat
//
// API:
//
//	POST   /v1/jobs                 submit a scenario spec (429 when the queue is full)
//	GET    /v1/jobs/{id}            status + result rows
//	GET    /v1/jobs/{id}/trace      NDJSON stream of engine events
//	DELETE /v1/jobs/{id}            cancel
//	POST   /v1/sweeps               submit a parameter grid (cross product of cells)
//	GET    /v1/sweeps/{id}          sweep progress (executed/cached/failed/pending)
//	GET    /v1/sweeps/{id}/results  full results; ?format=csv for flat export
//	DELETE /v1/sweeps/{id}          stop a sweep
//	GET    /healthz                 liveness + version + drain state
//	GET    /metrics                 text metrics exposition
//
// With -data-dir, completed results persist in a content-addressed
// store: identical resubmissions (jobs or sweep cells) are served from
// disk without re-execution, across restarts. The same directory holds
// a control-plane write-ahead log, making the server crash-tolerant: a
// kill -9 mid-sweep loses no completed cell, and the next start replays
// the log, skips everything already stored, and resumes every open
// sweep automatically — no operator resubmission, same sweep IDs.
// /healthz reports "degraded" with a recovery section while the replay
// rebuilds state.
//
// With -cluster, the server additionally hosts the distributed
// execution plane: vmat-worker processes register under /v1/cluster,
// claim work units via time-bounded leases, and execute jobs and sweep
// cells remotely. By default workers stream those units over one
// persistent binary conn (-wire-addr; empty falls back to HTTP lease
// polling), and -shard-trials N splits each scenario into trial-range
// units so a single large job spreads across the whole fleet. Zero
// connected workers (or a crashed one whose lease retry budget runs
// out) degrades to the local pool — cluster mode can never strand
// work — and /healthz grows a "workers" section that reports
// "degraded" while the fleet is empty.
//
// With -tenants, the server runs its multi-tenant front door: clients
// authenticate with `Authorization: Bearer <key>` against a JSON
// keyfile, each tenant gets a submissions/sec token bucket and queue /
// sweep-cell quotas, and the job queue becomes a weighted fair queue
// (deficit round robin over per-tenant FIFOs) so no tenant starves the
// rest. Capacity rejections are 429 with an honest Retry-After;
// /healthz escalates ok -> degraded -> shedding as pressure builds.
// SIGHUP reloads the keyfile without dropping live rate-limit state.
//
// On SIGTERM/SIGINT the server drains gracefully: it stops leasing
// cluster units and waits for in-flight leases, stops accepting work,
// finishes queued and running jobs, flushes the store, then exits — a
// sweep interrupted by the drain stays open in the WAL and resumes
// automatically on the next start (without -data-dir, resubmitting the
// grid resumes it from scratch).
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"io"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"repro/internal/cluster"
	"repro/internal/metrics"
	"repro/internal/service"
	"repro/internal/store"
	"repro/internal/sweep"
	"repro/internal/tenant"
)

// version is stamped by the Makefile via -ldflags "-X main.version=...".
var version = "dev"

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "vmat-server:", err)
		os.Exit(1)
	}
}

func run(args []string, w io.Writer) error {
	fs := flag.NewFlagSet("vmat-server", flag.ContinueOnError)
	addr := fs.String("addr", ":8080", "listen address")
	queue := fs.Int("queue", 64, "bounded job-queue capacity (submissions beyond it get 429)")
	workers := fs.Int("workers", 0, "concurrent job executors (0 = all cores)")
	retain := fs.Int("retain", 128, "completed jobs kept retrievable before eviction")
	jobTimeout := fs.Duration("job-timeout", 15*time.Minute, "per-job execution deadline (0 = unlimited)")
	drainTimeout := fs.Duration("drain-timeout", 10*time.Minute, "max time to finish in-flight jobs on shutdown")
	dataDir := fs.String("data-dir", "", "persist results in a content-addressed store under this directory (empty = no persistence)")
	storeSegmentBytes := fs.Int64("store-segment-bytes", 64<<20, "size at which the store's active journal segment is sealed and a new one started")
	storeCompactInterval := fs.Duration("store-compact-interval", time.Minute, "background store maintenance period: index snapshots and dead-byte compaction (0 = disabled)")
	clusterOn := fs.Bool("cluster", false, "host the distributed execution plane (vmat-worker fleet) under /v1/cluster")
	leaseTTL := fs.Duration("lease-ttl", 10*time.Second, "cluster lease lifetime without a heartbeat before a unit is reassigned")
	leaseRetries := fs.Int("lease-retries", 3, "leases one unit may consume before falling back to local execution")
	shardTrials := fs.Int("shard-trials", 0, "split cluster scenarios into work units of at most this many trials (0 = whole-scenario units)")
	wireAddr := fs.String("wire-addr", ":8081", "streaming-transport listen address for cluster workers (empty = HTTP lease polling only)")
	wireAdvertise := fs.String("wire-advertise", "", "streaming-transport address advertised to workers instead of the bound one (for proxies/NAT; empty = advertise the listener)")
	tenantsPath := fs.String("tenants", "", "JSON keyfile enabling the multi-tenant front door: API keys, per-tenant rate limits/quotas, fair-queue weights (empty = open server, everything runs as the anonymous tenant; SIGHUP reloads the file)")
	showVersion := fs.Bool("version", false, "print version and exit")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *showVersion {
		fmt.Fprintln(w, "vmat-server", version)
		return nil
	}

	reg := metrics.New()
	logf := func(format string, args ...any) {
		fmt.Fprintf(w, "vmat-server: "+format+"\n", args...)
	}
	var st *store.Store
	var wal *store.WAL
	var walRecords []store.WALRecord
	if *dataDir != "" {
		var err error
		st, err = store.Open(*dataDir, store.Config{
			Metrics:         reg,
			Log:             logf,
			SegmentBytes:    *storeSegmentBytes,
			CompactInterval: *storeCompactInterval,
		})
		if err != nil {
			return fmt.Errorf("open result store: %w", err)
		}
		defer func() {
			if st != nil {
				st.Close()
			}
		}()
		sst := st.Status()
		logf("result store at %s (%d entries, %d segments)", *dataDir, st.Len(), sst.Segments)
		// The control-plane WAL rides in the same directory: results are
		// the journal's business, promises (open sweeps, enqueued units)
		// are the WAL's. Replaying both is what makes a kill -9 lose no
		// completed work and resume every open sweep unprompted.
		wal, walRecords, err = store.OpenWAL(*dataDir, store.WALConfig{Metrics: reg, Log: logf})
		if err != nil {
			return fmt.Errorf("open control WAL: %w", err)
		}
		defer func() {
			if wal != nil {
				wal.Close()
			}
		}()
		if len(walRecords) > 0 {
			logf("control WAL holds %d records; recovery will resume open sweeps", len(walRecords))
		}
	}
	var coord *cluster.Coordinator
	var workersRep service.WorkersReporter
	var exec service.Executor
	if *clusterOn {
		coord = cluster.NewCoordinator(cluster.CoordinatorConfig{
			LeaseTTL:      *leaseTTL,
			MaxAttempts:   *leaseRetries,
			ShardTrials:   *shardTrials,
			Store:         st,
			Metrics:       reg,
			Log:           logf,
			Version:       version,
			WAL:           wal,
			WireAdvertise: *wireAdvertise,
		})
		defer coord.Close()
		workersRep, exec = coord, coord
		logf("cluster mode on: leasing under /v1/cluster (lease TTL %s, %d attempts per unit, shard %d trials)",
			*leaseTTL, *leaseRetries, *shardTrials)
		if *wireAddr != "" {
			bound, err := coord.StartWire(*wireAddr)
			if err != nil {
				return err
			}
			logf("cluster streaming transport on %s", bound)
		}
	}
	ctl, err := tenant.NewController(tenant.Config{Path: *tenantsPath, Metrics: reg, Log: logf})
	if err != nil {
		return fmt.Errorf("load tenant keyfile: %w", err)
	}
	if *tenantsPath != "" {
		logf("multi-tenant front door on: %d keyed tenant(s) from %s", ctl.Len(), *tenantsPath)
		// SIGHUP reloads the keyfile in place: new keys/limits apply
		// immediately, live state (bucket balances, in-flight counts)
		// survives, and a broken file is rejected without locking anyone
		// out.
		hup := make(chan os.Signal, 1)
		signal.Notify(hup, syscall.SIGHUP)
		go func() {
			for range hup {
				if err := ctl.Reload(); err != nil {
					logf("tenant keyfile reload failed (keeping previous set): %v", err)
				}
			}
		}()
	}
	mgr := service.New(service.Config{
		QueueSize:  *queue,
		Workers:    *workers,
		Retain:     *retain,
		JobTimeout: *jobTimeout,
		Metrics:    reg,
		Store:      st,
		Version:    version,
		Cluster:    exec,
		Tenants:    ctl,
	})
	swm := sweep.NewManager(sweep.Config{
		Service:    mgr,
		Store:      st,
		Metrics:    reg,
		Log:        logf,
		Version:    version,
		WAL:        wal,
		WALRecords: walRecords,
	})
	// Root mux: the job API owns "/", sweep routes are more specific and
	// win for /v1/sweeps*.
	root := http.NewServeMux()
	root.Handle("/", service.NewHandler(mgr, version, workersRep, swm))
	sweep.Register(root, swm)
	if coord != nil {
		cluster.RegisterHTTP(root, coord)
	}
	// WriteTimeout stays 0: /v1/jobs/{id}/trace streams NDJSON for as
	// long as the job runs. Header-read and idle timeouts still bound
	// slow or stalled clients so they cannot pin connections forever.
	srv := &http.Server{
		Addr:              *addr,
		Handler:           root,
		ReadHeaderTimeout: 10 * time.Second,
		ReadTimeout:       30 * time.Second,
		IdleTimeout:       2 * time.Minute,
	}

	ctx, stop := signal.NotifyContext(context.Background(), syscall.SIGTERM, syscall.SIGINT)
	defer stop()

	errCh := make(chan error, 1)
	go func() {
		fmt.Fprintf(w, "vmat-server %s listening on %s (queue %d, workers %d)\n",
			version, *addr, *queue, *workers)
		if err := srv.ListenAndServe(); !errors.Is(err, http.ErrServerClosed) {
			errCh <- err
			return
		}
		errCh <- nil
	}()

	// Recovery runs beside the listener, not before it: the server
	// answers /healthz ("degraded", with a recovery section) while open
	// sweeps are rebuilt, workers re-register in the meantime, and
	// submissions block until the rebuild is done so a racing
	// resubmission cannot duplicate a resuming sweep.
	go swm.Recover()

	select {
	case err := <-errCh:
		return err
	case <-ctx.Done():
	}

	// Graceful drain: stop accepting connections and jobs, finish what
	// is queued and running, then exit. The metrics registry is served
	// until the very end, so a final scrape sees queue depth 0.
	fmt.Fprintln(w, "vmat-server: signal received, draining")
	drainCtx, cancel := context.WithTimeout(context.Background(), *drainTimeout)
	defer cancel()
	// The cluster first: stop leasing, hand pending units back to the
	// local pool, and wait for workers to report their in-flight leases
	// (the listener is still up for those uploads). Then sweeps (they
	// stop feeding the job manager and flush the store), then the job
	// manager, then the listener.
	if coord != nil {
		if err := coord.Drain(drainCtx); err != nil {
			return fmt.Errorf("drain cluster: %w", err)
		}
	}
	if err := swm.Drain(drainCtx); err != nil {
		return fmt.Errorf("drain sweeps: %w", err)
	}
	if err := mgr.Drain(drainCtx); err != nil {
		return fmt.Errorf("drain: %w", err)
	}
	if err := srv.Shutdown(drainCtx); err != nil {
		return fmt.Errorf("shutdown: %w", err)
	}
	if wal != nil {
		if err := wal.Close(); err != nil {
			return fmt.Errorf("close control WAL: %w", err)
		}
		wal = nil // defer-close already done
	}
	if st != nil {
		if err := st.Close(); err != nil {
			return fmt.Errorf("close store: %w", err)
		}
		st = nil // defer-close already done
	}
	fmt.Fprintln(w, "vmat-server: drained, bye")
	return <-errCh
}
