package main

import (
	"encoding/json"
	"net"
	"net/http"
	"os"
	"strings"
	"syscall"
	"testing"
	"time"
)

func TestVersionFlag(t *testing.T) {
	var buf strings.Builder
	if err := run([]string{"-version"}, &buf); err != nil {
		t.Fatalf("run: %v", err)
	}
	if got := buf.String(); !strings.Contains(got, "vmat-server") || !strings.Contains(got, version) {
		t.Fatalf("version output = %q, want it to name the binary and version %q", got, version)
	}
}

func TestBadFlagRejected(t *testing.T) {
	var buf strings.Builder
	if err := run([]string{"-no-such-flag"}, &buf); err == nil {
		t.Fatal("run accepted an unknown flag")
	}
}

// freeAddr reserves an ephemeral port and releases it for the server to
// bind. Marginally racy, but fine for a test on loopback.
func freeAddr(t *testing.T) string {
	t.Helper()
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatalf("listen: %v", err)
	}
	addr := l.Addr().String()
	l.Close()
	return addr
}

// TestServeSubmitAndSIGTERMDrain runs the real binary entry point,
// submits a job over HTTP, then delivers SIGTERM and verifies run
// returns cleanly after draining the in-flight work.
func TestServeSubmitAndSIGTERMDrain(t *testing.T) {
	addr := freeAddr(t)
	var buf strings.Builder
	done := make(chan error, 1)
	go func() {
		done <- run([]string{"-addr", addr, "-queue", "4", "-workers", "2"}, &buf)
	}()

	base := "http://" + addr
	waitHealthy(t, base)

	spec := `{"n":30,"topology":"geometric","query":"min","attack":"drop","malicious":1,"trials":2,"seed":7}`
	resp, err := http.Post(base+"/v1/jobs", "application/json", strings.NewReader(spec))
	if err != nil {
		t.Fatalf("submit: %v", err)
	}
	var submitted struct {
		ID string `json:"id"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&submitted); err != nil {
		t.Fatalf("decode submit response: %v", err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusAccepted || submitted.ID == "" {
		t.Fatalf("submit: status %d, id %q", resp.StatusCode, submitted.ID)
	}

	// SIGTERM is caught by signal.NotifyContext inside run, so it drains
	// the job we just submitted instead of killing the test process.
	if err := syscall.Kill(os.Getpid(), syscall.SIGTERM); err != nil {
		t.Fatalf("kill: %v", err)
	}
	select {
	case err := <-done:
		if err != nil {
			t.Fatalf("run returned error after SIGTERM: %v\noutput:\n%s", err, buf.String())
		}
	case <-time.After(60 * time.Second):
		t.Fatalf("server did not drain within 60s\noutput:\n%s", buf.String())
	}
	out := buf.String()
	for _, want := range []string{"listening on", "draining", "drained, bye"} {
		if !strings.Contains(out, want) {
			t.Errorf("output missing %q:\n%s", want, out)
		}
	}
}

// TestSweepResumesAcrossSIGTERMRestart is the full restart story: a
// server with -data-dir is killed mid-sweep, a second server over the
// same directory gets the identical grid resubmitted, and every cell
// the first server completed is served from the store instead of
// re-executed.
func TestSweepResumesAcrossSIGTERMRestart(t *testing.T) {
	dataDir := t.TempDir()
	grid := `{"n": [40, 50, 60, 70], "attack": ["none", "drop"], "trials": 6, "seed": 11, "workers": 1}`

	type sweepView struct {
		Status   string `json:"status"`
		Cells    int    `json:"cells"`
		Executed int    `json:"executed"`
		Cached   int    `json:"cached"`
		Failed   int    `json:"failed"`
	}
	getView := func(t *testing.T, base, id string) sweepView {
		t.Helper()
		resp, err := http.Get(base + "/v1/sweeps/" + id)
		if err != nil {
			t.Fatalf("get sweep: %v", err)
		}
		defer resp.Body.Close()
		var v sweepView
		if err := json.NewDecoder(resp.Body).Decode(&v); err != nil {
			t.Fatalf("decode sweep view: %v", err)
		}
		return v
	}
	submit := func(t *testing.T, base string) string {
		t.Helper()
		resp, err := http.Post(base+"/v1/sweeps", "application/json", strings.NewReader(grid))
		if err != nil {
			t.Fatalf("submit sweep: %v", err)
		}
		defer resp.Body.Close()
		var s struct {
			ID string `json:"id"`
		}
		if err := json.NewDecoder(resp.Body).Decode(&s); err != nil {
			t.Fatalf("decode sweep submit: %v", err)
		}
		if resp.StatusCode != http.StatusAccepted || s.ID == "" {
			t.Fatalf("submit sweep: status %d, id %q", resp.StatusCode, s.ID)
		}
		return s.ID
	}

	// First server: start the sweep, kill it after the first completion.
	addr := freeAddr(t)
	var buf strings.Builder
	done := make(chan error, 1)
	go func() {
		done <- run([]string{"-addr", addr, "-workers", "1", "-data-dir", dataDir}, &buf)
	}()
	base := "http://" + addr
	waitHealthy(t, base)
	id := submit(t, base)
	deadline := time.Now().Add(60 * time.Second)
	for getView(t, base, id).Executed == 0 && time.Now().Before(deadline) {
		time.Sleep(5 * time.Millisecond)
	}
	if err := syscall.Kill(os.Getpid(), syscall.SIGTERM); err != nil {
		t.Fatalf("kill: %v", err)
	}
	select {
	case err := <-done:
		if err != nil {
			t.Fatalf("first server exited with error: %v\noutput:\n%s", err, buf.String())
		}
	case <-time.After(60 * time.Second):
		t.Fatalf("first server did not drain\noutput:\n%s", buf.String())
	}

	// Second server over the same data dir: the resubmitted grid must
	// serve every previously completed cell from the store.
	addr2 := freeAddr(t)
	var buf2 strings.Builder
	done2 := make(chan error, 1)
	go func() {
		done2 <- run([]string{"-addr", addr2, "-workers", "2", "-data-dir", dataDir}, &buf2)
	}()
	base2 := "http://" + addr2
	waitHealthy(t, base2)
	id2 := submit(t, base2)
	var v sweepView
	for {
		v = getView(t, base2, id2)
		if v.Status != "running" {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("resumed sweep stuck: %+v\noutput:\n%s", v, buf2.String())
		}
		time.Sleep(5 * time.Millisecond)
	}
	if v.Status != "done" || v.Failed != 0 {
		t.Fatalf("resumed sweep: %+v", v)
	}
	if v.Cached == 0 {
		t.Fatalf("restart served nothing from the store: %+v\noutput:\n%s", v, buf2.String())
	}
	if v.Cached+v.Executed != v.Cells {
		t.Fatalf("cell accounting: %+v", v)
	}
	if !strings.Contains(buf2.String(), "result store at") {
		t.Fatalf("second server did not announce the store:\n%s", buf2.String())
	}
	if err := syscall.Kill(os.Getpid(), syscall.SIGTERM); err != nil {
		t.Fatalf("kill second server: %v", err)
	}
	select {
	case err := <-done2:
		if err != nil {
			t.Fatalf("second server exited with error: %v\noutput:\n%s", err, buf2.String())
		}
	case <-time.After(60 * time.Second):
		t.Fatalf("second server did not drain\noutput:\n%s", buf2.String())
	}
}

func waitHealthy(t *testing.T, base string) {
	t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	for time.Now().Before(deadline) {
		resp, err := http.Get(base + "/healthz")
		if err == nil {
			resp.Body.Close()
			if resp.StatusCode == http.StatusOK {
				return
			}
		}
		time.Sleep(20 * time.Millisecond)
	}
	t.Fatalf("server at %s never became healthy", base)
}
