package main

import (
	"encoding/json"
	"net"
	"net/http"
	"os"
	"strings"
	"syscall"
	"testing"
	"time"
)

func TestVersionFlag(t *testing.T) {
	var buf strings.Builder
	if err := run([]string{"-version"}, &buf); err != nil {
		t.Fatalf("run: %v", err)
	}
	if got := buf.String(); !strings.Contains(got, "vmat-server") || !strings.Contains(got, version) {
		t.Fatalf("version output = %q, want it to name the binary and version %q", got, version)
	}
}

func TestBadFlagRejected(t *testing.T) {
	var buf strings.Builder
	if err := run([]string{"-no-such-flag"}, &buf); err == nil {
		t.Fatal("run accepted an unknown flag")
	}
}

// freeAddr reserves an ephemeral port and releases it for the server to
// bind. Marginally racy, but fine for a test on loopback.
func freeAddr(t *testing.T) string {
	t.Helper()
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatalf("listen: %v", err)
	}
	addr := l.Addr().String()
	l.Close()
	return addr
}

// TestServeSubmitAndSIGTERMDrain runs the real binary entry point,
// submits a job over HTTP, then delivers SIGTERM and verifies run
// returns cleanly after draining the in-flight work.
func TestServeSubmitAndSIGTERMDrain(t *testing.T) {
	addr := freeAddr(t)
	var buf strings.Builder
	done := make(chan error, 1)
	go func() {
		done <- run([]string{"-addr", addr, "-queue", "4", "-workers", "2"}, &buf)
	}()

	base := "http://" + addr
	waitHealthy(t, base)

	spec := `{"n":30,"topology":"geometric","query":"min","attack":"drop","malicious":1,"trials":2,"seed":7}`
	resp, err := http.Post(base+"/v1/jobs", "application/json", strings.NewReader(spec))
	if err != nil {
		t.Fatalf("submit: %v", err)
	}
	var submitted struct {
		ID string `json:"id"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&submitted); err != nil {
		t.Fatalf("decode submit response: %v", err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusAccepted || submitted.ID == "" {
		t.Fatalf("submit: status %d, id %q", resp.StatusCode, submitted.ID)
	}

	// SIGTERM is caught by signal.NotifyContext inside run, so it drains
	// the job we just submitted instead of killing the test process.
	if err := syscall.Kill(os.Getpid(), syscall.SIGTERM); err != nil {
		t.Fatalf("kill: %v", err)
	}
	select {
	case err := <-done:
		if err != nil {
			t.Fatalf("run returned error after SIGTERM: %v\noutput:\n%s", err, buf.String())
		}
	case <-time.After(60 * time.Second):
		t.Fatalf("server did not drain within 60s\noutput:\n%s", buf.String())
	}
	out := buf.String()
	for _, want := range []string{"listening on", "draining", "drained, bye"} {
		if !strings.Contains(out, want) {
			t.Errorf("output missing %q:\n%s", want, out)
		}
	}
}

func waitHealthy(t *testing.T, base string) {
	t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	for time.Now().Before(deadline) {
		resp, err := http.Get(base + "/healthz")
		if err == nil {
			resp.Body.Close()
			if resp.StatusCode == http.StatusOK {
				return
			}
		}
		time.Sleep(20 * time.Millisecond)
	}
	t.Fatalf("server at %s never became healthy", base)
}
