// Command vmat-sim runs one VMAT execution over a simulated sensor
// network and reports the outcome: the aggregate answer on the happy
// path, or the pinpointing/revocation verdict when an attack corrupted
// the run.
//
// Usage:
//
//	vmat-sim -n 100 -query min
//	vmat-sim -n 100 -query count -synopses 100 -attack drop -malicious 2
//	vmat-sim -n 80 -attack drop-choke -malicious 3 -multipath
//
// Attacks: none, drop, hide, junk, choke, drop-choke, mute.
//
// The -cpuprofile and -memprofile flags write pprof profiles covering
// the execution.
package main

import (
	"flag"
	"fmt"
	"io"
	"math"
	"os"

	"repro/internal/adversary"
	"repro/internal/core"
	"repro/internal/crypto"
	"repro/internal/faults"
	"repro/internal/keydist"
	"repro/internal/prof"
	"repro/internal/service"
	"repro/internal/simnet"
	"repro/internal/topology"
)

// version is stamped by the Makefile via -ldflags "-X main.version=...".
var version = "dev"

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "vmat-sim:", err)
		os.Exit(1)
	}
}

func run(args []string, w io.Writer) error {
	fs := flag.NewFlagSet("vmat-sim", flag.ContinueOnError)
	n := fs.Int("n", 100, "number of nodes (node 0 is the base station)")
	topo := fs.String("topology", "geometric", "topology: geometric|grid|line")
	query := fs.String("query", "min", "query: min|count|sum|average")
	loss := fs.Float64("loss", 0, "per-message radio loss probability")
	campaign := fs.Int("campaign", 1, "number of consecutive executions sharing one revocation registry (min query only)")
	theta := fs.Int("theta", 0, "whole-sensor revocation threshold (0 = auto-calibrate)")
	synopses := fs.Int("synopses", 100, "synopsis instances for count/sum")
	attack := fs.String("attack", "none", "attack: none|drop|hide|junk|choke|drop-choke|mute")
	malicious := fs.Int("malicious", 1, "number of malicious sensors (ignored for -attack none)")
	multipath := fs.Bool("multipath", false, "use ring-based multi-path aggregation")
	seed := fs.Uint64("seed", 1, "simulation seed")
	crashProb := fs.Float64("crash", 0, "per-node per-slot crash probability (fault injection)")
	recoverProb := fs.Float64("recover", 0.05, "per-slot recovery probability for crashed nodes")
	linkDown := fs.Float64("link-down", 0, "per-link per-slot churn-down probability (fault injection)")
	linkUp := fs.Float64("link-up", 0.2, "per-slot restore probability for downed links")
	burstLoss := fs.Float64("burst-loss", 0, "bad-state loss rate of the Gilbert-Elliott burst chain (0 = off)")
	arq := fs.Bool("arq", false, "enable the link-layer ARQ (per-hop acks, bounded-backoff retransmissions)")
	maxSlots := fs.Int("max-slots", 0, "execution slot deadline (0 = default when faults/ARQ are on, unlimited otherwise)")
	workers := fs.Int("workers", 0, "accepted for compatibility; the simulator is a single-threaded event loop")
	verbose := fs.Bool("v", false, "print the execution event trace")
	trace := fs.Bool("trace", false, "print the execution event trace as NDJSON (same encoding as the server's /trace endpoint)")
	cpuProfile := fs.String("cpuprofile", "", "write a CPU profile to this file")
	memProfile := fs.String("memprofile", "", "write a heap profile to this file at exit")
	showVersion := fs.Bool("version", false, "print version and exit")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *showVersion {
		fmt.Fprintln(w, "vmat-sim", version)
		return nil
	}
	if *n < 2 {
		return fmt.Errorf("need at least 2 nodes, got %d", *n)
	}
	stopProfiles, err := prof.Start(*cpuProfile, *memProfile)
	if err != nil {
		return err
	}
	defer stopProfiles()

	rng := crypto.NewStreamFromSeed(*seed)
	graph, err := buildTopology(*topo, *n, rng)
	if err != nil {
		return err
	}
	// A grid rounds the node count up to fill its rectangle; keep every
	// downstream consumer (deployment, malicious sampling, truth loops)
	// on the actual size.
	*n = graph.NumNodes()
	params := keydist.Params{PoolSize: 10000, RingSize: 300}
	dep, err := keydist.NewDeployment(*n, params, crypto.KeyFromUint64(*seed), rng.Fork([]byte("keys")))
	if err != nil {
		return err
	}

	mal := map[topology.NodeID]bool{}
	if *attack != "none" {
		for attempts := 0; len(mal) < *malicious && attempts < 20**malicious+60; attempts++ {
			cand := topology.NodeID(rng.Intn(*n-1) + 1)
			if mal[cand] {
				continue
			}
			mal[cand] = true
			if !graph.ConnectedExcluding(topology.BaseStation, mal) {
				delete(mal, cand)
			}
		}
	}
	adv, err := pickAttack(*attack)
	if err != nil {
		return err
	}

	th := *theta
	if th == 0 {
		th = keydist.SuggestTheta(params, maxInt(len(mal), 1), *n, 0.05)
	}
	registry := keydist.NewRegistry(dep, th)
	cfg := core.Config{
		Graph:      graph,
		Deployment: dep,
		Registry:   registry,
		Malicious:  mal,
		Adversary:  adv,
		Multipath:  *multipath,
		LossRate:   *loss,
		Seed:       *seed,
		Workers:    *workers,
		Readings: func(id topology.NodeID, _ int) float64 {
			if id == topology.BaseStation {
				return core.Inf()
			}
			return 100 + float64(id)
		},
		AdversaryFavored: *attack != "none",
		MaxSlots:         *maxSlots,
	}
	if *crashProb > 0 || *linkDown > 0 || *burstLoss > 0 {
		spec := &faults.Spec{}
		if *crashProb > 0 {
			spec.CrashProb = *crashProb
			spec.RecoverProb = *recoverProb
		}
		if *linkDown > 0 {
			spec.LinkDownProb = *linkDown
			spec.LinkUpProb = *linkUp
		}
		if *burstLoss > 0 {
			spec.Burst = &faults.BurstSpec{EnterProb: 0.05, ExitProb: 0.2, LossBad: *burstLoss}
		}
		cfg.Faults = spec
	}
	if *arq {
		cfg.ARQ = &simnet.ARQConfig{}
	}
	if *verbose {
		cfg.Trace = func(ev core.Event) { fmt.Fprintln(w, ev) }
	}
	if *trace {
		enc := service.NewTraceEncoder(w)
		cfg.Trace = func(ev core.Event) { _ = enc.Encode(0, ev) }
	}

	fmt.Fprintf(w, "network: %d nodes, %d edges, depth %d, %d malicious\n",
		graph.NumNodes(), graph.NumEdges(), graph.Depth(topology.BaseStation), len(mal))

	switch *query {
	case "min":
		for exec := 1; exec <= *campaign; exec++ {
			if *campaign > 1 {
				fmt.Fprintf(w, "--- execution %d ---\n", exec)
				cfg.Seed = *seed + uint64(exec)
			}
			eng, err := core.NewEngine(cfg)
			if err != nil {
				return err
			}
			out, err := eng.Run()
			if err != nil {
				return err
			}
			report(w, out)
			if out.Kind == core.OutcomeResult {
				fmt.Fprintf(w, "minimum: %g\n", out.Mins[0])
				if *campaign > 1 {
					fmt.Fprintf(w, "campaign converged after %d executions; %d keys individually revoked\n",
						exec, registry.KeyRevocationAnnouncements())
					break
				}
			}
		}
	case "count":
		res, err := core.RunCount(cfg, func(id topology.NodeID) bool { return id%2 == 0 }, *synopses)
		if err != nil {
			return err
		}
		report(w, res.Outcome)
		if res.Answered() {
			truth := 0
			for id := 2; id < *n; id += 2 {
				truth++
			}
			fmt.Fprintf(w, "count estimate: %.1f (truth %d, predicate: even IDs)\n", res.Estimate, truth)
		}
	case "sum":
		domain := []int64{1, 2, 3, 4, 5, 6, 7, 8, 9, 10}
		reading := func(id topology.NodeID) int64 {
			if id == topology.BaseStation {
				return 0
			}
			return int64(id%10) + 1
		}
		res, err := core.RunSum(cfg, reading, domain, *synopses)
		if err != nil {
			return err
		}
		report(w, res.Outcome)
		if res.Answered() {
			var truth int64
			for id := 1; id < *n; id++ {
				truth += reading(topology.NodeID(id))
			}
			fmt.Fprintf(w, "sum estimate: %.1f (truth %d)\n", res.Estimate, truth)
		}
	case "average":
		domain := []int64{1, 2, 3, 4, 5}
		reading := func(id topology.NodeID) int64 {
			if id == topology.BaseStation {
				return 0
			}
			return int64(id%5) + 1
		}
		res, err := core.RunAverageCombined(cfg, reading, domain, *synopses)
		if err != nil {
			return err
		}
		report(w, res.Sum.Outcome)
		if !math.IsNaN(res.Estimate) {
			var truth float64
			for id := 1; id < *n; id++ {
				truth += float64(reading(topology.NodeID(id)))
			}
			truth /= float64(*n - 1)
			fmt.Fprintf(w, "average estimate: %.2f (truth %.2f)\n", res.Estimate, truth)
		}
	default:
		return fmt.Errorf("unknown query %q", *query)
	}
	return nil
}

// buildTopology constructs the requested deployment shape over n nodes.
func buildTopology(kind string, n int, rng *crypto.Stream) (*topology.Graph, error) {
	switch kind {
	case "geometric":
		g, _ := topology.RandomGeometric(n, radiusFor(n), rng.Fork([]byte("topo")))
		return g, nil
	case "grid":
		side := 1
		for side*side < n {
			side++
		}
		return topology.Grid(side, (n+side-1)/side), nil
	case "line":
		return topology.Line(n), nil
	default:
		return nil, fmt.Errorf("unknown topology %q", kind)
	}
}

func maxInt(a, b int) int {
	if a > b {
		return a
	}
	return b
}

func pickAttack(name string) (core.Adversary, error) {
	switch name {
	case "none":
		return core.HonestAdversary{}, nil
	case "drop":
		return adversary.NewDropper(1000), nil
	case "hide":
		return adversary.NewHider(), nil
	case "junk":
		return adversary.NewJunkInjector(-1e6), nil
	case "choke":
		return adversary.NewChoker(), nil
	case "drop-choke":
		return adversary.NewDropAndChoke(1000), nil
	case "mute":
		return adversary.NewMute(), nil
	default:
		return nil, fmt.Errorf("unknown attack %q", name)
	}
}

func report(w io.Writer, out *core.Outcome) {
	fmt.Fprintf(w, "outcome: %v\n", out.Kind)
	fmt.Fprintf(w, "cost: %d slots (%.1f flooding rounds), %d predicate tests, %d KB total traffic\n",
		out.Slots, out.FloodingRounds, out.PredicateTests, out.Stats.TotalBytes()/1024)
	if out.Partial {
		fmt.Fprintf(w, "degraded: partial result, %d sensors unreachable, deadline exceeded: %v\n",
			out.Unreachable, out.DeadlineExceeded)
	}
	if out.Stats.Retransmits > 0 || out.Stats.ARQFailed > 0 {
		fmt.Fprintf(w, "arq: %d retransmissions, %d frames abandoned, %d acks (%d lost)\n",
			out.Stats.Retransmits, out.Stats.ARQFailed, out.Stats.AcksSent, out.Stats.AcksLost)
	}
	if c := out.Faults; c != (faults.Counters{}) {
		fmt.Fprintf(w, "faults: %d crashes, %d recoveries, %d links down, %d restored\n",
			c.Crashes, c.Recoveries, c.LinksDowned, c.LinksRestored)
	}
	if len(out.RevokedKeys) > 0 || len(out.RevokedNodes) > 0 {
		fmt.Fprintf(w, "revoked: keys %v, sensors %v\n", out.RevokedKeys, out.RevokedNodes)
	}
	if out.Veto != nil {
		fmt.Fprintf(w, "veto: sensor %d, instance %d, value %g, level %d\n",
			out.Veto.Vetoer, out.Veto.Instance, out.Veto.Value, out.Veto.Level)
	}
}

func radiusFor(n int) float64 {
	// Expected degree around 12 keeps random geometric graphs connected
	// without stitching doing much work.
	return math.Sqrt(12 / (math.Pi * float64(n)))
}
