package main

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"
)

func runCLI(t *testing.T, args ...string) string {
	t.Helper()
	var buf bytes.Buffer
	if err := run(args, &buf); err != nil {
		t.Fatalf("run(%v): %v", args, err)
	}
	return buf.String()
}

func TestSimHonestMin(t *testing.T) {
	out := runCLI(t, "-n", "30", "-seed", "3")
	if !strings.Contains(out, "outcome: result") {
		t.Fatalf("missing result outcome:\n%s", out)
	}
	if !strings.Contains(out, "minimum: 101") {
		t.Fatalf("wrong minimum (node 1 holds 101):\n%s", out)
	}
}

func TestSimCountQuery(t *testing.T) {
	out := runCLI(t, "-n", "30", "-query", "count", "-synopses", "40", "-seed", "4")
	if !strings.Contains(out, "count estimate:") {
		t.Fatalf("missing count estimate:\n%s", out)
	}
}

func TestSimSumQuery(t *testing.T) {
	out := runCLI(t, "-n", "25", "-query", "sum", "-synopses", "40", "-seed", "5")
	if !strings.Contains(out, "sum estimate:") {
		t.Fatalf("missing sum estimate:\n%s", out)
	}
}

func TestSimJunkAttackRevokes(t *testing.T) {
	out := runCLI(t, "-n", "25", "-attack", "junk", "-seed", "6")
	if !strings.Contains(out, "junk-agg-revocation") {
		t.Fatalf("junk attack not classified:\n%s", out)
	}
	if !strings.Contains(out, "revoked:") {
		t.Fatalf("no revocation reported:\n%s", out)
	}
}

func TestSimVerboseTrace(t *testing.T) {
	out := runCLI(t, "-n", "20", "-v", "-seed", "7")
	for _, want := range []string{"phase announce", "phase tree-formation", "phase aggregation", "outcome result"} {
		if !strings.Contains(out, want) {
			t.Fatalf("trace missing %q:\n%s", want, out)
		}
	}
}

func TestSimMultipathFlag(t *testing.T) {
	out := runCLI(t, "-n", "25", "-multipath", "-seed", "8")
	if !strings.Contains(out, "outcome: result") {
		t.Fatalf("multipath run failed:\n%s", out)
	}
}

func TestSimAverageQuery(t *testing.T) {
	out := runCLI(t, "-n", "25", "-query", "average", "-synopses", "40", "-seed", "10")
	if !strings.Contains(out, "average estimate:") {
		t.Fatalf("missing average estimate:\n%s", out)
	}
}

func TestSimTopologies(t *testing.T) {
	for _, topo := range []string{"geometric", "grid", "line"} {
		out := runCLI(t, "-n", "12", "-topology", topo, "-seed", "11")
		if !strings.Contains(out, "outcome: result") {
			t.Fatalf("topology %s failed:\n%s", topo, out)
		}
	}
}

func TestSimCampaignMode(t *testing.T) {
	out := runCLI(t, "-n", "30", "-attack", "drop", "-campaign", "10", "-seed", "12")
	if !strings.Contains(out, "--- execution 1 ---") {
		t.Fatalf("campaign mode did not iterate:\n%s", out)
	}
}

func TestSimLossFlag(t *testing.T) {
	out := runCLI(t, "-n", "20", "-loss", "0.01", "-seed", "13")
	if !strings.Contains(out, "outcome:") {
		t.Fatalf("lossy run produced no outcome:\n%s", out)
	}
}

func TestSimRejectsBadFlags(t *testing.T) {
	var buf bytes.Buffer
	if err := run([]string{"-n", "1"}, &buf); err == nil {
		t.Fatal("n=1 accepted")
	}
	if err := run([]string{"-query", "mode"}, &buf); err == nil {
		t.Fatal("unknown query accepted")
	}
	if err := run([]string{"-attack", "nuke"}, &buf); err == nil {
		t.Fatal("unknown attack accepted")
	}
	if err := run([]string{"-topology", "torus"}, &buf); err == nil {
		t.Fatal("unknown topology accepted")
	}
}

func TestSimDeterministicForSeed(t *testing.T) {
	a := runCLI(t, "-n", "30", "-attack", "drop", "-seed", "9")
	b := runCLI(t, "-n", "30", "-attack", "drop", "-seed", "9")
	if a != b {
		t.Fatal("same seed produced different output")
	}
}

func TestSimWorkersFlagInvisibleInOutput(t *testing.T) {
	a := runCLI(t, "-n", "30", "-attack", "drop", "-seed", "9", "-workers", "1")
	b := runCLI(t, "-n", "30", "-attack", "drop", "-seed", "9", "-workers", "8")
	if a != b {
		t.Fatal("worker count changed the execution output")
	}
}

func TestSimVersionFlag(t *testing.T) {
	out := runCLI(t, "-version")
	if !strings.Contains(out, "vmat-sim") || !strings.Contains(out, version) {
		t.Fatalf("version output = %q", out)
	}
}

func TestSimTraceNDJSON(t *testing.T) {
	out := runCLI(t, "-n", "20", "-seed", "3", "-trace")
	lines := strings.Split(strings.TrimSpace(out), "\n")
	var events int
	for _, line := range lines {
		if !strings.HasPrefix(line, "{") {
			continue // human-readable report lines
		}
		events++
		var ev map[string]any
		if err := json.Unmarshal([]byte(line), &ev); err != nil {
			t.Fatalf("trace line is not JSON: %q: %v", line, err)
		}
		if _, ok := ev["kind"]; !ok {
			t.Fatalf("trace line missing kind: %q", line)
		}
		if trial, ok := ev["trial"].(float64); !ok || trial != 0 {
			t.Fatalf("trace line should carry trial 0: %q", line)
		}
	}
	if events == 0 {
		t.Fatalf("no NDJSON events in output:\n%s", out)
	}
}
