// Command vmat-store is the offline admin tool for a vmat-server data
// directory: inspect the segment layout, verify every record without
// writing a byte, force a compaction, or migrate a pre-segmented
// journal ahead of a deploy.
//
//	vmat-store inspect <data-dir>   show segments, manifest, snapshot
//	vmat-store verify  <data-dir>   read-only integrity pass (exit 1 on damage)
//	vmat-store compact <data-dir>   merge sealed segments, drop dead bytes
//	vmat-store migrate <data-dir>   adopt a legacy journal.vmat layout now
//
// inspect and verify never modify the directory. compact and migrate
// take exclusive ownership of it for their duration — do not run them
// against a directory a live vmat-server is serving.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"time"

	"repro/internal/store"
)

var version = "dev"

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "vmat-store:", err)
		os.Exit(1)
	}
}

func usage(w io.Writer) {
	fmt.Fprintln(w, `usage: vmat-store <command> <data-dir>

commands:
  inspect   show the segment layout, manifest, and snapshot state
  verify    read-only integrity pass over every record (exit 1 on damage)
  compact   merge sealed segments and reclaim dead bytes
  migrate   adopt a legacy journal.vmat layout without starting a server
  version   print version`)
}

func run(args []string, w io.Writer) error {
	if len(args) == 0 {
		usage(w)
		return fmt.Errorf("missing command")
	}
	cmd, rest := args[0], args[1:]
	switch cmd {
	case "version", "-version", "--version":
		fmt.Fprintln(w, "vmat-store", version)
		return nil
	case "help", "-h", "--help":
		usage(w)
		return nil
	case "inspect", "verify", "compact", "migrate":
	default:
		usage(w)
		return fmt.Errorf("unknown command %q", cmd)
	}

	fs := flag.NewFlagSet("vmat-store "+cmd, flag.ContinueOnError)
	fs.SetOutput(w)
	segmentBytes := fs.Int64("store-segment-bytes", 64<<20, "segment roll threshold for compact/migrate")
	if err := fs.Parse(rest); err != nil {
		return err
	}
	if fs.NArg() != 1 {
		usage(w)
		return fmt.Errorf("%s takes exactly one data directory", cmd)
	}
	dir := fs.Arg(0)

	switch cmd {
	case "inspect":
		return inspect(dir, w)
	case "verify":
		return verify(dir, w)
	case "compact":
		return compact(dir, *segmentBytes, w)
	case "migrate":
		return migrate(dir, *segmentBytes, w)
	}
	return nil
}

func inspect(dir string, w io.Writer) error {
	rep, err := store.Inspect(dir)
	if err != nil {
		return err
	}
	fmt.Fprintf(w, "store: %s\n", rep.Dir)
	switch {
	case rep.ManifestError != "":
		fmt.Fprintf(w, "manifest: UNREADABLE (%s)\n", rep.ManifestError)
	case rep.HasManifest:
		fmt.Fprintf(w, "manifest: generation %d, next id %d\n", rep.ManifestGeneration, rep.NextID)
	default:
		fmt.Fprintln(w, "manifest: none (layout below is what open would bootstrap)")
	}
	fmt.Fprintf(w, "segments: %d\n", len(rep.Segments))
	for _, sg := range rep.Segments {
		size := "MISSING"
		if sg.Bytes >= 0 {
			size = fmt.Sprintf("%d bytes", sg.Bytes)
		}
		fmt.Fprintf(w, "  %s  %s\n", sg.Name, size)
	}
	for _, sg := range rep.Unlisted {
		fmt.Fprintf(w, "  %s  %d bytes  (UNLISTED — open would delete)\n", sg.Name, sg.Bytes)
	}
	if rep.HasLegacyJournal {
		fmt.Fprintf(w, "legacy journal: %s (%d bytes) — run `vmat-store migrate %s`\n", store.JournalName, rep.LegacyJournalBytes, dir)
	}
	switch {
	case rep.SnapshotError != "":
		fmt.Fprintf(w, "snapshot: UNUSABLE (%s)\n", rep.SnapshotError)
	case rep.HasSnapshot:
		fmt.Fprintf(w, "snapshot: %d keys, %s old\n", rep.SnapshotKeys, time.Duration(rep.SnapshotAgeSeconds)*time.Second)
	default:
		fmt.Fprintln(w, "snapshot: none (next open replays in full)")
	}
	return nil
}

func verify(dir string, w io.Writer) error {
	rep, err := store.Verify(dir)
	if err != nil {
		return err
	}
	fmt.Fprintf(w, "verified %d segments: %d records, %d live keys, %d dead records\n",
		rep.Segments, rep.Records, rep.LiveKeys, rep.DeadRecords)
	for _, warn := range rep.Warnings {
		fmt.Fprintf(w, "warning: %s\n", warn)
	}
	for _, p := range rep.Problems {
		fmt.Fprintf(w, "PROBLEM: %s\n", p)
	}
	if !rep.OK() {
		return fmt.Errorf("%d problems found", len(rep.Problems))
	}
	fmt.Fprintln(w, "ok")
	return nil
}

func compact(dir string, segmentBytes int64, w io.Writer) error {
	logf := func(format string, args ...any) { fmt.Fprintf(w, format+"\n", args...) }
	s, err := store.Open(dir, store.Config{SegmentBytes: segmentBytes, Log: logf})
	if err != nil {
		return err
	}
	defer s.Close()
	before := s.Status()
	if err := s.Compact(); err != nil {
		return err
	}
	after := s.Status()
	fmt.Fprintf(w, "compacted: %d -> %d segments, dead bytes %d -> %d, %d entries\n",
		before.Segments, after.Segments, before.DeadBytes, after.DeadBytes, after.Entries)
	return nil
}

func migrate(dir string, segmentBytes int64, w io.Writer) error {
	logf := func(format string, args ...any) { fmt.Fprintf(w, format+"\n", args...) }
	s, err := store.Open(dir, store.Config{SegmentBytes: segmentBytes, Log: logf})
	if err != nil {
		return err
	}
	st := s.Status()
	if err := s.Close(); err != nil {
		return err
	}
	fmt.Fprintf(w, "migrated: %d entries in %d segments, generation %d\n", st.Entries, st.Segments, st.Generation)
	return nil
}
