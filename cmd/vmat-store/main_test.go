package main

import (
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/store"
)

// seedStore builds a segmented store with a few rolls, some deletes,
// and a clean close.
func seedStore(t *testing.T, dir string) {
	t.Helper()
	s, err := store.Open(dir, store.Config{SegmentBytes: 512})
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	for i := 0; i < 30; i++ {
		key := strings.Repeat("k", 8) + string(rune('a'+i%26)) + string(rune('0'+i/26))
		if err := s.Put(key, "test", strings.Repeat("v", 40), store.Meta{}); err != nil {
			t.Fatalf("Put: %v", err)
		}
		if i%5 == 0 {
			if _, err := s.Delete(key); err != nil {
				t.Fatalf("Delete: %v", err)
			}
		}
	}
	if err := s.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
}

func runCmd(t *testing.T, args ...string) (string, error) {
	t.Helper()
	var sb strings.Builder
	err := run(args, &sb)
	return sb.String(), err
}

func TestInspectAndVerify(t *testing.T) {
	dir := t.TempDir()
	seedStore(t, dir)

	out, err := runCmd(t, "inspect", dir)
	if err != nil {
		t.Fatalf("inspect: %v\n%s", err, out)
	}
	for _, want := range []string{"manifest: generation", "segments:", "snapshot:"} {
		if !strings.Contains(out, want) {
			t.Fatalf("inspect output missing %q:\n%s", want, out)
		}
	}

	out, err = runCmd(t, "verify", dir)
	if err != nil {
		t.Fatalf("verify: %v\n%s", err, out)
	}
	if !strings.Contains(out, "ok") || strings.Contains(out, "PROBLEM") {
		t.Fatalf("verify of a clean store:\n%s", out)
	}
}

func TestVerifyFlagsDamage(t *testing.T) {
	dir := t.TempDir()
	seedStore(t, dir)

	// Damage a sealed segment mid-file: committed data is affected, so
	// verify must fail loudly.
	segs, err := filepath.Glob(filepath.Join(dir, "seg-*.vmat"))
	if err != nil || len(segs) < 2 {
		t.Fatalf("want ≥2 segments, got %v (%v)", segs, err)
	}
	f, err := os.OpenFile(segs[0], os.O_RDWR, 0)
	if err != nil {
		t.Fatalf("open segment: %v", err)
	}
	if _, err := f.WriteAt([]byte{0xde, 0xad}, 20); err != nil {
		t.Fatalf("damage segment: %v", err)
	}
	f.Close()

	out, err := runCmd(t, "verify", dir)
	if err == nil {
		t.Fatalf("verify accepted a damaged sealed segment:\n%s", out)
	}
	if !strings.Contains(out, "PROBLEM") {
		t.Fatalf("verify output has no PROBLEM line:\n%s", out)
	}
}

func TestCompactCommand(t *testing.T) {
	dir := t.TempDir()
	seedStore(t, dir)

	out, err := runCmd(t, "compact", "-store-segment-bytes", "512", dir)
	if err != nil {
		t.Fatalf("compact: %v\n%s", err, out)
	}
	if !strings.Contains(out, "compacted:") {
		t.Fatalf("compact output:\n%s", out)
	}
	// The compacted store still verifies clean and serves everything.
	if out, err := runCmd(t, "verify", dir); err != nil {
		t.Fatalf("verify after compact: %v\n%s", err, out)
	}
}

func TestMigrateCommand(t *testing.T) {
	dir := t.TempDir()
	// Hand-build a legacy journal via a fresh store in another dir,
	// then move its segment bytes in as journal.vmat.
	scratch := t.TempDir()
	s, err := store.Open(scratch, store.Config{})
	if err != nil {
		t.Fatalf("Open scratch: %v", err)
	}
	want := map[string]string{}
	for i := 0; i < 5; i++ {
		k := strings.Repeat("m", 6) + string(rune('a'+i))
		if err := s.Put(k, "test", k+"-value", store.Meta{}); err != nil {
			t.Fatalf("Put: %v", err)
		}
		want[k] = k + "-value"
	}
	s.Close()
	seg, err := os.ReadFile(filepath.Join(scratch, "seg-00000001-0001.vmat"))
	if err != nil {
		t.Fatalf("read scratch segment: %v", err)
	}
	if err := os.WriteFile(filepath.Join(dir, store.JournalName), seg, 0o644); err != nil {
		t.Fatalf("write legacy journal: %v", err)
	}

	out, err := runCmd(t, "migrate", dir)
	if err != nil {
		t.Fatalf("migrate: %v\n%s", err, out)
	}
	if !strings.Contains(out, "migrated:") || !strings.Contains(out, "migrated legacy") {
		t.Fatalf("migrate output:\n%s", out)
	}
	if _, err := os.Stat(filepath.Join(dir, store.JournalName)); !os.IsNotExist(err) {
		t.Fatalf("legacy journal still present: %v", err)
	}

	s2, err := store.Open(dir, store.Config{})
	if err != nil {
		t.Fatalf("Open migrated: %v", err)
	}
	defer s2.Close()
	for k, v := range want {
		e, ok, err := s2.Get(k)
		if err != nil || !ok {
			t.Fatalf("Get(%s): ok=%v err=%v", k, ok, err)
		}
		var got string
		if json.Unmarshal(e.Value, &got); got != v {
			t.Fatalf("Get(%s) = %q, want %q", k, got, v)
		}
	}
}

func TestUnknownCommand(t *testing.T) {
	if _, err := runCmd(t, "explode", "/tmp/nope"); err == nil {
		t.Fatal("unknown command accepted")
	}
	if _, err := runCmd(t, "verify"); err == nil {
		t.Fatal("missing directory accepted")
	}
}
