// Command vmat-worker joins a vmat-server fleet and executes scenario
// work units leased from the coordinator.
//
// Usage:
//
//	vmat-worker -server http://localhost:8080 -name lab-3
//
// The worker registers with the coordinator at -server (a vmat-server
// started with -cluster). When the coordinator advertises its streaming
// transport, the worker opens one persistent binary conn and executes
// batched unit grants from it — whole scenarios or trial-range shards —
// streaming each completion back with the unit's content key and a
// CRC32 of the encoded rows so the coordinator can verify the bytes
// before write-back. A lost conn or restarted coordinator is survived
// in place: the worker re-registers and reconnects on a jittered
// backoff. With -http-poll (or no advertised transport) it falls back
// to leasing one unit at a time over HTTP.
//
// On SIGTERM/SIGINT the worker drains gracefully: it finishes the unit
// it holds (the coordinator keeps the lease alive via heartbeats),
// reports the result, deregisters, and exits 0. Killing it outright is
// also safe — the lease expires and the coordinator reassigns the unit,
// with identical results either way.
package main

import (
	"context"
	"flag"
	"fmt"
	"io"
	"os"
	"os/signal"
	"syscall"

	"repro/internal/cluster"
	"repro/internal/core"
	"repro/internal/metrics"
)

// version is stamped by the Makefile via -ldflags "-X main.version=...".
var version = "dev"

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "vmat-worker:", err)
		os.Exit(1)
	}
}

func run(args []string, w io.Writer) error {
	fs := flag.NewFlagSet("vmat-worker", flag.ContinueOnError)
	server := fs.String("server", "http://localhost:8080", "coordinator base URL (a vmat-server run with -cluster)")
	name := fs.String("name", "", "stable worker name for logs and per-worker metrics (default: coordinator-assigned ID)")
	httpPoll := fs.Bool("http-poll", false, "poll the HTTP lease endpoint even when the coordinator advertises the streaming transport")
	prefetch := fs.Int("prefetch", 2, "units to hold over the streaming transport (one executing, the rest queued)")
	showVersion := fs.Bool("version", false, "print version and exit")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *showVersion {
		fmt.Fprintln(w, "vmat-worker", version)
		return nil
	}

	logf := func(format string, args ...any) {
		fmt.Fprintf(w, "vmat-worker: "+format+"\n", args...)
	}
	reg := metrics.New()
	worker := cluster.NewWorker(cluster.WorkerConfig{
		Server:      *server,
		Name:        *name,
		Version:     version,
		DisableWire: *httpPoll,
		Prefetch:    *prefetch,
		Log:         logf,
		Metrics:     reg,
	})

	ctx, stop := signal.NotifyContext(context.Background(), syscall.SIGTERM, syscall.SIGINT)
	defer stop()
	logf("%s joining fleet at %s", version, *server)
	if err := worker.Run(ctx); err != nil {
		return err
	}
	// The drain line reports how much engine work this process really
	// performed — the chaos harness sums it across the fleet to bound
	// duplicate execution after coordinator kills.
	logf("engine executions: %d", reg.Counter(core.MetricExecutions).Value())
	logf("bye")
	return nil
}
