package main

import (
	"bytes"
	"context"
	"net/http"
	"net/http/httptest"
	"os"
	"strings"
	"syscall"
	"testing"
	"time"

	"repro/internal/cluster"
	"repro/internal/experiments"
)

func TestVersionFlag(t *testing.T) {
	var buf bytes.Buffer
	if err := run([]string{"-version"}, &buf); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "vmat-worker") {
		t.Fatalf("version output %q", buf.String())
	}
}

// TestSIGTERMGracefulDrain delivers a real SIGTERM to the process while
// the worker binary's run loop holds a lease mid-execution. The
// contract: finish the unit, report the result, deregister, and return
// nil (exit 0) — the coordinator must see the result, not a reassigned
// lease.
func TestSIGTERMGracefulDrain(t *testing.T) {
	coord := cluster.NewCoordinator(cluster.CoordinatorConfig{
		LeaseTTL:          500 * time.Millisecond,
		HeartbeatInterval: 50 * time.Millisecond,
		WorkerTTL:         time.Hour,
	})
	defer coord.Close()
	mux := http.NewServeMux()
	cluster.RegisterHTTP(mux, coord)
	srv := httptest.NewServer(mux)
	defer srv.Close()

	// A unit heavy enough (~500ms) that the signal sent right after the
	// lease is granted lands well before execution finishes.
	spec := experiments.ScenarioConfig{
		N: 40, Topology: "geometric", Query: "min", Attack: "drop",
		Malicious: 1, Synopses: 50, Trials: 50, Seed: 7,
	}
	spec.Normalize()
	var buf bytes.Buffer
	runDone := make(chan error, 1)
	go func() { runDone <- run([]string{"-server", srv.URL, "-name", "sigterm-test"}, &buf) }()
	deadline := time.Now().Add(10 * time.Second)
	for coord.WorkersStatus().Connected == 0 {
		if time.Now().After(deadline) {
			t.Fatal("worker never registered")
		}
		time.Sleep(2 * time.Millisecond)
	}

	type execResult struct {
		rows []experiments.ScenarioRow
		ok   bool
		err  error
	}
	res := make(chan execResult, 1)
	go func() {
		rows, ok, err := coord.Execute(context.Background(), spec)
		res <- execResult{rows, ok, err}
	}()

	// Wait until the binary's worker holds the lease, then TERM the
	// process for real — the same signal systemd or an operator sends.
	for coord.WorkersStatus().LeasesActive == 0 {
		if time.Now().After(deadline) {
			t.Fatal("worker never leased the unit")
		}
		time.Sleep(2 * time.Millisecond)
	}
	if err := syscall.Kill(os.Getpid(), syscall.SIGTERM); err != nil {
		t.Fatal(err)
	}

	if err := <-runDone; err != nil {
		t.Fatalf("run after SIGTERM = %v, want nil (exit 0)", err)
	}
	r := <-res
	if !r.ok || r.err != nil || len(r.rows) == 0 {
		t.Fatalf("held unit not completed through drain: (ok=%v, err=%v, rows=%d)", r.ok, r.err, len(r.rows))
	}
	want, err := experiments.RunScenario(spec)
	if err != nil {
		t.Fatal(err)
	}
	if len(r.rows) != len(want) {
		t.Fatalf("drained unit returned %d rows, want %d", len(r.rows), len(want))
	}
	ws := coord.WorkersStatus()
	if ws.Connected != 0 {
		t.Fatalf("worker did not deregister: %+v", ws)
	}
	if ws.LeasesExpired != 0 {
		t.Fatalf("graceful drain leaked an expired lease: %+v", ws)
	}
	out := buf.String()
	if !strings.Contains(out, "drained after 1 completed units") {
		t.Fatalf("worker log does not report the drain:\n%s", out)
	}
}
