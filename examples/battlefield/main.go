// Battlefield monitoring: a predicate COUNT under a persistent dropping
// attack, healed by VMAT's pinpointing and revocation.
//
// 120 sensors watch a field; the query counts how many currently detect
// an intrusion. Two compromised sensors silently drop the synopses
// passing through them to understate the count. Each corrupted execution
// revokes at least one of their edge keys; after a handful of executions
// the theta-threshold revokes the attackers outright and the count flows
// again — the paper's headline guarantee in action.
//
//	go run ./examples/battlefield
package main

import (
	"fmt"
	"log"

	"repro/internal/adversary"
	"repro/internal/core"
	"repro/internal/crypto"
	"repro/internal/keydist"
	"repro/internal/topology"
)

const (
	numSensors = 120
	synopses   = 100
)

func main() {
	rng := crypto.NewStreamFromSeed(7)
	graph, _ := topology.RandomGeometric(numSensors, 0.19, rng.Fork([]byte("topo")))
	deployment, err := keydist.NewDeployment(numSensors,
		keydist.Params{PoolSize: 10000, RingSize: 300},
		crypto.KeyFromUint64(7), rng.Fork([]byte("keys")))
	if err != nil {
		log.Fatal(err)
	}

	// Intrusion detected by sensors 40..79.
	detecting := func(id topology.NodeID) bool { return id >= 40 && id < 80 }
	truth := 0
	for id := 1; id < numSensors; id++ {
		if detecting(topology.NodeID(id)) {
			truth++
		}
	}

	// Compromise two sensors without partitioning the honest field.
	malicious := map[topology.NodeID]bool{}
	for len(malicious) < 2 {
		cand := topology.NodeID(rng.Intn(numSensors-1) + 1)
		malicious[cand] = true
		if !graph.ConnectedExcluding(topology.BaseStation, malicious) {
			delete(malicious, cand)
		}
	}
	fmt.Printf("field: %d sensors, %d detecting (truth=%d), compromised: %v\n",
		numSensors-1, truth, truth, keys(malicious))

	// Calibrate the whole-sensor revocation threshold to the key density
	// (Section VI-C's tradeoff, quantified by Figure 7): small enough to
	// revoke the attackers quickly, large enough that honest rings, which
	// innocently overlap the adversary's pooled keys, stay safe.
	theta := keydist.SuggestTheta(deployment.Params(), len(malicious), numSensors, 0.05)
	fmt.Printf("revocation threshold theta=%d (of %d ring keys)\n", theta, deployment.Params().RingSize)

	registry := keydist.NewRegistry(deployment, theta)
	attacker := adversary.NewDropper(1e18) // drop every synopsis passing through

	for execution := 1; execution <= 30; execution++ {
		cfg := core.Config{
			Graph:            graph,
			Deployment:       deployment,
			Registry:         registry,
			Malicious:        malicious,
			Adversary:        attacker,
			AdversaryFavored: true,
			Seed:             uint64(1000 + execution),
		}
		res, err := core.RunCount(cfg, detecting, synopses)
		if err != nil {
			log.Fatal(err)
		}
		out := res.Outcome
		switch out.Kind {
		case core.OutcomeResult:
			fmt.Printf("execution %2d: COUNT ~ %.1f (truth %d) in %.1f flooding rounds\n",
				execution, res.Estimate, truth, out.FloodingRounds)
			fmt.Printf("\nthe adversary is beaten: %d edge keys individually revoked, sensors fully revoked: %v\n",
				registry.KeyRevocationAnnouncements(), registry.RevokedNodes())
			return
		default:
			fmt.Printf("execution %2d: corrupted (%v) -> revoked keys %v, sensors %v (%d predicate tests)\n",
				execution, out.Kind, out.RevokedKeys, out.RevokedNodes, out.PredicateTests)
		}
	}
	fmt.Println("adversary still active after 30 executions (unexpected)")
}

func keys(m map[topology.NodeID]bool) []topology.NodeID {
	out := make([]topology.NodeID, 0, len(m))
	for id := range m {
		out = append(out, id)
	}
	for i := 1; i < len(out); i++ {
		for j := i; j > 0 && out[j] < out[j-1]; j-- {
			out[j], out[j-1] = out[j-1], out[j]
		}
	}
	return out
}
