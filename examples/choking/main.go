// Choking attack on the confirmation phase, survived by SOF.
//
// A compromised sensor drops the true minimum during aggregation, then
// floods spurious vetoes the moment the confirmation phase opens, so the
// honest veto is beaten everywhere (each sensor forwards only its first
// veto). Lemma 1 still guarantees the base station receives *some* veto;
// because the winner is spurious, junk-triggered pinpointing walks the
// SOF audit trail back to the choker and revokes adversary key material —
// all with symmetric keys only.
//
//	go run ./examples/choking
package main

import (
	"fmt"
	"log"

	"repro/internal/adversary"
	"repro/internal/core"
	"repro/internal/crypto"
	"repro/internal/keydist"
	"repro/internal/topology"
)

func main() {
	// The bypass topology: the vetoer (node 4) aggregates through the
	// malicious node 2, but the honest subgraph stays connected via
	// 1-3-5-4.
	//
	//	0 — 1 — 2(M) — 4(V)
	//	    |          |
	//	    3 —— 5 ————+
	graph := topology.New(6)
	graph.AddEdge(0, 1)
	graph.AddEdge(1, 2)
	graph.AddEdge(2, 4)
	graph.AddEdge(1, 3)
	graph.AddEdge(3, 5)
	graph.AddEdge(5, 4)

	deployment, err := keydist.NewDeployment(6,
		keydist.Params{PoolSize: 600, RingSize: 90},
		crypto.KeyFromUint64(12), crypto.NewStreamFromSeed(12))
	if err != nil {
		log.Fatal(err)
	}

	readings := func(id topology.NodeID, _ int) float64 {
		switch id {
		case topology.BaseStation:
			return core.Inf()
		case 4:
			return 1 // the minimum the adversary wants to suppress
		default:
			return 100 + float64(id)
		}
	}

	cfg := core.Config{
		Graph:            graph,
		Deployment:       deployment,
		Malicious:        map[topology.NodeID]bool{2: true},
		Adversary:        adversary.NewDropAndChoke(50),
		AdversaryFavored: true, // the choker's transmissions win every race
		Readings:         readings,
		Seed:             12,
	}
	engine, err := core.NewEngine(cfg)
	if err != nil {
		log.Fatal(err)
	}
	out, err := engine.Run()
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("outcome: %v\n", out.Kind)
	if out.Veto != nil {
		fmt.Printf("first veto at base station: claims sensor %d, value %g (spurious: %v)\n",
			out.Veto.Vetoer, out.Veto.Value, out.Kind == core.OutcomeJunkConfRevocation)
	}
	fmt.Printf("revoked keys: %v  revoked sensors: %v\n", out.RevokedKeys, out.RevokedNodes)
	for _, k := range out.RevokedKeys {
		fmt.Printf("  key %d held by malicious sensor 2: %v\n", k, deployment.Holds(2, k))
	}
	fmt.Printf("pinpointing cost: %d keyed predicate tests, %.1f flooding rounds\n",
		out.PredicateTests, out.FloodingRounds)
}
