// Detection vs. revocation: the paper's motivating comparison, live.
//
// The same persistent dropping attacker runs against three systems:
//
//  1. a SHIA-style commitment-tree aggregator (detection only),
//  2. VMAT with pinpointing disabled (alarm only), and
//  3. full VMAT (pinpointing + theta-threshold revocation).
//
// Detection-only systems alarm on every execution forever — "even a
// single malicious sensor can keep failing the final result verification
// without exposing itself" (Section I). VMAT revokes one adversary key
// per corrupted execution and recovers.
//
//	go run ./examples/detection-vs-revocation
package main

import (
	"fmt"
	"log"

	"repro/internal/adversary"
	"repro/internal/baseline"
	"repro/internal/core"
	"repro/internal/crypto"
	"repro/internal/keydist"
	"repro/internal/topology"
)

const (
	numSensors = 60
	executions = 25
)

func main() {
	rng := crypto.NewStreamFromSeed(99)
	graph, _ := topology.RandomGeometric(numSensors, 0.26, rng.Fork([]byte("topo")))
	deployment, err := keydist.NewDeployment(numSensors,
		keydist.Params{PoolSize: 10000, RingSize: 300},
		crypto.KeyFromUint64(99), rng.Fork([]byte("keys")))
	if err != nil {
		log.Fatal(err)
	}

	// The attacker sits on the aggregation path of the minimum holder.
	_, children := baseline.BFSTree(graph)
	attacker := topology.NodeID(0)
	for id := 1; id < numSensors; id++ {
		if len(children[id]) > 0 &&
			graph.ConnectedExcluding(topology.BaseStation, map[topology.NodeID]bool{topology.NodeID(id): true}) {
			attacker = topology.NodeID(id)
			break
		}
	}
	victim := children[attacker][0]
	fmt.Printf("attacker: sensor %d (dropping everything); minimum at sensor %d\n\n", attacker, victim)

	readings := func(id topology.NodeID, _ int) float64 {
		switch id {
		case topology.BaseStation:
			return core.Inf()
		case victim:
			return 1
		default:
			return 100 + float64(id)
		}
	}

	// 1. SHIA: detection only.
	shiaAnswered := 0
	for exec := 0; exec < executions; exec++ {
		s := &baseline.SHIA{
			Graph:      graph,
			Deployment: deployment,
			Readings:   func(id topology.NodeID) int64 { return int64(id) + 1 },
			Malicious:  map[topology.NodeID]bool{attacker: true},
			Tamper:     baseline.SHIADropSubtree,
			Seed:       uint64(exec),
		}
		if !s.Run().Alarm {
			shiaAnswered++
		}
	}
	fmt.Printf("SHIA commitment tree:  %2d/%d executions answered (the rest alarmed)\n", shiaAnswered, executions)

	// 2 and 3. VMAT without and with revocation.
	for _, mode := range []struct {
		name      string
		alarmOnly bool
	}{
		{"VMAT alarm-only:     ", true},
		{"VMAT with revocation:", false},
	} {
		registry := keydist.NewRegistry(deployment,
			keydist.SuggestTheta(deployment.Params(), 1, numSensors, 0.05))
		strat := adversary.NewDropper(50)
		answered, firstAnswer := 0, 0
		for exec := 1; exec <= executions; exec++ {
			cfg := core.Config{
				Graph:            graph,
				Deployment:       deployment,
				Registry:         registry,
				Malicious:        map[topology.NodeID]bool{attacker: true},
				Adversary:        strat,
				AlarmOnly:        mode.alarmOnly,
				AdversaryFavored: true,
				Readings:         readings,
				Seed:             uint64(1000 + exec),
			}
			eng, err := core.NewEngine(cfg)
			if err != nil {
				log.Fatal(err)
			}
			out, err := eng.Run()
			if err != nil {
				log.Fatal(err)
			}
			if out.Kind == core.OutcomeResult {
				answered++
				if firstAnswer == 0 {
					firstAnswer = exec
				}
			}
		}
		if firstAnswer > 0 {
			fmt.Printf("%s %2d/%d executions answered (first at execution %d, %d keys revoked)\n",
				mode.name, answered, executions, firstAnswer, registry.RevokedKeyCount())
		} else {
			fmt.Printf("%s %2d/%d executions answered\n", mode.name, answered, executions)
		}
	}
}
