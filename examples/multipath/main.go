// Multi-path (ring-based) aggregation, Section IV-D: with multiple
// parents per sensor, a single dropper cannot suppress a value that also
// flows around it — the execution succeeds outright, no veto or
// pinpointing needed. The same attack against single-path aggregation
// forces a veto-triggered revocation first.
//
//	go run ./examples/multipath
package main

import (
	"fmt"
	"log"

	"repro/internal/adversary"
	"repro/internal/core"
	"repro/internal/crypto"
	"repro/internal/keydist"
	"repro/internal/topology"
)

func main() {
	// A 5x5 grid; the dropper sits at node 6, adjacent to the minimum
	// holder at node 7. In the single-path tree node 7 may pick node 6 as
	// its only parent; in ring-based multi-path mode node 7 also sends to
	// its other level-up neighbor and the value routes around.
	graph := topology.Grid(5, 5)
	deployment, err := keydist.NewDeployment(graph.NumNodes(),
		keydist.Params{PoolSize: 10000, RingSize: 300},
		crypto.KeyFromUint64(5), crypto.NewStreamFromSeed(5))
	if err != nil {
		log.Fatal(err)
	}
	readings := func(id topology.NodeID, _ int) float64 {
		switch id {
		case topology.BaseStation:
			return core.Inf()
		case 7:
			return 2.5
		default:
			return 50 + float64(id)
		}
	}
	base := core.Config{
		Graph:            graph,
		Deployment:       deployment,
		Malicious:        map[topology.NodeID]bool{6: true},
		Adversary:        adversary.NewDropper(40),
		AdversaryFavored: true,
		Readings:         readings,
		Seed:             5,
	}

	for _, multipath := range []bool{false, true} {
		cfg := base
		cfg.Multipath = multipath
		engine, err := core.NewEngine(cfg)
		if err != nil {
			log.Fatal(err)
		}
		out, err := engine.Run()
		if err != nil {
			log.Fatal(err)
		}
		mode := "single-path"
		if multipath {
			mode = "multi-path "
		}
		switch out.Kind {
		case core.OutcomeResult:
			fmt.Printf("%s: result %g in %.1f flooding rounds (dropper routed around)\n",
				mode, out.Mins[0], out.FloodingRounds)
		default:
			fmt.Printf("%s: %v — revoked keys %v, sensors %v (%.1f flooding rounds)\n",
				mode, out.Kind, out.RevokedKeys, out.RevokedNodes, out.FloodingRounds)
		}
	}
}
