// Quickstart: run one secure MIN query over a simulated 6x6 sensor grid.
//
// The base station (node 0) forms the aggregation tree with VMAT's
// timestamp levels, aggregates the minimum reading in-network, broadcasts
// it back, and — since nobody vetoes — returns it as provably correct.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"repro/internal/core"
	"repro/internal/crypto"
	"repro/internal/keydist"
	"repro/internal/topology"
)

func main() {
	// A 6x6 grid of sensors; node 0 (corner) is the base station.
	graph := topology.Grid(6, 6)

	// Eschenauer-Gligor key pre-distribution: each sensor gets a ring of
	// 300 keys from a 10,000-key pool, giving neighbors a shared edge key
	// with probability > 0.9999.
	deployment, err := keydist.NewDeployment(
		graph.NumNodes(),
		keydist.Params{PoolSize: 10000, RingSize: 300},
		crypto.KeyFromUint64(42),
		crypto.NewStreamFromSeed(42),
	)
	if err != nil {
		log.Fatal(err)
	}

	// Sensor readings: temperature-like values, with a cold spot at node
	// 23.
	readings := func(id topology.NodeID, _ int) float64 {
		if id == topology.BaseStation {
			return core.Inf()
		}
		if id == 23 {
			return 3.5
		}
		return 20 + float64(id)/10
	}

	engine, err := core.NewEngine(core.Config{
		Graph:      graph,
		Deployment: deployment,
		Readings:   readings,
		Seed:       42,
	})
	if err != nil {
		log.Fatal(err)
	}

	outcome, err := engine.Run()
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("outcome:         %v\n", outcome.Kind)
	fmt.Printf("minimum reading: %g (expected 3.5 from sensor 23)\n", outcome.Mins[0])
	fmt.Printf("cost:            %d slots = %.1f flooding rounds, %d bytes total\n",
		outcome.Slots, outcome.FloodingRounds, outcome.Stats.TotalBytes())
}
