// Package adversary implements Byzantine attack strategies against VMAT:
// the dropping, value-hiding, junk-injection, choking, and
// predicate-lying behaviors the paper's attack model allows (Section III),
// plus composable and randomized variants used by the property tests.
//
// Strategies implement core.Adversary. They drive every compromised sensor
// and may coordinate across them (the paper's adversary is a single
// colluding entity); strategy state shared between nodes is mutex-guarded
// because malicious nodes step concurrently within a slot.
package adversary

import (
	"sync"

	"repro/internal/core"
	"repro/internal/topology"
)

// AnswerMode controls how a strategy responds to keyed predicate tests
// for keys its nodes hold.
type AnswerMode int

const (
	// AnswerTruthful replies with the honest evaluation of the node's
	// recorded state.
	AnswerTruthful AnswerMode = iota
	// AnswerDeny always replies "no" (stays silent).
	AnswerDeny
	// AnswerAdmit always replies "yes".
	AnswerAdmit
	// AnswerRandom flips a deterministic coin per test.
	AnswerRandom
)

// Strategy is a configurable core.Adversary: each phase hook defaults to
// honest behavior when nil, predicate answers follow Answer, and Silent
// nodes refuse to relay base-station broadcasts.
type Strategy struct {
	// Name labels the strategy in traces and bench output.
	Name string
	// Tree, Aggregation, Confirmation override the per-phase behavior.
	Tree         func(a *core.AdvContext)
	Aggregation  func(a *core.AdvContext)
	Confirmation func(a *core.AdvContext)
	// Answer controls predicate-test replies (default AnswerTruthful).
	Answer AnswerMode
	// AnswerFunc, when non-nil, overrides Answer with arbitrary per-test
	// logic (e.g. steering pinpointing binary searches to frame a
	// victim).
	AnswerFunc func(node topology.NodeID, test core.TestAnnounce, truthful bool) bool
	// SilentBroadcast stops malicious nodes from relaying authenticated
	// broadcasts (they still cannot forge or choke them).
	SilentBroadcast bool

	mu   sync.Mutex
	aggs map[topology.NodeID]*aggState
}

var _ core.Adversary = (*Strategy)(nil)

// Step dispatches to the phase hook or honest behavior.
func (s *Strategy) Step(phase core.Phase, a *core.AdvContext) {
	var hook func(*core.AdvContext)
	switch phase {
	case core.PhaseTree:
		hook = s.Tree
	case core.PhaseAggregation:
		hook = s.Aggregation
	case core.PhaseConfirmation:
		hook = s.Confirmation
	}
	if hook == nil {
		a.ActHonestly()
		return
	}
	hook(a)
}

// AnswerPredicate applies the strategy's answer mode.
func (s *Strategy) AnswerPredicate(node topology.NodeID, test core.TestAnnounce, truthful bool) bool {
	if s.AnswerFunc != nil {
		return s.AnswerFunc(node, test, truthful)
	}
	switch s.Answer {
	case AnswerDeny:
		return false
	case AnswerAdmit:
		return true
	case AnswerRandom:
		s.mu.Lock()
		defer s.mu.Unlock()
		if s.aggs == nil {
			s.aggs = make(map[topology.NodeID]*aggState)
		}
		st := s.aggs[node]
		if st == nil {
			st = &aggState{}
			s.aggs[node] = st
		}
		st.coin++
		// A deterministic but irregular coin: alternate with a skip.
		return (st.coin*2654435761)%3 == 0
	default:
		return truthful
	}
}

// ForwardAuthBroadcast honors SilentBroadcast.
func (s *Strategy) ForwardAuthBroadcast(topology.NodeID) bool { return !s.SilentBroadcast }

// aggState is the private aggregation view a custom-aggregating malicious
// node maintains (its engine-side sensorState only reflects honest
// actions). It is scoped to one query execution: strategies are routinely
// reused across the repeated executions of a campaign, and replaying
// records MAC'd under a previous query nonce would be self-defeating junk.
type aggState struct {
	nonce string // query nonce this state belongs to
	init  bool
	best  []core.Record
	coin  uint64
}

// AggHooks customizes the honest-shaped aggregation replica that
// AggregationWithHooks runs on malicious nodes.
type AggHooks struct {
	// IncludeOwn controls whether the node contributes its own records
	// (false models the value-hiding attack).
	IncludeOwn bool
	// FilterRecv drops received records for which it returns false
	// (silent dropping attack). Nil keeps everything.
	FilterRecv func(r core.Record) bool
	// TransformOut rewrites the outgoing record set just before sending
	// (junk injection). Nil sends the computed minima.
	TransformOut func(a *core.AdvContext, records []core.Record) []core.Record
	// Mute suppresses sending entirely.
	Mute bool
}

// AggregationWithHooks returns an aggregation-phase hook that behaves like
// an honest sensor except where the hooks say otherwise. The malicious
// node still keeps its tree level and parents from acting honestly during
// tree formation.
func (s *Strategy) AggregationWithHooks(h AggHooks) func(a *core.AdvContext) {
	return func(a *core.AdvContext) {
		if a.Level() < 1 {
			return
		}
		local := a.LocalSlot()
		sendSlot := a.L() - a.Level()
		if local > sendSlot {
			return
		}
		st := s.nodeState(a)
		if !st.init {
			st.init = true
			st.best = make([]core.Record, a.Instances())
			for inst := range st.best {
				if h.IncludeOwn {
					st.best[inst] = a.OwnRecord(inst)
				} else {
					st.best[inst] = core.Record{Origin: a.Node(), Instance: inst, Value: core.Inf()}
				}
			}
		}
		for _, env := range a.Inbox() {
			if !env.Valid {
				continue
			}
			agg, ok := env.Payload.(core.AggMsg)
			if !ok {
				continue
			}
			for _, r := range agg.Records {
				if r.Instance < 0 || r.Instance >= len(st.best) {
					continue
				}
				if h.FilterRecv != nil && !h.FilterRecv(r) {
					continue
				}
				if r.Value < st.best[r.Instance].Value {
					st.best[r.Instance] = r
				}
			}
		}
		if local != sendSlot || h.Mute {
			return
		}
		records := make([]core.Record, 0, len(st.best))
		for _, r := range st.best {
			if r.Value < core.Inf() {
				records = append(records, r)
			}
		}
		if h.TransformOut != nil {
			records = h.TransformOut(a, records)
		}
		if len(records) == 0 {
			return
		}
		for _, p := range a.Parents() {
			if key, ok := a.EdgeKeyWith(p); ok {
				a.SendSealed(p, key, core.AggMsg{Records: records})
			}
		}
	}
}

func (s *Strategy) nodeState(a *core.AdvContext) *aggState {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.aggs == nil {
		s.aggs = make(map[topology.NodeID]*aggState)
	}
	nonce := string(a.QueryNonce())
	st := s.aggs[a.Node()]
	if st == nil || st.nonce != nonce {
		st = &aggState{nonce: nonce}
		s.aggs[a.Node()] = st
	}
	return st
}

// NewDropper returns the silent dropping attack: malicious sensors
// aggregate normally but discard every received record with value below
// the threshold, so the true minimum never passes through them. The
// confirmation phase then produces a legitimate veto and VMAT's
// veto-triggered pinpointing revokes one of the dropper's edge keys.
func NewDropper(dropBelow float64) *Strategy {
	s := &Strategy{Name: "dropper", Answer: AnswerTruthful}
	s.Aggregation = s.AggregationWithHooks(AggHooks{
		IncludeOwn: true,
		FilterRecv: func(r core.Record) bool { return r.Value >= dropBelow },
	})
	return s
}

// NewMute returns a dropper that sends nothing at all during aggregation
// (destroyed/jammed sensor model).
func NewMute() *Strategy {
	s := &Strategy{Name: "mute", Answer: AnswerDeny}
	s.Aggregation = s.AggregationWithHooks(AggHooks{IncludeOwn: true, Mute: true})
	return s
}

// NewHider returns the value-hiding attack of Section IV-C: the malicious
// sensor omits its own (minimal) reading during aggregation, then issues a
// perfectly valid veto during confirmation. The recorded audit trail is
// equivalent to the sensor dropping its own value, so veto-triggered
// pinpointing still revokes one of its keys.
func NewHider() *Strategy {
	s := &Strategy{Name: "hider", Answer: AnswerDeny}
	s.Aggregation = s.AggregationWithHooks(AggHooks{IncludeOwn: false})
	return s
}

// NewJunkInjector returns the spurious-minimum attack: malicious sensors
// replace their outgoing aggregate with a forged record carrying an
// unbeatably small value and a garbage MAC. The base station detects the
// invalid MAC and junk-triggered pinpointing tracks the injector.
func NewJunkInjector(value float64) *Strategy {
	s := &Strategy{Name: "junk-injector", Answer: AnswerDeny}
	s.Aggregation = s.AggregationWithHooks(AggHooks{
		IncludeOwn: true,
		TransformOut: func(a *core.AdvContext, _ []core.Record) []core.Record {
			records := make([]core.Record, a.Instances())
			for inst := range records {
				records[inst] = a.ForgeRecord(a.Node(), inst, value)
			}
			return records
		},
	})
	return s
}

// NewChoker returns the choking attack on the confirmation phase (Section
// IV-C): malicious sensors aggregate honestly but, the moment the
// confirmation phase opens, flood spurious vetoes so the one-time SOF
// forwarding of honest sensors is spent on junk before any legitimate
// veto can propagate. Combined with dropping (see NewDropAndChoke), this
// is the paper's canonical attempt to suppress a legitimate veto; SOF's
// audit trail still hands the base station a junk trail to pinpoint.
func NewChoker() *Strategy {
	s := &Strategy{Name: "choker", Answer: AnswerDeny}
	s.Confirmation = chokeConfirmation
	return s
}

func chokeConfirmation(a *core.AdvContext) {
	if a.LocalSlot() != 0 {
		return
	}
	// Claim an implausibly small value on instance 0 with a forged MAC,
	// impersonating an arbitrary honest sensor.
	fake := a.ForgeVeto(a.Node()+1, 0, a.AnnouncedMins()[0]/2-1, 1)
	for _, nb := range a.Neighbors() {
		if key, ok := a.EdgeKeyWith(nb); ok {
			a.SendSealed(nb, key, fake)
		}
	}
}

// NewDropAndChoke composes the dropping and choking attacks: the true
// minimum is dropped during aggregation and the resulting legitimate veto
// is raced by spurious ones during confirmation.
func NewDropAndChoke(dropBelow float64) *Strategy {
	s := NewDropper(dropBelow)
	s.Name = "drop-and-choke"
	s.Answer = AnswerDeny
	s.Confirmation = chokeConfirmation
	return s
}

// NewLiar wraps honest phase behavior with adversarial predicate answers,
// attacking the pinpointing walks themselves.
func NewLiar(mode AnswerMode) *Strategy {
	return &Strategy{Name: "liar", Answer: mode}
}

// NewFramer returns the framing attack on the pinpointing walk (the
// attack Figure 6's step-6 re-confirmation exists to defeat): a dropping
// adversary whose predicate answers steer every holder binary search
// toward an innocent victim. Lemma 5 guarantees the victim is never
// blamed — the re-confirmation on the victim's own sensor key fails, and
// the edge key under search (held by the framer) is revoked instead.
func NewFramer(dropBelow float64, victim topology.NodeID) *Strategy {
	s := NewDropper(dropBelow)
	s.Name = "framer"
	s.AnswerFunc = func(_ topology.NodeID, test core.TestAnnounce, _ bool) bool {
		p := test.Pred
		switch p.Kind {
		case core.PredReceivedAgg, core.PredSentJunkAgg, core.PredSentJunkVeto:
			// Holder searches: claim "someone in this window received
			// it" exactly when the window contains the victim, walking
			// the binary search straight to the victim's ID.
			return victim >= p.IDLo && victim <= p.IDHi
		default:
			// Ring searches on the framer's own key: admit everything so
			// the walk proceeds to the holder search.
			return true
		}
	}
	return s
}
