package adversary

import (
	"testing"

	"repro/internal/core"
)

func TestAnswerModes(t *testing.T) {
	test := core.TestAnnounce{}
	cases := []struct {
		mode     AnswerMode
		truthful bool
		want     bool
	}{
		{AnswerTruthful, true, true},
		{AnswerTruthful, false, false},
		{AnswerDeny, true, false},
		{AnswerDeny, false, false},
		{AnswerAdmit, true, true},
		{AnswerAdmit, false, true},
	}
	for _, c := range cases {
		s := &Strategy{Answer: c.mode}
		if got := s.AnswerPredicate(1, test, c.truthful); got != c.want {
			t.Fatalf("mode %d truthful=%v: got %v, want %v", c.mode, c.truthful, got, c.want)
		}
	}
}

func TestAnswerRandomDeterministicAndMixed(t *testing.T) {
	s := &Strategy{Answer: AnswerRandom}
	var answers []bool
	yes := 0
	for i := 0; i < 30; i++ {
		a := s.AnswerPredicate(1, core.TestAnnounce{}, false)
		answers = append(answers, a)
		if a {
			yes++
		}
	}
	if yes == 0 || yes == 30 {
		t.Fatalf("random answers degenerate: %d/30 yes", yes)
	}
	// Same sequence reproduces on a fresh strategy (deterministic coin).
	s2 := &Strategy{Answer: AnswerRandom}
	for i, want := range answers {
		if got := s2.AnswerPredicate(1, core.TestAnnounce{}, false); got != want {
			t.Fatalf("random answer %d not deterministic", i)
		}
	}
}

func TestForwardAuthBroadcast(t *testing.T) {
	if !(&Strategy{}).ForwardAuthBroadcast(1) {
		t.Fatal("default strategy must forward broadcasts")
	}
	if (&Strategy{SilentBroadcast: true}).ForwardAuthBroadcast(1) {
		t.Fatal("silent strategy must not forward broadcasts")
	}
}

func TestStepDispatchesPhaseHooks(t *testing.T) {
	var calls []core.Phase
	s := &Strategy{
		Tree:         func(*core.AdvContext) { calls = append(calls, core.PhaseTree) },
		Aggregation:  func(*core.AdvContext) { calls = append(calls, core.PhaseAggregation) },
		Confirmation: func(*core.AdvContext) { calls = append(calls, core.PhaseConfirmation) },
	}
	s.Step(core.PhaseTree, nil)
	s.Step(core.PhaseAggregation, nil)
	s.Step(core.PhaseConfirmation, nil)
	want := []core.Phase{core.PhaseTree, core.PhaseAggregation, core.PhaseConfirmation}
	if len(calls) != len(want) {
		t.Fatalf("calls = %v, want %v", calls, want)
	}
	for i := range want {
		if calls[i] != want[i] {
			t.Fatalf("calls = %v, want %v", calls, want)
		}
	}
}

func TestConstructorsNameAndShape(t *testing.T) {
	cases := []struct {
		s        *Strategy
		wantName string
		aggHook  bool
		confHook bool
	}{
		{NewDropper(5), "dropper", true, false},
		{NewMute(), "mute", true, false},
		{NewHider(), "hider", true, false},
		{NewJunkInjector(-1), "junk-injector", true, false},
		{NewChoker(), "choker", false, true},
		{NewDropAndChoke(5), "drop-and-choke", true, true},
		{NewLiar(AnswerAdmit), "liar", false, false},
	}
	for _, c := range cases {
		if c.s.Name != c.wantName {
			t.Fatalf("name %q, want %q", c.s.Name, c.wantName)
		}
		if (c.s.Aggregation != nil) != c.aggHook {
			t.Fatalf("%s: aggregation hook presence = %v, want %v", c.wantName, c.s.Aggregation != nil, c.aggHook)
		}
		if (c.s.Confirmation != nil) != c.confHook {
			t.Fatalf("%s: confirmation hook presence = %v, want %v", c.wantName, c.s.Confirmation != nil, c.confHook)
		}
	}
	if NewLiar(AnswerAdmit).Answer != AnswerAdmit {
		t.Fatal("liar answer mode not wired")
	}
}
