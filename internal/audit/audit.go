// Package audit models VMAT's distributed audit trails (paper Sections IV
// and V): the tuples sensors store during the aggregation and confirmation
// phases, and the well-formedness conditions that Theorem 2 guarantees
// whenever pinpointing is invoked.
//
// A trail is an ordered list of tuples. Normal tuples are owned by honest
// sensors (who stored them); bottom-tuples stand for contiguous segments
// of (potentially colluding) malicious sensors. Well-formedness is what
// makes the pinpointing protocols of Section VI terminate with a revoked
// malicious key: the trail is finite (bounded by L+1), monotone in
// level/interval, monotone in value, chained by shared edge keys, and
// always ends at the adversary.
package audit

import (
	"fmt"
	"math"

	"repro/internal/topology"
)

// Kind selects which of the paper's three well-formedness definitions
// applies.
type Kind int

const (
	// KindVetoAggregation is the trail behind a veto-triggered
	// pinpointing: tuples recorded in the aggregation phase, walked from
	// the vetoer toward the base station. Levels strictly decrease;
	// values never increase.
	KindVetoAggregation Kind = iota + 1
	// KindJunkAggregation is the trail behind a junk-triggered
	// pinpointing for a spurious aggregation message, walked from the
	// base station toward the unknown source. Levels increase; the
	// message is identical in every tuple.
	KindJunkAggregation
	// KindJunkConfirmation is the trail behind a junk-triggered
	// pinpointing for a spurious veto in the SOF protocol. Intervals
	// decrease; the message is identical in every tuple.
	KindJunkConfirmation
)

// String returns the kind's name.
func (k Kind) String() string {
	switch k {
	case KindVetoAggregation:
		return "veto-aggregation"
	case KindJunkAggregation:
		return "junk-aggregation"
	case KindJunkConfirmation:
		return "junk-confirmation"
	default:
		return fmt.Sprintf("Kind(%d)", int(k))
	}
}

// NoKey marks an absent edge key in a tuple.
const NoKey = -1

// Tuple is one entry of an audit trail. For aggregation-phase trails Pos
// is the owner's level; for confirmation-phase trails it is the SOF
// interval in which the message was sent or forwarded.
type Tuple struct {
	// Pos is the level or interval of the tuple.
	Pos int
	// Value is the partial aggregation value contained in the stored
	// message.
	Value float64
	// MsgID identifies the stored message; the junk trails require all
	// tuples to carry the identical message.
	MsgID string
	// Bottom marks a bottom-tuple owned by the malicious coalition.
	Bottom bool
	// Owner is the honest sensor that stored this tuple; meaningful only
	// when Bottom is false.
	Owner topology.NodeID
	// InKey is the pool index of the edge key the message was received
	// with, or NoKey (e.g. the vetoer's own reading).
	InKey int
	// OutKey is the pool index of the edge key the message was forwarded
	// with, or NoKey (e.g. the final bottom-tuple of a veto trail).
	OutKey int
}

// HeldByFunc reports whether the owner of tuple t holds the pool key with
// the given index. For bottom-tuples the check is against the malicious
// coalition's combined key material. A nil HeldByFunc skips possession
// checks.
type HeldByFunc func(t Tuple, key int) bool

// Validate checks the trail against the paper's well-formedness
// definition for the given kind, with positions bounded by maxPos (the
// paper's L). It returns nil when the trail is well-formed.
func Validate(kind Kind, trail []Tuple, maxPos int, heldBy HeldByFunc) error {
	if len(trail) == 0 {
		return fmt.Errorf("audit: empty trail")
	}
	if !trail[len(trail)-1].Bottom {
		return fmt.Errorf("audit: %v trail does not end with a bottom-tuple", kind)
	}
	for i, t := range trail {
		if t.Pos < 0 || t.Pos > maxPos {
			return fmt.Errorf("audit: tuple %d position %d outside [0, %d]", i, t.Pos, maxPos)
		}
		if math.IsNaN(t.Value) {
			return fmt.Errorf("audit: tuple %d has NaN value", i)
		}
		if i == 0 {
			continue
		}
		prev := trail[i-1]
		if t.Bottom && prev.Bottom {
			return fmt.Errorf("audit: adjacent bottom-tuples at %d and %d", i-1, i)
		}
		if err := checkPos(kind, prev, t, i); err != nil {
			return err
		}
		if err := checkValue(kind, prev, t, i); err != nil {
			return err
		}
		if prev.OutKey != t.InKey {
			return fmt.Errorf("audit: edge-key chain broken between tuples %d and %d (%d != %d)",
				i-1, i, prev.OutKey, t.InKey)
		}
		if heldBy != nil && prev.OutKey != NoKey {
			if !heldBy(prev, prev.OutKey) {
				return fmt.Errorf("audit: tuple %d owner does not hold chain key %d", i-1, prev.OutKey)
			}
			if !heldBy(t, t.InKey) {
				return fmt.Errorf("audit: tuple %d owner does not hold chain key %d", i, t.InKey)
			}
		}
	}
	return nil
}

// checkPos enforces the level/interval monotonicity rules. Normal tuples
// step by exactly one; bottom-tuples may skip (they compress a malicious
// segment).
func checkPos(kind Kind, prev, cur Tuple, i int) error {
	switch kind {
	case KindVetoAggregation, KindJunkConfirmation:
		// Positions decrease along the trail.
		if cur.Bottom {
			if cur.Pos >= prev.Pos {
				return fmt.Errorf("audit: bottom-tuple %d position %d not below predecessor %d", i, cur.Pos, prev.Pos)
			}
		} else if cur.Pos != prev.Pos-1 {
			return fmt.Errorf("audit: tuple %d position %d, want predecessor-1 = %d", i, cur.Pos, prev.Pos-1)
		}
	case KindJunkAggregation:
		// Positions increase along the trail (tracking away from the base
		// station toward the unknown source).
		if cur.Bottom {
			if cur.Pos <= prev.Pos {
				return fmt.Errorf("audit: bottom-tuple %d position %d not above predecessor %d", i, cur.Pos, prev.Pos)
			}
		} else if cur.Pos != prev.Pos+1 {
			return fmt.Errorf("audit: tuple %d position %d, want predecessor+1 = %d", i, cur.Pos, prev.Pos+1)
		}
	default:
		return fmt.Errorf("audit: unknown trail kind %v", kind)
	}
	return nil
}

// checkValue enforces the message rules: monotone non-increasing values
// for veto trails, identical messages for junk trails.
func checkValue(kind Kind, prev, cur Tuple, i int) error {
	switch kind {
	case KindVetoAggregation:
		if cur.Value > prev.Value {
			return fmt.Errorf("audit: tuple %d value %g exceeds predecessor %g", i, cur.Value, prev.Value)
		}
	case KindJunkAggregation, KindJunkConfirmation:
		if cur.MsgID != prev.MsgID {
			return fmt.Errorf("audit: tuple %d message %q differs from predecessor %q", i, cur.MsgID, prev.MsgID)
		}
	}
	return nil
}

// MaxLen returns the maximum possible length of a well-formed trail with
// positions bounded by maxPos: the paper's L+1 bound.
func MaxLen(maxPos int) int { return maxPos + 1 }
