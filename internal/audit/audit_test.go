package audit

import (
	"math"
	"strings"
	"testing"
)

// figure3Trail reproduces the example trail of the paper's Figure 3:
// <8,m,k1>, <7,m',k2>, <4,m',bot>, <3,m',k3>, <2,m',bot> where m' carries a
// smaller value than m. Edge keys are chosen to chain correctly.
func figure3Trail() []Tuple {
	const mVal, mPrimeVal = 10.0, 4.0
	return []Tuple{
		{Pos: 8, Value: mVal, MsgID: "m", Owner: 1, InKey: NoKey, OutKey: 100},
		{Pos: 7, Value: mPrimeVal, MsgID: "m'", Owner: 2, InKey: 100, OutKey: 101},
		{Pos: 4, Value: mPrimeVal, MsgID: "m'", Bottom: true, InKey: 101, OutKey: 102},
		{Pos: 3, Value: mPrimeVal, MsgID: "m'", Owner: 3, InKey: 102, OutKey: 103},
		{Pos: 2, Value: mPrimeVal, MsgID: "m'", Bottom: true, InKey: 103, OutKey: NoKey},
	}
}

func TestValidateFigure3Example(t *testing.T) {
	if err := Validate(KindVetoAggregation, figure3Trail(), 8, nil); err != nil {
		t.Fatalf("paper's Figure 3 trail rejected: %v", err)
	}
}

func TestValidateRejectsEmpty(t *testing.T) {
	if err := Validate(KindVetoAggregation, nil, 5, nil); err == nil {
		t.Fatal("empty trail accepted")
	}
}

func TestValidateRejectsNonBottomEnd(t *testing.T) {
	trail := figure3Trail()[:2] // ends with a normal tuple
	if err := Validate(KindVetoAggregation, trail, 8, nil); err == nil {
		t.Fatal("trail ending in honest tuple accepted")
	}
}

func TestValidateRejectsAdjacentBottoms(t *testing.T) {
	trail := []Tuple{
		{Pos: 5, Value: 1, Owner: 1, InKey: NoKey, OutKey: 1},
		{Pos: 4, Value: 1, Bottom: true, InKey: 1, OutKey: 2},
		{Pos: 3, Value: 1, Bottom: true, InKey: 2, OutKey: NoKey},
	}
	err := Validate(KindVetoAggregation, trail, 5, nil)
	if err == nil || !strings.Contains(err.Error(), "adjacent bottom") {
		t.Fatalf("adjacent bottom-tuples accepted: %v", err)
	}
}

func TestValidateRejectsPositionOutOfRange(t *testing.T) {
	trail := []Tuple{
		{Pos: 9, Value: 1, Owner: 1, OutKey: 1, InKey: NoKey},
		{Pos: 8, Value: 1, Bottom: true, InKey: 1, OutKey: NoKey},
	}
	if err := Validate(KindVetoAggregation, trail, 8, nil); err == nil {
		t.Fatal("position above L accepted")
	}
	trail2 := []Tuple{
		{Pos: -1, Value: 1, Bottom: true, InKey: NoKey, OutKey: NoKey},
	}
	if err := Validate(KindVetoAggregation, trail2, 8, nil); err == nil {
		t.Fatal("negative position accepted")
	}
}

func TestValidateRejectsNormalLevelSkip(t *testing.T) {
	trail := []Tuple{
		{Pos: 5, Value: 1, Owner: 1, InKey: NoKey, OutKey: 1},
		{Pos: 3, Value: 1, Owner: 2, InKey: 1, OutKey: 2}, // skips level 4
		{Pos: 2, Value: 1, Bottom: true, InKey: 2, OutKey: NoKey},
	}
	if err := Validate(KindVetoAggregation, trail, 5, nil); err == nil {
		t.Fatal("normal tuple skipping a level accepted")
	}
}

func TestValidateRejectsBottomLevelIncrease(t *testing.T) {
	trail := []Tuple{
		{Pos: 5, Value: 1, Owner: 1, InKey: NoKey, OutKey: 1},
		{Pos: 5, Value: 1, Bottom: true, InKey: 1, OutKey: NoKey},
	}
	if err := Validate(KindVetoAggregation, trail, 5, nil); err == nil {
		t.Fatal("bottom tuple at same level accepted")
	}
}

func TestValidateRejectsValueIncrease(t *testing.T) {
	trail := []Tuple{
		{Pos: 5, Value: 1, Owner: 1, InKey: NoKey, OutKey: 1},
		{Pos: 4, Value: 2, Owner: 2, InKey: 1, OutKey: 2}, // value grew
		{Pos: 3, Value: 2, Bottom: true, InKey: 2, OutKey: NoKey},
	}
	if err := Validate(KindVetoAggregation, trail, 5, nil); err == nil {
		t.Fatal("increasing value accepted in veto trail")
	}
}

func TestValidateRejectsNaN(t *testing.T) {
	trail := []Tuple{
		{Pos: 2, Value: math.NaN(), Bottom: true, InKey: NoKey, OutKey: NoKey},
	}
	if err := Validate(KindVetoAggregation, trail, 5, nil); err == nil {
		t.Fatal("NaN value accepted")
	}
}

func TestValidateRejectsBrokenKeyChain(t *testing.T) {
	trail := []Tuple{
		{Pos: 5, Value: 1, Owner: 1, InKey: NoKey, OutKey: 7},
		{Pos: 4, Value: 1, Owner: 2, InKey: 8, OutKey: 9}, // in != predecessor out
		{Pos: 3, Value: 1, Bottom: true, InKey: 9, OutKey: NoKey},
	}
	err := Validate(KindVetoAggregation, trail, 5, nil)
	if err == nil || !strings.Contains(err.Error(), "chain") {
		t.Fatalf("broken key chain accepted: %v", err)
	}
}

func TestValidateHeldByCallback(t *testing.T) {
	trail := figure3Trail()
	// A heldBy that denies key 101 to the bottom coalition must fail.
	deny := func(tp Tuple, key int) bool {
		return !(tp.Bottom && key == 101)
	}
	if err := Validate(KindVetoAggregation, trail, 8, deny); err == nil {
		t.Fatal("possession violation accepted")
	}
	// An all-allowing heldBy passes.
	allow := func(Tuple, int) bool { return true }
	if err := Validate(KindVetoAggregation, trail, 8, allow); err != nil {
		t.Fatalf("valid trail rejected with permissive heldBy: %v", err)
	}
}

func TestValidateJunkAggregation(t *testing.T) {
	// Junk trail tracks away from the base station: levels increase, the
	// spurious message is identical throughout. The chain fields are
	// stored in walk order: tuple i forwarded the junk with OutKey and
	// tuple i+1 (closer to the source) handed it over with that same key.
	trail := []Tuple{
		{Pos: 1, Value: 0.5, MsgID: "junk", Owner: 1, InKey: NoKey, OutKey: 10},
		{Pos: 2, Value: 0.5, MsgID: "junk", Owner: 2, InKey: 10, OutKey: 11},
		{Pos: 5, Value: 0.5, MsgID: "junk", Bottom: true, InKey: 11, OutKey: NoKey},
	}
	if err := Validate(KindJunkAggregation, trail, 6, nil); err != nil {
		t.Fatalf("valid junk-aggregation trail rejected: %v", err)
	}
	// Message mismatch is rejected.
	bad := append([]Tuple(nil), trail...)
	bad[1].MsgID = "different"
	if err := Validate(KindJunkAggregation, bad, 6, nil); err == nil {
		t.Fatal("junk trail with differing messages accepted")
	}
	// Level decrease is rejected.
	bad2 := append([]Tuple(nil), trail...)
	bad2[1].Pos = 0
	if err := Validate(KindJunkAggregation, bad2, 6, nil); err == nil {
		t.Fatal("junk-aggregation trail with decreasing level accepted")
	}
}

func TestValidateJunkConfirmation(t *testing.T) {
	// Spurious-veto trail: intervals decrease toward the source.
	trail := []Tuple{
		{Pos: 4, Value: 0, MsgID: "veto", Owner: 1, InKey: NoKey, OutKey: 20},
		{Pos: 3, Value: 0, MsgID: "veto", Owner: 2, InKey: 20, OutKey: 21},
		{Pos: 1, Value: 0, MsgID: "veto", Bottom: true, InKey: 21, OutKey: NoKey},
	}
	if err := Validate(KindJunkConfirmation, trail, 5, nil); err != nil {
		t.Fatalf("valid junk-confirmation trail rejected: %v", err)
	}
	bad := append([]Tuple(nil), trail...)
	bad[2].MsgID = "other"
	if err := Validate(KindJunkConfirmation, bad, 5, nil); err == nil {
		t.Fatal("junk-confirmation trail with differing messages accepted")
	}
}

func TestValidateUnknownKind(t *testing.T) {
	trail := []Tuple{
		{Pos: 1, Value: 0, Owner: 1, InKey: NoKey, OutKey: 1},
		{Pos: 0, Value: 0, Bottom: true, InKey: 1, OutKey: NoKey},
	}
	if err := Validate(Kind(99), trail, 5, nil); err == nil {
		t.Fatal("unknown kind accepted")
	}
}

func TestKindString(t *testing.T) {
	for _, k := range []Kind{KindVetoAggregation, KindJunkAggregation, KindJunkConfirmation} {
		if s := k.String(); strings.HasPrefix(s, "Kind(") {
			t.Fatalf("kind %d has no name", int(k))
		}
	}
	if !strings.HasPrefix(Kind(42).String(), "Kind(") {
		t.Fatal("unknown kind String() malformed")
	}
}

func TestMaxLen(t *testing.T) {
	if MaxLen(8) != 9 {
		t.Fatalf("MaxLen(8) = %d, want 9 (the paper's L+1 bound)", MaxLen(8))
	}
}

func TestSingleBottomTrailValid(t *testing.T) {
	// The degenerate trail of a vetoer whose message was immediately
	// dropped by its (malicious) parent: one honest tuple, one bottom.
	trail := []Tuple{
		{Pos: 3, Value: 1.5, Owner: 9, InKey: NoKey, OutKey: 50},
		{Pos: 2, Value: 1.5, Bottom: true, InKey: 50, OutKey: NoKey},
	}
	if err := Validate(KindVetoAggregation, trail, 4, nil); err != nil {
		t.Fatalf("minimal dropped-veto trail rejected: %v", err)
	}
}
