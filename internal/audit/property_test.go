package audit

import (
	"testing"
	"testing/quick"

	"repro/internal/crypto"
	"repro/internal/topology"
)

// genVetoTrail builds a random well-formed veto-aggregation trail: levels
// strictly walk down (normal tuples by one, bottom tuples by more), values
// never increase, edge keys chain, and the trail ends at a bottom tuple.
func genVetoTrail(rng *crypto.Stream, maxPos int) []Tuple {
	level := 2 + rng.Intn(maxPos-1) // start in [2, maxPos]
	value := 100 + float64(rng.Intn(50))
	key := rng.Intn(1000)
	var trail []Tuple
	owner := topology.NodeID(1)
	inKey := NoKey
	for {
		// Randomly decide whether the next hop is the malicious segment.
		lastHonest := level <= 1 || rng.Intn(3) == 0
		trail = append(trail, Tuple{
			Pos: level, Value: value, Owner: owner, InKey: inKey, OutKey: key,
		})
		if lastHonest {
			drop := 1 + rng.Intn(level) // bottom tuple strictly below
			trail = append(trail, Tuple{
				Pos: level - drop, Value: value, Bottom: true, InKey: key, OutKey: NoKey,
			})
			return trail
		}
		// Next honest tuple: level-1, value may shrink.
		level--
		if rng.Intn(2) == 0 {
			value -= float64(rng.Intn(5))
		}
		owner++
		inKey = key
		key = rng.Intn(1000)
	}
}

func TestPropertyGeneratedVetoTrailsValidate(t *testing.T) {
	f := func(seed uint64) bool {
		rng := crypto.NewStreamFromSeed(seed)
		maxPos := 4 + rng.Intn(10)
		trail := genVetoTrail(rng, maxPos)
		return Validate(KindVetoAggregation, trail, maxPos, nil) == nil
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

// mutateTrail applies one of several corruption kinds; every mutation
// must be caught by Validate.
func mutateTrail(rng *crypto.Stream, trail []Tuple) ([]Tuple, string) {
	out := append([]Tuple(nil), trail...)
	switch rng.Intn(6) {
	case 0: // break the level step of a normal tuple
		for i := 1; i < len(out); i++ {
			if !out[i].Bottom {
				out[i].Pos = out[i-1].Pos + 1
				return out, "level-step"
			}
		}
		return nil, ""
	case 1: // raise a value above its predecessor
		if len(out) < 2 {
			return nil, ""
		}
		out[1].Value = out[0].Value + 1
		return out, "value-raise"
	case 2: // break the edge-key chain
		if len(out) < 2 {
			return nil, ""
		}
		out[1].InKey = out[0].OutKey + 1
		return out, "key-chain"
	case 3: // drop the terminal bottom tuple
		return out[:len(out)-1], "no-bottom"
	case 4: // duplicate the bottom tuple (adjacent bottoms)
		last := out[len(out)-1]
		dup := last
		dup.Pos--
		if dup.Pos < 0 {
			return nil, ""
		}
		dup.InKey = last.OutKey
		return append(out, dup), "adjacent-bottom"
	default: // push a position outside [0, maxPos]
		out[0].Pos = -1
		return out, "pos-range"
	}
}

func TestPropertyMutatedVetoTrailsRejected(t *testing.T) {
	f := func(seed uint64) bool {
		rng := crypto.NewStreamFromSeed(seed)
		maxPos := 5 + rng.Intn(8)
		trail := genVetoTrail(rng, maxPos)
		mutated, kind := mutateTrail(rng, trail)
		if kind == "" {
			return true // mutation not applicable to this trail shape
		}
		if kind == "no-bottom" && len(mutated) == 0 {
			return Validate(KindVetoAggregation, mutated, maxPos, nil) != nil
		}
		return Validate(KindVetoAggregation, mutated, maxPos, nil) != nil
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 400}); err != nil {
		t.Fatal(err)
	}
}

func TestPropertyTrailLengthBounded(t *testing.T) {
	// Well-formed trails respect the paper's L+1 bound by construction.
	f := func(seed uint64) bool {
		rng := crypto.NewStreamFromSeed(seed)
		maxPos := 4 + rng.Intn(10)
		trail := genVetoTrail(rng, maxPos)
		return len(trail) <= MaxLen(maxPos)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}
