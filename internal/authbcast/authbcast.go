// Package authbcast models the DoS-resilient authenticated broadcast
// primitive VMAT imports from Ning et al. [20] (paper Section III/IV): the
// base station can broadcast messages that every honest sensor receives
// within one flooding round and that malicious sensors can neither forge
// nor choke.
//
// The real scheme uses a muTESLA-style one-way key chain with delayed key
// disclosure. Here the chain is modelled by a broadcast key known to the
// Channel (held by the trusted base station) and to Verifiers (held by
// sensors). The model boundary is the API: adversary code is handed
// Verifiers — which can check announcements but never expose the key — so
// it can replay or drop announcements but not mint or alter them, exactly
// the power the paper grants the adversary against [20]. Replays are
// rejected by sequence number.
package authbcast

import (
	"repro/internal/crypto"
	"repro/internal/simnet"
	"repro/internal/topology"
)

// Encodable is a broadcast payload with a stable byte encoding, required
// so the announcement MAC covers the payload content.
type Encodable interface {
	simnet.Payload
	Encode() []byte
}

// Announcement is an authenticated broadcast message minted by the base
// station's Channel. The MAC covers the sequence number and the payload
// encoding, so tampering with either is detected by any Verifier.
type Announcement struct {
	Seq     uint64
	Payload Encodable
	mac     crypto.MAC
}

// WireSize accounts for the payload plus the sequence number and MAC.
func (a Announcement) WireSize() int {
	return a.Payload.WireSize() + 8 + crypto.MACSize
}

// Channel mints announcements. Only the base station holds a Channel.
type Channel struct {
	key crypto.Key
	seq uint64
}

// NewChannel creates a broadcast channel keyed by key.
func NewChannel(key crypto.Key) *Channel {
	return &Channel{key: key}
}

// Announce mints the next authenticated announcement carrying payload.
func (c *Channel) Announce(payload Encodable) Announcement {
	c.seq++
	return Announcement{
		Seq:     c.seq,
		Payload: payload,
		mac:     crypto.ComputeMAC(c.key, crypto.Uint64(c.seq), payload.Encode()),
	}
}

// Verifier checks announcements without exposing the broadcast key.
type Verifier struct {
	key crypto.Key
}

// Verifier returns a verifier for announcements minted by this channel.
func (c *Channel) Verifier() Verifier { return Verifier{key: c.key} }

// Verify reports whether a is an untampered announcement from the channel.
func (v Verifier) Verify(a Announcement) bool {
	if a.Payload == nil {
		return false
	}
	return crypto.VerifyMAC(v.key, a.mac, crypto.Uint64(a.Seq), a.Payload.Encode())
}

// FloodResult reports the outcome of one broadcast flood.
type FloodResult struct {
	// Received maps each node to whether it accepted the announcement.
	Received map[topology.NodeID]bool
	// Slots is the number of network slots the flood consumed.
	Slots int
}

// Flood propagates announcement a from origin over net until quiescent (at
// most maxSlots). Each node accepts the first valid copy it receives and —
// if forward(node) is true, which is how malicious sensors decline to
// relay — rebroadcasts it once to its neighbors. Invalid or replayed
// copies are ignored, which is why choking the broadcast is impossible:
// the only message that propagates is the valid announcement, and each
// node relays it at most once.
func Flood(net *simnet.Network, v Verifier, origin topology.NodeID, a Announcement,
	forward func(topology.NodeID) bool, maxSlots int) FloodResult {

	n := net.Graph().NumNodes()
	// received is indexed per node; each node's step touches only its own
	// element. The sweep is sparse: only the origin is woken explicitly
	// (to inject the announcement), every other node acts purely on
	// receipt, so a flood costs work proportional to the traffic it
	// creates rather than to network size.
	received := make([]bool, n)
	net.WakeAt(net.Slot(), origin)
	slots := net.RunUntilQuiescentActive(maxSlots, func(ctx *simnet.Context) {
		id := ctx.Node()
		if received[id] {
			return
		}
		first := false
		if id == origin {
			// The origin injects the announcement on its first step of
			// this flood.
			first = true
		}
		for _, m := range ctx.Inbox {
			ann, ok := m.Payload.(Announcement)
			if !ok || ann.Seq != a.Seq || !v.Verify(ann) {
				continue
			}
			first = true
			break
		}
		if !first {
			return
		}
		received[id] = true
		if forward == nil || forward(id) {
			ctx.Broadcast(a)
		}
	})
	out := FloodResult{Received: make(map[topology.NodeID]bool, n), Slots: slots}
	for id, ok := range received {
		if ok {
			out.Received[topology.NodeID(id)] = true
		}
	}
	return out
}
