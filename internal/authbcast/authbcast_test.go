package authbcast

import (
	"testing"

	"repro/internal/crypto"
	"repro/internal/simnet"
	"repro/internal/topology"
)

// note is a minimal Encodable payload for tests.
type note struct {
	text string
}

func (n note) WireSize() int  { return len(n.text) }
func (n note) Encode() []byte { return []byte(n.text) }

func TestAnnounceVerifyRoundTrip(t *testing.T) {
	ch := NewChannel(crypto.KeyFromUint64(1))
	v := ch.Verifier()
	a := ch.Announce(note{"query starts at slot 10"})
	if !v.Verify(a) {
		t.Fatal("valid announcement rejected")
	}
}

func TestVerifyRejectsTamperedPayload(t *testing.T) {
	ch := NewChannel(crypto.KeyFromUint64(2))
	v := ch.Verifier()
	a := ch.Announce(note{"original"})
	forged := a
	forged.Payload = note{"tampered"}
	if v.Verify(forged) {
		t.Fatal("tampered payload accepted")
	}
}

func TestVerifyRejectsTamperedSeq(t *testing.T) {
	ch := NewChannel(crypto.KeyFromUint64(3))
	v := ch.Verifier()
	a := ch.Announce(note{"x"})
	forged := a
	forged.Seq++
	if v.Verify(forged) {
		t.Fatal("tampered sequence accepted")
	}
}

func TestVerifyRejectsWrongChannel(t *testing.T) {
	a := NewChannel(crypto.KeyFromUint64(4)).Announce(note{"x"})
	v := NewChannel(crypto.KeyFromUint64(5)).Verifier()
	if v.Verify(a) {
		t.Fatal("announcement from another channel accepted")
	}
}

func TestVerifyRejectsNilPayload(t *testing.T) {
	v := NewChannel(crypto.KeyFromUint64(6)).Verifier()
	if v.Verify(Announcement{}) {
		t.Fatal("zero announcement accepted")
	}
}

func TestAnnouncementSeqMonotonic(t *testing.T) {
	ch := NewChannel(crypto.KeyFromUint64(7))
	a1 := ch.Announce(note{"a"})
	a2 := ch.Announce(note{"b"})
	if a2.Seq <= a1.Seq {
		t.Fatalf("sequence not monotonic: %d then %d", a1.Seq, a2.Seq)
	}
}

func TestWireSizeIncludesOverhead(t *testing.T) {
	ch := NewChannel(crypto.KeyFromUint64(8))
	a := ch.Announce(note{"12345"})
	if got := a.WireSize(); got != 5+8+crypto.MACSize {
		t.Fatalf("WireSize = %d, want %d", got, 5+8+crypto.MACSize)
	}
}

func TestFloodReachesAllNodes(t *testing.T) {
	g := topology.Grid(4, 5)
	net := simnet.New(g, simnet.Config{})
	ch := NewChannel(crypto.KeyFromUint64(9))
	a := ch.Announce(note{"hello sensors"})
	res := Flood(net, ch.Verifier(), topology.BaseStation, a, nil, 100)
	if len(res.Received) != g.NumNodes() {
		t.Fatalf("flood reached %d/%d nodes", len(res.Received), g.NumNodes())
	}
	if res.Slots > g.Depth(0)+2 {
		t.Fatalf("flood took %d slots, depth is %d", res.Slots, g.Depth(0))
	}
}

func TestFloodSurvivesNonForwardingMalicious(t *testing.T) {
	// Grid with a column of silent (non-forwarding) malicious sensors that
	// do not partition the honest ones: every honest node must still
	// receive the announcement.
	g := topology.Grid(4, 5)
	malicious := map[topology.NodeID]bool{7: true, 12: true}
	net := simnet.New(g, simnet.Config{})
	ch := NewChannel(crypto.KeyFromUint64(10))
	a := ch.Announce(note{"m"})
	res := Flood(net, ch.Verifier(), topology.BaseStation, a,
		func(id topology.NodeID) bool { return !malicious[id] }, 100)
	for id := 0; id < g.NumNodes(); id++ {
		nid := topology.NodeID(id)
		if malicious[nid] {
			continue
		}
		if !res.Received[nid] {
			t.Fatalf("honest node %d did not receive the broadcast", id)
		}
	}
}

func TestFloodStopsAtPartition(t *testing.T) {
	// Line 0-1-2 where node 1 refuses to forward: node 2 is partitioned
	// (the paper's model excludes such nodes from the aggregate).
	g := topology.Line(3)
	net := simnet.New(g, simnet.Config{})
	ch := NewChannel(crypto.KeyFromUint64(11))
	a := ch.Announce(note{"p"})
	res := Flood(net, ch.Verifier(), topology.BaseStation, a,
		func(id topology.NodeID) bool { return id != 1 }, 100)
	if res.Received[2] {
		t.Fatal("partitioned node received the broadcast")
	}
	if !res.Received[1] {
		t.Fatal("silent node should still receive (it only refuses to forward)")
	}
}

func TestFloodOnSharedNetworkAccumulatesSlots(t *testing.T) {
	// Two consecutive floods on the same network must both work even
	// though slot numbers keep increasing (phases share one Network).
	g := topology.Line(4)
	net := simnet.New(g, simnet.Config{})
	ch := NewChannel(crypto.KeyFromUint64(12))
	r1 := Flood(net, ch.Verifier(), topology.BaseStation, ch.Announce(note{"one"}), nil, 50)
	r2 := Flood(net, ch.Verifier(), topology.BaseStation, ch.Announce(note{"two"}), nil, 50)
	if len(r1.Received) != 4 || len(r2.Received) != 4 {
		t.Fatalf("floods reached %d and %d nodes, want 4 and 4", len(r1.Received), len(r2.Received))
	}
}
