package authbcast

import (
	"fmt"

	"repro/internal/crypto"
)

// This file implements a concrete muTESLA-style broadcast-authentication
// primitive (Perrig et al., the mechanism behind the paper's imported
// authenticated broadcast [20]): a one-way hash chain whose tip is
// pre-distributed to every sensor. The broadcaster MACs each message with
// a chain key and discloses that key only after the interval in which
// receivers buffered the message, so a receiver that checks the security
// condition (the key was not yet disclosed when the message arrived) gets
// authenticity from symmetric primitives alone.
//
// The package-level Channel/Verifier model remains the fast path used by
// the protocol engine; KeyChain substantiates that model with the real
// construction (same unforgeability for receivers, no shared secret that
// lets them forge), and is exercised by its own test suite.

// KeyChain is the broadcaster's side of a muTESLA chain: keys
// K_n -> K_{n-1} -> ... -> K_0 with K_{i-1} = H(K_i). K_0 is the public
// commitment; K_i authenticates messages of interval i and is disclosed
// in interval i+d (d = disclosure lag).
type KeyChain struct {
	keys []crypto.Key // keys[i] is K_i; keys[0] is the commitment
	lag  int
}

// NewKeyChain derives a chain of length intervals+1 from a seed. The
// disclosure lag is the number of intervals a key stays secret after its
// use; it must be at least 1.
func NewKeyChain(seed crypto.Key, intervals, lag int) (*KeyChain, error) {
	if intervals <= 0 {
		return nil, fmt.Errorf("authbcast: chain needs at least 1 interval, got %d", intervals)
	}
	if lag < 1 {
		return nil, fmt.Errorf("authbcast: disclosure lag must be >= 1, got %d", lag)
	}
	keys := make([]crypto.Key, intervals+1)
	keys[intervals] = crypto.DeriveKey(seed, "mutesla-tip", 0)
	for i := intervals; i > 0; i-- {
		keys[i-1] = chainStep(keys[i])
	}
	return &KeyChain{keys: keys, lag: lag}, nil
}

// chainStep is the one-way function F: K_{i-1} = F(K_i).
func chainStep(k crypto.Key) crypto.Key {
	h := crypto.HashOf([]byte("mutesla-chain"), k[:])
	var out crypto.Key
	copy(out[:], h[:crypto.KeySize])
	return out
}

// Commitment returns K_0, pre-loaded onto every sensor before deployment.
func (c *KeyChain) Commitment() crypto.Key { return c.keys[0] }

// Intervals returns the number of usable broadcast intervals.
func (c *KeyChain) Intervals() int { return len(c.keys) - 1 }

// Lag returns the disclosure lag d.
func (c *KeyChain) Lag() int { return c.lag }

// ChainMessage is one authenticated broadcast packet: the payload MAC'd
// under the (still secret) interval key, plus the key disclosed for an
// earlier interval.
type ChainMessage struct {
	Interval int
	Payload  []byte
	MAC      crypto.MAC
	// DisclosedInterval and DisclosedKey reveal K_{Interval-lag}; the
	// disclosed interval is negative when nothing is disclosed yet.
	DisclosedInterval int
	DisclosedKey      crypto.Key
}

// WireSize charges payload, MAC, key, and two interval counters.
func (m ChainMessage) WireSize() int {
	return len(m.Payload) + crypto.MACSize + crypto.KeySize + 8
}

// Broadcast authenticates payload for the given interval (1-based) and
// piggybacks the key disclosure for interval-lag.
func (c *KeyChain) Broadcast(interval int, payload []byte) (ChainMessage, error) {
	if interval < 1 || interval > c.Intervals() {
		return ChainMessage{}, fmt.Errorf("authbcast: interval %d outside chain [1, %d]", interval, c.Intervals())
	}
	msg := ChainMessage{
		Interval:          interval,
		Payload:           payload,
		MAC:               crypto.ComputeMAC(c.keys[interval], []byte("mutesla-msg"), crypto.Uint64(uint64(interval)), payload),
		DisclosedInterval: -1,
	}
	if d := interval - c.lag; d >= 1 {
		msg.DisclosedInterval = d
		msg.DisclosedKey = c.keys[d]
	}
	return msg, nil
}

// DiscloseKey returns the standalone key disclosure for an interval, sent
// when there is no later payload to piggyback on.
func (c *KeyChain) DiscloseKey(interval int) (int, crypto.Key, error) {
	if interval < 1 || interval > c.Intervals() {
		return 0, crypto.Key{}, fmt.Errorf("authbcast: interval %d outside chain [1, %d]", interval, c.Intervals())
	}
	return interval, c.keys[interval], nil
}

// ChainReceiver is a sensor's side of the chain: it holds the commitment,
// buffers messages whose keys are undisclosed, and authenticates them
// once the matching key arrives and checks out against the chain.
type ChainReceiver struct {
	lag       int
	intervals int
	// verified[i] holds K_i once authenticated; index 0 is the
	// commitment.
	verified map[int]crypto.Key
	latest   int // highest verified interval
	buffered map[int][]ChainMessage
}

// NewChainReceiver initializes a receiver from the pre-distributed
// commitment.
func NewChainReceiver(commitment crypto.Key, intervals, lag int) *ChainReceiver {
	return &ChainReceiver{
		lag:       lag,
		intervals: intervals,
		verified:  map[int]crypto.Key{0: commitment},
		buffered:  map[int][]ChainMessage{},
	}
}

// Accept processes a received chain message at the receiver's current
// interval (its loosely synchronized clock). It returns the payloads that
// became authenticated as a result (possibly from earlier buffered
// messages). Messages violating the security condition — their key could
// already be disclosed by now — are discarded as unauthenticatable.
func (r *ChainReceiver) Accept(msg ChainMessage, now int) [][]byte {
	// Security condition: K_Interval is disclosed in interval
	// Interval+lag; the message is only safe if it arrived before that.
	if msg.Interval >= 1 && msg.Interval <= r.intervals && now < msg.Interval+r.lag {
		r.buffered[msg.Interval] = append(r.buffered[msg.Interval], msg)
	}
	if msg.DisclosedInterval >= 1 {
		return r.learnKey(msg.DisclosedInterval, msg.DisclosedKey)
	}
	return nil
}

// AcceptDisclosure processes a standalone key disclosure.
func (r *ChainReceiver) AcceptDisclosure(interval int, key crypto.Key) [][]byte {
	return r.learnKey(interval, key)
}

// learnKey authenticates a disclosed key against the chain and releases
// any buffered messages it validates. A forged key hashes to the wrong
// ancestor and is rejected.
func (r *ChainReceiver) learnKey(interval int, key crypto.Key) [][]byte {
	if interval <= r.latest || interval > r.intervals {
		return nil
	}
	// Walk the candidate key down to the highest verified ancestor.
	k := key
	for i := interval; i > r.latest; i-- {
		k = chainStep(k)
	}
	if k != r.verified[r.latest] {
		return nil // forged disclosure
	}
	// Record the whole verified segment so gaps can be crossed later.
	k = key
	for i := interval; i > r.latest; i-- {
		r.verified[i] = k
		k = chainStep(k)
	}
	r.latest = interval

	var released [][]byte
	for i, msgs := range r.buffered {
		ki, ok := r.verified[i]
		if !ok {
			continue
		}
		for _, m := range msgs {
			want := crypto.ComputeMAC(ki, []byte("mutesla-msg"), crypto.Uint64(uint64(m.Interval)), m.Payload)
			if want == m.MAC {
				released = append(released, m.Payload)
			}
		}
		delete(r.buffered, i)
	}
	return released
}
