package authbcast

import (
	"testing"

	"repro/internal/crypto"
)

func newChain(t *testing.T, intervals, lag int) *KeyChain {
	t.Helper()
	c, err := NewKeyChain(crypto.KeyFromUint64(1), intervals, lag)
	if err != nil {
		t.Fatal(err)
	}
	return c
}

func TestNewKeyChainValidation(t *testing.T) {
	if _, err := NewKeyChain(crypto.Key{}, 0, 1); err == nil {
		t.Fatal("zero intervals accepted")
	}
	if _, err := NewKeyChain(crypto.Key{}, 5, 0); err == nil {
		t.Fatal("zero lag accepted")
	}
}

func TestChainCommitmentIsHashAncestor(t *testing.T) {
	c := newChain(t, 10, 1)
	// Hashing K_10 ten times must reach the commitment.
	k := c.keys[10]
	for i := 0; i < 10; i++ {
		k = chainStep(k)
	}
	if k != c.Commitment() {
		t.Fatal("chain does not collapse to its commitment")
	}
}

func TestBroadcastDeliversAfterDisclosure(t *testing.T) {
	c := newChain(t, 10, 1)
	r := NewChainReceiver(c.Commitment(), c.Intervals(), c.Lag())

	m1, err := c.Broadcast(1, []byte("alpha"))
	if err != nil {
		t.Fatal(err)
	}
	if got := r.Accept(m1, 1); len(got) != 0 {
		t.Fatal("payload released before key disclosure")
	}
	// Interval 2's message discloses K_1, authenticating m1.
	m2, _ := c.Broadcast(2, []byte("beta"))
	got := r.Accept(m2, 2)
	if len(got) != 1 || string(got[0]) != "alpha" {
		t.Fatalf("disclosure released %q, want [alpha]", got)
	}
	// Standalone disclosure of K_2 releases beta.
	i, k, _ := c.DiscloseKey(2)
	got = r.AcceptDisclosure(i, k)
	if len(got) != 1 || string(got[0]) != "beta" {
		t.Fatalf("standalone disclosure released %q, want [beta]", got)
	}
}

func TestSecurityConditionRejectsLateMessages(t *testing.T) {
	c := newChain(t, 10, 1)
	r := NewChainReceiver(c.Commitment(), c.Intervals(), c.Lag())
	m1, _ := c.Broadcast(1, []byte("late"))
	// The message arrives at interval 2 — by which time K_1 may already
	// be disclosed, so an adversary could have forged it.
	r.Accept(m1, 2)
	i, k, _ := c.DiscloseKey(1)
	if got := r.AcceptDisclosure(i, k); len(got) != 0 {
		t.Fatalf("late message authenticated: %q", got)
	}
}

func TestForgedDisclosureRejected(t *testing.T) {
	c := newChain(t, 10, 1)
	r := NewChainReceiver(c.Commitment(), c.Intervals(), c.Lag())
	m1, _ := c.Broadcast(1, []byte("x"))
	r.Accept(m1, 1)
	if got := r.AcceptDisclosure(1, crypto.KeyFromUint64(99)); len(got) != 0 {
		t.Fatalf("forged key accepted: %q", got)
	}
	// The genuine key still works afterwards.
	i, k, _ := c.DiscloseKey(1)
	if got := r.AcceptDisclosure(i, k); len(got) != 1 {
		t.Fatal("genuine key rejected after forgery attempt")
	}
}

func TestForgedPayloadRejected(t *testing.T) {
	c := newChain(t, 10, 1)
	r := NewChainReceiver(c.Commitment(), c.Intervals(), c.Lag())
	m1, _ := c.Broadcast(1, []byte("real"))
	m1.Payload = []byte("fake")
	r.Accept(m1, 1)
	i, k, _ := c.DiscloseKey(1)
	if got := r.AcceptDisclosure(i, k); len(got) != 0 {
		t.Fatalf("tampered payload authenticated: %q", got)
	}
}

func TestDisclosureGapCrossing(t *testing.T) {
	// A receiver that missed several disclosures must still authenticate
	// once a later key arrives (the chain walk crosses the gap).
	c := newChain(t, 10, 1)
	r := NewChainReceiver(c.Commitment(), c.Intervals(), c.Lag())
	m5, _ := c.Broadcast(5, []byte("five"))
	r.Accept(m5, 5)
	i, k, _ := c.DiscloseKey(5)
	got := r.AcceptDisclosure(i, k)
	if len(got) != 1 || string(got[0]) != "five" {
		t.Fatalf("gap crossing failed: %q", got)
	}
}

func TestReplayedOldDisclosureIgnored(t *testing.T) {
	c := newChain(t, 10, 1)
	r := NewChainReceiver(c.Commitment(), c.Intervals(), c.Lag())
	i, k, _ := c.DiscloseKey(3)
	r.AcceptDisclosure(i, k)
	// Replaying an older key must be a no-op, not a rollback.
	i1, k1, _ := c.DiscloseKey(1)
	if got := r.AcceptDisclosure(i1, k1); len(got) != 0 {
		t.Fatal("old disclosure released payloads")
	}
	if r.latest != 3 {
		t.Fatalf("latest rolled back to %d", r.latest)
	}
}

func TestBroadcastIntervalBounds(t *testing.T) {
	c := newChain(t, 4, 1)
	if _, err := c.Broadcast(0, nil); err == nil {
		t.Fatal("interval 0 accepted")
	}
	if _, err := c.Broadcast(5, nil); err == nil {
		t.Fatal("interval beyond chain accepted")
	}
	if _, _, err := c.DiscloseKey(0); err == nil {
		t.Fatal("disclosure of interval 0 accepted")
	}
}

func TestLagTwoPiggyback(t *testing.T) {
	c := newChain(t, 10, 2)
	r := NewChainReceiver(c.Commitment(), c.Intervals(), c.Lag())
	m1, _ := c.Broadcast(1, []byte("one"))
	r.Accept(m1, 1)
	// With lag 2, interval 2's message discloses nothing yet.
	m2, _ := c.Broadcast(2, []byte("two"))
	if got := r.Accept(m2, 2); len(got) != 0 {
		t.Fatal("lag-2 chain disclosed too early")
	}
	// Interval 3 discloses K_1.
	m3, _ := c.Broadcast(3, []byte("three"))
	got := r.Accept(m3, 3)
	if len(got) != 1 || string(got[0]) != "one" {
		t.Fatalf("lag-2 disclosure released %q, want [one]", got)
	}
}

func TestChainMessageWireSize(t *testing.T) {
	c := newChain(t, 3, 1)
	m, _ := c.Broadcast(1, []byte("1234"))
	want := 4 + crypto.MACSize + crypto.KeySize + 8
	if m.WireSize() != want {
		t.Fatalf("WireSize = %d, want %d", m.WireSize(), want)
	}
}
