// Package backoff is the shared bounded-exponential retry helper for
// the serving layer. Several subsystems wait out the same shape of
// transient condition — a sweep cell bouncing off a full job queue, a
// worker polling an idle coordinator, a result upload racing a briefly
// unreachable server — and each used to grow its own ad-hoc
// sleep-and-retry loop. This package is the one implementation: a
// deterministic bounded-exponential schedule plus a cancellable retry
// driver.
//
// The schedule is jitter-free by default — tests want reproducible
// timing, and most consumers are single-process retry loops — but
// fleet-facing consumers opt into jitter via Policy.Jitter: when a
// coordinator restart disconnects every worker at the same instant,
// jitter-free reconnects would arrive as a synchronized stampede on
// every retry round. (The simulator's link-layer ARQ keeps its own
// slot-domain backoff in internal/simnet — that one is part of the
// modeled protocol, not wall-clock plumbing.)
package backoff

import (
	"context"
	"math/rand"
	"time"
)

// Policy is a bounded-exponential backoff schedule: Base, 2*Base,
// 4*Base, ... capped at Max. The zero value is not useful; use Default
// or fill both fields.
type Policy struct {
	// Base is the first delay. Required.
	Base time.Duration
	// Max caps the delay growth. Required; Max < Base is treated as
	// Base (a constant schedule).
	Max time.Duration
	// Jitter, when in (0, 1], spreads each delay uniformly over
	// [d*(1-Jitter), d*(1+Jitter)] so a fleet knocked over at the same
	// instant (coordinator restart, network blip) does not retry in
	// lockstep. Zero keeps the deterministic schedule.
	Jitter float64
}

// Default is the serving-layer schedule: quick first retries (queue
// slots open on millisecond scales) flattening out at a polite cap.
var Default = Policy{Base: 2 * time.Millisecond, Max: 250 * time.Millisecond}

// Delay returns the delay before retry attempt (0-based): Base<<attempt
// capped at Max, with shift overflow treated as capped, then jittered
// when the policy asks for it.
func (p Policy) Delay(attempt int) time.Duration {
	d := p.Base
	for i := 0; i < attempt; i++ {
		d *= 2
		if d >= p.Max || d <= 0 { // <= 0: overflow
			d = max(p.Max, p.Base)
			break
		}
	}
	if d > p.Max && p.Max >= p.Base {
		d = p.Max
	}
	return p.jitter(d)
}

// jitter spreads d over [d*(1-Jitter), d*(1+Jitter)], floored at 0.
func (p Policy) jitter(d time.Duration) time.Duration {
	if p.Jitter <= 0 || d <= 0 {
		return d
	}
	j := p.Jitter
	if j > 1 {
		j = 1
	}
	spread := 1 + j*(2*rand.Float64()-1)
	return time.Duration(float64(d) * spread)
}

// Retry runs fn until it reports done, sleeping the policy's schedule
// between attempts. fn returning an error stops the loop immediately
// and Retry returns that error; fn returning (false, nil) means "still
// transient, try again". ctx and stop both cancel the wait: ctx
// cancellation returns ctx.Err(), a close of stop returns ErrStopped.
// stop may be nil.
func Retry(ctx context.Context, stop <-chan struct{}, p Policy, fn func() (done bool, err error)) error {
	for attempt := 0; ; attempt++ {
		done, err := fn()
		if err != nil {
			return err
		}
		if done {
			return nil
		}
		t := time.NewTimer(p.Delay(attempt))
		select {
		case <-t.C:
		case <-ctx.Done():
			t.Stop()
			return ctx.Err()
		case <-stop:
			t.Stop()
			return ErrStopped
		}
	}
}

// ErrStopped is returned by Retry when the stop channel closes before
// fn reports done.
var ErrStopped = errStopped{}

type errStopped struct{}

func (errStopped) Error() string { return "backoff: stopped" }
