package backoff

import (
	"context"
	"errors"
	"testing"
	"time"
)

func TestDelaySchedule(t *testing.T) {
	p := Policy{Base: 2 * time.Millisecond, Max: 16 * time.Millisecond}
	want := []time.Duration{
		2 * time.Millisecond, 4 * time.Millisecond, 8 * time.Millisecond,
		16 * time.Millisecond, 16 * time.Millisecond, 16 * time.Millisecond,
	}
	for attempt, w := range want {
		if got := p.Delay(attempt); got != w {
			t.Errorf("Delay(%d) = %v, want %v", attempt, got, w)
		}
	}
}

func TestDelayOverflowCapped(t *testing.T) {
	p := Policy{Base: time.Hour, Max: 2 * time.Hour}
	if got := p.Delay(300); got != 2*time.Hour {
		t.Fatalf("Delay(300) = %v, want the %v cap", got, 2*time.Hour)
	}
}

func TestDelayMaxBelowBaseIsConstant(t *testing.T) {
	p := Policy{Base: 10 * time.Millisecond, Max: time.Millisecond}
	for attempt := 0; attempt < 4; attempt++ {
		if got := p.Delay(attempt); got != 10*time.Millisecond {
			t.Fatalf("Delay(%d) = %v, want constant Base", attempt, got)
		}
	}
}

func TestRetryRunsUntilDone(t *testing.T) {
	p := Policy{Base: time.Microsecond, Max: time.Microsecond}
	calls := 0
	err := Retry(context.Background(), nil, p, func() (bool, error) {
		calls++
		return calls == 4, nil
	})
	if err != nil {
		t.Fatalf("Retry: %v", err)
	}
	if calls != 4 {
		t.Fatalf("fn called %d times, want 4", calls)
	}
}

func TestRetryPropagatesError(t *testing.T) {
	boom := errors.New("boom")
	calls := 0
	err := Retry(context.Background(), nil, Default, func() (bool, error) {
		calls++
		return false, boom
	})
	if !errors.Is(err, boom) {
		t.Fatalf("Retry = %v, want %v", err, boom)
	}
	if calls != 1 {
		t.Fatalf("fn called %d times after a hard error, want 1", calls)
	}
}

func TestRetryStopChannel(t *testing.T) {
	stop := make(chan struct{})
	close(stop)
	p := Policy{Base: time.Hour, Max: time.Hour} // would hang without stop
	err := Retry(context.Background(), stop, p, func() (bool, error) {
		return false, nil
	})
	if !errors.Is(err, ErrStopped) {
		t.Fatalf("Retry = %v, want ErrStopped", err)
	}
}

func TestRetryContextCancel(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	p := Policy{Base: time.Hour, Max: time.Hour}
	err := Retry(ctx, nil, p, func() (bool, error) { return false, nil })
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("Retry = %v, want context.Canceled", err)
	}
}

func TestJitterStaysInBand(t *testing.T) {
	p := Policy{Base: 100 * time.Millisecond, Max: time.Second, Jitter: 0.25}
	for attempt := 0; attempt < 8; attempt++ {
		base := Policy{Base: p.Base, Max: p.Max}.Delay(attempt)
		lo := time.Duration(float64(base) * 0.75)
		hi := time.Duration(float64(base) * 1.25)
		varied := false
		for i := 0; i < 64; i++ {
			d := p.Delay(attempt)
			if d < lo || d > hi {
				t.Fatalf("attempt %d: delay %v outside [%v, %v]", attempt, d, lo, hi)
			}
			if d != base {
				varied = true
			}
		}
		if !varied {
			t.Fatalf("attempt %d: 64 jittered delays all equal %v", attempt, base)
		}
	}
	// Jitter > 1 clamps; zero stays deterministic.
	wild := Policy{Base: time.Millisecond, Max: time.Millisecond, Jitter: 5}
	for i := 0; i < 64; i++ {
		if d := wild.Delay(0); d < 0 || d > 2*time.Millisecond {
			t.Fatalf("clamped jitter produced %v", d)
		}
	}
	plain := Policy{Base: 3 * time.Millisecond, Max: 24 * time.Millisecond}
	for i := 0; i < 4; i++ {
		if plain.Delay(2) != 12*time.Millisecond {
			t.Fatal("jitter-free schedule is no longer deterministic")
		}
	}
}
