package baseline

import (
	"math"
	"testing"

	"repro/internal/crypto"
	"repro/internal/topology"
)

func TestHopCountTreeHonest(t *testing.T) {
	g := topology.Grid(4, 5)
	res := RunHopCountTree(g, g.Depth(0), nil, 100)
	if res.Invalid != 0 {
		t.Fatalf("honest hop-count tree produced %d invalid levels", res.Invalid)
	}
	depths := g.Depths(0)
	for id, lvl := range res.Levels {
		if id == 0 {
			continue
		}
		if lvl != depths[id] {
			t.Fatalf("node %d level %d != BFS depth %d", id, lvl, depths[id])
		}
	}
}

func TestHopCountTreeWormholeBreaksLevels(t *testing.T) {
	// Line topology 0..9 with a wormhole from node 1 (near the base
	// station) to node 6: the exit re-floods with an inflated hop count
	// before the honest flood arrives, so downstream honest sensors adopt
	// levels beyond L — Figure 2(c).
	g := topology.Line(10)
	l := g.Depth(0) // 9
	res := RunHopCountTree(g, l, &WormholeConfig{
		Pairs:        [][2]topology.NodeID{{1, 6}},
		InflatedHops: 20,
	}, 100)
	if res.Invalid == 0 {
		t.Fatal("wormhole failed to push any honest sensor beyond L")
	}
	// The victims sit around the exit, reached by the tunneled copy first.
	found := false
	for id, lvl := range res.Levels {
		if id != 1 && id != 6 && lvl > l {
			found = true
		}
	}
	if !found {
		t.Fatalf("no honest victim recorded: levels %v", res.Levels)
	}
}

func TestHopCountTreeWormholeOnGrid(t *testing.T) {
	g := topology.Grid(5, 6)
	l := g.Depth(0)
	res := RunHopCountTree(g, l, &WormholeConfig{
		Pairs:        [][2]topology.NodeID{{1, 29}},
		InflatedHops: 3 * l,
	}, 200)
	if res.Invalid == 0 {
		t.Fatalf("grid wormhole produced no invalid levels: %v", res.Levels)
	}
}

func TestNaiveUploadCounts(t *testing.T) {
	g := topology.Grid(4, 5)
	res := RunNaiveUpload(g, 200)
	if res.Received != g.NumNodes()-1 {
		t.Fatalf("base station received %d readings, want %d", res.Received, g.NumNodes()-1)
	}
}

func TestNaiveUploadBottleneckScalesLinearly(t *testing.T) {
	// The root-adjacent sensor's traffic must grow linearly with n; this
	// is the baseline's fundamental cost the paper contrasts with VMAT's
	// constant-size aggregates.
	small := RunNaiveUpload(topology.Line(20), 400)
	big := RunNaiveUpload(topology.Line(80), 1600)
	if small.Received != 19 || big.Received != 79 {
		t.Fatalf("received %d/%d, want 19/79", small.Received, big.Received)
	}
	smallMax := small.Stats.MaxNodeBytes()
	bigMax := big.Stats.MaxNodeBytes()
	ratio := float64(bigMax) / float64(smallMax)
	if ratio < 3 {
		t.Fatalf("bottleneck bytes grew only %.1fx for 4x nodes (got %d -> %d)", ratio, smallMax, bigMax)
	}
	// The paper's figure: at n sensors the naive approach moves at least
	// n*8 bytes of MACs through the bottleneck.
	if bigMax < 79*8 {
		t.Fatalf("bottleneck %d bytes below the paper's n*8 lower bound", bigMax)
	}
}

func TestSetSamplingEstimatesCount(t *testing.T) {
	g, _ := topology.RandomGeometric(150, 0.18, crypto.NewStreamFromSeed(9))
	ss := &SetSampling{Graph: g, RepeatsPerLevel: 7, Seed: 9}
	const truth = 60
	res := ss.Run(func(id topology.NodeID) bool { return id >= 1 && id <= truth })
	if res.Estimate <= 0 {
		t.Fatal("estimate is zero for a nonzero count")
	}
	// A coarse estimator: within 4x either way is in line with [29]-style
	// sampling at this repeat budget.
	if res.Estimate < truth/4 || res.Estimate > truth*4 {
		t.Fatalf("estimate %.0f not within 4x of %d", res.Estimate, truth)
	}
}

func TestSetSamplingZeroCount(t *testing.T) {
	g := topology.Grid(4, 4)
	ss := &SetSampling{Graph: g, Seed: 10}
	res := ss.Run(func(topology.NodeID) bool { return false })
	if res.Estimate != 0 {
		t.Fatalf("estimate %.1f for empty predicate, want 0", res.Estimate)
	}
}

func TestSetSamplingRoundsGrowLogarithmically(t *testing.T) {
	// The motivating contrast of Section I: flooding rounds must grow
	// with log n, whereas VMAT's happy path is O(1).
	rounds := map[int]int{}
	for _, n := range []int{50, 200, 800} {
		g, _ := topology.RandomGeometric(n, math.Sqrt(30/float64(n)), crypto.NewStreamFromSeed(uint64(n)))
		ss := &SetSampling{Graph: g, RepeatsPerLevel: 3, Seed: uint64(n)}
		res := ss.Run(func(id topology.NodeID) bool { return id != 0 }) // count all
		rounds[n] = res.FloodingRounds
	}
	if !(rounds[800] > rounds[200] && rounds[200] > rounds[50]) {
		t.Fatalf("flooding rounds not increasing with n: %v", rounds)
	}
	if rounds[50] < 2*3*4 { // at least ~log2(50) levels of 3 tests, 2 rounds each
		t.Fatalf("rounds %d implausibly low for n=50", rounds[50])
	}
}
