// Package baseline implements the comparison systems the paper measures
// VMAT against or explicitly improves upon:
//
//   - the traditional hop-count tree formation of TAG [15], which the
//     wormhole attack of Figure 2(c) breaks (sensors end up with levels
//     beyond L and cannot pick a transmission interval),
//   - the naive no-aggregation baseline that ships every individual
//     MAC-carrying reading to the base station (Section IX's 80 KB-per-
//     query comparison point), and
//   - a sampling-based aggregation model in the style of Yu [29], which
//     tolerates malicious sensors without revocation but pays
//     Omega(log n) sequential flooding rounds per query (Section I).
package baseline

import (
	"repro/internal/simnet"
	"repro/internal/topology"
)

// hopMsg is the TAG-style tree formation message carrying a hop count.
type hopMsg struct {
	Hops int
}

// WireSize is the hop counter plus a type tag.
func (hopMsg) WireSize() int { return 6 }

// HopCountTreeResult reports one hop-count tree formation run.
type HopCountTreeResult struct {
	// Levels holds each node's level (hop count + 1 of the first message
	// received); -1 when the flood never arrived.
	Levels []int
	// Invalid counts honest sensors whose level exceeds L and who
	// therefore cannot determine a valid transmission interval for the
	// aggregation phase — the paper's Figure 2(c) failure mode.
	Invalid int
	// Slots is the number of network slots consumed.
	Slots int
}

// WormholeConfig plants the Figure 2(c) attack into a hop-count tree
// formation. Each malicious entry sensor tunnels the tree message it
// hears to its exit partner out of band; the exit re-floods it with an
// inflated hop count, concatenating two legitimate paths. Honest sensors
// that hear the tunneled copy first adopt a level that can exceed L —
// and, unlike a timestamp, a hop count gives them no way to tell.
type WormholeConfig struct {
	// Pairs lists wormhole endpoints as (entry, exit).
	Pairs [][2]topology.NodeID
	// InflatedHops is the hop count the exit claims when re-flooding.
	InflatedHops int
}

func isRadioNeighbor(ctx *simnet.Context, id topology.NodeID) bool {
	for _, nb := range ctx.Neighbors() {
		if nb == id {
			return true
		}
	}
	return false
}

func (w *WormholeConfig) members() map[topology.NodeID]bool {
	m := map[topology.NodeID]bool{}
	if w == nil {
		return m
	}
	for _, p := range w.Pairs {
		m[p[0]] = true
		m[p[1]] = true
	}
	return m
}

// RunHopCountTree runs the traditional tree formation over g with an
// optional wormhole adversary and returns the resulting levels, counting
// honest sensors whose level exceeds l. The adversary's transmissions
// beat honest ones within a slot (worst-case timing). Malicious sensors
// otherwise keep their cover and participate normally.
func RunHopCountTree(g *topology.Graph, l int, wormhole *WormholeConfig, maxSlots int) HopCountTreeResult {
	malicious := wormhole.members()
	exitOf := map[topology.NodeID]topology.NodeID{}
	if wormhole != nil {
		for _, p := range wormhole.Pairs {
			exitOf[p[0]] = p[1]
		}
	}
	net := simnet.New(g, simnet.Config{
		Order: simnet.MaliciousFirstOrder(malicious),
		ExtraLink: func(from, to topology.NodeID) bool {
			return malicious[from] && malicious[to]
		},
	})

	n := g.NumNodes()
	levels := make([]int, n)
	for i := range levels {
		levels[i] = -1
	}
	levels[topology.BaseStation] = 0
	tunneled := make([]bool, n) // entry already fired its tunnel

	slots := net.RunUntilQuiescent(maxSlots, func(ctx *simnet.Context) {
		id := ctx.Node()
		if id == topology.BaseStation {
			if ctx.Slot() == 0 {
				ctx.Broadcast(hopMsg{Hops: 0})
			}
			return
		}
		for _, m := range ctx.Inbox {
			h, ok := m.Payload.(hopMsg)
			if !ok {
				continue
			}
			// A wormhole exit hearing its entry's tunneled (out-of-band)
			// copy re-floods it verbatim, whatever its own level
			// situation.
			if malicious[id] && malicious[m.From] && !isRadioNeighbor(ctx, m.From) {
				ctx.Broadcast(hopMsg{Hops: h.Hops})
				continue
			}
			if levels[id] == -1 {
				levels[id] = h.Hops + 1
				ctx.Broadcast(hopMsg{Hops: h.Hops + 1})
				if exit, isEntry := exitOf[id]; isEntry && !tunneled[id] {
					tunneled[id] = true
					ctx.Send(exit, hopMsg{Hops: wormhole.InflatedHops})
				}
			}
		}
	})

	res := HopCountTreeResult{Levels: levels, Slots: slots}
	for id, lvl := range levels {
		if malicious[topology.NodeID(id)] || id == 0 {
			continue
		}
		if lvl > l {
			res.Invalid++
		}
	}
	return res
}
