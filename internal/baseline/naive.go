package baseline

import (
	"repro/internal/simnet"
	"repro/internal/topology"
)

// readingMsg is one sensor's reading with its MAC in the naive baseline:
// the paper assumes each reading "still needs to carry MACs to prevent
// the attacker from injecting additional fabricated readings" at 8 bytes
// per MAC plus the reading itself (Section IX).
type readingMsg struct {
	count int // readings batched in one transmission
}

// naiveRecordSize is bytes per relayed reading: 4-byte origin, 4-byte
// value, 8-byte MAC — deliberately charitable to the baseline (smaller
// than VMAT's 24-byte records).
const naiveRecordSize = 16

// WireSize charges each batched reading.
func (m readingMsg) WireSize() int { return naiveRecordSize * m.count }

// NaiveUploadResult reports one run of the no-aggregation baseline.
type NaiveUploadResult struct {
	// Stats is the per-node byte accounting.
	Stats simnet.Stats
	// Received is the number of distinct readings that reached the base
	// station.
	Received int
	// Slots is the number of network slots consumed.
	Slots int
}

// RunNaiveUpload runs the baseline without in-network aggregation: every
// sensor forwards every reading it hears toward the base station along a
// BFS tree. The interesting output is Stats: per-sensor communication
// grows linearly in subtree size, reaching Omega(n) at the base station's
// neighbors — the paper's "one to two orders of magnitude larger than
// VMAT" comparison point.
func RunNaiveUpload(g *topology.Graph, maxSlots int) NaiveUploadResult {
	n := g.NumNodes()
	// Each node uploads through its BFS parent.
	parent, _ := BFSTree(g)

	net := simnet.New(g, simnet.Config{})
	pendingUp := make([]int, n) // readings waiting to be relayed upward
	received := 0
	slots := net.RunUntilQuiescent(maxSlots, func(ctx *simnet.Context) {
		id := ctx.Node()
		if ctx.Slot() == 0 && id != topology.BaseStation {
			pendingUp[id]++ // own reading
		}
		for _, m := range ctx.Inbox {
			r, ok := m.Payload.(readingMsg)
			if !ok {
				continue
			}
			if id == topology.BaseStation {
				received += r.count
				continue
			}
			pendingUp[id] += r.count
		}
		if id != topology.BaseStation && pendingUp[id] > 0 && parent[id] >= 0 {
			ctx.Send(parent[id], readingMsg{count: pendingUp[id]})
			pendingUp[id] = 0
		}
	})
	return NaiveUploadResult{Stats: net.Stats(), Received: received, Slots: slots}
}
