package baseline

import (
	"math"

	"repro/internal/crypto"
	"repro/internal/simnet"
	"repro/internal/topology"
)

// SetSampling models the sampling-based secure aggregation of Yu [29],
// the protocol the paper compares VMAT's round complexity against
// (Section I). Instead of in-network aggregation, the base station
// estimates a predicate COUNT by running a sequence of keyed predicate
// tests over random sensor subsets of geometrically decreasing density:
// when roughly 1/c of the sensors are sampled, a set test starts failing
// once c exceeds the true count. Each test is chokeproof for the same
// reason as VMAT's (only the committed reply propagates), and each test
// costs two flooding rounds — one broadcast down, one reply up. The
// estimator needs Theta(log n * t) sequential tests, hence the
// Omega(log n) flooding rounds that motivate VMAT's O(1) design.
type SetSampling struct {
	// Graph is the radio topology.
	Graph *topology.Graph
	// RepeatsPerLevel is t, the tests per density level (error control).
	RepeatsPerLevel int
	// Seed drives the random subsets.
	Seed uint64
}

// SetSamplingResult reports one estimation run.
type SetSamplingResult struct {
	// Estimate is the count estimate.
	Estimate float64
	// Tests is the number of sequential keyed predicate tests run.
	Tests int
	// FloodingRounds is the sequential flooding-round cost (2 per test).
	FloodingRounds int
	// Slots is the total network slots consumed.
	Slots int
	// Stats is the byte accounting.
	Stats simnet.Stats
}

// reply is the committed "yes" reply of one set test; sensors relay the
// first copy they hear (the commitment check is modelled by the testID).
type reply struct {
	testID int
}

// WireSize is one MAC.
func (reply) WireSize() int { return 8 }

// probe is the downstream broadcast of one set test.
type probe struct {
	testID int
}

// WireSize covers the set descriptor and commitment.
func (probe) WireSize() int { return 48 }

// Run estimates the number of sensors satisfying pred.
func (s *SetSampling) Run(pred func(topology.NodeID) bool) SetSamplingResult {
	if s.RepeatsPerLevel <= 0 {
		s.RepeatsPerLevel = 3
	}
	n := s.Graph.NumNodes()
	net := simnet.New(s.Graph, simnet.Config{})
	rng := crypto.NewStreamFromSeed(s.Seed)

	res := SetSamplingResult{}
	maxLevel := int(math.Ceil(math.Log2(float64(n)))) + 1

	// Find the highest density level (sampling probability 2^-level) at
	// which a majority of t repeated set tests still succeed; the count
	// estimate is 2^level (up to the estimator constant).
	lastYes := -1
	for level := 0; level <= maxLevel; level++ {
		yes := 0
		for rep := 0; rep < s.RepeatsPerLevel; rep++ {
			res.Tests++
			salt := rng.Uint64()
			inSet := func(id topology.NodeID) bool {
				h := crypto.NewStream(crypto.Uint64(salt), crypto.Uint64(uint64(id)))
				// Sample with probability 2^-level.
				return level == 0 || h.Uint64()>>(64-level) == 0
			}
			if s.runOneTest(net, res.Tests, func(id topology.NodeID) bool {
				return pred(id) && inSet(id)
			}) {
				yes++
			}
		}
		if 2*yes >= s.RepeatsPerLevel {
			lastYes = level
		} else {
			break
		}
	}
	if lastYes >= 0 {
		// E[max level with a sampled positive] ~ log2(count); the 2/ln 2
		// constant follows the standard maximum-of-geometric analysis.
		res.Estimate = math.Exp2(float64(lastYes)) * math.Ln2 * 2
		if lastYes == 0 {
			res.Estimate = 1
		}
	}
	res.FloodingRounds = 2 * res.Tests
	res.Stats = net.Stats()
	res.Slots = res.Stats.Slots
	return res
}

// runOneTest performs one chokeproof set test: flood the probe, then
// relay the committed reply from any satisfying sensor back to the base
// station. It returns whether the base station heard a reply.
func (s *SetSampling) runOneTest(net *simnet.Network, testID int, satisfied func(topology.NodeID) bool) bool {
	n := s.Graph.NumNodes()
	probed := make([]bool, n)
	replied := make([]bool, n)
	success := false
	depth := s.Graph.Depth(topology.BaseStation)

	net.RunUntilQuiescent(4*depth+8, func(ctx *simnet.Context) {
		id := ctx.Node()
		// Downstream probe flood.
		if !probed[id] {
			hit := id == topology.BaseStation
			for _, m := range ctx.Inbox {
				if p, ok := m.Payload.(probe); ok && p.testID == testID {
					hit = true
					break
				}
			}
			if hit {
				probed[id] = true
				ctx.Broadcast(probe{testID: testID})
				if id != topology.BaseStation && satisfied(id) && !replied[id] {
					replied[id] = true
					ctx.Broadcast(reply{testID: testID})
				}
			}
		}
		// Upstream reply relay (one-time per sensor).
		if replied[id] {
			return
		}
		for _, m := range ctx.Inbox {
			if r, ok := m.Payload.(reply); ok && r.testID == testID {
				replied[id] = true
				if id == topology.BaseStation {
					success = true
					return
				}
				ctx.Broadcast(reply{testID: testID})
				return
			}
		}
	})
	return success
}
