package baseline

import (
	"repro/internal/crypto"
	"repro/internal/keydist"
	"repro/internal/simnet"
	"repro/internal/topology"
)

// This file implements a functional SHIA-style secure hierarchical
// in-network aggregation baseline (Chan, Perrig, Song, CCS 2006 [3] in
// the paper's references): SUM aggregation over a commitment tree with
// distributed verification and an aggregated acknowledgement. It detects
// any manipulation of honest sensors' contributions — but, exactly as the
// paper's introduction argues, it can only *raise an alarm*: the
// adversary is never identified and can corrupt every execution forever.
// The availability experiment contrasts this with VMAT's revocation.
//
// Faithfulness notes: the commitment tree, the off-path verification
// package dissemination, and the XOR-aggregated authentication codes
// follow SHIA's structure; the complement range check (which bounds each
// contribution for SUM) is omitted because the experiments only exercise
// integrity of honest contributions, not range spoofing.

// SHIATamper selects the malicious behavior inside the SHIA baseline.
type SHIATamper int

const (
	// SHIAHonest makes malicious nodes behave correctly.
	SHIAHonest SHIATamper = iota
	// SHIADropSubtree makes malicious nodes omit their children's labels
	// (and subtree sums) from the commitment they forward.
	SHIADropSubtree
	// SHIAInflate makes malicious nodes add a large bogus delta to a
	// child's reported sum while recomputing consistent hashes above it.
	SHIAInflate
)

// SHIA configures one run of the baseline.
type SHIA struct {
	Graph      *topology.Graph
	Deployment *keydist.Deployment
	// Readings supplies non-negative integer readings; the base station
	// contributes nothing.
	Readings func(id topology.NodeID) int64
	// Malicious marks compromised sensors; Tamper selects their behavior.
	Malicious map[topology.NodeID]bool
	Tamper    SHIATamper
	Seed      uint64
}

// SHIAResult reports one run.
type SHIAResult struct {
	// Sum is the root aggregate as received by the base station.
	Sum int64
	// Alarm reports whether verification failed (a corrupted execution).
	Alarm bool
	// Slots and Stats carry the cost accounting.
	Slots int
	Stats simnet.Stats
}

// label is a commitment-tree node: the subtree sum and count with a hash
// binding the contributor and its children's labels.
type label struct {
	Count int64
	Sum   int64
	Hash  crypto.Hash
}

// leafLabel commits a single sensor's reading.
func leafLabel(id topology.NodeID, reading int64) label {
	return label{
		Count: 1,
		Sum:   reading,
		Hash:  crypto.HashOf([]byte("shia-leaf"), crypto.Uint64(uint64(id)), crypto.Int64(reading)),
	}
}

// combine folds an inner node's own reading with its children's labels.
func combine(id topology.NodeID, reading int64, children []label) label {
	out := label{Count: 1, Sum: reading}
	parts := [][]byte{[]byte("shia-node"), crypto.Uint64(uint64(id)), crypto.Int64(reading)}
	for _, c := range children {
		out.Count += c.Count
		out.Sum += c.Sum
		parts = append(parts, crypto.Int64(c.Count), crypto.Int64(c.Sum), c.Hash[:])
	}
	out.Hash = crypto.HashOf(parts...)
	return out
}

// aggMsgSHIA carries a label up the tree.
type aggMsgSHIA struct {
	From  topology.NodeID
	Label label
}

func (aggMsgSHIA) WireSize() int { return 8 + 8 + crypto.HashSize }

// pkgStep is one ancestor's slice of a verification package: the
// ancestor's identity and reading plus the labels of the receiver-path
// child's siblings, in the order used by combine.
type pkgStep struct {
	Ancestor topology.NodeID
	Reading  int64
	// Siblings are the ancestor's child labels with the path child's own
	// label replaced by a placeholder the verifier substitutes.
	Siblings []label
	// PathIndex is the position of the path child within the ancestor's
	// child list.
	PathIndex int
}

// verifyPkg travels down the tree, growing one step per level.
type verifyPkg struct {
	Steps []pkgStep
}

func (p verifyPkg) WireSize() int {
	size := 4
	for _, s := range p.Steps {
		size += 12 + len(s.Siblings)*(8+8+crypto.HashSize)
	}
	return size
}

// ackMsg carries the XOR-aggregated authentication codes up the tree.
type ackMsg struct {
	XOR crypto.MAC
}

func (ackMsg) WireSize() int { return crypto.MACSize }

// rootMsg floods the root commitment down for verification.
type rootMsg struct {
	Root label
}

func (rootMsg) WireSize() int { return 8 + 8 + crypto.HashSize }

func xorMAC(a, b crypto.MAC) crypto.MAC {
	var out crypto.MAC
	for i := range out {
		out[i] = a[i] ^ b[i]
	}
	return out
}

// Run executes the four SHIA phases over the simulated network:
// commitment-tree aggregation up, root broadcast down, verification
// package dissemination down, and authentication-code aggregation up.
func (s *SHIA) Run() SHIAResult {
	g := s.Graph
	n := g.NumNodes()
	depths := g.Depths(topology.BaseStation)
	height := 0
	for _, d := range depths {
		if d > height {
			height = d
		}
	}
	// BFS tree with sorted children lists for deterministic combine
	// order.
	parent, children := BFSTree(g)

	reading := func(id topology.NodeID) int64 {
		if s.Readings == nil || id == topology.BaseStation {
			return 0
		}
		return s.Readings(id)
	}

	net := simnet.New(g, simnet.Config{})
	nonce := crypto.Uint64(s.Seed)

	// Phase 1: aggregation (height+1 slots). childLabels[p] collects, in
	// child order, the labels p received; labels[x] is x's own combined
	// label.
	childLabels := make([]map[topology.NodeID]label, n)
	labels := make([]label, n)
	for i := range childLabels {
		childLabels[i] = map[topology.NodeID]label{}
	}
	base := net.Slot()
	net.RunSlots(height+1, func(ctx *simnet.Context) {
		id := ctx.Node()
		local := ctx.Slot() - base
		for _, m := range ctx.Inbox {
			if a, ok := m.Payload.(aggMsgSHIA); ok {
				childLabels[id][a.From] = a.Label
			}
		}
		if depths[id] <= 0 || local != height-depths[id] {
			return
		}
		ordered := s.orderedChildLabels(children[id], childLabels[id])
		lbl := combine(id, reading(id), ordered)
		if s.Malicious[id] {
			lbl = s.tamper(id, reading(id), ordered)
		}
		labels[id] = lbl
		ctx.Send(parent[id], aggMsgSHIA{From: id, Label: lbl})
	})

	// Base station folds its children into the root.
	rootChildren := s.orderedChildLabels(children[0], childLabels[0])
	root := combine(topology.BaseStation, 0, rootChildren)
	res := SHIAResult{Sum: root.Sum}

	// Phase 2: flood the root commitment (authenticated broadcast, here
	// delivered as a plain flood since the baseline trusts it).
	seen := make([]bool, n)
	base = net.Slot()
	net.RunUntilQuiescent(2*height+4, func(ctx *simnet.Context) {
		id := ctx.Node()
		if seen[id] {
			return
		}
		hit := id == topology.BaseStation
		for _, m := range ctx.Inbox {
			if _, ok := m.Payload.(rootMsg); ok {
				hit = true
			}
		}
		if hit {
			seen[id] = true
			ctx.Broadcast(rootMsg{Root: root})
		}
	})

	// Phase 3: disseminate verification packages down (height+1 slots).
	pkgs := make([]verifyPkg, n)
	base = net.Slot()
	net.RunSlots(height+2, func(ctx *simnet.Context) {
		id := ctx.Node()
		local := ctx.Slot() - base
		for _, m := range ctx.Inbox {
			if p, ok := m.Payload.(verifyPkg); ok {
				pkgs[id] = p
			}
		}
		if depths[id] != local {
			return
		}
		ordered := s.orderedChildLabels(children[id], childLabels[id])
		for idx, c := range children[id] {
			step := pkgStep{Ancestor: id, Reading: reading(id), Siblings: ordered, PathIndex: idx}
			pkg := verifyPkg{Steps: append(append([]pkgStep{}, pkgs[id].Steps...), step)}
			ctx.Send(c, pkg)
		}
	})

	// Phase 4: verification + XOR-aggregated acks (height+1 slots).
	expected := crypto.MAC{}
	okCode := func(id topology.NodeID) crypto.MAC {
		return crypto.ComputeMAC(s.Deployment.SensorKey(id), []byte("shia-ok"), nonce)
	}
	for id := 1; id < n; id++ {
		if depths[id] > 0 {
			expected = xorMAC(expected, okCode(topology.NodeID(id)))
		}
	}
	acks := make([]crypto.MAC, n)
	got := crypto.MAC{}
	base = net.Slot()
	net.RunSlots(height+1, func(ctx *simnet.Context) {
		id := ctx.Node()
		local := ctx.Slot() - base
		for _, m := range ctx.Inbox {
			if a, ok := m.Payload.(ackMsg); ok {
				if id == topology.BaseStation {
					got = xorMAC(got, a.XOR)
				} else {
					acks[id] = xorMAC(acks[id], a.XOR)
				}
			}
		}
		if depths[id] <= 0 || local != height-depths[id] {
			return
		}
		own := crypto.MAC{}
		if s.verifies(topology.NodeID(id), labels[id], pkgs[id], root) {
			own = okCode(topology.NodeID(id))
		}
		ctx.Send(parent[id], ackMsg{XOR: xorMAC(acks[id], own)})
	})

	res.Alarm = got != expected
	res.Stats = net.Stats()
	res.Slots = res.Stats.Slots
	return res
}

// orderedChildLabels returns the received child labels in deterministic
// child order, skipping children that never reported.
func (s *SHIA) orderedChildLabels(kids []topology.NodeID, got map[topology.NodeID]label) []label {
	out := make([]label, 0, len(kids))
	for _, c := range kids {
		if l, ok := got[c]; ok {
			out = append(out, l)
		}
	}
	return out
}

// tamper applies the configured malicious behavior when combining.
func (s *SHIA) tamper(id topology.NodeID, reading int64, ordered []label) label {
	switch s.Tamper {
	case SHIADropSubtree:
		return combine(id, reading, nil) // children vanish
	case SHIAInflate:
		if len(ordered) > 0 {
			mod := append([]label(nil), ordered...)
			mod[0].Sum += 1 << 20
			return combine(id, reading, mod)
		}
		return combine(id, reading, ordered)
	default:
		return combine(id, reading, ordered)
	}
}

// verifies recomputes the root from the sensor's own label and its
// verification package and compares with the broadcast root. An honest
// sensor whose contribution was dropped or altered anywhere on its path
// fails this check and withholds its authentication code.
func (s *SHIA) verifies(id topology.NodeID, own label, pkg verifyPkg, root label) bool {
	if len(pkg.Steps) == 0 {
		return false
	}
	cur := own
	// Walk ancestors bottom-up (package steps are recorded top-down).
	for i := len(pkg.Steps) - 1; i >= 0; i-- {
		step := pkg.Steps[i]
		if step.PathIndex < 0 || step.PathIndex >= len(step.Siblings) {
			return false
		}
		kids := append([]label(nil), step.Siblings...)
		kids[step.PathIndex] = cur
		cur = combine(step.Ancestor, step.Reading, kids)
	}
	return cur == root
}
