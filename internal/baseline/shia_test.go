package baseline

import (
	"testing"

	"repro/internal/crypto"
	"repro/internal/keydist"
	"repro/internal/topology"
)

func shiaFixture(t *testing.T, g *topology.Graph, seed uint64) *SHIA {
	t.Helper()
	dep, err := keydist.NewDeployment(g.NumNodes(), keydist.Params{PoolSize: 500, RingSize: 60},
		crypto.KeyFromUint64(seed), crypto.NewStreamFromSeed(seed))
	if err != nil {
		t.Fatal(err)
	}
	return &SHIA{
		Graph:      g,
		Deployment: dep,
		Readings: func(id topology.NodeID) int64 {
			return int64(id)
		},
		Seed: seed,
	}
}

func trueSum(g *topology.Graph) int64 {
	var sum int64
	depths := g.Depths(topology.BaseStation)
	for id := 1; id < g.NumNodes(); id++ {
		if depths[id] > 0 {
			sum += int64(id)
		}
	}
	return sum
}

func TestSHIAHonestSumNoAlarm(t *testing.T) {
	for _, g := range []*topology.Graph{
		topology.Line(8),
		topology.Grid(4, 5),
		topology.Star(10),
	} {
		s := shiaFixture(t, g, 1)
		res := s.Run()
		if res.Alarm {
			t.Fatalf("honest run raised an alarm (n=%d)", g.NumNodes())
		}
		if res.Sum != trueSum(g) {
			t.Fatalf("sum = %d, want %d (n=%d)", res.Sum, trueSum(g), g.NumNodes())
		}
	}
}

func TestSHIAHonestRandomGeometric(t *testing.T) {
	g, _ := topology.RandomGeometric(80, 0.22, crypto.NewStreamFromSeed(3))
	s := shiaFixture(t, g, 3)
	res := s.Run()
	if res.Alarm || res.Sum != trueSum(g) {
		t.Fatalf("alarm=%v sum=%d want %d", res.Alarm, res.Sum, trueSum(g))
	}
}

func TestSHIADropSubtreeDetected(t *testing.T) {
	// Node 2 on the line drops its whole subtree: the sum shrinks and
	// the victims' verification fails, so the XOR ack mismatches.
	g := topology.Line(8)
	s := shiaFixture(t, g, 4)
	s.Malicious = map[topology.NodeID]bool{2: true}
	s.Tamper = SHIADropSubtree
	res := s.Run()
	if !res.Alarm {
		t.Fatal("dropped subtree not detected")
	}
	if res.Sum >= trueSum(g) {
		t.Fatalf("sum %d not reduced by the drop (true %d)", res.Sum, trueSum(g))
	}
}

func TestSHIAInflateDetected(t *testing.T) {
	g := topology.Grid(4, 5)
	s := shiaFixture(t, g, 5)
	s.Malicious = map[topology.NodeID]bool{6: true}
	s.Tamper = SHIAInflate
	res := s.Run()
	if !res.Alarm {
		t.Fatal("inflated subtree sum not detected")
	}
}

func TestSHIAMaliciousBehavingHonestlyNoAlarm(t *testing.T) {
	g := topology.Grid(3, 4)
	s := shiaFixture(t, g, 6)
	s.Malicious = map[topology.NodeID]bool{5: true}
	s.Tamper = SHIAHonest
	res := s.Run()
	if res.Alarm {
		t.Fatal("honest-behaving malicious node raised an alarm")
	}
	if res.Sum != trueSum(g) {
		t.Fatalf("sum = %d, want %d", res.Sum, trueSum(g))
	}
}

func TestSHIAAlarmPersistsForever(t *testing.T) {
	// The paper's motivating observation: SHIA-style protocols alarm on
	// every corrupted execution and never identify the attacker, so a
	// persistent adversary denies service indefinitely.
	g := topology.Grid(4, 5)
	for exec := 0; exec < 5; exec++ {
		s := shiaFixture(t, g, uint64(10+exec))
		s.Malicious = map[topology.NodeID]bool{6: true}
		s.Tamper = SHIADropSubtree
		res := s.Run()
		if !res.Alarm {
			t.Fatalf("execution %d not alarmed", exec)
		}
	}
}

func TestSHIADisseminationCostGrowsWithDegreeAndDepth(t *testing.T) {
	// SHIA's verification packages carry sibling labels for every
	// ancestor: per-sensor bytes grow with topology size, unlike VMAT's
	// constant-size aggregates.
	small := shiaFixture(t, topology.Grid(3, 3), 7).Run()
	big := shiaFixture(t, topology.Grid(6, 6), 7).Run()
	if big.Stats.MaxNodeBytes() <= small.Stats.MaxNodeBytes() {
		t.Fatalf("dissemination cost did not grow: %d -> %d",
			small.Stats.MaxNodeBytes(), big.Stats.MaxNodeBytes())
	}
}

func TestSHIAVerifierSubstitutesOwnLabel(t *testing.T) {
	// Unit check of the inclusion proof: a verifier accepts the real
	// package and rejects one whose path label was altered upstream.
	own := leafLabel(3, 3)
	sib := leafLabel(4, 4)
	parentKids := []label{own, sib}
	root := combine(1, 1, []label{combine(2, 2, parentKids)})

	pkg := verifyPkg{Steps: []pkgStep{
		{Ancestor: 1, Reading: 1, Siblings: []label{combine(2, 2, parentKids)}, PathIndex: 0},
		{Ancestor: 2, Reading: 2, Siblings: parentKids, PathIndex: 0},
	}}
	s := &SHIA{}
	if !s.verifies(3, own, pkg, root) {
		t.Fatal("valid inclusion proof rejected")
	}
	// An adversary that replaced node 3's label upstream cannot produce a
	// package that verifies against the (now different) root.
	forgedKids := []label{leafLabel(3, 999), sib}
	forgedRoot := combine(1, 1, []label{combine(2, 2, forgedKids)})
	if s.verifies(3, own, pkg, forgedRoot) {
		t.Fatal("verification passed against a root excluding the true label")
	}
	if s.verifies(3, own, verifyPkg{}, root) {
		t.Fatal("empty package verified")
	}
}
