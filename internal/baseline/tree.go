package baseline

import (
	"sort"

	"repro/internal/topology"
)

// BFSTree computes the deterministic aggregation tree the baselines use:
// each node's parent is its lowest-ID neighbor one BFS level closer to
// the base station. It returns the parent array (-1 for the base station
// and unreachable nodes) and the sorted children lists.
func BFSTree(g *topology.Graph) (parent []topology.NodeID, children [][]topology.NodeID) {
	n := g.NumNodes()
	depths := g.Depths(topology.BaseStation)
	parent = make([]topology.NodeID, n)
	children = make([][]topology.NodeID, n)
	for id := 0; id < n; id++ {
		parent[id] = -1
		if depths[id] <= 0 {
			continue
		}
		for _, nb := range g.Neighbors(topology.NodeID(id)) {
			if depths[nb] == depths[id]-1 {
				parent[id] = nb
				break
			}
		}
		if parent[id] >= 0 {
			children[parent[id]] = append(children[parent[id]], topology.NodeID(id))
		}
	}
	for id := range children {
		sort.Slice(children[id], func(a, b int) bool { return children[id][a] < children[id][b] })
	}
	return parent, children
}
