package chaos

import (
	"bufio"
	"net"
	"os"
	"os/exec"
	"path/filepath"
	"reflect"
	"sync"
	"testing"
	"time"
)

func TestScheduleReproducible(t *testing.T) {
	counts := map[Kind]int{KillServer: 2, SeverConns: 1, StopWorker: 1, KillWorker: 1}
	a := Generate(42, 4, 12, counts)
	b := Generate(42, 4, 12, counts)
	if !reflect.DeepEqual(a, b) {
		t.Fatalf("same seed, different schedules:\n%s\n%s", a, b)
	}
	if len(a.Events) != 5 {
		t.Fatalf("got %d events, want 5: %s", len(a.Events), a)
	}
	for i := 1; i < len(a.Events); i++ {
		if a.Events[i-1].After > a.Events[i].After {
			t.Fatalf("events out of trigger order: %s", a)
		}
	}
	for _, ev := range a.Events {
		if ev.After < 1 || ev.After > 11 {
			t.Fatalf("trigger %d outside [1, cells-1]: %s", ev.After, a)
		}
		if (ev.Kind == StopWorker || ev.Kind == KillWorker) && (ev.Worker < 0 || ev.Worker >= 4) {
			t.Fatalf("worker target %d outside fleet: %s", ev.Worker, a)
		}
	}
	if got := a.Counts(); !reflect.DeepEqual(got, counts) {
		t.Fatalf("Counts() = %v, want %v", got, counts)
	}
	if a.String() == "" || Generate(7, 1, 1, nil).String() == "" {
		t.Fatal("String() empty")
	}
	if c := Generate(42, 4, 12, counts); !reflect.DeepEqual(a, c) {
		t.Fatal("third generation diverged")
	}
	if d := Generate(43, 4, 12, counts); reflect.DeepEqual(a, d) {
		t.Fatal("different seeds produced identical schedules")
	}
}

// TestProxySever runs an echo server behind the proxy: a severed conn
// dies, a fresh dial through the same proxy works.
func TestProxySever(t *testing.T) {
	echo, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer echo.Close()
	go func() {
		for {
			c, err := echo.Accept()
			if err != nil {
				return
			}
			go func() {
				sc := bufio.NewScanner(c)
				for sc.Scan() {
					c.Write(append(sc.Bytes(), '\n'))
				}
				c.Close()
			}()
		}
	}()

	p, err := NewProxy("127.0.0.1:0", echo.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer p.Close()

	roundTrip := func(c net.Conn) error {
		if _, err := c.Write([]byte("ping\n")); err != nil {
			return err
		}
		c.SetReadDeadline(time.Now().Add(2 * time.Second))
		_, err := bufio.NewReader(c).ReadString('\n')
		return err
	}

	c1, err := net.Dial("tcp", p.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer c1.Close()
	if err := roundTrip(c1); err != nil {
		t.Fatalf("relay through proxy: %v", err)
	}

	if n := p.Sever(); n != 1 {
		t.Fatalf("Sever() dropped %d pairs, want 1", n)
	}
	c1.SetReadDeadline(time.Now().Add(2 * time.Second))
	if _, err := bufio.NewReader(c1).ReadString('\n'); err == nil {
		t.Fatal("severed conn still delivers data")
	}

	c2, err := net.Dial("tcp", p.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer c2.Close()
	if err := roundTrip(c2); err != nil {
		t.Fatalf("reconnect after sever: %v", err)
	}
}

var (
	buildOnce sync.Once
	buildDir  string
	buildErr  error
)

// buildBinaries compiles vmat-server and vmat-worker once per test
// binary, into a shared temp dir.
func buildBinaries(t *testing.T) (server, worker string) {
	t.Helper()
	buildOnce.Do(func() {
		buildDir, buildErr = os.MkdirTemp("", "chaos-bin-")
		if buildErr != nil {
			return
		}
		for _, pkg := range []string{"vmat-server", "vmat-worker"} {
			cmd := exec.Command("go", "build", "-o", filepath.Join(buildDir, pkg), "./cmd/"+pkg)
			cmd.Dir = "../.."
			if out, err := cmd.CombinedOutput(); err != nil {
				buildErr = err
				t.Logf("build %s: %s", pkg, out)
				return
			}
		}
	})
	if buildErr != nil {
		t.Fatalf("build binaries: %v", buildErr)
	}
	return filepath.Join(buildDir, "vmat-server"), filepath.Join(buildDir, "vmat-worker")
}

// TestServerKillMidSweepRecovers is the tentpole end to end with real
// processes: a 4-worker fleet runs a sweep, the server is SIGKILLed
// after the first cells complete, restarts on the same data dir,
// resumes the sweep unprompted under the SAME ID, and the final CSV is
// bit-identical to an undisturbed zero-fleet baseline with total engine
// executions bounded — completed cells came back from the store.
func TestServerKillMidSweepRecovers(t *testing.T) {
	if testing.Short() {
		t.Skip("e2e chaos run: real processes, SIGKILL, restart")
	}
	serverBin, workerBin := buildBinaries(t)
	work := t.TempDir()
	const trials = 3
	cfg := Config{
		ServerBin: serverBin,
		WorkerBin: workerBin,
		Workers:   4,
		// 12 cells x 3 trials: enough runway that the kill (armed at the
		// first completed cell) always lands with work outstanding.
		Grid:     `{"n":[30,35,40,45,50,55],"attack":["none","drop"],"trials":3,"seed":11,"workers":1}`,
		Trials:   trials,
		DataDir:  filepath.Join(work, "data"),
		WorkDir:  filepath.Join(work, "run"),
		Schedule: Schedule{Seed: 11, Events: []Event{{Kind: KillServer, After: 1}}},
		LeaseTTL: 2 * time.Second,
		Log:      t.Logf,
	}

	baseline, err := Baseline(cfg)
	if err != nil {
		t.Fatalf("baseline run: %v", err)
	}
	if baseline.View.Cells != 12 {
		t.Fatalf("baseline expanded to %d cells, want 12", baseline.View.Cells)
	}

	rep, err := Run(cfg)
	if err != nil {
		t.Fatalf("chaos run: %v", err)
	}
	if rep.ServerKills != 1 {
		t.Fatalf("server killed %d times, want 1 (sweep finished before the trigger armed?)", rep.ServerKills)
	}
	if rep.SweepID != baseline.SweepID {
		// Both runs start from empty state, so the first sweep ID must
		// match — and the chaos run must keep it across the restart.
		t.Fatalf("sweep ID %q diverged from baseline %q", rep.SweepID, baseline.SweepID)
	}
	if err := Verify(rep, baseline, trials); err != nil {
		t.Fatal(err)
	}
	t.Logf("verified: %d cells, %d cached after restart (%d done before kill), executions server=%d fleet=%d",
		rep.View.Cells, rep.View.Cached, rep.DoneBeforeLastKill, rep.ServerExecutions, rep.WorkerExecutions)
}
