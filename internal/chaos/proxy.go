package chaos

import (
	"io"
	"net"
	"sync"
)

// Proxy is a severable TCP relay the harness parks in front of the
// server's streaming transport (the server advertises the proxy via
// -wire-advertise, so workers dial through it). Sever drops every live
// relayed conn at once — the network-partition fault — while the
// listener keeps accepting, so reconnecting workers get through. The
// proxy itself is harness infrastructure and outlives server restarts:
// its target is the server's fixed wire port, whichever incarnation
// holds it.
type Proxy struct {
	ln     net.Listener
	target string

	mu      sync.Mutex
	conns   map[net.Conn]bool
	severed int
	closed  bool
}

// NewProxy listens on listen (e.g. "127.0.0.1:0") and relays every
// accepted conn to target.
func NewProxy(listen, target string) (*Proxy, error) {
	ln, err := net.Listen("tcp", listen)
	if err != nil {
		return nil, err
	}
	p := &Proxy{ln: ln, target: target, conns: map[net.Conn]bool{}}
	go p.acceptLoop()
	return p, nil
}

// Addr is the address workers should dial.
func (p *Proxy) Addr() string { return p.ln.Addr().String() }

func (p *Proxy) acceptLoop() {
	for {
		c, err := p.ln.Accept()
		if err != nil {
			return // listener closed
		}
		go p.relay(c)
	}
}

// relay pipes one accepted conn to a fresh conn to the target, both
// directions, until either side (or Sever) closes.
func (p *Proxy) relay(in net.Conn) {
	out, err := net.Dial("tcp", p.target)
	if err != nil {
		in.Close()
		return
	}
	p.mu.Lock()
	if p.closed {
		p.mu.Unlock()
		in.Close()
		out.Close()
		return
	}
	p.conns[in] = true
	p.conns[out] = true
	p.mu.Unlock()

	done := make(chan struct{}, 2)
	pipe := func(dst, src net.Conn) {
		io.Copy(dst, src)
		dst.Close()
		src.Close()
		done <- struct{}{}
	}
	go pipe(out, in)
	go pipe(in, out)
	<-done
	<-done
	p.mu.Lock()
	delete(p.conns, in)
	delete(p.conns, out)
	p.mu.Unlock()
}

// Sever closes every live relayed conn and returns how many pairs it
// dropped. New conns are still accepted — workers reconnect through.
func (p *Proxy) Sever() int {
	p.mu.Lock()
	defer p.mu.Unlock()
	n := 0
	for c := range p.conns {
		c.Close()
		n++
	}
	p.severed += n
	return n / 2
}

// Close stops the listener and drops everything live.
func (p *Proxy) Close() {
	p.mu.Lock()
	p.closed = true
	for c := range p.conns {
		c.Close()
	}
	p.mu.Unlock()
	p.ln.Close()
}
