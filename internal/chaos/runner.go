package chaos

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net"
	"net/http"
	"os"
	"os/exec"
	"path/filepath"
	"regexp"
	"strconv"
	"strings"
	"syscall"
	"time"
)

// Config configures one chaos run over real processes.
type Config struct {
	// ServerBin and WorkerBin are built vmat-server / vmat-worker
	// binaries. Required.
	ServerBin string
	WorkerBin string
	// Workers is the fleet size. Zero runs everything on the server's
	// local pool (the baseline shape).
	Workers int
	// Grid is the sweep spec JSON posted to /v1/sweeps. Required.
	Grid string
	// Trials must match the grid's trials value; the execution bound is
	// denominated in engine executions, which count per trial.
	Trials int
	// DataDir is the server's -data-dir; it persists across the kills
	// and restarts — that persistence IS the system under test.
	DataDir string
	// WorkDir receives process logs. Required.
	WorkDir string
	// Schedule is the fault plan. An empty schedule is an undisturbed
	// run (the baseline).
	Schedule Schedule
	// LeaseTTL is the server's -lease-ttl. Default 2s — short, so a
	// killed worker's lease turns around within the test budget.
	LeaseTTL time.Duration
	// ServerWorkers is the server's local pool size (-workers). Default
	// 1: a deliberately weak local pool, so fleet work stays on the
	// fleet and a post-restart race into local fallback stays cheap.
	ServerWorkers int
	// ShardTrials is the server's -shard-trials. Zero = whole scenarios.
	ShardTrials int
	// Timeout bounds the sweep's wall time. Default 5m.
	Timeout time.Duration
	// Log receives narrative lines. Nil discards them.
	Log func(format string, args ...any)
}

// Report is what one chaos run observed.
type Report struct {
	SweepID string
	// CSV is the final results export — the bytes compared against the
	// undisturbed baseline.
	CSV  []byte
	View SweepView // final sweep state

	ServerKills int
	ConnSevers  int
	WorkerStops int
	WorkerKills int
	// DoneBeforeLastKill is the done-cell count observed at the last
	// server kill; every one of those cells must come back from the
	// store, not the engine.
	DoneBeforeLastKill int
	// ResumedSweeps accumulates the restarted incarnations' /healthz
	// recovery.resumed_sweeps.
	ResumedSweeps int64
	// ServerExecutions sums core_executions_total across server
	// incarnations (scraped just before each kill and at the end).
	// WorkerExecutions sums the drain-time "engine executions" report of
	// every worker that exited gracefully; SIGKILLed workers take their
	// in-process count with them, so the total slightly undercounts when
	// the schedule kills workers.
	ServerExecutions int64
	WorkerExecutions int64
}

// SweepView is the subset of the sweep status JSON the harness reads.
type SweepView struct {
	ID       string `json:"id"`
	Status   string `json:"status"`
	Cells    int    `json:"cells"`
	Executed int    `json:"executed"`
	Cached   int    `json:"cached"`
	Failed   int    `json:"failed"`
	Pending  int    `json:"pending"`
}

type healthzView struct {
	Status   string `json:"status"`
	Recovery *struct {
		Active        bool  `json:"active"`
		ResumedSweeps int64 `json:"resumed_sweeps"`
	} `json:"recovery"`
}

type workerProc struct {
	idx     int
	cmd     *exec.Cmd
	logPath string
	exited  chan struct{}
	alive   bool
}

type runner struct {
	cfg      Config
	log      func(format string, args ...any)
	client   *http.Client
	base     string // server HTTP base URL
	httpAddr string
	wireAddr string
	proxy    *Proxy

	server       *exec.Cmd
	serverExited chan struct{}
	incarnation  int

	workers []*workerProc
	rep     Report
}

// Run executes one chaos run end to end: start the server (and fleet),
// submit the sweep, fire the schedule as progress triggers arm, wait
// for the sweep to finish, export the CSV, and drain everything.
func Run(cfg Config) (Report, error) {
	if cfg.LeaseTTL <= 0 {
		cfg.LeaseTTL = 2 * time.Second
	}
	if cfg.ServerWorkers <= 0 {
		cfg.ServerWorkers = 1
	}
	if cfg.Timeout <= 0 {
		cfg.Timeout = 5 * time.Minute
	}
	if cfg.Log == nil {
		cfg.Log = func(string, ...any) {}
	}
	r := &runner{cfg: cfg, log: cfg.Log, client: &http.Client{Timeout: 5 * time.Second}}
	defer r.cleanup()
	if err := r.setup(); err != nil {
		return r.rep, err
	}
	if err := r.drive(); err != nil {
		return r.rep, err
	}
	if err := r.drain(); err != nil {
		return r.rep, err
	}
	return r.rep, nil
}

// reservePort grabs a free loopback port and releases it for the
// process about to bind it. The tiny race window is acceptable for a
// test harness on loopback.
func reservePort() (string, error) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return "", err
	}
	addr := ln.Addr().String()
	ln.Close()
	return addr, nil
}

func (r *runner) setup() error {
	for _, dir := range []string{r.cfg.WorkDir, r.cfg.DataDir} {
		if err := os.MkdirAll(dir, 0o755); err != nil {
			return err
		}
	}
	var err error
	if r.httpAddr, err = reservePort(); err != nil {
		return err
	}
	if r.wireAddr, err = reservePort(); err != nil {
		return err
	}
	r.base = "http://" + r.httpAddr
	// The proxy outlives server restarts; workers always dial through
	// it, whichever server incarnation owns the wire port behind it.
	if r.proxy, err = NewProxy("127.0.0.1:0", r.wireAddr); err != nil {
		return err
	}
	if err := r.startServer(); err != nil {
		return err
	}
	if err := r.awaitServer(15*time.Second, false); err != nil {
		return err
	}
	for i := 0; i < r.cfg.Workers; i++ {
		w, err := r.startWorker(i)
		if err != nil {
			return err
		}
		r.workers = append(r.workers, w)
	}
	return nil
}

func (r *runner) startServer() error {
	r.incarnation++
	logPath := filepath.Join(r.cfg.WorkDir, fmt.Sprintf("server-%d.log", r.incarnation))
	logFile, err := os.Create(logPath)
	if err != nil {
		return err
	}
	// A killed incarnation's listener may linger briefly; retry the
	// start until the new process holds the ports.
	deadline := time.Now().Add(10 * time.Second)
	for {
		cmd := exec.Command(r.cfg.ServerBin,
			"-addr", r.httpAddr,
			"-cluster",
			"-wire-addr", r.wireAddr,
			"-wire-advertise", r.proxy.Addr(),
			"-data-dir", r.cfg.DataDir,
			"-workers", strconv.Itoa(r.cfg.ServerWorkers),
			"-lease-ttl", r.cfg.LeaseTTL.String(),
			"-shard-trials", strconv.Itoa(r.cfg.ShardTrials),
		)
		cmd.Stdout = logFile
		cmd.Stderr = logFile
		if err := cmd.Start(); err != nil {
			logFile.Close()
			return err
		}
		exited := make(chan struct{})
		go func() { cmd.Wait(); close(exited) }()
		// Give it a moment: an early exit means the bind raced the dying
		// incarnation — try again.
		select {
		case <-exited:
			if time.Now().After(deadline) {
				return fmt.Errorf("chaos: server incarnation %d would not start (see %s)", r.incarnation, logPath)
			}
			time.Sleep(100 * time.Millisecond)
			continue
		case <-time.After(200 * time.Millisecond):
		}
		r.server = cmd
		r.serverExited = exited
		r.log("server incarnation %d up as pid %d", r.incarnation, cmd.Process.Pid)
		return nil
	}
}

func (r *runner) startWorker(idx int) (*workerProc, error) {
	logPath := filepath.Join(r.cfg.WorkDir, fmt.Sprintf("worker-%d.log", idx+1))
	logFile, err := os.Create(logPath)
	if err != nil {
		return nil, err
	}
	cmd := exec.Command(r.cfg.WorkerBin,
		"-server", r.base,
		"-name", fmt.Sprintf("chaos-%d", idx+1),
	)
	cmd.Stdout = logFile
	cmd.Stderr = logFile
	if err := cmd.Start(); err != nil {
		logFile.Close()
		return nil, err
	}
	w := &workerProc{idx: idx, cmd: cmd, logPath: logPath, exited: make(chan struct{}), alive: true}
	go func() { cmd.Wait(); close(w.exited) }()
	return w, nil
}

// awaitServer polls /healthz until the server answers — and, when
// waitRecovery is set, until startup recovery has finished rebuilding
// state — accumulating the incarnation's resumed-sweep count.
func (r *runner) awaitServer(timeout time.Duration, waitRecovery bool) error {
	deadline := time.Now().Add(timeout)
	for {
		var hv healthzView
		err := r.getJSON("/healthz", &hv)
		if err == nil && (!waitRecovery || hv.Recovery == nil || !hv.Recovery.Active) {
			if waitRecovery && hv.Recovery != nil {
				r.rep.ResumedSweeps += hv.Recovery.ResumedSweeps
			}
			return nil
		}
		if time.Now().After(deadline) {
			return fmt.Errorf("chaos: server never became healthy (last err %v)", err)
		}
		time.Sleep(100 * time.Millisecond)
	}
}

func (r *runner) getJSON(path string, out any) error {
	resp, err := r.client.Get(r.base + path)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode/100 != 2 {
		body, _ := io.ReadAll(io.LimitReader(resp.Body, 256))
		return fmt.Errorf("GET %s: %d: %s", path, resp.StatusCode, bytes.TrimSpace(body))
	}
	if out == nil {
		return nil
	}
	return json.NewDecoder(resp.Body).Decode(out)
}

// drive submits the sweep and runs the poll/fire loop until the sweep
// is terminal.
func (r *runner) drive() error {
	var sub struct {
		ID string `json:"id"`
	}
	resp, err := r.client.Post(r.base+"/v1/sweeps", "application/json", strings.NewReader(r.cfg.Grid))
	if err != nil {
		return fmt.Errorf("chaos: submit sweep: %w", err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode/100 != 2 {
		return fmt.Errorf("chaos: submit sweep: %d: %s", resp.StatusCode, bytes.TrimSpace(body))
	}
	if err := json.Unmarshal(body, &sub); err != nil || sub.ID == "" {
		return fmt.Errorf("chaos: sweep submission returned no id: %s", body)
	}
	r.rep.SweepID = sub.ID
	r.log("sweep %s submitted (%s)", sub.ID, r.cfg.Schedule)

	events := append([]Event(nil), r.cfg.Schedule.Events...)
	deadline := time.Now().Add(r.cfg.Timeout)
	lastOK := time.Now()
	for {
		var view SweepView
		if err := r.getJSON("/v1/sweeps/"+sub.ID, &view); err != nil {
			// Transient unreachability (our own restarts ride through
			// here) is tolerated up to a grace window. Note the poll uses
			// the SAME sweep ID across incarnations: recovery keeping IDs
			// stable is part of the contract.
			if time.Since(lastOK) > 20*time.Second {
				return fmt.Errorf("chaos: sweep %s unreachable for 20s: %w", sub.ID, err)
			}
			time.Sleep(100 * time.Millisecond)
			continue
		}
		lastOK = time.Now()
		done := view.Executed + view.Cached + view.Failed
		// Events fire only against a running sweep: a fault injected
		// after the sweep closed would test nothing (and a server kill
		// would restart into a server with no sweep to resume).
		for view.Status == "running" && len(events) > 0 && done >= events[0].After {
			ev := events[0]
			events = events[1:]
			if ev.Delay > 0 {
				time.Sleep(ev.Delay)
			}
			if err := r.fire(ev, done); err != nil {
				return err
			}
		}
		if view.Status != "running" {
			r.rep.View = view
			break
		}
		if time.Now().After(deadline) {
			return fmt.Errorf("chaos: sweep %s did not finish in %s: %+v", sub.ID, r.cfg.Timeout, view)
		}
		time.Sleep(50 * time.Millisecond)
	}
	if len(events) > 0 {
		r.log("%d scheduled event(s) never armed (sweep finished first)", len(events))
	}

	resp, err = r.client.Get(r.base + "/v1/sweeps/" + sub.ID + "/results?format=csv")
	if err != nil {
		return fmt.Errorf("chaos: fetch CSV: %w", err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return fmt.Errorf("chaos: fetch CSV: %d", resp.StatusCode)
	}
	if r.rep.CSV, err = io.ReadAll(resp.Body); err != nil {
		return err
	}
	return nil
}

func (r *runner) fire(ev Event, done int) error {
	switch ev.Kind {
	case KillServer:
		r.rep.DoneBeforeLastKill = done
		r.scrapeServerExecutions()
		r.log("KILL server incarnation %d at %d done cells", r.incarnation, done)
		r.server.Process.Kill() // SIGKILL: no drain, no flush, no goodbye
		<-r.serverExited
		if err := r.startServer(); err != nil {
			return err
		}
		if err := r.awaitServer(30*time.Second, true); err != nil {
			return err
		}
		r.rep.ServerKills++
	case SeverConns:
		n := r.proxy.Sever()
		r.log("SEVER %d wire conn(s) at %d done cells", n, done)
		r.rep.ConnSevers++
	case StopWorker:
		if w := r.pickWorker(ev.Worker); w != nil {
			r.log("STOP worker %d at %d done cells", w.idx+1, done)
			w.cmd.Process.Signal(syscall.SIGTERM)
			<-w.exited
			w.alive = false
			r.rep.WorkerExecutions += workerExecutions(w.logPath)
		}
		r.rep.WorkerStops++
	case KillWorker:
		if w := r.pickWorker(ev.Worker); w != nil {
			r.log("KILL worker %d at %d done cells", w.idx+1, done)
			w.cmd.Process.Kill()
			<-w.exited
			w.alive = false // its execution count dies with it
		}
		r.rep.WorkerKills++
	default:
		return fmt.Errorf("chaos: unknown event kind %q", ev.Kind)
	}
	return nil
}

// pickWorker returns the target worker if alive, else the next alive
// one (a schedule can name a worker an earlier event already removed).
func (r *runner) pickWorker(idx int) *workerProc {
	for off := 0; off < len(r.workers); off++ {
		w := r.workers[(idx+off)%len(r.workers)]
		if w.alive {
			return w
		}
	}
	return nil
}

// scrapeServerExecutions adds the live incarnation's engine-execution
// count to the running total. Called just before each kill and at the
// final drain; executions landing inside the scrape-to-kill window are
// lost with the process, so the server total can undercount by a hair.
func (r *runner) scrapeServerExecutions() {
	resp, err := r.client.Get(r.base + "/metrics")
	if err != nil {
		return
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		return
	}
	r.rep.ServerExecutions += scrapeCounter(string(body), "core_executions_total")
}

// scrapeCounter finds an unlabeled counter in a text exposition.
func scrapeCounter(text, name string) int64 {
	for _, line := range strings.Split(text, "\n") {
		rest, ok := strings.CutPrefix(line, name+" ")
		if !ok {
			continue
		}
		v, err := strconv.ParseInt(strings.TrimSpace(rest), 10, 64)
		if err == nil {
			return v
		}
	}
	return 0
}

var workerExecRe = regexp.MustCompile(`engine executions: (\d+)`)

// workerExecutions parses a drained worker's log for its execution
// report.
func workerExecutions(logPath string) int64 {
	b, err := os.ReadFile(logPath)
	if err != nil {
		return 0
	}
	m := workerExecRe.FindSubmatch(b)
	if m == nil {
		return 0
	}
	v, _ := strconv.ParseInt(string(m[1]), 10, 64)
	return v
}

// drain gracefully stops the fleet and the server, collecting the
// final execution counts.
func (r *runner) drain() error {
	r.scrapeServerExecutions()
	for _, w := range r.workers {
		if !w.alive {
			continue
		}
		w.cmd.Process.Signal(syscall.SIGTERM)
		select {
		case <-w.exited:
		case <-time.After(30 * time.Second):
			return fmt.Errorf("chaos: worker %d would not drain", w.idx+1)
		}
		w.alive = false
		r.rep.WorkerExecutions += workerExecutions(w.logPath)
	}
	r.server.Process.Signal(syscall.SIGTERM)
	select {
	case <-r.serverExited:
	case <-time.After(60 * time.Second):
		return fmt.Errorf("chaos: server would not drain")
	}
	r.server = nil
	r.log("run complete: %d cells (%d executed, %d cached), executions server=%d fleet=%d, resumed=%d",
		r.rep.View.Cells, r.rep.View.Executed, r.rep.View.Cached,
		r.rep.ServerExecutions, r.rep.WorkerExecutions, r.rep.ResumedSweeps)
	return nil
}

// cleanup SIGKILLs anything still running (error paths) and closes the
// proxy.
func (r *runner) cleanup() {
	for _, w := range r.workers {
		if w.alive {
			w.cmd.Process.Kill()
			<-w.exited
			w.alive = false
		}
	}
	if r.server != nil {
		r.server.Process.Kill()
		<-r.serverExited
		r.server = nil
	}
	if r.proxy != nil {
		r.proxy.Close()
	}
}
