// Package chaos is the deterministic crash harness for the control
// plane: it drives REAL vmat-server and vmat-worker processes through a
// seeded schedule of kills, restarts, and connection severs while a
// sweep runs, then verifies the recovery contract — the final sweep CSV
// is bit-identical to an undisturbed run, completed work was never
// re-executed (the engine-execution total stays under a bound derived
// from the schedule), and the server resumed every open sweep with zero
// operator action. The schedule is a pure function of its seed, so a
// failing run is reproducible by number.
package chaos

import (
	"fmt"
	"math/rand"
	"sort"
	"strings"
	"time"
)

// Kind is one fault type the harness can inject.
type Kind string

const (
	// KillServer SIGKILLs vmat-server mid-sweep and restarts it on the
	// same address and data dir. The tentpole fault: recovery must
	// resume the sweep unprompted and lose no completed cell.
	KillServer Kind = "kill-server"
	// SeverConns drops every live streaming-transport conn at the proxy,
	// as a middlebox reset would. Workers must reconnect and keep going.
	SeverConns Kind = "sever-conns"
	// StopWorker SIGTERMs one worker: the graceful exit — it finishes
	// its unit, reports, deregisters. The fleet shrinks by one.
	StopWorker Kind = "stop-worker"
	// KillWorker SIGKILLs one worker mid-unit: its lease expires and the
	// unit is reassigned.
	KillWorker Kind = "kill-worker"
)

// Event is one scheduled fault. It fires once the observed sweep has
// After cells done (executed + cached + failed), plus Delay — triggers
// are progress-based, not wall-clock, so the same schedule lands at the
// same sweep phase on fast and slow machines alike.
type Event struct {
	Kind  Kind
	After int // done-cell count that arms this event
	// Worker indexes the target worker for StopWorker/KillWorker.
	Worker int
	// Delay is extra wall time after the trigger arms, for staggering
	// events that share a trigger count.
	Delay time.Duration
}

// Schedule is a reproducible fault plan: the seed that generated it and
// the events in firing order.
type Schedule struct {
	Seed   int64
	Events []Event
}

// Generate builds the schedule for a sweep of `cells` cells against
// `workers` workers: counts[kind] events of each kind, with triggers
// drawn uniformly over [1, cells-1] (never before first progress, never
// after the last cell could complete) and worker targets drawn over the
// fleet. The same (seed, workers, cells, counts) always yields the same
// schedule — math/rand with a fixed source, kinds visited in a fixed
// order.
func Generate(seed int64, workers, cells int, counts map[Kind]int) Schedule {
	rng := rand.New(rand.NewSource(seed))
	s := Schedule{Seed: seed}
	span := cells - 1
	if span < 1 {
		span = 1
	}
	for _, k := range []Kind{KillServer, SeverConns, StopWorker, KillWorker} {
		for i := 0; i < counts[k]; i++ {
			ev := Event{Kind: k, After: 1 + rng.Intn(span)}
			if k == StopWorker || k == KillWorker {
				if workers > 0 {
					ev.Worker = rng.Intn(workers)
				}
			}
			s.Events = append(s.Events, ev)
		}
	}
	sort.SliceStable(s.Events, func(i, j int) bool { return s.Events[i].After < s.Events[j].After })
	return s
}

// String renders the schedule for logs: "seed 42: kill-server@2,
// sever-conns@4".
func (s Schedule) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "seed %d:", s.Seed)
	if len(s.Events) == 0 {
		b.WriteString(" (no events)")
		return b.String()
	}
	for i, ev := range s.Events {
		if i > 0 {
			b.WriteString(",")
		}
		fmt.Fprintf(&b, " %s@%d", ev.Kind, ev.After)
		if ev.Kind == StopWorker || ev.Kind == KillWorker {
			fmt.Fprintf(&b, "/w%d", ev.Worker)
		}
	}
	return b.String()
}

// Counts tallies the schedule by kind, for bound computations.
func (s Schedule) Counts() map[Kind]int {
	m := map[Kind]int{}
	for _, ev := range s.Events {
		m[ev.Kind]++
	}
	return m
}
