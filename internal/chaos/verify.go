package chaos

import (
	"bytes"
	"fmt"
	"path/filepath"
)

// sweepMaxInFlight mirrors the sweep manager's default MaxInFlight. A
// SIGKILLed server loses at most that many in-flight cells per open
// sweep — work dispatched but not yet journaled as complete — and the
// restarted incarnation legitimately re-executes them. That is the only
// sanctioned duplicate work per kill; everything journaled must come
// back from the store.
const sweepMaxInFlight = 8

// Baseline runs the same grid undisturbed — zero fleet workers, empty
// schedule, fresh data dir — and returns its report. Its CSV is the
// ground truth a chaos run must reproduce bit for bit.
func Baseline(cfg Config) (Report, error) {
	b := cfg
	b.Workers = 0
	b.Schedule = Schedule{Seed: cfg.Schedule.Seed}
	b.DataDir = filepath.Join(cfg.WorkDir, "baseline-data")
	b.WorkDir = filepath.Join(cfg.WorkDir, "baseline")
	return Run(b)
}

// Verify checks the recovery contract a chaos run must uphold against
// its undisturbed baseline:
//
//   - the sweep finished ("done", nothing failed);
//   - the final CSV is bit-identical to the baseline's — faults may
//     change who computed what and when, never the results;
//   - every server kill was recovered by resuming at least one sweep
//     with zero operator action;
//   - nothing completed before a kill was re-executed: the final cached
//     count covers everything done at kill time, and total engine
//     executions (server incarnations + drained fleet) stay under
//     trials x (cells + kills x maxInFlight + 2 x conn-level faults) —
//     cells each run once, each kill may redo one in-flight window, and
//     each severed/stopped/killed worker may lose at most its prefetch
//     in flight to reassignment.
func Verify(rep, baseline Report, trials int) error {
	if rep.View.Status != "done" {
		return fmt.Errorf("chaos: sweep ended %q, want done: %+v", rep.View.Status, rep.View)
	}
	if rep.View.Failed != 0 {
		return fmt.Errorf("chaos: %d cell(s) failed: %+v", rep.View.Failed, rep.View)
	}
	if len(baseline.CSV) == 0 {
		return fmt.Errorf("chaos: baseline produced an empty CSV")
	}
	if !bytes.Equal(rep.CSV, baseline.CSV) {
		return fmt.Errorf("chaos: CSV diverged from baseline (%d vs %d bytes)", len(rep.CSV), len(baseline.CSV))
	}
	if rep.ServerKills > 0 {
		if rep.ResumedSweeps < 1 {
			return fmt.Errorf("chaos: %d server kill(s) but no sweep resumed by recovery", rep.ServerKills)
		}
		if rep.View.Cached < rep.DoneBeforeLastKill {
			return fmt.Errorf("chaos: only %d cells cached but %d were done before the last kill — completed work was lost",
				rep.View.Cached, rep.DoneBeforeLastKill)
		}
	}
	measured := rep.ServerExecutions + rep.WorkerExecutions
	if measured <= 0 {
		return fmt.Errorf("chaos: no engine executions observed — the harness is not measuring")
	}
	connFaults := rep.ConnSevers + rep.WorkerStops + rep.WorkerKills
	bound := int64(trials) * int64(rep.View.Cells+rep.ServerKills*sweepMaxInFlight+2*connFaults)
	if measured > bound {
		return fmt.Errorf("chaos: %d engine executions exceed the duplicate-work bound %d (trials %d, cells %d, kills %d, conn faults %d)",
			measured, bound, trials, rep.View.Cells, rep.ServerKills, connFaults)
	}
	return nil
}
