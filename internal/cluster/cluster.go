// Package cluster is the distributed execution plane: a coordinator
// that lives inside vmat-server and a worker client (fronted by
// cmd/vmat-worker) that turns N processes — on one machine or many —
// into one fleet executing scenario work units.
//
// The design transplants the repository's fault-tolerance vocabulary
// (fail-stop crash, bounded retries, graceful degradation) from the
// simulated sensor network up to the serving layer:
//
//   - Workers register over HTTP (the bootstrap/fallback path) and
//     claim content-addressed work units via time-bounded leases —
//     either by polling the HTTP lease endpoint or, when the
//     coordinator hosts the streaming transport (internal/wire), over
//     one persistent conn carrying batched grants, streamed
//     completions, and piggybacked heartbeats.
//   - With sharding on (CoordinatorConfig.ShardTrials > 0), a scenario
//     is split into per-trial-range units (internal/shard); the
//     coordinator merges completed shard rows back in trial order and
//     feeds the store only once the whole scenario is assembled.
//   - A heartbeat extends a worker's leases; a lease that outlives its
//     TTL (worker crash, network partition, missed heartbeats) is
//     reassigned to the queue with a bounded attempt budget.
//   - Completed results echo the unit's content address and a CRC32 of
//     the encoded rows; shard results must additionally carry exactly
//     the trial indices of their range. The coordinator verifies all of
//     it before accepting a result.
//   - Because every unit is a pure function of its spec, and the store
//     is first-write-wins, results are bit-identical no matter how many
//     workers run, crash, or duplicate work — the end-to-end test in
//     this package pins a sweep's CSV export across 0 workers (local
//     fallback), 1 worker, and sharded fleets with one killed mid-sweep.
//
// The coordinator implements service.Executor: the job manager
// dispatches execution through it when cluster mode is on and falls
// back to the local pool whenever the fleet cannot take a unit (no
// workers connected, coordinator draining, retry budget exhausted), so
// enabling the plane can never strand work.
package cluster

import (
	"encoding/json"
	"errors"
	"time"

	"repro/internal/shard"
)

// Metric names the cluster plane reports. Per-worker completions carry
// a worker label (the worker's registered name, stable across
// restarts); result rejections carry a reason label.
const (
	MetricWorkersConnected = "cluster_workers_connected"
	MetricLeasesActive     = "cluster_leases_active"
	MetricLeasesGranted    = "cluster_leases_granted_total"
	MetricLeasesExpired    = "cluster_leases_expired_total"
	MetricLeasesReassigned = "cluster_leases_reassigned_total"
	MetricUnitsCompleted   = "cluster_units_completed_total"
	MetricUnitsAbandoned   = "cluster_units_abandoned_total"
	MetricResultsRejected  = "cluster_results_rejected_total"
	MetricResultsStale     = "cluster_results_stale_total"
	MetricWorkersExpired   = "cluster_workers_expired_total"
	// MetricHeartbeatGap observes the microseconds between consecutive
	// heartbeats from the same worker — the operational signal for
	// late heartbeats before they become expired leases.
	MetricHeartbeatGap = "cluster_heartbeat_gap_us"
	// MetricShardsPlanned counts shard units created by the planner
	// (scenarios leased whole are not counted — watch leases_granted
	// for those).
	MetricShardsPlanned = "cluster_shards_planned_total"
	// MetricShardsMerged counts verified shard results merged into
	// their parent scenario's assembly.
	MetricShardsMerged = "cluster_shards_merged_total"
	// MetricScenariosAssembled counts scenarios whose every shard
	// merged, i.e. completed sharded Execute calls.
	MetricScenariosAssembled = "cluster_scenarios_assembled_total"
)

// ErrUnknownWorker is returned to a worker the coordinator does not
// know (never registered, expired for missed heartbeats, or the server
// restarted). The worker client re-registers and carries on.
var ErrUnknownWorker = errors.New("cluster: unknown worker")

// ErrAborted is returned by Worker.Run when the test-only Abort channel
// closes: the simulated fail-stop crash, mid-unit, with no completion
// report and no deregistration.
var ErrAborted = errors.New("cluster: worker aborted (simulated crash)")

// Unit is one leased piece of work: a fully normalized scenario spec,
// its content address, and — when the coordinator shards — the trial
// range this unit covers plus the parent scenario's address. The key
// doubles as the integrity anchor: a completing worker must echo it,
// and the coordinator recomputes nothing it cannot check. Unit is the
// shard descriptor itself, so the HTTP lease JSON, the binary wire
// grants, and the planner all speak the same type.
type Unit = shard.Descriptor

// Wire types for the /v1/cluster API. Durations travel as nanoseconds
// (Go's time.Duration JSON form); the protocol is internal to the two
// binaries in this repository, both stamped from the same build.

// RegisterRequest announces a worker to the coordinator.
type RegisterRequest struct {
	Name    string `json:"name"`
	Version string `json:"version,omitempty"`
}

// RegisterResponse assigns the worker its identity and cadence.
type RegisterResponse struct {
	WorkerID string `json:"worker_id"`
	// LeaseTTL is how long a granted lease lives without a heartbeat.
	LeaseTTL time.Duration `json:"lease_ttl"`
	// Heartbeat is the interval the worker must beat at while holding a
	// lease (and the cap on its idle poll backoff).
	Heartbeat time.Duration `json:"heartbeat"`
	// Wire, when non-empty, is the coordinator's streaming-transport
	// address (host:port). The worker opens one persistent conn there
	// instead of polling the HTTP lease endpoint; an empty Wire (or a
	// failed dial) keeps it on HTTP polling.
	Wire string `json:"wire,omitempty"`
}

// LeaseRequest asks for one unit of work.
type LeaseRequest struct {
	WorkerID string `json:"worker_id"`
}

// LeaseResponse carries at most one unit; a nil Unit means no work is
// available (the worker backs off and polls again).
type LeaseResponse struct {
	Unit     *Unit         `json:"unit,omitempty"`
	LeaseTTL time.Duration `json:"lease_ttl"`
}

// HeartbeatRequest renews the worker's liveness and extends the leases
// it still holds.
type HeartbeatRequest struct {
	WorkerID string   `json:"worker_id"`
	Units    []string `json:"units,omitempty"`
}

// CompleteRequest reports a finished unit. Rows is the JSON encoding of
// the []experiments.ScenarioRow result; CRC32 is the IEEE checksum of
// exactly those bytes, and Key must echo the unit's content address.
// Error, when non-empty, reports a deterministic execution failure
// (the rows are absent and the unit completes as failed, same as a
// local execution would).
type CompleteRequest struct {
	WorkerID       string          `json:"worker_id"`
	UnitID         string          `json:"unit_id"`
	Key            string          `json:"key"`
	Rows           json.RawMessage `json:"rows,omitempty"`
	CRC32          uint32          `json:"crc32"`
	Error          string          `json:"error,omitempty"`
	DurationMicros int64           `json:"duration_us,omitempty"`
}

// DeregisterRequest announces a graceful exit; the worker has no leases
// left (it finishes its current unit before deregistering).
type DeregisterRequest struct {
	WorkerID string `json:"worker_id"`
}

// Streaming-transport payloads. The frame layer (internal/wire) moves
// opaque typed payloads; these are their encodings. Hello/HelloAck/Want
// are small JSON control messages; Grant carries a shard.EncodeBatch of
// units; Complete and Heartbeat reuse the HTTP request types verbatim,
// so both transports verify completions through the same code.

// helloPayload opens a worker's conn with its registered identity.
type helloPayload struct {
	WorkerID string `json:"worker_id"`
}

// helloAckPayload accepts or rejects the Hello. A rejected worker
// (coordinator restarted, worker expired) re-registers over HTTP and
// reconnects with its new identity.
type helloAckPayload struct {
	OK        bool          `json:"ok"`
	Error     string        `json:"error,omitempty"`
	LeaseTTL  time.Duration `json:"lease_ttl,omitempty"`
	Heartbeat time.Duration `json:"heartbeat,omitempty"`
}

// wantPayload advertises how many more units the worker can take; the
// coordinator pushes Grant frames until the demand is satisfied.
type wantPayload struct {
	N int `json:"n"`
}
