package cluster

import (
	"context"
	"encoding/json"
	"fmt"
	"hash/crc32"
	"sync"
	"time"

	"repro/internal/experiments"
	"repro/internal/metrics"
	"repro/internal/service"
	"repro/internal/shard"
	"repro/internal/store"
)

// CoordinatorConfig configures the coordinator. Zero values pick
// serving defaults.
type CoordinatorConfig struct {
	// LeaseTTL is how long a granted lease survives without a
	// heartbeat before it is reassigned. Default 10s.
	LeaseTTL time.Duration
	// HeartbeatInterval is the cadence workers are told to beat at.
	// Default LeaseTTL/3.
	HeartbeatInterval time.Duration
	// WorkerTTL is how long a worker may go silent (no lease poll, no
	// heartbeat, no wire frame) before it is expired and its leases
	// reassigned. Default 3*HeartbeatInterval.
	WorkerTTL time.Duration
	// MaxAttempts bounds how many leases one unit may consume before
	// the coordinator abandons its scenario back to the local pool.
	// Default 3.
	MaxAttempts int
	// ShardTrials, when positive, splits each scenario into trial-range
	// units of at most this many trials (internal/shard), leased
	// independently and merged in trial order. Zero leases whole
	// scenarios — the pre-sharding behavior.
	ShardTrials int
	// Store, when non-nil, receives verified remote results before the
	// waiting Execute call returns: raw CRC-checked bytes for
	// whole-scenario units, the assembled row set (under the parent
	// scenario's address) once every shard of a sharded scenario has
	// merged. Partial assemblies never touch the store.
	Store *store.Store
	// Metrics receives cluster counters. Nil creates a private registry.
	Metrics *metrics.Registry
	// Log receives operational notices (worker churn, reassignments).
	// Nil discards them.
	Log func(format string, args ...any)
	// Version stamps store write-backs from remote results.
	Version string
	// WAL, when non-nil, receives an execution audit trail: one
	// unit-enqueued record when Execute hands a scenario to the fleet and
	// one unit-completed record when that Execute call returns (source
	// "cluster", "failed", or "abandoned"). The records carry no sweep,
	// which is how recovery tells them apart from sweep lifecycle
	// records; replay pairs them to report scenarios that were in flight
	// on the fleet when the server died.
	WAL *store.WAL
	// WireAdvertise, when set, is the streaming-transport address
	// Register hands to workers instead of the listener's own (the
	// listener may sit behind a proxy — the chaos harness severs conns at
	// one — or on an address unreachable from the fleet's network).
	WireAdvertise string
}

// group is one Execute call: a scenario split into one or more units.
// A whole-scenario group has a single unit and no merger; a sharded
// group owns a shard.Merger assembling its rows. The group — not the
// unit — is the terminal-state holder: exactly one close(done) follows
// finished or abandoned being set.
type group struct {
	key  string // parent scenario content address
	spec experiments.ScenarioConfig
	all  []*unitState  // every unit of this scenario
	mrg  *shard.Merger // nil for whole-scenario groups

	rows      []experiments.ScenarioRow
	rawRows   json.RawMessage // whole-scenario fast path: verified remote bytes
	duration  int64           // accumulated shard execution micros, for store meta
	errMsg    string
	abandoned bool
	finished  bool
	done      chan struct{}
}

// terminal reports whether the group reached its outcome. Guarded by
// the coordinator's mu.
func (g *group) terminal() bool { return g.finished || g.abandoned }

// unitState is one live unit: pending (worker == "") or leased.
type unitState struct {
	unit     Unit
	grp      *group
	shardIdx int // index into the group's shard plan (0 when whole)
	attempts int // leases granted so far
	worker   string
	expiry   time.Time
	finished bool // this unit completed (its group may still be open)
}

// workerState is one registered worker.
type workerState struct {
	id       string
	name     string
	version  string
	lastSeen time.Time
	lastBeat time.Time       // previous heartbeat, for the gap histogram
	units    map[string]bool // unit IDs currently leased to this worker
}

// Coordinator owns the worker table, the pending-unit queue, the lease
// table, and (when started) the streaming-transport listener. It
// implements service.Executor and service.WorkersReporter. All methods
// are safe for concurrent use.
type Coordinator struct {
	cfg CoordinatorConfig
	reg *metrics.Registry
	log func(format string, args ...any)

	mu         sync.Mutex
	draining   bool
	workers    map[string]*workerState
	pending    []*unitState          // FIFO of unleased units
	units      map[string]*unitState // every live unit (pending or leased)
	nextUnit   uint64
	nextWorker uint64
	expired    int64 // cumulative expired leases, for WorkersStatus

	wire *wireServer // nil until StartWire

	closeOnce sync.Once
	closed    chan struct{}
	loopDone  chan struct{}

	connected  *metrics.Gauge
	active     *metrics.Gauge
	granted    *metrics.Counter
	expiredC   *metrics.Counter
	reassigned *metrics.Counter
	abandoned  *metrics.Counter
	stale      *metrics.Counter
	workerExp  *metrics.Counter
	shardsPl   *metrics.Counter
	shardsMg   *metrics.Counter
	assembled  *metrics.Counter
	hbGap      *metrics.Histogram
}

// NewCoordinator starts a coordinator and its lease-expiry loop. Call
// StartWire to host the streaming transport, and Close (after Drain)
// to stop everything.
func NewCoordinator(cfg CoordinatorConfig) *Coordinator {
	if cfg.LeaseTTL <= 0 {
		cfg.LeaseTTL = 10 * time.Second
	}
	if cfg.HeartbeatInterval <= 0 {
		cfg.HeartbeatInterval = cfg.LeaseTTL / 3
	}
	if cfg.WorkerTTL <= 0 {
		cfg.WorkerTTL = 3 * cfg.HeartbeatInterval
	}
	if cfg.MaxAttempts <= 0 {
		cfg.MaxAttempts = 3
	}
	if cfg.Metrics == nil {
		cfg.Metrics = metrics.New()
	}
	if cfg.Log == nil {
		cfg.Log = func(string, ...any) {}
	}
	c := &Coordinator{
		cfg:        cfg,
		reg:        cfg.Metrics,
		log:        cfg.Log,
		workers:    map[string]*workerState{},
		units:      map[string]*unitState{},
		closed:     make(chan struct{}),
		loopDone:   make(chan struct{}),
		connected:  cfg.Metrics.Gauge(MetricWorkersConnected),
		active:     cfg.Metrics.Gauge(MetricLeasesActive),
		granted:    cfg.Metrics.Counter(MetricLeasesGranted),
		expiredC:   cfg.Metrics.Counter(MetricLeasesExpired),
		reassigned: cfg.Metrics.Counter(MetricLeasesReassigned),
		abandoned:  cfg.Metrics.Counter(MetricUnitsAbandoned),
		stale:      cfg.Metrics.Counter(MetricResultsStale),
		workerExp:  cfg.Metrics.Counter(MetricWorkersExpired),
		shardsPl:   cfg.Metrics.Counter(MetricShardsPlanned),
		shardsMg:   cfg.Metrics.Counter(MetricShardsMerged),
		assembled:  cfg.Metrics.Counter(MetricScenariosAssembled),
		hbGap: cfg.Metrics.Histogram(MetricHeartbeatGap, []int64{
			1_000, 10_000, 100_000, 1_000_000, 10_000_000, 60_000_000,
		}),
	}
	go c.expiryLoop()
	return c
}

// Registry returns the registry the coordinator reports into.
func (c *Coordinator) Registry() *metrics.Registry { return c.reg }

// rejectResult counts one rejected completion by reason.
func (c *Coordinator) rejectResult(reason string) {
	c.reg.Counter(MetricResultsRejected + `{reason="` + reason + `"}`).Inc()
}

// sanitizeName restricts a worker-supplied name to [a-zA-Z0-9_.-]:
// the name is interpolated into the worker="..." metric label, where a
// quote, brace, or newline would corrupt the exposition format. The
// shared helper also guards tenant IDs in internal/tenant.
func sanitizeName(s string) string {
	return metrics.SanitizeLabel(s)
}

// Register admits a worker and assigns its identity and cadence. The
// response advertises the streaming transport when it is running.
func (c *Coordinator) Register(req RegisterRequest) RegisterResponse {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.nextWorker++
	w := &workerState{
		id:       fmt.Sprintf("w%04d", c.nextWorker),
		name:     sanitizeName(req.Name),
		version:  req.Version,
		lastSeen: time.Now(),
		units:    map[string]bool{},
	}
	if w.name == "" {
		w.name = w.id
	}
	c.workers[w.id] = w
	c.connected.Set(int64(len(c.workers)))
	c.log("cluster: worker %s (%q, version %s) registered, fleet size %d",
		w.id, w.name, w.version, len(c.workers))
	resp := RegisterResponse{
		WorkerID:  w.id,
		LeaseTTL:  c.cfg.LeaseTTL,
		Heartbeat: c.cfg.HeartbeatInterval,
	}
	if c.wire != nil {
		resp.Wire = c.wire.addr
		if c.cfg.WireAdvertise != "" {
			resp.Wire = c.cfg.WireAdvertise
		}
	}
	return resp
}

// walAppend records one execution-audit transition. A failed append
// costs audit fidelity, never serving, so it is logged and swallowed.
func (c *Coordinator) walAppend(rec store.WALRecord) {
	if c.cfg.WAL == nil {
		return
	}
	if err := c.cfg.WAL.Append(rec); err != nil {
		c.log("cluster: audit WAL append failed: %v", err)
	}
}

// Deregister removes a worker gracefully. Any lease it still holds
// (there should be none on the graceful path) is reassigned at once.
func (c *Coordinator) Deregister(workerID string) error {
	c.mu.Lock()
	defer c.mu.Unlock()
	w, ok := c.workers[workerID]
	if !ok {
		return ErrUnknownWorker
	}
	c.dropWorkerLocked(w, "deregistered")
	return nil
}

// dropWorkerLocked removes a worker and requeues its leases. Callers
// hold c.mu.
func (c *Coordinator) dropWorkerLocked(w *workerState, why string) {
	for unitID := range w.units {
		if u := c.units[unitID]; u != nil && u.worker == w.id {
			c.expireLeaseLocked(u)
		}
	}
	delete(c.workers, w.id)
	c.connected.Set(int64(len(c.workers)))
	c.log("cluster: worker %s (%q) %s, fleet size %d", w.id, w.name, why, len(c.workers))
}

// workerKnown reports whether the ID belongs to a registered worker;
// the wire handshake checks it before accepting a conn.
func (c *Coordinator) workerKnown(workerID string) bool {
	c.mu.Lock()
	defer c.mu.Unlock()
	_, ok := c.workers[workerID]
	return ok
}

// touchWorker refreshes a worker's liveness. Every wire frame counts:
// a conn streaming completions is alive whether or not an explicit
// heartbeat is due — that is the piggyback.
func (c *Coordinator) touchWorker(workerID string) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if w, ok := c.workers[workerID]; ok {
		w.lastSeen = time.Now()
	}
}

// Lease grants the oldest pending unit to the worker, or (nil, ttl,
// nil) when there is no work. Polling doubles as liveness: it refreshes
// the worker's lastSeen like a heartbeat does.
func (c *Coordinator) Lease(workerID string) (*Unit, time.Duration, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	w, ok := c.workers[workerID]
	if !ok {
		return nil, 0, ErrUnknownWorker
	}
	w.lastSeen = time.Now()
	if c.draining || len(c.pending) == 0 {
		return nil, c.cfg.LeaseTTL, nil
	}
	u := c.pending[0]
	c.pending = c.pending[1:]
	u.attempts++
	u.worker = w.id
	u.expiry = w.lastSeen.Add(c.cfg.LeaseTTL)
	w.units[u.unit.ID] = true
	c.granted.Inc()
	c.active.Inc()
	unit := u.unit
	return &unit, c.cfg.LeaseTTL, nil
}

// Heartbeat refreshes the worker's liveness and extends the leases it
// reports holding. Unit IDs the worker no longer holds (expired and
// reassigned under it) are ignored — its eventual Complete will be
// verified on its own merits.
func (c *Coordinator) Heartbeat(req HeartbeatRequest) error {
	c.mu.Lock()
	defer c.mu.Unlock()
	w, ok := c.workers[req.WorkerID]
	if !ok {
		return ErrUnknownWorker
	}
	now := time.Now()
	if !w.lastBeat.IsZero() {
		c.hbGap.Observe(now.Sub(w.lastBeat).Microseconds())
	}
	w.lastBeat = now
	w.lastSeen = now
	for _, unitID := range req.Units {
		if u := c.units[unitID]; u != nil && u.worker == w.id {
			u.expiry = now.Add(c.cfg.LeaseTTL)
		}
	}
	return nil
}

// Complete accepts a finished unit after verifying it: the echoed key
// must match the unit's content address, the CRC32 must match the row
// bytes, and a shard's rows must carry exactly the trial indices of its
// range. A whole-scenario result is written back to the store and
// handed to the waiting Execute call; a shard result is merged, and the
// group completes (store write-back under the parent address, Execute
// returns) only when its last shard merges. A failed check costs the
// reporter its lease — the unit is requeued under its attempt budget —
// but only when the reporter still holds the lease: a failed check or
// error report from a stale worker (expired and reassigned) must not
// release the current holder's lease, burn the unit's attempt budget,
// or terminate a unit another worker is executing. Completions for
// units the coordinator no longer tracks (finished by another worker,
// abandoned, or cancelled) are counted stale and acknowledged.
func (c *Coordinator) Complete(req CompleteRequest) error {
	c.mu.Lock()
	if w, ok := c.workers[req.WorkerID]; ok {
		w.lastSeen = time.Now()
	}
	u, ok := c.units[req.UnitID]
	if !ok {
		c.mu.Unlock()
		c.stale.Inc()
		return nil
	}
	g := u.grp
	holder := u.worker == req.WorkerID
	if req.Key != u.unit.Key {
		c.rejectLocked(u, holder, "content address mismatch from "+req.WorkerID)
		c.mu.Unlock()
		c.rejectResult("key")
		return nil
	}
	if req.Error != "" {
		if !holder {
			c.mu.Unlock()
			c.stale.Inc()
			return nil
		}
		// A deterministic execution failure: the remote run failed the
		// same way a local one would. The whole scenario completes as
		// failed — sibling shards of the same group are withdrawn; any
		// still executing will report stale completions.
		workerName := c.workerNameLocked(req.WorkerID)
		c.finishLocked(u)
		g.errMsg = req.Error
		c.finishGroupLocked(g)
		c.mu.Unlock()
		c.countCompleted(workerName)
		close(g.done)
		return nil
	}
	if crc32.ChecksumIEEE(req.Rows) != req.CRC32 {
		c.rejectLocked(u, holder, "CRC mismatch from "+req.WorkerID)
		c.mu.Unlock()
		c.rejectResult("crc")
		return nil
	}
	var rows []experiments.ScenarioRow
	if err := json.Unmarshal(req.Rows, &rows); err != nil {
		c.rejectLocked(u, holder, "undecodable rows from "+req.WorkerID)
		c.mu.Unlock()
		c.rejectResult("decode")
		return nil
	}
	workerName := c.workerNameLocked(req.WorkerID)
	if g.mrg != nil {
		// Merge-time validation (row count, trial indices) happens
		// before the unit finishes so a bad payload is a lease-costing
		// reject, not a wedged assembly.
		if err := g.mrg.Add(u.shardIdx, rows); err != nil {
			c.rejectLocked(u, holder, err.Error()+" from "+req.WorkerID)
			c.mu.Unlock()
			c.rejectResult("range")
			return nil
		}
		c.finishLocked(u)
		c.shardsMg.Inc()
		g.duration += req.DurationMicros
		if !g.mrg.Done() {
			c.mu.Unlock()
			c.countCompleted(workerName)
			return nil // more shards outstanding
		}
		g.rows = g.mrg.Rows()
		c.assembled.Inc()
		c.finishGroupLocked(g)
	} else {
		c.finishLocked(u)
		g.rows = rows
		g.rawRows = req.Rows
		g.duration = req.DurationMicros
		c.finishGroupLocked(g)
	}
	c.mu.Unlock()

	// Write-back outside the lock: the journal fsyncs on every record.
	// First-write-wins makes a duplicate completion (a reassigned unit
	// finishing twice) a no-op. A whole-scenario result reuses the
	// verified remote bytes; an assembled scenario is encoded once here.
	if c.cfg.Store != nil {
		raw := g.rawRows
		if raw == nil {
			var err error
			if raw, err = json.Marshal(g.rows); err != nil {
				c.log("cluster: encode assembled rows for %s failed: %v", g.key, err)
			}
		}
		if raw != nil {
			meta := store.Meta{DurationMicros: g.duration, Version: c.cfg.Version}
			if err := c.cfg.Store.PutScenarioRaw(g.key, raw, meta); err != nil {
				c.log("cluster: store write-back for %s failed: %v", g.key, err)
			}
		}
	}
	c.countCompleted(workerName)
	close(g.done)
	return nil
}

// workerNameLocked resolves a worker ID to its stable name for the
// per-worker completion counter; an unknown (already expired) worker
// reports under its ID.
func (c *Coordinator) workerNameLocked(workerID string) string {
	if w, ok := c.workers[workerID]; ok {
		return w.name
	}
	return workerID
}

func (c *Coordinator) countCompleted(workerName string) {
	c.reg.Counter(MetricUnitsCompleted + `{worker="` + workerName + `"}`).Inc()
}

// finishLocked removes a unit that reached a verified terminal outcome
// from every table. Callers hold c.mu.
func (c *Coordinator) finishLocked(u *unitState) {
	if u.worker != "" {
		if w, ok := c.workers[u.worker]; ok {
			delete(w.units, u.unit.ID)
		}
		u.worker = ""
		c.active.Dec()
	} else {
		// A requeued unit completed late by its original holder must
		// leave the pending queue too, or it would be leased — and
		// executed — a second time after finishing.
		c.removePendingLocked(u)
	}
	u.finished = true
	delete(c.units, u.unit.ID)
}

// finishGroupLocked marks a group terminal and withdraws its remaining
// units (sibling shards of a failed or fully-assembled scenario).
// Callers hold c.mu and close g.done after unlocking.
func (c *Coordinator) finishGroupLocked(g *group) {
	g.finished = true
	c.withdrawGroupUnitsLocked(g)
}

// withdrawGroupUnitsLocked removes every still-live unit of g from the
// coordinator's tables. Leased siblings lose their lease; their
// eventual completions are counted stale. Callers hold c.mu.
func (c *Coordinator) withdrawGroupUnitsLocked(g *group) {
	for _, su := range g.all {
		if cur := c.units[su.unit.ID]; cur == su {
			c.releaseLeaseLocked(su)
			delete(c.units, su.unit.ID)
			c.removePendingLocked(su)
		}
	}
}

// rejectLocked handles a completion that failed verification: the
// reporter loses its lease and the unit is requeued, but only when the
// reporter actually holds the lease — a stale reporter's bad payload is
// its own problem, not the current holder's. Callers hold c.mu.
func (c *Coordinator) rejectLocked(u *unitState, holder bool, why string) {
	if !holder {
		c.stale.Inc()
		return
	}
	c.releaseLeaseLocked(u)
	c.requeueLocked(u, why)
}

// releaseLeaseLocked detaches a unit from its current holder without
// deciding its fate. Callers hold c.mu.
func (c *Coordinator) releaseLeaseLocked(u *unitState) {
	if u.worker == "" {
		return
	}
	if w, ok := c.workers[u.worker]; ok {
		delete(w.units, u.unit.ID)
	}
	u.worker = ""
	u.expiry = time.Time{}
	c.active.Dec()
}

// expireLeaseLocked handles one lease that outlived its TTL (or whose
// worker died): count the expiry, then requeue or abandon. Callers
// hold c.mu.
func (c *Coordinator) expireLeaseLocked(u *unitState) {
	c.expiredC.Inc()
	c.expired++
	c.releaseLeaseLocked(u)
	c.requeueLocked(u, "lease expired")
}

// requeueLocked puts a released unit back in the queue under its
// attempt budget, or abandons its whole group to the local pool: a
// scenario missing one shard can never be assembled, so sibling shards
// of an abandoned unit are worthless. Callers hold c.mu; an abandoned
// group's done channel is closed here (no field writes race: abandoned
// is set before close).
func (c *Coordinator) requeueLocked(u *unitState, why string) {
	if u.finished || u.grp.terminal() {
		return // already terminal; done is closed (or about to be)
	}
	if c.draining || u.attempts >= c.cfg.MaxAttempts {
		c.abandonGroupLocked(u.grp, fmt.Sprintf("unit %s after %d attempts: %s", u.unit.ID, u.attempts, why))
		return
	}
	c.pending = append(c.pending, u)
	c.reassigned.Inc()
	c.notifyWorkLocked()
	c.log("cluster: unit %s requeued (%s), attempt %d of %d", u.unit.ID, why, u.attempts, c.cfg.MaxAttempts)
}

// abandonGroupLocked hands a whole scenario back to the local pool:
// every live unit of the group is withdrawn (leased siblings' eventual
// completions become stale) and the waiting Execute call is released
// with ok=false. Callers hold c.mu.
func (c *Coordinator) abandonGroupLocked(g *group, why string) {
	if g.terminal() {
		return
	}
	g.abandoned = true
	c.abandoned.Inc()
	c.withdrawGroupUnitsLocked(g)
	c.log("cluster: scenario %.12s abandoned (%s); falling back to local execution", g.key, why)
	close(g.done)
}

// expiryLoop scans for expired leases and silent workers.
func (c *Coordinator) expiryLoop() {
	defer close(c.loopDone)
	tick := c.cfg.LeaseTTL / 4
	if tick < 5*time.Millisecond {
		tick = 5 * time.Millisecond
	}
	if tick > time.Second {
		tick = time.Second
	}
	t := time.NewTicker(tick)
	defer t.Stop()
	for {
		select {
		case <-c.closed:
			return
		case <-t.C:
			c.sweepExpired()
		}
	}
}

// sweepExpired reassigns every overdue lease and expires every silent
// worker.
func (c *Coordinator) sweepExpired() {
	now := time.Now()
	c.mu.Lock()
	defer c.mu.Unlock()
	for _, u := range c.units {
		if u.worker != "" && now.After(u.expiry) {
			c.expireLeaseLocked(u)
		}
	}
	for _, w := range c.workers {
		if now.Sub(w.lastSeen) > c.cfg.WorkerTTL {
			c.workerExp.Inc()
			c.dropWorkerLocked(w, "expired (missed heartbeats)")
		}
	}
}

// notifyWorkLocked wakes the wire server's grant feeders: pending work
// appeared. Callers hold c.mu (the wake itself is lock-free on the
// coordinator side).
func (c *Coordinator) notifyWorkLocked() {
	if c.wire != nil {
		c.wire.wake()
	}
}

// Execute implements service.Executor: it plans the spec into units
// (one per ShardTrials-sized trial range, or the whole scenario) and
// waits for the fleet to complete them all. ok=false means the fleet
// could not take the work — no workers connected, coordinator draining,
// or a unit's lease retry budget exhausted — and the caller should
// execute locally. A remote execution failure (the scenario itself
// erred) returns ok=true with that error, exactly as a local run would.
func (c *Coordinator) Execute(ctx context.Context, spec experiments.ScenarioConfig) ([]experiments.ScenarioRow, bool, error) {
	key, err := store.ScenarioKey(spec)
	if err != nil {
		return nil, false, nil // un-keyable spec: let the local path deal with it
	}
	c.mu.Lock()
	if c.draining || len(c.workers) == 0 {
		c.mu.Unlock()
		return nil, false, nil
	}
	g := &group{key: key, spec: spec, done: make(chan struct{})}
	if ranges := shard.Plan(spec.Trials, c.cfg.ShardTrials); ranges != nil {
		g.mrg = shard.NewMerger(ranges)
		c.shardsPl.Add(int64(len(ranges)))
		for i, r := range ranges {
			c.nextUnit++
			g.all = append(g.all, &unitState{
				unit: Unit{
					ID:     fmt.Sprintf("u%06d", c.nextUnit),
					Key:    shard.Key(key, r.Start, r.End),
					Parent: key,
					Start:  r.Start,
					End:    r.End,
					Spec:   spec,
				},
				grp:      g,
				shardIdx: i,
			})
		}
	} else {
		c.nextUnit++
		g.all = []*unitState{{
			unit: Unit{ID: fmt.Sprintf("u%06d", c.nextUnit), Key: key, Spec: spec},
			grp:  g,
		}}
	}
	for _, u := range g.all {
		c.units[u.unit.ID] = u
		c.pending = append(c.pending, u)
	}
	c.notifyWorkLocked()
	c.mu.Unlock()
	c.walAppend(store.WALRecord{Kind: store.RecUnitEnqueued, Key: key})

	select {
	case <-g.done:
		if g.abandoned {
			c.walAppend(store.WALRecord{Kind: store.RecUnitCompleted, Key: key, Source: "abandoned"})
			return nil, false, nil
		}
		if g.errMsg != "" {
			c.walAppend(store.WALRecord{Kind: store.RecUnitCompleted, Key: key, Source: "failed", Error: g.errMsg})
			return nil, true, fmt.Errorf("cluster: remote execution failed: %s", g.errMsg)
		}
		c.walAppend(store.WALRecord{Kind: store.RecUnitCompleted, Key: key, Source: "cluster"})
		return g.rows, true, nil
	case <-ctx.Done():
		// Cancelled or timed out: withdraw the whole group. Workers
		// already running its units will report stale completions,
		// which are counted and dropped.
		c.mu.Lock()
		if !g.terminal() {
			g.abandoned = true // terminal, but done is NOT closed: only Execute waits on it
			c.withdrawGroupUnitsLocked(g)
		}
		c.mu.Unlock()
		c.walAppend(store.WALRecord{Kind: store.RecUnitCompleted, Key: key, Source: "abandoned"})
		return nil, true, ctx.Err()
	}
}

// removePendingLocked drops u from the pending queue if present.
// Callers hold c.mu.
func (c *Coordinator) removePendingLocked(u *unitState) {
	for i, p := range c.pending {
		if p == u {
			c.pending = append(c.pending[:i], c.pending[i+1:]...)
			return
		}
	}
}

// WorkersStatus implements service.WorkersReporter for /healthz.
func (c *Coordinator) WorkersStatus() service.WorkersStatus {
	c.mu.Lock()
	active := 0
	for _, u := range c.units {
		if u.worker != "" {
			active++
		}
	}
	st := service.WorkersStatus{
		Connected:     len(c.workers),
		LeasesActive:  active,
		LeasesExpired: c.expired,
	}
	wire := c.wire
	c.mu.Unlock()
	if wire != nil {
		st.WireConnected = wire.connCount()
	}
	return st
}

// Drain stops granting leases, abandons every scenario that still has
// pending (unleased) units back to the local pool, and waits until no
// lease is in flight — workers finish and report their current units
// through the still-open listener and wire conns — or ctx expires. A
// sharded scenario whose every unit is leased drains to completion;
// one missing even a single unleased shard can never be assembled, so
// it is abandoned whole (its leased siblings' completions will be
// stale). Call before draining the sweep and job managers so their
// fallback executions still have a pool to run on.
func (c *Coordinator) Drain(ctx context.Context) error {
	c.mu.Lock()
	c.draining = true
	pending := c.pending
	c.pending = nil
	for _, u := range pending {
		if u.finished || u.grp.terminal() {
			continue // already terminal; its done channel is closed
		}
		c.abandonGroupLocked(u.grp, "drain")
	}
	c.mu.Unlock()

	t := time.NewTicker(5 * time.Millisecond)
	defer t.Stop()
	for {
		c.mu.Lock()
		inFlight := len(c.units)
		c.mu.Unlock()
		if inFlight == 0 {
			return nil
		}
		select {
		case <-ctx.Done():
			return ctx.Err()
		case <-t.C:
		}
	}
}

// Close stops the expiry loop and the wire listener. Idempotent; call
// after Drain.
func (c *Coordinator) Close() {
	c.closeOnce.Do(func() {
		close(c.closed)
		c.mu.Lock()
		w := c.wire
		c.mu.Unlock()
		if w != nil {
			w.close()
		}
	})
	<-c.loopDone
}
