package cluster

import (
	"context"
	"encoding/json"
	"errors"
	"hash/crc32"
	"reflect"
	"runtime"
	"testing"
	"time"

	"repro/internal/experiments"
	"repro/internal/metrics"
)

// testSpec is a small, fast scenario; distinct seeds give distinct
// content addresses.
func testSpec(seed uint64) experiments.ScenarioConfig {
	spec := experiments.ScenarioConfig{
		N: 12, Topology: "line", Query: "min", Attack: "none",
		Synopses: 8, Trials: 2, Seed: seed,
	}
	spec.Normalize()
	return spec
}

func newTestCoordinator(t *testing.T, cfg CoordinatorConfig) *Coordinator {
	t.Helper()
	c := NewCoordinator(cfg)
	t.Cleanup(c.Close)
	return c
}

// leaseUnit polls Lease until the worker receives a unit or the
// deadline passes.
func leaseUnit(t *testing.T, c *Coordinator, workerID string) Unit {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		unit, _, err := c.Lease(workerID)
		if err != nil {
			t.Fatalf("lease: %v", err)
		}
		if unit != nil {
			return *unit
		}
		time.Sleep(time.Millisecond)
	}
	t.Fatal("no unit leased within deadline")
	return Unit{}
}

// completeUnit executes the unit locally and reports a verified result.
func completeUnit(t *testing.T, c *Coordinator, workerID string, unit Unit) {
	t.Helper()
	rows, err := experiments.RunScenario(unit.Spec)
	if err != nil {
		t.Fatalf("run unit: %v", err)
	}
	raw, err := json.Marshal(rows)
	if err != nil {
		t.Fatalf("marshal rows: %v", err)
	}
	if err := c.Complete(CompleteRequest{
		WorkerID: workerID, UnitID: unit.ID, Key: unit.Key,
		Rows: raw, CRC32: crc32.ChecksumIEEE(raw),
	}); err != nil {
		t.Fatalf("complete: %v", err)
	}
}

type execResult struct {
	rows []experiments.ScenarioRow
	ok   bool
	err  error
}

func executeAsync(c *Coordinator, ctx context.Context, spec experiments.ScenarioConfig) chan execResult {
	ch := make(chan execResult, 1)
	go func() {
		rows, ok, err := c.Execute(ctx, spec)
		ch <- execResult{rows, ok, err}
	}()
	return ch
}

func TestExecuteNoWorkersFallsBack(t *testing.T) {
	c := newTestCoordinator(t, CoordinatorConfig{})
	rows, ok, err := c.Execute(context.Background(), testSpec(1))
	if ok || err != nil || rows != nil {
		t.Fatalf("Execute with empty fleet = (%v, %v, %v), want (nil, false, nil)", rows, ok, err)
	}
}

func TestLeaseCompleteRoundTrip(t *testing.T) {
	reg := metrics.New()
	c := newTestCoordinator(t, CoordinatorConfig{Metrics: reg})
	w := c.Register(RegisterRequest{Name: "alpha"})

	spec := testSpec(2)
	res := executeAsync(c, context.Background(), spec)
	unit := leaseUnit(t, c, w.WorkerID)
	if unit.Key == "" {
		t.Fatal("leased unit has no content address")
	}
	completeUnit(t, c, w.WorkerID, unit)

	r := <-res
	if !r.ok || r.err != nil {
		t.Fatalf("Execute = (ok=%v, err=%v), want remote success", r.ok, r.err)
	}
	want, err := experiments.RunScenario(spec)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(r.rows, want) {
		t.Fatal("remote rows differ from a local run of the same spec")
	}
	if v := reg.Counter(MetricLeasesGranted).Value(); v != 1 {
		t.Fatalf("leases granted = %d, want 1", v)
	}
	if v := reg.Counter(MetricUnitsCompleted + `{worker="alpha"}`).Value(); v != 1 {
		t.Fatalf("per-worker completions = %d, want 1", v)
	}
	if ws := c.WorkersStatus(); ws.Connected != 1 || ws.LeasesActive != 0 {
		t.Fatalf("status after completion = %+v", ws)
	}
}

func TestCompleteBadCRCCostsTheLease(t *testing.T) {
	reg := metrics.New()
	c := newTestCoordinator(t, CoordinatorConfig{Metrics: reg})
	w := c.Register(RegisterRequest{Name: "liar"})

	res := executeAsync(c, context.Background(), testSpec(3))
	unit := leaseUnit(t, c, w.WorkerID)
	rows, _ := experiments.RunScenario(unit.Spec)
	raw, _ := json.Marshal(rows)
	if err := c.Complete(CompleteRequest{
		WorkerID: w.WorkerID, UnitID: unit.ID, Key: unit.Key,
		Rows: raw, CRC32: crc32.ChecksumIEEE(raw) + 1,
	}); err != nil {
		t.Fatalf("corrupt complete should be dropped, not errored: %v", err)
	}
	if v := reg.Counter(MetricResultsRejected + `{reason="crc"}`).Value(); v != 1 {
		t.Fatalf("crc rejections = %d, want 1", v)
	}
	// The unit went back to the queue: lease it again and finish it.
	unit2 := leaseUnit(t, c, w.WorkerID)
	if unit2.ID != unit.ID {
		t.Fatalf("requeued unit %s, leased %s", unit.ID, unit2.ID)
	}
	completeUnit(t, c, w.WorkerID, unit2)
	if r := <-res; !r.ok || r.err != nil {
		t.Fatalf("Execute after requeue = (ok=%v, err=%v)", r.ok, r.err)
	}
	if v := reg.Counter(MetricLeasesReassigned).Value(); v != 1 {
		t.Fatalf("reassignments = %d, want 1", v)
	}
}

func TestCompleteKeyMismatchRejected(t *testing.T) {
	reg := metrics.New()
	c := newTestCoordinator(t, CoordinatorConfig{Metrics: reg})
	w := c.Register(RegisterRequest{})

	res := executeAsync(c, context.Background(), testSpec(4))
	unit := leaseUnit(t, c, w.WorkerID)
	rows, _ := experiments.RunScenario(unit.Spec)
	raw, _ := json.Marshal(rows)
	if err := c.Complete(CompleteRequest{
		WorkerID: w.WorkerID, UnitID: unit.ID, Key: "not-the-address",
		Rows: raw, CRC32: crc32.ChecksumIEEE(raw),
	}); err != nil {
		t.Fatal(err)
	}
	if v := reg.Counter(MetricResultsRejected + `{reason="key"}`).Value(); v != 1 {
		t.Fatalf("key rejections = %d, want 1", v)
	}
	completeUnit(t, c, w.WorkerID, leaseUnit(t, c, w.WorkerID))
	if r := <-res; !r.ok || r.err != nil {
		t.Fatalf("Execute = (ok=%v, err=%v)", r.ok, r.err)
	}
}

func TestRemoteExecutionErrorSurfaces(t *testing.T) {
	c := newTestCoordinator(t, CoordinatorConfig{})
	w := c.Register(RegisterRequest{})

	res := executeAsync(c, context.Background(), testSpec(5))
	unit := leaseUnit(t, c, w.WorkerID)
	if err := c.Complete(CompleteRequest{
		WorkerID: w.WorkerID, UnitID: unit.ID, Key: unit.Key,
		Error: "synthetic failure",
	}); err != nil {
		t.Fatal(err)
	}
	r := <-res
	if !r.ok || r.err == nil {
		t.Fatalf("Execute = (ok=%v, err=%v), want owned failure", r.ok, r.err)
	}
}

func TestLeaseExpiryReassignsThenAbandons(t *testing.T) {
	reg := metrics.New()
	c := newTestCoordinator(t, CoordinatorConfig{
		LeaseTTL:    20 * time.Millisecond,
		WorkerTTL:   time.Hour, // keep the worker alive; only leases expire
		MaxAttempts: 2,
		Metrics:     reg,
	})
	w := c.Register(RegisterRequest{Name: "crashy"})

	res := executeAsync(c, context.Background(), testSpec(6))
	// Two leases, never heartbeat, never complete: the second expiry
	// exhausts the attempt budget and the unit falls back.
	leaseUnit(t, c, w.WorkerID)
	leaseUnit(t, c, w.WorkerID) // granted only after the first expires
	r := <-res
	if r.ok || r.err != nil {
		t.Fatalf("Execute after budget exhaustion = (ok=%v, err=%v), want local fallback", r.ok, r.err)
	}
	if v := reg.Counter(MetricLeasesExpired).Value(); v != 2 {
		t.Fatalf("expired leases = %d, want 2", v)
	}
	if v := reg.Counter(MetricLeasesReassigned).Value(); v != 1 {
		t.Fatalf("reassignments = %d, want 1 (the second expiry abandons)", v)
	}
	if v := reg.Counter(MetricUnitsAbandoned).Value(); v != 1 {
		t.Fatalf("abandoned units = %d, want 1", v)
	}
}

func TestHeartbeatExtendsLease(t *testing.T) {
	c := newTestCoordinator(t, CoordinatorConfig{
		LeaseTTL:  40 * time.Millisecond,
		WorkerTTL: time.Hour,
	})
	w := c.Register(RegisterRequest{})

	res := executeAsync(c, context.Background(), testSpec(7))
	unit := leaseUnit(t, c, w.WorkerID)
	// Beat well past several TTLs; the lease must survive.
	for i := 0; i < 20; i++ {
		if err := c.Heartbeat(HeartbeatRequest{WorkerID: w.WorkerID, Units: []string{unit.ID}}); err != nil {
			t.Fatal(err)
		}
		time.Sleep(10 * time.Millisecond)
	}
	if ws := c.WorkersStatus(); ws.LeasesActive != 1 || ws.LeasesExpired != 0 {
		t.Fatalf("lease did not survive heartbeats: %+v", ws)
	}
	completeUnit(t, c, w.WorkerID, unit)
	if r := <-res; !r.ok || r.err != nil {
		t.Fatalf("Execute = (ok=%v, err=%v)", r.ok, r.err)
	}
}

func TestSilentWorkerExpires(t *testing.T) {
	reg := metrics.New()
	c := newTestCoordinator(t, CoordinatorConfig{
		LeaseTTL:          20 * time.Millisecond,
		HeartbeatInterval: 10 * time.Millisecond,
		WorkerTTL:         30 * time.Millisecond,
		Metrics:           reg,
	})
	c.Register(RegisterRequest{Name: "ghost"})
	deadline := time.Now().Add(5 * time.Second)
	for c.WorkersStatus().Connected != 0 {
		if time.Now().After(deadline) {
			t.Fatal("silent worker never expired")
		}
		time.Sleep(5 * time.Millisecond)
	}
	if v := reg.Counter(MetricWorkersExpired).Value(); v != 1 {
		t.Fatalf("expired workers = %d, want 1", v)
	}
}

func TestExecuteContextCancelWithdrawsUnit(t *testing.T) {
	c := newTestCoordinator(t, CoordinatorConfig{})
	w := c.Register(RegisterRequest{})

	ctx, cancel := context.WithCancel(context.Background())
	res := executeAsync(c, ctx, testSpec(8))
	cancel()
	r := <-res
	if !r.ok || !errors.Is(r.err, context.Canceled) {
		t.Fatalf("Execute = (ok=%v, err=%v), want owned cancellation", r.ok, r.err)
	}
	// The unit was withdrawn: nothing left to lease.
	unit, _, err := c.Lease(w.WorkerID)
	if err != nil || unit != nil {
		t.Fatalf("lease after withdrawal = (%v, %v), want no work", unit, err)
	}
}

func TestStaleCompletionCountedAndAcked(t *testing.T) {
	reg := metrics.New()
	c := newTestCoordinator(t, CoordinatorConfig{Metrics: reg})
	w := c.Register(RegisterRequest{})
	if err := c.Complete(CompleteRequest{WorkerID: w.WorkerID, UnitID: "u999999", Key: "k"}); err != nil {
		t.Fatalf("stale completion must be acked, got %v", err)
	}
	if v := reg.Counter(MetricResultsStale).Value(); v != 1 {
		t.Fatalf("stale completions = %d, want 1", v)
	}
}

// A unit whose lease expired sits in the pending queue when its
// original worker's valid completion arrives late. The completion wins
// (first-write-wins), and the finished unit must leave the pending
// queue: it must not be leasable again, must not leak an active lease,
// and a later Drain must not close its done channel a second time.
func TestLateCompletionOfRequeuedUnitFinishesIt(t *testing.T) {
	reg := metrics.New()
	c := newTestCoordinator(t, CoordinatorConfig{
		LeaseTTL:  20 * time.Millisecond,
		WorkerTTL: time.Hour,
		Metrics:   reg,
	})
	w := c.Register(RegisterRequest{Name: "slow"})

	res := executeAsync(c, context.Background(), testSpec(12))
	unit := leaseUnit(t, c, w.WorkerID)
	// Never heartbeat: wait for the lease to expire and the unit to be
	// requeued.
	deadline := time.Now().Add(5 * time.Second)
	for reg.Counter(MetricLeasesReassigned).Value() == 0 {
		if time.Now().After(deadline) {
			t.Fatal("lease never expired")
		}
		time.Sleep(time.Millisecond)
	}
	// The original worker finishes anyway; the valid result is accepted.
	completeUnit(t, c, w.WorkerID, unit)
	if r := <-res; !r.ok || r.err != nil {
		t.Fatalf("Execute = (ok=%v, err=%v), want late completion accepted", r.ok, r.err)
	}
	// The finished unit must be gone from the pending queue…
	if u2, _, err := c.Lease(w.WorkerID); err != nil || u2 != nil {
		t.Fatalf("finished unit leased again: (%v, %v)", u2, err)
	}
	// …and from the lease table.
	if ws := c.WorkersStatus(); ws.LeasesActive != 0 {
		t.Fatalf("leases active = %d after completion, want 0", ws.LeasesActive)
	}
	// Drain must not re-abandon (double-close) the finished unit.
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	if err := c.Drain(ctx); err != nil {
		t.Fatalf("drain after late completion: %v", err)
	}
}

// A stale worker (lease expired and reassigned) reporting a corrupt
// payload or an execution error must not release the current holder's
// lease, burn the unit's attempt budget, or terminate the unit under
// the worker now running it.
func TestStaleWorkerCompletionDoesNotDisturbCurrentHolder(t *testing.T) {
	reg := metrics.New()
	c := newTestCoordinator(t, CoordinatorConfig{
		LeaseTTL:  20 * time.Millisecond,
		WorkerTTL: time.Hour,
		Metrics:   reg,
	})
	w1 := c.Register(RegisterRequest{Name: "stale"})
	w2 := c.Register(RegisterRequest{Name: "fresh"})

	res := executeAsync(c, context.Background(), testSpec(13))
	unit := leaseUnit(t, c, w1.WorkerID)
	// w1 goes silent; the lease expires and w2 picks the unit up.
	unit2 := leaseUnit(t, c, w2.WorkerID)
	if unit2.ID != unit.ID {
		t.Fatalf("reassigned unit %s, leased %s", unit.ID, unit2.ID)
	}
	// Keep w2's lease alive for the rest of the test.
	stopBeat := make(chan struct{})
	defer close(stopBeat)
	go func() {
		for {
			select {
			case <-stopBeat:
				return
			case <-time.After(5 * time.Millisecond):
				c.Heartbeat(HeartbeatRequest{WorkerID: w2.WorkerID, Units: []string{unit.ID}})
			}
		}
	}()

	staleBefore := reg.Counter(MetricResultsStale).Value()
	// Stale w1 reports a CRC mismatch, then an execution error.
	rows, _ := experiments.RunScenario(unit.Spec)
	raw, _ := json.Marshal(rows)
	if err := c.Complete(CompleteRequest{
		WorkerID: w1.WorkerID, UnitID: unit.ID, Key: unit.Key,
		Rows: raw, CRC32: crc32.ChecksumIEEE(raw) + 1,
	}); err != nil {
		t.Fatal(err)
	}
	if err := c.Complete(CompleteRequest{
		WorkerID: w1.WorkerID, UnitID: unit.ID, Key: unit.Key,
		Error: "stale synthetic failure",
	}); err != nil {
		t.Fatal(err)
	}
	if got := reg.Counter(MetricResultsStale).Value() - staleBefore; got != 2 {
		t.Fatalf("stale completions = %d, want 2", got)
	}
	// w2 still holds the lease: the stale reports neither released it
	// nor requeued the unit.
	if ws := c.WorkersStatus(); ws.LeasesActive != 1 {
		t.Fatalf("leases active = %d after stale reports, want 1", ws.LeasesActive)
	}
	// w2's valid result wins; the stale error did not terminate the unit.
	completeUnit(t, c, w2.WorkerID, unit2)
	if r := <-res; !r.ok || r.err != nil {
		t.Fatalf("Execute = (ok=%v, err=%v), want current holder's success", r.ok, r.err)
	}
}

// Worker-supplied names are restricted to label-safe characters before
// they reach the worker="..." metric label.
func TestRegisterSanitizesWorkerName(t *testing.T) {
	reg := metrics.New()
	c := newTestCoordinator(t, CoordinatorConfig{Metrics: reg})
	w := c.Register(RegisterRequest{Name: "al\"pha}\nbeta{"})

	res := executeAsync(c, context.Background(), testSpec(14))
	completeUnit(t, c, w.WorkerID, leaseUnit(t, c, w.WorkerID))
	if r := <-res; !r.ok || r.err != nil {
		t.Fatalf("Execute = (ok=%v, err=%v)", r.ok, r.err)
	}
	if v := reg.Counter(MetricUnitsCompleted + `{worker="alphabeta"}`).Value(); v != 1 {
		t.Fatalf("sanitized per-worker completions = %d, want 1", v)
	}
	// A name that sanitizes to nothing falls back to the assigned ID.
	w2 := c.Register(RegisterRequest{Name: "\"\n{}"})
	if ws := c.WorkersStatus(); ws.Connected != 2 {
		t.Fatalf("connected = %d, want 2", ws.Connected)
	}
	if w2.WorkerID == "" {
		t.Fatal("no worker ID assigned")
	}
}

func TestDrainAbandonsPendingAndWaitsInFlight(t *testing.T) {
	c := newTestCoordinator(t, CoordinatorConfig{WorkerTTL: time.Hour})
	w := c.Register(RegisterRequest{})

	// One unit in flight (leased), one pending behind it.
	inFlight := executeAsync(c, context.Background(), testSpec(9))
	unit := leaseUnit(t, c, w.WorkerID)
	pending := executeAsync(c, context.Background(), testSpec(10))

	drainDone := make(chan error, 1)
	go func() {
		ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		drainDone <- c.Drain(ctx)
	}()

	// The pending unit is handed back to the local pool immediately.
	if r := <-pending; r.ok {
		t.Fatalf("pending unit survived drain: ok=%v err=%v", r.ok, r.err)
	}
	select {
	case err := <-drainDone:
		t.Fatalf("drain returned (%v) before the in-flight lease finished", err)
	case <-time.After(30 * time.Millisecond):
	}
	// The worker reports its unit; drain completes.
	completeUnit(t, c, w.WorkerID, unit)
	if err := <-drainDone; err != nil {
		t.Fatalf("drain: %v", err)
	}
	if r := <-inFlight; !r.ok || r.err != nil {
		t.Fatalf("in-flight unit lost to drain: ok=%v err=%v", r.ok, r.err)
	}
	// Draining coordinators refuse new work.
	if _, ok, err := c.Execute(context.Background(), testSpec(11)); ok || err != nil {
		t.Fatalf("Execute while draining = (ok=%v, err=%v), want local fallback", ok, err)
	}
}

func TestCoordinatorCloseStopsGoroutines(t *testing.T) {
	before := runtime.NumGoroutine()
	for i := 0; i < 5; i++ {
		c := NewCoordinator(CoordinatorConfig{LeaseTTL: 20 * time.Millisecond})
		c.Register(RegisterRequest{})
		if err := c.Drain(context.Background()); err != nil {
			t.Fatal(err)
		}
		c.Close()
		c.Close() // idempotent
	}
	deadline := time.Now().Add(5 * time.Second)
	for {
		runtime.GC()
		if runtime.NumGoroutine() <= before {
			return
		}
		if time.Now().After(deadline) {
			t.Fatalf("goroutines: %d before, %d after coordinator lifecycles", before, runtime.NumGoroutine())
		}
		time.Sleep(10 * time.Millisecond)
	}
}
