package cluster

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/metrics"
	"repro/internal/service"
	"repro/internal/sweep"
	"repro/internal/wire"
)

// e2eGrid is the sweep every fleet size runs: 8 cells, each a few dozen
// milliseconds, so a 3-worker fleet genuinely interleaves and the
// killed worker dies while peers still hold work.
const e2eGrid = `{"n": [24, 30], "query": ["min", "count"], "loss_rate": [0, 0.1], "trials": 6, "seed": 99}`

// runClusteredSweep stands up a full server stack (job manager, sweep
// orchestrator, coordinator, streaming transport, HTTP mux) plus an
// in-process worker fleet, runs e2eGrid through it, and returns the CSV
// export and the stack's metrics registry. Workers stream units over
// the wire transport, exactly as vmat-worker does by default. killOne
// crashes the first worker fail-stop on its first lease — no
// completion, no deregistration — so its lease must expire and be
// reassigned. shardTrials > 0 splits every cell into trial-range units.
// No store is configured: every cell executes, so the CSV reflects this
// run alone.
func runClusteredSweep(t *testing.T, nWorkers int, killOne bool, shardTrials int) ([]byte, *metrics.Registry) {
	t.Helper()
	reg := metrics.New()
	coord := NewCoordinator(CoordinatorConfig{
		LeaseTTL:          400 * time.Millisecond,
		HeartbeatInterval: 50 * time.Millisecond,
		WorkerTTL:         time.Hour, // the killed worker must not free its lease by expiring
		ShardTrials:       shardTrials,
		Metrics:           reg,
	})
	defer coord.Close()
	if _, err := coord.StartWire("127.0.0.1:0"); err != nil {
		t.Fatal(err)
	}
	mgr := service.New(service.Config{Metrics: reg, Cluster: coord, Workers: 4, Version: "e2e"})
	swm := sweep.NewManager(sweep.Config{Service: mgr, Metrics: reg, Version: "e2e"})
	mux := http.NewServeMux()
	mux.Handle("/", service.NewHandler(mgr, "e2e", coord, nil))
	sweep.Register(mux, swm)
	RegisterHTTP(mux, coord)
	srv := httptest.NewServer(mux)
	defer srv.Close()

	// With cluster mode on and nobody registered, /healthz must say so.
	if status := healthzStatus(t, srv.URL); status != "degraded" {
		t.Fatalf("healthz with empty fleet = %q, want degraded", status)
	}

	ctx, cancelWorkers := context.WithCancel(context.Background())
	defer cancelWorkers()
	var runDones []chan error
	for i := 0; i < nWorkers; i++ {
		cfg := WorkerConfig{Server: srv.URL, Name: fmt.Sprintf("e2e-%d", i), Poll: fastPoll(), Reconnect: fastReconnect()}
		if killOne && i == 0 {
			abort := make(chan struct{})
			var once sync.Once
			cfg.Abort = abort
			cfg.OnLease = func(Unit) { once.Do(func() { close(abort) }) }
		}
		w := NewWorker(cfg)
		done := make(chan error, 1)
		go func() { done <- w.Run(ctx) }()
		runDones = append(runDones, done)
	}
	if nWorkers > 0 {
		waitConnected(t, coord, nWorkers)
		if status := healthzStatus(t, srv.URL); status != "ok" {
			t.Fatalf("healthz with %d workers = %q, want ok", nWorkers, status)
		}
	}

	// Submit the sweep over the wire and poll it to completion.
	resp, err := http.Post(srv.URL+"/v1/sweeps", "application/json", strings.NewReader(e2eGrid))
	if err != nil {
		t.Fatal(err)
	}
	var submitted struct {
		ID string `json:"id"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&submitted); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("sweep submit = %d", resp.StatusCode)
	}
	deadline := time.Now().Add(2 * time.Minute)
	for {
		if time.Now().After(deadline) {
			t.Fatalf("sweep %s did not finish; fleet=%d kill=%v status=%+v",
				submitted.ID, nWorkers, killOne, coord.WorkersStatus())
		}
		var view struct {
			Status string `json:"status"`
		}
		getJSON(t, srv.URL+"/v1/sweeps/"+submitted.ID, &view)
		if view.Status == "done" {
			break
		}
		if view.Status != "running" {
			t.Fatalf("sweep ended %q, want done", view.Status)
		}
		time.Sleep(20 * time.Millisecond)
	}

	csvResp, err := http.Get(srv.URL + "/v1/sweeps/" + submitted.ID + "/results?format=csv")
	if err != nil {
		t.Fatal(err)
	}
	csv, err := io.ReadAll(csvResp.Body)
	csvResp.Body.Close()
	if err != nil {
		t.Fatal(err)
	}

	cancelWorkers()
	for i, done := range runDones {
		err := <-done
		if killOne && i == 0 {
			if err != ErrAborted {
				t.Fatalf("killed worker run = %v, want ErrAborted", err)
			}
		} else if err != nil {
			t.Fatalf("worker %d run = %v", i, err)
		}
	}
	if err := coord.Drain(context.Background()); err != nil {
		t.Fatalf("coordinator drain: %v", err)
	}
	if err := swm.Drain(context.Background()); err != nil {
		t.Fatalf("sweep drain: %v", err)
	}
	if err := mgr.Drain(context.Background()); err != nil {
		t.Fatalf("service drain: %v", err)
	}
	return csv, reg
}

func healthzStatus(t *testing.T, base string) string {
	t.Helper()
	var body struct {
		Status string `json:"status"`
	}
	getJSON(t, base+"/healthz", &body)
	return body.Status
}

func getJSON(t *testing.T, url string, v any) {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET %s = %d", url, resp.StatusCode)
	}
	if err := json.NewDecoder(resp.Body).Decode(v); err != nil {
		t.Fatal(err)
	}
}

// TestSweepBitIdenticalAcrossFleets is the tentpole's end-to-end
// contract: the same sweep exports a byte-identical CSV whether it runs
// on the local pool (0 workers), one worker, or three workers with one
// killed fail-stop mid-sweep — and the kill case provably exercised the
// lease-reassignment path.
func TestSweepBitIdenticalAcrossFleets(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-fleet e2e sweep is not short")
	}
	local, localReg := runClusteredSweep(t, 0, false, 0)
	if !bytes.Contains(local, []byte("\n")) || len(local) == 0 {
		t.Fatalf("local CSV is empty")
	}
	// 0 workers: every cell fell back to the local pool.
	if v := localReg.Counter(service.MetricJobsExecuted + `{path="local"}`).Value(); v == 0 {
		t.Fatal("0-worker sweep executed nothing locally")
	}
	if v := localReg.Counter(service.MetricJobsExecuted + `{path="cluster"}`).Value(); v != 0 {
		t.Fatalf("0-worker sweep executed %d units on a cluster it does not have", v)
	}

	one, oneReg := runClusteredSweep(t, 1, false, 0)
	if !bytes.Equal(local, one) {
		t.Fatalf("1-worker CSV differs from local CSV:\nlocal:\n%s\nworker:\n%s", local, one)
	}
	if v := oneReg.Counter(service.MetricJobsExecuted + `{path="cluster"}`).Value(); v == 0 {
		t.Fatal("1-worker sweep never dispatched to the cluster")
	}

	killed, killedReg := runClusteredSweep(t, 3, true, 0)
	if !bytes.Equal(local, killed) {
		t.Fatalf("kill-case CSV differs from local CSV:\nlocal:\n%s\nkilled:\n%s", local, killed)
	}
	if v := killedReg.Counter(MetricLeasesReassigned).Value(); v == 0 {
		t.Fatal("killing a worker mid-sweep produced no lease reassignment")
	}
	if v := killedReg.Counter(MetricLeasesExpired).Value(); v == 0 {
		t.Fatal("killed worker's lease never expired")
	}
}

// TestShardedSweepBitIdenticalWithKilledWorker is the sharded fabric's
// end-to-end contract: split every cell into trial-range shards, spread
// them over a 4-worker streaming fleet, kill one worker fail-stop
// mid-shard — and the merged CSV must still be byte-identical to the
// 0-worker local run, with the reassignment path provably exercised.
func TestShardedSweepBitIdenticalWithKilledWorker(t *testing.T) {
	if testing.Short() {
		t.Skip("sharded e2e sweep is not short")
	}
	local, _ := runClusteredSweep(t, 0, false, 0)
	if len(local) == 0 {
		t.Fatal("local CSV is empty")
	}
	sharded, reg := runClusteredSweep(t, 4, true, 2)
	if !bytes.Equal(local, sharded) {
		t.Fatalf("sharded kill-case CSV differs from local CSV:\nlocal:\n%s\nsharded:\n%s", local, sharded)
	}
	if v := reg.Counter(MetricShardsPlanned).Value(); v == 0 {
		t.Fatal("sharded sweep planned no shards")
	}
	if v := reg.Counter(MetricShardsMerged).Value(); v == 0 {
		t.Fatal("sharded sweep merged no shards")
	}
	if v := reg.Counter(MetricLeasesReassigned).Value(); v == 0 {
		t.Fatal("killing a worker mid-shard produced no lease reassignment")
	}
	if v := reg.Counter(wire.MetricFramesSent).Value(); v == 0 {
		t.Fatal("sharded sweep never used the streaming transport")
	}
}
