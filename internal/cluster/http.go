package cluster

import (
	"encoding/json"
	"errors"
	"net/http"

	"repro/internal/service"
)

// maxCompleteBytes bounds a result upload. A spec may run up to 100k
// trials and each row is a few hundred bytes of JSON, so this is
// generous without being unbounded.
const maxCompleteBytes = 64 << 20

// maxControlBytes bounds the small control-plane bodies.
const maxControlBytes = 1 << 16

// RegisterHTTP mounts the cluster wire protocol on mux, instrumented
// into the coordinator's registry with the same per-route counters and
// histograms as the job and sweep APIs:
//
//	POST /v1/cluster/register    join the fleet -> worker_id + cadence
//	POST /v1/cluster/lease       claim one unit (unit:null when idle)
//	POST /v1/cluster/heartbeat   refresh liveness, extend held leases
//	POST /v1/cluster/complete    report a finished unit (CRC + key checked)
//	POST /v1/cluster/deregister  leave the fleet gracefully
//
// Unknown workers get 404 and re-register; malformed bodies get 400.
func RegisterHTTP(mux *http.ServeMux, c *Coordinator) {
	h := &api{c: c}
	reg := c.Registry()
	mux.HandleFunc("POST /v1/cluster/register", service.Instrument(reg, "POST /v1/cluster/register", h.register))
	mux.HandleFunc("POST /v1/cluster/lease", service.Instrument(reg, "POST /v1/cluster/lease", h.lease))
	mux.HandleFunc("POST /v1/cluster/heartbeat", service.Instrument(reg, "POST /v1/cluster/heartbeat", h.heartbeat))
	mux.HandleFunc("POST /v1/cluster/complete", service.Instrument(reg, "POST /v1/cluster/complete", h.complete))
	mux.HandleFunc("POST /v1/cluster/deregister", service.Instrument(reg, "POST /v1/cluster/deregister", h.deregister))
}

type api struct {
	c *Coordinator
}

func writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	_ = json.NewEncoder(w).Encode(v)
}

func writeError(w http.ResponseWriter, code int, msg string) {
	writeJSON(w, code, map[string]string{"error": msg})
}

// decode parses a JSON body with the repository's strict convention:
// unknown fields are a 400, not a silently dropped key.
func decode(w http.ResponseWriter, r *http.Request, maxBytes int64, v any) bool {
	dec := json.NewDecoder(http.MaxBytesReader(w, r.Body, maxBytes))
	dec.DisallowUnknownFields()
	if err := dec.Decode(v); err != nil {
		writeError(w, http.StatusBadRequest, "invalid request: "+err.Error())
		return false
	}
	return true
}

func (h *api) register(w http.ResponseWriter, r *http.Request) {
	var req RegisterRequest
	if !decode(w, r, maxControlBytes, &req) {
		return
	}
	writeJSON(w, http.StatusOK, h.c.Register(req))
}

func (h *api) lease(w http.ResponseWriter, r *http.Request) {
	var req LeaseRequest
	if !decode(w, r, maxControlBytes, &req) {
		return
	}
	unit, ttl, err := h.c.Lease(req.WorkerID)
	if errors.Is(err, ErrUnknownWorker) {
		writeError(w, http.StatusNotFound, err.Error())
		return
	}
	writeJSON(w, http.StatusOK, LeaseResponse{Unit: unit, LeaseTTL: ttl})
}

func (h *api) heartbeat(w http.ResponseWriter, r *http.Request) {
	var req HeartbeatRequest
	if !decode(w, r, maxControlBytes, &req) {
		return
	}
	if err := h.c.Heartbeat(req); errors.Is(err, ErrUnknownWorker) {
		writeError(w, http.StatusNotFound, err.Error())
		return
	}
	writeJSON(w, http.StatusOK, map[string]string{"status": "ok"})
}

func (h *api) complete(w http.ResponseWriter, r *http.Request) {
	var req CompleteRequest
	if !decode(w, r, maxCompleteBytes, &req) {
		return
	}
	if err := h.c.Complete(req); err != nil {
		writeError(w, http.StatusInternalServerError, err.Error())
		return
	}
	writeJSON(w, http.StatusOK, map[string]string{"status": "ok"})
}

func (h *api) deregister(w http.ResponseWriter, r *http.Request) {
	var req DeregisterRequest
	if !decode(w, r, maxControlBytes, &req) {
		return
	}
	if err := h.c.Deregister(req.WorkerID); errors.Is(err, ErrUnknownWorker) {
		writeError(w, http.StatusNotFound, err.Error())
		return
	}
	writeJSON(w, http.StatusOK, map[string]string{"status": "ok"})
}
