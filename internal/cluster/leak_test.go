package cluster

import (
	"context"
	"runtime"
	"testing"
	"time"

	"repro/internal/metrics"
)

// TestWorkerReconnectLeaksNoGoroutines is the regression test for the
// reconnect path's goroutine hygiene: every wire session spawns a
// reader and a heartbeat loop, and a worker that survives repeated
// coordinator restarts must shed both with each dead session. After
// several kill/restart cycles and a graceful drain, the process must
// settle back to its pre-test goroutine count — a leak of even one
// goroutine per session compounds forever in a long-lived fleet
// riding out a flapping control plane.
func TestWorkerReconnectLeaksNoGoroutines(t *testing.T) {
	if testing.Short() {
		t.Skip("repeated restart cycles are slow; skipped in -short")
	}
	settle := func() int {
		// Two GC cycles give exiting goroutines time to be reaped before
		// the count is read.
		runtime.GC()
		runtime.GC()
		time.Sleep(20 * time.Millisecond)
		return runtime.NumGoroutine()
	}
	baseline := settle()

	const restarts = 4
	stack := startStack(t, "127.0.0.1:0", metrics.New())
	w := NewWorker(WorkerConfig{
		Server: "http://" + stack.addr, Name: "leakcheck",
		Poll: fastPoll(), Reconnect: fastReconnect(),
	})
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	runDone := make(chan error, 1)
	go func() { runDone <- w.Run(ctx) }()
	waitConnected(t, stack.c, 1)
	waitWired(t, stack.c, 1)

	for i := 0; i < restarts; i++ {
		stack.kill()
		time.Sleep(20 * time.Millisecond) // let the worker's dials bounce
		stack = startStack(t, stack.addr, metrics.New())
		waitConnected(t, stack.c, 1)
		waitWired(t, stack.c, 1)
		// Each incarnation gets real work, so the sessions being leaked
		// (or not) are sessions that actually executed units.
		if _, ok, err := stack.c.Execute(context.Background(), testSpec(uint64(80+i))); !ok || err != nil {
			t.Fatalf("Execute after restart %d = (ok=%v, err=%v)", i+1, ok, err)
		}
	}
	if got := w.Reconnects(); got < restarts {
		t.Fatalf("worker reports %d reconnects across %d restarts", got, restarts)
	}

	cancel()
	if err := <-runDone; err != nil {
		t.Fatalf("worker run after drain: %v", err)
	}
	stack.kill()

	// Dead sessions unwind asynchronously; poll for the count to settle.
	deadline := time.Now().Add(10 * time.Second)
	slack := 3 // test runtime background goroutines fluctuate a little
	for {
		if n := settle(); n <= baseline+slack {
			return
		}
		if time.Now().After(deadline) {
			buf := make([]byte, 1<<20)
			n := runtime.NumGoroutine()
			t.Fatalf("goroutines leaked across %d reconnects: baseline %d, now %d\n%s",
				restarts, baseline, n, buf[:runtime.Stack(buf, true)])
		}
		time.Sleep(50 * time.Millisecond)
	}
}
