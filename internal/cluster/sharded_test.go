package cluster

import (
	"context"
	"encoding/json"
	"hash/crc32"
	"reflect"
	"testing"
	"time"

	"repro/internal/experiments"
	"repro/internal/metrics"
	"repro/internal/store"
)

// shardSpec is testSpec with a controllable trial count, so the
// planner produces a known number of shards.
func shardSpec(seed uint64, trials int) experiments.ScenarioConfig {
	spec := experiments.ScenarioConfig{
		N: 12, Topology: "line", Query: "min", Attack: "none",
		Synopses: 8, Trials: trials, Seed: seed,
	}
	spec.Normalize()
	return spec
}

// completeShardUnit executes a unit via its own Run (the trial range
// when sharded) and reports a verified result.
func completeShardUnit(t *testing.T, c *Coordinator, workerID string, unit Unit) {
	t.Helper()
	rows, err := unit.Run()
	if err != nil {
		t.Fatalf("run unit %s: %v", unit.ID, err)
	}
	raw, err := json.Marshal(rows)
	if err != nil {
		t.Fatal(err)
	}
	if err := c.Complete(CompleteRequest{
		WorkerID: workerID, UnitID: unit.ID, Key: unit.Key,
		Rows: raw, CRC32: crc32.ChecksumIEEE(raw),
	}); err != nil {
		t.Fatalf("complete %s: %v", unit.ID, err)
	}
}

// A sharded Execute plans trial-range units that assemble — in trial
// order — into exactly the rows a whole local run produces, no matter
// what order the shards complete in.
func TestShardedExecuteMergesOutOfOrder(t *testing.T) {
	reg := metrics.New()
	c := newTestCoordinator(t, CoordinatorConfig{ShardTrials: 2, WorkerTTL: time.Hour, Metrics: reg})
	w := c.Register(RegisterRequest{Name: "shardy"})

	spec := shardSpec(50, 6)
	res := executeAsync(c, context.Background(), spec)
	units := make([]Unit, 3)
	for i := range units {
		units[i] = leaseUnit(t, c, w.WorkerID)
		if !units[i].Sharded() {
			t.Fatalf("unit %d is not a shard: %+v", i, units[i])
		}
		if units[i].Parent == "" || units[i].Key == units[i].Parent {
			t.Fatalf("shard %d key/parent malformed: %+v", i, units[i])
		}
	}
	covered := 0
	for _, u := range units {
		covered += u.End - u.Start
	}
	if covered != spec.Trials {
		t.Fatalf("shards cover %d trials, want %d", covered, spec.Trials)
	}
	// Complete in reverse: assembly must not depend on arrival order.
	for i := len(units) - 1; i >= 0; i-- {
		completeShardUnit(t, c, w.WorkerID, units[i])
	}

	r := <-res
	if !r.ok || r.err != nil {
		t.Fatalf("sharded Execute = (ok=%v, err=%v)", r.ok, r.err)
	}
	want, err := experiments.RunScenario(spec)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(r.rows, want) {
		t.Fatal("assembled rows differ from a whole local run")
	}
	if v := reg.Counter(MetricShardsPlanned).Value(); v != 3 {
		t.Fatalf("shards planned = %d, want 3", v)
	}
	if v := reg.Counter(MetricShardsMerged).Value(); v != 3 {
		t.Fatalf("shards merged = %d, want 3", v)
	}
	if v := reg.Counter(MetricScenariosAssembled).Value(); v != 1 {
		t.Fatalf("scenarios assembled = %d, want 1", v)
	}
	if u, _, err := c.Lease(w.WorkerID); err != nil || u != nil {
		t.Fatalf("lease after assembly = (%v, %v), want no work", u, err)
	}
}

// One shard failing deterministically fails the whole scenario — the
// error surfaces from Execute as an owned failure and the sibling
// shards are withdrawn.
func TestShardErrorFailsWholeScenario(t *testing.T) {
	c := newTestCoordinator(t, CoordinatorConfig{ShardTrials: 2, WorkerTTL: time.Hour})
	w := c.Register(RegisterRequest{})

	res := executeAsync(c, context.Background(), shardSpec(51, 6))
	u := leaseUnit(t, c, w.WorkerID)
	if err := c.Complete(CompleteRequest{
		WorkerID: w.WorkerID, UnitID: u.ID, Key: u.Key,
		Error: "synthetic shard failure",
	}); err != nil {
		t.Fatal(err)
	}
	r := <-res
	if !r.ok || r.err == nil {
		t.Fatalf("Execute = (ok=%v, err=%v), want owned failure", r.ok, r.err)
	}
	if u2, _, err := c.Lease(w.WorkerID); err != nil || u2 != nil {
		t.Fatalf("sibling shard still leasable after group failure: (%v, %v)", u2, err)
	}
}

// A shard that exhausts its lease budget abandons the whole scenario:
// the waiting Execute falls back to the local pool and the sibling
// shards are withdrawn (a scenario missing one shard can never
// assemble).
func TestShardBudgetExhaustionAbandonsWholeScenario(t *testing.T) {
	reg := metrics.New()
	c := newTestCoordinator(t, CoordinatorConfig{
		ShardTrials: 2,
		LeaseTTL:    20 * time.Millisecond,
		WorkerTTL:   time.Hour,
		MaxAttempts: 1,
		Metrics:     reg,
	})
	w := c.Register(RegisterRequest{Name: "crashy"})

	res := executeAsync(c, context.Background(), shardSpec(52, 4))
	leaseUnit(t, c, w.WorkerID) // never heartbeat; the only permitted attempt
	r := <-res
	if r.ok || r.err != nil {
		t.Fatalf("Execute after shard budget exhaustion = (ok=%v, err=%v), want local fallback", r.ok, r.err)
	}
	if v := reg.Counter(MetricUnitsAbandoned).Value(); v != 1 {
		t.Fatalf("abandoned groups = %d, want 1", v)
	}
	if u, _, err := c.Lease(w.WorkerID); err != nil || u != nil {
		t.Fatalf("sibling shard survived group abandonment: (%v, %v)", u, err)
	}
}

// The store sees a sharded scenario exactly once, assembled, under the
// parent scenario's address — never under a shard's address, never
// partially.
func TestShardedStoreWriteBackUnderParentKey(t *testing.T) {
	st, err := store.Open(t.TempDir(), store.Config{})
	if err != nil {
		t.Fatal(err)
	}
	defer st.Close()
	c := newTestCoordinator(t, CoordinatorConfig{ShardTrials: 2, WorkerTTL: time.Hour, Store: st})
	w := c.Register(RegisterRequest{})

	spec := shardSpec(53, 4)
	res := executeAsync(c, context.Background(), spec)
	first := leaseUnit(t, c, w.WorkerID)
	completeShardUnit(t, c, w.WorkerID, first)
	// Half-assembled: nothing may be in the store yet.
	if rows, okS, err := st.GetScenario(spec); okS || err != nil || rows != nil {
		t.Fatalf("store has a partial assembly: (%v, %v, %v)", rows, okS, err)
	}
	second := leaseUnit(t, c, w.WorkerID)
	completeShardUnit(t, c, w.WorkerID, second)
	r := <-res
	if !r.ok || r.err != nil {
		t.Fatalf("Execute = (ok=%v, err=%v)", r.ok, r.err)
	}

	got, okS, err := st.GetScenario(spec)
	if err != nil || !okS {
		t.Fatalf("assembled scenario missing from store: (ok=%v, err=%v)", okS, err)
	}
	if !reflect.DeepEqual(got, r.rows) {
		t.Fatal("store rows differ from the assembled Execute rows")
	}
	for _, u := range []Unit{first, second} {
		if st.Has(u.Key) {
			t.Fatalf("shard key %.12s leaked into the store", u.Key)
		}
	}
}
