package cluster

import (
	"encoding/json"
	"errors"
	"fmt"
	"net"
	"sync"
	"time"

	"repro/internal/metrics"
	"repro/internal/shard"
	"repro/internal/wire"
)

// wireServer is the coordinator's side of the streaming transport: a
// TCP listener accepting one persistent conn per registered worker.
// Each conn runs two goroutines — a reader dispatching Want / Complete
// / Heartbeat / Bye frames into the coordinator, and a feeder pushing
// Grant batches whenever the worker has advertised demand and the
// queue has work. Grants are demand-driven (the worker says how many
// units it can hold) and push-based (Execute wakes the feeders), so an
// idle fleet costs zero round-trips and a submitted scenario starts on
// every worker within one scheduler wake.
type wireServer struct {
	c    *Coordinator
	ln   net.Listener
	addr string // advertised host:port

	framesIn  *metrics.Counter
	framesOut *metrics.Counter
	frameErrs *metrics.Counter
	reconn    *metrics.Counter
	conns     *metrics.Gauge

	mu      sync.Mutex
	cond    *sync.Cond // wakes feeders on demand or work changes
	workGen uint64     // bumped by wake(); feeders re-lease when it moves
	open    map[*wireConn]struct{}
	seen    map[string]bool // worker IDs that have had a conn (reconnect metric)
	closed  bool

	wg sync.WaitGroup
}

// wireConn is one worker's persistent conn. demand and dead are
// guarded by the server's mu (the feeder waits on the server cond).
type wireConn struct {
	wc       *wire.Conn
	workerID string
	demand   int
	dead     bool
}

// handshakeTimeout bounds how long an accepted conn may stall before
// its Hello arrives.
const handshakeTimeout = 10 * time.Second

// StartWire hosts the streaming transport on addr (host:port, :0 picks
// a free port) and returns the address workers should dial. Subsequent
// Register responses advertise it. Call once, before workers register;
// Close tears it down.
func (c *Coordinator) StartWire(addr string) (string, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return "", fmt.Errorf("cluster: wire listener: %w", err)
	}
	s := &wireServer{
		c:         c,
		ln:        ln,
		addr:      ln.Addr().String(),
		framesIn:  c.reg.Counter(wire.MetricFramesReceived),
		framesOut: c.reg.Counter(wire.MetricFramesSent),
		frameErrs: c.reg.Counter(wire.MetricFrameErrors),
		reconn:    c.reg.Counter(wire.MetricReconnects),
		conns:     c.reg.Gauge(wire.MetricConnsActive),
		open:      map[*wireConn]struct{}{},
		seen:      map[string]bool{},
	}
	s.cond = sync.NewCond(&s.mu)
	c.mu.Lock()
	if c.wire != nil {
		c.mu.Unlock()
		ln.Close()
		return "", errors.New("cluster: wire transport already started")
	}
	c.wire = s
	c.mu.Unlock()
	s.wg.Add(1)
	go s.acceptLoop()
	c.log("cluster: streaming transport listening on %s", s.addr)
	return s.addr, nil
}

// wake bumps the work generation and broadcasts to every feeder.
func (s *wireServer) wake() {
	s.mu.Lock()
	s.workGen++
	s.cond.Broadcast()
	s.mu.Unlock()
}

// connCount reports live conns for /healthz.
func (s *wireServer) connCount() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.open)
}

// close stops the listener and every conn, then waits for their
// goroutines.
func (s *wireServer) close() {
	s.mu.Lock()
	s.closed = true
	for cn := range s.open {
		cn.dead = true
		cn.wc.Close()
	}
	s.cond.Broadcast()
	s.mu.Unlock()
	s.ln.Close()
	s.wg.Wait()
}

func (s *wireServer) acceptLoop() {
	defer s.wg.Done()
	for {
		nc, err := s.ln.Accept()
		if err != nil {
			return // listener closed
		}
		s.wg.Add(1)
		go s.serveConn(wire.NewConn(nc))
	}
}

// serveConn runs one conn's handshake, feeder, and read loop.
func (s *wireServer) serveConn(wc *wire.Conn) {
	defer s.wg.Done()
	defer wc.Close()

	wc.SetReadDeadline(time.Now().Add(handshakeTimeout))
	t, payload, err := wc.Recv()
	if err != nil || t != wire.Hello {
		s.frameErrs.Inc()
		return
	}
	var hello helloPayload
	if err := json.Unmarshal(payload, &hello); err != nil {
		s.frameErrs.Inc()
		return
	}
	if !s.c.workerKnown(hello.WorkerID) {
		// Reject but tell the worker why: it re-registers over HTTP and
		// comes back with a fresh identity.
		ack, _ := json.Marshal(helloAckPayload{Error: "unknown worker"})
		wc.Send(wire.HelloAck, ack)
		return
	}
	ack, _ := json.Marshal(helloAckPayload{
		OK:        true,
		LeaseTTL:  s.c.cfg.LeaseTTL,
		Heartbeat: s.c.cfg.HeartbeatInterval,
	})
	if err := wc.Send(wire.HelloAck, ack); err != nil {
		return
	}

	cn := &wireConn{wc: wc, workerID: hello.WorkerID}
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return
	}
	if s.seen[cn.workerID] {
		s.reconn.Inc() // same identity, new conn: a reconnect survived
	}
	s.seen[cn.workerID] = true
	s.open[cn] = struct{}{}
	s.conns.Set(int64(len(s.open)))
	s.mu.Unlock()
	defer func() {
		s.mu.Lock()
		cn.dead = true
		delete(s.open, cn)
		s.conns.Set(int64(len(s.open)))
		s.cond.Broadcast() // release the feeder
		s.mu.Unlock()
	}()

	s.wg.Add(1)
	go s.feed(cn)
	s.readLoop(cn)
}

// readLoop dispatches the worker's frames until the conn dies. Every
// frame refreshes the worker's liveness (the piggybacked heartbeat);
// a framing violation closes the conn — the worker reconnects and
// re-syncs, exactly like the journal truncates a torn tail.
func (s *wireServer) readLoop(cn *wireConn) {
	for {
		cn.wc.SetReadDeadline(time.Now().Add(s.c.cfg.WorkerTTL))
		t, payload, err := cn.wc.Recv()
		if err != nil {
			if errors.Is(err, wire.ErrBadFrame) {
				s.frameErrs.Inc()
				s.c.log("cluster: closing wire conn of %s: %v", cn.workerID, err)
			}
			return
		}
		s.framesIn.Inc()
		s.c.touchWorker(cn.workerID)
		switch t {
		case wire.Want:
			var want wantPayload
			if err := json.Unmarshal(payload, &want); err != nil || want.N < 0 || want.N > 1<<16 {
				s.frameErrs.Inc()
				return
			}
			s.mu.Lock()
			cn.demand += want.N
			s.cond.Broadcast()
			s.mu.Unlock()
		case wire.Heartbeat:
			var req HeartbeatRequest
			if err := json.Unmarshal(payload, &req); err != nil {
				s.frameErrs.Inc()
				return
			}
			req.WorkerID = cn.workerID // the conn's identity, not the payload's
			if err := s.c.Heartbeat(req); errors.Is(err, ErrUnknownWorker) {
				return // expired under us; drop the conn so the worker re-registers
			}
		case wire.Complete:
			var req CompleteRequest
			if err := json.Unmarshal(payload, &req); err != nil {
				s.frameErrs.Inc()
				return
			}
			req.WorkerID = cn.workerID
			s.c.Complete(req) // always nil for in-process coordinators
		case wire.Bye:
			s.c.Deregister(cn.workerID)
			return
		default:
			// Unknown frame types are ignored for forward compatibility.
		}
	}
}

// feed pushes Grant batches to one conn whenever it has demand and the
// queue has work. It leases outside the server lock (Lease takes the
// coordinator lock) and re-checks the work generation around the
// attempt so a unit enqueued between "queue empty" and "wait" cannot
// be missed.
func (s *wireServer) feed(cn *wireConn) {
	defer s.wg.Done()
	for {
		s.mu.Lock()
		for cn.demand == 0 && !cn.dead && !s.closed {
			s.cond.Wait()
		}
		if cn.dead || s.closed {
			s.mu.Unlock()
			return
		}
		want := cn.demand
		gen := s.workGen
		s.mu.Unlock()

		batch := make([]Unit, 0, want)
		for len(batch) < want {
			u, _, err := s.c.Lease(cn.workerID)
			if err != nil {
				cn.wc.Close() // unknown worker: force a re-register
				return
			}
			if u == nil {
				break
			}
			batch = append(batch, *u)
		}
		if len(batch) == 0 {
			// No work right now: sleep until the generation moves (new
			// units, a requeue) or the conn dies.
			s.mu.Lock()
			for s.workGen == gen && !cn.dead && !s.closed {
				s.cond.Wait()
			}
			s.mu.Unlock()
			continue
		}
		payload, err := shard.EncodeBatch(batch)
		if err != nil {
			s.c.log("cluster: encoding grant for %s failed: %v", cn.workerID, err)
			cn.wc.Close()
			return
		}
		if err := cn.wc.Send(wire.Grant, payload); err != nil {
			// Conn died with leases granted; the lease TTL reclaims them.
			return
		}
		s.framesOut.Inc()
		s.mu.Lock()
		cn.demand -= len(batch)
		if cn.demand < 0 {
			cn.demand = 0
		}
		s.mu.Unlock()
	}
}
