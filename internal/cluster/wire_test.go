package cluster

import (
	"context"
	"encoding/json"
	"net"
	"net/http"
	"reflect"
	"testing"
	"time"

	"repro/internal/backoff"
	"repro/internal/experiments"
	"repro/internal/metrics"
	"repro/internal/wire"
)

// fastReconnect keeps restart tests quick while still exercising the
// jittered schedule.
func fastReconnect() backoff.Policy {
	return backoff.Policy{Base: 5 * time.Millisecond, Max: 50 * time.Millisecond, Jitter: 0.3}
}

// waitWired blocks until n workers hold a live streaming conn.
func waitWired(t *testing.T, c *Coordinator, n int) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for c.WorkersStatus().WireConnected < n {
		if time.Now().After(deadline) {
			t.Fatalf("fleet never reached %d wire conns: %+v", n, c.WorkersStatus())
		}
		time.Sleep(2 * time.Millisecond)
	}
}

// A worker offered the streaming transport executes sharded units over
// it — batched grants in, streamed completions out — and the results
// match a whole local run exactly.
func TestWorkerExecutesUnitsOverWire(t *testing.T) {
	reg := metrics.New()
	cfg := fastCadence()
	cfg.Metrics = reg
	cfg.ShardTrials = 2
	c, srv := newTestPlane(t, cfg)
	if _, err := c.StartWire("127.0.0.1:0"); err != nil {
		t.Fatal(err)
	}

	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	w := NewWorker(WorkerConfig{Server: srv.URL, Name: "wired", Poll: fastPoll(), Reconnect: fastReconnect()})
	runDone := make(chan error, 1)
	go func() { runDone <- w.Run(ctx) }()
	waitConnected(t, c, 1)
	waitWired(t, c, 1)

	for i := 0; i < 3; i++ {
		spec := shardSpec(uint64(60+i), 4)
		rows, ok, err := c.Execute(context.Background(), spec)
		if !ok || err != nil {
			t.Fatalf("Execute %d over wire = (ok=%v, err=%v)", i, ok, err)
		}
		want, _ := experiments.RunScenario(spec)
		if !reflect.DeepEqual(rows, want) {
			t.Fatalf("unit %d: wire rows differ from local run", i)
		}
	}
	if got := w.Completed(); got != 6 { // 3 scenarios × 2 shards each
		t.Fatalf("worker completed %d units, want 6", got)
	}
	if v := reg.Counter(wire.MetricFramesSent).Value(); v == 0 {
		t.Fatal("no frames sent by the wire server")
	}
	if v := reg.Counter(wire.MetricFramesReceived).Value(); v == 0 {
		t.Fatal("no frames received by the wire server")
	}
	if v := reg.Counter(MetricScenariosAssembled).Value(); v != 3 {
		t.Fatalf("scenarios assembled = %d, want 3", v)
	}

	cancel()
	if err := <-runDone; err != nil {
		t.Fatalf("worker run after graceful cancel: %v", err)
	}
	if ws := c.WorkersStatus(); ws.Connected != 0 {
		t.Fatalf("worker did not deregister on drain: %+v", ws)
	}
	deadline := time.Now().Add(5 * time.Second)
	for c.WorkersStatus().WireConnected != 0 {
		if time.Now().After(deadline) {
			t.Fatalf("wire conn survived the worker's exit: %+v", c.WorkersStatus())
		}
		time.Sleep(2 * time.Millisecond)
	}
}

// restartableStack is a coordinator + HTTP API + streaming transport
// whose HTTP address can be re-bound after a kill, simulating a
// vmat-server restart.
type restartableStack struct {
	c    *Coordinator
	srv  *http.Server
	addr string
}

func startStack(t *testing.T, addr string, reg *metrics.Registry) *restartableStack {
	t.Helper()
	cfg := fastCadence()
	cfg.Metrics = reg
	c := NewCoordinator(cfg)
	if _, err := c.StartWire("127.0.0.1:0"); err != nil {
		t.Fatal(err)
	}
	mux := http.NewServeMux()
	RegisterHTTP(mux, c)
	srv := &http.Server{Handler: mux}
	// The restarted listener may race the dying one's close; retry the
	// bind briefly like an init system would.
	var ln net.Listener
	deadline := time.Now().Add(5 * time.Second)
	for {
		var err error
		ln, err = net.Listen("tcp", addr)
		if err == nil {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("rebind %s: %v", addr, err)
		}
		time.Sleep(5 * time.Millisecond)
	}
	go srv.Serve(ln)
	return &restartableStack{c: c, srv: srv, addr: ln.Addr().String()}
}

func (s *restartableStack) kill() {
	s.srv.Close()
	s.c.Close()
}

// The resilience contract: kill the server outright — listener, wire
// transport, coordinator state, worker table, everything — restart it
// on the same HTTP address, and a running worker must rejoin (fresh
// registration, fresh wire conn to the NEW transport port) and execute
// work for the new coordinator without being restarted itself.
func TestWorkerSurvivesCoordinatorRestart(t *testing.T) {
	first := startStack(t, "127.0.0.1:0", metrics.New())
	w := NewWorker(WorkerConfig{
		Server: "http://" + first.addr, Name: "survivor",
		Poll: fastPoll(), Reconnect: fastReconnect(),
	})
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	runDone := make(chan error, 1)
	go func() { runDone <- w.Run(ctx) }()
	waitConnected(t, first.c, 1)
	waitWired(t, first.c, 1)

	spec := shardSpec(70, 4)
	want, _ := experiments.RunScenario(spec)
	if rows, ok, err := first.c.Execute(context.Background(), spec); !ok || err != nil || !reflect.DeepEqual(rows, want) {
		t.Fatalf("Execute before restart = (ok=%v, err=%v)", ok, err)
	}

	// Kill everything. The worker's conn drops and its dials bounce off
	// a dead address while we hold the port down.
	first.kill()
	time.Sleep(50 * time.Millisecond)

	second := startStack(t, first.addr, metrics.New())
	defer second.kill()
	waitConnected(t, second.c, 1) // the worker re-registered on its own
	waitWired(t, second.c, 1)     // ...and found the NEW wire port
	if rows, ok, err := second.c.Execute(context.Background(), spec); !ok || err != nil || !reflect.DeepEqual(rows, want) {
		t.Fatalf("Execute after restart = (ok=%v, err=%v)", ok, err)
	}
	if w.Reconnects() == 0 {
		t.Fatal("worker reports zero reconnects across a coordinator restart")
	}

	cancel()
	if err := <-runDone; err != nil {
		t.Fatalf("worker run after restart + drain: %v", err)
	}
}

// A worker whose conn is severed mid-session (not a coordinator
// restart: the coordinator still knows it) reconnects to the same
// transport and keeps working; the server counts the reconnect.
func TestWorkerReconnectsAfterConnLoss(t *testing.T) {
	reg := metrics.New()
	cfg := fastCadence()
	cfg.Metrics = reg
	c, srv := newTestPlane(t, cfg)
	if _, err := c.StartWire("127.0.0.1:0"); err != nil {
		t.Fatal(err)
	}

	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	w := NewWorker(WorkerConfig{Server: srv.URL, Name: "blipped", Poll: fastPoll(), Reconnect: fastReconnect()})
	runDone := make(chan error, 1)
	go func() { runDone <- w.Run(ctx) }()
	waitConnected(t, c, 1)
	waitWired(t, c, 1)

	// Sever every open conn server-side, as a middlebox or network blip
	// would.
	c.wire.mu.Lock()
	for cn := range c.wire.open {
		cn.wc.Close()
	}
	c.wire.mu.Unlock()

	deadline := time.Now().Add(5 * time.Second)
	for reg.Counter(wire.MetricReconnects).Value() == 0 {
		if time.Now().After(deadline) {
			t.Fatal("server never observed the reconnect")
		}
		time.Sleep(2 * time.Millisecond)
	}
	waitWired(t, c, 1)
	if _, ok, err := c.Execute(context.Background(), testSpec(71)); !ok || err != nil {
		t.Fatalf("Execute after reconnect = (ok=%v, err=%v)", ok, err)
	}
	cancel()
	if err := <-runDone; err != nil {
		t.Fatalf("worker run: %v", err)
	}
}

// An HTTP-only worker (DisableWire, the -http-poll flag) still serves a
// coordinator that hosts the transport — the fallback path stays live.
func TestWorkerDisableWireFallsBackToPolling(t *testing.T) {
	c, srv := newTestPlane(t, fastCadence())
	if _, err := c.StartWire("127.0.0.1:0"); err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	w := NewWorker(WorkerConfig{Server: srv.URL, Name: "poller", Poll: fastPoll(), DisableWire: true})
	runDone := make(chan error, 1)
	go func() { runDone <- w.Run(ctx) }()
	waitConnected(t, c, 1)

	if _, ok, err := c.Execute(context.Background(), testSpec(72)); !ok || err != nil {
		t.Fatalf("Execute via HTTP fallback = (ok=%v, err=%v)", ok, err)
	}
	if ws := c.WorkersStatus(); ws.WireConnected != 0 {
		t.Fatalf("DisableWire worker opened a conn: %+v", ws)
	}
	cancel()
	if err := <-runDone; err != nil {
		t.Fatalf("worker run: %v", err)
	}
}

// A hostile client cannot take the transport down: garbage after the
// handshake closes that conn (counted as a frame error) and the
// listener keeps serving.
func TestWireServerSurvivesHostileConn(t *testing.T) {
	reg := metrics.New()
	cfg := fastCadence()
	cfg.Metrics = reg
	c, srv := newTestPlane(t, cfg)
	addr, err := c.StartWire("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}

	nc, err := net.Dial("tcp", addr)
	if err != nil {
		t.Fatal(err)
	}
	nc.Write([]byte("GET / HTTP/1.1\r\nHost: not-a-wire-client\r\n\r\n"))
	nc.Close()

	deadline := time.Now().Add(5 * time.Second)
	for reg.Counter(wire.MetricFrameErrors).Value() == 0 {
		if time.Now().After(deadline) {
			t.Fatal("hostile conn never counted a frame error")
		}
		time.Sleep(2 * time.Millisecond)
	}

	// The transport still serves a real worker afterwards.
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	w := NewWorker(WorkerConfig{Server: srv.URL, Name: "after-hostile", Poll: fastPoll(), Reconnect: fastReconnect()})
	runDone := make(chan error, 1)
	go func() { runDone <- w.Run(ctx) }()
	waitConnected(t, c, 1)
	waitWired(t, c, 1)
	if _, ok, err := c.Execute(context.Background(), testSpec(73)); !ok || err != nil {
		t.Fatalf("Execute after hostile conn = (ok=%v, err=%v)", ok, err)
	}
	cancel()
	if err := <-runDone; err != nil {
		t.Fatalf("worker run: %v", err)
	}

	// A worker the coordinator does not know is rejected at Hello and
	// told why, so it can re-register.
	nc2, err := net.Dial("tcp", addr)
	if err != nil {
		t.Fatal(err)
	}
	defer nc2.Close()
	conn := wire.NewConn(nc2)
	conn.Send(wire.Hello, []byte(`{"worker_id":"w9999"}`))
	conn.SetReadDeadline(time.Now().Add(5 * time.Second))
	ft, payload, err := conn.Recv()
	if err != nil || ft != wire.HelloAck {
		t.Fatalf("unknown-worker Hello: frame %d, err %v", ft, err)
	}
	var ack helloAckPayload
	if err := json.Unmarshal(payload, &ack); err != nil {
		t.Fatal(err)
	}
	if ack.OK || ack.Error == "" {
		t.Fatalf("unknown worker accepted: %+v", ack)
	}
}
