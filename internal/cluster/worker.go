package cluster

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"net"
	"net/http"
	"net/url"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/backoff"
	"repro/internal/experiments"
	"repro/internal/metrics"
	"repro/internal/shard"
	"repro/internal/wire"
)

// WorkerConfig configures a worker client. Server is required; zero
// values elsewhere pick serving defaults.
type WorkerConfig struct {
	// Server is the coordinator's base URL, e.g. http://host:8080.
	Server string
	// Name identifies this worker in logs and per-worker metrics; it is
	// stable across restarts (the coordinator-assigned ID is not).
	// Defaults to the assigned ID.
	Name string
	// Version is reported at registration.
	Version string
	// Poll is the idle-poll backoff schedule for the HTTP fallback
	// path; its cap is additionally clamped to the coordinator's
	// heartbeat interval so an idle worker never goes silent long
	// enough to be expired. Zero picks {Base: 50ms, Max: 1s}.
	Poll backoff.Policy
	// Reconnect is the backoff schedule for re-dialling the streaming
	// transport and re-registering after a conn loss or coordinator
	// restart. Jittered by default so a restarted coordinator is not
	// greeted by the whole fleet in lockstep. Zero picks
	// {Base: 100ms, Max: 5s, Jitter: 0.3}.
	Reconnect backoff.Policy
	// DisableWire forces HTTP lease polling even when the coordinator
	// advertises the streaming transport.
	DisableWire bool
	// Prefetch is how many units the worker asks to hold over the wire
	// (one executing, the rest queued so the next starts without a
	// round-trip). Default 2.
	Prefetch int
	// HTTPClient overrides the transport. Nil uses a client with a 30s
	// request timeout.
	HTTPClient *http.Client
	// Log receives progress lines. Nil discards them.
	Log func(format string, args ...any)
	// Metrics, when non-nil, receives the engine counters of every unit
	// the default RunUnit executes (core_executions_total and friends),
	// so a worker process can report how much engine work it really did —
	// the chaos harness sums this across the fleet to bound duplicate
	// execution. Ignored when RunUnit is overridden.
	Metrics *metrics.Registry

	// RunUnit overrides unit execution (tests use it to gate timing).
	// Nil runs the unit's own Run: the trial range when sharded, the
	// whole scenario otherwise.
	RunUnit func(Unit) ([]experiments.ScenarioRow, error)
	// OnLease, when non-nil, is called with each unit right after its
	// lease is granted and before execution starts.
	OnLease func(Unit)
	// Abort simulates a fail-stop crash for tests: when it closes, the
	// worker stops dead — mid-unit, with no completion report and no
	// deregistration — so its lease must expire and be reassigned.
	Abort <-chan struct{}
}

// Worker is the client side of the execution plane: register over
// HTTP, then either stream units over one persistent wire conn
// (batched grants, streamed completions, piggybacked heartbeats) or
// fall back to HTTP lease polling. It survives coordinator restarts:
// a lost conn or forgotten identity re-registers and reconnects on a
// jittered backoff without restarting the process.
type Worker struct {
	wc        WorkerConfig
	handshake CoordinatorHandshake
	client    *http.Client
	log       func(format string, args ...any)

	id         string
	completed  atomic.Int64
	sessions   atomic.Int64 // wire sessions established (first + reconnects)
	reconnects atomic.Int64

	heldMu sync.Mutex
	held   map[string]bool // unit IDs granted but not yet reported

	// lastRunDur is the wall time of the most recent runUnit call; units
	// execute sequentially per worker, so a plain field suffices.
	lastRunDur time.Duration
}

// CoordinatorHandshake is the cadence and transport address learned at
// registration.
type CoordinatorHandshake struct {
	LeaseTTL  time.Duration
	Heartbeat time.Duration
	Wire      string
}

// NewWorker returns an unstarted worker client.
func NewWorker(cfg WorkerConfig) *Worker {
	if cfg.Poll.Base <= 0 {
		cfg.Poll = backoff.Policy{Base: 50 * time.Millisecond, Max: time.Second}
	}
	if cfg.Reconnect.Base <= 0 {
		cfg.Reconnect = backoff.Policy{Base: 100 * time.Millisecond, Max: 5 * time.Second, Jitter: 0.3}
	}
	if cfg.Prefetch <= 0 {
		cfg.Prefetch = 2
	}
	if cfg.HTTPClient == nil {
		cfg.HTTPClient = &http.Client{Timeout: 30 * time.Second}
	}
	if cfg.Log == nil {
		cfg.Log = func(string, ...any) {}
	}
	if cfg.RunUnit == nil {
		reg := cfg.Metrics
		cfg.RunUnit = func(u Unit) ([]experiments.ScenarioRow, error) {
			u.Spec.Metrics = reg
			return u.Run()
		}
	}
	return &Worker{wc: cfg, client: cfg.HTTPClient, log: cfg.Log, held: map[string]bool{}}
}

// Completed returns how many units this worker finished and reported.
// Safe to call while Run is executing.
func (w *Worker) Completed() int { return int(w.completed.Load()) }

// Reconnects returns how many times the worker re-established its
// coordinator session (wire redial or full re-registration) after the
// first. Safe to call while Run is executing.
func (w *Worker) Reconnects() int { return int(w.reconnects.Load()) }

// Run is the worker's main loop. Cancelling ctx is the graceful-drain
// signal: the worker finishes the unit it holds (if any), reports the
// result, deregisters, and returns nil — mirroring vmat-server's
// SIGTERM drain. The test-only Abort channel instead stops the loop
// dead with ErrAborted. Conn loss and coordinator restarts are not
// exits: the worker re-registers and resumes on a jittered backoff.
func (w *Worker) Run(ctx context.Context) error {
	if err := w.register(ctx); err != nil {
		if ctx.Err() != nil {
			return nil // drained before ever joining the fleet
		}
		return err
	}
	w.log("registered as %s (lease TTL %s, heartbeat %s, wire %q)",
		w.id, w.handshake.LeaseTTL, w.handshake.Heartbeat, w.handshake.Wire)
	if w.handshake.Wire == "" || w.wc.DisableWire {
		return w.runHTTP(ctx)
	}

	attempt := 0
	for {
		if w.aborted() {
			return ErrAborted
		}
		if ctx.Err() != nil {
			return w.deregister()
		}
		established, err := w.runWire(ctx)
		if established {
			attempt = 0 // the session worked before it broke; start the schedule over
		}
		switch {
		case err == nil:
			return w.deregister() // graceful drain finished inside the session
		case errors.Is(err, ErrAborted):
			return ErrAborted
		}
		w.log("wire session lost (%v), reconnecting", err)
		if !w.sleep(ctx, w.wc.Reconnect.Delay(attempt)) {
			continue // woken by ctx or abort; loop top decides
		}
		attempt++
		if errors.Is(err, ErrUnknownWorker) || !established {
			// The coordinator forgot us, or the transport could not even
			// be reached — a restarted coordinator hosts the wire on a
			// fresh port, so the stale address must be thrown away.
			// Re-register over HTTP (it retries its own backoff until
			// the coordinator is back) to refresh identity and address.
			w.log("re-registering with %s", w.wc.Server)
			if rerr := w.register(ctx); rerr != nil {
				if ctx.Err() != nil {
					return nil
				}
				return rerr
			}
			if w.handshake.Wire == "" {
				return w.runHTTP(ctx) // the new coordinator has no transport
			}
		}
	}
}

// runHTTP is the fallback loop: poll for leases over HTTP, one unit at
// a time. Used when the coordinator does not host the streaming
// transport (or DisableWire is set).
func (w *Worker) runHTTP(ctx context.Context) error {
	pollCap := w.wc.Poll.Max
	if w.handshake.Heartbeat > 0 && pollCap > w.handshake.Heartbeat {
		pollCap = w.handshake.Heartbeat
	}
	poll := backoff.Policy{Base: w.wc.Poll.Base, Max: pollCap, Jitter: w.wc.Poll.Jitter}

	idle := 0 // consecutive empty polls, drives the poll backoff
	for {
		if w.aborted() {
			return ErrAborted
		}
		if ctx.Err() != nil {
			return w.deregister()
		}
		unit, err := w.lease()
		if err != nil {
			if errors.Is(err, ErrUnknownWorker) {
				// Coordinator restarted or expired us; re-enter the fleet.
				if rerr := w.register(ctx); rerr != nil {
					if ctx.Err() != nil {
						return nil
					}
					return rerr
				}
				w.reconnects.Add(1)
				continue
			}
			if ctx.Err() != nil {
				return w.deregister()
			}
			if w.aborted() {
				return ErrAborted
			}
			// Transient transport failure: wait it out like an empty poll.
			w.log("lease request failed (%v), backing off", err)
			unit = nil
		}
		if unit == nil {
			if !w.sleep(ctx, poll.Delay(idle)) {
				continue // woken by ctx or abort; loop top decides
			}
			idle++
			continue
		}
		idle = 0
		if w.wc.OnLease != nil {
			w.wc.OnLease(*unit)
		}
		if w.aborted() {
			return ErrAborted // crashed between lease and execution
		}
		if err := w.executeAndReport(*unit); err != nil {
			return err
		}
		w.completed.Add(1)
	}
}

// runWire is one streaming session: dial, Hello, then execute granted
// units until the conn dies (returns the error), the worker is
// rejected (ErrUnknownWorker), drain completes (nil), or the abort
// channel closes (ErrAborted). established reports whether the
// handshake succeeded, so the caller can reset its backoff schedule.
func (w *Worker) runWire(ctx context.Context) (established bool, err error) {
	nc, err := net.DialTimeout("tcp", w.wireAddr(), 10*time.Second)
	if err != nil {
		return false, err
	}
	conn := wire.NewConn(nc)
	defer conn.Close()

	hello, _ := json.Marshal(helloPayload{WorkerID: w.id})
	if err := conn.Send(wire.Hello, hello); err != nil {
		return false, err
	}
	conn.SetReadDeadline(time.Now().Add(handshakeTimeout))
	t, payload, err := conn.Recv()
	if err != nil {
		return false, err
	}
	if t != wire.HelloAck {
		return false, fmt.Errorf("cluster: unexpected %d frame in handshake", t)
	}
	var ack helloAckPayload
	if err := json.Unmarshal(payload, &ack); err != nil {
		return false, err
	}
	if !ack.OK {
		return false, ErrUnknownWorker
	}
	conn.SetReadDeadline(time.Time{})
	if w.sessions.Add(1) > 1 {
		w.reconnects.Add(1) // a session after the first is a survived reconnect
	}
	if ack.LeaseTTL > 0 {
		w.handshake.LeaseTTL = ack.LeaseTTL
	}
	if ack.Heartbeat > 0 {
		w.handshake.Heartbeat = ack.Heartbeat
	}

	// The reader turns Grant frames into a unit queue; everything else
	// it ignores (forward compatibility). A framing violation or conn
	// loss surfaces on readErr and ends the session.
	grants := make(chan Unit, 64)
	readErr := make(chan error, 1)
	sessionDone := make(chan struct{})
	defer close(sessionDone)
	go func() {
		for {
			t, payload, err := conn.Recv()
			if err != nil {
				readErr <- err
				return
			}
			if t != wire.Grant {
				continue
			}
			units, err := shard.DecodeBatch(payload)
			if err != nil {
				readErr <- err // hostile or torn grant: drop the conn
				return
			}
			for _, u := range units {
				w.setHeld(u.ID, true)
				if w.wc.OnLease != nil {
					w.wc.OnLease(u)
				}
				select {
				case grants <- u:
				case <-sessionDone:
					return
				}
			}
		}
	}()

	// One heartbeat loop per conn, held units piggybacked. It beats
	// even when idle: the frame doubles as the keepalive that stops
	// the coordinator's read deadline from reaping a quiet conn.
	go func() {
		hb := w.handshake.Heartbeat
		if hb <= 0 {
			hb = time.Second
		}
		tick := time.NewTicker(hb)
		defer tick.Stop()
		for {
			select {
			case <-sessionDone:
				return
			case <-w.wc.Abort:
				return // a crashed worker stops beating; that's the point
			case <-tick.C:
				beat, _ := json.Marshal(HeartbeatRequest{WorkerID: w.id, Units: w.heldIDs()})
				if err := conn.Send(wire.Heartbeat, beat); err != nil {
					return // reader will surface the conn loss
				}
			}
		}
	}()

	if err := w.sendWant(conn, w.wc.Prefetch); err != nil {
		return true, err
	}
	for {
		if ctx.Err() != nil {
			// Graceful drain: queued grants are released by the Bye
			// (deregistering requeues our leases at once).
			conn.Send(wire.Bye, nil)
			return true, nil
		}
		select {
		case <-ctx.Done():
			// handled at loop top
		case <-w.wc.Abort:
			return true, ErrAborted
		case err := <-readErr:
			return true, err
		case u := <-grants:
			if w.aborted() {
				return true, ErrAborted // crashed between grant and execution
			}
			if err := w.executeWireUnit(conn, u); err != nil {
				return true, err
			}
			if err := w.sendWant(conn, 1); err != nil {
				return true, err
			}
		}
	}
}

// executeWireUnit runs one granted unit and streams the completion
// back over the conn. If the conn dies mid-upload, the result is too
// valuable to drop — it falls back to the HTTP complete endpoint
// before the session error propagates.
func (w *Worker) executeWireUnit(conn *wire.Conn, unit Unit) error {
	rows, runErr, crashed := w.runUnit(unit)
	if crashed {
		return ErrAborted // crashed mid-unit: no completion report
	}
	req := w.buildComplete(unit, rows, runErr)
	w.setHeld(unit.ID, false)
	payload, err := json.Marshal(req)
	if err != nil {
		return fmt.Errorf("cluster: encode completion for %s: %v", unit.ID, err)
	}
	if serr := conn.Send(wire.Complete, payload); serr != nil {
		w.uploadComplete(req)
		w.completed.Add(1)
		return serr
	}
	w.completed.Add(1)
	w.log("completed %s", unit.ID)
	return nil
}

// runUnit executes one unit under the abort watch. crashed means the
// simulated fail-stop fired during execution.
func (w *Worker) runUnit(unit Unit) (rows []experiments.ScenarioRow, runErr error, crashed bool) {
	runCtx, cancelRun := context.WithCancel(context.Background())
	go func() { // a crash aborts the execution itself, not just the loop
		select {
		case <-w.wc.Abort:
			cancelRun()
		case <-runCtx.Done():
		}
	}()
	unit.Spec.Context = runCtx
	start := time.Now()
	rows, runErr = w.wc.RunUnit(unit)
	cancelRun()
	w.lastRunDur = time.Since(start)
	return rows, runErr, w.aborted()
}

// buildComplete assembles the verified completion payload for a unit.
func (w *Worker) buildComplete(unit Unit, rows []experiments.ScenarioRow, runErr error) CompleteRequest {
	req := CompleteRequest{
		WorkerID:       w.id,
		UnitID:         unit.ID,
		Key:            unit.Key,
		DurationMicros: w.lastRunDur.Microseconds(),
	}
	if runErr != nil {
		req.Error = runErr.Error()
	} else {
		raw, err := json.Marshal(rows)
		if err != nil {
			req.Error = fmt.Sprintf("marshal rows: %v", err)
		} else {
			req.Rows = raw
			req.CRC32 = crc32.ChecksumIEEE(raw)
		}
	}
	return req
}

// aborted reports whether the simulated-crash channel has closed.
func (w *Worker) aborted() bool {
	select {
	case <-w.wc.Abort:
		return true
	default:
		return false
	}
}

// sleep waits d, returning true on a full sleep and false when ctx or
// the abort channel woke it early.
func (w *Worker) sleep(ctx context.Context, d time.Duration) bool {
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-t.C:
		return true
	case <-ctx.Done():
		return false
	case <-w.wc.Abort:
		return false
	}
}

// setHeld tracks the units this worker currently holds, for the
// piggybacked heartbeats.
func (w *Worker) setHeld(unitID string, held bool) {
	w.heldMu.Lock()
	defer w.heldMu.Unlock()
	if held {
		w.held[unitID] = true
	} else {
		delete(w.held, unitID)
	}
}

func (w *Worker) heldIDs() []string {
	w.heldMu.Lock()
	defer w.heldMu.Unlock()
	ids := make([]string, 0, len(w.held))
	for id := range w.held {
		ids = append(ids, id)
	}
	return ids
}

// sendWant advertises capacity for n more units.
func (w *Worker) sendWant(conn *wire.Conn, n int) error {
	payload, _ := json.Marshal(wantPayload{N: n})
	return conn.Send(wire.Want, payload)
}

// wireAddr resolves the advertised transport address: a listener bound
// to the unspecified address (":0", "[::]:p") advertises a host the
// worker cannot dial, so substitute the coordinator's HTTP host.
func (w *Worker) wireAddr() string {
	addr := w.handshake.Wire
	host, port, err := net.SplitHostPort(addr)
	if err != nil {
		return addr
	}
	ip := net.ParseIP(host)
	if host == "" || (ip != nil && ip.IsUnspecified()) {
		if u, err := url.Parse(w.wc.Server); err == nil && u.Hostname() != "" {
			return net.JoinHostPort(u.Hostname(), port)
		}
	}
	return addr
}

// executeAndReport runs one unit with a live heartbeat and uploads the
// verified result over HTTP (the fallback path). Graceful drain does
// not interrupt execution — the lease is finished and reported first —
// but a simulated crash does.
func (w *Worker) executeAndReport(unit Unit) error {
	// The heartbeat keeps the lease alive for as long as the unit runs.
	hbStop := make(chan struct{})
	hbDone := make(chan struct{})
	go w.heartbeatLoop(unit.ID, hbStop, hbDone)

	rows, runErr, crashed := w.runUnit(unit)
	close(hbStop)
	<-hbDone
	if crashed {
		return ErrAborted // crashed mid-unit: no completion report
	}
	w.uploadComplete(w.buildComplete(unit, rows, runErr))
	return nil
}

// uploadComplete posts one completion over HTTP, retrying transient
// failures on the poll schedule. The result must not be lost to a
// coordinator hiccup, but a permanently gone coordinator cannot wedge
// the worker forever — the deadline is two lease TTLs, after which the
// lease has certainly been reassigned.
func (w *Worker) uploadComplete(req CompleteRequest) {
	upCtx, cancel := context.WithTimeout(context.Background(), w.completeDeadline())
	defer cancel()
	err := backoff.Retry(upCtx, w.wc.Abort, w.wc.Poll, func() (bool, error) {
		uerr := w.post("/v1/cluster/complete", req, nil)
		if uerr == nil || errors.Is(uerr, ErrUnknownWorker) {
			// Unknown worker on complete means we were expired; the
			// coordinator will take the unit from whoever re-runs it.
			return true, nil
		}
		w.log("completion upload for %s failed (%v), retrying", req.UnitID, uerr)
		return false, nil
	})
	if err != nil && !errors.Is(err, backoff.ErrStopped) {
		w.log("giving up on completion upload for %s: %v", req.UnitID, err)
	}
}

// completeDeadline bounds result-upload retries: two lease TTLs (after
// which the lease has certainly been reassigned), floored at 10s.
func (w *Worker) completeDeadline() time.Duration {
	d := 2 * w.handshake.LeaseTTL
	if d < 10*time.Second {
		d = 10 * time.Second
	}
	return d
}

// heartbeatLoop beats for one held unit until stopped (HTTP path).
func (w *Worker) heartbeatLoop(unitID string, stop, done chan struct{}) {
	defer close(done)
	hb := w.handshake.Heartbeat
	if hb <= 0 {
		hb = time.Second
	}
	t := time.NewTicker(hb)
	defer t.Stop()
	for {
		select {
		case <-stop:
			return
		case <-w.wc.Abort:
			return // a crashed worker stops beating; that's the point
		case <-t.C:
			if err := w.post("/v1/cluster/heartbeat", HeartbeatRequest{WorkerID: w.id, Units: []string{unitID}}, nil); err != nil {
				w.log("heartbeat failed: %v", err)
			}
		}
	}
}

// register joins the fleet, retrying transient failures on the
// reconnect schedule until ctx is cancelled or the crash channel
// closes. It learns the cadence and, when the coordinator hosts the
// streaming transport, the wire address.
func (w *Worker) register(ctx context.Context) error {
	var resp RegisterResponse
	err := backoff.Retry(ctx, w.wc.Abort, w.wc.Reconnect, func() (bool, error) {
		rerr := w.post("/v1/cluster/register", RegisterRequest{Name: w.wc.Name, Version: w.wc.Version}, &resp)
		if rerr != nil {
			w.log("registration failed (%v), retrying", rerr)
			return false, nil
		}
		return true, nil
	})
	if errors.Is(err, backoff.ErrStopped) {
		return ErrAborted
	}
	if err != nil {
		return err
	}
	w.id = resp.WorkerID
	w.handshake = CoordinatorHandshake{LeaseTTL: resp.LeaseTTL, Heartbeat: resp.Heartbeat, Wire: resp.Wire}
	w.heldMu.Lock()
	w.held = map[string]bool{} // a new identity holds nothing
	w.heldMu.Unlock()
	return nil
}

// lease asks for one unit; nil with nil error means no work.
func (w *Worker) lease() (*Unit, error) {
	var resp LeaseResponse
	if err := w.post("/v1/cluster/lease", LeaseRequest{WorkerID: w.id}, &resp); err != nil {
		return nil, err
	}
	return resp.Unit, nil
}

// deregister leaves the fleet gracefully (best effort — an unreachable
// coordinator will expire us anyway) and reports a clean exit.
func (w *Worker) deregister() error {
	if w.id != "" {
		if err := w.post("/v1/cluster/deregister", DeregisterRequest{WorkerID: w.id}, nil); err != nil && !errors.Is(err, ErrUnknownWorker) {
			w.log("deregister failed: %v", err)
		}
	}
	w.log("drained after %d completed units, deregistered", w.completed.Load())
	return nil
}

// post sends one JSON request and decodes the JSON response into out
// (when non-nil). A 404 maps to ErrUnknownWorker; other non-2xx codes
// surface the server's error body.
func (w *Worker) post(path string, in, out any) error {
	body, err := json.Marshal(in)
	if err != nil {
		return err
	}
	resp, err := w.client.Post(w.wc.Server+path, "application/json", bytes.NewReader(body))
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode == http.StatusNotFound {
		return ErrUnknownWorker
	}
	if resp.StatusCode/100 != 2 {
		msg, _ := io.ReadAll(io.LimitReader(resp.Body, 512))
		return fmt.Errorf("cluster: %s returned %d: %s", path, resp.StatusCode, bytes.TrimSpace(msg))
	}
	if out != nil {
		return json.NewDecoder(resp.Body).Decode(out)
	}
	return nil
}
