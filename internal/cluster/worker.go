package cluster

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"net/http"
	"sync/atomic"
	"time"

	"repro/internal/backoff"
	"repro/internal/experiments"
)

// WorkerConfig configures a worker client. Server is required; zero
// values elsewhere pick serving defaults.
type WorkerConfig struct {
	// Server is the coordinator's base URL, e.g. http://host:8080.
	Server string
	// Name identifies this worker in logs and per-worker metrics; it is
	// stable across restarts (the coordinator-assigned ID is not).
	// Defaults to the assigned ID.
	Name string
	// Version is reported at registration.
	Version string
	// Poll is the idle-poll backoff schedule; its cap is additionally
	// clamped to the coordinator's heartbeat interval so an idle worker
	// never goes silent long enough to be expired. Zero picks
	// {Base: 50ms, Max: 1s}.
	Poll backoff.Policy
	// HTTPClient overrides the transport. Nil uses a client with a 30s
	// request timeout.
	HTTPClient *http.Client
	// Log receives progress lines. Nil discards them.
	Log func(format string, args ...any)

	// RunUnit overrides unit execution (tests use it to gate timing).
	// Nil runs experiments.RunScenario.
	RunUnit func(experiments.ScenarioConfig) ([]experiments.ScenarioRow, error)
	// OnLease, when non-nil, is called with each unit right after its
	// lease is granted and before execution starts.
	OnLease func(Unit)
	// Abort simulates a fail-stop crash for tests: when it closes, the
	// worker stops dead — mid-unit, with no completion report and no
	// deregistration — so its lease must expire and be reassigned.
	Abort <-chan struct{}
}

// Worker is the client side of the execution plane: register, lease,
// execute, heartbeat, complete, repeat. One worker holds at most one
// lease at a time; run more processes (or more Workers) to scale out.
type Worker struct {
	wc        WorkerConfig
	handshake CoordinatorHandshake
	client    *http.Client
	log       func(format string, args ...any)

	id        string
	completed atomic.Int64
}

// CoordinatorHandshake is the cadence learned at registration.
type CoordinatorHandshake struct {
	LeaseTTL  time.Duration
	Heartbeat time.Duration
}

// NewWorker returns an unstarted worker client.
func NewWorker(cfg WorkerConfig) *Worker {
	if cfg.Poll.Base <= 0 {
		cfg.Poll = backoff.Policy{Base: 50 * time.Millisecond, Max: time.Second}
	}
	if cfg.HTTPClient == nil {
		cfg.HTTPClient = &http.Client{Timeout: 30 * time.Second}
	}
	if cfg.Log == nil {
		cfg.Log = func(string, ...any) {}
	}
	if cfg.RunUnit == nil {
		cfg.RunUnit = func(spec experiments.ScenarioConfig) ([]experiments.ScenarioRow, error) {
			return experiments.RunScenario(spec)
		}
	}
	return &Worker{wc: cfg, client: cfg.HTTPClient, log: cfg.Log}
}

// Completed returns how many units this worker finished and reported.
// Safe to call while Run is executing.
func (w *Worker) Completed() int { return int(w.completed.Load()) }

// Run is the worker's main loop. Cancelling ctx is the graceful-drain
// signal: the worker finishes the unit it holds (if any), reports the
// result, deregisters, and returns nil — mirroring vmat-server's
// SIGTERM drain. The test-only Abort channel instead stops the loop
// dead with ErrAborted.
func (w *Worker) Run(ctx context.Context) error {
	if err := w.register(ctx); err != nil {
		if ctx.Err() != nil {
			return nil // drained before ever joining the fleet
		}
		return err
	}
	w.log("registered as %s (lease TTL %s, heartbeat %s)", w.id, w.handshake.LeaseTTL, w.handshake.Heartbeat)
	pollCap := w.wc.Poll.Max
	if w.handshake.Heartbeat > 0 && pollCap > w.handshake.Heartbeat {
		pollCap = w.handshake.Heartbeat
	}
	poll := backoff.Policy{Base: w.wc.Poll.Base, Max: pollCap}

	idle := 0 // consecutive empty polls, drives the poll backoff
	for {
		if w.aborted() {
			return ErrAborted
		}
		if ctx.Err() != nil {
			return w.deregister()
		}
		unit, err := w.lease()
		if err != nil {
			if errors.Is(err, ErrUnknownWorker) {
				// Coordinator restarted or expired us; re-enter the fleet.
				if rerr := w.register(ctx); rerr != nil {
					if ctx.Err() != nil {
						return nil
					}
					return rerr
				}
				continue
			}
			if ctx.Err() != nil {
				return w.deregister()
			}
			if w.aborted() {
				return ErrAborted
			}
			// Transient transport failure: wait it out like an empty poll.
			w.log("lease request failed (%v), backing off", err)
			unit = nil
		}
		if unit == nil {
			if !w.sleep(ctx, poll.Delay(idle)) {
				continue // woken by ctx or abort; loop top decides
			}
			idle++
			continue
		}
		idle = 0
		if w.wc.OnLease != nil {
			w.wc.OnLease(*unit)
		}
		if w.aborted() {
			return ErrAborted // crashed between lease and execution
		}
		if err := w.executeAndReport(*unit); err != nil {
			return err
		}
		w.completed.Add(1)
	}
}

// aborted reports whether the simulated-crash channel has closed.
func (w *Worker) aborted() bool {
	select {
	case <-w.wc.Abort:
		return true
	default:
		return false
	}
}

// sleep waits d, returning true on a full sleep and false when ctx or
// the abort channel woke it early.
func (w *Worker) sleep(ctx context.Context, d time.Duration) bool {
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-t.C:
		return true
	case <-ctx.Done():
		return false
	case <-w.wc.Abort:
		return false
	}
}

// executeAndReport runs one unit with a live heartbeat and uploads the
// verified result. Graceful drain does not interrupt execution — the
// lease is finished and reported first — but a simulated crash does.
func (w *Worker) executeAndReport(unit Unit) error {
	// The heartbeat keeps the lease alive for as long as the unit runs.
	hbStop := make(chan struct{})
	hbDone := make(chan struct{})
	go w.heartbeatLoop(unit.ID, hbStop, hbDone)

	spec := unit.Spec
	runCtx, cancelRun := context.WithCancel(context.Background())
	go func() { // a crash aborts the execution itself, not just the loop
		select {
		case <-w.wc.Abort:
			cancelRun()
		case <-runCtx.Done():
		}
	}()
	spec.Context = runCtx
	start := time.Now()
	rows, runErr := w.wc.RunUnit(spec)
	cancelRun()
	close(hbStop)
	<-hbDone
	if w.aborted() {
		return ErrAborted // crashed mid-unit: no completion report
	}

	req := CompleteRequest{
		WorkerID:       w.id,
		UnitID:         unit.ID,
		Key:            unit.Key,
		DurationMicros: time.Since(start).Microseconds(),
	}
	if runErr != nil {
		req.Error = runErr.Error()
	} else {
		raw, err := json.Marshal(rows)
		if err != nil {
			req.Error = fmt.Sprintf("marshal rows: %v", err)
		} else {
			req.Rows = raw
			req.CRC32 = crc32.ChecksumIEEE(raw)
		}
	}

	// The result must not be lost to a transient coordinator hiccup:
	// retry the upload on the shared backoff schedule, bounded so a
	// permanently gone coordinator cannot wedge the worker forever
	// (the lease would have expired and been reassigned long before).
	upCtx, cancel := context.WithTimeout(context.Background(), w.completeDeadline())
	defer cancel()
	err := backoff.Retry(upCtx, w.wc.Abort, w.wc.Poll, func() (bool, error) {
		uerr := w.post("/v1/cluster/complete", req, nil)
		if uerr == nil || errors.Is(uerr, ErrUnknownWorker) {
			// Unknown worker on complete means we were expired; the
			// coordinator will take the unit from whoever re-runs it.
			return true, nil
		}
		w.log("completion upload for %s failed (%v), retrying", unit.ID, uerr)
		return false, nil
	})
	switch {
	case errors.Is(err, backoff.ErrStopped):
		return ErrAborted
	case err != nil:
		w.log("giving up on completion upload for %s: %v", unit.ID, err)
	default:
		w.log("completed %s (%s)", unit.ID, time.Since(start).Round(time.Millisecond))
	}
	return nil
}

// completeDeadline bounds result-upload retries: two lease TTLs (after
// which the lease has certainly been reassigned), floored at 10s.
func (w *Worker) completeDeadline() time.Duration {
	d := 2 * w.handshake.LeaseTTL
	if d < 10*time.Second {
		d = 10 * time.Second
	}
	return d
}

// heartbeatLoop beats for one held unit until stopped.
func (w *Worker) heartbeatLoop(unitID string, stop, done chan struct{}) {
	defer close(done)
	hb := w.handshake.Heartbeat
	if hb <= 0 {
		hb = time.Second
	}
	t := time.NewTicker(hb)
	defer t.Stop()
	for {
		select {
		case <-stop:
			return
		case <-w.wc.Abort:
			return // a crashed worker stops beating; that's the point
		case <-t.C:
			if err := w.post("/v1/cluster/heartbeat", HeartbeatRequest{WorkerID: w.id, Units: []string{unitID}}, nil); err != nil {
				w.log("heartbeat failed: %v", err)
			}
		}
	}
}

// register joins the fleet, retrying transient failures on the poll
// schedule until ctx is cancelled or the crash channel closes.
func (w *Worker) register(ctx context.Context) error {
	var resp RegisterResponse
	err := backoff.Retry(ctx, w.wc.Abort, w.wc.Poll, func() (bool, error) {
		rerr := w.post("/v1/cluster/register", RegisterRequest{Name: w.wc.Name, Version: w.wc.Version}, &resp)
		if rerr != nil {
			w.log("registration failed (%v), retrying", rerr)
			return false, nil
		}
		return true, nil
	})
	if errors.Is(err, backoff.ErrStopped) {
		return ErrAborted
	}
	if err != nil {
		return err
	}
	w.id = resp.WorkerID
	w.handshake = CoordinatorHandshake{LeaseTTL: resp.LeaseTTL, Heartbeat: resp.Heartbeat}
	return nil
}

// lease asks for one unit; nil with nil error means no work.
func (w *Worker) lease() (*Unit, error) {
	var resp LeaseResponse
	if err := w.post("/v1/cluster/lease", LeaseRequest{WorkerID: w.id}, &resp); err != nil {
		return nil, err
	}
	return resp.Unit, nil
}

// deregister leaves the fleet gracefully (best effort — an unreachable
// coordinator will expire us anyway) and reports a clean exit.
func (w *Worker) deregister() error {
	if w.id != "" {
		if err := w.post("/v1/cluster/deregister", DeregisterRequest{WorkerID: w.id}, nil); err != nil && !errors.Is(err, ErrUnknownWorker) {
			w.log("deregister failed: %v", err)
		}
	}
	w.log("drained after %d completed units, deregistered", w.completed.Load())
	return nil
}

// post sends one JSON request and decodes the JSON response into out
// (when non-nil). A 404 maps to ErrUnknownWorker; other non-2xx codes
// surface the server's error body.
func (w *Worker) post(path string, in, out any) error {
	body, err := json.Marshal(in)
	if err != nil {
		return err
	}
	resp, err := w.client.Post(w.wc.Server+path, "application/json", bytes.NewReader(body))
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode == http.StatusNotFound {
		return ErrUnknownWorker
	}
	if resp.StatusCode/100 != 2 {
		msg, _ := io.ReadAll(io.LimitReader(resp.Body, 512))
		return fmt.Errorf("cluster: %s returned %d: %s", path, resp.StatusCode, bytes.TrimSpace(msg))
	}
	if out != nil {
		return json.NewDecoder(resp.Body).Decode(out)
	}
	return nil
}
