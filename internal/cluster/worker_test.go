package cluster

import (
	"context"
	"errors"
	"net/http"
	"net/http/httptest"
	"runtime"
	"testing"
	"time"

	"repro/internal/backoff"
	"repro/internal/experiments"
	"repro/internal/metrics"
)

// newTestPlane wires a coordinator to a real HTTP listener, the same
// path vmat-worker speaks in production.
func newTestPlane(t *testing.T, cfg CoordinatorConfig) (*Coordinator, *httptest.Server) {
	t.Helper()
	c := NewCoordinator(cfg)
	mux := http.NewServeMux()
	RegisterHTTP(mux, c)
	srv := httptest.NewServer(mux)
	t.Cleanup(func() {
		srv.Close()
		c.Close()
	})
	return c, srv
}

func fastCadence() CoordinatorConfig {
	return CoordinatorConfig{
		LeaseTTL:          150 * time.Millisecond,
		HeartbeatInterval: 30 * time.Millisecond,
		WorkerTTL:         time.Hour, // workers die by abort here, not by silence
	}
}

func fastPoll() backoff.Policy {
	return backoff.Policy{Base: 2 * time.Millisecond, Max: 10 * time.Millisecond}
}

// waitConnected blocks until n workers are registered: Execute falls
// back to the local pool on an empty fleet, so tests must not race the
// worker's registration.
func waitConnected(t *testing.T, c *Coordinator, n int) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for c.WorkersStatus().Connected < n {
		if time.Now().After(deadline) {
			t.Fatalf("fleet never reached %d workers: %+v", n, c.WorkersStatus())
		}
		time.Sleep(2 * time.Millisecond)
	}
}

func TestWorkerExecutesUnitsOverHTTP(t *testing.T) {
	c, srv := newTestPlane(t, fastCadence())

	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	w := NewWorker(WorkerConfig{Server: srv.URL, Name: "http-1", Poll: fastPoll()})
	runDone := make(chan error, 1)
	go func() { runDone <- w.Run(ctx) }()
	waitConnected(t, c, 1)

	for i := 0; i < 3; i++ {
		spec := testSpec(uint64(20 + i))
		rows, ok, err := c.Execute(context.Background(), spec)
		if !ok || err != nil {
			t.Fatalf("Execute unit %d = (ok=%v, err=%v)", i, ok, err)
		}
		want, _ := experiments.RunScenario(spec)
		if len(rows) != len(want) {
			t.Fatalf("unit %d: %d rows, want %d", i, len(rows), len(want))
		}
	}
	cancel()
	if err := <-runDone; err != nil {
		t.Fatalf("worker run after graceful cancel: %v", err)
	}
	if got := w.Completed(); got != 3 {
		t.Fatalf("worker completed %d units, want 3", got)
	}
	if ws := c.WorkersStatus(); ws.Connected != 0 {
		t.Fatalf("worker did not deregister on drain: %+v", ws)
	}
}

// TestWorkerGracefulDrainFinishesHeldLease pins the drain contract at
// the client level: a cancel that lands mid-unit does not interrupt the
// unit — it is finished, reported, and only then does the worker leave.
// (cmd/vmat-worker's test covers the same path with a real SIGTERM.)
func TestWorkerGracefulDrainFinishesHeldLease(t *testing.T) {
	c, srv := newTestPlane(t, fastCadence())

	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	gate := make(chan struct{})
	leased := make(chan struct{})
	w := NewWorker(WorkerConfig{
		Server: srv.URL, Poll: fastPoll(),
		OnLease: func(Unit) { close(leased) },
		RunUnit: func(u Unit) ([]experiments.ScenarioRow, error) {
			<-gate // hold the lease until the test has cancelled ctx
			return u.Run()
		},
	})
	runDone := make(chan error, 1)
	go func() { runDone <- w.Run(ctx) }()
	waitConnected(t, c, 1)

	spec := testSpec(30)
	res := executeAsync(c, context.Background(), spec)
	<-leased
	cancel() // drain signal arrives while the unit is executing
	// Hold long enough that several heartbeats must fire to keep the
	// lease alive past its TTL.
	time.Sleep(400 * time.Millisecond)
	close(gate)

	r := <-res
	if !r.ok || r.err != nil {
		t.Fatalf("held unit lost to drain: (ok=%v, err=%v)", r.ok, r.err)
	}
	if err := <-runDone; err != nil {
		t.Fatalf("worker run: %v", err)
	}
	if ws := c.WorkersStatus(); ws.Connected != 0 || ws.LeasesExpired != 0 {
		t.Fatalf("drain left cluster state %+v, want clean deregistration", ws)
	}
}

func TestWorkerCrashMidUnitReassignsLease(t *testing.T) {
	reg := metrics.New()
	cfg := fastCadence()
	cfg.Metrics = reg
	c, srv := newTestPlane(t, cfg)

	abort := make(chan struct{})
	crashy := NewWorker(WorkerConfig{
		Server: srv.URL, Name: "crashy", Poll: fastPoll(),
		Abort: abort,
		RunUnit: func(u Unit) ([]experiments.ScenarioRow, error) {
			close(abort) // die the moment work starts
			<-u.Spec.Context.Done()
			return nil, u.Spec.Context.Err()
		},
	})
	crashDone := make(chan error, 1)
	go func() { crashDone <- crashy.Run(context.Background()) }()
	waitConnected(t, c, 1)

	res := executeAsync(c, context.Background(), testSpec(31))
	if err := <-crashDone; !errors.Is(err, ErrAborted) {
		t.Fatalf("crashed worker run = %v, want ErrAborted", err)
	}

	// A healthy worker picks up the expired lease and finishes the unit.
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	healthy := NewWorker(WorkerConfig{Server: srv.URL, Name: "healthy", Poll: fastPoll()})
	healthyDone := make(chan error, 1)
	go func() { healthyDone <- healthy.Run(ctx) }()

	r := <-res
	if !r.ok || r.err != nil {
		t.Fatalf("unit lost to the crash: (ok=%v, err=%v)", r.ok, r.err)
	}
	if v := reg.Counter(MetricLeasesReassigned).Value(); v < 1 {
		t.Fatalf("reassignments = %d, want >= 1", v)
	}
	if v := reg.Counter(MetricUnitsCompleted + `{worker="healthy"}`).Value(); v != 1 {
		t.Fatalf("healthy completions = %d, want 1", v)
	}
	cancel()
	if err := <-healthyDone; err != nil {
		t.Fatalf("healthy worker run: %v", err)
	}
}

func TestWorkerReregistersAfterCoordinatorForgetsIt(t *testing.T) {
	c, srv := newTestPlane(t, fastCadence())

	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	w := NewWorker(WorkerConfig{Server: srv.URL, Name: "phoenix", Poll: fastPoll()})
	runDone := make(chan error, 1)
	go func() { runDone <- w.Run(ctx) }()

	// Wait for registration, then expire the worker behind its back.
	deadline := time.Now().Add(5 * time.Second)
	for c.WorkersStatus().Connected == 0 {
		if time.Now().After(deadline) {
			t.Fatal("worker never registered")
		}
		time.Sleep(2 * time.Millisecond)
	}
	c.mu.Lock()
	for _, ws := range c.workers {
		c.dropWorkerLocked(ws, "test eviction")
	}
	c.mu.Unlock()

	// The next lease poll gets 404 and re-registers; once the worker is
	// back in the fleet it still does work.
	waitConnected(t, c, 1)
	if _, ok, err := c.Execute(context.Background(), testSpec(32)); !ok || err != nil {
		t.Fatalf("Execute after forced re-registration = (ok=%v, err=%v)", ok, err)
	}
	cancel()
	if err := <-runDone; err != nil {
		t.Fatalf("worker run: %v", err)
	}
}

func TestWorkerShutdownLeaksNoGoroutines(t *testing.T) {
	c, srv := newTestPlane(t, fastCadence())
	before := runtime.NumGoroutine()
	for i := 0; i < 3; i++ {
		ctx, cancel := context.WithCancel(context.Background())
		w := NewWorker(WorkerConfig{Server: srv.URL, Poll: fastPoll()})
		runDone := make(chan error, 1)
		go func() { runDone <- w.Run(ctx) }()
		waitConnected(t, c, 1)
		if _, ok, err := c.Execute(context.Background(), testSpec(uint64(40+i))); !ok || err != nil {
			t.Fatalf("Execute = (ok=%v, err=%v)", ok, err)
		}
		cancel()
		if err := <-runDone; err != nil {
			t.Fatal(err)
		}
	}
	srv.CloseClientConnections() // drop idle keep-alives before counting
	deadline := time.Now().Add(5 * time.Second)
	for {
		runtime.GC()
		if runtime.NumGoroutine() <= before {
			return
		}
		if time.Now().After(deadline) {
			t.Fatalf("goroutines: %d before, %d after worker lifecycles", before, runtime.NumGoroutine())
		}
		time.Sleep(10 * time.Millisecond)
	}
}
