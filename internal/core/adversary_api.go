package core

import (
	"repro/internal/crypto"
	"repro/internal/simnet"
	"repro/internal/topology"
)

// Phase identifies which protocol phase an adversary step is running in.
type Phase int

const (
	// PhaseTree is the tree-formation phase (Section IV-A).
	PhaseTree Phase = iota + 1
	// PhaseAggregation is the MIN aggregation phase (Section IV-B).
	PhaseAggregation
	// PhaseConfirmation is the SOF confirmation phase (Section IV-C).
	PhaseConfirmation
)

// String returns the phase's name.
func (p Phase) String() string {
	switch p {
	case PhaseTree:
		return "tree"
	case PhaseAggregation:
		return "aggregation"
	case PhaseConfirmation:
		return "confirmation"
	default:
		return "unknown"
	}
}

// Adversary is the hook set through which malicious sensors act. A nil
// Adversary (or the HonestAdversary) makes malicious sensors behave
// exactly like honest ones.
//
// Step is invoked once per malicious node per slot during the three
// network phases, instead of the honest logic; the context exposes both
// the honest behavior (ActHonestly) and raw Byzantine sending power.
// Steps for different malicious nodes run concurrently within a slot, so
// a strategy coordinating shared state across its nodes must synchronize
// internally.
//
// AnswerPredicate is consulted when a keyed predicate test reaches a
// malicious node that holds the tested key; the truthful answer (what an
// honest evaluation of the node's state would say) is provided so
// strategies can lie in either direction. The adversary cannot answer
// tests for keys it does not hold (Theorem 3's soundness side).
//
// ForwardAuthBroadcast decides whether a malicious node relays a base
// station broadcast; it cannot forge or alter one (the model of [20]).
type Adversary interface {
	Step(phase Phase, a *AdvContext)
	AnswerPredicate(node topology.NodeID, test TestAnnounce, truthful bool) bool
	ForwardAuthBroadcast(node topology.NodeID) bool
}

// HonestAdversary makes malicious nodes indistinguishable from honest
// ones; the zero value is ready to use.
type HonestAdversary struct{}

// Step runs the honest behavior.
func (HonestAdversary) Step(_ Phase, a *AdvContext) { a.ActHonestly() }

// AnswerPredicate answers truthfully.
func (HonestAdversary) AnswerPredicate(_ topology.NodeID, _ TestAnnounce, truthful bool) bool {
	return truthful
}

// ForwardAuthBroadcast always forwards.
func (HonestAdversary) ForwardAuthBroadcast(topology.NodeID) bool { return true }

// ReceivedEnvelope is a decoded inbound message as seen by a malicious
// node: the adversary sees everything on its links, including envelopes
// that fail verification.
type ReceivedEnvelope struct {
	From     topology.NodeID
	KeyIndex int
	Payload  interface{}
	Valid    bool
}

// AdvContext gives a strategy full Byzantine power for one malicious node
// in one slot.
type AdvContext struct {
	engine *Engine
	state  *sensorState
	ctx    *simnet.Context
	phase  Phase
	honest func(*sensorState, *simnet.Context)
}

// Node returns the malicious node's ID.
func (a *AdvContext) Node() topology.NodeID { return a.state.id }

// Phase returns the current protocol phase.
func (a *AdvContext) Phase() Phase { return a.phase }

// LocalSlot returns the slot index within the current phase (0-based).
func (a *AdvContext) LocalSlot() int { return a.ctx.Slot() - a.engine.phaseStart }

// Level returns the node's tree level (-1 if unset).
func (a *AdvContext) Level() int { return a.state.level }

// Parents returns the node's aggregation parents.
func (a *AdvContext) Parents() []topology.NodeID { return a.state.parents }

// Neighbors returns the node's physical neighbors.
func (a *AdvContext) Neighbors() []topology.NodeID { return a.ctx.Neighbors() }

// L returns the announced depth bound.
func (a *AdvContext) L() int { return a.engine.l }

// Instances returns the number of MIN instances in this execution.
func (a *AdvContext) Instances() int { return a.engine.instances }

// QueryNonce returns the aggregation nonce announced by the base station.
func (a *AdvContext) QueryNonce() []byte { return a.engine.queryNonce }

// ConfirmNonce returns the confirmation nonce (nil before the
// confirmation phase).
func (a *AdvContext) ConfirmNonce() []byte { return a.engine.confirmNonce }

// AnnouncedMins returns the minima the base station broadcast at the start
// of the confirmation phase (nil before then).
func (a *AdvContext) AnnouncedMins() []float64 { return a.engine.announcedMins }

// Inbox returns this slot's inbound messages, decoded. Envelopes are
// opened with the coalition's full key material; Valid reports whether the
// edge MAC verified.
func (a *AdvContext) Inbox() []ReceivedEnvelope {
	out := make([]ReceivedEnvelope, 0, len(a.ctx.Inbox))
	for _, m := range a.ctx.Inbox {
		env, ok := m.Payload.(Envelope)
		if !ok {
			out = append(out, ReceivedEnvelope{From: m.From, KeyIndex: NoKey, Payload: m.Payload, Valid: false})
			continue
		}
		inner, valid := env.Open(a.engine.cfg.Deployment.PoolKey(env.KeyIndex), m.From, a.state.id)
		payload := interface{}(inner)
		if !valid {
			payload = env.Inner
		}
		out = append(out, ReceivedEnvelope{From: m.From, KeyIndex: env.KeyIndex, Payload: payload, Valid: valid})
	}
	return out
}

// ActHonestly runs the honest per-slot behavior for this node, updating
// its state and sending what an honest sensor would send.
func (a *AdvContext) ActHonestly() { a.honest(a.state, a.ctx) }

// CoalitionHolds reports whether any malicious node holds the pool key
// with the given index (the adversary pools all compromised key rings).
func (a *AdvContext) CoalitionHolds(index int) bool {
	return a.engine.coalitionHolds(index)
}

// Ring returns this node's own key ring (sorted pool indices).
func (a *AdvContext) Ring() []int { return a.engine.cfg.Deployment.Ring(a.state.id) }

// SendSealed seals payload with the pool key at keyIndex and sends it to
// the given node. The coalition must hold the key; the link must exist
// physically or via collusion (malicious-to-malicious traffic is always
// deliverable, modelling out-of-band wormholes). It reports whether the
// message was transmitted.
func (a *AdvContext) SendSealed(to topology.NodeID, keyIndex int, payload interface{}) bool {
	in, ok := payload.(inner)
	if !ok || !a.engine.coalitionHolds(keyIndex) {
		return false
	}
	env := Seal(keyIndex, a.engine.cfg.Deployment.PoolKey(keyIndex), a.state.id, to, in)
	return a.ctx.Send(to, env)
}

// SendGarbled sends an envelope whose edge MAC is deliberately invalid,
// for flooding-with-garbage attacks. It reports whether the message was
// transmitted.
func (a *AdvContext) SendGarbled(to topology.NodeID, keyIndex int, payload interface{}) bool {
	in, ok := payload.(inner)
	if !ok {
		return false
	}
	env := Envelope{KeyIndex: keyIndex, MAC: crypto.MAC{0xBA, 0xD0}, Inner: in}
	return a.ctx.Send(to, env)
}

// OwnRecord returns the node's honest record for an instance (valid MAC
// over its true reading).
func (a *AdvContext) OwnRecord(instance int) Record {
	return a.engine.ownRecord(a.state.id, instance)
}

// RecordWithValue returns a record for this node with an arbitrary value
// but a valid MAC — the "report a fake reading for itself" behavior the
// secure-aggregation problem explicitly permits (Section III).
func (a *AdvContext) RecordWithValue(instance int, value float64) Record {
	return NewRecord(a.state.id, instance, value,
		a.engine.cfg.Deployment.SensorKey(a.state.id), a.engine.queryNonce)
}

// ForgeRecord returns a record claiming to originate from any node, with a
// garbage MAC: a spurious minimum. Only the base station can tell.
func (a *AdvContext) ForgeRecord(origin topology.NodeID, instance int, value float64) Record {
	return Record{Origin: origin, Instance: instance, Value: value,
		MAC: crypto.ComputeMAC(crypto.KeyFromUint64(uint64(a.state.rng.Uint64())), []byte("forged"))}
}

// VetoWithValue returns a veto for this node with a valid MAC over an
// arbitrary value and level.
func (a *AdvContext) VetoWithValue(instance int, value float64, level int) VetoMsg {
	return NewVeto(a.state.id, instance, value, level,
		a.engine.cfg.Deployment.SensorKey(a.state.id), a.engine.confirmNonce)
}

// ForgeVeto returns a spurious veto claiming any vetoer, with a garbage
// MAC. Honest sensors cannot tell (they cannot verify sensor-key MACs) and
// will forward it — the choking attack of Section IV-C.
func (a *AdvContext) ForgeVeto(vetoer topology.NodeID, instance int, value float64, level int) VetoMsg {
	return VetoMsg{Vetoer: vetoer, Instance: instance, Value: value, Level: level,
		MAC: crypto.ComputeMAC(crypto.KeyFromUint64(uint64(a.state.rng.Uint64())), []byte("forged-veto"))}
}

// EdgeKeyWith returns the pool index of the canonical (lowest unrevoked
// shared) edge key between this node and another, if any.
func (a *AdvContext) EdgeKeyWith(peer topology.NodeID) (int, bool) {
	return a.engine.edgeKey(a.state.id, peer)
}

// RNG returns this node's deterministic stream for adversarial coin
// flips.
func (a *AdvContext) RNG() *crypto.Stream { return a.state.rng }
