package core

import (
	"math"

	"repro/internal/crypto"
	"repro/internal/topology"
)

// StartAnnounce is the authenticated broadcast that opens an execution: it
// announces the query nonce, the number of MIN instances, and the depth
// bound L, and implicitly schedules tree formation and aggregation
// (Section IV-A/B: "the base station first uses authenticated broadcast to
// announce the query, the aggregation starting time, and a fresh nonce").
type StartAnnounce struct {
	Nonce     []byte
	Instances int
	L         int
}

// WireSize charges the nonce plus the two schedule fields.
func (a StartAnnounce) WireSize() int { return len(a.Nonce) + 8 }

// Encode returns a stable byte encoding.
func (a StartAnnounce) Encode() []byte {
	out := []byte("start")
	out = append(out, crypto.Uint64(uint64(a.Instances))...)
	out = append(out, crypto.Uint64(uint64(a.L))...)
	out = append(out, a.Nonce...)
	return out
}

// MinAnnounce opens the confirmation phase: the base station broadcasts
// the minima it received and a fresh nonce; sensors with smaller readings
// veto (Section IV-C).
type MinAnnounce struct {
	Nonce []byte
	Mins  []float64
}

// WireSize charges 8 bytes per instance minimum plus the nonce.
func (a MinAnnounce) WireSize() int { return len(a.Nonce) + 8*len(a.Mins) }

// Encode returns a stable byte encoding.
func (a MinAnnounce) Encode() []byte {
	out := []byte("min")
	for _, v := range a.Mins {
		out = append(out, crypto.Float64(v)...)
	}
	out = append(out, a.Nonce...)
	return out
}

// RevocationAnnounce tells every sensor to stop accepting a key or a whole
// sensor. Revoking a node announces its ring seed (Section VI-A), from
// which every sensor derives — and drops — the node's entire ring.
type RevocationAnnounce struct {
	// KeyIndex is the revoked pool key index; valid when Node is NoNode.
	KeyIndex int
	// Node is the wholly revoked sensor, or NoNode.
	Node topology.NodeID
	// RingSeed is the announced ring seed when Node is set.
	RingSeed crypto.Key
}

// NoNode marks a key-only revocation announcement.
const NoNode topology.NodeID = -1

// WireSize charges the key index or the seed.
func (a RevocationAnnounce) WireSize() int {
	if a.Node == NoNode {
		return 4
	}
	return 4 + crypto.KeySize
}

// Encode returns a stable byte encoding.
func (a RevocationAnnounce) Encode() []byte {
	out := []byte("revoke")
	out = append(out, crypto.Int64(int64(a.KeyIndex))...)
	out = append(out, crypto.Int64(int64(a.Node))...)
	out = append(out, a.RingSeed[:]...)
	return out
}

// PredKind selects the question a keyed predicate test asks. The paper
// phrases all of them as "received a message ... from a child at the given
// level" variants; this implementation names the walk direction
// explicitly.
type PredKind int

const (
	// PredSentAgg asks: did you, at the given level, forward (or send as
	// your own) a record of the given instance with value <= VMax to your
	// parent, using an out-edge key with pool index in [KeyLo, KeyHi]?
	// This is the Figure 5 predicate of the veto walk.
	PredSentAgg PredKind = iota + 1
	// PredReceivedAgg asks: did you receive, from a child at the given
	// level, a record of the given instance with value <= VMax, via the
	// tested edge key, and is your ID in [IDLo, IDHi]? This is the Figure
	// 6 predicate of the veto walk.
	PredReceivedAgg
	// PredSentJunkAgg asks: did you forward the exact aggregation message
	// MsgID to your parent at the given level via the tested edge key,
	// with your ID in [IDLo, IDHi]? (Junk walk, holder search.)
	PredSentJunkAgg
	// PredReceivedJunkAgg asks: did you receive the exact aggregation
	// message MsgID from a child at level Pos+1 via an in-edge key with
	// pool index in [KeyLo, KeyHi]? (Junk walk, ring search.)
	PredReceivedJunkAgg
	// PredSentJunkVeto asks: did you send/forward the exact veto MsgID in
	// SOF interval Pos via the tested edge key, with your ID in
	// [IDLo, IDHi]? (Confirmation junk walk, holder search.)
	PredSentJunkVeto
	// PredReceivedJunkVeto asks: did you receive the exact veto MsgID in
	// SOF interval Pos via an in-edge key with pool index in
	// [KeyLo, KeyHi]? (Confirmation junk walk, ring search.)
	PredReceivedJunkVeto
)

// Predicate is the predicate part of a keyed predicate test. Field
// meaning depends on Kind; unused fields are zero.
type Predicate struct {
	Kind     PredKind
	Instance int
	VMax     float64
	MsgID    crypto.Hash
	Pos      int // level or SOF interval
	KeyLo    int // pool-index range for ring searches
	KeyHi    int
	IDLo     topology.NodeID // holder-ID range for holder searches
	IDHi     topology.NodeID
}

// Encode returns a stable byte encoding of the predicate.
func (p Predicate) Encode() []byte {
	out := []byte("pred")
	out = append(out, crypto.Int64(int64(p.Kind))...)
	out = append(out, crypto.Int64(int64(p.Instance))...)
	out = append(out, crypto.Float64(p.VMax)...)
	out = append(out, p.MsgID[:]...)
	out = append(out, crypto.Int64(int64(p.Pos))...)
	out = append(out, crypto.Int64(int64(p.KeyLo))...)
	out = append(out, crypto.Int64(int64(p.KeyHi))...)
	out = append(out, crypto.Int64(int64(p.IDLo))...)
	out = append(out, crypto.Int64(int64(p.IDHi))...)
	return out
}

// KeyRef names the key a predicate test is keyed on: either the sensor
// key of a specific node or a pool (edge) key by index.
type KeyRef struct {
	// Sensor is the node whose sensor key is tested, or NoNode.
	Sensor topology.NodeID
	// PoolIndex is the tested pool key index; valid when Sensor is NoNode.
	PoolIndex int
}

// SensorKeyRef refers to the sensor key of id.
func SensorKeyRef(id topology.NodeID) KeyRef { return KeyRef{Sensor: id} }

// PoolKeyRef refers to the pool key with the given index.
func PoolKeyRef(index int) KeyRef { return KeyRef{Sensor: NoNode, PoolIndex: index} }

// IsSensorKey reports whether the reference names a sensor key.
func (k KeyRef) IsSensorKey() bool { return k.Sensor != NoNode }

// Encode returns a stable byte encoding.
func (k KeyRef) Encode() []byte {
	out := []byte("keyref")
	out = append(out, crypto.Int64(int64(k.Sensor))...)
	out = append(out, crypto.Int64(int64(k.PoolIndex))...)
	return out
}

// TestAnnounce is the authenticated broadcast that opens one keyed
// predicate test: <index of K, the predicate, nonce N, H(MAC_K(N))>
// (Section VI). The commitment lets every sensor recognize the unique
// valid "yes" reply without holding K, which is what makes the reply
// relay chokeproof.
type TestAnnounce struct {
	Key        KeyRef
	Pred       Predicate
	Nonce      []byte
	Commitment crypto.Hash
}

// WireSize charges the predicate descriptor, nonce, and commitment.
func (t TestAnnounce) WireSize() int {
	return 8 + 40 + len(t.Nonce) + crypto.HashSize
}

// Encode returns a stable byte encoding.
func (t TestAnnounce) Encode() []byte {
	out := []byte("test")
	out = append(out, t.Key.Encode()...)
	out = append(out, t.Pred.Encode()...)
	out = append(out, t.Nonce...)
	out = append(out, t.Commitment[:]...)
	return out
}

// ReplyMAC computes the "yes" reply MAC_K(N) for a test nonce.
func ReplyMAC(key crypto.Key, nonce []byte) crypto.MAC {
	return crypto.ComputeMAC(key, []byte("pred-reply"), nonce)
}

// Inf is the identity value of MIN aggregation.
func Inf() float64 { return math.Inf(1) }
