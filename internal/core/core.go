package core
