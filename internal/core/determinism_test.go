package core_test

import (
	"runtime"
	"testing"
	"time"

	"repro/internal/adversary"
	"repro/internal/core"
	"repro/internal/topology"
)

// TestExecutionDeterministicForSeed runs the same attacked configuration
// twice and requires bit-identical outcomes: same kind, minima, revoked
// material, slot counts, and per-node byte accounting. Determinism is
// what makes every experiment in EXPERIMENTS.md regenerable.
func TestExecutionDeterministicForSeed(t *testing.T) {
	runOnce := func() *core.Outcome {
		f := newFixture(t, bypassGraph(), 555)
		f.readings[4] = 1
		cfg := f.config(555)
		cfg.Malicious = maliciousSet(2)
		cfg.Adversary = adversary.NewDropAndChoke(50)
		cfg.AdversaryFavored = true
		return run(t, cfg)
	}
	a, b := runOnce(), runOnce()
	if a.Kind != b.Kind || a.Slots != b.Slots || a.PredicateTests != b.PredicateTests {
		t.Fatalf("outcomes diverged: %v/%d/%d vs %v/%d/%d",
			a.Kind, a.Slots, a.PredicateTests, b.Kind, b.Slots, b.PredicateTests)
	}
	if len(a.RevokedKeys) != len(b.RevokedKeys) {
		t.Fatalf("revocations diverged: %v vs %v", a.RevokedKeys, b.RevokedKeys)
	}
	for i := range a.RevokedKeys {
		if a.RevokedKeys[i] != b.RevokedKeys[i] {
			t.Fatalf("revocations diverged: %v vs %v", a.RevokedKeys, b.RevokedKeys)
		}
	}
	for i := range a.Stats.BytesSent {
		if a.Stats.BytesSent[i] != b.Stats.BytesSent[i] ||
			a.Stats.BytesReceived[i] != b.Stats.BytesReceived[i] {
			t.Fatalf("byte accounting diverged at node %d", i)
		}
	}
}

// TestNoGoroutineLeakAcrossRuns checks the engine's per-slot goroutine
// fan-out always joins: many executions must not accumulate goroutines.
func TestNoGoroutineLeakAcrossRuns(t *testing.T) {
	f := newFixture(t, topology.Grid(4, 4), 556)
	before := runtime.NumGoroutine()
	for i := 0; i < 15; i++ {
		cfg := f.config(uint64(556 + i))
		out := run(t, cfg)
		if out.Kind != core.OutcomeResult {
			t.Fatalf("run %d: %v", i, out.Kind)
		}
	}
	runtime.GC()
	time.Sleep(10 * time.Millisecond)
	after := runtime.NumGoroutine()
	if after > before+3 {
		t.Fatalf("goroutines grew from %d to %d across 15 executions", before, after)
	}
}
