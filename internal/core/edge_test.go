package core_test

import (
	"math"
	"testing"

	"repro/internal/adversary"
	"repro/internal/core"
	"repro/internal/keydist"
	"repro/internal/topology"
)

func TestAlarmOnlyDetectsButDoesNotRevoke(t *testing.T) {
	f := newFixture(t, bypassGraph(), 90)
	f.readings[4] = 1
	cfg := f.config(90)
	cfg.Malicious = maliciousSet(2)
	cfg.Adversary = adversary.NewDropper(50)
	cfg.AlarmOnly = true
	out := run(t, cfg)
	if out.Kind != core.OutcomeAlarm {
		t.Fatalf("outcome = %v, want alarm", out.Kind)
	}
	if len(out.RevokedKeys) != 0 || len(out.RevokedNodes) != 0 {
		t.Fatalf("alarm-only run revoked: keys %v nodes %v", out.RevokedKeys, out.RevokedNodes)
	}
	if out.PredicateTests != 0 {
		t.Fatalf("alarm-only run ran %d predicate tests", out.PredicateTests)
	}
	if out.Veto == nil {
		t.Fatal("alarm carried no veto")
	}
}

func TestAlarmOnlyJunkDetection(t *testing.T) {
	f := newFixture(t, topology.Grid(3, 4), 91)
	cfg := f.config(91)
	cfg.Malicious = maliciousSet(7)
	cfg.Adversary = adversary.NewJunkInjector(-1000)
	cfg.AlarmOnly = true
	out := run(t, cfg)
	if out.Kind != core.OutcomeAlarm {
		t.Fatalf("outcome = %v, want alarm", out.Kind)
	}
}

func TestRevokedSensorIsCutOff(t *testing.T) {
	// Wholly revoking a sensor makes honest receivers ignore it: a
	// revoked cut vertex partitions its subtree out of the aggregate
	// (the paper's component semantics).
	f := newFixture(t, topology.Line(4), 92)
	registry := keydist.NewRegistry(f.dep, 0)
	registry.RevokeNode(2)
	cfg := f.config(92)
	cfg.Registry = registry
	cfg.L = 3 // the honest component is 0-1; keep L covering the old depth
	out := run(t, cfg)
	if out.Kind != core.OutcomeResult {
		t.Fatalf("outcome = %v", out.Kind)
	}
	// Only node 1's reading can arrive: 2 is revoked, 3 sits behind it.
	if out.Mins[0] != f.readings[1] {
		t.Fatalf("min = %g, want %g (only node 1 reachable)", out.Mins[0], f.readings[1])
	}
}

func TestRevokedEdgeKeyForcesFallback(t *testing.T) {
	// Revoking the canonical edge key between two honest neighbors makes
	// them fall back to their next shared key — traffic still flows.
	f := newFixture(t, topology.Line(3), 93)
	shared := f.dep.SharedIndices(1, 2)
	if len(shared) < 2 {
		t.Skip("fixture pair shares fewer than 2 keys")
	}
	registry := keydist.NewRegistry(f.dep, 0)
	registry.RevokeKey(shared[0])
	cfg := f.config(93)
	cfg.Registry = registry
	out := run(t, cfg)
	if out.Kind != core.OutcomeResult {
		t.Fatalf("outcome = %v", out.Kind)
	}
	if want := f.trueMin(nil); out.Mins[0] != want {
		t.Fatalf("min = %g, want %g", out.Mins[0], want)
	}
}

func TestAllSharedKeysRevokedSeversLink(t *testing.T) {
	f := newFixture(t, topology.Line(3), 94)
	registry := keydist.NewRegistry(f.dep, 0)
	for _, idx := range f.dep.SharedIndices(1, 2) {
		registry.RevokeKey(idx)
	}
	cfg := f.config(94)
	cfg.Registry = registry
	out := run(t, cfg)
	if out.Kind != core.OutcomeResult {
		t.Fatalf("outcome = %v", out.Kind)
	}
	if out.Mins[0] != f.readings[1] {
		t.Fatalf("min = %g, want %g (node 2 unreachable without keys)", out.Mins[0], f.readings[1])
	}
}

func TestMultiInstanceVetoPicksOffendingInstance(t *testing.T) {
	// Only instance 2's minimum crosses the dropper; the veto must carry
	// that instance.
	f := newFixture(t, bypassGraph(), 95)
	cfg := f.config(95)
	cfg.Malicious = maliciousSet(2)
	cfg.Adversary = adversary.NewDropper(50)
	cfg.Instances = 4
	cfg.Readings = func(id topology.NodeID, inst int) float64 {
		if id == topology.BaseStation {
			return core.Inf()
		}
		if id == 4 && inst == 2 {
			return 1 // only this instance has a droppable minimum at the vetoer
		}
		return 100 + float64(10*inst) + float64(id)
	}
	out := run(t, cfg)
	if out.Kind != core.OutcomeVetoRevocation {
		t.Fatalf("outcome = %v", out.Kind)
	}
	if out.Veto.Instance != 2 || out.Veto.Value != 1 {
		t.Fatalf("veto = %+v, want instance 2 value 1", out.Veto)
	}
	requireRevokedMaliciousOnly(t, out, f.dep, cfg.Malicious)
}

func TestMultipathJunkStillPinpointed(t *testing.T) {
	f := newFixture(t, topology.Grid(3, 4), 96)
	cfg := f.config(96)
	cfg.Multipath = true
	cfg.Malicious = maliciousSet(7)
	cfg.Adversary = adversary.NewJunkInjector(-999)
	out := run(t, cfg)
	if out.Kind != core.OutcomeJunkAggRevocation {
		t.Fatalf("outcome = %v, want junk-agg-revocation", out.Kind)
	}
	requireRevokedMaliciousOnly(t, out, f.dep, cfg.Malicious)
}

func TestNaNReadingsIgnored(t *testing.T) {
	f := newFixture(t, topology.Grid(3, 3), 97)
	cfg := f.config(97)
	cfg.Readings = func(id topology.NodeID, _ int) float64 {
		switch id {
		case 0:
			return core.Inf()
		case 3:
			return math.NaN()
		case 5:
			return 7
		default:
			return 50 + float64(id)
		}
	}
	out := run(t, cfg)
	if out.Kind != core.OutcomeResult || out.Mins[0] != 7 {
		t.Fatalf("outcome %v mins %v, want result 7", out.Kind, out.Mins)
	}
}

func TestRepeatedRunsAccumulateAcrossRegistryCampaignKeyBudget(t *testing.T) {
	// Across a campaign, the number of distinct revoked keys grows
	// monotonically and individual announcements match the registry.
	f := newFixture(t, bypassGraph(), 98)
	f.readings[4] = 1
	registry := keydist.NewRegistry(f.dep, 0)
	strat := adversary.NewDropper(50)
	prev := 0
	for i := 0; i < 3; i++ {
		cfg := f.config(uint64(98 + i))
		cfg.Malicious = maliciousSet(2)
		cfg.Adversary = strat
		cfg.Registry = registry
		out := run(t, cfg)
		if out.Kind == core.OutcomeResult {
			break
		}
		if registry.RevokedKeyCount() <= prev {
			t.Fatalf("revoked key count did not grow: %d -> %d", prev, registry.RevokedKeyCount())
		}
		prev = registry.RevokedKeyCount()
	}
	if registry.KeyRevocationAnnouncements() != prev {
		t.Fatalf("announcements %d != distinct revoked keys %d",
			registry.KeyRevocationAnnouncements(), prev)
	}
}

func TestCapacityCappedNetworkStillCompletes(t *testing.T) {
	// With per-slot send capacity limited to the maximum degree — just
	// enough for one local broadcast, the assumption behind the paper's
	// slotted protocols — both honest runs and attacked runs complete
	// with the usual guarantees.
	f := newFixture(t, bypassGraph(), 100)
	f.readings[4] = 1
	maxDeg := 0
	for id := 0; id < f.graph.NumNodes(); id++ {
		if d := f.graph.Degree(topology.NodeID(id)); d > maxDeg {
			maxDeg = d
		}
	}
	cfg := f.config(100)
	cfg.MaxSendsPerSlot = maxDeg
	out := run(t, cfg)
	if out.Kind != core.OutcomeResult || out.Mins[0] != 1 {
		t.Fatalf("capped honest run: %v %v", out.Kind, out.Mins)
	}

	cfg2 := f.config(100)
	cfg2.MaxSendsPerSlot = maxDeg
	cfg2.Malicious = maliciousSet(2)
	cfg2.Adversary = adversary.NewDropper(50)
	out2 := run(t, cfg2)
	if out2.Kind != core.OutcomeVetoRevocation {
		t.Fatalf("capped attacked run: %v", out2.Kind)
	}
	requireRevokedMaliciousOnly(t, out2, f.dep, cfg2.Malicious)
}

func TestLossyHonestRunStaysWithinModel(t *testing.T) {
	// With mild loss and no adversary, the execution still terminates
	// with a deterministic outcome kind (result or a spurious-veto walk
	// from an honestly-lost minimum, never an error).
	f := newFixture(t, bypassGraph(), 99)
	cfg := f.config(99)
	cfg.LossRate = 0.02
	eng, err := core.NewEngine(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := eng.Run(); err != nil {
		t.Fatalf("lossy run errored: %v", err)
	}
}
