package core

import (
	"errors"
	"fmt"
	"math"
	"sort"

	"repro/internal/audit"
	"repro/internal/authbcast"
	"repro/internal/crypto"
	"repro/internal/faults"
	"repro/internal/keydist"
	"repro/internal/metrics"
	"repro/internal/simnet"
	"repro/internal/topology"
)

// ReadingFunc supplies the value a sensor contributes to one MIN instance.
// Inf() means "no contribution" (e.g. a COUNT predicate that is false).
type ReadingFunc func(id topology.NodeID, instance int) float64

// Config describes one VMAT execution.
type Config struct {
	// Graph is the physical radio topology; node 0 is the base station.
	Graph *topology.Graph
	// Deployment is the key pre-distribution (must cover Graph's nodes).
	Deployment *keydist.Deployment
	// Registry tracks revocation state. It is shared across executions of
	// a campaign; nil creates a fresh registry with DefaultTheta.
	Registry *keydist.Registry
	// Malicious marks the compromised sensors.
	Malicious map[topology.NodeID]bool
	// Adversary drives the malicious sensors; nil behaves honestly.
	Adversary Adversary
	// L is the depth bound; 0 computes the honest-component depth.
	L int
	// Instances is the number of parallel MIN instances (default 1).
	Instances int
	// Readings supplies sensor values; nil contributes Inf everywhere.
	Readings ReadingFunc
	// QueryNonce overrides the engine-generated aggregation nonce. The
	// synopsis query layer uses this so sensors can derive their
	// deterministic synopses from the same nonce the base station
	// verifies against (Section VIII).
	QueryNonce []byte
	// VerifyRecord, if non-nil, is the base station's plausibility check
	// on winning records (used to validate synopses, Section VIII). A
	// record failing it is treated as spurious.
	VerifyRecord func(r Record) bool
	// Multipath enables ring-based multi-path aggregation (Section IV-D).
	Multipath bool
	// MaxSendsPerSlot caps per-node transmissions per slot (0 unlimited).
	MaxSendsPerSlot int
	// LossRate drops each delivered message independently with this
	// probability, modelling residual radio loss. The paper assumes
	// reliable links after retransmission and expects multi-path
	// aggregation (Section IV-D) to absorb what remains; the loss
	// ablation quantifies that.
	LossRate float64
	// AlarmOnly disables pinpointing/revocation: detected corruption
	// ends the execution with OutcomeAlarm, modelling detection-only
	// protocols (SHIA [3], SECOA [19]) for the availability comparison
	// of the paper's introduction.
	AlarmOnly bool
	// Trace, when non-nil, receives execution events (phase starts,
	// minima, vetoes, predicate tests, walk steps, revocations, the
	// outcome). It is called from the engine's driver goroutine only.
	Trace func(Event)
	// Metrics, when non-nil, receives per-execution counters: executions
	// by outcome, predicate tests, revocations, and the simnet
	// byte/slot/drop totals. Counters are flushed once when the execution
	// finishes, so the per-slot hot loop is untouched; nil keeps the
	// zero-overhead path.
	Metrics *metrics.Registry
	// Faults, when non-nil and enabled, injects a deterministic fault
	// schedule (node crashes, link churn, bursty loss, partitions) into
	// the execution's network. The engine then reports degraded
	// executions explicitly: Outcome.Partial is set when sensors were
	// unreachable at answer time or the slot deadline expired. Nil (or a
	// zero spec) keeps the exact fault-free behavior.
	Faults *faults.Spec
	// ARQ, when non-nil, enables the simnet link-layer ARQ (per-hop acks,
	// timeout with bounded exponential backoff, retransmit budget), the
	// concrete form of the paper's "reliable delivery through
	// retransmission" assumption. Its byte cost is charged honestly.
	ARQ *simnet.ARQConfig
	// MaxSlots is the execution's slot deadline: once the network has
	// consumed this many slots, the engine stops starting new work and
	// returns a best-effort outcome marked Partial/DeadlineExceeded
	// instead of grinding on (pinpointing walks abort to an alarm). Zero
	// means 1000*(L+4) when faults or the ARQ are configured, unlimited
	// otherwise — so fault-free executions are byte-identical to before.
	MaxSlots int
	// AdversaryFavored delivers malicious-originated messages ahead of
	// honest ones within a slot (worst-case timing).
	AdversaryFavored bool
	// Seed makes the execution deterministic.
	Seed uint64
	// Workers caps the simnet per-slot step fan-out; 0 uses GOMAXPROCS.
	// Trial-parallel experiment harnesses set 1 so engine-internal
	// concurrency does not oversubscribe the machine.
	Workers int
}

// DefaultTheta is the sensor-revocation threshold used when the caller
// does not supply a registry. The paper's Section IX finds theta = 27
// sufficient for near-zero mis-revocation with up to 20 malicious sensors.
const DefaultTheta = 27

// Metric names flushed into Config.Metrics when an execution finishes.
// MetricExecutions additionally gets a per-outcome labeled variant,
// e.g. `core_executions_total{outcome="result"}`.
const (
	MetricExecutions       = "core_executions_total"
	MetricPredicateTests   = "core_predicate_tests_total"
	MetricRevokedKeys      = "core_revoked_keys_total"
	MetricRevokedNodes     = "core_revoked_nodes_total"
	MetricPartialResults   = "core_partial_results_total"
	MetricDeadlineExceeded = "core_deadline_exceeded_total"
	MetricUnreachable      = "core_unreachable_sensors_total"
)

// OutcomeKind classifies how an execution ended.
type OutcomeKind int

const (
	// OutcomeResult means the minima were returned and are correct.
	OutcomeResult OutcomeKind = iota + 1
	// OutcomeVetoRevocation means a legitimate veto triggered pinpointing
	// and at least one adversary-held key was revoked.
	OutcomeVetoRevocation
	// OutcomeJunkAggRevocation means a spurious aggregation minimum
	// triggered pinpointing and revocation.
	OutcomeJunkAggRevocation
	// OutcomeJunkConfRevocation means a spurious veto triggered
	// pinpointing and revocation.
	OutcomeJunkConfRevocation
	// OutcomeAlarm means corruption was detected but pinpointing is
	// disabled (Config.AlarmOnly): the execution ends with an alarm and
	// the adversary keeps its keys. This is the behavior of
	// detection-only secure aggregation (SHIA [3], SECOA [19]) that the
	// paper's introduction argues against: "even a single malicious
	// sensor can keep failing the final result verification without
	// exposing itself".
	OutcomeAlarm
)

// String names the outcome kind.
func (k OutcomeKind) String() string {
	switch k {
	case OutcomeResult:
		return "result"
	case OutcomeVetoRevocation:
		return "veto-revocation"
	case OutcomeJunkAggRevocation:
		return "junk-agg-revocation"
	case OutcomeJunkConfRevocation:
		return "junk-conf-revocation"
	case OutcomeAlarm:
		return "alarm"
	default:
		return fmt.Sprintf("OutcomeKind(%d)", int(k))
	}
}

// Outcome reports one execution.
type Outcome struct {
	Kind OutcomeKind
	// Mins holds the per-instance minima when Kind is OutcomeResult.
	Mins []float64
	// RevokedKeys lists pool key indices revoked this execution
	// (individually announced ones only).
	RevokedKeys []int
	// RevokedNodes lists sensors wholly revoked this execution (via the
	// theta threshold or directly).
	RevokedNodes []topology.NodeID
	// PredicateTests counts keyed predicate tests run during pinpointing.
	PredicateTests int
	// Slots is the total network slots consumed.
	Slots int
	// FloodingRounds is Slots normalized by L.
	FloodingRounds float64
	// Stats is the network accounting for the whole execution.
	Stats simnet.Stats
	// AggMaxNodeBytes and AggMedianNodeBytes isolate the aggregation
	// phase's per-sensor traffic (the paper's 2.4KB-per-query metric):
	// the maximum and the median sensor's bytes sent plus received during
	// the aggregation slots only.
	AggMaxNodeBytes    int64
	AggMedianNodeBytes int64
	// PhaseSlots breaks the execution's slots down by phase; Broadcast
	// covers all authenticated-broadcast floods (announcements,
	// predicate-test descriptors, revocations) and Pinpoint the
	// predicate-test reply waves.
	PhaseSlots PhaseSlotBreakdown
	// TrailKind reports which audit-trail kind pinpointing walked (0 when
	// the execution returned a result).
	TrailKind audit.Kind
	// Veto is the veto that triggered pinpointing, if any.
	Veto *VetoMsg
	// Partial marks a degraded execution: when faults are injected, the
	// outcome is best-effort because sensors were unreachable from the
	// base station at the moment the answer was fixed, or because the
	// slot deadline expired. A Partial result's minima cover only the
	// reachable component.
	Partial bool
	// Unreachable counts sensors that had no live path to the base
	// station when the aggregation phase ended (crashed sensors and
	// sensors cut off behind crashed nodes, downed links, or a
	// partition). Zero when no faults are configured.
	Unreachable int
	// DeadlineExceeded reports that the execution hit Config.MaxSlots and
	// returned early instead of completing its remaining phases.
	DeadlineExceeded bool
	// Faults counts the injected fault events (crashes, recoveries, link
	// churn, burst/partition slots) this execution experienced.
	Faults faults.Counters
}

// Engine executes one VMAT query over a simulated sensor network.
type Engine struct {
	cfg       Config
	l         int
	instances int
	net       *simnet.Network
	sensors   []sensorState // flat per-node state, indexed by NodeID
	rng       *crypto.Stream
	channel   *authbcast.Channel
	verifier  authbcast.Verifier

	queryNonce    []byte
	confirmNonce  []byte
	announcedMins []float64
	phaseStart    int

	// bsDelivery remembers, per instance, which edge key and slot
	// delivered the current winning record to the base station — the
	// starting point of junk-triggered pinpointing.
	bsDelivery []deliveryInfo

	predicateTests int
	revokedKeys    []int
	revokedNodes   []topology.NodeID

	aggMaxNodeBytes    int64
	aggMedianNodeBytes int64
	phaseSlots         PhaseSlotBreakdown
	ran                bool

	// Fault-injection state: the deterministic schedule driving the
	// network's fault hook (nil when no faults are configured), the slot
	// deadline, the unreachable-sensor count sampled when the aggregation
	// phase fixed the answer, and whether the deadline fired.
	sched       *faults.Schedule
	maxSlots    int
	unreachable int
	deadlineHit bool
}

// PhaseSlotBreakdown partitions an execution's slots by protocol phase.
type PhaseSlotBreakdown struct {
	Tree         int
	Aggregation  int
	Confirmation int
	Broadcast    int
	Pinpoint     int
}

// Total sums the breakdown.
func (p PhaseSlotBreakdown) Total() int {
	return p.Tree + p.Aggregation + p.Confirmation + p.Broadcast + p.Pinpoint
}

type deliveryInfo struct {
	inKey int
	slot  int // local aggregation slot of delivery
}

// NewEngine validates the configuration and prepares an execution.
func NewEngine(cfg Config) (*Engine, error) {
	if cfg.Graph == nil || cfg.Deployment == nil {
		return nil, errors.New("core: Graph and Deployment are required")
	}
	if cfg.Graph.NumNodes() != cfg.Deployment.NumNodes() {
		return nil, fmt.Errorf("core: graph has %d nodes but deployment has %d",
			cfg.Graph.NumNodes(), cfg.Deployment.NumNodes())
	}
	if cfg.Instances == 0 {
		cfg.Instances = 1
	}
	if cfg.Instances < 0 {
		return nil, fmt.Errorf("core: negative instance count %d", cfg.Instances)
	}
	if cfg.Registry == nil {
		cfg.Registry = keydist.NewRegistry(cfg.Deployment, DefaultTheta)
	}
	if cfg.Malicious == nil {
		cfg.Malicious = map[topology.NodeID]bool{}
	}
	if cfg.Adversary == nil {
		cfg.Adversary = HonestAdversary{}
	}
	if err := cfg.Faults.Validate(cfg.Graph.NumNodes()); err != nil {
		return nil, fmt.Errorf("core: %w", err)
	}
	if err := cfg.ARQ.Validate(); err != nil {
		return nil, fmt.Errorf("core: %w", err)
	}
	l := cfg.L
	if l == 0 {
		l = cfg.Graph.HonestDepth(topology.BaseStation, cfg.Malicious)
	}
	if l <= 0 {
		l = 1
	}

	e := &Engine{
		cfg:       cfg,
		l:         l,
		instances: cfg.Instances,
		rng:       crypto.NewStreamFromSeed(cfg.Seed ^ 0x56a1a7),
	}
	e.channel = authbcast.NewChannel(crypto.DeriveKey(crypto.KeyFromUint64(cfg.Seed), "authbcast", 0))
	e.verifier = e.channel.Verifier()

	netCfg := simnet.Config{MaxSendsPerSlot: cfg.MaxSendsPerSlot, Workers: cfg.Workers, ARQ: cfg.ARQ}
	if cfg.LossRate > 0 {
		netCfg.DropRate = cfg.LossRate
		netCfg.DropRNG = crypto.NewStreamFromSeed(cfg.Seed ^ 0x10552a7e)
	}
	if cfg.Faults.Enabled() {
		e.sched = faults.NewSchedule(*cfg.Faults, cfg.Graph, cfg.Seed^0xfa0175)
		netCfg.Faults = e.sched
	}
	e.maxSlots = cfg.MaxSlots
	if e.maxSlots == 0 && (e.sched != nil || cfg.ARQ != nil) {
		e.maxSlots = 1000 * (l + 4)
	}
	if cfg.AdversaryFavored {
		netCfg.Order = simnet.MaliciousFirstOrder(cfg.Malicious)
	}
	if len(cfg.Malicious) > 0 {
		mal := cfg.Malicious
		netCfg.ExtraLink = func(from, to topology.NodeID) bool { return mal[from] && mal[to] }
	}
	e.net = simnet.New(cfg.Graph, netCfg)
	if len(cfg.Malicious) > 0 {
		// Malicious sensors may act spontaneously on any slot, so sparse
		// phase sweeps must never skip them.
		active := make([]topology.NodeID, 0, len(cfg.Malicious))
		for id := range cfg.Malicious {
			active = append(active, id)
		}
		e.net.SetAlwaysActive(active)
	}

	// Per-node protocol state lives in one flat array: at million-node
	// scale this is a single allocation with linear access, not n heap
	// objects chased through pointers.
	n := cfg.Graph.NumNodes()
	e.sensors = make([]sensorState, n)
	for id := 0; id < n; id++ {
		e.sensors[id].init(topology.NodeID(id), e.instances,
			e.rng.Fork([]byte("sensor"), crypto.Uint64(uint64(id))))
	}
	e.bsDelivery = make([]deliveryInfo, e.instances)
	for i := range e.bsDelivery {
		e.bsDelivery[i] = deliveryInfo{inKey: NoKey}
	}
	return e, nil
}

// L returns the depth bound in use.
func (e *Engine) L() int { return e.l }

// Registry returns the revocation registry the engine updates.
func (e *Engine) Registry() *keydist.Registry { return e.cfg.Registry }

// Run executes the protocol of Figure 1: tree formation, aggregation,
// confirmation, and — when interference is detected — pinpointing and
// revocation. It returns the execution outcome.
func (e *Engine) Run() (*Outcome, error) {
	if e.ran {
		return nil, errors.New("core: an Engine executes one query; construct a new Engine per execution")
	}
	e.ran = true
	e.queryNonce = e.cfg.QueryNonce
	if e.queryNonce == nil {
		e.queryNonce = e.freshNonce("query")
	}

	// Step 0-1: announce the execution, then form the aggregation tree.
	e.emit(Event{Kind: EventPhase, Label: "announce"})
	e.announce(StartAnnounce{Nonce: e.queryNonce, Instances: e.instances, L: e.l})
	e.emit(Event{Kind: EventPhase, Label: "tree-formation"})
	beforeTree := e.net.Slot()
	e.runTreeFormation()
	e.phaseSlots.Tree += e.net.Slot() - beforeTree
	e.emit(Event{Kind: EventPhase, Label: "aggregation"})

	// Step 2-4: aggregate; a spurious winning minimum triggers
	// junk-triggered pinpointing (Figure 1 step 4).
	beforeAgg := e.net.Stats()
	beforeAggSlot := e.net.Slot()
	mins := e.runAggregation()
	e.noteAggregationBytes(beforeAgg, e.net.Stats())
	e.phaseSlots.Aggregation += e.net.Slot() - beforeAggSlot
	if e.sched != nil {
		// Sample coverage the moment the answer is fixed: any sensor with
		// no live path to the base station right now could not have
		// contributed, so the result is at best partial.
		e.unreachable = e.sched.Unreachable(topology.BaseStation)
	}
	for inst, r := range mins {
		if math.IsInf(r.Value, 1) {
			continue // no minimum received: treated as infinity (step 3)
		}
		valid := e.recordValid(r)
		e.emit(Event{Kind: EventMinReceived, Instance: inst, Value: r.Value, Node: r.Origin, OK: valid, KeyIndex: NoKey})
		if !valid {
			if e.cfg.AlarmOnly {
				return e.outcomeEvent(e.finish(&Outcome{Kind: OutcomeAlarm})), nil
			}
			return e.outcomeEventErr(e.pinpointJunkAgg(inst, r))
		}
	}

	// Step 5: broadcast the minimum and wait for vetoes.
	e.confirmNonce = e.freshNonce("confirm")
	values := make([]float64, e.instances)
	for i, r := range mins {
		values[i] = r.Value
	}
	e.announcedMins = values
	if e.deadlineExceeded() {
		// The slot budget is spent; skip confirmation and return what we
		// have as an explicitly partial best-effort result.
		return e.outcomeEvent(e.finish(&Outcome{Kind: OutcomeResult, Mins: values})), nil
	}
	e.emit(Event{Kind: EventPhase, Label: "confirmation"})
	e.announce(MinAnnounce{Nonce: e.confirmNonce, Mins: values})
	beforeConfirm := e.net.Slot()
	vetoes := e.runConfirmation()
	e.phaseSlots.Confirmation += e.net.Slot() - beforeConfirm

	// Step 6: no veto means the minima are correct.
	if len(vetoes) == 0 {
		return e.outcomeEvent(e.finish(&Outcome{Kind: OutcomeResult, Mins: values})), nil
	}

	// Steps 7-8: classify the first veto received and pinpoint.
	first := vetoes[0]
	valid := e.vetoValid(first.veto)
	e.emit(Event{Kind: EventVetoReceived, Node: first.veto.Vetoer,
		Instance: first.veto.Instance, Value: first.veto.Value, OK: valid, KeyIndex: first.inKey})
	if e.cfg.AlarmOnly {
		return e.outcomeEvent(e.finish(&Outcome{Kind: OutcomeAlarm, Veto: &first.veto})), nil
	}
	if valid {
		return e.outcomeEventErr(e.pinpointVeto(first.veto))
	}
	return e.outcomeEventErr(e.pinpointJunkConf(first))
}

// TreeLevels runs only the opening announcement and the timestamp-based
// tree formation, returning every node's resulting level (-1 when the
// flood never reached it, 0 for the base station). It exists for
// tree-formation experiments (the Figure 2(c) wormhole comparison); a
// full execution uses Run.
func (e *Engine) TreeLevels() ([]int, error) {
	if e.ran {
		return nil, errors.New("core: an Engine executes one query; construct a new Engine per execution")
	}
	e.ran = true
	e.queryNonce = e.cfg.QueryNonce
	if e.queryNonce == nil {
		e.queryNonce = e.freshNonce("query")
	}
	e.announce(StartAnnounce{Nonce: e.queryNonce, Instances: e.instances, L: e.l})
	e.runTreeFormation()
	levels := make([]int, len(e.sensors))
	for id := range e.sensors {
		levels[id] = e.sensors[id].level
	}
	return levels, nil
}

// recordValid applies the base station's checks to a winning record: the
// origin must be a known, unrevoked sensor, the MAC must verify under its
// sensor key, and the optional plausibility check must pass.
func (e *Engine) recordValid(r Record) bool {
	if int(r.Origin) < 0 || int(r.Origin) >= e.cfg.Graph.NumNodes() {
		return false
	}
	if e.cfg.Registry.NodeRevoked(r.Origin) {
		return false
	}
	if !r.VerifyWith(e.cfg.Deployment.SensorKey(r.Origin), e.queryNonce) {
		return false
	}
	if e.cfg.VerifyRecord != nil && !e.cfg.VerifyRecord(r) {
		return false
	}
	return true
}

// vetoValid applies the base station's checks to a veto: known unrevoked
// vetoer, valid MAC, plausible level, and a value strictly below the
// announced minimum of its instance.
func (e *Engine) vetoValid(v VetoMsg) bool {
	if int(v.Vetoer) <= 0 || int(v.Vetoer) >= e.cfg.Graph.NumNodes() {
		return false
	}
	if e.cfg.Registry.NodeRevoked(v.Vetoer) {
		return false
	}
	if v.Level < 1 || v.Level > e.l {
		return false
	}
	if v.Instance < 0 || v.Instance >= e.instances {
		return false
	}
	if !(v.Value < e.announcedMins[v.Instance]) {
		return false
	}
	return v.VerifyWith(e.cfg.Deployment.SensorKey(v.Vetoer), e.confirmNonce)
}

// finish stamps the cost counters into an outcome.
func (e *Engine) finish(o *Outcome) *Outcome {
	o.PredicateTests = e.predicateTests
	o.RevokedKeys = append([]int(nil), e.revokedKeys...)
	o.RevokedNodes = append([]topology.NodeID(nil), e.revokedNodes...)
	o.Stats = e.net.Stats()
	o.Slots = o.Stats.Slots
	o.FloodingRounds = float64(o.Slots) / float64(e.l)
	o.AggMaxNodeBytes = e.aggMaxNodeBytes
	o.AggMedianNodeBytes = e.aggMedianNodeBytes
	o.PhaseSlots = e.phaseSlots
	o.DeadlineExceeded = e.deadlineHit
	o.Unreachable = e.unreachable
	if e.sched != nil {
		o.Faults = e.sched.Counters()
	}
	o.Partial = o.Unreachable > 0 || o.DeadlineExceeded
	if reg := e.cfg.Metrics; reg != nil {
		o.Stats.ReportTo(reg)
		reg.Counter(MetricExecutions).Inc()
		reg.Counter(MetricExecutions + `{outcome="` + o.Kind.String() + `"}`).Inc()
		reg.Counter(MetricPredicateTests).Add(int64(o.PredicateTests))
		reg.Counter(MetricRevokedKeys).Add(int64(len(o.RevokedKeys)))
		reg.Counter(MetricRevokedNodes).Add(int64(len(o.RevokedNodes)))
		if o.Partial {
			reg.Counter(MetricPartialResults).Inc()
		}
		if o.DeadlineExceeded {
			reg.Counter(MetricDeadlineExceeded).Inc()
		}
		reg.Counter(MetricUnreachable).Add(int64(o.Unreachable))
	}
	return o
}

// deadlineExceeded reports (and records) that the execution's slot budget
// is spent. Phase boundaries and pinpointing walk steps consult it so a
// faulty network degrades into a timely partial answer or alarm instead
// of an unbounded grind; with no deadline configured it is always false.
func (e *Engine) deadlineExceeded() bool {
	if e.maxSlots > 0 && e.net.Slot() >= e.maxSlots {
		e.deadlineHit = true
		return true
	}
	return false
}

// outcomeEvent emits the final outcome event and passes the outcome
// through.
func (e *Engine) outcomeEvent(o *Outcome) *Outcome {
	e.emit(Event{Kind: EventOutcome, Label: o.Kind.String()})
	return o
}

// outcomeEventErr is outcomeEvent for (outcome, error) pairs.
func (e *Engine) outcomeEventErr(o *Outcome, err error) (*Outcome, error) {
	if err != nil {
		return o, err
	}
	return e.outcomeEvent(o), nil
}

// noteAggregationBytes isolates per-node traffic of the aggregation phase
// from two whole-network snapshots.
func (e *Engine) noteAggregationBytes(before, after simnet.Stats) {
	diffs := make([]int64, len(after.BytesSent))
	for i := range diffs {
		diffs[i] = (after.BytesSent[i] - before.BytesSent[i]) +
			(after.BytesReceived[i] - before.BytesReceived[i])
		if diffs[i] > e.aggMaxNodeBytes {
			e.aggMaxNodeBytes = diffs[i]
		}
	}
	sort.Slice(diffs, func(i, j int) bool { return diffs[i] < diffs[j] })
	e.aggMedianNodeBytes = diffs[len(diffs)/2]
}

// announce floods an authenticated broadcast to all sensors, charging its
// cost to the shared network and the Broadcast slot bucket.
func (e *Engine) announce(payload authbcast.Encodable) {
	ann := e.channel.Announce(payload)
	adv := e.cfg.Adversary
	mal := e.cfg.Malicious
	before := e.net.Slot()
	authbcast.Flood(e.net, e.verifier, topology.BaseStation, ann,
		func(id topology.NodeID) bool {
			if mal[id] {
				return adv.ForwardAuthBroadcast(id)
			}
			return true
		}, 2*e.l+4)
	e.phaseSlots.Broadcast += e.net.Slot() - before
}

func (e *Engine) freshNonce(label string) []byte {
	return append([]byte(label), crypto.Uint64(e.rng.Uint64())...)
}

// isMalicious reports whether a node is compromised (and not yet wholly
// revoked — a revoked sensor is cut off by every honest receiver anyway,
// but it may still transmit).
func (e *Engine) isMalicious(id topology.NodeID) bool { return e.cfg.Malicious[id] }

// coalitionHolds reports whether any malicious node's ring contains the
// pool key.
func (e *Engine) coalitionHolds(index int) bool {
	for id := range e.cfg.Malicious {
		if e.cfg.Deployment.Holds(id, index) {
			return true
		}
	}
	return false
}

// edgeKey returns the canonical edge key between two nodes: the lowest
// shared pool index that is not revoked.
func (e *Engine) edgeKey(a, b topology.NodeID) (int, bool) {
	reg := e.cfg.Registry
	return e.cfg.Deployment.EdgeKeyIndex(a, b, reg.KeyRevoked)
}

// ownRecord builds the honest record of a sensor for one instance.
func (e *Engine) ownRecord(id topology.NodeID, instance int) Record {
	value := Inf()
	if e.cfg.Readings != nil {
		value = e.cfg.Readings(id, instance)
	}
	if math.IsInf(value, 1) {
		return Record{Origin: id, Instance: instance, Value: Inf()}
	}
	return NewRecord(id, instance, value, e.cfg.Deployment.SensorKey(id), e.queryNonce)
}

// sendSealed is the honest send path: seal with the canonical edge key
// shared with the peer and transmit. It fails silently when no unrevoked
// shared key exists (the secure graph lost this edge).
func (e *Engine) sendSealed(ctx *simnet.Context, to topology.NodeID, payload inner) (int, bool) {
	idx, ok := e.edgeKey(ctx.Node(), to)
	if !ok {
		return NoKey, false
	}
	env := Seal(idx, e.cfg.Deployment.PoolKey(idx), ctx.Node(), to, payload)
	if !ctx.Send(to, env) {
		return NoKey, false
	}
	return idx, true
}

// acceptEnvelope is the honest receive path: the receiver must hold the
// envelope's key, the key and the physical sender must not be revoked,
// and the edge MAC must verify for this link.
func (e *Engine) acceptEnvelope(m simnet.Message, self topology.NodeID) (inner, int, bool) {
	env, ok := m.Payload.(Envelope)
	if !ok {
		return nil, NoKey, false
	}
	reg := e.cfg.Registry
	if reg.KeyRevoked(env.KeyIndex) || reg.NodeRevoked(m.From) {
		return nil, NoKey, false
	}
	if !e.cfg.Deployment.Holds(self, env.KeyIndex) {
		return nil, NoKey, false
	}
	payload, ok := env.Open(e.cfg.Deployment.PoolKey(env.KeyIndex), m.From, self)
	if !ok {
		return nil, NoKey, false
	}
	return payload, env.KeyIndex, true
}

// phaseStep builds a StepFunc that runs honest logic for honest nodes and
// defers to the adversary for malicious ones.
func (e *Engine) phaseStep(phase Phase, honest func(*sensorState, *simnet.Context)) simnet.StepFunc {
	return func(ctx *simnet.Context) {
		s := &e.sensors[ctx.Node()]
		if e.isMalicious(s.id) {
			e.cfg.Adversary.Step(phase, &AdvContext{
				engine: e, state: s, ctx: ctx, phase: phase, honest: honest,
			})
			return
		}
		honest(s, ctx)
	}
}

// revokeKey performs and announces one edge-key revocation, applying the
// theta-threshold cascade.
func (e *Engine) revokeKey(index int) {
	crossed := e.cfg.Registry.RevokeKey(index)
	e.revokedKeys = append(e.revokedKeys, index)
	e.emit(Event{Kind: EventRevocation, KeyIndex: index, Node: NoNode})
	e.announce(RevocationAnnounce{KeyIndex: index, Node: NoNode})
	for _, id := range crossed {
		e.revokedNodes = append(e.revokedNodes, id)
		e.emit(Event{Kind: EventRevocation, Node: id, KeyIndex: NoKey})
		e.announce(RevocationAnnounce{Node: id, RingSeed: e.cfg.Deployment.RingSeed(id)})
	}
}

// revokeNode performs and announces a whole-sensor revocation.
func (e *Engine) revokeNode(id topology.NodeID) {
	newly := e.cfg.Registry.RevokeNode(id)
	for _, n := range newly {
		e.revokedNodes = append(e.revokedNodes, n)
		e.emit(Event{Kind: EventRevocation, Node: n, KeyIndex: NoKey})
		e.announce(RevocationAnnounce{Node: n, RingSeed: e.cfg.Deployment.RingSeed(n)})
	}
}
