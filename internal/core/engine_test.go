package core_test

import (
	"math"
	"testing"

	"repro/internal/adversary"
	"repro/internal/core"
	"repro/internal/crypto"
	"repro/internal/keydist"
	"repro/internal/topology"
)

// testParams gives essentially every pair of sensors a shared key
// (r = 3.7*sqrt(u), share probability > 0.999998), so the secure graph
// tracks the radio graph in protocol tests.
var testParams = keydist.Params{PoolSize: 600, RingSize: 90}

// fixture bundles a topology with matching key material and readings.
type fixture struct {
	graph    *topology.Graph
	dep      *keydist.Deployment
	readings map[topology.NodeID]float64
}

func newFixture(t *testing.T, g *topology.Graph, seed uint64) *fixture {
	t.Helper()
	dep, err := keydist.NewDeployment(g.NumNodes(), testParams,
		crypto.KeyFromUint64(seed), crypto.NewStreamFromSeed(seed))
	if err != nil {
		t.Fatalf("NewDeployment: %v", err)
	}
	f := &fixture{graph: g, dep: dep, readings: make(map[topology.NodeID]float64)}
	// Deterministic, distinct readings; node IDs map to values so tests
	// can place the minimum precisely.
	for id := 1; id < g.NumNodes(); id++ {
		f.readings[topology.NodeID(id)] = float64(100 + id)
	}
	return f
}

func (f *fixture) config(seed uint64) core.Config {
	readings := f.readings
	return core.Config{
		Graph:      f.graph,
		Deployment: f.dep,
		Readings: func(id topology.NodeID, _ int) float64 {
			if v, ok := readings[id]; ok {
				return v
			}
			return core.Inf()
		},
		Seed: seed,
	}
}

func (f *fixture) trueMin(exclude map[topology.NodeID]bool) float64 {
	min := core.Inf()
	for id, v := range f.readings {
		if exclude[id] {
			continue
		}
		if v < min {
			min = v
		}
	}
	return min
}

func run(t *testing.T, cfg core.Config) *core.Outcome {
	t.Helper()
	eng, err := core.NewEngine(cfg)
	if err != nil {
		t.Fatalf("NewEngine: %v", err)
	}
	out, err := eng.Run()
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	return out
}

func TestHonestMinLine(t *testing.T) {
	f := newFixture(t, topology.Line(6), 1)
	f.readings[4] = 3 // the minimum, deep in the line
	out := run(t, f.config(1))
	if out.Kind != core.OutcomeResult {
		t.Fatalf("outcome = %v, want result", out.Kind)
	}
	if out.Mins[0] != 3 {
		t.Fatalf("min = %g, want 3", out.Mins[0])
	}
}

func TestHonestMinGrid(t *testing.T) {
	f := newFixture(t, topology.Grid(4, 5), 2)
	f.readings[13] = 7.5
	out := run(t, f.config(2))
	if out.Kind != core.OutcomeResult || out.Mins[0] != 7.5 {
		t.Fatalf("outcome = %v mins = %v, want result 7.5", out.Kind, out.Mins)
	}
}

func TestHonestMinRandomGeometric(t *testing.T) {
	g, _ := topology.RandomGeometric(60, 0.22, crypto.NewStreamFromSeed(3))
	f := newFixture(t, g, 3)
	out := run(t, f.config(3))
	if out.Kind != core.OutcomeResult {
		t.Fatalf("outcome = %v, want result", out.Kind)
	}
	if want := f.trueMin(nil); out.Mins[0] != want {
		t.Fatalf("min = %g, want %g", out.Mins[0], want)
	}
}

func TestHonestMinStarSingleLevel(t *testing.T) {
	f := newFixture(t, topology.Star(8), 4)
	f.readings[5] = 1
	out := run(t, f.config(4))
	if out.Kind != core.OutcomeResult || out.Mins[0] != 1 {
		t.Fatalf("star: outcome %v mins %v", out.Kind, out.Mins)
	}
}

func TestHonestConstantFloodingRounds(t *testing.T) {
	// Theorem 2/7: the happy path takes O(1) flooding rounds regardless
	// of network size.
	for _, n := range []int{20, 60, 120} {
		g, _ := topology.RandomGeometric(n, 0.25, crypto.NewStreamFromSeed(uint64(n)))
		f := newFixture(t, g, uint64(n))
		out := run(t, f.config(uint64(n)))
		if out.Kind != core.OutcomeResult {
			t.Fatalf("n=%d: outcome %v", n, out.Kind)
		}
		if out.FloodingRounds > 12 {
			t.Fatalf("n=%d: %f flooding rounds, want O(1) (<12)", n, out.FloodingRounds)
		}
	}
}

func TestHonestMultiInstance(t *testing.T) {
	f := newFixture(t, topology.Grid(3, 4), 5)
	cfg := f.config(5)
	cfg.Instances = 4
	cfg.Readings = func(id topology.NodeID, inst int) float64 {
		if id == 0 {
			return core.Inf()
		}
		return float64(10*(inst+1)) + float64(id)
	}
	out := run(t, cfg)
	if out.Kind != core.OutcomeResult {
		t.Fatalf("outcome = %v", out.Kind)
	}
	for inst, got := range out.Mins {
		want := float64(10*(inst+1)) + 1
		if got != want {
			t.Fatalf("instance %d min = %g, want %g", inst, got, want)
		}
	}
}

func TestHonestMultipathMatchesSinglePath(t *testing.T) {
	g := topology.Grid(4, 4)
	f := newFixture(t, g, 6)
	f.readings[15] = 2
	single := run(t, f.config(6))
	cfg := f.config(6)
	cfg.Multipath = true
	multi := run(t, cfg)
	if single.Mins[0] != multi.Mins[0] {
		t.Fatalf("single-path min %g != multipath min %g", single.Mins[0], multi.Mins[0])
	}
	if multi.Kind != core.OutcomeResult {
		t.Fatalf("multipath outcome %v", multi.Kind)
	}
}

func TestEmptyNetworkReturnsInfinity(t *testing.T) {
	f := newFixture(t, topology.Line(4), 7)
	cfg := f.config(7)
	cfg.Readings = nil // nobody contributes
	out := run(t, cfg)
	if out.Kind != core.OutcomeResult || !math.IsInf(out.Mins[0], 1) {
		t.Fatalf("outcome %v mins %v, want result [+Inf]", out.Kind, out.Mins)
	}
}

// bypassGraph is the canonical attack topology for these tests:
//
//	0 — 1 — 2(M) — 4(V)
//	    |          |
//	    3 —— 5 ————+
//
// The vetoer (node 4) adopts the malicious node 2 as its aggregation
// parent (node 2's tree-formation forward reaches it first), so dropped
// values must cross the adversary — yet the honest subgraph stays
// connected through 1-3-5-4, satisfying the paper's no-partition
// assumption, and the SOF veto flood routes around the dropper.
func bypassGraph() *topology.Graph {
	g := topology.New(6)
	g.AddEdge(0, 1)
	g.AddEdge(1, 2)
	g.AddEdge(2, 4)
	g.AddEdge(1, 3)
	g.AddEdge(3, 5)
	g.AddEdge(5, 4)
	return g
}

// maliciousSet is a convenience constructor.
func maliciousSet(ids ...topology.NodeID) map[topology.NodeID]bool {
	m := make(map[topology.NodeID]bool, len(ids))
	for _, id := range ids {
		m[id] = true
	}
	return m
}

// requireRevokedMaliciousOnly asserts the soundness half of Theorem 6:
// every revoked key is held by a malicious sensor and every revoked node
// is malicious.
func requireRevokedMaliciousOnly(t *testing.T, out *core.Outcome, dep *keydist.Deployment, malicious map[topology.NodeID]bool) {
	t.Helper()
	if len(out.RevokedKeys) == 0 && len(out.RevokedNodes) == 0 {
		t.Fatal("pinpointing revoked nothing")
	}
	for _, k := range out.RevokedKeys {
		held := false
		for id := range malicious {
			if dep.Holds(id, k) {
				held = true
				break
			}
		}
		if !held {
			t.Fatalf("revoked key %d is held by no malicious sensor", k)
		}
	}
	for _, id := range out.RevokedNodes {
		if !malicious[id] {
			t.Fatalf("honest sensor %d was revoked", id)
		}
	}
}

func TestDroppingAttackTriggersVetoRevocation(t *testing.T) {
	// The minimum at node 4 takes the malicious node 2 as its aggregation
	// parent, which silently drops it. The confirmation veto from node 4
	// floods around the dropper, triggers pinpointing, and the revoked
	// key must belong to the dropper.
	f := newFixture(t, bypassGraph(), 8)
	f.readings[4] = 1
	cfg := f.config(8)
	cfg.Malicious = maliciousSet(2)
	cfg.Adversary = adversary.NewDropper(50)
	out := run(t, cfg)
	if out.Kind != core.OutcomeVetoRevocation {
		t.Fatalf("outcome = %v, want veto-revocation", out.Kind)
	}
	if out.Veto == nil || out.Veto.Value != 1 {
		t.Fatalf("veto = %+v, want value 1", out.Veto)
	}
	requireRevokedMaliciousOnly(t, out, f.dep, cfg.Malicious)
}

func TestDroppingAttackPinpointingRounds(t *testing.T) {
	// Theorem 6: pinpointing completes within O(L log n) flooding rounds.
	f := newFixture(t, bypassGraph(), 9)
	f.readings[4] = 1
	cfg := f.config(9)
	cfg.Malicious = maliciousSet(2)
	cfg.Adversary = adversary.NewDropper(50)
	out := run(t, cfg)
	if out.PredicateTests == 0 {
		t.Fatal("no predicate tests recorded")
	}
	// L=4, n=6: the walk is at most L hops of O(log n + log r) tests.
	maxTests := 4 * 2 * (varintLog2(len(f.dep.Ring(0))) + 2*varintLog2(6) + 4)
	if out.PredicateTests > maxTests {
		t.Fatalf("%d predicate tests exceeds O(L log n) bound %d", out.PredicateTests, maxTests)
	}
}

func varintLog2(n int) int {
	l := 0
	for v := 1; v < n; v <<= 1 {
		l++
	}
	return l
}

func TestHiderAttackRevokesHidersKey(t *testing.T) {
	// The malicious sensor hides its minimal reading during aggregation,
	// then vetoes validly. Pinpointing must still end revoking one of its
	// keys (Section IV-C: "The audit trail recorded in such a case will
	// still be equivalent to the malicious sensor dropping that value").
	// The hider sits at the center of a 3x3 grid so the honest subgraph
	// stays connected.
	f := newFixture(t, topology.Grid(3, 3), 10)
	f.readings[4] = 0.5 // the hider's own (withheld) minimum
	cfg := f.config(10)
	cfg.Malicious = maliciousSet(4)
	cfg.Adversary = adversary.NewHider()
	out := run(t, cfg)
	if out.Kind != core.OutcomeVetoRevocation {
		t.Fatalf("outcome = %v, want veto-revocation", out.Kind)
	}
	requireRevokedMaliciousOnly(t, out, f.dep, cfg.Malicious)
}

func TestJunkInjectionTriggersJunkRevocation(t *testing.T) {
	f := newFixture(t, topology.Grid(3, 4), 11)
	cfg := f.config(11)
	cfg.Malicious = maliciousSet(7)
	cfg.Adversary = adversary.NewJunkInjector(-1000)
	out := run(t, cfg)
	if out.Kind != core.OutcomeJunkAggRevocation {
		t.Fatalf("outcome = %v, want junk-agg-revocation", out.Kind)
	}
	requireRevokedMaliciousOnly(t, out, f.dep, cfg.Malicious)
}

func TestChokingAttackTriggersJunkConfRevocation(t *testing.T) {
	// Node 2 drops the minimum and floods spurious vetoes so the honest
	// veto from node 4 is beaten everywhere (adversary-favored delivery).
	// Lemma 1 still guarantees the base station receives *some* veto; the
	// spurious one triggers junk-triggered pinpointing in the
	// confirmation phase.
	f := newFixture(t, bypassGraph(), 12)
	f.readings[4] = 1
	cfg := f.config(12)
	cfg.Malicious = maliciousSet(2)
	cfg.Adversary = adversary.NewDropAndChoke(50)
	cfg.AdversaryFavored = true
	out := run(t, cfg)
	if out.Kind != core.OutcomeJunkConfRevocation && out.Kind != core.OutcomeVetoRevocation {
		t.Fatalf("outcome = %v, want a confirmation-phase revocation", out.Kind)
	}
	requireRevokedMaliciousOnly(t, out, f.dep, cfg.Malicious)
}

func TestMuteAttackYieldsVetoAndRevocation(t *testing.T) {
	// A mute (jammed) malicious sensor swallows the vetoer's value: it
	// never arrives, the base station announces a larger minimum, the
	// vetoer objects, and pinpointing revokes a key on the mute segment.
	f := newFixture(t, bypassGraph(), 13)
	f.readings[4] = 2
	cfg := f.config(13)
	cfg.Malicious = maliciousSet(2)
	cfg.Adversary = adversary.NewMute()
	out := run(t, cfg)
	if out.Kind != core.OutcomeVetoRevocation {
		t.Fatalf("outcome = %v, want veto-revocation", out.Kind)
	}
	requireRevokedMaliciousOnly(t, out, f.dep, cfg.Malicious)
}

func TestLyingDuringPinpointingStillRevokesMaliciousKey(t *testing.T) {
	// The dropper additionally answers every predicate test "yes",
	// dragging the walk around; Lemma 5/Theorem 6 require that whatever
	// gets revoked is still held by a malicious sensor.
	f := newFixture(t, bypassGraph(), 14)
	f.readings[4] = 1
	cfg := f.config(14)
	cfg.Malicious = maliciousSet(2)
	s := adversary.NewDropper(50)
	s.Answer = adversary.AnswerAdmit
	cfg.Adversary = s
	out := run(t, cfg)
	if out.Kind != core.OutcomeVetoRevocation {
		t.Fatalf("outcome = %v, want veto-revocation", out.Kind)
	}
	requireRevokedMaliciousOnly(t, out, f.dep, cfg.Malicious)
}

func TestFramingAttackNeverBlamesVictim(t *testing.T) {
	// Lemma 5 / Figure 6 step 6: a malicious holder steering every
	// binary search toward an innocent victim cannot get the victim
	// revoked — the re-confirmation under the victim's own sensor key
	// fails and the searched edge key (held by the framer) is revoked.
	for _, victim := range []topology.NodeID{1, 3, 5} {
		f := newFixture(t, bypassGraph(), 60+uint64(victim))
		f.readings[4] = 1
		cfg := f.config(60 + uint64(victim))
		cfg.Malicious = maliciousSet(2)
		cfg.Adversary = adversary.NewFramer(50, victim)
		out := run(t, cfg)
		if out.Kind == core.OutcomeResult {
			t.Fatalf("victim %d: dropping framer did not corrupt the run", victim)
		}
		for _, id := range out.RevokedNodes {
			if id == victim {
				t.Fatalf("victim %d was framed and revoked", victim)
			}
		}
		requireRevokedMaliciousOnly(t, out, f.dep, cfg.Malicious)
	}
}

func TestSilentBroadcastDoesNotPartitionAnnouncements(t *testing.T) {
	// Malicious sensors refusing to forward authenticated broadcasts must
	// not prevent the protocol from completing when the honest subgraph
	// is connected.
	g := topology.Grid(4, 4)
	f := newFixture(t, g, 15)
	f.readings[15] = 4
	cfg := f.config(15)
	cfg.Malicious = maliciousSet(5)
	s := &adversary.Strategy{Name: "silent", SilentBroadcast: true}
	cfg.Adversary = s
	out := run(t, cfg)
	if out.Kind != core.OutcomeResult || out.Mins[0] != 4 {
		t.Fatalf("outcome %v mins %v, want result 4", out.Kind, out.Mins)
	}
}

func TestHonestAdversaryIndistinguishable(t *testing.T) {
	f := newFixture(t, topology.Grid(3, 3), 16)
	cfg := f.config(16)
	cfg.Malicious = maliciousSet(4)
	cfg.Adversary = core.HonestAdversary{}
	out := run(t, cfg)
	if out.Kind != core.OutcomeResult {
		t.Fatalf("honest-behaving malicious node caused %v", out.Kind)
	}
	if want := f.trueMin(nil); out.Mins[0] != want {
		t.Fatalf("min = %g, want %g", out.Mins[0], want)
	}
}

func TestMinFromMaliciousRegionStillCounts(t *testing.T) {
	// The secure-aggregation problem does not prevent malicious sensors
	// from reporting readings for themselves; a cooperative malicious
	// sensor's value must flow through.
	f := newFixture(t, topology.Grid(3, 3), 17)
	f.readings[4] = 9 // malicious node holds the true minimum
	cfg := f.config(17)
	cfg.Malicious = maliciousSet(4)
	cfg.Adversary = core.HonestAdversary{}
	out := run(t, cfg)
	if out.Kind != core.OutcomeResult || out.Mins[0] != 9 {
		t.Fatalf("outcome %v mins %v, want result 9", out.Kind, out.Mins)
	}
}

func TestPhaseSlotBreakdownAccounts(t *testing.T) {
	f := newFixture(t, topology.Grid(4, 4), 70)
	out := run(t, f.config(70))
	ps := out.PhaseSlots
	if ps.Total() != out.Slots {
		t.Fatalf("phase breakdown %+v totals %d, execution used %d slots", ps, ps.Total(), out.Slots)
	}
	eng, _ := core.NewEngine(f.config(70))
	l := eng.L()
	if ps.Tree != l+1 || ps.Aggregation != l+1 || ps.Confirmation != l+1 {
		t.Fatalf("tree/agg/confirm = %d/%d/%d, want %d each", ps.Tree, ps.Aggregation, ps.Confirmation, l+1)
	}
	if ps.Broadcast == 0 {
		t.Fatal("broadcast floods not accounted")
	}
	if ps.Pinpoint != 0 {
		t.Fatalf("honest run charged %d pinpoint slots", ps.Pinpoint)
	}
	// An attacked run spends pinpoint slots.
	f2 := newFixture(t, bypassGraph(), 71)
	f2.readings[4] = 1
	cfg := f2.config(71)
	cfg.Malicious = maliciousSet(2)
	cfg.Adversary = adversary.NewDropper(50)
	out2 := run(t, cfg)
	if out2.PhaseSlots.Pinpoint == 0 {
		t.Fatal("attacked run recorded no pinpoint slots")
	}
	if out2.PhaseSlots.Total() != out2.Slots {
		t.Fatalf("attacked breakdown %+v != %d slots", out2.PhaseSlots, out2.Slots)
	}
}

func TestNewEngineValidation(t *testing.T) {
	f := newFixture(t, topology.Line(3), 18)
	if _, err := core.NewEngine(core.Config{}); err == nil {
		t.Fatal("empty config accepted")
	}
	smallDep, _ := keydist.NewDeployment(2, testParams, crypto.Key{}, crypto.NewStreamFromSeed(1))
	if _, err := core.NewEngine(core.Config{Graph: f.graph, Deployment: smallDep}); err == nil {
		t.Fatal("node-count mismatch accepted")
	}
	cfg := f.config(18)
	cfg.Instances = -1
	if _, err := core.NewEngine(cfg); err == nil {
		t.Fatal("negative instances accepted")
	}
}

func TestEngineIsSingleUse(t *testing.T) {
	f := newFixture(t, topology.Grid(2, 2), 72)
	eng, err := core.NewEngine(f.config(72))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := eng.Run(); err != nil {
		t.Fatal(err)
	}
	if _, err := eng.Run(); err == nil {
		t.Fatal("second Run on one engine accepted")
	}
	if _, err := eng.TreeLevels(); err == nil {
		t.Fatal("TreeLevels after Run accepted")
	}
}

func TestEngineComputesLFromHonestGraph(t *testing.T) {
	f := newFixture(t, topology.Line(5), 19)
	eng, err := core.NewEngine(f.config(19))
	if err != nil {
		t.Fatal(err)
	}
	if eng.L() != 4 {
		t.Fatalf("L = %d, want 4", eng.L())
	}
	cfg := f.config(19)
	cfg.L = 9
	eng2, _ := core.NewEngine(cfg)
	if eng2.L() != 9 {
		t.Fatalf("explicit L = %d, want 9", eng2.L())
	}
}

func TestRepeatedExecutionsShareRegistry(t *testing.T) {
	// A campaign: run executions until the dropper is neutralized. Every
	// execution must either return the correct minimum or revoke
	// adversary key material (Theorem 7), and the attacker must
	// eventually be unable to suppress the minimum.
	f := newFixture(t, topology.Grid(3, 3), 20)
	f.readings[4] = 1 // center node (malicious) is on many paths; min at 8
	delete(f.readings, 4)
	f.readings[8] = 1
	registry := keydist.NewRegistry(f.dep, 10)
	strategy := adversary.NewDropper(50)

	var got float64
	success := false
	for i := 0; i < 40 && !success; i++ {
		cfg := f.config(uint64(20 + i))
		cfg.Malicious = maliciousSet(4)
		cfg.Adversary = strategy
		cfg.Registry = registry
		out := run(t, cfg)
		switch out.Kind {
		case core.OutcomeResult:
			got = out.Mins[0]
			success = true
		default:
			requireRevokedMaliciousOnly(t, out, f.dep, cfg.Malicious)
		}
	}
	if !success {
		t.Fatal("40 executions never produced a result; revocation is not converging")
	}
	if got != 1 {
		t.Fatalf("converged min = %g, want 1", got)
	}
}
