package core_test

import (
	"fmt"
	"log"

	"repro/internal/core"
	"repro/internal/crypto"
	"repro/internal/keydist"
	"repro/internal/topology"
)

// ExampleEngine_Run executes one secure MIN query over a 3x3 grid.
func ExampleEngine_Run() {
	graph := topology.Grid(3, 3)
	deployment, err := keydist.NewDeployment(graph.NumNodes(),
		keydist.Params{PoolSize: 1000, RingSize: 150},
		crypto.KeyFromUint64(1), crypto.NewStreamFromSeed(1))
	if err != nil {
		log.Fatal(err)
	}
	engine, err := core.NewEngine(core.Config{
		Graph:      graph,
		Deployment: deployment,
		Readings: func(id topology.NodeID, _ int) float64 {
			if id == topology.BaseStation {
				return core.Inf()
			}
			return 10 + float64(id)
		},
		Seed: 1,
	})
	if err != nil {
		log.Fatal(err)
	}
	out, err := engine.Run()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println(out.Kind, out.Mins[0])
	// Output: result 11
}

// ExampleRunCount answers a predicate COUNT with exponential synopses.
func ExampleRunCount() {
	graph := topology.Grid(4, 4)
	deployment, err := keydist.NewDeployment(graph.NumNodes(),
		keydist.Params{PoolSize: 1000, RingSize: 150},
		crypto.KeyFromUint64(2), crypto.NewStreamFromSeed(2))
	if err != nil {
		log.Fatal(err)
	}
	res, err := core.RunCount(core.Config{
		Graph:      graph,
		Deployment: deployment,
		Seed:       2,
	}, func(id topology.NodeID) bool { return id%2 == 1 }, 200)
	if err != nil {
		log.Fatal(err)
	}
	// 8 of the 15 sensors satisfy the predicate; with 200 synopses the
	// estimate lands within a few percent.
	fmt.Println(res.Answered(), res.Estimate > 5 && res.Estimate < 12)
	// Output: true true
}
