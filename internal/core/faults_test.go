package core_test

import (
	"math"
	"runtime"
	"testing"
	"time"

	"repro/internal/adversary"
	"repro/internal/core"
	"repro/internal/faults"
	"repro/internal/simnet"
	"repro/internal/topology"
)

// aggregationStartSlot probes a fault-free execution of the fixture and
// returns the network slot at which the aggregation phase begins.
func aggregationStartSlot(t *testing.T, f *fixture, seed uint64) int {
	t.Helper()
	start := -1
	cfg := f.config(seed)
	cfg.Trace = func(ev core.Event) {
		if ev.Kind == core.EventPhase && ev.Label == "aggregation" && start < 0 {
			start = ev.Slot
		}
	}
	eng, err := core.NewEngine(cfg)
	if err != nil {
		t.Fatalf("NewEngine: %v", err)
	}
	if _, err := eng.Run(); err != nil {
		t.Fatalf("probe run: %v", err)
	}
	if start < 0 {
		t.Fatal("probe run never reached the aggregation phase")
	}
	return start
}

// TestSubtreeRootCrashReturnsPartial is the acceptance scenario: on a
// line, node 1 is the root of the subtree holding every other sensor.
// Crashing it mid-aggregation must not hang the engine — it returns a
// result within its slot deadline, explicitly marked Partial with the
// orphaned subtree counted as unreachable.
func TestSubtreeRootCrashReturnsPartial(t *testing.T) {
	const n = 12
	f := newFixture(t, topology.Line(n), 901)
	aggStart := aggregationStartSlot(t, f, 901)

	cfg := f.config(901)
	cfg.Faults = &faults.Spec{Crashes: []faults.NodeEvent{{Node: 1, At: aggStart + 2}}}
	cfg.ARQ = &simnet.ARQConfig{}
	cfg.MaxSlots = aggStart + 4*(n+2) // generous for aggregation, tight overall
	eng, err := core.NewEngine(cfg)
	if err != nil {
		t.Fatalf("NewEngine: %v", err)
	}
	done := make(chan struct{})
	var out *core.Outcome
	go func() {
		defer close(done)
		out, err = eng.Run()
	}()
	select {
	case <-done:
	case <-time.After(30 * time.Second):
		t.Fatal("engine hung after the subtree root crashed")
	}
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	if out.Kind != core.OutcomeResult {
		t.Fatalf("outcome = %v, want a (partial) result", out.Kind)
	}
	if !out.Partial {
		t.Fatal("outcome not marked Partial although the whole subtree was cut off")
	}
	// Node 1 crashed and nodes 2..n-1 sit behind it.
	if out.Unreachable != n-1 {
		t.Fatalf("Unreachable = %d, want %d", out.Unreachable, n-1)
	}
	if out.Faults.Crashes != 1 {
		t.Fatalf("fault counters = %+v, want exactly one crash", out.Faults)
	}
	// The minimum fixed before the crash cannot include the orphaned
	// sensors' readings after node 1 stopped forwarding; whatever came
	// through, the engine must have stayed within its slot budget plus
	// the bounded confirmation/broadcast tail.
	if out.Slots > cfg.MaxSlots+4*(eng.L()+4) {
		t.Fatalf("Slots = %d, deadline %d not respected", out.Slots, cfg.MaxSlots)
	}
}

// TestDeadlineCheckpointReturnsEarly: an explicit tiny MaxSlots makes the
// post-aggregation checkpoint fire even without faults, returning the
// aggregated minima as a DeadlineExceeded partial result instead of
// running confirmation.
func TestDeadlineCheckpointReturnsEarly(t *testing.T) {
	f := newFixture(t, topology.Line(8), 17)
	cfg := f.config(17)
	cfg.MaxSlots = 1
	eng, err := core.NewEngine(cfg)
	if err != nil {
		t.Fatalf("NewEngine: %v", err)
	}
	out, err := eng.Run()
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	if out.Kind != core.OutcomeResult || !out.DeadlineExceeded || !out.Partial {
		t.Fatalf("outcome = %+v, want a Partial DeadlineExceeded result", out)
	}
	if len(out.Mins) != 1 || math.IsInf(out.Mins[0], 1) {
		t.Fatalf("Mins = %v, want the aggregated minimum carried through", out.Mins)
	}
	if out.Unreachable != 0 {
		t.Fatalf("Unreachable = %d without faults, want 0", out.Unreachable)
	}
}

// TestDeadlineAbortsPinpointingToAlarm: when the budget expires before a
// junk-triggered walk finishes, the engine must abort to an alarm rather
// than revoke on timed-out predicate tests.
func TestDeadlineAbortsPinpointingToAlarm(t *testing.T) {
	f := newFixture(t, topology.Line(10), 33)
	aggStart := aggregationStartSlot(t, f, 33)
	cfg := f.config(33)
	cfg.Malicious = map[topology.NodeID]bool{5: true}
	cfg.Adversary = adversary.NewJunkInjector(1)
	cfg.L = 9                    // full line depth: the default honest depth stops before node 5
	cfg.MaxSlots = aggStart + 25 // expires during the first walk steps
	eng, err := core.NewEngine(cfg)
	if err != nil {
		t.Fatalf("NewEngine: %v", err)
	}
	out, err := eng.Run()
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	if out.Kind != core.OutcomeAlarm {
		t.Fatalf("outcome = %v, want alarm after the deadline cut pinpointing short", out.Kind)
	}
	if !out.DeadlineExceeded || !out.Partial {
		t.Fatalf("outcome = %+v, want DeadlineExceeded and Partial set", out)
	}
	if len(out.RevokedKeys) != 0 || len(out.RevokedNodes) != 0 {
		t.Fatalf("revocations %v/%v performed under an expired deadline", out.RevokedKeys, out.RevokedNodes)
	}
}

// TestFaultyOutcomesAreDeterministic: the whole fault pipeline is seeded,
// so identical configurations reproduce identical degraded outcomes.
func TestFaultyOutcomesAreDeterministic(t *testing.T) {
	run := func() *core.Outcome {
		f := newFixture(t, topology.Grid(5, 5), 55)
		cfg := f.config(55)
		cfg.Faults = &faults.Spec{CrashProb: 0.01, RecoverProb: 0.1, LinkDownProb: 0.02, LinkUpProb: 0.2}
		cfg.ARQ = &simnet.ARQConfig{}
		eng, err := core.NewEngine(cfg)
		if err != nil {
			t.Fatalf("NewEngine: %v", err)
		}
		out, err := eng.Run()
		if err != nil {
			t.Fatalf("Run: %v", err)
		}
		return out
	}
	a, b := run(), run()
	if a.Kind != b.Kind || a.Slots != b.Slots || a.Unreachable != b.Unreachable ||
		a.Partial != b.Partial || a.Faults != b.Faults ||
		a.Stats.TotalBytes() != b.Stats.TotalBytes() ||
		a.Stats.Retransmits != b.Stats.Retransmits {
		t.Fatalf("equal seeds diverged:\n%+v\n%+v", a, b)
	}
}

// TestNoGoroutineLeakAfterDegradedRun is the core half of the
// goroutine-leak regression check: executions that end early on the
// deadline with concurrent step workers must leave no sensor goroutine
// behind.
func TestNoGoroutineLeakAfterDegradedRun(t *testing.T) {
	before := runtime.NumGoroutine()
	for trial := uint64(0); trial < 3; trial++ {
		f := newFixture(t, topology.Grid(5, 5), 70+trial)
		cfg := f.config(70 + trial)
		cfg.Workers = 4
		cfg.Faults = &faults.Spec{CrashProb: 0.02, RecoverProb: 0.1}
		cfg.ARQ = &simnet.ARQConfig{}
		cfg.MaxSlots = 40 // force the early-return path
		eng, err := core.NewEngine(cfg)
		if err != nil {
			t.Fatalf("NewEngine: %v", err)
		}
		if _, err := eng.Run(); err != nil {
			t.Fatalf("Run: %v", err)
		}
	}
	deadline := time.Now().Add(2 * time.Second)
	for {
		if runtime.NumGoroutine() <= before {
			return
		}
		if time.Now().After(deadline) {
			t.Fatalf("goroutines: %d before, %d after degraded runs", before, runtime.NumGoroutine())
		}
		runtime.Gosched()
		time.Sleep(10 * time.Millisecond)
	}
}
