// Package core implements VMAT — verifiable minimum with audit trail — the
// secure in-network aggregation protocol with malicious-node revocation of
// Chen and Yu (ICDCS 2011).
//
// An Engine executes one query: timestamp-based tree formation (Section
// IV-A), slotted MIN aggregation with audit trails (IV-B), confirmation
// with SOF veto flooding (IV-C), and — when the execution detects
// interference — veto- or junk-triggered pinpointing built from keyed
// predicate tests (Section VI), ending with the revocation of at least one
// key held by a malicious sensor (Theorems 6 and 7).
//
// The package aggregates a vector of independent MIN instances in one
// pass; a plain MIN query is a vector of length one, and COUNT/SUM/AVERAGE
// queries become vectors of exponential synopses (Section VIII, package
// synopsis), which is how the paper reaches its 2.4 KB-per-query
// communication figure.
package core

import (
	"fmt"

	"repro/internal/crypto"
	"repro/internal/topology"
)

// Wire sizes, in bytes. A record is 24 bytes including its MAC, matching
// the per-synopsis size the paper assumes in Section IX; envelopes add an
// edge-key index and an 8-byte edge MAC.
const (
	recordWireSize   = 24
	envelopeOverhead = 4 + crypto.MACSize
	treeFormWireSize = 4
	vetoWireSize     = 24
	replyWireSize    = crypto.MACSize
)

// Record is one sensor's contribution to one MIN instance: the paper's
// <id, v, MAC_id(v||nonce)> message of Section IV-B. Origin's MAC is
// generated with its sensor key and is verifiable only by the base
// station.
type Record struct {
	Origin   topology.NodeID
	Instance int
	Value    float64
	MAC      crypto.MAC
}

// NewRecord builds and authenticates origin's record for one instance.
func NewRecord(origin topology.NodeID, instance int, value float64, sensorKey crypto.Key, nonce []byte) Record {
	return Record{
		Origin:   origin,
		Instance: instance,
		Value:    value,
		MAC:      recordMAC(sensorKey, origin, instance, value, nonce),
	}
}

func recordMAC(key crypto.Key, origin topology.NodeID, instance int, value float64, nonce []byte) crypto.MAC {
	return crypto.ComputeMAC(key,
		[]byte("agg-record"),
		crypto.Uint64(uint64(origin)),
		crypto.Uint64(uint64(instance)),
		crypto.Float64(value),
		nonce,
	)
}

// VerifyWith reports whether the record's MAC is valid under the given
// sensor key and query nonce. Only the base station can perform this
// check.
func (r Record) VerifyWith(sensorKey crypto.Key, nonce []byte) bool {
	return r.MAC == recordMAC(sensorKey, r.Origin, r.Instance, r.Value, nonce)
}

// Encode returns a stable byte encoding of the record.
func (r Record) Encode() []byte {
	out := make([]byte, 0, 28+crypto.MACSize)
	out = append(out, crypto.Uint64(uint64(r.Origin))...)
	out = append(out, crypto.Uint64(uint64(r.Instance))...)
	out = append(out, crypto.Float64(r.Value)...)
	out = append(out, r.MAC[:]...)
	return out
}

// ID returns the record's message identity, used by junk audit trails.
func (r Record) ID() crypto.Hash { return crypto.HashOf([]byte("record-id"), r.Encode()) }

// String renders the record for traces.
func (r Record) String() string {
	return fmt.Sprintf("record{origin=%d inst=%d v=%g}", r.Origin, r.Instance, r.Value)
}

// AggMsg is the partial aggregation message a sensor forwards to its
// parent: for each instance, the minimum record seen so far. Absent
// instances (value +Inf with no contributor) are carried as zero-origin
// infinite records.
type AggMsg struct {
	Records []Record
}

// WireSize charges 24 bytes per carried instance record.
func (m AggMsg) WireSize() int { return recordWireSize * len(m.Records) }

// AggMsgWireSize returns the wire size of an aggregate carrying the given
// number of instance records: 24 bytes each, so the paper's 100-synopsis
// query moves 2.4 KB per aggregation message (Section IX).
func AggMsgWireSize(instances int) int { return recordWireSize * instances }

// TreeFormMsg is the tree-formation flood message. In VMAT it carries no
// hop count — a sensor's level is the interval in which the message first
// arrives (Section IV-A).
type TreeFormMsg struct{}

// WireSize is a small constant: the message carries only its type.
func (TreeFormMsg) WireSize() int { return treeFormWireSize }

// VetoMsg is the confirmation-phase veto <id, v, level,
// MAC_id(v||level||nonce)> of Section IV-C, extended with the instance
// index the veto refers to.
type VetoMsg struct {
	Vetoer   topology.NodeID
	Instance int
	Value    float64
	Level    int
	MAC      crypto.MAC
}

// NewVeto builds and authenticates a veto.
func NewVeto(vetoer topology.NodeID, instance int, value float64, level int, sensorKey crypto.Key, nonce []byte) VetoMsg {
	return VetoMsg{
		Vetoer:   vetoer,
		Instance: instance,
		Value:    value,
		Level:    level,
		MAC:      vetoMAC(sensorKey, vetoer, instance, value, level, nonce),
	}
}

func vetoMAC(key crypto.Key, vetoer topology.NodeID, instance int, value float64, level int, nonce []byte) crypto.MAC {
	return crypto.ComputeMAC(key,
		[]byte("veto"),
		crypto.Uint64(uint64(vetoer)),
		crypto.Uint64(uint64(instance)),
		crypto.Float64(value),
		crypto.Int64(int64(level)),
		nonce,
	)
}

// VerifyWith reports whether the veto's MAC is valid under the given
// sensor key and confirmation nonce.
func (v VetoMsg) VerifyWith(sensorKey crypto.Key, nonce []byte) bool {
	return v.MAC == vetoMAC(sensorKey, v.Vetoer, v.Instance, v.Value, v.Level, nonce)
}

// Encode returns a stable byte encoding of the veto.
func (v VetoMsg) Encode() []byte {
	out := make([]byte, 0, 32+crypto.MACSize)
	out = append(out, crypto.Uint64(uint64(v.Vetoer))...)
	out = append(out, crypto.Uint64(uint64(v.Instance))...)
	out = append(out, crypto.Float64(v.Value)...)
	out = append(out, crypto.Int64(int64(v.Level))...)
	out = append(out, v.MAC[:]...)
	return out
}

// ID returns the veto's message identity, used by junk audit trails.
func (v VetoMsg) ID() crypto.Hash { return crypto.HashOf([]byte("veto-id"), v.Encode()) }

// WireSize charges the paper's 24-byte figure for a compact record.
func (VetoMsg) WireSize() int { return vetoWireSize }

// PredicateReply is the "yes" answer of a keyed predicate test:
// MAC_K(N), recognizable by every sensor via the pre-broadcast commitment
// H(MAC_K(N)).
type PredicateReply struct {
	MAC crypto.MAC
}

// WireSize is the MAC size.
func (PredicateReply) WireSize() int { return replyWireSize }

// inner is the union of payloads that travel inside edge-authenticated
// envelopes.
type inner interface {
	WireSize() int
	encodeInner() []byte
}

func (m AggMsg) encodeInner() []byte {
	out := []byte("agg")
	for _, r := range m.Records {
		out = append(out, r.Encode()...)
	}
	return out
}

func (TreeFormMsg) encodeInner() []byte { return []byte("tree-form") }

func (v VetoMsg) encodeInner() []byte { return append([]byte("veto"), v.Encode()...) }

func (p PredicateReply) encodeInner() []byte { return append([]byte("reply"), p.MAC[:]...) }

// Envelope is an edge-authenticated wrapper: every VMAT message between
// neighbors carries an edge MAC under a pool key both endpoints hold
// (Section III). The key index is in the clear so the receiver knows which
// key to verify with; the MAC binds the payload to the (from, to) pair so
// a captured envelope cannot be replayed verbatim on another link.
type Envelope struct {
	KeyIndex int
	MAC      crypto.MAC
	Inner    inner
}

// WireSize charges the inner payload plus the envelope overhead.
func (e Envelope) WireSize() int { return e.Inner.WireSize() + envelopeOverhead }

// Seal wraps payload for the link from -> to under the given pool key.
func Seal(keyIndex int, key crypto.Key, from, to topology.NodeID, payload inner) Envelope {
	return Envelope{
		KeyIndex: keyIndex,
		MAC:      envelopeMAC(key, keyIndex, from, to, payload),
		Inner:    payload,
	}
}

func envelopeMAC(key crypto.Key, keyIndex int, from, to topology.NodeID, payload inner) crypto.MAC {
	return crypto.ComputeMAC(key,
		[]byte("envelope"),
		crypto.Uint64(uint64(keyIndex)),
		crypto.Uint64(uint64(from)),
		crypto.Uint64(uint64(to)),
		payload.encodeInner(),
	)
}

// Open verifies the envelope as received on the link from -> to and
// returns the payload. It returns false when the MAC does not verify.
func (e Envelope) Open(key crypto.Key, from, to topology.NodeID) (inner, bool) {
	if e.Inner == nil {
		return nil, false
	}
	if e.MAC != envelopeMAC(key, e.KeyIndex, from, to, e.Inner) {
		return nil, false
	}
	return e.Inner, true
}
