package core

import (
	"math"
	"testing"

	"repro/internal/crypto"
)

func TestRecordMACRoundTrip(t *testing.T) {
	key := crypto.KeyFromUint64(1)
	nonce := []byte("nonce-1")
	r := NewRecord(7, 2, 3.25, key, nonce)
	if !r.VerifyWith(key, nonce) {
		t.Fatal("valid record rejected")
	}
	if r.VerifyWith(crypto.KeyFromUint64(2), nonce) {
		t.Fatal("record accepted under wrong key")
	}
	if r.VerifyWith(key, []byte("other-nonce")) {
		t.Fatal("record accepted under wrong nonce")
	}
}

func TestRecordTamperDetected(t *testing.T) {
	key := crypto.KeyFromUint64(3)
	nonce := []byte("n")
	r := NewRecord(7, 0, 10, key, nonce)
	r.Value = 5 // adversary lowers the value
	if r.VerifyWith(key, nonce) {
		t.Fatal("tampered value accepted")
	}
	r2 := NewRecord(7, 0, 10, key, nonce)
	r2.Origin = 8 // adversary reattributes
	if r2.VerifyWith(key, nonce) {
		t.Fatal("tampered origin accepted")
	}
	r3 := NewRecord(7, 0, 10, key, nonce)
	r3.Instance = 1
	if r3.VerifyWith(key, nonce) {
		t.Fatal("tampered instance accepted")
	}
}

func TestRecordIDDistinguishes(t *testing.T) {
	key := crypto.KeyFromUint64(4)
	nonce := []byte("n")
	a := NewRecord(1, 0, 1, key, nonce)
	b := NewRecord(1, 0, 2, key, nonce)
	if a.ID() == b.ID() {
		t.Fatal("distinct records share an ID")
	}
	if a.ID() != NewRecord(1, 0, 1, key, nonce).ID() {
		t.Fatal("identical records have different IDs")
	}
}

func TestVetoMACRoundTrip(t *testing.T) {
	key := crypto.KeyFromUint64(5)
	nonce := []byte("confirm-nonce")
	v := NewVeto(9, 1, 0.5, 3, key, nonce)
	if !v.VerifyWith(key, nonce) {
		t.Fatal("valid veto rejected")
	}
	v.Level = 2
	if v.VerifyWith(key, nonce) {
		t.Fatal("tampered level accepted")
	}
}

func TestEnvelopeSealOpen(t *testing.T) {
	key := crypto.KeyFromUint64(6)
	msg := AggMsg{Records: []Record{{Origin: 1, Value: 2}}}
	env := Seal(42, key, 3, 4, msg)
	got, ok := env.Open(key, 3, 4)
	if !ok {
		t.Fatal("valid envelope rejected")
	}
	if agg, isAgg := got.(AggMsg); !isAgg || agg.Records[0].Value != 2 {
		t.Fatalf("payload corrupted: %#v", got)
	}
}

func TestEnvelopeDirectionBound(t *testing.T) {
	key := crypto.KeyFromUint64(7)
	env := Seal(42, key, 3, 4, TreeFormMsg{})
	if _, ok := env.Open(key, 4, 3); ok {
		t.Fatal("envelope replayed in reverse direction")
	}
	if _, ok := env.Open(key, 3, 5); ok {
		t.Fatal("envelope replayed to another recipient")
	}
}

func TestEnvelopeWrongKeyOrTamper(t *testing.T) {
	key := crypto.KeyFromUint64(8)
	env := Seal(1, key, 0, 1, TreeFormMsg{})
	if _, ok := env.Open(crypto.KeyFromUint64(9), 0, 1); ok {
		t.Fatal("envelope opened with wrong key")
	}
	env2 := Seal(1, key, 0, 1, VetoMsg{Vetoer: 5, Value: 1})
	env2.Inner = VetoMsg{Vetoer: 5, Value: 0} // payload swap
	if _, ok := env2.Open(key, 0, 1); ok {
		t.Fatal("swapped payload accepted")
	}
	var empty Envelope
	if _, ok := empty.Open(key, 0, 1); ok {
		t.Fatal("empty envelope accepted")
	}
}

func TestWireSizes(t *testing.T) {
	if (AggMsg{Records: make([]Record, 100)}).WireSize() != 2400 {
		t.Fatal("100-synopsis message must be 2400 bytes (the paper's 2.4KB)")
	}
	if (VetoMsg{}).WireSize() != 24 {
		t.Fatal("veto must be 24 bytes")
	}
	env := Seal(1, crypto.KeyFromUint64(1), 0, 1, AggMsg{Records: make([]Record, 1)})
	if env.WireSize() != 24+12 {
		t.Fatalf("envelope wire size = %d, want 36", env.WireSize())
	}
}

func TestPredicateEncodeDistinct(t *testing.T) {
	a := Predicate{Kind: PredSentAgg, Instance: 1, VMax: 2, Pos: 3, KeyLo: 4, KeyHi: 5}
	b := a
	b.KeyHi = 6
	if string(a.Encode()) == string(b.Encode()) {
		t.Fatal("distinct predicates encode identically")
	}
}

func TestKeyRef(t *testing.T) {
	s := SensorKeyRef(7)
	if !s.IsSensorKey() || s.Sensor != 7 {
		t.Fatalf("SensorKeyRef wrong: %+v", s)
	}
	p := PoolKeyRef(42)
	if p.IsSensorKey() || p.PoolIndex != 42 {
		t.Fatalf("PoolKeyRef wrong: %+v", p)
	}
	if string(s.Encode()) == string(p.Encode()) {
		t.Fatal("key refs encode identically")
	}
}

func TestSensorStateSatisfiesSentAgg(t *testing.T) {
	s := newSensorState(5, 1, crypto.NewStreamFromSeed(1))
	s.level = 3
	s.sentAgg = append(s.sentAgg, sentTuple{instance: 0, record: Record{Value: 2.5}, level: 3, inKey: 10, outKey: 50, parent: 4})
	ok := s.satisfies(Predicate{Kind: PredSentAgg, Instance: 0, VMax: 3, Pos: 3, KeyLo: 40, KeyHi: 60}, NoKey)
	if !ok {
		t.Fatal("matching PredSentAgg not satisfied")
	}
	// Value above VMax fails.
	if s.satisfies(Predicate{Kind: PredSentAgg, Instance: 0, VMax: 2, Pos: 3, KeyLo: 40, KeyHi: 60}, NoKey) {
		t.Fatal("PredSentAgg satisfied despite value above VMax")
	}
	// Wrong level fails.
	if s.satisfies(Predicate{Kind: PredSentAgg, Instance: 0, VMax: 3, Pos: 2, KeyLo: 40, KeyHi: 60}, NoKey) {
		t.Fatal("PredSentAgg satisfied at wrong level")
	}
	// Out-key outside the window fails.
	if s.satisfies(Predicate{Kind: PredSentAgg, Instance: 0, VMax: 3, Pos: 3, KeyLo: 51, KeyHi: 60}, NoKey) {
		t.Fatal("PredSentAgg satisfied outside key window")
	}
	// Wrong instance fails.
	if s.satisfies(Predicate{Kind: PredSentAgg, Instance: 1, VMax: 3, Pos: 3, KeyLo: 40, KeyHi: 60}, NoKey) {
		t.Fatal("PredSentAgg satisfied for wrong instance")
	}
}

func TestSensorStateSatisfiesReceivedAgg(t *testing.T) {
	s := newSensorState(5, 1, crypto.NewStreamFromSeed(2))
	s.level = 2
	s.noteReceivedRecord(Record{Origin: 9, Instance: 0, Value: 1.5}, 3, 77, 9)
	pred := Predicate{Kind: PredReceivedAgg, Instance: 0, VMax: 2, Pos: 3, IDLo: 0, IDHi: 10}
	if !s.satisfies(pred, 77) {
		t.Fatal("matching PredReceivedAgg not satisfied")
	}
	if s.satisfies(pred, 78) {
		t.Fatal("PredReceivedAgg satisfied for wrong tested key")
	}
	// Sensor-key re-confirmation (testedPool == NoKey) matches any in-key.
	if !s.satisfies(pred, NoKey) {
		t.Fatal("re-confirmation predicate not satisfied")
	}
	// ID range excludes the sensor.
	out := pred
	out.IDLo, out.IDHi = 6, 10
	if s.satisfies(out, 77) {
		t.Fatal("PredReceivedAgg satisfied outside ID range")
	}
	// Wrong child level fails.
	lvl := pred
	lvl.Pos = 2
	if s.satisfies(lvl, 77) {
		t.Fatal("PredReceivedAgg satisfied at wrong child level")
	}
}

func TestSensorStateBestTracksMinimum(t *testing.T) {
	s := newSensorState(1, 2, crypto.NewStreamFromSeed(3))
	if !math.IsInf(s.best[0].Value, 1) {
		t.Fatal("fresh state must start at infinity")
	}
	s.noteReceivedRecord(Record{Origin: 2, Instance: 0, Value: 5}, 1, 10, 2)
	s.noteReceivedRecord(Record{Origin: 3, Instance: 0, Value: 3}, 1, 11, 3)
	s.noteReceivedRecord(Record{Origin: 4, Instance: 0, Value: 4}, 1, 12, 4)
	if s.best[0].Value != 3 || s.best[0].Origin != 3 || s.bestInKey[0] != 11 {
		t.Fatalf("best tracking wrong: %+v inKey=%d", s.best[0], s.bestInKey[0])
	}
	if s.best[1].Value != math.Inf(1) {
		t.Fatal("instance 1 affected by instance 0 records")
	}
	// Out-of-range instances are ignored, not panicked on.
	s.noteReceivedRecord(Record{Origin: 5, Instance: 9, Value: 1}, 1, 13, 5)
	if len(s.recvAgg) != 3 {
		t.Fatal("out-of-range instance stored")
	}
}

func TestSensorStateSatisfiesVetoKinds(t *testing.T) {
	s := newSensorState(4, 1, crypto.NewStreamFromSeed(4))
	v := VetoMsg{Vetoer: 9, Instance: 0, Value: 0.5, Level: 3}
	s.vetoSent = &sofTuple{veto: v, interval: 4, inKey: 30, outKeys: []int{41, 42}}

	sent := Predicate{Kind: PredSentJunkVeto, MsgID: v.ID(), Pos: 4, IDLo: 0, IDHi: 10}
	if !s.satisfies(sent, 41) {
		t.Fatal("PredSentJunkVeto not satisfied for forwarded key")
	}
	if s.satisfies(sent, 43) {
		t.Fatal("PredSentJunkVeto satisfied for unused key")
	}
	wrongInterval := sent
	wrongInterval.Pos = 3
	if s.satisfies(wrongInterval, 41) {
		t.Fatal("PredSentJunkVeto satisfied at wrong interval")
	}

	recv := Predicate{Kind: PredReceivedJunkVeto, MsgID: v.ID(), Pos: 3, KeyLo: 25, KeyHi: 35}
	if !s.satisfies(recv, NoKey) {
		t.Fatal("PredReceivedJunkVeto not satisfied")
	}
	badRange := recv
	badRange.KeyLo, badRange.KeyHi = 31, 35
	if s.satisfies(badRange, NoKey) {
		t.Fatal("PredReceivedJunkVeto satisfied outside key range")
	}
	// An originated veto (no in-key) never satisfies the receive kind.
	s.vetoSent.inKey = NoKey
	if s.satisfies(recv, NoKey) {
		t.Fatal("originated veto satisfied a receive predicate")
	}
}

func TestOutcomeKindStrings(t *testing.T) {
	for _, k := range []OutcomeKind{OutcomeResult, OutcomeVetoRevocation, OutcomeJunkAggRevocation, OutcomeJunkConfRevocation} {
		if k.String() == "" || k.String()[0] == 'O' {
			t.Fatalf("OutcomeKind %d has bad name %q", int(k), k.String())
		}
	}
	_ = OutcomeKind(99).String()
	for _, p := range []Phase{PhaseTree, PhaseAggregation, PhaseConfirmation} {
		if p.String() == "unknown" {
			t.Fatalf("phase %d unnamed", int(p))
		}
	}
}
