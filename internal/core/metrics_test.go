package core_test

import (
	"strings"
	"testing"

	"repro/internal/adversary"
	"repro/internal/core"
	"repro/internal/metrics"
	"repro/internal/simnet"
	"repro/internal/topology"
)

// TestMetricsMatchExecutionStats runs one honest execution with a
// registry attached and checks the flushed simnet counters against the
// outcome's own Stats (the satellite acceptance: metrics counters match
// Stats.TotalBytes after an execution).
func TestMetricsMatchExecutionStats(t *testing.T) {
	f := newFixture(t, topology.Grid(4, 4), 11)
	cfg := f.config(11)
	reg := metrics.New()
	cfg.Metrics = reg
	out := run(t, cfg)
	if out.Kind != core.OutcomeResult {
		t.Fatalf("outcome = %v, want result", out.Kind)
	}

	total := reg.Counter(simnet.MetricBytesSent).Value() +
		reg.Counter(simnet.MetricBytesReceived).Value()
	if want := out.Stats.TotalBytes(); total != want {
		t.Fatalf("metrics bytes = %d, want Stats.TotalBytes %d", total, want)
	}
	if got := reg.Counter(simnet.MetricSlots).Value(); got != int64(out.Slots) {
		t.Fatalf("slots counter = %d, want %d", got, out.Slots)
	}
	if got := reg.Counter(core.MetricExecutions).Value(); got != 1 {
		t.Fatalf("executions counter = %d, want 1", got)
	}
	if got := reg.Counter(core.MetricExecutions + `{outcome="result"}`).Value(); got != 1 {
		t.Fatalf("labeled executions counter = %d, want 1", got)
	}

	var sb strings.Builder
	if err := reg.WriteText(&sb); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(sb.String(), "core_executions_total 1") {
		t.Fatalf("exposition missing executions counter:\n%s", sb.String())
	}
}

// TestMetricsAccumulateAcrossExecutions attaches one registry to two
// executions (the serving layer's usage) and checks revocation and
// predicate-test counters flow through on an attacked run.
func TestMetricsAccumulateAcrossExecutions(t *testing.T) {
	// Same scenario as TestDroppingAttackTriggersVetoRevocation: the
	// minimum at node 4 routes through the dropper at node 2; the veto
	// floods around it and triggers pinpointing.
	f := newFixture(t, bypassGraph(), 8)
	reg := metrics.New()

	honest := f.config(7)
	honest.Metrics = reg
	run(t, honest)

	f.readings[4] = 1
	attacked := f.config(8)
	attacked.Metrics = reg
	attacked.Malicious = maliciousSet(2)
	attacked.Adversary = adversary.NewDropper(50)
	attacked.AdversaryFavored = true
	out := run(t, attacked)

	if got := reg.Counter(core.MetricExecutions).Value(); got != 2 {
		t.Fatalf("executions counter = %d, want 2", got)
	}
	if got := reg.Counter(core.MetricPredicateTests).Value(); got != int64(out.PredicateTests) {
		t.Fatalf("predicate tests counter = %d, want %d", got, out.PredicateTests)
	}
	if got := reg.Counter(core.MetricRevokedKeys).Value(); got != int64(len(out.RevokedKeys)) {
		t.Fatalf("revoked keys counter = %d, want %d", got, len(out.RevokedKeys))
	}
	if len(out.RevokedKeys) == 0 {
		t.Fatal("dropper run should revoke at least one key")
	}
}
