package core

import (
	"testing"

	"repro/internal/crypto"
	"repro/internal/keydist"
	"repro/internal/topology"
)

// TestMultipathParentsAreAllUpperLevelSenders checks the Section IV-D
// ring structure: in multi-path mode a level-i sensor adopts every
// neighbor whose tree-formation message arrived in its first-reception
// slot — all its level-(i-1) neighbors — while single-path keeps exactly
// one.
func TestMultipathParentsAreAllUpperLevelSenders(t *testing.T) {
	g := topology.Grid(4, 4)
	dep, err := keydist.NewDeployment(16, keydist.Params{PoolSize: 400, RingSize: 120},
		crypto.KeyFromUint64(400), crypto.NewStreamFromSeed(400))
	if err != nil {
		t.Fatal(err)
	}
	build := func(multipath bool) *Engine {
		e, err := NewEngine(Config{Graph: g, Deployment: dep, Multipath: multipath, Seed: 400})
		if err != nil {
			t.Fatal(err)
		}
		if _, err := e.TreeLevels(); err != nil {
			t.Fatal(err)
		}
		return e
	}
	multi := build(true)
	single := build(false)
	depths := g.Depths(topology.BaseStation)
	for id := 1; id < 16; id++ {
		s := multi.sensors[id]
		// Count upper-level neighbors.
		upper := 0
		for _, nb := range g.Neighbors(topology.NodeID(id)) {
			if depths[nb] == depths[id]-1 {
				upper++
			}
		}
		if len(s.parents) != upper {
			t.Fatalf("node %d: %d multipath parents, want %d upper neighbors", id, len(s.parents), upper)
		}
		for _, p := range s.parents {
			if depths[p] != depths[id]-1 {
				t.Fatalf("node %d: parent %d at depth %d, want %d", id, p, depths[p], depths[id]-1)
			}
		}
		if got := len(single.sensors[id].parents); got != 1 {
			t.Fatalf("node %d: %d single-path parents, want 1", id, got)
		}
	}
}

// TestMultipathAuditTuplesPerParent checks the Section IV-D bookkeeping:
// "a sensor should store a tuple for each of its parents, as the audit
// trail".
func TestMultipathAuditTuplesPerParent(t *testing.T) {
	g := topology.Grid(3, 3)
	dep, err := keydist.NewDeployment(9, keydist.Params{PoolSize: 400, RingSize: 120},
		crypto.KeyFromUint64(401), crypto.NewStreamFromSeed(401))
	if err != nil {
		t.Fatal(err)
	}
	e, err := NewEngine(Config{
		Graph: g, Deployment: dep, Multipath: true, Seed: 401,
		Readings: func(id topology.NodeID, _ int) float64 {
			if id == topology.BaseStation {
				return Inf()
			}
			return float64(10 + id)
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	out, err := e.Run()
	if err != nil {
		t.Fatal(err)
	}
	if out.Kind != OutcomeResult || out.Mins[0] != 11 {
		t.Fatalf("outcome %v mins %v", out.Kind, out.Mins)
	}
	for id := 1; id < 9; id++ {
		s := e.sensors[id]
		if len(s.sentAgg) != len(s.parents) {
			t.Fatalf("node %d: %d sent tuples for %d parents", id, len(s.sentAgg), len(s.parents))
		}
		seen := map[topology.NodeID]bool{}
		for _, st := range s.sentAgg {
			if seen[st.parent] {
				t.Fatalf("node %d: duplicate tuple for parent %d", id, st.parent)
			}
			seen[st.parent] = true
		}
	}
}
