package core

import (
	"math"

	"repro/internal/simnet"
	"repro/internal/topology"
)

// runTreeFormation executes the timestamp-based tree formation of Section
// IV-A. A sensor's level is the local slot in which the tree-formation
// flood first reaches it; it re-forwards in the next slot (delivery takes
// one slot, which is exactly the paper's hold-one-interval rule). Messages
// arriving after interval L are ignored, so honest levels always land in
// [1, L] — the wormhole level-inflation attack of Figure 2(c) is
// structurally impossible.
func (e *Engine) runTreeFormation() {
	e.phaseStart = e.net.Slot()
	e.sensors[topology.BaseStation].level = 0

	honest := func(s *sensorState, ctx *simnet.Context) {
		local := ctx.Slot() - e.phaseStart
		if s.id == topology.BaseStation {
			if local == 0 {
				for _, nb := range ctx.Neighbors() {
					e.sendSealed(ctx, nb, TreeFormMsg{})
				}
			}
			return
		}
		if s.level != -1 || local > e.l {
			return
		}
		var parents []topology.NodeID
		for _, m := range ctx.Inbox {
			payload, _, ok := e.acceptEnvelope(m, s.id)
			if !ok {
				continue
			}
			if _, isTree := payload.(TreeFormMsg); !isTree {
				continue
			}
			parents = append(parents, m.From)
		}
		if len(parents) == 0 {
			return
		}
		s.level = local
		if e.cfg.Multipath {
			s.parents = dedupe(parents)
		} else {
			s.parents = parents[:1]
		}
		for _, nb := range ctx.Neighbors() {
			e.sendSealed(ctx, nb, TreeFormMsg{})
		}
	}
	// Sparse sweep: only the base station acts on a schedule (the slot-0
	// flood start); every other sensor joins the moment the flood reaches
	// it.
	e.net.WakeAt(e.phaseStart, topology.BaseStation)
	e.net.RunSlotsActive(e.l+1, e.phaseStep(PhaseTree, honest))
}

func dedupe(ids []topology.NodeID) []topology.NodeID {
	seen := make(map[topology.NodeID]bool, len(ids))
	out := ids[:0]
	for _, id := range ids {
		if !seen[id] {
			seen[id] = true
			out = append(out, id)
		}
	}
	return out
}

// runAggregation executes the slotted MIN aggregation of Section IV-B over
// all instances at once and returns the per-instance winning records at
// the base station. A level-i sensor collects child messages through local
// slot L-i and transmits its minima to its parent(s) during that slot;
// every sensor stores the send- and receive-side audit tuples the
// pinpointing protocols later query.
func (e *Engine) runAggregation() []Record {
	e.phaseStart = e.net.Slot()

	// Every participant starts from its own authenticated records. Each
	// level-i sensor has exactly one scheduled obligation — transmit its
	// minima in local slot L-i — so that is its wake slot; collection in
	// earlier slots is driven by the arriving child messages themselves.
	for i := range e.sensors {
		s := &e.sensors[i]
		if s.id != topology.BaseStation && s.level == -1 {
			continue // never reached by tree formation
		}
		for inst := 0; inst < e.instances; inst++ {
			s.best[inst] = e.ownRecord(s.id, inst)
			s.bestInKey[inst] = NoKey
		}
		if s.level >= 1 && s.level <= e.l {
			e.net.WakeAt(e.phaseStart+e.l-s.level, s.id)
		}
	}

	bs := &e.sensors[topology.BaseStation]
	honest := func(s *sensorState, ctx *simnet.Context) {
		local := ctx.Slot() - e.phaseStart
		if s.id == topology.BaseStation {
			e.collectAtBase(s, ctx, local)
			return
		}
		if s.level < 1 {
			return
		}
		sendSlot := e.l - s.level
		if local > sendSlot {
			return // this sensor's window is over
		}
		for _, m := range ctx.Inbox {
			payload, inKey, ok := e.acceptEnvelope(m, s.id)
			if !ok {
				continue
			}
			agg, isAgg := payload.(AggMsg)
			if !isAgg {
				continue
			}
			childLevel := e.l - (local - 1)
			for _, r := range agg.Records {
				if math.IsInf(r.Value, 1) || math.IsNaN(r.Value) {
					continue
				}
				s.noteReceivedRecord(r, childLevel, inKey, m.From)
			}
		}
		if local == sendSlot {
			msg := AggMsg{Records: finiteRecords(s.best)}
			for _, parent := range s.parents {
				outKey, sent := e.sendSealed(ctx, parent, msg)
				if sent {
					s.noteSent(parent, outKey)
				}
			}
		}
	}
	e.net.RunSlotsActive(e.l+1, e.phaseStep(PhaseAggregation, honest))
	return bs.best
}

// collectAtBase merges records arriving at the base station and remembers
// which edge key delivered each current winner (the junk-pinpointing
// starting point).
func (e *Engine) collectAtBase(s *sensorState, ctx *simnet.Context, local int) {
	for _, m := range ctx.Inbox {
		payload, inKey, ok := e.acceptEnvelope(m, s.id)
		if !ok {
			continue
		}
		agg, isAgg := payload.(AggMsg)
		if !isAgg {
			continue
		}
		childLevel := e.l - (local - 1)
		for _, r := range agg.Records {
			if math.IsInf(r.Value, 1) || math.IsNaN(r.Value) {
				continue
			}
			s.noteReceivedRecord(r, childLevel, inKey, m.From)
			if s.best[r.Instance].ID() == r.ID() && s.bestInKey[r.Instance] == inKey {
				e.bsDelivery[r.Instance] = deliveryInfo{inKey: inKey, slot: local}
			}
		}
	}
}

func finiteRecords(records []Record) []Record {
	out := make([]Record, 0, len(records))
	for _, r := range records {
		if !math.IsInf(r.Value, 1) && !math.IsNaN(r.Value) {
			out = append(out, r)
		}
	}
	return out
}

// receivedVeto is one veto as it arrived at the base station.
type receivedVeto struct {
	veto  VetoMsg
	inKey int
	slot  int // local confirmation slot of arrival
}

// runConfirmation executes the SOF protocol of Section IV-C: vetoers
// flood their veto in interval 1; every other sensor forwards only the
// first veto it receives, in the next interval, and records the SOF audit
// tuple. It returns the vetoes the base station received, in arrival
// order.
func (e *Engine) runConfirmation() []receivedVeto {
	e.phaseStart = e.net.Slot()
	var arrived []receivedVeto

	honest := func(s *sensorState, ctx *simnet.Context) {
		local := ctx.Slot() - e.phaseStart
		if s.id == topology.BaseStation {
			for _, m := range ctx.Inbox {
				payload, inKey, ok := e.acceptEnvelope(m, s.id)
				if !ok {
					continue
				}
				if v, isVeto := payload.(VetoMsg); isVeto {
					arrived = append(arrived, receivedVeto{veto: v, inKey: inKey, slot: local})
				}
			}
			return
		}
		if s.level < 1 || s.forwardedVeto {
			return
		}
		if local == 0 {
			if v, isVetoer := e.ownVeto(s); isVetoer {
				s.forwardedVeto = true
				s.vetoSent = &sofTuple{veto: v, interval: 1, inKey: NoKey}
				for _, nb := range ctx.Neighbors() {
					if outKey, sent := e.sendSealed(ctx, nb, v); sent {
						s.vetoSent.outKeys = append(s.vetoSent.outKeys, outKey)
					}
				}
			}
			return
		}
		for _, m := range ctx.Inbox {
			payload, inKey, ok := e.acceptEnvelope(m, s.id)
			if !ok {
				continue
			}
			v, isVeto := payload.(VetoMsg)
			if !isVeto {
				continue
			}
			// Forward the first veto received, in this interval (= local
			// slot + 1); ignore everything afterwards.
			s.forwardedVeto = true
			s.vetoSent = &sofTuple{veto: v, interval: local + 1, inKey: inKey}
			for _, nb := range ctx.Neighbors() {
				if outKey, sent := e.sendSealed(ctx, nb, v); sent {
					s.vetoSent.outKeys = append(s.vetoSent.outKeys, outKey)
				}
			}
			return
		}
	}
	// Every sensor must compare its own reading against the announced
	// minimum in local slot 0, so the first confirmation slot is a full
	// sweep; afterwards only veto traffic keeps nodes active.
	e.net.WakeAllAt(e.phaseStart)
	e.net.RunSlotsActive(e.l+1, e.phaseStep(PhaseConfirmation, honest))
	return arrived
}

// ownVeto builds the sensor's veto if its own reading beats the announced
// minimum on any instance.
func (e *Engine) ownVeto(s *sensorState) (VetoMsg, bool) {
	if e.cfg.Readings == nil {
		return VetoMsg{}, false
	}
	for inst := 0; inst < e.instances; inst++ {
		v := e.cfg.Readings(s.id, inst)
		if math.IsNaN(v) || math.IsInf(v, 1) {
			continue
		}
		if v < e.announcedMins[inst] {
			return NewVeto(s.id, inst, v, s.level,
				e.cfg.Deployment.SensorKey(s.id), e.confirmNonce), true
		}
	}
	return VetoMsg{}, false
}
