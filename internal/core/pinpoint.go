package core

import (
	"fmt"

	"repro/internal/audit"
	"repro/internal/crypto"
	"repro/internal/topology"
)

// pinpointVeto runs the veto-triggered pinpointing/revocation protocol of
// Figure 4: starting from the vetoer, it alternates the Figure 5 ring
// search (which out-edge key did the tracked sensor use?) and the Figure 6
// holder search (which sensor admits receiving the value?), walking the
// audit trail toward the base station until some predicate test fails —
// at which point the implicated key (or sensor) is revoked. Theorem 6
// guarantees every revoked key is held by a malicious sensor.
func (e *Engine) pinpointVeto(v VetoMsg) (*Outcome, error) {
	out := &Outcome{Kind: OutcomeVetoRevocation, TrailKind: audit.KindVetoAggregation, Veto: &v}
	cur := v.Vetoer
	level := v.Level

	for level >= 1 {
		if e.deadlineExceeded() {
			// The slot budget expired mid-walk. Revoking on a timed-out
			// predicate test would convict innocents, so abort to an alarm.
			out.Kind = OutcomeAlarm
			return e.finish(out), nil
		}
		e.emit(Event{Kind: EventWalkStep, Label: "veto-walk", Node: cur, Instance: level, KeyIndex: NoKey})
		// Figure 5: find the edge key cur used toward its parent.
		ke, ok := e.findOutEdgeKey(cur, v.Instance, v.Value, level)
		if !ok {
			// Not even the full-range test succeeded: cur refuses to name
			// a key, which no honest sensor with a stored tuple does.
			// Revoke all of cur's edge keys (Figure 5, step 7).
			e.revokeNode(cur)
			return e.finish(out), nil
		}
		if level == 1 {
			// The parent of a level-1 sensor can only (honestly) be the
			// base station, which checks its own reception records
			// directly instead of answering a predicate test.
			if e.baseReceived(v.Instance, v.Value, 1, ke) {
				return nil, fmt.Errorf("core: pinpointing reached the base station "+
					"although it received value <= %g (invariant violation)", v.Value)
			}
			e.revokeKey(ke)
			return e.finish(out), nil
		}
		// Figure 6: find a sensor holding ke that admits receiving the
		// value from a child at this level.
		parent, ok := e.findParent(ke, v.Instance, v.Value, level)
		if !ok {
			e.revokeKey(ke)
			return e.finish(out), nil
		}
		cur = parent
		level--
	}
	// A veto with level < 1 is rejected as spurious before pinpointing, so
	// the loop always executes; reaching this point means the walk was
	// driven below level 1 without any test failing, which the level==1
	// base-station check makes impossible.
	return nil, fmt.Errorf("core: veto pinpointing walked below level 1 for vetoer %d", v.Vetoer)
}

// baseReceived checks the base station's own aggregation records: did it
// receive a record of the instance with value <= vmax from a child at the
// given level via the given edge key?
func (e *Engine) baseReceived(instance int, vmax float64, childLevel, keyIndex int) bool {
	bs := &e.sensors[topology.BaseStation]
	return bs.satisfies(Predicate{
		Kind:     PredReceivedAgg,
		Instance: instance,
		VMax:     vmax,
		Pos:      childLevel,
		IDLo:     topology.BaseStation,
		IDHi:     topology.BaseStation,
	}, keyIndex)
}

// findOutEdgeKey is the Figure 5 binary search over the r (sorted) ring
// indices of sensor id, driven by keyed predicate tests on its sensor key.
// It returns false when even the full-range test fails (no admitted key).
func (e *Engine) findOutEdgeKey(id topology.NodeID, instance int, vmax float64, level int) (int, bool) {
	ring := e.cfg.Deployment.Ring(id)
	if len(ring) == 0 {
		return 0, false
	}
	mk := func(lo, hi int) Predicate {
		return Predicate{
			Kind:     PredSentAgg,
			Instance: instance,
			VMax:     vmax,
			Pos:      level,
			KeyLo:    ring[lo],
			KeyHi:    ring[hi],
		}
	}
	return e.searchRing(id, ring, mk)
}

// searchRing binary-searches a sensor's ring with predicate tests keyed on
// its sensor key. mk builds the predicate for a ring-slice [lo, hi].
func (e *Engine) searchRing(id topology.NodeID, ring []int, mk func(lo, hi int) Predicate) (int, bool) {
	if !e.runPredicateTest(SensorKeyRef(id), mk(0, len(ring)-1)) {
		return 0, false
	}
	x, y := 0, len(ring)-1
	for x < y {
		i := (x + y) / 2
		if e.runPredicateTest(SensorKeyRef(id), mk(x, i)) {
			y = i
		} else {
			x = i + 1
		}
	}
	return ring[x], true
}

// findParent is the Figure 6 binary search over the holders of edge key
// keIndex. It returns the admitted parent's ID, or false when the key
// should be revoked: nobody admits (step 2), the holders answer
// inconsistently (step 12), or the final re-confirmation on the admitted
// sensor's own key fails (step 7).
func (e *Engine) findParent(keIndex, instance int, vmax float64, level int) (topology.NodeID, bool) {
	mk := func(lo, hi topology.NodeID) Predicate {
		return Predicate{
			Kind:     PredReceivedAgg,
			Instance: instance,
			VMax:     vmax,
			Pos:      level,
			IDLo:     lo,
			IDHi:     hi,
		}
	}
	return e.searchHolders(keIndex, mk)
}

// searchHolders runs the Figure 6 structure for any holder-search
// predicate builder: full-range test, double-sided binary search with the
// inconsistency fallback, and the sensor-key re-confirmation.
func (e *Engine) searchHolders(keIndex int, mk func(lo, hi topology.NodeID) Predicate) (topology.NodeID, bool) {
	holders := e.cfg.Deployment.Holders(keIndex)
	if len(holders) == 0 {
		return 0, false
	}
	test := func(lo, hi int) bool {
		return e.runPredicateTest(PoolKeyRef(keIndex), mk(holders[lo], holders[hi]))
	}
	if !test(0, len(holders)-1) {
		return 0, false // step 2: nobody admits
	}
	x, y := 0, len(holders)-1
	for x < y {
		i := (x + y) / 2
		if test(x, i) {
			y = i
			continue
		}
		if test(i+1, y) {
			x = i + 1
			continue
		}
		return 0, false // step 12: inconsistent answers, ke is compromised
	}
	id := holders[x]
	// Step 6: re-confirm under the sensor key of the admitted ID, so a
	// malicious holder cannot frame a sensor with a different ID.
	if !e.runPredicateTest(SensorKeyRef(id), mk(id, id)) {
		return 0, false
	}
	return id, true
}

// pinpointJunkAgg runs junk-triggered pinpointing for a spurious
// aggregation minimum (Section VI-B): starting from the edge key that
// delivered the junk to the base station, it tracks the audit trail away
// from the base station — holder search for "who forwarded this exact
// message at this level", then ring search for "which key did you receive
// it with" — until a test fails and a key (or sensor) is revoked.
func (e *Engine) pinpointJunkAgg(instance int, r Record) (*Outcome, error) {
	out := &Outcome{Kind: OutcomeJunkAggRevocation, TrailKind: audit.KindJunkAggregation}
	delivery := e.bsDelivery[instance]
	if delivery.inKey == NoKey {
		return nil, fmt.Errorf("core: junk record %v has no recorded delivery edge", r)
	}
	msgID := r.ID()
	ke := delivery.inKey
	level := e.l - (delivery.slot - 1) // apparent level of the sender

	for level <= e.l {
		if e.deadlineExceeded() {
			out.Kind = OutcomeAlarm
			return e.finish(out), nil
		}
		e.emit(Event{Kind: EventWalkStep, Label: "junk-agg-walk", Instance: level, KeyIndex: ke})
		sender, ok := e.findJunkAggSender(ke, msgID, level)
		if !ok {
			e.revokeKey(ke)
			return e.finish(out), nil
		}
		if level == e.l {
			// No honest level-L sensor forwards a non-own record: it
			// transmits in the first aggregation slot, before anything
			// can reach it. An admission at level L is a self-conviction.
			e.revokeNode(sender)
			return e.finish(out), nil
		}
		inKey, ok := e.findJunkAggInKey(sender, msgID, level)
		if !ok {
			// The sender admits forwarding the junk but cannot name a key
			// it received it with: it originated the junk.
			e.revokeNode(sender)
			return e.finish(out), nil
		}
		ke = inKey
		level++
	}
	return nil, fmt.Errorf("core: junk-aggregation pinpointing walked above level %d", e.l)
}

func (e *Engine) findJunkAggSender(keIndex int, msgID crypto.Hash, level int) (topology.NodeID, bool) {
	mk := func(lo, hi topology.NodeID) Predicate {
		return Predicate{Kind: PredSentJunkAgg, MsgID: msgID, Pos: level, IDLo: lo, IDHi: hi}
	}
	return e.searchHolders(keIndex, mk)
}

func (e *Engine) findJunkAggInKey(id topology.NodeID, msgID crypto.Hash, level int) (int, bool) {
	ring := e.cfg.Deployment.Ring(id)
	if len(ring) == 0 {
		return 0, false
	}
	mk := func(lo, hi int) Predicate {
		return Predicate{Kind: PredReceivedJunkAgg, MsgID: msgID, Pos: level, KeyLo: ring[lo], KeyHi: ring[hi]}
	}
	return e.searchRing(id, ring, mk)
}

// pinpointJunkConf runs junk-triggered pinpointing for a spurious veto
// received during the SOF confirmation phase, tracking backwards through
// decreasing SOF intervals to the veto's source.
func (e *Engine) pinpointJunkConf(rv receivedVeto) (*Outcome, error) {
	out := &Outcome{Kind: OutcomeJunkConfRevocation, TrailKind: audit.KindJunkConfirmation, Veto: &rv.veto}
	msgID := rv.veto.ID()
	ke := rv.inKey
	interval := rv.slot // the base station received at local slot s; the sender sent in interval s

	for interval >= 1 {
		if e.deadlineExceeded() {
			out.Kind = OutcomeAlarm
			return e.finish(out), nil
		}
		e.emit(Event{Kind: EventWalkStep, Label: "junk-conf-walk", Instance: interval, KeyIndex: ke})
		sender, ok := e.findJunkVetoSender(ke, msgID, interval)
		if !ok {
			e.revokeKey(ke)
			return e.finish(out), nil
		}
		if interval == 1 {
			// An interval-1 sender originated the veto; honest vetoers
			// only originate valid vetoes, so the admitted sender is
			// malicious.
			e.revokeNode(sender)
			return e.finish(out), nil
		}
		inKey, ok := e.findJunkVetoInKey(sender, msgID, interval-1)
		if !ok {
			e.revokeNode(sender)
			return e.finish(out), nil
		}
		ke = inKey
		interval--
	}
	return nil, fmt.Errorf("core: junk-confirmation pinpointing walked below interval 1")
}

func (e *Engine) findJunkVetoSender(keIndex int, msgID crypto.Hash, interval int) (topology.NodeID, bool) {
	mk := func(lo, hi topology.NodeID) Predicate {
		return Predicate{Kind: PredSentJunkVeto, MsgID: msgID, Pos: interval, IDLo: lo, IDHi: hi}
	}
	return e.searchHolders(keIndex, mk)
}

func (e *Engine) findJunkVetoInKey(id topology.NodeID, msgID crypto.Hash, recvInterval int) (int, bool) {
	ring := e.cfg.Deployment.Ring(id)
	if len(ring) == 0 {
		return 0, false
	}
	mk := func(lo, hi int) Predicate {
		return Predicate{Kind: PredReceivedJunkVeto, MsgID: msgID, Pos: recvInterval, KeyLo: ring[lo], KeyHi: ring[hi]}
	}
	return e.searchRing(id, ring, mk)
}
