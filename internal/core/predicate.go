package core

import (
	"repro/internal/crypto"
	"repro/internal/simnet"
	"repro/internal/topology"
)

// runPredicateTest executes one keyed predicate test (Section VI, protocol
// of Yu [29]): the base station broadcasts the test descriptor with the
// commitment H(MAC_K(N)); every sensor holding K whose state satisfies the
// predicate replies MAC_K(N); all sensors relay the first message matching
// the commitment and ignore everything else, so choking the reply is
// impossible (Theorem 3). It returns whether the base station received the
// valid reply.
//
// Malicious holders of K answer through Adversary.AnswerPredicate and may
// lie in either direction; sensors that do not hold K cannot mint the
// reply.
func (e *Engine) runPredicateTest(key KeyRef, pred Predicate) bool {
	e.predicateTests++
	k, testedPool := e.resolveKey(key)
	nonce := e.freshNonce("pred")
	reply := ReplyMAC(k, nonce)
	test := TestAnnounce{
		Key:        key,
		Pred:       pred,
		Nonce:      nonce,
		Commitment: crypto.HashMAC(reply),
	}
	e.announce(test)

	holders := e.holdersOf(key)
	n := e.cfg.Graph.NumNodes()
	relayed := make([]bool, n) // per-node; touched only by the node's goroutine
	success := false
	start := e.net.Slot()
	defer func() { e.phaseSlots.Pinpoint += e.net.Slot() - start }()

	step := func(ctx *simnet.Context) {
		id := ctx.Node()
		if relayed[id] {
			return
		}
		emit := false
		if ctx.Slot() == start && holders[id] {
			truthful := e.sensors[id].satisfies(pred, testedPool)
			if e.isMalicious(id) {
				emit = e.cfg.Adversary.AnswerPredicate(id, test, truthful)
			} else {
				emit = truthful
			}
		}
		if !emit {
			for _, m := range ctx.Inbox {
				r, ok := m.Payload.(PredicateReply)
				if !ok || crypto.HashMAC(r.MAC) != test.Commitment {
					continue
				}
				emit = true
				break
			}
		}
		if !emit {
			return
		}
		relayed[id] = true
		if id == topology.BaseStation {
			success = true
			return
		}
		ctx.Broadcast(PredicateReply{MAC: reply})
	}
	// Only the key holders act on a schedule (their slot-`start` answer
	// window); the relay wave is driven entirely by the reply itself.
	for id := range holders {
		e.net.WakeAt(start, id)
	}
	e.net.RunUntilQuiescentActive(2*e.l+4, step)
	label := "pool-key"
	keyIdx := key.PoolIndex
	node := NoNode
	if key.IsSensorKey() {
		label = "sensor-key"
		keyIdx = NoKey
		node = key.Sensor
	}
	e.emit(Event{Kind: EventPredicateTest, Label: label, Node: node, KeyIndex: keyIdx, OK: success})
	return success
}

// resolveKey returns the actual key bytes and, for pool keys, the pool
// index honest predicate evaluation checks reception keys against
// (NoKey for sensor-key tests, which do not constrain the in-edge key —
// the Figure 6 step-6 re-confirmation).
func (e *Engine) resolveKey(key KeyRef) (crypto.Key, int) {
	if key.IsSensorKey() {
		return e.cfg.Deployment.SensorKey(key.Sensor), NoKey
	}
	return e.cfg.Deployment.PoolKey(key.PoolIndex), key.PoolIndex
}

// holdersOf returns the node set able to mint the test's reply.
func (e *Engine) holdersOf(key KeyRef) map[topology.NodeID]bool {
	out := make(map[topology.NodeID]bool)
	if key.IsSensorKey() {
		if int(key.Sensor) >= 0 && int(key.Sensor) < e.cfg.Graph.NumNodes() {
			out[key.Sensor] = true
		}
		return out
	}
	for _, h := range e.cfg.Deployment.Holders(key.PoolIndex) {
		out[h] = true
	}
	return out
}
