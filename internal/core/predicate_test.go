package core

import (
	"testing"

	"repro/internal/crypto"
	"repro/internal/keydist"
	"repro/internal/topology"
)

// predEngine builds an engine over a grid with manually planted audit
// state, for driving runPredicateTest directly.
func predEngine(t *testing.T, malicious map[topology.NodeID]bool, adv Adversary) *Engine {
	t.Helper()
	g := topology.Grid(3, 4)
	dep, err := keydist.NewDeployment(g.NumNodes(), keydist.Params{PoolSize: 600, RingSize: 90},
		crypto.KeyFromUint64(55), crypto.NewStreamFromSeed(55))
	if err != nil {
		t.Fatal(err)
	}
	cfg := Config{Graph: g, Deployment: dep, Malicious: malicious, Adversary: adv, Seed: 55}
	e, err := NewEngine(cfg)
	if err != nil {
		t.Fatal(err)
	}
	e.queryNonce = e.freshNonce("query")
	return e
}

func TestPredicateTestCompleteness(t *testing.T) {
	// Theorem 3: if at least one honest sensor holding K satisfies the
	// predicate, the test succeeds.
	e := predEngine(t, nil, nil)
	holder := topology.NodeID(7)
	e.sensors[holder].sentAgg = append(e.sensors[holder].sentAgg, sentTuple{
		instance: 0, record: Record{Value: 2}, level: 3, inKey: NoKey, outKey: 42, parent: 3,
	})
	pred := Predicate{Kind: PredSentAgg, Instance: 0, VMax: 5, Pos: 3, KeyLo: 0, KeyHi: 599}
	if !e.runPredicateTest(SensorKeyRef(holder), pred) {
		t.Fatal("test failed although an honest holder satisfies the predicate")
	}
	if e.predicateTests != 1 {
		t.Fatalf("predicateTests = %d, want 1", e.predicateTests)
	}
}

func TestPredicateTestSoundness(t *testing.T) {
	// Theorem 3: if no honest sensor holding K satisfies the predicate
	// and no malicious sensor holds K, the test fails.
	e := predEngine(t, nil, nil)
	pred := Predicate{Kind: PredSentAgg, Instance: 0, VMax: 5, Pos: 3, KeyLo: 0, KeyHi: 599}
	if e.runPredicateTest(SensorKeyRef(7), pred) {
		t.Fatal("test succeeded with no satisfying sensor")
	}
}

// junkReplier floods garbage during predicate tests by lying through
// AnswerPredicate only when it holds the key; for keys it does not hold,
// Theorem 3's soundness must be unbreakable.
type alwaysYes struct{ HonestAdversary }

func (alwaysYes) AnswerPredicate(topology.NodeID, TestAnnounce, bool) bool { return true }

func TestPredicateTestMaliciousCannotForgeWithoutKey(t *testing.T) {
	// The tested key is the sensor key of an honest node 7; malicious
	// node 5 answers "yes" to everything, but never receives the chance:
	// it does not hold the key, so it cannot mint MAC_K(N).
	e := predEngine(t, map[topology.NodeID]bool{5: true}, alwaysYes{})
	pred := Predicate{Kind: PredSentAgg, Instance: 0, VMax: 5, Pos: 3, KeyLo: 0, KeyHi: 599}
	if e.runPredicateTest(SensorKeyRef(7), pred) {
		t.Fatal("malicious non-holder forged a predicate reply")
	}
}

func TestPredicateTestMaliciousHolderCanLieYes(t *testing.T) {
	// A malicious sensor that *does* hold the tested key can always reply
	// "yes" — the documented adversary power the Figure 6 walk is
	// designed around.
	e := predEngine(t, map[topology.NodeID]bool{5: true}, alwaysYes{})
	pred := Predicate{Kind: PredSentAgg, Instance: 0, VMax: 5, Pos: 3, KeyLo: 0, KeyHi: 599}
	if !e.runPredicateTest(SensorKeyRef(5), pred) {
		t.Fatal("malicious holder's lie did not carry")
	}
}

func TestPredicateTestPoolKeyHonestHolders(t *testing.T) {
	e := predEngine(t, nil, nil)
	// Find a pool key with at least two holders other than the base
	// station; plant satisfying state on one of them.
	dep := e.cfg.Deployment
	var keyIdx int
	var holder topology.NodeID
	for idx := 0; idx < 600; idx++ {
		hs := dep.Holders(idx)
		if len(hs) >= 2 {
			for _, h := range hs {
				if h != topology.BaseStation {
					keyIdx, holder = idx, h
					break
				}
			}
		}
		if holder != 0 {
			break
		}
	}
	if holder == 0 {
		t.Skip("fixture has no suitable pool key")
	}
	e.sensors[holder].noteReceivedRecord(Record{Origin: 9, Instance: 0, Value: 1}, 2, keyIdx, 9)
	pred := Predicate{Kind: PredReceivedAgg, Instance: 0, VMax: 2, Pos: 2, IDLo: 0, IDHi: topology.NodeID(e.cfg.Graph.NumNodes())}
	if !e.runPredicateTest(PoolKeyRef(keyIdx), pred) {
		t.Fatal("pool-key test failed despite satisfying holder")
	}
	// Restricting the ID window away from the holder must fail the test.
	pred.IDLo, pred.IDHi = holder+1, holder+1
	if e.runPredicateTest(PoolKeyRef(keyIdx), pred) {
		t.Fatal("pool-key test succeeded outside the holder window")
	}
}

func TestPredicateTestCostBounded(t *testing.T) {
	// Each test costs at most two flooding rounds beyond the broadcast:
	// one for the announce, one for the reply wave.
	e := predEngine(t, nil, nil)
	holder := topology.NodeID(11)
	e.sensors[holder].sentAgg = append(e.sensors[holder].sentAgg, sentTuple{
		instance: 0, record: Record{Value: 1}, level: 2, inKey: NoKey, outKey: 7, parent: 3,
	})
	before := e.net.Stats().Slots
	pred := Predicate{Kind: PredSentAgg, Instance: 0, VMax: 5, Pos: 2, KeyLo: 0, KeyHi: 599}
	if !e.runPredicateTest(SensorKeyRef(holder), pred) {
		t.Fatal("test failed")
	}
	slots := e.net.Stats().Slots - before
	if slots > 4*e.l+8 {
		t.Fatalf("one predicate test took %d slots, want <= %d", slots, 4*e.l+8)
	}
}
