package core_test

import (
	"fmt"
	"testing"

	"repro/internal/adversary"
	"repro/internal/core"
	"repro/internal/crypto"
	"repro/internal/topology"
)

// TestByzantineFuzzTheoremInvariants drives randomized executions —
// random geometric topologies, random malicious subsets (constrained to
// the paper's no-partition assumption), randomized attack strategies and
// predicate-answer modes — and checks the invariants of Theorems 2, 6 and
// 7 on every run:
//
//  1. a returned result never exceeds the honest minimum (no honest value
//     can be suppressed silently),
//  2. a non-result outcome revokes at least one key or node, and
//     everything revoked belongs to the malicious coalition,
//  3. executions stay within the paper's round bounds: O(1) flooding
//     rounds for results, O(L log n) for revocations.
func TestByzantineFuzzTheoremInvariants(t *testing.T) {
	if testing.Short() {
		t.Skip("fuzz-style sweep skipped in -short mode")
	}
	const trials = 60
	rng := crypto.NewStreamFromSeed(777)

	for trial := 0; trial < trials; trial++ {
		trial := trial
		seed := rng.Uint64()
		t.Run(fmt.Sprintf("trial-%02d", trial), func(t *testing.T) {
			runFuzzTrial(t, seed)
		})
	}
}

func runFuzzTrial(t *testing.T, seed uint64) {
	rng := crypto.NewStreamFromSeed(seed)
	n := 25 + rng.Intn(40)
	g, _ := topology.RandomGeometric(n, 0.28, rng.Fork([]byte("topo")))

	// Pick a malicious set that does not partition the honest subgraph.
	f := rng.Intn(4) + 1
	malicious := map[topology.NodeID]bool{}
	for attempts := 0; len(malicious) < f && attempts < 40; attempts++ {
		cand := topology.NodeID(rng.Intn(n-1) + 1)
		if malicious[cand] {
			continue
		}
		malicious[cand] = true
		if !g.ConnectedExcluding(topology.BaseStation, malicious) {
			delete(malicious, cand)
		}
	}

	fix := newFixture(t, g, seed)
	// Random readings with a unique minimum somewhere.
	for id := 1; id < n; id++ {
		fix.readings[topology.NodeID(id)] = 10 + float64(rng.Intn(1000))
	}
	minHolder := topology.NodeID(rng.Intn(n-1) + 1)
	fix.readings[minHolder] = 1

	strategies := []core.Adversary{
		core.HonestAdversary{},
		adversary.NewDropper(5),
		adversary.NewDropper(2000),
		adversary.NewHider(),
		adversary.NewMute(),
		adversary.NewJunkInjector(-5),
		adversary.NewChoker(),
		adversary.NewDropAndChoke(2000),
		adversary.NewLiar(adversary.AnswerAdmit),
		adversary.NewLiar(adversary.AnswerDeny),
		adversary.NewLiar(adversary.AnswerRandom),
	}
	strat := strategies[rng.Intn(len(strategies))]

	cfg := fix.config(seed)
	cfg.Malicious = malicious
	cfg.Adversary = strat
	cfg.AdversaryFavored = rng.Intn(2) == 0
	cfg.Multipath = rng.Intn(3) == 0

	eng, err := core.NewEngine(cfg)
	if err != nil {
		t.Fatalf("NewEngine: %v", err)
	}
	out, err := eng.Run()
	if err != nil {
		t.Fatalf("Run (strategy %T, f=%d): %v", strat, len(malicious), err)
	}

	honestMin := core.Inf()
	for id, v := range fix.readings {
		if !malicious[id] && v < honestMin {
			honestMin = v
		}
	}

	switch out.Kind {
	case core.OutcomeResult:
		if out.Mins[0] > honestMin {
			t.Fatalf("strategy %T: returned min %g exceeds honest min %g",
				strat, out.Mins[0], honestMin)
		}
		if out.FloodingRounds > 14 {
			t.Fatalf("result took %.1f flooding rounds, want O(1)", out.FloodingRounds)
		}
	default:
		requireRevokedMaliciousOnly(t, out, fix.dep, malicious)
		l := eng.L()
		maxTests := (l + 2) * (2*varintLog2(n) + varintLog2(len(fix.dep.Ring(0))) + 8)
		if out.PredicateTests > maxTests {
			t.Fatalf("strategy %T: %d predicate tests exceeds O(L log n) bound %d",
				strat, out.PredicateTests, maxTests)
		}
	}
}

// TestFuzzCampaignConvergence runs repeated executions against a
// persistent dropper until the system self-heals, asserting the paper's
// headline guarantee: malicious sensors "can only ruin the aggregation
// result for a small number of times before they are fully revoked".
func TestFuzzCampaignConvergence(t *testing.T) {
	if testing.Short() {
		t.Skip("campaign sweep skipped in -short mode")
	}
	rng := crypto.NewStreamFromSeed(4242)
	for trial := 0; trial < 8; trial++ {
		seed := rng.Uint64()
		g, _ := topology.RandomGeometric(30, 0.3, crypto.NewStreamFromSeed(seed))
		fix := newFixture(t, g, seed)
		minHolder := topology.NodeID(29)
		fix.readings[minHolder] = 1

		malicious := map[topology.NodeID]bool{}
		for attempts := 0; len(malicious) < 2 && attempts < 20; attempts++ {
			cand := topology.NodeID(int(rng.Uint64()%28) + 1)
			if cand == minHolder || malicious[cand] {
				continue
			}
			malicious[cand] = true
			if !g.ConnectedExcluding(topology.BaseStation, malicious) {
				delete(malicious, cand)
			}
		}
		shared, err := core.NewEngine(fix.config(seed))
		if err != nil {
			t.Fatal(err)
		}
		reg := shared.Registry()

		strat := adversary.NewDropper(5)
		answered := false
		for exec := 0; exec < 30 && !answered; exec++ {
			cfg := fix.config(seed + uint64(exec) + 1)
			cfg.Malicious = malicious
			cfg.Adversary = strat
			cfg.Registry = reg
			out := run(t, cfg)
			if out.Kind == core.OutcomeResult {
				answered = true
				if out.Mins[0] != 1 {
					t.Fatalf("trial %d: converged to %g, want 1", trial, out.Mins[0])
				}
			} else {
				requireRevokedMaliciousOnly(t, out, fix.dep, malicious)
			}
		}
		if !answered {
			t.Fatalf("trial %d: 30 executions never converged to a result", trial)
		}
	}
}
