package core

import (
	"errors"
	"fmt"
	"math"

	"repro/internal/crypto"
	"repro/internal/synopsis"
	"repro/internal/topology"
)

// AggregateResult is the outcome of a robust aggregate query (COUNT, SUM,
// or AVERAGE) executed through VMAT's MIN machinery.
type AggregateResult struct {
	// Outcome is the underlying execution outcome. The Estimate is only
	// meaningful when Outcome.Kind is OutcomeResult; otherwise the
	// execution ended in a revocation and the query should be re-run.
	Outcome *Outcome
	// Estimate is the (eps, delta)-approximate answer.
	Estimate float64
}

// Answered reports whether the execution produced a result.
func (r *AggregateResult) Answered() bool { return r.Outcome.Kind == OutcomeResult }

// RunCount executes a predicate COUNT query with m synopses (Section
// VIII): every sensor whose predicate holds contributes, per instance, a
// deterministic Exp(1) synopsis derived from (nonce, ID, instance); the
// per-instance minima aggregate through the ordinary VMAT execution, and
// the count is estimated from them. The base station verifies every
// winning synopsis by re-derivation, so a fabricated synopsis is detected
// exactly like a spurious minimum. The base Config's Instances, Readings,
// QueryNonce, and VerifyRecord fields are overwritten.
func RunCount(base Config, predicate func(topology.NodeID) bool, m int) (*AggregateResult, error) {
	if predicate == nil {
		return nil, errors.New("core: RunCount requires a predicate")
	}
	reading := func(id topology.NodeID) int64 {
		if id != topology.BaseStation && predicate(id) {
			return 1
		}
		return 0
	}
	return runSynopsisQuery(base, reading, []int64{1}, m)
}

// RunSum executes a SUM query with m synopses over integer readings drawn
// from the given domain. Sensors with reading 0 (or outside the domain)
// contribute nothing; the base station verifies winning synopses against
// the domain by re-derivation.
func RunSum(base Config, reading func(topology.NodeID) int64, domain []int64, m int) (*AggregateResult, error) {
	if reading == nil {
		return nil, errors.New("core: RunSum requires a reading function")
	}
	if len(domain) == 0 {
		return nil, errors.New("core: RunSum requires a non-empty reading domain")
	}
	return runSynopsisQuery(base, reading, domain, m)
}

// AverageResult reports an AVERAGE query, computed from a predicate COUNT
// and a SUM as in Section VIII.
type AverageResult struct {
	Count *AggregateResult
	Sum   *AggregateResult
	// Estimate is Sum/Count; NaN when either sub-query did not answer or
	// the count estimate is zero.
	Estimate float64
}

// RunAverage executes SUM and COUNT queries and combines them. The two
// executions use distinct nonces derived from the base seed.
func RunAverage(base Config, reading func(topology.NodeID) int64, domain []int64, m int) (*AverageResult, error) {
	sumCfg := base
	sumCfg.Seed = base.Seed ^ 0x5a5a
	sum, err := RunSum(sumCfg, reading, domain, m)
	if err != nil {
		return nil, fmt.Errorf("average sum leg: %w", err)
	}
	cntCfg := base
	cntCfg.Seed = base.Seed ^ 0xa5a5
	cnt, err := RunCount(cntCfg, func(id topology.NodeID) bool { return reading(id) > 0 }, m)
	if err != nil {
		return nil, fmt.Errorf("average count leg: %w", err)
	}
	out := &AverageResult{Count: cnt, Sum: sum, Estimate: math.NaN()}
	if sum.Answered() && cnt.Answered() && cnt.Estimate > 0 {
		out.Estimate = sum.Estimate / cnt.Estimate
	}
	return out, nil
}

// RunAverageCombined answers an AVERAGE query in a single execution by
// aggregating 2m MIN instances at once: instances [0, m) carry SUM
// synopses and [m, 2m) carry COUNT synopses. Compared with RunAverage's
// two executions it halves the fixed protocol overhead (tree formation,
// confirmation, broadcasts); the aggregate message grows to 2m records.
func RunAverageCombined(base Config, reading func(topology.NodeID) int64, domain []int64, m int) (*AverageResult, error) {
	if reading == nil {
		return nil, errors.New("core: RunAverageCombined requires a reading function")
	}
	if len(domain) == 0 {
		return nil, errors.New("core: RunAverageCombined requires a non-empty reading domain")
	}
	if m <= 0 {
		return nil, fmt.Errorf("core: need at least one synopsis instance, got %d", m)
	}
	nonce := append([]byte("synopsis-query"), crypto.Uint64(base.Seed)...)
	base.QueryNonce = nonce
	base.Instances = 2 * m
	base.Readings = func(id topology.NodeID, inst int) float64 {
		if id == topology.BaseStation {
			return Inf()
		}
		v := reading(id)
		if v <= 0 {
			return Inf()
		}
		if inst < m {
			return synopsis.Generate(nonce, id, v, inst) // sum leg
		}
		return synopsis.Generate(nonce, id, 1, inst) // count leg
	}
	base.VerifyRecord = func(r Record) bool {
		d := domain
		if r.Instance >= m {
			d = []int64{1}
		}
		_, ok := synopsis.VerifyReading(nonce, r.Origin, r.Value, r.Instance, d)
		return ok
	}
	eng, err := NewEngine(base)
	if err != nil {
		return nil, err
	}
	out, err := eng.Run()
	if err != nil {
		return nil, err
	}
	res := &AverageResult{
		Sum:      &AggregateResult{Outcome: out},
		Count:    &AggregateResult{Outcome: out},
		Estimate: math.NaN(),
	}
	if out.Kind == OutcomeResult {
		res.Sum.Estimate = synopsis.EstimateSum(out.Mins[:m])
		res.Count.Estimate = synopsis.EstimateSum(out.Mins[m:])
		if res.Count.Estimate > 0 {
			res.Estimate = res.Sum.Estimate / res.Count.Estimate
		}
	}
	return res, nil
}

func runSynopsisQuery(base Config, reading func(topology.NodeID) int64, domain []int64, m int) (*AggregateResult, error) {
	if m <= 0 {
		return nil, fmt.Errorf("core: need at least one synopsis instance, got %d", m)
	}
	nonce := append([]byte("synopsis-query"), crypto.Uint64(base.Seed)...)
	base.QueryNonce = nonce
	base.Instances = m
	base.Readings = func(id topology.NodeID, inst int) float64 {
		v := reading(id)
		if v <= 0 || id == topology.BaseStation {
			return Inf()
		}
		return synopsis.Generate(nonce, id, v, inst)
	}
	base.VerifyRecord = func(r Record) bool {
		_, ok := synopsis.VerifyReading(nonce, r.Origin, r.Value, r.Instance, domain)
		return ok
	}
	eng, err := NewEngine(base)
	if err != nil {
		return nil, err
	}
	out, err := eng.Run()
	if err != nil {
		return nil, err
	}
	res := &AggregateResult{Outcome: out}
	if out.Kind == OutcomeResult {
		res.Estimate = synopsis.EstimateSum(out.Mins)
	}
	return res, nil
}
