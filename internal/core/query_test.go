package core_test

import (
	"math"
	"testing"

	"repro/internal/adversary"
	"repro/internal/core"
	"repro/internal/crypto"
	"repro/internal/synopsis"
	"repro/internal/topology"
)

func TestRunCountHonest(t *testing.T) {
	g, _ := topology.RandomGeometric(80, 0.22, crypto.NewStreamFromSeed(40))
	f := newFixture(t, g, 40)
	// Predicate true for even node IDs (39 of 79 non-base sensors).
	pred := func(id topology.NodeID) bool { return id%2 == 0 }
	truth := 0
	for id := 1; id < 80; id++ {
		if pred(topology.NodeID(id)) {
			truth++
		}
	}
	res, err := core.RunCount(f.config(40), pred, 100)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Answered() {
		t.Fatalf("count query did not answer: %v", res.Outcome.Kind)
	}
	if relErr := math.Abs(res.Estimate-float64(truth)) / float64(truth); relErr > 0.35 {
		t.Fatalf("count estimate %.1f vs truth %d: rel err %.2f too high", res.Estimate, truth, relErr)
	}
}

func TestRunCountZero(t *testing.T) {
	f := newFixture(t, topology.Grid(3, 3), 41)
	res, err := core.RunCount(f.config(41), func(topology.NodeID) bool { return false }, 20)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Answered() || res.Estimate != 0 {
		t.Fatalf("empty count: answered=%v estimate=%g, want 0", res.Answered(), res.Estimate)
	}
}

func TestRunSumHonest(t *testing.T) {
	g, _ := topology.RandomGeometric(60, 0.25, crypto.NewStreamFromSeed(42))
	f := newFixture(t, g, 42)
	domain := []int64{1, 2, 3, 4, 5, 6, 7, 8, 9, 10}
	reading := func(id topology.NodeID) int64 {
		if id == 0 {
			return 0
		}
		return int64(id%10) + 1
	}
	var truth int64
	for id := 1; id < 60; id++ {
		truth += reading(topology.NodeID(id))
	}
	res, err := core.RunSum(f.config(42), reading, domain, 150)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Answered() {
		t.Fatalf("sum query did not answer: %v", res.Outcome.Kind)
	}
	if relErr := math.Abs(res.Estimate-float64(truth)) / float64(truth); relErr > 0.3 {
		t.Fatalf("sum estimate %.1f vs truth %d: rel err %.2f", res.Estimate, truth, relErr)
	}
}

func TestRunAverage(t *testing.T) {
	g, _ := topology.RandomGeometric(50, 0.3, crypto.NewStreamFromSeed(43))
	f := newFixture(t, g, 43)
	domain := []int64{1, 2, 3, 4, 5}
	reading := func(id topology.NodeID) int64 {
		if id == 0 {
			return 0
		}
		return int64(id%5) + 1
	}
	res, err := core.RunAverage(f.config(43), reading, domain, 150)
	if err != nil {
		t.Fatal(err)
	}
	if math.IsNaN(res.Estimate) {
		t.Fatalf("average did not answer: count=%v sum=%v", res.Count.Outcome.Kind, res.Sum.Outcome.Kind)
	}
	var truth float64
	for id := 1; id < 50; id++ {
		truth += float64(reading(topology.NodeID(id)))
	}
	truth /= 49
	if relErr := math.Abs(res.Estimate-truth) / truth; relErr > 0.35 {
		t.Fatalf("average estimate %.2f vs truth %.2f: rel err %.2f", res.Estimate, truth, relErr)
	}
}

func TestRunAverageCombinedMatchesTwoLeg(t *testing.T) {
	g, _ := topology.RandomGeometric(50, 0.3, crypto.NewStreamFromSeed(48))
	f := newFixture(t, g, 48)
	domain := []int64{1, 2, 3, 4, 5}
	reading := func(id topology.NodeID) int64 {
		if id == 0 {
			return 0
		}
		return int64(id%5) + 1
	}
	var truth float64
	for id := 1; id < 50; id++ {
		truth += float64(reading(topology.NodeID(id)))
	}
	truth /= 49

	combined, err := core.RunAverageCombined(f.config(48), reading, domain, 150)
	if err != nil {
		t.Fatal(err)
	}
	if math.IsNaN(combined.Estimate) {
		t.Fatalf("combined average did not answer: %v", combined.Sum.Outcome.Kind)
	}
	if relErr := math.Abs(combined.Estimate-truth) / truth; relErr > 0.35 {
		t.Fatalf("combined estimate %.2f vs truth %.2f (rel err %.2f)", combined.Estimate, truth, relErr)
	}
	// One execution must use fewer slots than two.
	twoLeg, err := core.RunAverage(f.config(48), reading, domain, 150)
	if err != nil {
		t.Fatal(err)
	}
	twoLegSlots := twoLeg.Sum.Outcome.Slots + twoLeg.Count.Outcome.Slots
	if combined.Sum.Outcome.Slots >= twoLegSlots {
		t.Fatalf("combined used %d slots, two-leg used %d", combined.Sum.Outcome.Slots, twoLegSlots)
	}
}

func TestRunAverageCombinedValidation(t *testing.T) {
	f := newFixture(t, topology.Grid(2, 2), 49)
	r := func(topology.NodeID) int64 { return 1 }
	if _, err := core.RunAverageCombined(f.config(49), nil, []int64{1}, 5); err == nil {
		t.Fatal("nil reading accepted")
	}
	if _, err := core.RunAverageCombined(f.config(49), r, nil, 5); err == nil {
		t.Fatal("empty domain accepted")
	}
	if _, err := core.RunAverageCombined(f.config(49), r, []int64{1}, 0); err == nil {
		t.Fatal("zero instances accepted")
	}
}

func TestRunAverageCombinedDetectsFabrication(t *testing.T) {
	// A forged synopsis in either leg is caught by the per-leg domains.
	f := newFixture(t, bypassGraph(), 50)
	cfg := f.config(50)
	cfg.Malicious = maliciousSet(2)
	s := &adversary.Strategy{Name: "forger", Answer: adversary.AnswerDeny}
	s.Aggregation = s.AggregationWithHooks(adversary.AggHooks{
		IncludeOwn: true,
		TransformOut: func(a *core.AdvContext, _ []core.Record) []core.Record {
			return []core.Record{a.RecordWithValue(0, 1e-18)}
		},
	})
	cfg.Adversary = s
	res, err := core.RunAverageCombined(cfg, func(id topology.NodeID) int64 { return int64(id%3) + 1 },
		[]int64{1, 2, 3}, 10)
	if err != nil {
		t.Fatal(err)
	}
	if !math.IsNaN(res.Estimate) {
		t.Fatalf("fabricated synopsis went undetected: %g", res.Estimate)
	}
	if res.Sum.Outcome.Kind != core.OutcomeJunkAggRevocation {
		t.Fatalf("outcome = %v", res.Sum.Outcome.Kind)
	}
}

func TestCountFabricatedSynopsisDetected(t *testing.T) {
	// A malicious sensor injecting an arbitrary (not derivable) synopsis
	// value is caught by the base station's re-derivation check even
	// though the record MAC game is unavailable to intermediate sensors.
	f := newFixture(t, bypassGraph(), 44)
	cfg := f.config(44)
	cfg.Malicious = maliciousSet(2)
	s := &adversary.Strategy{Name: "synopsis-forger", Answer: adversary.AnswerDeny}
	s.Aggregation = s.AggregationWithHooks(adversary.AggHooks{
		IncludeOwn: true,
		TransformOut: func(a *core.AdvContext, _ []core.Record) []core.Record {
			// Valid sensor-key MAC but an impossible synopsis value: the
			// "enumerate and pick" attack is allowed, inventing values is
			// not.
			records := make([]core.Record, a.Instances())
			for inst := range records {
				records[inst] = a.RecordWithValue(inst, 1e-15)
			}
			return records
		},
	})
	cfg.Adversary = s
	res, err := core.RunCount(cfg, func(id topology.NodeID) bool { return true }, 10)
	if err != nil {
		t.Fatal(err)
	}
	if res.Answered() {
		t.Fatalf("fabricated synopsis went undetected: estimate %g", res.Estimate)
	}
	if res.Outcome.Kind != core.OutcomeJunkAggRevocation {
		t.Fatalf("outcome = %v, want junk-agg-revocation", res.Outcome.Kind)
	}
	requireRevokedMaliciousOnly(t, res.Outcome, f.dep, cfg.Malicious)
}

func TestCountAdversarialOwnReadingAllowed(t *testing.T) {
	// A malicious sensor reporting a *derivable* synopsis (claiming its
	// predicate is true) is within the problem definition: the query
	// answers, counting the malicious sensor.
	f := newFixture(t, topology.Grid(3, 3), 45)
	cfg := f.config(45)
	cfg.Malicious = maliciousSet(4)
	nonce := append([]byte("synopsis-query"), crypto.Uint64(cfg.Seed)...)
	s := &adversary.Strategy{Name: "self-reporter"}
	s.Aggregation = s.AggregationWithHooks(adversary.AggHooks{
		IncludeOwn: false,
		TransformOut: func(a *core.AdvContext, records []core.Record) []core.Record {
			out := append([]core.Record(nil), records...)
			for inst := 0; inst < a.Instances(); inst++ {
				v := synopsis.Generate(nonce, a.Node(), 1, inst)
				out = append(out, a.RecordWithValue(inst, v))
			}
			return out
		},
	})
	cfg.Adversary = s
	res, err := core.RunCount(cfg, func(id topology.NodeID) bool { return true }, 30)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Answered() {
		t.Fatalf("legitimate self-report treated as attack: %v", res.Outcome.Kind)
	}
}

func TestRunCountValidation(t *testing.T) {
	f := newFixture(t, topology.Grid(2, 2), 46)
	if _, err := core.RunCount(f.config(46), nil, 10); err == nil {
		t.Fatal("nil predicate accepted")
	}
	if _, err := core.RunCount(f.config(46), func(topology.NodeID) bool { return true }, 0); err == nil {
		t.Fatal("zero instances accepted")
	}
	if _, err := core.RunSum(f.config(46), nil, []int64{1}, 10); err == nil {
		t.Fatal("nil reading accepted")
	}
	if _, err := core.RunSum(f.config(46), func(topology.NodeID) int64 { return 1 }, nil, 10); err == nil {
		t.Fatal("empty domain accepted")
	}
}

func TestCountCommunicationMatchesPaperFigure(t *testing.T) {
	// Section IX: 100 synopses at 24 bytes each make the aggregation
	// message 2.4KB. Verify the per-sensor aggregation payload in a COUNT
	// run never exceeds a few times that (tree + confirmation overhead),
	// and in particular that the maximum per-sensor traffic is far below
	// the naive all-readings bound of n*24 bytes.
	g, _ := topology.RandomGeometric(120, 0.2, crypto.NewStreamFromSeed(47))
	f := newFixture(t, g, 47)
	res, err := core.RunCount(f.config(47), func(id topology.NodeID) bool { return true }, 100)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Answered() {
		t.Fatalf("count did not answer: %v", res.Outcome.Kind)
	}
	stats := res.Outcome.Stats
	maxBytes := stats.MaxNodeBytes()
	// Each sensor sends one 2.4KB aggregate and receives one per child;
	// even hubs stay within ~30KB, while shipping all 119 readings
	// through the root would alone cost 119*24 = 2.8KB per message hop
	// with O(n) messages at the root.
	if maxBytes > 120_000 {
		t.Fatalf("per-sensor traffic %d bytes implausibly high", maxBytes)
	}
}
