package core_test

import (
	"math"
	"testing"

	"repro/internal/adversary"
	"repro/internal/core"
	"repro/internal/crypto"
	"repro/internal/keydist"
	"repro/internal/topology"
)

// TestScaleLargeHonestCount runs a paper-scale COUNT query (1,500 sensors,
// 100 synopses) and checks the headline properties hold at size: the
// estimate lands within the (eps, delta) envelope, flooding rounds stay
// O(1), and the median sensor's aggregation traffic stays at one 2.4KB
// message.
func TestScaleLargeHonestCount(t *testing.T) {
	if testing.Short() {
		t.Skip("large-scale run skipped in -short mode")
	}
	const n = 1500
	rng := crypto.NewStreamFromSeed(1500)
	g, _ := topology.RandomGeometric(n, 0.052, rng.Fork([]byte("topo")))
	dep, err := keydist.NewDeployment(n, keydist.Params{PoolSize: 10000, RingSize: 300},
		crypto.KeyFromUint64(1500), rng.Fork([]byte("keys")))
	if err != nil {
		t.Fatal(err)
	}
	cfg := core.Config{Graph: g, Deployment: dep, Seed: 1500}
	pred := func(id topology.NodeID) bool { return id%3 == 0 }
	truth := 0
	for id := 1; id < n; id++ {
		if pred(topology.NodeID(id)) {
			truth++
		}
	}
	res, err := core.RunCount(cfg, pred, 100)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Answered() {
		t.Fatalf("count did not answer: %v", res.Outcome.Kind)
	}
	if relErr := math.Abs(res.Estimate-float64(truth)) / float64(truth); relErr > 0.3 {
		t.Fatalf("estimate %.0f vs truth %d (rel err %.2f)", res.Estimate, truth, relErr)
	}
	if res.Outcome.FloodingRounds > 10 {
		t.Fatalf("%.1f flooding rounds at n=%d, want O(1)", res.Outcome.FloodingRounds, n)
	}
	if res.Outcome.AggMedianNodeBytes > 3*2412 {
		t.Fatalf("median sensor moved %d bytes in aggregation, want ~2412", res.Outcome.AggMedianNodeBytes)
	}
}

// TestScaleLargeAttackedPinpointing runs a 400-sensor dropping attack and
// checks pinpointing stays within the Theorem 6 bound at size.
func TestScaleLargeAttackedPinpointing(t *testing.T) {
	if testing.Short() {
		t.Skip("large-scale run skipped in -short mode")
	}
	const n = 400
	rng := crypto.NewStreamFromSeed(4001)
	g, _ := topology.RandomGeometric(n, 0.1, rng.Fork([]byte("topo")))
	dep, err := keydist.NewDeployment(n, keydist.Params{PoolSize: 10000, RingSize: 300},
		crypto.KeyFromUint64(4001), rng.Fork([]byte("keys")))
	if err != nil {
		t.Fatal(err)
	}
	// Attacker adjacent (and upstream) to the planted minimum.
	depths := g.Depths(topology.BaseStation)
	var attacker, minHolder topology.NodeID
	for id := 1; id < n && attacker == 0; id++ {
		cand := topology.NodeID(id)
		if !g.ConnectedExcluding(topology.BaseStation, map[topology.NodeID]bool{cand: true}) {
			continue
		}
		for _, nb := range g.Neighbors(cand) {
			if depths[nb] == depths[cand]+1 {
				attacker, minHolder = cand, nb
				break
			}
		}
	}
	if attacker == 0 {
		t.Skip("no suitable attacker placement")
	}
	cfg := core.Config{
		Graph: g, Deployment: dep, Seed: 4001,
		Malicious:        map[topology.NodeID]bool{attacker: true},
		Adversary:        adversary.NewDropper(50),
		AdversaryFavored: true,
		Readings: func(id topology.NodeID, _ int) float64 {
			if id == topology.BaseStation {
				return core.Inf()
			}
			if id == minHolder {
				return 1
			}
			return 100 + float64(id)
		},
	}
	eng, err := core.NewEngine(cfg)
	if err != nil {
		t.Fatal(err)
	}
	out, err := eng.Run()
	if err != nil {
		t.Fatal(err)
	}
	if out.Kind != core.OutcomeVetoRevocation {
		t.Fatalf("outcome %v, want veto-revocation", out.Kind)
	}
	l := eng.L()
	maxTests := (l + 2) * (2*varintLog2(n) + varintLog2(300) + 8)
	if out.PredicateTests > maxTests {
		t.Fatalf("%d predicate tests above the O(L log n) bound %d", out.PredicateTests, maxTests)
	}
	requireRevokedMaliciousOnly(t, out, dep, cfg.Malicious)
}
