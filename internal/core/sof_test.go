package core

import (
	"testing"

	"repro/internal/crypto"
	"repro/internal/keydist"
	"repro/internal/topology"
)

// chokeEverything floods forged vetoes from every malicious node in the
// first confirmation slot, driving the SOF one-time-forwarding machinery
// as hard as the model allows.
type chokeEverything struct{ HonestAdversary }

func (chokeEverything) Step(phase Phase, a *AdvContext) {
	if phase != PhaseConfirmation {
		a.ActHonestly()
		return
	}
	if a.LocalSlot() != 0 {
		return
	}
	mins := a.AnnouncedMins()
	if len(mins) == 0 {
		return
	}
	fake := a.ForgeVeto(a.Node()+1, 0, mins[0]-1, 1)
	for _, nb := range a.Neighbors() {
		if key, ok := a.EdgeKeyWith(nb); ok {
			a.SendSealed(nb, key, fake)
		}
	}
}

func (chokeEverything) AnswerPredicate(topology.NodeID, TestAnnounce, bool) bool { return false }

// TestSOFAuditTrailIntervalsBounded drives a heavily choked confirmation
// phase and checks the slotted-flooding invariant that makes pinpointing
// efficient: every recorded SOF tuple's interval lies in [1, L+1], so no
// audit trail can exceed L+1 entries (Section IV-C: "This will elegantly
// ensure that the length of the audit trail is at most L+1").
func TestSOFAuditTrailIntervalsBounded(t *testing.T) {
	rng := crypto.NewStreamFromSeed(321)
	g, _ := topology.RandomGeometric(50, 0.28, rng.Fork([]byte("topo")))
	dep, err := keydist.NewDeployment(50, keydist.Params{PoolSize: 500, RingSize: 130},
		crypto.KeyFromUint64(321), rng.Fork([]byte("keys")))
	if err != nil {
		t.Fatal(err)
	}
	malicious := map[topology.NodeID]bool{}
	for len(malicious) < 4 {
		cand := topology.NodeID(rng.Intn(49) + 1)
		malicious[cand] = true
		if !g.ConnectedExcluding(topology.BaseStation, malicious) {
			delete(malicious, cand)
		}
	}
	cfg := Config{
		Graph:      g,
		Deployment: dep,
		Malicious:  malicious,
		Adversary:  chokeEverything{},
		Seed:       321,
		Readings: func(id topology.NodeID, _ int) float64 {
			if id == topology.BaseStation {
				return Inf()
			}
			return 100 + float64(id)
		},
		AdversaryFavored: true,
	}
	e, err := NewEngine(cfg)
	if err != nil {
		t.Fatal(err)
	}
	out, err := e.Run()
	if err != nil {
		t.Fatal(err)
	}
	// The chokers' fakes claim values below the announced minimum, so
	// the base station receives spurious vetoes and pinpointing runs.
	if out.Kind != OutcomeJunkConfRevocation {
		t.Fatalf("outcome = %v, want junk-conf-revocation", out.Kind)
	}
	forwarded := 0
	for _, s := range e.sensors {
		if s.vetoSent == nil {
			continue
		}
		forwarded++
		if s.vetoSent.interval < 1 || s.vetoSent.interval > e.l+1 {
			t.Fatalf("sensor %d SOF interval %d outside [1, %d]",
				s.id, s.vetoSent.interval, e.l+1)
		}
		if !e.cfg.Malicious[s.id] && len(s.vetoSent.outKeys) == 0 {
			t.Fatalf("sensor %d recorded a forward with no out-keys", s.id)
		}
	}
	if forwarded == 0 {
		t.Fatal("no sensor forwarded any veto despite the choke flood")
	}
}

// TestSOFOneTimeForwarding checks each honest sensor forwards at most one
// veto: the one-time rule that lets the choke flood die out instead of
// saturating the network.
func TestSOFOneTimeForwarding(t *testing.T) {
	g := topology.Grid(4, 4)
	dep, err := keydist.NewDeployment(16, keydist.Params{PoolSize: 400, RingSize: 120},
		crypto.KeyFromUint64(322), crypto.NewStreamFromSeed(322))
	if err != nil {
		t.Fatal(err)
	}
	malicious := map[topology.NodeID]bool{5: true, 10: true}
	cfg := Config{
		Graph:      g,
		Deployment: dep,
		Malicious:  malicious,
		Adversary:  chokeEverything{},
		Seed:       322,
		Readings: func(id topology.NodeID, _ int) float64 {
			if id == topology.BaseStation {
				return Inf()
			}
			return 100 + float64(id)
		},
	}
	e, err := NewEngine(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := e.Run(); err != nil {
		t.Fatal(err)
	}
	for _, s := range e.sensors {
		if malicious[s.id] || s.id == topology.BaseStation {
			continue
		}
		if s.vetoSent != nil && len(s.vetoSent.outKeys) > len(g.Neighbors(s.id)) {
			t.Fatalf("sensor %d forwarded %d copies with %d neighbors",
				s.id, len(s.vetoSent.outKeys), len(g.Neighbors(s.id)))
		}
	}
}
