package core

import (
	"repro/internal/audit"
	"repro/internal/crypto"
	"repro/internal/topology"
)

// NoKey marks an absent edge key (e.g. a sensor's own reading has no
// in-edge key). It aliases the audit package's marker.
const NoKey = audit.NoKey

// sentTuple is the aggregation-phase audit tuple of Section IV-B:
// <level, message, sensor key, in-edge key, out-edge key>. The sensor key
// is implicit (the owner); one tuple is stored per (instance, parent).
type sentTuple struct {
	instance int
	record   Record
	level    int
	inKey    int // pool index the winning record arrived with; NoKey if own
	outKey   int // pool index used toward the parent
	parent   topology.NodeID
}

// recvTuple records one child record accepted during aggregation. Sensors
// keep these so they can truthfully answer the "received a message with
// value no greater than v from a child at the given level" predicates of
// Figures 5/6 even when the received value was later replaced by a smaller
// one.
type recvTuple struct {
	record     Record
	childLevel int // level implied by the arrival slot: L - (sendSlot)
	inKey      int
	from       topology.NodeID
}

// sofTuple is the confirmation-phase audit tuple: <interval, message,
// sensor key, in-edge key, out-edge key>, with one out-key per neighbor
// the veto was forwarded to.
type sofTuple struct {
	veto     VetoMsg
	interval int // SOF interval in which the veto was sent/forwarded
	inKey    int // NoKey when this sensor originated the veto
	outKeys  []int
}

// sensorState is the per-execution protocol state of one node, including
// the base station (level 0). States live in one flat array indexed by
// node ID; each is touched only by its own node's step during a phase,
// and by the engine between phases.
type sensorState struct {
	id    topology.NodeID
	level int // -1 until tree formation assigns one; base station: 0

	// parents are the aggregation parents (one for single-path; all
	// level-(i-1) tree senders for multi-path).
	parents []topology.NodeID

	// best tracks the per-instance minimum record seen so far (own record
	// until a smaller child record arrives); bestInKey tracks the in-edge
	// key that delivered each current best (NoKey for own).
	best      []Record
	bestInKey []int

	recvAgg  []recvTuple
	sentAgg  []sentTuple
	vetoSent *sofTuple

	// forwardedVeto marks that the one-time SOF forward has been spent.
	forwardedVeto bool

	rng *crypto.Stream
}

// newSensorState builds one standalone state (tests exercise audit-tuple
// logic on it directly); engine executions init slots of a flat array
// instead.
func newSensorState(id topology.NodeID, instances int, rng *crypto.Stream) *sensorState {
	s := new(sensorState)
	s.init(id, instances, rng)
	return s
}

// init prepares one slot of the flat sensor-state array.
func (s *sensorState) init(id topology.NodeID, instances int, rng *crypto.Stream) {
	s.id = id
	s.level = -1
	s.best = make([]Record, instances)
	s.bestInKey = make([]int, instances)
	s.rng = rng
	for i := range s.best {
		s.best[i] = Record{Origin: id, Instance: i, Value: Inf()}
		s.bestInKey[i] = NoKey
	}
}

// noteReceivedRecord merges a child record into the running minima and
// stores the reception tuple.
func (s *sensorState) noteReceivedRecord(r Record, childLevel, inKey int, from topology.NodeID) {
	if r.Instance < 0 || r.Instance >= len(s.best) {
		return
	}
	s.recvAgg = append(s.recvAgg, recvTuple{record: r, childLevel: childLevel, inKey: inKey, from: from})
	if r.Value < s.best[r.Instance].Value {
		s.best[r.Instance] = r
		s.bestInKey[r.Instance] = inKey
	}
}

// noteSent stores the audit tuples for the records just forwarded to one
// parent.
func (s *sensorState) noteSent(parent topology.NodeID, outKey int) {
	for inst := range s.best {
		s.sentAgg = append(s.sentAgg, sentTuple{
			instance: inst,
			record:   s.best[inst],
			level:    s.level,
			inKey:    s.bestInKey[inst],
			outKey:   outKey,
			parent:   parent,
		})
	}
}

// satisfies evaluates a keyed predicate test truthfully against the
// sensor's audit state. testedPool is the pool index of the tested key
// when the test is keyed on an edge key (-1 for sensor-key tests).
func (s *sensorState) satisfies(p Predicate, testedPool int) bool {
	switch p.Kind {
	case PredSentAgg:
		for _, t := range s.sentAgg {
			if t.instance == p.Instance && t.level == p.Pos &&
				t.record.Value <= p.VMax &&
				t.outKey >= p.KeyLo && t.outKey <= p.KeyHi {
				return true
			}
		}
	case PredReceivedAgg:
		if s.id < p.IDLo || s.id > p.IDHi {
			return false
		}
		for _, t := range s.recvAgg {
			if t.record.Instance == p.Instance && t.childLevel == p.Pos &&
				t.record.Value <= p.VMax &&
				(testedPool == NoKey || t.inKey == testedPool) {
				// testedPool is NoKey for the Figure 6 step-6
				// re-confirmation, which is keyed on the sensor key and
				// does not constrain the in-edge key.
				return true
			}
		}
	case PredSentJunkAgg:
		if s.id < p.IDLo || s.id > p.IDHi {
			return false
		}
		for _, t := range s.sentAgg {
			if t.record.ID() == p.MsgID && t.level == p.Pos &&
				(testedPool == NoKey || t.outKey == testedPool) {
				return true
			}
		}
	case PredReceivedJunkAgg:
		if s.level != p.Pos {
			return false
		}
		for _, t := range s.recvAgg {
			if t.record.ID() == p.MsgID && t.childLevel == p.Pos+1 &&
				t.inKey >= p.KeyLo && t.inKey <= p.KeyHi {
				return true
			}
		}
	case PredSentJunkVeto:
		if s.id < p.IDLo || s.id > p.IDHi || s.vetoSent == nil {
			return false
		}
		if s.vetoSent.veto.ID() != p.MsgID || s.vetoSent.interval != p.Pos {
			return false
		}
		if testedPool == NoKey {
			return true
		}
		for _, k := range s.vetoSent.outKeys {
			if k == testedPool {
				return true
			}
		}
	case PredReceivedJunkVeto:
		if s.vetoSent == nil || s.vetoSent.inKey == NoKey {
			return false
		}
		// A forwarder that sent in interval i received the veto in
		// interval i-1 = p.Pos.
		return s.vetoSent.veto.ID() == p.MsgID &&
			s.vetoSent.interval-1 == p.Pos &&
			s.vetoSent.inKey >= p.KeyLo && s.vetoSent.inKey <= p.KeyHi
	}
	return false
}
