package core

import (
	"fmt"

	"repro/internal/topology"
)

// EventKind classifies execution trace events.
type EventKind int

const (
	// EventPhase marks a protocol phase starting.
	EventPhase EventKind = iota + 1
	// EventMinReceived reports a per-instance winning record at the base
	// station after aggregation.
	EventMinReceived
	// EventVetoReceived reports a veto arriving at the base station.
	EventVetoReceived
	// EventPredicateTest reports one keyed predicate test and its result.
	EventPredicateTest
	// EventWalkStep reports one hop of a pinpointing walk.
	EventWalkStep
	// EventRevocation reports a key or sensor revocation.
	EventRevocation
	// EventOutcome reports the execution's final outcome.
	EventOutcome
)

// String names the kind.
func (k EventKind) String() string {
	switch k {
	case EventPhase:
		return "phase"
	case EventMinReceived:
		return "min-received"
	case EventVetoReceived:
		return "veto-received"
	case EventPredicateTest:
		return "predicate-test"
	case EventWalkStep:
		return "walk-step"
	case EventRevocation:
		return "revocation"
	case EventOutcome:
		return "outcome"
	default:
		return fmt.Sprintf("EventKind(%d)", int(k))
	}
}

// Event is one trace record. Field meaning depends on Kind; unused fields
// are zero.
type Event struct {
	Kind EventKind
	// Slot is the network slot at which the event was emitted.
	Slot int
	// Label carries the phase name, walk direction, or outcome name.
	Label string
	// Node is the sensor involved (vetoer, revoked sensor, walk subject).
	Node topology.NodeID
	// Instance is the MIN instance involved.
	Instance int
	// Value is the record or veto value.
	Value float64
	// KeyIndex is the pool key involved (tested or revoked); NoKey when
	// not applicable.
	KeyIndex int
	// OK reports a predicate test's result or a veto's validity.
	OK bool
}

// String renders the event compactly for logs.
func (e Event) String() string {
	switch e.Kind {
	case EventPhase:
		return fmt.Sprintf("[%4d] phase %s", e.Slot, e.Label)
	case EventMinReceived:
		return fmt.Sprintf("[%4d] min inst=%d value=%g origin=%d valid=%v", e.Slot, e.Instance, e.Value, e.Node, e.OK)
	case EventVetoReceived:
		return fmt.Sprintf("[%4d] veto from=%d inst=%d value=%g valid=%v", e.Slot, e.Node, e.Instance, e.Value, e.OK)
	case EventPredicateTest:
		return fmt.Sprintf("[%4d] test %s key=%d node=%d -> %v", e.Slot, e.Label, e.KeyIndex, e.Node, e.OK)
	case EventWalkStep:
		return fmt.Sprintf("[%4d] walk %s node=%d key=%d pos=%d", e.Slot, e.Label, e.Node, e.KeyIndex, e.Instance)
	case EventRevocation:
		if e.Node == NoNode {
			return fmt.Sprintf("[%4d] revoke key %d", e.Slot, e.KeyIndex)
		}
		return fmt.Sprintf("[%4d] revoke sensor %d", e.Slot, e.Node)
	case EventOutcome:
		return fmt.Sprintf("[%4d] outcome %s", e.Slot, e.Label)
	default:
		return fmt.Sprintf("[%4d] %v", e.Slot, e.Kind)
	}
}

// emit sends an event to the configured tracer, stamping the current
// slot. It is a no-op without a tracer.
func (e *Engine) emit(ev Event) {
	if e.cfg.Trace == nil {
		return
	}
	ev.Slot = e.net.Slot()
	e.cfg.Trace(ev)
}
