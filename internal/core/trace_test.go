package core_test

import (
	"strings"
	"testing"

	"repro/internal/adversary"
	"repro/internal/core"
	"repro/internal/topology"
)

func collectEvents(t *testing.T, cfg core.Config) []core.Event {
	t.Helper()
	var events []core.Event
	cfg.Trace = func(ev core.Event) { events = append(events, ev) }
	eng, err := core.NewEngine(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := eng.Run(); err != nil {
		t.Fatal(err)
	}
	return events
}

func kinds(events []core.Event, k core.EventKind) []core.Event {
	var out []core.Event
	for _, ev := range events {
		if ev.Kind == k {
			out = append(out, ev)
		}
	}
	return out
}

func TestTraceHonestRunSequence(t *testing.T) {
	f := newFixture(t, topology.Grid(3, 4), 80)
	events := collectEvents(t, f.config(80))

	var phases []string
	for _, ev := range kinds(events, core.EventPhase) {
		phases = append(phases, ev.Label)
	}
	want := []string{"announce", "tree-formation", "aggregation", "confirmation"}
	if strings.Join(phases, ",") != strings.Join(want, ",") {
		t.Fatalf("phases = %v, want %v", phases, want)
	}

	mins := kinds(events, core.EventMinReceived)
	if len(mins) != 1 || !mins[0].OK {
		t.Fatalf("min events = %+v, want one valid", mins)
	}
	outs := kinds(events, core.EventOutcome)
	if len(outs) != 1 || outs[0].Label != "result" {
		t.Fatalf("outcome events = %+v", outs)
	}
	if len(kinds(events, core.EventVetoReceived)) != 0 {
		t.Fatal("honest run produced veto events")
	}
	if len(kinds(events, core.EventPredicateTest)) != 0 {
		t.Fatal("honest run produced predicate-test events")
	}
	// Slots are monotone non-decreasing.
	for i := 1; i < len(events); i++ {
		if events[i].Slot < events[i-1].Slot {
			t.Fatalf("event slots not monotone: %v then %v", events[i-1], events[i])
		}
	}
}

func TestTraceAttackedRunSequence(t *testing.T) {
	f := newFixture(t, bypassGraph(), 81)
	f.readings[4] = 1
	cfg := f.config(81)
	cfg.Malicious = maliciousSet(2)
	cfg.Adversary = adversary.NewDropper(50)
	events := collectEvents(t, cfg)

	vetoEvents := kinds(events, core.EventVetoReceived)
	if len(vetoEvents) != 1 || !vetoEvents[0].OK || vetoEvents[0].Node != 4 {
		t.Fatalf("veto events = %+v, want one valid from node 4", vetoEvents)
	}
	if len(kinds(events, core.EventWalkStep)) == 0 {
		t.Fatal("no walk steps traced")
	}
	tests := kinds(events, core.EventPredicateTest)
	if len(tests) == 0 {
		t.Fatal("no predicate tests traced")
	}
	revs := kinds(events, core.EventRevocation)
	if len(revs) == 0 {
		t.Fatal("no revocation traced")
	}
	outs := kinds(events, core.EventOutcome)
	if len(outs) != 1 || outs[0].Label != "veto-revocation" {
		t.Fatalf("outcome = %+v", outs)
	}
}

func TestEventStringsRender(t *testing.T) {
	samples := []core.Event{
		{Kind: core.EventPhase, Label: "tree-formation"},
		{Kind: core.EventMinReceived, Instance: 1, Value: 2.5, Node: 3, OK: true},
		{Kind: core.EventVetoReceived, Node: 4, Value: 1, OK: false},
		{Kind: core.EventPredicateTest, Label: "pool-key", KeyIndex: 9, OK: true},
		{Kind: core.EventWalkStep, Label: "veto-walk", Node: 4, Instance: 3},
		{Kind: core.EventRevocation, KeyIndex: 9, Node: core.NoNode},
		{Kind: core.EventRevocation, Node: 7},
		{Kind: core.EventOutcome, Label: "result"},
		{Kind: core.EventKind(42)},
	}
	for _, ev := range samples {
		if ev.String() == "" {
			t.Fatalf("event %v rendered empty", ev.Kind)
		}
	}
	if core.EventKind(42).String() == "" {
		t.Fatal("unknown kind rendered empty")
	}
}
