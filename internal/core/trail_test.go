package core

import (
	"testing"

	"repro/internal/audit"
	"repro/internal/crypto"
	"repro/internal/keydist"
	"repro/internal/topology"
)

// dropAll is a minimal in-package dropper: honest everywhere except that
// it forwards nothing during aggregation and denies every predicate test.
type dropAll struct{}

func (dropAll) Step(phase Phase, a *AdvContext) {
	if phase != PhaseAggregation {
		a.ActHonestly()
	}
}
func (dropAll) AnswerPredicate(topology.NodeID, TestAnnounce, bool) bool { return false }
func (dropAll) ForwardAuthBroadcast(topology.NodeID) bool                { return true }

// TestVetoAuditTrailWellFormed exercises Theorem 2's third claim
// end-to-end: after a dropping attack triggers veto pinpointing, the
// audit tuples actually stored by the honest sensors, walked from the
// vetoer toward the base station and terminated with a bottom-tuple at
// the malicious hop, form a well-formed audit trail per Section V.
func TestVetoAuditTrailWellFormed(t *testing.T) {
	// 0-1, 1-2(M), 2-4, 4-6(V), with honest bypass 1-3, 3-5, 5-6.
	// The vetoer 6 sits at level 4; its value crosses 4 and the malicious
	// 2, giving a three-tuple trail <4,v,6>, <3,v,4>, <2,v,bottom>.
	g := topology.New(7)
	g.AddEdge(0, 1)
	g.AddEdge(1, 2)
	g.AddEdge(2, 4)
	g.AddEdge(4, 6)
	g.AddEdge(1, 3)
	g.AddEdge(3, 5)
	g.AddEdge(5, 6)

	dep, err := keydist.NewDeployment(7, keydist.Params{PoolSize: 600, RingSize: 90},
		crypto.KeyFromUint64(33), crypto.NewStreamFromSeed(33))
	if err != nil {
		t.Fatal(err)
	}
	malicious := map[topology.NodeID]bool{2: true}
	cfg := Config{
		Graph:      g,
		Deployment: dep,
		Malicious:  malicious,
		Adversary:  dropAll{},
		Seed:       33,
		Readings: func(id topology.NodeID, _ int) float64 {
			switch id {
			case 0:
				return Inf()
			case 6:
				return 1
			default:
				return 100 + float64(id)
			}
		},
	}
	e, err := NewEngine(cfg)
	if err != nil {
		t.Fatal(err)
	}
	out, err := e.Run()
	if err != nil {
		t.Fatal(err)
	}
	if out.Kind != OutcomeVetoRevocation {
		t.Fatalf("outcome %v, want veto-revocation", out.Kind)
	}
	if out.Veto == nil || out.Veto.Vetoer != 6 || out.Veto.Level != 4 {
		t.Fatalf("veto = %+v, want vetoer 6 at level 4", out.Veto)
	}

	trail := buildVetoTrail(t, e, *out.Veto, malicious)
	if len(trail) != 3 {
		t.Fatalf("trail length %d, want 3: %+v", len(trail), trail)
	}
	heldBy := func(tp audit.Tuple, key int) bool {
		if tp.Bottom {
			for id := range malicious {
				if dep.Holds(id, key) {
					return true
				}
			}
			return false
		}
		return dep.Holds(tp.Owner, key)
	}
	if err := audit.Validate(audit.KindVetoAggregation, trail, e.L(), heldBy); err != nil {
		t.Fatalf("trail not well-formed: %v\ntrail: %+v", err, trail)
	}
	// The revoked key must be the trail's final chain key.
	last := trail[len(trail)-1]
	if len(out.RevokedKeys) != 1 || out.RevokedKeys[0] != last.InKey {
		t.Fatalf("revoked %v, want the trail's terminal in-key %d", out.RevokedKeys, last.InKey)
	}
}

// buildVetoTrail reconstructs the distributed audit trail for a veto from
// the sensors' stored tuples: normal tuples from honest senders, a
// bottom-tuple where the value entered the malicious coalition and
// vanished.
func buildVetoTrail(t *testing.T, e *Engine, v VetoMsg, malicious map[topology.NodeID]bool) []audit.Tuple {
	t.Helper()
	var trail []audit.Tuple
	cur := v.Vetoer
	level := v.Level
	vmax := v.Value
	for hops := 0; hops <= e.l+1; hops++ {
		s := e.sensors[cur]
		var sent *sentTuple
		for i := range s.sentAgg {
			st := &s.sentAgg[i]
			if st.instance == v.Instance && st.level == level && st.record.Value <= vmax {
				sent = st
				break
			}
		}
		if sent == nil {
			t.Fatalf("honest sensor %d has no matching sent tuple at level %d", cur, level)
		}
		trail = append(trail, audit.Tuple{
			Pos:    sent.level,
			Value:  sent.record.Value,
			Owner:  cur,
			InKey:  sent.inKey,
			OutKey: sent.outKey,
		})
		if malicious[sent.parent] {
			trail = append(trail, audit.Tuple{
				Pos:    level - 1,
				Value:  sent.record.Value,
				Bottom: true,
				InKey:  sent.outKey,
				OutKey: audit.NoKey,
			})
			return trail
		}
		if sent.parent == topology.BaseStation {
			t.Fatal("trail reached the base station although the value was dropped")
		}
		cur = sent.parent
		level--
		vmax = sent.record.Value
	}
	t.Fatal("trail did not terminate")
	return nil
}

// TestVetoTrailFirstTupleHasNoInKey checks the vetoer's tuple carries its
// own reading (no in-edge key), matching the Figure 3 example's shape.
func TestVetoTrailFirstTupleHasNoInKey(t *testing.T) {
	g := topology.New(4)
	g.AddEdge(0, 1)
	g.AddEdge(1, 2)
	g.AddEdge(2, 3)
	g.AddEdge(1, 3) // honest bypass keeps 3 connected when 2 is malicious
	dep, err := keydist.NewDeployment(4, keydist.Params{PoolSize: 600, RingSize: 90},
		crypto.KeyFromUint64(34), crypto.NewStreamFromSeed(34))
	if err != nil {
		t.Fatal(err)
	}
	cfg := Config{
		Graph:      g,
		Deployment: dep,
		Malicious:  map[topology.NodeID]bool{2: true},
		Adversary:  dropAll{},
		Seed:       34,
		Readings: func(id topology.NodeID, _ int) float64 {
			if id == 0 {
				return Inf()
			}
			if id == 3 {
				return 1
			}
			return 50 + float64(id)
		},
	}
	e, err := NewEngine(cfg)
	if err != nil {
		t.Fatal(err)
	}
	out, err := e.Run()
	if err != nil {
		t.Fatal(err)
	}
	if out.Kind != OutcomeResult {
		// Node 3 is level 2 via either parent; if its parent was honest
		// node 1's path, the result is correct. Both outcomes are legal;
		// only inspect the trail when a veto happened.
		if out.Veto == nil {
			t.Fatalf("unexpected outcome %v without veto", out.Kind)
		}
		s := e.sensors[out.Veto.Vetoer]
		for _, st := range s.sentAgg {
			if st.record.Origin == out.Veto.Vetoer && st.inKey != NoKey {
				t.Fatalf("vetoer's own record carries an in-key: %+v", st)
			}
		}
	}
}
