package core

import (
	"testing"
	"testing/quick"

	"repro/internal/crypto"
	"repro/internal/keydist"
	"repro/internal/topology"
)

// TestPropertyHonestTreeLevelsEqualBFSDepth checks the tree-formation
// invariant on random topologies: with no adversary, every sensor's
// timestamp level equals its BFS depth from the base station, and all
// levels lie in [1, L].
func TestPropertyHonestTreeLevelsEqualBFSDepth(t *testing.T) {
	f := func(seed uint64) bool {
		rng := crypto.NewStreamFromSeed(seed)
		n := 15 + rng.Intn(40)
		g, _ := topology.RandomGeometric(n, 0.3, rng.Fork([]byte("topo")))
		dep, err := keydist.NewDeployment(n, keydist.Params{PoolSize: 400, RingSize: 120},
			crypto.KeyFromUint64(seed), rng.Fork([]byte("keys")))
		if err != nil {
			return false
		}
		e, err := NewEngine(Config{Graph: g, Deployment: dep, Seed: seed})
		if err != nil {
			return false
		}
		levels, err := e.TreeLevels()
		if err != nil {
			return false
		}
		depths := g.Depths(topology.BaseStation)
		for id := 1; id < n; id++ {
			if levels[id] != depths[id] {
				t.Logf("seed %d: node %d level %d != depth %d", seed, id, levels[id], depths[id])
				return false
			}
			if levels[id] < 1 || levels[id] > e.L() {
				t.Logf("seed %d: node %d level %d outside [1, %d]", seed, id, levels[id], e.L())
				return false
			}
		}
		return levels[0] == 0
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Fatal(err)
	}
}

// TestPropertyByzantineTreeLevelsBounded checks the paper's structural
// guarantee under arbitrary rushing adversaries: whatever malicious nodes
// do during tree formation, every honest non-partitioned sensor ends up
// with a level in [1, L] — wormholes can only shrink levels, never
// inflate them past L.
func TestPropertyByzantineTreeLevelsBounded(t *testing.T) {
	f := func(seed uint64) bool {
		rng := crypto.NewStreamFromSeed(seed)
		n := 20 + rng.Intn(30)
		g, _ := topology.RandomGeometric(n, 0.3, rng.Fork([]byte("topo")))
		dep, err := keydist.NewDeployment(n, keydist.Params{PoolSize: 400, RingSize: 120},
			crypto.KeyFromUint64(seed), rng.Fork([]byte("keys")))
		if err != nil {
			return false
		}
		malicious := map[topology.NodeID]bool{}
		for len(malicious) < 3 {
			cand := topology.NodeID(rng.Intn(n-1) + 1)
			malicious[cand] = true
			if !g.ConnectedExcluding(topology.BaseStation, malicious) {
				delete(malicious, cand)
			}
		}
		e, err := NewEngine(Config{
			Graph: g, Deployment: dep, Seed: seed,
			Malicious:        malicious,
			Adversary:        treeRusher{},
			AdversaryFavored: true,
		})
		if err != nil {
			return false
		}
		levels, err := e.TreeLevels()
		if err != nil {
			return false
		}
		for id := 1; id < n; id++ {
			nid := topology.NodeID(id)
			if malicious[nid] {
				continue
			}
			if levels[id] < 1 || levels[id] > e.L() {
				t.Logf("seed %d: honest node %d level %d outside [1, %d]", seed, id, levels[id], e.L())
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Fatal(err)
	}
}

// treeRusher floods tree messages to every neighbor and colluding peer on
// every slot of the tree phase — the most aggressive level-warping
// behavior available without breaking MACs.
type treeRusher struct{ HonestAdversary }

func (treeRusher) Step(phase Phase, a *AdvContext) {
	if phase != PhaseTree {
		a.ActHonestly()
		return
	}
	a.ActHonestly()
	for _, nb := range a.Neighbors() {
		if key, ok := a.EdgeKeyWith(nb); ok {
			a.SendSealed(nb, key, TreeFormMsg{})
		}
	}
}
