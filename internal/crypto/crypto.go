// Package crypto provides the symmetric-key primitives VMAT relies on:
// keys, truncated HMAC message authentication codes, a one-way hash, key
// derivation, and deterministic pseudo-random streams.
//
// The paper's system model (Section III) restricts sensors to symmetric-key
// cryptography. Every sensor shares a unique sensor key with the base
// station, and pairs of neighboring sensors authenticate each other with
// edge keys drawn from an Eschenauer-Gligor key pool (package keydist).
// MACs are modelled as 8-byte truncated HMAC-SHA256, matching the 8-byte
// MAC size the paper assumes in its communication-cost analysis
// (Section IX).
package crypto

import (
	"crypto/hmac"
	"crypto/sha256"
	"encoding/binary"
	"fmt"
)

// KeySize is the byte length of every symmetric key in the system.
const KeySize = 16

// MACSize is the byte length of a truncated MAC. The paper assumes 8-byte
// MACs when accounting for message sizes (Section IX).
const MACSize = 8

// HashSize is the byte length of the one-way hash H() used by the keyed
// predicate test to pre-publish H(MAC_K(N)).
const HashSize = 32

// Key is a symmetric key. Keys are comparable so they can be used as map
// keys when tracking key rings and revocation sets.
type Key [KeySize]byte

// MAC is a truncated message authentication code.
type MAC [MACSize]byte

// Hash is a SHA-256 digest, used as the one-way hash H() of the keyed
// predicate test protocol.
type Hash [HashSize]byte

// String renders a short hex prefix of the key for logs and debugging.
func (k Key) String() string { return fmt.Sprintf("key:%x", k[:4]) }

// String renders the MAC in hex.
func (m MAC) String() string { return fmt.Sprintf("mac:%x", m[:]) }

// blockSize is the SHA-256 block size, the padding width of HMAC.
const blockSize = 64

// stackLimit is the largest assembled message the MAC/hash fast paths
// keep on the stack. Protocol messages (records, vetoes, envelopes for
// MIN queries) fit comfortably; only multi-kilobyte synopsis aggregates
// take the streaming fallback.
const stackLimit = 512

// appendLenPrefixed appends each part to b preceded by its 64-bit length,
// the domain-separating encoding shared by ComputeMAC and HashOf.
func appendLenPrefixed(b []byte, parts [][]byte) []byte {
	var lenBuf [8]byte
	for _, p := range parts {
		binary.BigEndian.PutUint64(lenBuf[:], uint64(len(p)))
		b = append(b, lenBuf[:]...)
		b = append(b, p...)
	}
	return b
}

// hmacFinish computes HMAC-SHA256 over a message assembled in buf, whose
// first blockSize bytes are reserved for the inner padding (they are
// overwritten here). Building the padded block in the caller's buffer
// keeps the whole computation allocation-free: sha256.Sum256 is a plain
// function, so nothing escapes to the heap.
func hmacFinish(k Key, buf []byte) [sha256.Size]byte {
	for i := 0; i < blockSize; i++ {
		var kb byte
		if i < KeySize {
			kb = k[i]
		}
		buf[i] = kb ^ 0x36
	}
	inner := sha256.Sum256(buf)
	var outer [blockSize + sha256.Size]byte
	for i := 0; i < blockSize; i++ {
		var kb byte
		if i < KeySize {
			kb = k[i]
		}
		outer[i] = kb ^ 0x5c
	}
	copy(outer[blockSize:], inner[:])
	return sha256.Sum256(outer[:])
}

// ComputeMAC computes the truncated HMAC-SHA256 of the concatenation of
// parts under key k. Parts are length-prefixed before concatenation so
// that distinct part boundaries can never collide (MAC(a||b) differs from
// MAC(ab) when split differently).
func ComputeMAC(k Key, parts ...[]byte) MAC {
	total := 0
	for _, p := range parts {
		total += 8 + len(p)
	}
	var m MAC
	if total <= stackLimit {
		var buf [blockSize + stackLimit]byte
		b := appendLenPrefixed(buf[:blockSize], parts)
		sum := hmacFinish(k, b)
		copy(m[:], sum[:])
		return m
	}
	// The key is copied into a branch-local so the interface calls below
	// cannot force k (and with it the fast path) onto the heap.
	kc := k
	h := hmac.New(sha256.New, kc[:])
	var lenBuf [8]byte
	for _, p := range parts {
		binary.BigEndian.PutUint64(lenBuf[:], uint64(len(p)))
		h.Write(lenBuf[:])
		h.Write(p)
	}
	var sum [sha256.Size]byte
	copy(m[:], h.Sum(sum[:0]))
	return m
}

// VerifyMAC reports whether mac is the MAC of parts under key k, in
// constant time with respect to the MAC bytes.
func VerifyMAC(k Key, mac MAC, parts ...[]byte) bool {
	want := ComputeMAC(k, parts...)
	return hmac.Equal(want[:], mac[:])
}

// HashOf computes the publicly known one-way hash H() over the
// concatenation of parts, with the same length-prefixing as ComputeMAC.
func HashOf(parts ...[]byte) Hash {
	total := 0
	for _, p := range parts {
		total += 8 + len(p)
	}
	if total <= stackLimit {
		var buf [stackLimit]byte
		b := appendLenPrefixed(buf[:0], parts)
		return Hash(sha256.Sum256(b))
	}
	h := sha256.New()
	var lenBuf [8]byte
	for _, p := range parts {
		binary.BigEndian.PutUint64(lenBuf[:], uint64(len(p)))
		h.Write(lenBuf[:])
		h.Write(p)
	}
	var out Hash
	copy(out[:], h.Sum(out[:0]))
	return out
}

// HashMAC returns H(mac), the pre-image commitment the base station
// broadcasts in a keyed predicate test so that every sensor can recognize
// the unique valid "yes" reply without holding the key.
func HashMAC(mac MAC) Hash { return HashOf(mac[:]) }

// DeriveKey derives a subkey from a master key, a domain-separation label,
// and a numeric index. It is used to expand a key-pool seed into the pool's
// keys and a ring seed into ring membership, mirroring the paper's remark
// that a sensor's ring can be revoked wholesale by announcing "the
// associated random seed used for the selection" (Section VI-A).
func DeriveKey(master Key, label string, index uint64) Key {
	var k Key
	if len(label)+8 <= stackLimit {
		var buf [blockSize + stackLimit]byte
		b := append(buf[:blockSize], label...)
		var idx [8]byte
		binary.BigEndian.PutUint64(idx[:], index)
		b = append(b, idx[:]...)
		sum := hmacFinish(master, b)
		copy(k[:], sum[:])
		return k
	}
	mc := master
	h := hmac.New(sha256.New, mc[:])
	h.Write([]byte(label))
	var idx [8]byte
	binary.BigEndian.PutUint64(idx[:], index)
	h.Write(idx[:])
	var sum [sha256.Size]byte
	copy(k[:], h.Sum(sum[:0]))
	return k
}

// KeyFromUint64 builds a key whose first eight bytes encode v. It is a
// convenience for tests and deterministic fixtures.
func KeyFromUint64(v uint64) Key {
	var k Key
	binary.BigEndian.PutUint64(k[:8], v)
	return k
}

// Uint64 encodes v in big-endian order, a helper for building MAC inputs.
func Uint64(v uint64) []byte {
	var b [8]byte
	binary.BigEndian.PutUint64(b[:], v)
	return b[:]
}

// Int64 encodes v in big-endian two's-complement order.
func Int64(v int64) []byte { return Uint64(uint64(v)) }

// Float64 encodes the IEEE-754 bits of v in big-endian order, a helper for
// MACing sensor readings and synopses.
func Float64(v float64) []byte {
	var b [8]byte
	binary.BigEndian.PutUint64(b[:], floatBits(v))
	return b[:]
}
