package crypto

import (
	"crypto/hmac"
	"crypto/sha256"
	"encoding/binary"
	"testing"
	"testing/quick"
)

func TestComputeMACDeterministic(t *testing.T) {
	k := KeyFromUint64(42)
	m1 := ComputeMAC(k, []byte("hello"), []byte("world"))
	m2 := ComputeMAC(k, []byte("hello"), []byte("world"))
	if m1 != m2 {
		t.Fatalf("same inputs produced different MACs: %v vs %v", m1, m2)
	}
}

func TestComputeMACKeySeparation(t *testing.T) {
	m1 := ComputeMAC(KeyFromUint64(1), []byte("msg"))
	m2 := ComputeMAC(KeyFromUint64(2), []byte("msg"))
	if m1 == m2 {
		t.Fatal("different keys produced the same MAC")
	}
}

func TestComputeMACPartBoundaries(t *testing.T) {
	// MAC("ab", "c") must differ from MAC("a", "bc"): the length-prefixed
	// encoding makes part boundaries significant.
	k := KeyFromUint64(7)
	m1 := ComputeMAC(k, []byte("ab"), []byte("c"))
	m2 := ComputeMAC(k, []byte("a"), []byte("bc"))
	if m1 == m2 {
		t.Fatal("part boundary collision: MAC(ab|c) == MAC(a|bc)")
	}
}

func TestVerifyMAC(t *testing.T) {
	k := KeyFromUint64(9)
	mac := ComputeMAC(k, []byte("payload"))
	if !VerifyMAC(k, mac, []byte("payload")) {
		t.Fatal("valid MAC rejected")
	}
	if VerifyMAC(k, mac, []byte("tampered")) {
		t.Fatal("MAC accepted for tampered message")
	}
	if VerifyMAC(KeyFromUint64(10), mac, []byte("payload")) {
		t.Fatal("MAC accepted under wrong key")
	}
}

func TestVerifyMACPropertyRoundTrip(t *testing.T) {
	f := func(seed uint64, msg []byte) bool {
		k := KeyFromUint64(seed)
		return VerifyMAC(k, ComputeMAC(k, msg), msg)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestVerifyMACPropertyForgeryFails(t *testing.T) {
	f := func(seed uint64, msg, other []byte) bool {
		if string(msg) == string(other) {
			return true
		}
		k := KeyFromUint64(seed)
		return !VerifyMAC(k, ComputeMAC(k, msg), other)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestHashOfBoundaries(t *testing.T) {
	h1 := HashOf([]byte("ab"), []byte("c"))
	h2 := HashOf([]byte("a"), []byte("bc"))
	if h1 == h2 {
		t.Fatal("hash part boundary collision")
	}
}

func TestHashMACCommitment(t *testing.T) {
	k := KeyFromUint64(3)
	mac := ComputeMAC(k, []byte("nonce"))
	h := HashMAC(mac)
	// Anyone holding the commitment can recognize the true reply.
	if HashMAC(mac) != h {
		t.Fatal("commitment not reproducible")
	}
	// A different MAC does not match the commitment.
	other := ComputeMAC(k, []byte("other"))
	if HashMAC(other) == h {
		t.Fatal("distinct MACs mapped to same commitment")
	}
}

func TestDeriveKeyIndependence(t *testing.T) {
	master := KeyFromUint64(99)
	seen := make(map[Key]bool)
	for i := uint64(0); i < 100; i++ {
		k := DeriveKey(master, "pool", i)
		if seen[k] {
			t.Fatalf("duplicate derived key at index %d", i)
		}
		seen[k] = true
	}
	if DeriveKey(master, "pool", 0) == DeriveKey(master, "ring", 0) {
		t.Fatal("label does not separate derivation domains")
	}
}

func TestStreamDeterminism(t *testing.T) {
	a := NewStream([]byte("seed"))
	b := NewStream([]byte("seed"))
	for i := 0; i < 100; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatalf("streams diverged at step %d", i)
		}
	}
}

func TestStreamSeparation(t *testing.T) {
	a := NewStream([]byte("seed-a"))
	b := NewStream([]byte("seed-b"))
	same := 0
	for i := 0; i < 64; i++ {
		if a.Uint64() == b.Uint64() {
			same++
		}
	}
	if same > 0 {
		t.Fatalf("independent streams collided %d times in 64 draws", same)
	}
}

func TestStreamIntnBounds(t *testing.T) {
	s := NewStreamFromSeed(1)
	for i := 0; i < 10000; i++ {
		v := s.Intn(7)
		if v < 0 || v >= 7 {
			t.Fatalf("Intn(7) out of range: %d", v)
		}
	}
}

func TestStreamIntnPanicsOnNonPositive(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Intn(0) did not panic")
		}
	}()
	NewStreamFromSeed(1).Intn(0)
}

func TestStreamFloat64Range(t *testing.T) {
	s := NewStreamFromSeed(2)
	for i := 0; i < 10000; i++ {
		v := s.Float64()
		if v < 0 || v >= 1 {
			t.Fatalf("Float64 out of [0,1): %g", v)
		}
	}
}

func TestStreamExpFloat64MeanAndPositivity(t *testing.T) {
	s := NewStreamFromSeed(3)
	const n = 200000
	const mean = 2.5
	sum := 0.0
	for i := 0; i < n; i++ {
		v := s.ExpFloat64(mean)
		if v < 0 {
			t.Fatalf("negative exponential sample: %g", v)
		}
		sum += v
	}
	got := sum / n
	if got < mean*0.97 || got > mean*1.03 {
		t.Fatalf("empirical mean %g too far from %g", got, mean)
	}
}

func TestStreamPermIsPermutation(t *testing.T) {
	s := NewStreamFromSeed(4)
	p := s.Perm(50)
	seen := make([]bool, 50)
	for _, v := range p {
		if v < 0 || v >= 50 || seen[v] {
			t.Fatalf("invalid permutation: %v", p)
		}
		seen[v] = true
	}
}

func TestStreamForkDistinct(t *testing.T) {
	s := NewStreamFromSeed(5)
	a := s.Fork([]byte("x"))
	b := s.Fork([]byte("x"))
	if a.Uint64() == b.Uint64() && a.Uint64() == b.Uint64() {
		t.Fatal("successive forks with same label produced identical streams")
	}
}

func TestStreamForkLabelled(t *testing.T) {
	mk := func() *Stream { return NewStreamFromSeed(6) }
	a := mk().Fork([]byte("a"))
	b := mk().Fork([]byte("b"))
	if a.Uint64() == b.Uint64() {
		t.Fatal("forks with different labels produced identical first draw")
	}
	// Same parent state and same label must reproduce the same child.
	c := mk().Fork([]byte("a"))
	d := mk().Fork([]byte("a"))
	for i := 0; i < 10; i++ {
		if c.Uint64() != d.Uint64() {
			t.Fatal("fork not deterministic")
		}
	}
}

func TestShuffleIsPermutation(t *testing.T) {
	s := NewStreamFromSeed(7)
	vals := make([]int, 20)
	for i := range vals {
		vals[i] = i
	}
	s.Shuffle(len(vals), func(i, j int) { vals[i], vals[j] = vals[j], vals[i] })
	seen := make([]bool, 20)
	for _, v := range vals {
		if seen[v] {
			t.Fatalf("shuffle corrupted values: %v", vals)
		}
		seen[v] = true
	}
}

func TestEncodingHelpers(t *testing.T) {
	if len(Uint64(1)) != 8 || len(Int64(-1)) != 8 || len(Float64(1.5)) != 8 {
		t.Fatal("encoding helpers must produce 8-byte outputs")
	}
	if string(Uint64(1)) == string(Uint64(2)) {
		t.Fatal("Uint64 encodings collide")
	}
	if string(Float64(1.0)) == string(Float64(1.5)) {
		t.Fatal("Float64 encodings collide")
	}
}

// refMAC is the straightforward crypto/hmac implementation ComputeMAC's
// stack fast path must match bit for bit, across the stack/streaming
// boundary.
func refMAC(k Key, parts ...[]byte) MAC {
	h := hmac.New(sha256.New, k[:])
	var lenBuf [8]byte
	for _, p := range parts {
		binary.BigEndian.PutUint64(lenBuf[:], uint64(len(p)))
		h.Write(lenBuf[:])
		h.Write(p)
	}
	var m MAC
	copy(m[:], h.Sum(nil))
	return m
}

func TestComputeMACMatchesHMACReference(t *testing.T) {
	k := KeyFromUint64(42)
	sizes := []int{0, 1, 8, 63, 64, 65, 200, stackLimit - 8, stackLimit - 7, 1000, 4096}
	for _, size := range sizes {
		msg := make([]byte, size)
		for i := range msg {
			msg[i] = byte(i * 7)
		}
		if got, want := ComputeMAC(k, msg), refMAC(k, msg); got != want {
			t.Fatalf("size %d: ComputeMAC %v != reference %v", size, got, want)
		}
		if got, want := ComputeMAC(k, msg, msg), refMAC(k, msg, msg); got != want {
			t.Fatalf("size %d (two parts): ComputeMAC %v != reference %v", size, got, want)
		}
	}
	if got, want := ComputeMAC(k), refMAC(k); got != want {
		t.Fatalf("no parts: ComputeMAC %v != reference %v", got, want)
	}
}

func TestHashOfMatchesStreamingReference(t *testing.T) {
	for _, size := range []int{0, 13, stackLimit - 8, stackLimit, 2048} {
		msg := make([]byte, size)
		for i := range msg {
			msg[i] = byte(i)
		}
		h := sha256.New()
		var lenBuf [8]byte
		binary.BigEndian.PutUint64(lenBuf[:], uint64(len(msg)))
		h.Write(lenBuf[:])
		h.Write(msg)
		var want Hash
		copy(want[:], h.Sum(nil))
		if got := HashOf(msg); got != want {
			t.Fatalf("size %d: HashOf %v != reference %v", size, got, want)
		}
	}
}

func TestDeriveKeyMatchesHMACReference(t *testing.T) {
	master := KeyFromUint64(9)
	for _, label := range []string{"", "pool-key", "a-much-longer-derivation-label-for-boundary-checks"} {
		for _, idx := range []uint64{0, 1, 1 << 40} {
			h := hmac.New(sha256.New, master[:])
			h.Write([]byte(label))
			var ib [8]byte
			binary.BigEndian.PutUint64(ib[:], idx)
			h.Write(ib[:])
			var want Key
			copy(want[:], h.Sum(nil))
			if got := DeriveKey(master, label, idx); got != want {
				t.Fatalf("label %q idx %d: DeriveKey %v != reference %v", label, idx, got, want)
			}
		}
	}
}

func TestHotPrimitivesAllocationFree(t *testing.T) {
	k := KeyFromUint64(3)
	msg := make([]byte, 64)
	if n := testing.AllocsPerRun(200, func() { ComputeMAC(k, msg) }); n != 0 {
		t.Fatalf("ComputeMAC fast path allocates %.1f times per op", n)
	}
	if n := testing.AllocsPerRun(200, func() { HashOf(msg) }); n != 0 {
		t.Fatalf("HashOf fast path allocates %.1f times per op", n)
	}
	if n := testing.AllocsPerRun(200, func() { DeriveKey(k, "pool-key", 5) }); n != 0 {
		t.Fatalf("DeriveKey allocates %.1f times per op", n)
	}
}
