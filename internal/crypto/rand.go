package crypto

import (
	"encoding/binary"
	"math"
)

// Stream is a small, fast, deterministic pseudo-random stream
// (SplitMix64). VMAT uses deterministic streams in two places:
//
//   - synopsis generation, where the PRG must be seeded by nonce||sensor-ID
//     so the base station can re-derive and verify any reported synopsis
//     (Section VIII), and
//   - reproducible simulation (topology generation, key-ring sampling,
//     adversary coin flips), so every experiment in the paper's Section IX
//     can be regenerated bit-for-bit from a seed.
//
// SplitMix64 passes BigCrush and is a standard choice for seedable
// simulation streams; it is implemented here because the repository is
// restricted to the standard library and math/rand's global functions are
// neither injectable nor stable across releases.
type Stream struct {
	state uint64
}

// NewStream seeds a stream from the one-way hash of the given parts, so
// any mixture of nonces, IDs and labels yields an independent stream.
func NewStream(parts ...[]byte) *Stream {
	h := HashOf(parts...)
	return &Stream{state: binary.BigEndian.Uint64(h[:8])}
}

// NewStreamFromSeed seeds a stream directly from a 64-bit seed.
func NewStreamFromSeed(seed uint64) *Stream {
	return &Stream{state: seed}
}

// Uint64 returns the next 64 pseudo-random bits.
func (s *Stream) Uint64() uint64 {
	s.state += 0x9e3779b97f4a7c15
	z := s.state
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// FirstUint64 returns the first value a stream seeded with seed would
// draw, without constructing a Stream. Hot one-draw derivations (the
// synopsis generator makes one per hash) use it to stay allocation-free.
func FirstUint64(seed uint64) uint64 {
	s := Stream{state: seed}
	return s.Uint64()
}

// Intn returns a pseudo-random int in [0, n). It panics if n <= 0.
func (s *Stream) Intn(n int) int {
	if n <= 0 {
		panic("crypto: Intn with non-positive n")
	}
	// Rejection sampling to avoid modulo bias.
	bound := uint64(n)
	limit := math.MaxUint64 - math.MaxUint64%bound
	for {
		v := s.Uint64()
		if v < limit {
			return int(v % bound)
		}
	}
}

// Float64 returns a pseudo-random float64 in [0, 1).
func (s *Stream) Float64() float64 {
	return float64(s.Uint64()>>11) / (1 << 53)
}

// ExpFloat64 returns an exponentially distributed float64 with the given
// mean, via inverse-transform sampling. The synopsis scheme of Section VIII
// draws synopses from Exp(mean 1/v) for a sensor reading v.
func (s *Stream) ExpFloat64(mean float64) float64 {
	// Guard against ln(0): Float64 returns values in [0,1), so 1-u is in
	// (0,1].
	u := s.Float64()
	return -math.Log(1-u) * mean
}

// Perm returns a pseudo-random permutation of [0, n).
func (s *Stream) Perm(n int) []int {
	p := make([]int, n)
	for i := range p {
		j := s.Intn(i + 1)
		p[i] = p[j]
		p[j] = i
	}
	return p
}

// Shuffle pseudo-randomly permutes n elements using the provided swap
// function, matching the contract of math/rand's Shuffle.
func (s *Stream) Shuffle(n int, swap func(i, j int)) {
	for i := n - 1; i > 0; i-- {
		j := s.Intn(i + 1)
		swap(i, j)
	}
}

// Fork derives an independent child stream labelled by the given parts.
// It advances the parent stream by one step, so successive forks with the
// same label still yield distinct children. Experiments use forks to give
// each trial and each sensor its own stream without cross-contamination.
func (s *Stream) Fork(parts ...[]byte) *Stream {
	seed := s.Uint64()
	all := make([][]byte, 0, len(parts)+1)
	all = append(all, Uint64(seed))
	all = append(all, parts...)
	return NewStream(all...)
}

func floatBits(v float64) uint64 { return math.Float64bits(v) }
