package crypto

import (
	"crypto/sha256"
	"encoding/binary"
	"fmt"
)

// SeedMinMsg and SeedMaxMsg bound the messages SeedHash2Block accepts:
// FIPS 180-4 padding (0x80 terminator, zero fill, 8-byte bit length)
// lands a message in exactly two SHA-256 blocks iff its length is in
// [56, 119] — shorter messages pad into a single block, which the
// two-block kernel cannot produce.
const (
	SeedMinMsg = 56
	SeedMaxMsg = 119
)

// Pad2Block writes msg into buf with FIPS 180-4 padding so that the
// whole buffer is exactly two SHA-256 blocks: the 0x80 terminator, a
// zero fill, and the 64-bit message bit length. Callers that hash many
// near-identical messages pad once and then overwrite only the message
// bytes that change between calls — the padding tail stays valid as long
// as the length does. It panics unless len(msg) is within
// [SeedMinMsg, SeedMaxMsg].
func Pad2Block(buf *[128]byte, msg []byte) {
	if len(msg) < SeedMinMsg || len(msg) > SeedMaxMsg {
		panic(fmt.Sprintf("crypto: Pad2Block message of %d bytes is outside [%d, %d]",
			len(msg), SeedMinMsg, SeedMaxMsg))
	}
	n := copy(buf[:], msg)
	buf[n] = 0x80
	for i := n + 1; i < 120; i++ {
		buf[i] = 0
	}
	binary.BigEndian.PutUint64(buf[120:], uint64(n)*8)
}

// SeedHash2Block returns the big-endian first eight digest bytes of
// SHA-256 over the msgLen-byte message padded into buf (see Pad2Block) —
// the value NewStream uses as a stream seed. On CPUs with the SHA
// extensions this runs a two-block kernel that skips the generic digest
// plumbing; elsewhere it computes the same value via crypto/sha256.
// Synopsis generation (internal/synopsis) is the hot caller: one seed
// hash per (sensor, instance) pair, millions per experiment.
func SeedHash2Block(buf *[128]byte, msgLen int) uint64 {
	if haveSeedKernel {
		return sha256seed2(buf)
	}
	d := sha256.Sum256(buf[:msgLen])
	return binary.BigEndian.Uint64(d[:8])
}
