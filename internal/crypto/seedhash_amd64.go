//go:build amd64 && !purego

package crypto

// sha256seed2 is the SHA-NI kernel in seedhash_amd64.s: SHA-256 over a
// pre-padded two-block buffer, returning BE64(digest[0:8]).
//
//go:noescape
func sha256seed2(p *[128]byte) uint64

func cpuid(leaf, sub uint32) (eax, ebx, ecx, edx uint32)

// haveSeedKernel reports whether the CPU has the SHA extensions (plus
// the SSSE3/SSE4.1 the kernel's shuffles need). Checked once at init;
// without it SeedHash2Block falls back to crypto/sha256, which computes
// the identical value.
var haveSeedKernel = detectSeedKernel()

func detectSeedKernel() bool {
	maxLeaf, _, _, _ := cpuid(0, 0)
	if maxLeaf < 7 {
		return false
	}
	_, _, c1, _ := cpuid(1, 0)
	const ssse3Bit, sse41Bit = 1 << 9, 1 << 19
	if c1&ssse3Bit == 0 || c1&sse41Bit == 0 {
		return false
	}
	_, b7, _, _ := cpuid(7, 0)
	const shaBit = 1 << 29
	return b7&shaBit != 0
}
