// SHA-NI kernel for the synopsis seed-hash fast path: SHA-256 over a
// message pre-padded into exactly two 64-byte blocks, returning only the
// first two state words (the stream seed). The round flow is the
// canonical Intel SHA extensions sequence (the same flow crypto/sha256
// uses), specialized here: the initial state is a packed constant, the
// two-block trip count is hardwired, and no digest is materialized —
// the seed comes straight out of the ABEF state register.
//
// Register roles: X1/X2 current state (ABEF/CDGH), X9/X10 state saved
// for the final Davies-Meyer add, X0 round constant+message word, X3-X6
// the rolling 16-word message schedule, X7 schedule temp, X8 the
// big-endian load shuffle mask.

#include "textflag.h"

// func sha256seed2(p *[128]byte) uint64
// Requires: SHA, SSE2, SSSE3, SSE4.1
TEXT ·sha256seed2(SB), NOSPLIT, $0-16
	MOVQ  p+0(FP), SI
	LEAQ  k256seed<>+0(SB), AX
	MOVOU seedIV0<>+0(SB), X1
	MOVOU seedIV1<>+0(SB), X2
	MOVOU seedFlip<>+0(SB), X8
	LEAQ  128(SI), DX

blockLoop:
	// save hash values for addition after rounds
	MOVOU X1, X9
	MOVOU X2, X10

	// do rounds 0-59
	MOVOU     (SI), X0
	PSHUFB      X8, X0
	MOVOU     X0, X3
	PADDD       (AX), X0
	SHA256RNDS2 X0, X1, X2
	PSHUFD      $0x0e, X0, X0
	SHA256RNDS2 X0, X2, X1
	MOVOU     16(SI), X0
	PSHUFB      X8, X0
	MOVOU     X0, X4
	PADDD       16(AX), X0
	SHA256RNDS2 X0, X1, X2
	PSHUFD      $0x0e, X0, X0
	SHA256RNDS2 X0, X2, X1
	SHA256MSG1  X4, X3
	MOVOU     32(SI), X0
	PSHUFB      X8, X0
	MOVOU     X0, X5
	PADDD       32(AX), X0
	SHA256RNDS2 X0, X1, X2
	PSHUFD      $0x0e, X0, X0
	SHA256RNDS2 X0, X2, X1
	SHA256MSG1  X5, X4
	MOVOU     48(SI), X0
	PSHUFB      X8, X0
	MOVOU     X0, X6
	PADDD       48(AX), X0
	SHA256RNDS2 X0, X1, X2
	MOVOU     X6, X7
	PALIGNR     $0x04, X5, X7
	PADDD       X7, X3
	SHA256MSG2  X6, X3
	PSHUFD      $0x0e, X0, X0
	SHA256RNDS2 X0, X2, X1
	SHA256MSG1  X6, X5
	MOVOU     X3, X0
	PADDD       64(AX), X0
	SHA256RNDS2 X0, X1, X2
	MOVOU     X3, X7
	PALIGNR     $0x04, X6, X7
	PADDD       X7, X4
	SHA256MSG2  X3, X4
	PSHUFD      $0x0e, X0, X0
	SHA256RNDS2 X0, X2, X1
	SHA256MSG1  X3, X6
	MOVOU     X4, X0
	PADDD       80(AX), X0
	SHA256RNDS2 X0, X1, X2
	MOVOU     X4, X7
	PALIGNR     $0x04, X3, X7
	PADDD       X7, X5
	SHA256MSG2  X4, X5
	PSHUFD      $0x0e, X0, X0
	SHA256RNDS2 X0, X2, X1
	SHA256MSG1  X4, X3
	MOVOU     X5, X0
	PADDD       96(AX), X0
	SHA256RNDS2 X0, X1, X2
	MOVOU     X5, X7
	PALIGNR     $0x04, X4, X7
	PADDD       X7, X6
	SHA256MSG2  X5, X6
	PSHUFD      $0x0e, X0, X0
	SHA256RNDS2 X0, X2, X1
	SHA256MSG1  X5, X4
	MOVOU     X6, X0
	PADDD       112(AX), X0
	SHA256RNDS2 X0, X1, X2
	MOVOU     X6, X7
	PALIGNR     $0x04, X5, X7
	PADDD       X7, X3
	SHA256MSG2  X6, X3
	PSHUFD      $0x0e, X0, X0
	SHA256RNDS2 X0, X2, X1
	SHA256MSG1  X6, X5
	MOVOU     X3, X0
	PADDD       128(AX), X0
	SHA256RNDS2 X0, X1, X2
	MOVOU     X3, X7
	PALIGNR     $0x04, X6, X7
	PADDD       X7, X4
	SHA256MSG2  X3, X4
	PSHUFD      $0x0e, X0, X0
	SHA256RNDS2 X0, X2, X1
	SHA256MSG1  X3, X6
	MOVOU     X4, X0
	PADDD       144(AX), X0
	SHA256RNDS2 X0, X1, X2
	MOVOU     X4, X7
	PALIGNR     $0x04, X3, X7
	PADDD       X7, X5
	SHA256MSG2  X4, X5
	PSHUFD      $0x0e, X0, X0
	SHA256RNDS2 X0, X2, X1
	SHA256MSG1  X4, X3
	MOVOU     X5, X0
	PADDD       160(AX), X0
	SHA256RNDS2 X0, X1, X2
	MOVOU     X5, X7
	PALIGNR     $0x04, X4, X7
	PADDD       X7, X6
	SHA256MSG2  X5, X6
	PSHUFD      $0x0e, X0, X0
	SHA256RNDS2 X0, X2, X1
	SHA256MSG1  X5, X4
	MOVOU     X6, X0
	PADDD       176(AX), X0
	SHA256RNDS2 X0, X1, X2
	MOVOU     X6, X7
	PALIGNR     $0x04, X5, X7
	PADDD       X7, X3
	SHA256MSG2  X6, X3
	PSHUFD      $0x0e, X0, X0
	SHA256RNDS2 X0, X2, X1
	SHA256MSG1  X6, X5
	MOVOU     X3, X0
	PADDD       192(AX), X0
	SHA256RNDS2 X0, X1, X2
	MOVOU     X3, X7
	PALIGNR     $0x04, X6, X7
	PADDD       X7, X4
	SHA256MSG2  X3, X4
	PSHUFD      $0x0e, X0, X0
	SHA256RNDS2 X0, X2, X1
	SHA256MSG1  X3, X6
	MOVOU     X4, X0
	PADDD       208(AX), X0
	SHA256RNDS2 X0, X1, X2
	MOVOU     X4, X7
	PALIGNR     $0x04, X3, X7
	PADDD       X7, X5
	SHA256MSG2  X4, X5
	PSHUFD      $0x0e, X0, X0
	SHA256RNDS2 X0, X2, X1
	MOVOU     X5, X0
	PADDD       224(AX), X0
	SHA256RNDS2 X0, X1, X2
	MOVOU     X5, X7
	PALIGNR     $0x04, X4, X7
	PADDD       X7, X6
	SHA256MSG2  X5, X6
	PSHUFD      $0x0e, X0, X0
	SHA256RNDS2 X0, X2, X1

	// do rounds 60-63
	MOVOU     X6, X0
	PADDD       240(AX), X0
	SHA256RNDS2 X0, X1, X2
	PSHUFD      $0x0e, X0, X0
	SHA256RNDS2 X0, X2, X1

	// add current hash values with previously saved
	PADDD X9, X1
	PADDD X10, X2

	// advance to the second (final) block
	ADDQ $0x40, SI
	CMPQ DX, SI
	JNE  blockLoop

	// seed = a<<32 | b: the high qword of the ABEF register read as a
	// little-endian uint64 is exactly BE64(digest[0:8]).
	PEXTRQ $1, X1, AX
	MOVQ   AX, ret+8(FP)
	RET

// func cpuid(leaf, sub uint32) (eax, ebx, ecx, edx uint32)
TEXT ·cpuid(SB), NOSPLIT, $0-24
	MOVL leaf+0(FP), AX
	MOVL sub+4(FP), CX
	CPUID
	MOVL AX, eax+8(FP)
	MOVL BX, ebx+12(FP)
	MOVL CX, ecx+16(FP)
	MOVL DX, edx+20(FP)
	RET

// SHA-256 initial state packed for SHA256RNDS2: seedIV0 = ABEF (dwords
// f,e,b,a low to high), seedIV1 = CDGH (dwords h,g,d,c).
DATA seedIV0<>+0(SB)/8, $0x510e527f9b05688c
DATA seedIV0<>+8(SB)/8, $0x6a09e667bb67ae85
GLOBL seedIV0<>(SB), RODATA|NOPTR, $16

DATA seedIV1<>+0(SB)/8, $0x1f83d9ab5be0cd19
DATA seedIV1<>+8(SB)/8, $0x3c6ef372a54ff53a
GLOBL seedIV1<>(SB), RODATA|NOPTR, $16

// Per-dword byte reversal: big-endian message words from little-endian
// loads.
DATA seedFlip<>+0(SB)/8, $0x0405060700010203
DATA seedFlip<>+8(SB)/8, $0x0c0d0e0f08090a0b
GLOBL seedFlip<>(SB), RODATA|NOPTR, $16

// The 64 SHA-256 round constants (FIPS 180-4).
DATA k256seed<>+0(SB)/4, $0x428a2f98
DATA k256seed<>+4(SB)/4, $0x71374491
DATA k256seed<>+8(SB)/4, $0xb5c0fbcf
DATA k256seed<>+12(SB)/4, $0xe9b5dba5
DATA k256seed<>+16(SB)/4, $0x3956c25b
DATA k256seed<>+20(SB)/4, $0x59f111f1
DATA k256seed<>+24(SB)/4, $0x923f82a4
DATA k256seed<>+28(SB)/4, $0xab1c5ed5
DATA k256seed<>+32(SB)/4, $0xd807aa98
DATA k256seed<>+36(SB)/4, $0x12835b01
DATA k256seed<>+40(SB)/4, $0x243185be
DATA k256seed<>+44(SB)/4, $0x550c7dc3
DATA k256seed<>+48(SB)/4, $0x72be5d74
DATA k256seed<>+52(SB)/4, $0x80deb1fe
DATA k256seed<>+56(SB)/4, $0x9bdc06a7
DATA k256seed<>+60(SB)/4, $0xc19bf174
DATA k256seed<>+64(SB)/4, $0xe49b69c1
DATA k256seed<>+68(SB)/4, $0xefbe4786
DATA k256seed<>+72(SB)/4, $0x0fc19dc6
DATA k256seed<>+76(SB)/4, $0x240ca1cc
DATA k256seed<>+80(SB)/4, $0x2de92c6f
DATA k256seed<>+84(SB)/4, $0x4a7484aa
DATA k256seed<>+88(SB)/4, $0x5cb0a9dc
DATA k256seed<>+92(SB)/4, $0x76f988da
DATA k256seed<>+96(SB)/4, $0x983e5152
DATA k256seed<>+100(SB)/4, $0xa831c66d
DATA k256seed<>+104(SB)/4, $0xb00327c8
DATA k256seed<>+108(SB)/4, $0xbf597fc7
DATA k256seed<>+112(SB)/4, $0xc6e00bf3
DATA k256seed<>+116(SB)/4, $0xd5a79147
DATA k256seed<>+120(SB)/4, $0x06ca6351
DATA k256seed<>+124(SB)/4, $0x14292967
DATA k256seed<>+128(SB)/4, $0x27b70a85
DATA k256seed<>+132(SB)/4, $0x2e1b2138
DATA k256seed<>+136(SB)/4, $0x4d2c6dfc
DATA k256seed<>+140(SB)/4, $0x53380d13
DATA k256seed<>+144(SB)/4, $0x650a7354
DATA k256seed<>+148(SB)/4, $0x766a0abb
DATA k256seed<>+152(SB)/4, $0x81c2c92e
DATA k256seed<>+156(SB)/4, $0x92722c85
DATA k256seed<>+160(SB)/4, $0xa2bfe8a1
DATA k256seed<>+164(SB)/4, $0xa81a664b
DATA k256seed<>+168(SB)/4, $0xc24b8b70
DATA k256seed<>+172(SB)/4, $0xc76c51a3
DATA k256seed<>+176(SB)/4, $0xd192e819
DATA k256seed<>+180(SB)/4, $0xd6990624
DATA k256seed<>+184(SB)/4, $0xf40e3585
DATA k256seed<>+188(SB)/4, $0x106aa070
DATA k256seed<>+192(SB)/4, $0x19a4c116
DATA k256seed<>+196(SB)/4, $0x1e376c08
DATA k256seed<>+200(SB)/4, $0x2748774c
DATA k256seed<>+204(SB)/4, $0x34b0bcb5
DATA k256seed<>+208(SB)/4, $0x391c0cb3
DATA k256seed<>+212(SB)/4, $0x4ed8aa4a
DATA k256seed<>+216(SB)/4, $0x5b9cca4f
DATA k256seed<>+220(SB)/4, $0x682e6ff3
DATA k256seed<>+224(SB)/4, $0x748f82ee
DATA k256seed<>+228(SB)/4, $0x78a5636f
DATA k256seed<>+232(SB)/4, $0x84c87814
DATA k256seed<>+236(SB)/4, $0x8cc70208
DATA k256seed<>+240(SB)/4, $0x90befffa
DATA k256seed<>+244(SB)/4, $0xa4506ceb
DATA k256seed<>+248(SB)/4, $0xbef9a3f7
DATA k256seed<>+252(SB)/4, $0xc67178f2
GLOBL k256seed<>(SB), RODATA|NOPTR, $256
