//go:build !amd64 || purego

package crypto

const haveSeedKernel = false

func sha256seed2(p *[128]byte) uint64 {
	panic("crypto: sha256seed2 kernel unavailable on this platform")
}
