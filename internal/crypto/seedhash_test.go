package crypto

import (
	"crypto/sha256"
	"encoding/binary"
	"testing"
)

// TestSeedHash2BlockMatchesSHA256 checks the seed fast path against
// crypto/sha256 for every admissible message length, including both
// boundaries. On CPUs with the SHA extensions this exercises the
// assembly kernel; elsewhere it degenerates to checking the fallback
// against itself, which still pins the padding layout.
func TestSeedHash2BlockMatchesSHA256(t *testing.T) {
	rng := NewStreamFromSeed(99)
	for msgLen := SeedMinMsg; msgLen <= SeedMaxMsg; msgLen++ {
		msg := make([]byte, msgLen)
		for i := range msg {
			msg[i] = byte(rng.Uint64())
		}
		var buf [128]byte
		Pad2Block(&buf, msg)
		got := SeedHash2Block(&buf, msgLen)
		d := sha256.Sum256(msg)
		want := binary.BigEndian.Uint64(d[:8])
		if got != want {
			t.Fatalf("len %d: SeedHash2Block = %#x, sha256 = %#x", msgLen, got, want)
		}
	}
}

// TestSeedHash2BlockKernelVsFallback forces both paths on the same
// buffer when the kernel is available, so a kernel regression cannot
// hide behind the fallback being used in CI.
func TestSeedHash2BlockKernelVsFallback(t *testing.T) {
	if !haveSeedKernel {
		t.Skip("no SHA extensions on this CPU")
	}
	rng := NewStreamFromSeed(7)
	for trial := 0; trial < 200; trial++ {
		msgLen := SeedMinMsg + int(rng.Uint64()%(SeedMaxMsg-SeedMinMsg+1))
		msg := make([]byte, msgLen)
		for i := range msg {
			msg[i] = byte(rng.Uint64())
		}
		var buf [128]byte
		Pad2Block(&buf, msg)
		d := sha256.Sum256(msg)
		if got, want := sha256seed2(&buf), binary.BigEndian.Uint64(d[:8]); got != want {
			t.Fatalf("trial %d len %d: kernel = %#x, sha256 = %#x", trial, msgLen, got, want)
		}
	}
}

func TestPad2BlockRepadding(t *testing.T) {
	// Patching message bytes in place after one Pad2Block must be
	// equivalent to re-padding from scratch — the contract the synopsis
	// generator relies on.
	var a, b [128]byte
	msg := make([]byte, 80)
	Pad2Block(&a, msg)
	for i := 56; i < 64; i++ {
		msg[i] = 0xab
		a[i] = 0xab
	}
	Pad2Block(&b, msg)
	if a != b {
		t.Fatal("patched buffer differs from freshly padded buffer")
	}
	if SeedHash2Block(&a, 80) != SeedHash2Block(&b, 80) {
		t.Fatal("patched and re-padded buffers hash differently")
	}
}

func BenchmarkSeedHash2Block(b *testing.B) {
	var buf [128]byte
	Pad2Block(&buf, make([]byte, 80))
	var sink uint64
	for i := 0; i < b.N; i++ {
		sink += SeedHash2Block(&buf, 80)
	}
	_ = sink
}
