package experiments

import (
	"repro/internal/adversary"
	"repro/internal/baseline"
	"repro/internal/core"
	"repro/internal/crypto"
	"repro/internal/keydist"
	"repro/internal/topology"
)

// AvailabilityConfig parameterizes the paper's motivating comparison
// (Section I): under a persistent attacker, a detection-only secure
// aggregation protocol (SHIA [3] / SECOA [19] style) raises an alarm on
// every execution forever — "the entire sensor network is effectively
// brought down by just a single malicious sensor" — while VMAT's
// revocation strictly diminishes the adversary until queries answer
// again.
type AvailabilityConfig struct {
	// N is the network size.
	N int
	// Executions is the campaign length per trial.
	Executions int
	// Trials with fresh placements.
	Trials int
	// Theta is VMAT's whole-sensor revocation threshold.
	Theta int
	Seed  uint64
	// Workers caps trial parallelism; 0 uses GOMAXPROCS. Results are
	// identical for every worker count.
	Workers int
}

// DefaultAvailability returns the default configuration.
func DefaultAvailability() AvailabilityConfig {
	return AvailabilityConfig{N: 60, Executions: 40, Trials: 5, Theta: 7, Seed: 2011}
}

// AvailabilityRow aggregates one protocol mode.
type AvailabilityRow struct {
	Mode string
	// AnsweredFraction is answered executions / total executions.
	AnsweredFraction float64
	// AvgFirstAnswer is the average index (1-based) of the first
	// execution that produced a result; 0 when none ever did.
	AvgFirstAnswer float64
	// AvgCorrupted is the average number of corrupted executions per
	// campaign.
	AvgCorrupted float64
}

// RunAvailability executes the comparison: the same persistent dropping
// attacker against VMAT-with-revocation, against the same machinery with
// pinpointing disabled (alarm-only), and against the SHIA commitment-tree
// baseline (a real detection-only protocol).
func RunAvailability(cfg AvailabilityConfig) ([]AvailabilityRow, error) {
	modes := []struct {
		name      string
		alarmOnly bool
		shia      bool
	}{
		{"vmat-revocation", false, false},
		{"alarm-only", true, false},
		{"shia-detect", false, true},
	}
	rows := make([]AvailabilityRow, 0, len(modes))
	for _, mode := range modes {
		if mode.shia {
			row, err := runSHIAAvailability(cfg)
			if err != nil {
				return nil, err
			}
			rows = append(rows, row)
			continue
		}
		trials, err := RunTrials(subSeed(cfg.Seed, "availability-"+mode.name, 0),
			cfg.Trials, cfg.Workers,
			func(trial int, rng *crypto.Stream) (availTrial, error) {
				return runAvailabilityTrial(cfg, mode.alarmOnly, trial, rng)
			})
		if err != nil {
			return nil, err
		}
		var answered, firstSum, corrupted float64
		firstCount := 0
		for _, tr := range trials {
			answered += tr.answered
			corrupted += tr.corrupted
			if tr.first > 0 {
				firstSum += float64(tr.first)
				firstCount++
			}
		}
		total := float64(cfg.Trials * cfg.Executions)
		row := AvailabilityRow{
			Mode:             mode.name,
			AnsweredFraction: answered / total,
			AvgCorrupted:     corrupted / float64(cfg.Trials),
		}
		if firstCount > 0 {
			row.AvgFirstAnswer = firstSum / float64(firstCount)
		}
		rows = append(rows, row)
	}
	return rows, nil
}

// availTrial is one campaign's contribution to an availability row.
type availTrial struct {
	answered  float64
	corrupted float64
	first     int
}

// runAvailabilityTrial runs one persistent-attacker campaign against the
// VMAT machinery (with or without pinpointing).
func runAvailabilityTrial(cfg AvailabilityConfig, alarmOnly bool, trial int, rng *crypto.Stream) (availTrial, error) {
	var tr availTrial
	env, err := newProtoEnv(cfg.N, denseProtoParams, cfg.Seed+uint64(trial*131+7))
	if err != nil {
		return tr, err
	}
	attacker, minHolder, ok := placeCampaignAttack(env.graph, rng)
	if !ok {
		return tr, nil
	}
	registry := keydist.NewRegistry(env.dep, cfg.Theta)
	strat := adversary.NewDropper(50)
	for exec := 1; exec <= cfg.Executions; exec++ {
		base := env.baseConfig(minHolder, 1)
		base.Malicious = map[topology.NodeID]bool{attacker: true}
		base.Adversary = strat
		base.Registry = registry
		base.AlarmOnly = alarmOnly
		base.AdversaryFavored = true
		base.Seed = env.seed + uint64(exec)
		eng, err := core.NewEngine(base)
		if err != nil {
			return tr, err
		}
		out, err := eng.Run()
		if err != nil {
			return tr, err
		}
		if out.Kind == core.OutcomeResult {
			tr.answered++
			if tr.first == 0 {
				tr.first = exec
			}
		} else {
			tr.corrupted++
		}
	}
	return tr, nil
}

// runSHIAAvailability runs the persistent attacker against the SHIA
// baseline: the attacker drops its subtree in every execution; SHIA
// detects each time (alarm) but never identifies or revokes, so
// availability never recovers.
func runSHIAAvailability(cfg AvailabilityConfig) (AvailabilityRow, error) {
	trials, err := RunTrials(subSeed(cfg.Seed, "availability-shia", 0),
		cfg.Trials, cfg.Workers,
		func(trial int, _ *crypto.Stream) (availTrial, error) {
			var tr availTrial
			env, err := newProtoEnv(cfg.N, denseProtoParams, cfg.Seed+uint64(trial*131+7))
			if err != nil {
				return tr, err
			}
			attacker, ok := shiaAttackerWithChildren(env.graph)
			if !ok {
				return tr, nil
			}
			for exec := 1; exec <= cfg.Executions; exec++ {
				s := &baseline.SHIA{
					Graph:      env.graph,
					Deployment: env.dep,
					Readings:   func(id topology.NodeID) int64 { return int64(id) },
					Malicious:  map[topology.NodeID]bool{attacker: true},
					Tamper:     baseline.SHIADropSubtree,
					Seed:       env.seed + uint64(exec),
				}
				res := s.Run()
				if !res.Alarm {
					tr.answered++
					if tr.first == 0 {
						tr.first = exec
					}
				} else {
					tr.corrupted++
				}
			}
			return tr, nil
		})
	if err != nil {
		return AvailabilityRow{}, err
	}
	var answered, firstSum, corrupted float64
	firstCount := 0
	for _, tr := range trials {
		answered += tr.answered
		corrupted += tr.corrupted
		if tr.first > 0 {
			firstSum += float64(tr.first)
			firstCount++
		}
	}
	total := float64(cfg.Trials * cfg.Executions)
	row := AvailabilityRow{
		Mode:             "shia-detect",
		AnsweredFraction: answered / total,
		AvgCorrupted:     corrupted / float64(cfg.Trials),
	}
	if firstCount > 0 {
		row.AvgFirstAnswer = firstSum / float64(firstCount)
	}
	return row, nil
}

// shiaAttackerWithChildren picks a sensor with at least one child in the
// baseline's BFS tree, so the subtree drop always bites.
func shiaAttackerWithChildren(g *topology.Graph) (topology.NodeID, bool) {
	_, children := baseline.BFSTree(g)
	for id := 1; id < g.NumNodes(); id++ {
		if len(children[id]) > 0 {
			return topology.NodeID(id), true
		}
	}
	return 0, false
}

// AvailabilityTable renders the comparison.
func AvailabilityTable(rows []AvailabilityRow) *Table {
	t := &Table{
		Title:   "Section I: availability under a persistent attacker, revocation vs alarm-only",
		Columns: []string{"mode", "answered_fraction", "avg_first_answer", "avg_corrupted"},
	}
	for _, r := range rows {
		t.Rows = append(t.Rows, []string{r.Mode, f2(r.AnsweredFraction), f2(r.AvgFirstAnswer), f2(r.AvgCorrupted)})
	}
	return t
}
