package experiments

import (
	"repro/internal/adversary"
	"repro/internal/core"
	"repro/internal/crypto"
	"repro/internal/keydist"
	"repro/internal/topology"
)

// CampaignConfig parameterizes the revocation-economics experiment behind
// the paper's Section I claim that threshold-based whole-sensor
// revocation "can often reduce the number of keys that need to be
// individually revoked by over 90%": a persistent attacker is engaged
// over repeated query executions until it is fully revoked, and the
// number of individual key-revocation announcements is compared with the
// attacker's ring size.
type CampaignConfig struct {
	// N is the network size.
	N int
	// Thetas are the thresholds to compare; 0 disables whole-sensor
	// revocation (the pure sequential baseline).
	Thetas []int
	// MaxExecutions caps one campaign.
	MaxExecutions int
	// Trials with fresh placements per theta.
	Trials int
	Seed   uint64
	// Workers caps trial parallelism; 0 uses GOMAXPROCS. Results are
	// identical for every worker count.
	Workers int
}

// DefaultCampaign returns the default configuration.
func DefaultCampaign() CampaignConfig {
	return CampaignConfig{
		N:             60,
		Thetas:        []int{0, 3, 7, 15, 27},
		MaxExecutions: 400,
		Trials:        5,
		Seed:          2011,
	}
}

// CampaignRow aggregates one theta's campaigns.
type CampaignRow struct {
	Theta int
	// AvgExecutions is the average number of corrupted executions before
	// the system either fully revoked the attacker (theta > 0) or
	// neutralized it (no further corruptions possible).
	AvgExecutions float64
	// AvgKeyAnnouncements is the average number of individual key
	// revocations announced.
	AvgKeyAnnouncements float64
	// AvgRingCoverage is announcements / ring size: the fraction of the
	// attacker's ring that had to be revoked one key at a time. The
	// paper's >90% saving corresponds to a coverage below 0.1.
	AvgRingCoverage float64
	// FullyRevoked counts trials ending with the attacker wholly revoked.
	FullyRevoked int
	// Neutralized counts trials ending with the attacker unable to
	// corrupt further executions (the campaign's last execution
	// returned a correct result).
	Neutralized int
}

// RunCampaign executes the sweep: one persistent dropper per trial,
// repeatedly attacking consecutive COUNT-free MIN queries while the
// registry accumulates revocations across executions.
func RunCampaign(cfg CampaignConfig) ([]CampaignRow, error) {
	rows := make([]CampaignRow, 0, len(cfg.Thetas))
	for _, theta := range cfg.Thetas {
		trials, err := RunTrials(subSeed(cfg.Seed, "campaign", uint64(theta)),
			cfg.Trials, cfg.Workers,
			func(trial int, rng *crypto.Stream) (campaignTrial, error) {
				return runCampaignTrial(cfg, theta, trial, rng)
			})
		if err != nil {
			return nil, err
		}
		row := CampaignRow{Theta: theta}
		var execs, announcements, coverage float64
		for _, tr := range trials {
			execs += tr.execs
			announcements += tr.announcements
			coverage += tr.coverage
			if tr.fullyRevoked {
				row.FullyRevoked++
			}
			if tr.neutralized {
				row.Neutralized++
			}
		}
		row.AvgExecutions = execs / float64(cfg.Trials)
		row.AvgKeyAnnouncements = announcements / float64(cfg.Trials)
		row.AvgRingCoverage = coverage / float64(cfg.Trials)
		rows = append(rows, row)
	}
	return rows, nil
}

// campaignTrial is one campaign's contribution to a theta row.
type campaignTrial struct {
	execs         float64
	announcements float64
	coverage      float64
	fullyRevoked  bool
	neutralized   bool
}

// runCampaignTrial engages one persistent dropper until it is fully
// revoked, neutralized, or the execution budget runs out.
func runCampaignTrial(cfg CampaignConfig, theta, trial int, rng *crypto.Stream) (campaignTrial, error) {
	var tr campaignTrial
	env, err := newProtoEnv(cfg.N, denseProtoParams, cfg.Seed+uint64(trial*7919))
	if err != nil {
		return tr, err
	}
	attacker, minHolder, ok := placeCampaignAttack(env.graph, rng)
	if !ok {
		return tr, nil
	}
	mal := map[topology.NodeID]bool{attacker: true}
	registry := keydist.NewRegistry(env.dep, theta)
	strat := adversary.NewDropper(50)

	ran := 0
	for exec := 0; exec < cfg.MaxExecutions; exec++ {
		base := env.baseConfig(minHolder, 1)
		base.Malicious = mal
		base.Adversary = strat
		base.Registry = registry
		base.AdversaryFavored = true
		base.Seed = env.seed + uint64(exec+1)
		eng, err := core.NewEngine(base)
		if err != nil {
			return tr, err
		}
		out, err := eng.Run()
		if err != nil {
			return tr, err
		}
		ran = exec + 1
		if out.Kind == core.OutcomeResult {
			tr.neutralized = true
			break
		}
		if registry.NodeRevoked(attacker) {
			tr.fullyRevoked = true
			break
		}
	}
	tr.execs = float64(ran)
	tr.announcements = float64(registry.KeyRevocationAnnouncements())
	tr.coverage = tr.announcements / float64(len(env.dep.Ring(attacker)))
	return tr, nil
}

// placeCampaignAttack picks a malicious node that sits on the minimum
// holder's path: the attacker must not partition the honest subgraph and
// must have a strictly deeper honest neighbor, which becomes the minimum
// holder (its first tree-formation message arrives via the attacker under
// adversary-favored timing, making the attacker its aggregation parent).
func placeCampaignAttack(g *topology.Graph, rng *crypto.Stream) (attacker, minHolder topology.NodeID, ok bool) {
	n := g.NumNodes()
	depths := g.Depths(topology.BaseStation)
	for attempts := 0; attempts < 80; attempts++ {
		cand := topology.NodeID(rng.Intn(n-1) + 1)
		if !g.ConnectedExcluding(topology.BaseStation, map[topology.NodeID]bool{cand: true}) {
			continue
		}
		for _, nb := range g.Neighbors(cand) {
			if depths[nb] == depths[cand]+1 {
				return cand, nb, true
			}
		}
	}
	return 0, 0, false
}

// CampaignTable renders the sweep.
func CampaignTable(rows []CampaignRow, ringSize int) *Table {
	t := &Table{
		Title:   "Section I/VI-C: revocation campaign economics (ring size " + d(ringSize) + ")",
		Columns: []string{"theta", "avg_executions", "avg_key_announcements", "ring_coverage", "fully_revoked", "neutralized"},
	}
	for _, r := range rows {
		t.Rows = append(t.Rows, []string{
			d(r.Theta), f2(r.AvgExecutions), f2(r.AvgKeyAnnouncements),
			f4(r.AvgRingCoverage), d(r.FullyRevoked), d(r.Neutralized),
		})
	}
	return t
}
