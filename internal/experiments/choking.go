package experiments

import (
	"repro/internal/adversary"
	"repro/internal/core"
	"repro/internal/crypto"
	"repro/internal/topology"
)

// ChokingConfig parameterizes the SOF analysis (Lemma 1 and Section
// IV-C): under a drop-and-choke adversary, the base station must receive
// *some* veto in every execution, and whatever it receives must lead to a
// sound revocation.
type ChokingConfig struct {
	// N is the network size.
	N int
	// MaliciousCounts are the f values to sweep.
	MaliciousCounts []int
	// Trials per f with fresh placements.
	Trials int
	Seed   uint64
	// Workers caps trial parallelism; 0 uses GOMAXPROCS. Results are
	// identical for every worker count.
	Workers int
}

// DefaultChoking returns the default sweep.
func DefaultChoking() ChokingConfig {
	return ChokingConfig{N: 80, MaliciousCounts: []int{1, 2, 4, 8}, Trials: 12, Seed: 2011}
}

// ChokingRow aggregates one f value.
type ChokingRow struct {
	F int
	// VetoDelivered counts trials where the base station received a veto
	// (Lemma 1 requires all of them, given the minimum was suppressed).
	VetoDelivered int
	// SpuriousWon counts trials where the first veto was spurious (the
	// choke beat the honest veto) — the attack "succeeding" at step one,
	// only to hand the base station a junk audit trail.
	SpuriousWon int
	// SoundRevocations counts trials ending with a revocation entirely
	// inside the malicious coalition.
	SoundRevocations int
	// Trials is the cell size.
	Trials int
}

// RunChoking executes the sweep.
func RunChoking(cfg ChokingConfig) ([]ChokingRow, error) {
	type chokingTrial struct {
		vetoDelivered bool
		spuriousWon   bool
		sound         bool
	}
	rows := make([]ChokingRow, 0, len(cfg.MaliciousCounts))
	for _, f := range cfg.MaliciousCounts {
		trials, err := RunTrials(subSeed(cfg.Seed, "choking", uint64(f)),
			cfg.Trials, cfg.Workers,
			func(trial int, rng *crypto.Stream) (chokingTrial, error) {
				var tr chokingTrial
				env, err := newProtoEnv(cfg.N, denseProtoParams, cfg.Seed+uint64(f*1000+trial))
				if err != nil {
					return tr, err
				}
				mal := pickMalicious(env.graph, rng, f)
				minHolder := farthestHonest(env, mal)
				base := env.baseConfig(minHolder, 1)
				base.Malicious = mal
				base.Adversary = adversary.NewDropAndChoke(50)
				base.AdversaryFavored = true
				eng, err := core.NewEngine(base)
				if err != nil {
					return tr, err
				}
				out, err := eng.Run()
				if err != nil {
					return tr, err
				}
				switch out.Kind {
				case core.OutcomeResult:
					// The droppers never sat on the minimum's path: the
					// execution was simply correct; no veto was needed.
					tr.vetoDelivered = true
					return tr, nil
				case core.OutcomeJunkConfRevocation:
					tr.vetoDelivered = true
					tr.spuriousWon = true
				case core.OutcomeVetoRevocation:
					tr.vetoDelivered = true
				case core.OutcomeJunkAggRevocation:
					tr.vetoDelivered = true
				}
				tr.sound = revokedSound(out, env, mal)
				return tr, nil
			})
		if err != nil {
			return nil, err
		}
		row := ChokingRow{F: f, Trials: cfg.Trials}
		for _, tr := range trials {
			if tr.vetoDelivered {
				row.VetoDelivered++
			}
			if tr.spuriousWon {
				row.SpuriousWon++
			}
			if tr.sound {
				row.SoundRevocations++
			}
		}
		rows = append(rows, row)
	}
	return rows, nil
}

// farthestHonest returns the deepest honest sensor — the most exposed
// vetoer placement, whose value crosses the most hops.
func farthestHonest(env *protoEnv, malicious map[topology.NodeID]bool) topology.NodeID {
	depths := env.graph.Depths(topology.BaseStation)
	best := topology.NodeID(1)
	for id := 1; id < env.graph.NumNodes(); id++ {
		nid := topology.NodeID(id)
		if malicious[nid] {
			continue
		}
		if depths[id] > depths[best] || malicious[best] {
			best = nid
		}
	}
	return best
}

// ChokingTable renders the sweep.
func ChokingTable(rows []ChokingRow) *Table {
	t := &Table{
		Title:   "Lemma 1 / SOF: veto delivery and revocation soundness under drop-and-choke",
		Columns: []string{"f", "trials", "veto_delivered", "spurious_won", "sound_revocations"},
	}
	for _, r := range rows {
		t.Rows = append(t.Rows, []string{d(r.F), d(r.Trials), d(r.VetoDelivered), d(r.SpuriousWon), d(r.SoundRevocations)})
	}
	return t
}
