package experiments

import (
	"fmt"

	"repro/internal/baseline"
	"repro/internal/core"
	"repro/internal/crypto"
	"repro/internal/topology"
)

// CommConfig parameterizes the Section IX communication-complexity
// comparison: a COUNT query answered by VMAT's 100-synopsis in-network
// aggregation versus the naive baseline that ships every MAC-carrying
// reading to the base station.
type CommConfig struct {
	// NetworkSizes to sweep (the paper's discussion point is 10,000).
	NetworkSizes []int
	// Synopses is m (the paper uses 100, i.e. 2.4 KB aggregates).
	Synopses int
	// Seed drives the topologies.
	Seed uint64
	// Workers caps parallelism across network sizes; 0 uses GOMAXPROCS.
	// Results are identical for every worker count.
	Workers int
}

// DefaultComm returns the paper-scale configuration.
func DefaultComm() CommConfig {
	return CommConfig{NetworkSizes: []int{100, 1000, 10000}, Synopses: 100, Seed: 2011}
}

// CommRow is one network size's comparison.
type CommRow struct {
	N int
	// VMATAggMsgBytes is the size of one VMAT aggregate message (the
	// paper's 2.4 KB for 100 synopses).
	VMATAggMsgBytes int
	// VMATAggMedianNodeBytes and VMATAggMaxNodeBytes are the median and
	// maximum per-sensor bytes of the aggregation phase alone — the
	// apples-to-apples counterpart of the paper's 2.4 KB vs 80 KB
	// comparison.
	VMATAggMedianNodeBytes int64
	VMATAggMaxNodeBytes    int64
	// VMATMaxNodeBytes is the maximum per-sensor communication of the
	// whole VMAT execution (all phases and broadcasts).
	VMATMaxNodeBytes int64
	// VMATEstimate and VMATAnswered report the query result.
	VMATEstimate float64
	VMATAnswered bool
	// NaiveMaxNodeBytes is the bottleneck sensor's bytes in the naive
	// upload (at least 8n by the paper's MAC-only accounting).
	NaiveMaxNodeBytes int64
	// Ratio is naive/VMAT at the bottleneck.
	Ratio float64
}

// RunComm executes the comparison.
func RunComm(cfg CommConfig) ([]CommRow, error) {
	// One "trial" per network size: the sizes are independent runs, so
	// they fan out across workers like Monte-Carlo trials do.
	return RunTrials(subSeed(cfg.Seed, "comm", 0),
		len(cfg.NetworkSizes), cfg.Workers,
		func(i int, _ *crypto.Stream) (CommRow, error) {
			n := cfg.NetworkSizes[i]
			env, err := newProtoEnv(n, denseProtoParams, cfg.Seed+uint64(n))
			if err != nil {
				return CommRow{}, err
			}
			res, err := core.RunCount(env.baseConfig(0, 0),
				func(id topology.NodeID) bool { return true }, cfg.Synopses)
			if err != nil {
				return CommRow{}, fmt.Errorf("n=%d: %w", n, err)
			}
			naive := baseline.RunNaiveUpload(env.graph, 8*n)
			row := CommRow{
				N:                      n,
				VMATAggMsgBytes:        core.AggMsgWireSize(cfg.Synopses),
				VMATAggMedianNodeBytes: res.Outcome.AggMedianNodeBytes,
				VMATAggMaxNodeBytes:    res.Outcome.AggMaxNodeBytes,
				VMATMaxNodeBytes:       res.Outcome.Stats.MaxNodeBytes(),
				VMATEstimate:           res.Estimate,
				VMATAnswered:           res.Answered(),
				NaiveMaxNodeBytes:      naive.Stats.MaxNodeBytes(),
			}
			if row.VMATAggMedianNodeBytes > 0 {
				// The paper's comparison: a typical sensor's aggregation
				// traffic vs the naive bottleneck.
				row.Ratio = float64(row.NaiveMaxNodeBytes) / float64(row.VMATAggMedianNodeBytes)
			}
			return row, nil
		})
}

// CommTable renders the comparison.
func CommTable(rows []CommRow) *Table {
	t := &Table{
		Title: "Section IX: per-sensor communication, VMAT (100 synopses) vs naive upload",
		Columns: []string{"n", "vmat_agg_msg_B", "vmat_agg_median_B", "vmat_agg_max_B",
			"vmat_total_max_B", "naive_max_B", "naive/vmat_agg", "vmat_estimate"},
	}
	for _, r := range rows {
		t.Rows = append(t.Rows, []string{
			d(r.N), d(r.VMATAggMsgBytes),
			fmt.Sprintf("%d", r.VMATAggMedianNodeBytes),
			fmt.Sprintf("%d", r.VMATAggMaxNodeBytes),
			fmt.Sprintf("%d", r.VMATMaxNodeBytes),
			fmt.Sprintf("%d", r.NaiveMaxNodeBytes),
			f2(r.Ratio), f2(r.VMATEstimate),
		})
	}
	return t
}
