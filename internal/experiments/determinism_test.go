package experiments

import (
	"errors"
	"fmt"
	"reflect"
	"testing"

	"repro/internal/crypto"
	"repro/internal/faults"
	"repro/internal/keydist"
	"repro/internal/simnet"
)

// The trial-runner's contract is that worker count is invisible in the
// results: every driver must produce bit-identical row slices whether its
// trials run on one goroutine or eight. These tests run each driver at
// reduced scale under both settings and compare with reflect.DeepEqual,
// which on float fields demands exact bit equality — any scheduling
// dependence in RNG consumption or merge order fails loudly.

// assertSameRows runs fn at workers=1 and workers=8 and compares.
func assertSameRows[T any](t *testing.T, name string, fn func(workers int) (T, error)) {
	t.Helper()
	sequential, err := fn(1)
	if err != nil {
		t.Fatalf("%s workers=1: %v", name, err)
	}
	parallel, err := fn(8)
	if err != nil {
		t.Fatalf("%s workers=8: %v", name, err)
	}
	if !reflect.DeepEqual(sequential, parallel) {
		t.Fatalf("%s rows differ between workers=1 and workers=8:\n%+v\nvs\n%+v",
			name, sequential, parallel)
	}
}

func TestFig7Deterministic(t *testing.T) {
	assertSameRows(t, "fig7", func(workers int) ([]Fig7Row, error) {
		return RunFig7(Fig7Config{
			NetworkSizes:    []int{300},
			MaliciousCounts: []int{1, 5},
			Thetas:          []int{1, 7, 27},
			Trials:          6,
			Params:          keydist.Params{PoolSize: 5000, RingSize: 60},
			Seed:            21,
			Workers:         workers,
		})
	})
}

func TestFig8Deterministic(t *testing.T) {
	assertSameRows(t, "fig8", func(workers int) ([]Fig8Row, error) {
		return RunFig8(Fig8Config{
			Synopses: 50,
			Counts:   []int{10, 100},
			Trials:   12,
			Seed:     22,
			Workers:  workers,
		}), nil
	})
}

func TestMSweepDeterministic(t *testing.T) {
	assertSameRows(t, "msweep", func(workers int) ([]MSweepRow, error) {
		return RunMSweep(MSweepConfig{
			Count: 100, Ms: []int{25, 50}, Trials: 12, Seed: 23, Workers: workers,
		}), nil
	})
}

func TestAvailabilityDeterministic(t *testing.T) {
	assertSameRows(t, "availability", func(workers int) ([]AvailabilityRow, error) {
		return RunAvailability(AvailabilityConfig{
			N: 40, Executions: 8, Trials: 3, Theta: 7, Seed: 24, Workers: workers,
		})
	})
}

func TestCampaignDeterministic(t *testing.T) {
	assertSameRows(t, "campaign", func(workers int) ([]CampaignRow, error) {
		return RunCampaign(CampaignConfig{
			N: 40, Thetas: []int{0, 5}, MaxExecutions: 40, Trials: 3, Seed: 25,
			Workers: workers,
		})
	})
}

func TestChokingDeterministic(t *testing.T) {
	assertSameRows(t, "choking", func(workers int) ([]ChokingRow, error) {
		return RunChoking(ChokingConfig{
			N: 40, MaliciousCounts: []int{1, 2}, Trials: 4, Seed: 26, Workers: workers,
		})
	})
}

func TestLossDeterministic(t *testing.T) {
	assertSameRows(t, "loss", func(workers int) ([]LossRow, error) {
		return RunLoss(LossConfig{
			N: 50, LossRates: []float64{0, 0.1}, Trials: 4, Seed: 27, Workers: workers,
		})
	})
}

func TestPinpointDeterministic(t *testing.T) {
	assertSameRows(t, "pinpoint", func(workers int) ([]PinpointRow, error) {
		return RunPinpoint(PinpointConfig{
			NetworkSizes: []int{40}, Trials: 3, Seed: 28, Workers: workers,
		})
	})
}

func TestRoundsDeterministic(t *testing.T) {
	assertSameRows(t, "rounds", func(workers int) ([]RoundsRow, error) {
		return RunRounds(RoundsConfig{
			NetworkSizes: []int{50, 100}, Repeats: 2, Seed: 29, Workers: workers,
		})
	})
}

func TestWormholeDeterministic(t *testing.T) {
	assertSameRows(t, "wormhole", func(workers int) ([]WormholeRow, error) {
		return RunWormhole(WormholeConfig{
			NetworkSizes: []int{50}, Trials: 3, Seed: 30, Workers: workers,
		})
	})
}

func TestCommDeterministic(t *testing.T) {
	assertSameRows(t, "comm", func(workers int) ([]CommRow, error) {
		return RunComm(CommConfig{
			NetworkSizes: []int{50, 100}, Synopses: 50, Seed: 31, Workers: workers,
		})
	})
}

func TestFaultsDeterministic(t *testing.T) {
	assertSameRows(t, "faults", func(workers int) ([]FaultsRow, error) {
		return RunFaults(FaultsConfig{
			N: 40, CrashProbs: []float64{0, 0.005}, BurstLoss: []float64{0.4},
			Trials: 3, Seed: 32, Workers: workers,
		})
	})
}

// TestScenarioNoFaultGolden pins the no-fault invariance guarantee: with
// Faults nil and the ARQ disabled, scenario rows — outcomes, slot counts,
// and every byte of communication accounting — are bit-identical to the
// values this harness produced before the fault subsystem existed. The
// golden rows below were captured from the pre-fault tree; any drift in
// the fault-free code path (an extra RNG draw, a changed delivery order,
// an accounting change) fails this test.
func TestScenarioNoFaultGolden(t *testing.T) {
	cases := []struct {
		name string
		cfg  ScenarioConfig
		want []ScenarioRow
	}{
		{
			name: "geometric-min-drop",
			cfg:  ScenarioConfig{N: 40, Topology: "geometric", Query: "min", Attack: "drop", Malicious: 2, Synopses: 100, Trials: 5, Seed: 7},
			want: []ScenarioRow{
				{Trial: 0, Outcome: "result", Answered: true, Answer: 101, Slots: 42, FloodingRounds: 6, TotalBytes: 67944, MaxNodeBytes: 2868},
				{Trial: 1, Outcome: "result", Answered: true, Answer: 101, Slots: 32, FloodingRounds: 6.4, TotalBytes: 59112, MaxNodeBytes: 2648},
				{Trial: 2, Outcome: "result", Answered: true, Answer: 101, Slots: 37, FloodingRounds: 6.166666666666667, TotalBytes: 75304, MaxNodeBytes: 3640},
				{Trial: 3, Outcome: "result", Answered: true, Answer: 101, Slots: 37, FloodingRounds: 6.166666666666667, TotalBytes: 66472, MaxNodeBytes: 2792},
				{Trial: 4, Outcome: "result", Answered: true, Answer: 101, Slots: 37, FloodingRounds: 6.166666666666667, TotalBytes: 67576, MaxNodeBytes: 3416},
			},
		},
		{
			name: "line-min-multipath",
			cfg:  ScenarioConfig{N: 30, Topology: "line", Query: "min", Attack: "none", Synopses: 100, Trials: 3, Seed: 11, Multipath: true},
			want: []ScenarioRow{
				{Trial: 0, Outcome: "result", Answered: true, Answer: 101, Slots: 152, FloodingRounds: 5.241379310344827, TotalBytes: 12760, MaxNodeBytes: 440},
				{Trial: 1, Outcome: "result", Answered: true, Answer: 101, Slots: 152, FloodingRounds: 5.241379310344827, TotalBytes: 12760, MaxNodeBytes: 440},
				{Trial: 2, Outcome: "result", Answered: true, Answer: 101, Slots: 152, FloodingRounds: 5.241379310344827, TotalBytes: 12760, MaxNodeBytes: 440},
			},
		},
		{
			name: "grid-count-junk",
			cfg:  ScenarioConfig{N: 36, Topology: "grid", Query: "count", Attack: "junk", Malicious: 1, Synopses: 40, Trials: 3, Seed: 13},
			want: []ScenarioRow{
				{Trial: 0, Outcome: "junk-agg-revocation", Slots: 1257, FloodingRounds: 125.7, PredicateTests: 61, RevokedKeys: 1, TotalBytes: 1721192, MaxNodeBytes: 58120},
				{Trial: 1, Outcome: "junk-agg-revocation", Slots: 601, FloodingRounds: 60.1, PredicateTests: 28, RevokedKeys: 1, TotalBytes: 824360, MaxNodeBytes: 28084},
				{Trial: 2, Outcome: "junk-agg-revocation", Slots: 1464, FloodingRounds: 146.4, PredicateTests: 71, RevokedKeys: 1, TotalBytes: 1997448, MaxNodeBytes: 67208},
			},
		},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			got, err := RunScenario(c.cfg)
			if err != nil {
				t.Fatalf("RunScenario: %v", err)
			}
			if !reflect.DeepEqual(got, c.want) {
				t.Fatalf("fault-free rows drifted from the pre-fault golden output:\ngot  %+v\nwant %+v", got, c.want)
			}
		})
	}
}

// TestScenarioWithFaultsDeterministic: the fault pipeline inherits the
// trial-runner's worker-invisibility contract.
func TestScenarioWithFaultsDeterministic(t *testing.T) {
	assertSameRows(t, "scenario-faults", func(workers int) ([]ScenarioRow, error) {
		cfg := ScenarioConfig{
			N: 30, Topology: "geometric", Query: "min", Attack: "none",
			Synopses: 100, Trials: 6, Seed: 41, Workers: workers,
			Faults: &faults.Spec{CrashProb: 0.005, RecoverProb: 0.05, LinkDownProb: 0.01, LinkUpProb: 0.2},
			ARQ:    &simnet.ARQConfig{},
		}
		return RunScenario(cfg)
	})
}

func TestRunTrialsOrderAndErrors(t *testing.T) {
	// Results come back in trial order regardless of workers.
	for _, workers := range []int{1, 3, 8} {
		got, err := RunTrials(99, 17, workers, func(trial int, _ *crypto.Stream) (int, error) {
			return trial * trial, nil
		})
		if err != nil {
			t.Fatal(err)
		}
		for i, v := range got {
			if v != i*i {
				t.Fatalf("workers=%d: result[%d] = %d, want %d", workers, i, v, i*i)
			}
		}
	}
	// The lowest-index failing trial wins, regardless of which worker
	// finishes first.
	sentinel := errors.New("boom")
	for _, workers := range []int{1, 8} {
		_, err := RunTrials(99, 20, workers, func(trial int, _ *crypto.Stream) (int, error) {
			if trial >= 5 {
				return 0, fmt.Errorf("trial-%d: %w", trial, sentinel)
			}
			return trial, nil
		})
		if err == nil || !errors.Is(err, sentinel) || err.Error() != "trial 5: trial-5: boom" {
			t.Fatalf("workers=%d: error = %v, want first failing trial 5", workers, err)
		}
	}
}

func TestRunTrialsStreamsIndependentOfWorkers(t *testing.T) {
	draw := func(workers int) ([]uint64, error) {
		return RunTrials(7, 9, workers, func(_ int, rng *crypto.Stream) (uint64, error) {
			return rng.Uint64(), nil
		})
	}
	one, err := draw(1)
	if err != nil {
		t.Fatal(err)
	}
	eight, err := draw(8)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(one, eight) {
		t.Fatalf("per-trial streams depend on worker count:\n%v\nvs\n%v", one, eight)
	}
	seen := map[uint64]bool{}
	for _, v := range one {
		if seen[v] {
			t.Fatalf("duplicate stream draw %d across trials", v)
		}
		seen[v] = true
	}
}
