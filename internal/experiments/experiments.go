// Package experiments regenerates every quantitative artifact of the
// paper's evaluation (Section IX) and complexity claims (Sections I and
// VII): Figure 7 (mis-revocation vs theta), Figure 8 (synopsis
// approximation error), the communication-complexity comparison, the
// flooding-round comparison against sampling-based aggregation, the
// pinpointing cost of Theorem 6, the revocation-campaign economics, the
// Figure 2(c) wormhole demonstration, and the SOF choking analysis.
//
// Each experiment has a config with paper-faithful defaults, a Run
// function returning typed rows, and a writer that prints the same series
// the paper plots. cmd/vmat-bench and the repository's benchmark suite
// are thin wrappers around this package.
package experiments

import (
	"fmt"
	"io"
	"sort"
)

// Table is a generic printable result table.
type Table struct {
	Title   string
	Columns []string
	Rows    [][]string
}

// Write renders the table as aligned text.
func (t *Table) Write(w io.Writer) error {
	if _, err := fmt.Fprintf(w, "# %s\n", t.Title); err != nil {
		return err
	}
	widths := make([]int, len(t.Columns))
	for i, c := range t.Columns {
		widths[i] = len(c)
	}
	for _, row := range t.Rows {
		for i, cell := range row {
			if i < len(widths) && len(cell) > widths[i] {
				widths[i] = len(cell)
			}
		}
	}
	writeRow := func(cells []string) error {
		for i, cell := range cells {
			pad := widths[i] - len(cell)
			if _, err := fmt.Fprintf(w, "%s%*s", cell, pad+2, ""); err != nil {
				return err
			}
		}
		_, err := fmt.Fprintln(w)
		return err
	}
	if err := writeRow(t.Columns); err != nil {
		return err
	}
	for _, row := range t.Rows {
		if err := writeRow(row); err != nil {
			return err
		}
	}
	return nil
}

// percentile returns the p-th percentile (0..100) of values.
func percentile(values []float64, p float64) float64 {
	if len(values) == 0 {
		return 0
	}
	sorted := append([]float64(nil), values...)
	sort.Float64s(sorted)
	idx := int(p / 100 * float64(len(sorted)-1))
	return sorted[idx]
}

func mean(values []float64) float64 {
	if len(values) == 0 {
		return 0
	}
	total := 0.0
	for _, v := range values {
		total += v
	}
	return total / float64(len(values))
}

func f2(v float64) string { return fmt.Sprintf("%.2f", v) }
func f4(v float64) string { return fmt.Sprintf("%.4f", v) }
func d(v int) string      { return fmt.Sprintf("%d", v) }
