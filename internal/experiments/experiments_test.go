package experiments

import (
	"bytes"
	"strings"
	"testing"

	"repro/internal/keydist"
)

// Reduced-scale configs keep the suite fast; the cmd tool runs the
// paper-scale defaults.

func TestRunFig7ShapeMatchesPaper(t *testing.T) {
	cfg := Fig7Config{
		NetworkSizes:    []int{1000},
		MaliciousCounts: []int{1, 20},
		Thetas:          []int{1, 7, 27},
		Trials:          5,
		Params:          keydist.PaperParams(),
		Seed:            7,
	}
	rows, err := RunFig7(cfg)
	if err != nil {
		t.Fatal(err)
	}
	byKey := map[[2]int]map[int]float64{}
	for _, r := range rows {
		k := [2]int{r.N, r.F}
		if byKey[k] == nil {
			byKey[k] = map[int]float64{}
		}
		byKey[k][r.Theta] = r.AvgMisRevoked
	}
	f1 := byKey[[2]int{1000, 1}]
	f20 := byKey[[2]int{1000, 20}]
	// Paper: with f=1, theta around 7 already gives near-zero
	// mis-revocation; with f=20, theta=27 keeps the average below 1.
	if f1[7] > 0.5 {
		t.Fatalf("f=1 theta=7 mis-revocation %.3f, paper expects near zero", f1[7])
	}
	if f20[27] >= 1.5 {
		t.Fatalf("f=20 theta=27 mis-revocation %.3f, paper expects below ~1", f20[27])
	}
	// Monotonicity: higher theta cannot mis-revoke more; larger f cannot
	// mis-revoke less at fixed theta.
	if f1[1] < f1[7] || f20[1] < f20[27] {
		t.Fatal("mis-revocation not monotone in theta")
	}
	if f20[7] < f1[7] {
		t.Fatal("mis-revocation not monotone in f")
	}
	// f=20 at low theta must be dramatically worse than f=1 (the figure's
	// visual spread).
	if f20[1] < f1[1] {
		t.Fatalf("f=20 curve (%.1f) below f=1 curve (%.1f) at theta=1", f20[1], f1[1])
	}
}

func TestRunFig8ShapeMatchesPaper(t *testing.T) {
	cfg := Fig8Config{
		Synopses: 100,
		Counts:   []int{10, 100, 1000},
		Trials:   60,
		Seed:     8,
	}
	rows := RunFig8(cfg)
	for _, r := range rows {
		// Paper headline: 100 synopses give average relative error below
		// 10% (allow slack for the reduced trial count).
		if r.Average > 0.14 {
			t.Fatalf("count %d: avg rel err %.3f, paper expects <~0.10", r.Count, r.Average)
		}
		if r.P50 > r.P90 || r.P90 > r.P95 || r.P95 > r.P99 {
			t.Fatalf("count %d: percentiles not monotone: %+v", r.Count, r)
		}
	}
	// Error must be roughly flat across count values (the scheme is
	// scale-free).
	if rows[0].Average > 3*rows[len(rows)-1].Average && rows[0].Average > 0.05 {
		t.Fatalf("error not scale-free: %+v", rows)
	}
}

func TestRunMSweepErrorShrinksWithM(t *testing.T) {
	rows := RunMSweep(MSweepConfig{Count: 300, Ms: []int{25, 400}, Trials: 120, Seed: 10})
	small, big := rows[0], rows[1]
	// Error scales like 1/sqrt(m): 16x more synopses should cut the
	// average error by roughly 4x (allow down to 2.2x for noise).
	if big.Average*2.2 > small.Average {
		t.Fatalf("error did not shrink with m: m=25 -> %.4f, m=400 -> %.4f",
			small.Average, big.Average)
	}
	if big.Bytes != 400*24 || small.Bytes != 25*24 {
		t.Fatal("message-size accounting wrong")
	}
}

func TestFig8UnbiasedVariantNoWorse(t *testing.T) {
	base := Fig8Config{Synopses: 50, Counts: []int{200}, Trials: 150, Seed: 9}
	biased := RunFig8(base)
	base.Unbiased = true
	unbiased := RunFig8(base)
	if unbiased[0].Average > biased[0].Average*1.15 {
		t.Fatalf("unbiased estimator notably worse: %.4f vs %.4f",
			unbiased[0].Average, biased[0].Average)
	}
}

func TestRunCommShowsScalingGap(t *testing.T) {
	// The paper's comparison point is n=10,000 (80KB naive vs 2.4KB
	// aggregates). The testable shape at reduced scale: VMAT's
	// per-sensor traffic is roughly flat in n, the naive bottleneck
	// grows linearly, so the ratio grows with n.
	rows, err := RunComm(CommConfig{NetworkSizes: []int{100, 1000}, Synopses: 100, Seed: 10})
	if err != nil {
		t.Fatal(err)
	}
	small, big := rows[0], rows[1]
	if !small.VMATAnswered || !big.VMATAnswered {
		t.Fatal("VMAT count did not answer")
	}
	if small.VMATAggMsgBytes != 2400 {
		t.Fatalf("aggregate message %d bytes, want the paper's 2400", small.VMATAggMsgBytes)
	}
	if big.Ratio <= small.Ratio {
		t.Fatalf("naive/VMAT ratio did not grow with n: %.2f -> %.2f", small.Ratio, big.Ratio)
	}
	if float64(big.VMATMaxNodeBytes) > 4*float64(small.VMATMaxNodeBytes) {
		t.Fatalf("VMAT per-sensor traffic grew with n: %d -> %d",
			small.VMATMaxNodeBytes, big.VMATMaxNodeBytes)
	}
	if float64(big.NaiveMaxNodeBytes) < 5*float64(small.NaiveMaxNodeBytes) {
		t.Fatalf("naive bottleneck did not scale linearly: %d -> %d",
			small.NaiveMaxNodeBytes, big.NaiveMaxNodeBytes)
	}
}

func TestRunRoundsSeparatesComplexityClasses(t *testing.T) {
	rows, err := RunRounds(RoundsConfig{NetworkSizes: []int{50, 400}, Repeats: 3, Seed: 11})
	if err != nil {
		t.Fatal(err)
	}
	small, big := rows[0], rows[1]
	if big.VMATRounds > 3*small.VMATRounds {
		t.Fatalf("VMAT rounds grew with n: %.1f -> %.1f", small.VMATRounds, big.VMATRounds)
	}
	if big.SamplingRounds <= small.SamplingRounds {
		t.Fatalf("sampling rounds did not grow with n: %d -> %d",
			small.SamplingRounds, big.SamplingRounds)
	}
	if float64(big.SamplingRounds) < 2*big.VMATRounds {
		t.Fatalf("sampling (%d) should cost well above VMAT (%.1f) at n=400",
			big.SamplingRounds, big.VMATRounds)
	}
}

func TestRunPinpointAllSound(t *testing.T) {
	rows, err := RunPinpoint(PinpointConfig{NetworkSizes: []int{40}, Trials: 3, Seed: 12})
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range rows {
		if r.Sound != r.Triggered {
			t.Fatalf("%s at n=%d: %d/%d sound revocations (Theorem 6 violated)",
				r.Strategy, r.N, r.Sound, r.Triggered)
		}
		if r.Triggered == 0 {
			t.Fatalf("%s at n=%d never corrupted an execution; placement is broken", r.Strategy, r.N)
		}
	}
}

func TestRunCampaignThresholdSavesAnnouncements(t *testing.T) {
	rows, err := RunCampaign(CampaignConfig{
		N: 40, Thetas: []int{0, 5}, MaxExecutions: 120, Trials: 2, Seed: 13,
	})
	if err != nil {
		t.Fatal(err)
	}
	var seq, thresh *CampaignRow
	for i := range rows {
		switch rows[i].Theta {
		case 0:
			seq = &rows[i]
		case 5:
			thresh = &rows[i]
		}
	}
	if seq == nil || thresh == nil {
		t.Fatal("missing campaign rows")
	}
	if thresh.FullyRevoked == 0 {
		t.Fatal("threshold campaign never fully revoked the attacker")
	}
	// The paper's claim: whole-sensor revocation leaves all but a small
	// fraction of the ring to the seed announcement.
	if thresh.AvgRingCoverage > 0.2 {
		t.Fatalf("threshold campaign revoked %.0f%% of the ring individually, want <20%%",
			thresh.AvgRingCoverage*100)
	}
	if seq.FullyRevoked != 0 {
		t.Fatal("sequential campaign cannot fully revoke (theta disabled)")
	}
}

func TestRunWormholeBreaksOnlyHopCount(t *testing.T) {
	rows, err := RunWormhole(WormholeConfig{NetworkSizes: []int{60}, Trials: 4, Seed: 14})
	if err != nil {
		t.Fatal(err)
	}
	r := rows[0]
	if r.TimestampInvalid != 0 {
		t.Fatalf("VMAT timestamp formation produced %v invalid levels", r.TimestampInvalid)
	}
	if r.TimestampUnleveled != 0 {
		t.Fatalf("VMAT timestamp formation left %v honest sensors unleveled", r.TimestampUnleveled)
	}
	if r.HopCountInvalid == 0 {
		t.Fatal("wormhole never broke the hop-count baseline; the comparison is vacuous")
	}
}

func TestRunChokingLemma1(t *testing.T) {
	rows, err := RunChoking(ChokingConfig{N: 40, MaliciousCounts: []int{2}, Trials: 4, Seed: 15})
	if err != nil {
		t.Fatal(err)
	}
	r := rows[0]
	if r.VetoDelivered != r.Trials {
		t.Fatalf("Lemma 1 violated: veto delivered in %d/%d trials", r.VetoDelivered, r.Trials)
	}
	if r.SoundRevocations+r.Trials-r.VetoDelivered < r.SoundRevocations {
		t.Fatal("bookkeeping inconsistency")
	}
}

func TestRunAvailabilityRevocationRecovers(t *testing.T) {
	rows, err := RunAvailability(AvailabilityConfig{
		N: 50, Executions: 25, Trials: 2, Theta: 7, Seed: 17,
	})
	if err != nil {
		t.Fatal(err)
	}
	var vmat, alarm *AvailabilityRow
	for i := range rows {
		switch rows[i].Mode {
		case "vmat-revocation":
			vmat = &rows[i]
		case "alarm-only":
			alarm = &rows[i]
		}
	}
	if vmat == nil || alarm == nil {
		t.Fatal("missing modes")
	}
	if alarm.AnsweredFraction != 0 {
		t.Fatalf("alarm-only answered %.2f of executions under a persistent dropper, want 0",
			alarm.AnsweredFraction)
	}
	if vmat.AnsweredFraction < 0.4 {
		t.Fatalf("vmat answered only %.2f of executions; revocation is not restoring availability",
			vmat.AnsweredFraction)
	}
	if vmat.AvgFirstAnswer == 0 {
		t.Fatal("vmat never answered")
	}
}

func TestRunLossMultipathHelps(t *testing.T) {
	rows, err := RunLoss(LossConfig{
		N: 80, LossRates: []float64{0, 0.1}, Trials: 8, Seed: 16,
	})
	if err != nil {
		t.Fatal(err)
	}
	clean, lossy := rows[0], rows[1]
	if clean.SingleCorrect != clean.Trials || clean.MultiCorrect != clean.Trials {
		t.Fatalf("lossless trials not all correct: %+v", clean)
	}
	if lossy.MultiCorrect < lossy.SingleCorrect {
		t.Fatalf("multi-path (%d) worse than single-path (%d) at 10%% loss",
			lossy.MultiCorrect, lossy.SingleCorrect)
	}
}

func TestTableWriter(t *testing.T) {
	tab := &Table{
		Title:   "demo",
		Columns: []string{"a", "longer"},
		Rows:    [][]string{{"1", "2"}, {"333", "4"}},
	}
	var buf bytes.Buffer
	if err := tab.Write(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if !strings.Contains(out, "# demo") || !strings.Contains(out, "longer") {
		t.Fatalf("table output malformed:\n%s", out)
	}
	if len(strings.Split(strings.TrimSpace(out), "\n")) != 4 {
		t.Fatalf("table output has wrong line count:\n%s", out)
	}
}

func TestPercentileAndMean(t *testing.T) {
	vals := []float64{5, 1, 3, 2, 4}
	if p := percentile(vals, 50); p != 3 {
		t.Fatalf("p50 = %g, want 3", p)
	}
	if p := percentile(vals, 100); p != 5 {
		t.Fatalf("p100 = %g, want 5", p)
	}
	if p := percentile(nil, 50); p != 0 {
		t.Fatalf("p50 of empty = %g", p)
	}
	if m := mean(vals); m != 3 {
		t.Fatalf("mean = %g, want 3", m)
	}
	if m := mean(nil); m != 0 {
		t.Fatalf("mean of empty = %g", m)
	}
}
