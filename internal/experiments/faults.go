package experiments

import (
	"fmt"
	"math"

	"repro/internal/core"
	"repro/internal/crypto"
	"repro/internal/faults"
	"repro/internal/simnet"
)

// FaultsConfig parameterizes the graceful-degradation sweep: how
// availability (any result returned) and correctness (the planted
// minimum survives) fall off as node-crash churn and bursty
// Gilbert–Elliott loss grow, for single-path versus ring-based
// multi-path aggregation, with the link-layer ARQ enabled throughout.
// The paper assumes reliable links and a static sensor population; this
// sweep measures what its protocols deliver when those assumptions break
// and the engine degrades to explicit partial results instead.
type FaultsConfig struct {
	// N is the network size.
	N int
	// CrashProbs are the per-node per-slot crash probabilities to sweep
	// (crashed sensors recover with probability 0.05 per slot).
	CrashProbs []float64
	// BurstLoss are the bad-state loss rates of the Gilbert–Elliott
	// chain to sweep (0 disables the chain; enter/exit probabilities are
	// fixed at 0.05/0.2).
	BurstLoss []float64
	// Trials per (crash, burst) cell.
	Trials int
	Seed   uint64
	// Workers caps trial parallelism; 0 uses GOMAXPROCS. Results are
	// identical for every worker count.
	Workers int
}

// DefaultFaults returns the default sweep.
func DefaultFaults() FaultsConfig {
	return FaultsConfig{
		N:          60,
		CrashProbs: []float64{0, 0.002, 0.005},
		BurstLoss:  []float64{0, 0.5},
		Trials:     8,
		Seed:       2011,
	}
}

// FaultsRow aggregates one (crash probability, burst loss) cell.
type FaultsRow struct {
	CrashProb float64
	BurstLoss float64
	Trials    int
	// Answered counts trials that returned a result at all (possibly
	// partial); Correct counts trials whose result was the exact planted
	// minimum, per aggregation mode.
	SingleAnswered int
	SingleCorrect  int
	MultiAnswered  int
	MultiCorrect   int
	// AvgUnreachable and AvgRetransmits average the per-trial
	// unreachable-sensor count at answer time and the link-layer
	// retransmissions, across both aggregation modes.
	AvgUnreachable float64
	AvgRetransmits float64
}

// RunFaults executes the sweep.
func RunFaults(cfg FaultsConfig) ([]FaultsRow, error) {
	type faultsTrial struct {
		singleAnswered, singleCorrect bool
		multiAnswered, multiCorrect   bool
		unreachable                   int
		retransmits                   int64
	}
	rows := make([]FaultsRow, 0, len(cfg.CrashProbs)*len(cfg.BurstLoss))
	cell := 0
	for _, crash := range cfg.CrashProbs {
		for _, burst := range cfg.BurstLoss {
			spec := &faults.Spec{}
			if crash > 0 {
				spec.CrashProb = crash
				spec.RecoverProb = 0.05
			}
			if burst > 0 {
				spec.Burst = &faults.BurstSpec{EnterProb: 0.05, ExitProb: 0.2, LossBad: burst}
			}
			trials, err := RunTrials(subSeed(cfg.Seed, "faults", uint64(cell)),
				cfg.Trials, cfg.Workers,
				func(trial int, _ *crypto.Stream) (faultsTrial, error) {
					var tr faultsTrial
					env, err := newProtoEnv(cfg.N, denseProtoParams, cfg.Seed+uint64(trial*37+3))
					if err != nil {
						return tr, err
					}
					// Plant the minimum at the deepest sensor: its value
					// crosses the most hops, so it is the first casualty of
					// crash churn and burst loss on the way to the base.
					minHolder := farthestHonest(env, nil)
					for _, multipath := range []bool{false, true} {
						base := env.baseConfig(minHolder, 1)
						base.Multipath = multipath
						base.Faults = spec
						base.ARQ = &simnet.ARQConfig{}
						base.Seed = env.seed ^ uint64(trial)
						eng, err := core.NewEngine(base)
						if err != nil {
							return tr, err
						}
						out, err := eng.Run()
						if err != nil {
							return tr, err
						}
						// A result whose minimum is +Inf means no sensor value
						// reached the base at all — count it as unanswered, not
						// as an available (if wrong) aggregate.
						answered := out.Kind == core.OutcomeResult && !math.IsInf(out.Mins[0], 0)
						correct := answered && out.Mins[0] == 1
						if multipath {
							tr.multiAnswered, tr.multiCorrect = answered, correct
						} else {
							tr.singleAnswered, tr.singleCorrect = answered, correct
						}
						tr.unreachable += out.Unreachable
						tr.retransmits += out.Stats.Retransmits
					}
					return tr, nil
				})
			if err != nil {
				return nil, err
			}
			row := FaultsRow{CrashProb: crash, BurstLoss: burst, Trials: cfg.Trials}
			var unreachable, retransmits int64
			for _, tr := range trials {
				if tr.singleAnswered {
					row.SingleAnswered++
				}
				if tr.singleCorrect {
					row.SingleCorrect++
				}
				if tr.multiAnswered {
					row.MultiAnswered++
				}
				if tr.multiCorrect {
					row.MultiCorrect++
				}
				unreachable += int64(tr.unreachable)
				retransmits += tr.retransmits
			}
			denom := float64(2 * cfg.Trials)
			row.AvgUnreachable = float64(unreachable) / denom
			row.AvgRetransmits = float64(retransmits) / denom
			rows = append(rows, row)
			cell++
		}
	}
	return rows, nil
}

// FaultsTable renders the sweep.
func FaultsTable(rows []FaultsRow) *Table {
	t := &Table{
		Title:   "Graceful degradation: availability and exact-minimum rate under crash churn and burst loss (ARQ on)",
		Columns: []string{"crash_prob", "burst_loss", "trials", "single_answered", "single_correct", "multi_answered", "multi_correct", "avg_unreachable", "avg_retransmits"},
	}
	for _, r := range rows {
		t.Rows = append(t.Rows, []string{
			fmt.Sprintf("%.3f", r.CrashProb), f2(r.BurstLoss), d(r.Trials),
			d(r.SingleAnswered), d(r.SingleCorrect), d(r.MultiAnswered), d(r.MultiCorrect),
			f2(r.AvgUnreachable), f2(r.AvgRetransmits),
		})
	}
	return t
}
