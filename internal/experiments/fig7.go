package experiments

import (
	"math"

	"repro/internal/crypto"
	"repro/internal/keydist"
	"repro/internal/topology"
)

// Fig7Config parameterizes the Figure 7 reproduction: the average number
// of honest sensors mis-revoked under various thresholds theta, when the
// adversary exposes (and frames with) the union of the key rings of f
// malicious sensors.
type Fig7Config struct {
	// NetworkSizes are the sensor counts (the paper uses 1,000 and
	// 10,000).
	NetworkSizes []int
	// MaliciousCounts are the f values.
	MaliciousCounts []int
	// Thetas are the thresholds to sweep.
	Thetas []int
	// Trials is the number of independent deployments (the paper uses
	// 100).
	Trials int
	// Params is the key pre-distribution (the paper uses rings of 250
	// from a pool of 100,000).
	Params keydist.Params
	// Seed drives the simulation.
	Seed uint64
	// Workers caps trial parallelism; 0 uses GOMAXPROCS. Results are
	// identical for every worker count.
	Workers int
}

// DefaultFig7 returns the paper's configuration.
func DefaultFig7() Fig7Config {
	return Fig7Config{
		NetworkSizes:    []int{1000, 10000},
		MaliciousCounts: []int{1, 5, 10, 20},
		Thetas:          []int{1, 3, 5, 7, 10, 15, 20, 27, 35},
		Trials:          100,
		Params:          keydist.PaperParams(),
		Seed:            2011,
	}
}

// Fig7Row is one point of Figure 7.
type Fig7Row struct {
	N     int
	F     int
	Theta int
	// AvgMisRevoked is the average number of honest sensors whose ring
	// overlaps the adversary's combined key material in at least Theta
	// keys.
	AvgMisRevoked float64
}

// RunFig7 reproduces Figure 7. For each trial it draws a fresh
// deployment, picks f malicious sensors, pools their rings (the paper:
// "the adversary can use the edge keys held by different malicious
// sensors to frame honest sensors"), and counts honest sensors whose
// overlap with that pool reaches theta. All f values and thetas are
// evaluated on the same per-trial deployment with nested malicious sets,
// so series are directly comparable.
func RunFig7(cfg Fig7Config) ([]Fig7Row, error) {
	var rows []Fig7Row
	for _, n := range cfg.NetworkSizes {
		counts, err := RunTrials(subSeed(cfg.Seed, "fig7", uint64(n)),
			cfg.Trials, cfg.Workers,
			func(_ int, rng *crypto.Stream) ([]int64, error) {
				return fig7Trial(cfg, n, rng)
			})
		if err != nil {
			return nil, err
		}
		// sums[fIdx][thetaIdx] accumulates mis-revocation counts, merged
		// in trial order.
		sums := make([]int64, len(cfg.MaliciousCounts)*len(cfg.Thetas))
		for _, c := range counts {
			for i, v := range c {
				sums[i] += v
			}
		}
		for fIdx, f := range cfg.MaliciousCounts {
			for tIdx, theta := range cfg.Thetas {
				rows = append(rows, Fig7Row{
					N:             n,
					F:             f,
					Theta:         theta,
					AvgMisRevoked: float64(sums[fIdx*len(cfg.Thetas)+tIdx]) / float64(cfg.Trials),
				})
			}
		}
	}
	return rows, nil
}

// fig7Trial draws one deployment and counts, for every (f, theta) cell,
// the honest sensors whose ring overlaps the union of the first f
// malicious rings in at least theta keys. The malicious sets are nested
// (prefixes of one permutation), so instead of materializing a union set
// per f it computes, for every pool key, the smallest malicious-prefix
// length that covers it; a sensor's overlap at f is then the number of
// its ring keys covered by a prefix shorter than f. One pass over all
// rings replaces len(MaliciousCounts) union rebuilds.
func fig7Trial(cfg Fig7Config, n int, rng *crypto.Stream) ([]int64, error) {
	dep, err := keydist.NewDeployment(n, cfg.Params,
		crypto.KeyFromUint64(cfg.Seed^uint64(n)), rng.Fork([]byte("deployment")))
	if err != nil {
		return nil, err
	}
	perm := rng.Perm(n)
	maxF := 0
	for _, f := range cfg.MaliciousCounts {
		if f > maxF {
			maxF = f
		}
	}
	const unset = int32(math.MaxInt32)
	// minPrefix[key] = smallest i such that perm[i]'s ring holds key.
	minPrefix := make([]int32, cfg.Params.PoolSize)
	for i := range minPrefix {
		minPrefix[i] = unset
	}
	for i := maxF - 1; i >= 0; i-- {
		for _, idx := range dep.Ring(topology.NodeID(perm[i])) {
			minPrefix[idx] = int32(i)
		}
	}
	// permPos[id] = id's position in the permutation (only the first maxF
	// positions matter: they decide maliciousness per f).
	permPos := make([]int32, n)
	for i := range permPos {
		permPos[i] = unset
	}
	for i := 0; i < maxF; i++ {
		permPos[perm[i]] = int32(i)
	}
	counts := make([]int64, len(cfg.MaliciousCounts)*len(cfg.Thetas))
	overlap := make([]int, len(cfg.MaliciousCounts))
	for id := 0; id < n; id++ {
		for i := range overlap {
			overlap[i] = 0
		}
		for _, idx := range dep.Ring(topology.NodeID(id)) {
			p := minPrefix[idx]
			if p == unset {
				continue
			}
			for fIdx, f := range cfg.MaliciousCounts {
				if p < int32(f) {
					overlap[fIdx]++
				}
			}
		}
		for fIdx, f := range cfg.MaliciousCounts {
			if permPos[id] < int32(f) {
				continue // malicious at this coalition size
			}
			for tIdx, theta := range cfg.Thetas {
				if overlap[fIdx] >= theta {
					counts[fIdx*len(cfg.Thetas)+tIdx]++
				}
			}
		}
	}
	return counts, nil
}

// Fig7Table renders the rows as the paper's figure series.
func Fig7Table(rows []Fig7Row) *Table {
	t := &Table{
		Title:   "Figure 7: avg # of honest sensors mis-revoked vs threshold theta",
		Columns: []string{"n", "f", "theta", "avg_mis_revoked"},
	}
	for _, r := range rows {
		t.Rows = append(t.Rows, []string{d(r.N), d(r.F), d(r.Theta), f4(r.AvgMisRevoked)})
	}
	return t
}
