package experiments

import (
	"repro/internal/crypto"
	"repro/internal/keydist"
	"repro/internal/topology"
)

// Fig7Config parameterizes the Figure 7 reproduction: the average number
// of honest sensors mis-revoked under various thresholds theta, when the
// adversary exposes (and frames with) the union of the key rings of f
// malicious sensors.
type Fig7Config struct {
	// NetworkSizes are the sensor counts (the paper uses 1,000 and
	// 10,000).
	NetworkSizes []int
	// MaliciousCounts are the f values.
	MaliciousCounts []int
	// Thetas are the thresholds to sweep.
	Thetas []int
	// Trials is the number of independent deployments (the paper uses
	// 100).
	Trials int
	// Params is the key pre-distribution (the paper uses rings of 250
	// from a pool of 100,000).
	Params keydist.Params
	// Seed drives the simulation.
	Seed uint64
}

// DefaultFig7 returns the paper's configuration.
func DefaultFig7() Fig7Config {
	return Fig7Config{
		NetworkSizes:    []int{1000, 10000},
		MaliciousCounts: []int{1, 5, 10, 20},
		Thetas:          []int{1, 3, 5, 7, 10, 15, 20, 27, 35},
		Trials:          100,
		Params:          keydist.PaperParams(),
		Seed:            2011,
	}
}

// Fig7Row is one point of Figure 7.
type Fig7Row struct {
	N     int
	F     int
	Theta int
	// AvgMisRevoked is the average number of honest sensors whose ring
	// overlaps the adversary's combined key material in at least Theta
	// keys.
	AvgMisRevoked float64
}

// RunFig7 reproduces Figure 7. For each trial it draws a fresh
// deployment, picks f malicious sensors, pools their rings (the paper:
// "the adversary can use the edge keys held by different malicious
// sensors to frame honest sensors"), and counts honest sensors whose
// overlap with that pool reaches theta. All f values and thetas are
// evaluated on the same per-trial deployment with nested malicious sets,
// so series are directly comparable.
func RunFig7(cfg Fig7Config) ([]Fig7Row, error) {
	rng := crypto.NewStreamFromSeed(cfg.Seed)
	var rows []Fig7Row
	for _, n := range cfg.NetworkSizes {
		// sums[fIdx][thetaIdx] accumulates mis-revocation counts.
		sums := make([][]float64, len(cfg.MaliciousCounts))
		for i := range sums {
			sums[i] = make([]float64, len(cfg.Thetas))
		}
		for trial := 0; trial < cfg.Trials; trial++ {
			dep, err := keydist.NewDeployment(n, cfg.Params,
				crypto.KeyFromUint64(cfg.Seed^uint64(n)), rng.Fork([]byte("trial")))
			if err != nil {
				return nil, err
			}
			perm := rng.Perm(n)
			for fIdx, f := range cfg.MaliciousCounts {
				malicious := make([]topology.NodeID, f)
				isMalicious := make(map[topology.NodeID]bool, f)
				for i := 0; i < f; i++ {
					malicious[i] = topology.NodeID(perm[i])
					isMalicious[malicious[i]] = true
				}
				union := dep.UnionOfRings(malicious)
				for id := 0; id < n; id++ {
					nid := topology.NodeID(id)
					if isMalicious[nid] {
						continue
					}
					overlap := dep.OverlapWithUnion(nid, union)
					for tIdx, theta := range cfg.Thetas {
						if overlap >= theta {
							sums[fIdx][tIdx]++
						}
					}
				}
			}
		}
		for fIdx, f := range cfg.MaliciousCounts {
			for tIdx, theta := range cfg.Thetas {
				rows = append(rows, Fig7Row{
					N:             n,
					F:             f,
					Theta:         theta,
					AvgMisRevoked: sums[fIdx][tIdx] / float64(cfg.Trials),
				})
			}
		}
	}
	return rows, nil
}

// Fig7Table renders the rows as the paper's figure series.
func Fig7Table(rows []Fig7Row) *Table {
	t := &Table{
		Title:   "Figure 7: avg # of honest sensors mis-revoked vs threshold theta",
		Columns: []string{"n", "f", "theta", "avg_mis_revoked"},
	}
	for _, r := range rows {
		t.Rows = append(t.Rows, []string{d(r.N), d(r.F), d(r.Theta), f4(r.AvgMisRevoked)})
	}
	return t
}
