package experiments

import (
	"math"

	"repro/internal/crypto"
	"repro/internal/synopsis"
	"repro/internal/topology"
)

// Fig8Config parameterizes the Figure 8 reproduction: the relative error
// of converting a predicate COUNT to MIN queries over m exponential
// synopses.
type Fig8Config struct {
	// Synopses is m (the paper uses 100).
	Synopses int
	// Counts are the true predicate-count values to sweep.
	Counts []int
	// Trials per count value (the paper uses 200).
	Trials int
	// Unbiased switches to the (m-1)/sum estimator (ablation).
	Unbiased bool
	// Seed drives the per-trial nonces.
	Seed uint64
	// Workers caps trial parallelism; 0 uses GOMAXPROCS. Results are
	// identical for every worker count.
	Workers int
}

// DefaultFig8 returns the paper's configuration.
func DefaultFig8() Fig8Config {
	return Fig8Config{
		Synopses: 100,
		Counts:   []int{10, 30, 100, 300, 1000, 3000, 10000},
		Trials:   200,
		Seed:     2011,
	}
}

// Fig8Row is one point of Figure 8: the error distribution for one true
// count value.
type Fig8Row struct {
	Count   int
	Average float64
	P50     float64
	P90     float64
	P95     float64
	P99     float64
}

// RunFig8 reproduces Figure 8 by direct simulation of the synopsis
// scheme: per trial, every one of Count sensors derives its m
// deterministic Exp(1) synopses from a fresh query nonce; the estimator
// runs on the per-instance minima and the relative error is recorded.
func RunFig8(cfg Fig8Config) []Fig8Row {
	rows := make([]Fig8Row, 0, len(cfg.Counts))
	for _, count := range cfg.Counts {
		// The per-trial closure is a pure function of its pre-derived
		// stream, so the error below is impossible; RunTrials is still the
		// single scheduling path for every driver.
		errs, _ := RunTrials(subSeed(cfg.Seed, "fig8", uint64(count)),
			cfg.Trials, cfg.Workers,
			func(_ int, rng *crypto.Stream) (float64, error) {
				nonce := crypto.Uint64(rng.Uint64())
				// Track per-instance minima as raw 53-bit draws: the
				// draw-to-synopsis map is monotone, so the element-wise
				// minimum commutes with it and one conversion per instance
				// at the end replaces a logarithm per (sensor, instance)
				// pair. This sweep is the experiment's entire cost — m×Count
				// derivations per trial.
				g := synopsis.NewGenerator(nonce, 1)
				minU := make([]uint64, cfg.Synopses)
				for i := range minU {
					minU[i] = math.MaxUint64
				}
				for id := 1; id <= count; id++ {
					for i := range minU {
						if u := g.U53(topology.NodeID(id), i); u < minU[i] {
							minU[i] = u
						}
					}
				}
				mins := make([]float64, cfg.Synopses)
				for i, u := range minU {
					if u == math.MaxUint64 {
						mins[i] = synopsis.None()
					} else {
						mins[i] = g.ValueFromU53(u)
					}
				}
				est := synopsis.EstimateSum(mins)
				if cfg.Unbiased {
					est = synopsis.EstimateSumUnbiased(mins)
				}
				return synopsis.RelativeError(est, float64(count)), nil
			})
		rows = append(rows, Fig8Row{
			Count:   count,
			Average: mean(errs),
			P50:     percentile(errs, 50),
			P90:     percentile(errs, 90),
			P95:     percentile(errs, 95),
			P99:     percentile(errs, 99),
		})
	}
	return rows
}

// MSweepConfig parameterizes the synopsis-count ablation: how the
// COUNT->MIN approximation error scales with m, the knob behind the
// paper's m = Theta(eps^-2 log delta^-1) guarantee (Section VIII).
type MSweepConfig struct {
	// Count is the fixed true predicate count.
	Count int
	// Ms are the synopsis counts to sweep.
	Ms []int
	// Trials per m.
	Trials int
	Seed   uint64
	// Workers caps trial parallelism; 0 uses GOMAXPROCS.
	Workers int
}

// DefaultMSweep returns the default ablation.
func DefaultMSweep() MSweepConfig {
	return MSweepConfig{Count: 500, Ms: []int{25, 50, 100, 200, 400}, Trials: 200, Seed: 2011}
}

// MSweepRow is one synopsis count's error distribution.
type MSweepRow struct {
	M       int
	Average float64
	P90     float64
	// Bytes is the resulting aggregation-message size (24 bytes per
	// synopsis), the cost side of the tradeoff.
	Bytes int
}

// RunMSweep executes the ablation. The expected shape is the standard
// sketch behavior: error shrinks like 1/sqrt(m) while message size grows
// linearly in m.
func RunMSweep(cfg MSweepConfig) []MSweepRow {
	rows := make([]MSweepRow, 0, len(cfg.Ms))
	for _, m := range cfg.Ms {
		sub := RunFig8(Fig8Config{
			Synopses: m,
			Counts:   []int{cfg.Count},
			Trials:   cfg.Trials,
			Seed:     cfg.Seed + uint64(m),
			Workers:  cfg.Workers,
		})
		rows = append(rows, MSweepRow{
			M:       m,
			Average: sub[0].Average,
			P90:     sub[0].P90,
			Bytes:   24 * m,
		})
	}
	return rows
}

// MSweepTable renders the ablation.
func MSweepTable(rows []MSweepRow, count int) *Table {
	t := &Table{
		Title:   "Section VIII ablation: error vs synopsis count m (true count " + d(count) + ")",
		Columns: []string{"m", "avg_rel_err", "p90", "agg_msg_bytes"},
	}
	for _, r := range rows {
		t.Rows = append(t.Rows, []string{d(r.M), f4(r.Average), f4(r.P90), d(r.Bytes)})
	}
	return t
}

// Fig8Table renders the rows as the paper's figure series.
func Fig8Table(rows []Fig8Row, synopses int) *Table {
	t := &Table{
		Title:   "Figure 8: COUNT->MIN approximation error (" + d(synopses) + " synopses)",
		Columns: []string{"count", "avg_rel_err", "p50", "p90", "p95", "p99"},
	}
	for _, r := range rows {
		t.Rows = append(t.Rows, []string{
			d(r.Count), f4(r.Average), f4(r.P50), f4(r.P90), f4(r.P95), f4(r.P99),
		})
	}
	return t
}
