package experiments

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/faults"
	"repro/internal/simnet"
)

// The cross-engine golden contract: the scenario rows below were captured
// from the pre-refactor simulator (goroutine-per-slot fan-out with
// barriers) and checked in as CSV. The event-loop engine must reproduce
// every field byte-for-byte — including the faults+ARQ+MaxSlots schedule
// and the partial/degraded rows, whose RNG consumption is the most
// fragile part of the delivery pipeline. Floats are encoded with %x
// (hexadecimal floating point), which is exact, so a one-ulp drift in
// any answer or flooding-round column fails the test.
//
// Regenerate with `go test ./internal/experiments -run GoldenCSV
// -update-golden` — but only when a behavior change is intended and
// explained; the whole point of the file is that refactors do not get to
// touch it.
var updateGolden = flag.Bool("update-golden", false, "rewrite testdata golden CSVs from the current engine")

// goldenCSVSpecs are the pinned scenarios. They deliberately cover every
// delivery-pipeline branch: plain attacks on each topology shape,
// multipath, residual loss with choking, crash/churn faults with the ARQ
// and a slot deadline, and a burst+partition schedule that forces
// partial results.
func goldenCSVSpecs() []struct {
	name string
	cfg  ScenarioConfig
} {
	return []struct {
		name string
		cfg  ScenarioConfig
	}{
		{"geometric-min-drop", ScenarioConfig{
			N: 40, Topology: "geometric", Query: "min", Attack: "drop",
			Malicious: 2, Synopses: 100, Trials: 3, Seed: 7,
		}},
		{"grid-count-junk", ScenarioConfig{
			N: 36, Topology: "grid", Query: "count", Attack: "junk",
			Malicious: 1, Synopses: 40, Trials: 2, Seed: 13,
		}},
		{"line-min-multipath", ScenarioConfig{
			N: 30, Topology: "line", Query: "min", Attack: "none",
			Synopses: 100, Trials: 2, Seed: 11, Multipath: true,
		}},
		{"choke-sum-loss", ScenarioConfig{
			N: 40, Topology: "geometric", Query: "sum", Attack: "choke",
			Malicious: 2, Synopses: 30, LossRate: 0.1, Trials: 2, Seed: 17,
		}},
		{"faults-arq-deadline", ScenarioConfig{
			N: 30, Topology: "geometric", Query: "min", Attack: "none",
			Synopses: 100, Trials: 4, Seed: 41, MaxSlots: 400,
			Faults: &faults.Spec{CrashProb: 0.005, RecoverProb: 0.05, LinkDownProb: 0.01, LinkUpProb: 0.2},
			ARQ:    &simnet.ARQConfig{},
		}},
		{"burst-partition-partial", ScenarioConfig{
			N: 30, Topology: "geometric", Query: "min", Attack: "none",
			Synopses: 100, Trials: 3, Seed: 43, MaxSlots: 300,
			Faults: &faults.Spec{
				CrashProb: 0.01, RecoverProb: 0.02,
				Burst:     &faults.BurstSpec{EnterProb: 0.1, ExitProb: 0.2, LossBad: 0.7},
				Partition: &faults.PartitionSpec{FromSlot: 10, ToSlot: 200, Frac: 0.3},
			},
			ARQ: &simnet.ARQConfig{MaxRetries: 2},
		}},
	}
}

// scenarioRowsCSV renders rows with exact float encoding, one line per
// trial, prefixed by the scenario name.
func scenarioRowsCSV(name string, rows []ScenarioRow) string {
	var b strings.Builder
	for _, r := range rows {
		fmt.Fprintf(&b, "%s,%d,%s,%v,%x,%d,%x,%d,%d,%d,%d,%d,%v,%d,%d\n",
			name, r.Trial, r.Outcome, r.Answered, r.Answer, r.Slots,
			r.FloodingRounds, r.PredicateTests, r.RevokedKeys, r.RevokedNodes,
			r.TotalBytes, r.MaxNodeBytes, r.Partial, r.Unreachable, r.Retransmits)
	}
	return b.String()
}

const scenarioGoldenHeader = "name,trial,outcome,answered,answer,slots,flooding_rounds,predicate_tests,revoked_keys,revoked_nodes,total_bytes,max_node_bytes,partial,unreachable,retransmits\n"

func TestScenarioGoldenCSV(t *testing.T) {
	path := filepath.Join("testdata", "scenario_golden.csv")
	var got strings.Builder
	got.WriteString(scenarioGoldenHeader)
	sawPartial := false
	for _, spec := range goldenCSVSpecs() {
		rows, err := RunScenario(spec.cfg)
		if err != nil {
			t.Fatalf("%s: %v", spec.name, err)
		}
		for _, r := range rows {
			if r.Partial {
				sawPartial = true
			}
		}
		got.WriteString(scenarioRowsCSV(spec.name, rows))
	}
	// The golden set must actually exercise the degraded path; a spec
	// change that silently makes every trial complete would weaken the
	// contract without failing it.
	if !sawPartial {
		t.Fatalf("golden scenarios produced no partial/degraded row; adjust the fault specs")
	}
	compareGolden(t, path, got.String())
}

// TestFig8GoldenCSV pins the synopsis pipeline end to end: the
// per-instance minima and the estimator run over 2×12 trials of
// deterministic synopses, so any change to the hash layout, the
// PRG-to-exponential mapping, or the min-merge order shows up as a
// hex-float mismatch.
func TestFig8GoldenCSV(t *testing.T) {
	path := filepath.Join("testdata", "fig8_golden.csv")
	rows := RunFig8(Fig8Config{Synopses: 50, Counts: []int{10, 100}, Trials: 12, Seed: 22})
	var got strings.Builder
	got.WriteString("count,average,p50,p90,p95,p99\n")
	for _, r := range rows {
		fmt.Fprintf(&got, "%d,%x,%x,%x,%x,%x\n", r.Count, r.Average, r.P50, r.P90, r.P95, r.P99)
	}
	compareGolden(t, path, got.String())
}

func compareGolden(t *testing.T, path, got string) {
	t.Helper()
	if *updateGolden {
		if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, []byte(got), 0o644); err != nil {
			t.Fatal(err)
		}
		t.Logf("wrote %s (%d bytes)", path, len(got))
		return
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("read golden (regenerate with -update-golden): %v", err)
	}
	if string(want) != got {
		t.Fatalf("rows drifted from the checked-in golden CSV %s:\ngot:\n%s\nwant:\n%s", path, got, want)
	}
}
