// Golden equivalence for the result store: rows served from the
// persistent cache must be byte-identical (as canonical JSON) to rows
// freshly executed by the engine, including scenarios with a fault
// spec and the ARQ enabled. This is the determinism contract
// (determinism_test.go) extended across the JSON round-trip the store
// performs — if any row field serialized lossily, a cache hit would
// silently diverge from a cold run.
package experiments_test

import (
	"bytes"
	"encoding/json"
	"testing"

	"repro/internal/experiments"
	"repro/internal/faults"
	"repro/internal/simnet"
	"repro/internal/store"
)

func goldenSpecs() []experiments.ScenarioConfig {
	plain := experiments.DefaultScenario()
	plain.N = 30
	plain.Trials = 3
	plain.Seed = 41

	attacked := plain
	attacked.Attack = "choke"
	attacked.Theta = 7

	faulty := plain
	faulty.Attack = "drop"
	faulty.Malicious = 1
	faulty.LossRate = 0.05
	faulty.Faults = &faults.Spec{
		CrashProb: 0.005,
		Burst:     &faults.BurstSpec{EnterProb: 0.1, ExitProb: 0.3, LossBad: 0.6},
	}
	faulty.ARQ = &simnet.ARQConfig{MaxRetries: 2}

	return []experiments.ScenarioConfig{plain, attacked, faulty}
}

func TestStoreRowsGoldenEquivalence(t *testing.T) {
	dir := t.TempDir()
	st, err := store.Open(dir, store.Config{})
	if err != nil {
		t.Fatalf("store.Open: %v", err)
	}

	type golden struct {
		spec experiments.ScenarioConfig
		cold []byte
	}
	var goldens []golden
	for i, spec := range goldenSpecs() {
		spec.Normalize()
		rows, err := experiments.RunScenario(spec)
		if err != nil {
			t.Fatalf("spec %d: cold run: %v", i, err)
		}
		cold, err := json.Marshal(rows)
		if err != nil {
			t.Fatalf("spec %d: marshal: %v", i, err)
		}
		if err := st.PutScenario(spec, rows, store.Meta{Version: "golden"}); err != nil {
			t.Fatalf("spec %d: put: %v", i, err)
		}
		goldens = append(goldens, golden{spec, cold})
	}

	check := func(st *store.Store, phase string) {
		t.Helper()
		for i, g := range goldens {
			cached, ok, err := st.GetScenario(g.spec)
			if err != nil || !ok {
				t.Fatalf("%s: spec %d: get: ok=%v err=%v", phase, i, ok, err)
			}
			got, err := json.Marshal(cached)
			if err != nil {
				t.Fatalf("%s: spec %d: marshal cached: %v", phase, i, err)
			}
			if !bytes.Equal(got, g.cold) {
				t.Errorf("%s: spec %d: cached rows are not byte-identical to cold execution\ncold: %s\ncached: %s",
					phase, i, g.cold, got)
			}
		}
	}
	// Same handle: served from the in-memory cache.
	check(st, "warm")
	// Fresh handle: decoded from the journal on disk.
	if err := st.Close(); err != nil {
		t.Fatalf("close: %v", err)
	}
	st2, err := store.Open(dir, store.Config{})
	if err != nil {
		t.Fatalf("reopen: %v", err)
	}
	defer st2.Close()
	check(st2, "reopened")

	// And a re-executed run still matches the stored bytes — the
	// determinism the store's content addressing is built on.
	for i, g := range goldens {
		rows, err := experiments.RunScenario(g.spec)
		if err != nil {
			t.Fatalf("spec %d: rerun: %v", i, err)
		}
		again, _ := json.Marshal(rows)
		if !bytes.Equal(again, g.cold) {
			t.Errorf("spec %d: re-execution diverged from first execution", i)
		}
	}
}
