package experiments

import (
	"repro/internal/core"
	"repro/internal/crypto"
)

// LossConfig parameterizes the multi-path ablation of Section IV-D: how
// single-path and ring-based multi-path aggregation cope with residual
// radio loss. The paper adopts synopsis-diffusion-style multi-path
// aggregation precisely because it "helps to route around failed
// parent[s]"; this experiment quantifies the effect the design buys.
type LossConfig struct {
	// N is the network size.
	N int
	// LossRates to sweep.
	LossRates []float64
	// Trials per (rate, mode) cell.
	Trials int
	Seed   uint64
	// Workers caps trial parallelism; 0 uses GOMAXPROCS. Results are
	// identical for every worker count.
	Workers int
}

// DefaultLoss returns the default sweep.
func DefaultLoss() LossConfig {
	return LossConfig{
		N:         100,
		LossRates: []float64{0, 0.01, 0.03, 0.05, 0.1, 0.2},
		Trials:    15,
		Seed:      2011,
	}
}

// LossRow aggregates one loss rate.
type LossRow struct {
	LossRate float64
	// SingleCorrect and MultiCorrect count trials where the execution
	// returned the exact planted minimum under each aggregation mode.
	// With losses, a missing value manifests as a (false) veto and a
	// re-execution in practice; here the first execution's outcome is
	// scored.
	SingleCorrect int
	MultiCorrect  int
	Trials        int
}

// RunLoss executes the ablation.
func RunLoss(cfg LossConfig) ([]LossRow, error) {
	type lossTrial struct {
		singleCorrect bool
		multiCorrect  bool
	}
	rows := make([]LossRow, 0, len(cfg.LossRates))
	for rateIdx, rate := range cfg.LossRates {
		trials, err := RunTrials(subSeed(cfg.Seed, "loss", uint64(rateIdx)),
			cfg.Trials, cfg.Workers,
			func(trial int, _ *crypto.Stream) (lossTrial, error) {
				var tr lossTrial
				env, err := newProtoEnv(cfg.N, denseProtoParams, cfg.Seed+uint64(trial*31+1))
				if err != nil {
					return tr, err
				}
				// Plant the minimum at the deepest sensor: its value
				// crosses the most lossy hops, which is where multi-path
				// redundancy matters.
				minHolder := farthestHonest(env, nil)
				for _, multipath := range []bool{false, true} {
					base := env.baseConfig(minHolder, 1)
					base.Multipath = multipath
					base.LossRate = rate
					base.Seed = env.seed ^ uint64(trial)
					eng, err := core.NewEngine(base)
					if err != nil {
						return tr, err
					}
					out, err := eng.Run()
					if err != nil {
						return tr, err
					}
					correct := out.Kind == core.OutcomeResult && out.Mins[0] == 1
					if multipath {
						tr.multiCorrect = correct
					} else {
						tr.singleCorrect = correct
					}
				}
				return tr, nil
			})
		if err != nil {
			return nil, err
		}
		row := LossRow{LossRate: rate, Trials: cfg.Trials}
		for _, tr := range trials {
			if tr.singleCorrect {
				row.SingleCorrect++
			}
			if tr.multiCorrect {
				row.MultiCorrect++
			}
		}
		rows = append(rows, row)
	}
	return rows, nil
}

// LossTable renders the ablation.
func LossTable(rows []LossRow) *Table {
	t := &Table{
		Title:   "Section IV-D ablation: exact-minimum delivery under radio loss",
		Columns: []string{"loss_rate", "trials", "single_path_correct", "multi_path_correct"},
	}
	for _, r := range rows {
		t.Rows = append(t.Rows, []string{f2(r.LossRate), d(r.Trials), d(r.SingleCorrect), d(r.MultiCorrect)})
	}
	return t
}
