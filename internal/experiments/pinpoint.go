package experiments

import (
	"fmt"

	"repro/internal/adversary"
	"repro/internal/core"
	"repro/internal/crypto"
	"repro/internal/topology"
)

// PinpointConfig parameterizes the Theorem 6 measurement: cost and
// soundness of pinpointing under each attack strategy.
type PinpointConfig struct {
	// NetworkSizes to sweep.
	NetworkSizes []int
	// Trials per (size, strategy) cell; each trial picks fresh malicious
	// placement.
	Trials int
	Seed   uint64
	// Workers caps trial parallelism; 0 uses GOMAXPROCS. Results are
	// identical for every worker count.
	Workers int
}

// DefaultPinpoint returns the default sweep.
func DefaultPinpoint() PinpointConfig {
	return PinpointConfig{NetworkSizes: []int{50, 100, 200}, Trials: 10, Seed: 2011}
}

// PinpointRow aggregates one (n, strategy) cell.
type PinpointRow struct {
	N        int
	Strategy string
	// Triggered counts trials in which the attack actually corrupted the
	// execution (and so pinpointing ran).
	Triggered int
	// Sound counts triggered trials whose every revocation hit the
	// malicious coalition (Theorem 6 requires Sound == Triggered).
	Sound int
	// AvgTests and AvgRounds are the average pinpointing cost over
	// triggered trials (keyed predicate tests; flooding rounds).
	AvgTests  float64
	AvgRounds float64
	// AvgMaxNodeKB is the average maximum per-sensor communication in
	// kilobytes (Theorem 6's O(L d log n) bits).
	AvgMaxNodeKB float64
}

// RunPinpoint executes the sweep.
func RunPinpoint(cfg PinpointConfig) ([]PinpointRow, error) {
	type strat struct {
		name  string
		mk    func() core.Adversary
		place placement
	}
	strategies := []strat{
		// Droppers only bite when the minimum's aggregation path crosses
		// them, so they are placed upstream of the minimum holder; the
		// hider must itself hold the minimum it withholds; injectors and
		// chokers corrupt from anywhere.
		{"dropper", func() core.Adversary { return adversary.NewDropper(50) }, placeUpstream},
		{"hider", func() core.Adversary { return adversary.NewHider() }, placeOnMinimum},
		{"junk-injector", func() core.Adversary { return adversary.NewJunkInjector(-100) }, placeAnywhere},
		{"drop-and-choke", func() core.Adversary { return adversary.NewDropAndChoke(50) }, placeAnywhere},
		{"lying-dropper", func() core.Adversary {
			s := adversary.NewDropper(50)
			s.Answer = adversary.AnswerAdmit
			return s
		}, placeUpstream},
	}

	type pinpointTrial struct {
		triggered bool
		sound     bool
		tests     float64
		rounds    float64
		maxKB     float64
	}
	var rows []PinpointRow
	for _, n := range cfg.NetworkSizes {
		for stIdx, st := range strategies {
			trials, err := RunTrials(
				subSeed(cfg.Seed, "pinpoint-"+st.name, uint64(n)*64+uint64(stIdx)),
				cfg.Trials, cfg.Workers,
				func(trial int, rng *crypto.Stream) (pinpointTrial, error) {
					var tr pinpointTrial
					env, err := newProtoEnv(n, denseProtoParams, cfg.Seed+uint64(n*1000+trial))
					if err != nil {
						return tr, err
					}
					mal, minHolder, ok := place(env.graph, rng, st.place)
					if !ok {
						return tr, nil
					}
					base := env.baseConfig(minHolder, 1)
					base.Malicious = mal
					base.Adversary = st.mk()
					base.AdversaryFavored = true
					eng, err := core.NewEngine(base)
					if err != nil {
						return tr, err
					}
					out, err := eng.Run()
					if err != nil {
						return tr, fmt.Errorf("%s n=%d trial %d: %w", st.name, n, trial, err)
					}
					if out.Kind == core.OutcomeResult {
						return tr, nil
					}
					tr.triggered = true
					tr.sound = revokedSound(out, env, mal)
					tr.tests = float64(out.PredicateTests)
					tr.rounds = out.FloodingRounds
					tr.maxKB = float64(out.Stats.MaxNodeBytes()) / 1024
					return tr, nil
				})
			if err != nil {
				return nil, err
			}
			row := PinpointRow{N: n, Strategy: st.name}
			var tests, rounds, maxKB float64
			for _, tr := range trials {
				if !tr.triggered {
					continue
				}
				row.Triggered++
				if tr.sound {
					row.Sound++
				}
				tests += tr.tests
				rounds += tr.rounds
				maxKB += tr.maxKB
			}
			if row.Triggered > 0 {
				row.AvgTests = tests / float64(row.Triggered)
				row.AvgRounds = rounds / float64(row.Triggered)
				row.AvgMaxNodeKB = maxKB / float64(row.Triggered)
			}
			rows = append(rows, row)
		}
	}
	return rows, nil
}

// placement selects how the attacker relates to the planted minimum.
type placement int

const (
	placeAnywhere placement = iota
	placeUpstream
	placeOnMinimum
)

// place picks one malicious node (preserving honest connectivity) and the
// minimum holder per the placement mode.
func place(g *topology.Graph, rng *crypto.Stream, mode placement) (map[topology.NodeID]bool, topology.NodeID, bool) {
	n := g.NumNodes()
	switch mode {
	case placeUpstream:
		attacker, minHolder, ok := placeCampaignAttack(g, rng)
		if !ok {
			return nil, 0, false
		}
		return map[topology.NodeID]bool{attacker: true}, minHolder, true
	case placeOnMinimum:
		mal := pickMalicious(g, rng, 1)
		for id := range mal {
			return mal, id, true
		}
		return nil, 0, false
	default:
		mal := pickMalicious(g, rng, 1)
		minHolder := topology.NodeID(n - 1)
		if mal[minHolder] {
			minHolder = topology.NodeID(n - 2)
		}
		return mal, minHolder, len(mal) == 1
	}
}

// pickMalicious selects f malicious nodes that do not partition the
// honest subgraph.
func pickMalicious(g *topology.Graph, rng *crypto.Stream, f int) map[topology.NodeID]bool {
	n := g.NumNodes()
	mal := map[topology.NodeID]bool{}
	for attempts := 0; len(mal) < f && attempts < 20*f+40; attempts++ {
		cand := topology.NodeID(rng.Intn(n-1) + 1)
		if mal[cand] {
			continue
		}
		mal[cand] = true
		if !g.ConnectedExcluding(topology.BaseStation, mal) {
			delete(mal, cand)
		}
	}
	return mal
}

// revokedSound checks Theorem 6's soundness: everything revoked belongs
// to the malicious coalition.
func revokedSound(out *core.Outcome, env *protoEnv, malicious map[topology.NodeID]bool) bool {
	for _, k := range out.RevokedKeys {
		held := false
		for id := range malicious {
			if env.dep.Holds(id, k) {
				held = true
				break
			}
		}
		if !held {
			return false
		}
	}
	for _, id := range out.RevokedNodes {
		if !malicious[id] {
			return false
		}
	}
	return len(out.RevokedKeys) > 0 || len(out.RevokedNodes) > 0
}

// PinpointTable renders the sweep.
func PinpointTable(rows []PinpointRow) *Table {
	t := &Table{
		Title:   "Theorem 6: pinpointing cost and soundness per attack strategy",
		Columns: []string{"n", "strategy", "triggered", "sound", "avg_tests", "avg_rounds", "avg_max_node_KB"},
	}
	for _, r := range rows {
		t.Rows = append(t.Rows, []string{
			d(r.N), r.Strategy, d(r.Triggered), d(r.Sound),
			f2(r.AvgTests), f2(r.AvgRounds), f2(r.AvgMaxNodeKB),
		})
	}
	return t
}
