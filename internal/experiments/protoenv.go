package experiments

import (
	"fmt"
	"math"

	"repro/internal/core"
	"repro/internal/crypto"
	"repro/internal/keydist"
	"repro/internal/topology"
)

// protoEnv is a ready-to-run protocol environment: a connected random
// geometric deployment with matching key material and deterministic
// readings, shared by the network-level experiments.
type protoEnv struct {
	graph *topology.Graph
	dep   *keydist.Deployment
	seed  uint64
}

// connectivityRadius returns a radio radius giving an expected degree of
// about deg for n nodes on the unit square.
func connectivityRadius(n int, deg float64) float64 {
	return math.Sqrt(deg / (math.Pi * float64(n)))
}

func newProtoEnv(n int, params keydist.Params, seed uint64) (*protoEnv, error) {
	rng := crypto.NewStreamFromSeed(seed)
	g, _ := topology.RandomGeometric(n, connectivityRadius(n, 12), rng.Fork([]byte("topo")))
	dep, err := keydist.NewDeployment(n, params, crypto.KeyFromUint64(seed), rng.Fork([]byte("keys")))
	if err != nil {
		return nil, fmt.Errorf("experiment deployment: %w", err)
	}
	return &protoEnv{graph: g, dep: dep, seed: seed}, nil
}

// baseConfig returns a core.Config for this environment with readings
// 100+id and the given minimum planted at minHolder (0 plants none).
func (p *protoEnv) baseConfig(minHolder topology.NodeID, minValue float64) core.Config {
	return core.Config{
		Graph:      p.graph,
		Deployment: p.dep,
		Readings: func(id topology.NodeID, _ int) float64 {
			if id == topology.BaseStation {
				return core.Inf()
			}
			if id == minHolder {
				return minValue
			}
			return 100 + float64(id)
		},
		Seed: p.seed,
		// Experiments parallelize across trials, so each engine keeps its
		// per-slot fan-out sequential instead of oversubscribing the
		// machine with nested goroutines.
		Workers: 1,
	}
}

// denseProtoParams is the key pre-distribution used for protocol-level
// experiments: r = 3*sqrt(u) gives a key-share probability above 0.9999
// (Section III's birthday-paradox bound), so the secure graph tracks the
// radio graph and topology effects, not keying gaps, dominate the
// measurements.
var denseProtoParams = keydist.Params{PoolSize: 10000, RingSize: 300}
