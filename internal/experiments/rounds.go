package experiments

import (
	"repro/internal/baseline"
	"repro/internal/core"
	"repro/internal/crypto"
	"repro/internal/topology"
)

// RoundsConfig parameterizes the flooding-round comparison of Section I:
// VMAT answers in O(1) flooding rounds while the sampling-based protocol
// of Yu [29] needs Omega(log n) sequential rounds.
type RoundsConfig struct {
	NetworkSizes []int
	// Repeats is the set-sampling repeat budget per density level.
	Repeats int
	Seed    uint64
	// Workers caps parallelism across network sizes; 0 uses GOMAXPROCS.
	// Results are identical for every worker count.
	Workers int
}

// DefaultRounds returns the default sweep.
func DefaultRounds() RoundsConfig {
	return RoundsConfig{NetworkSizes: []int{50, 100, 200, 400, 800, 1600}, Repeats: 3, Seed: 2011}
}

// RoundsRow is one network size's comparison.
type RoundsRow struct {
	N int
	L int
	// VMATRounds is the happy-path VMAT execution cost in flooding
	// rounds (slots normalized by L).
	VMATRounds float64
	// SamplingRounds is the sequential flooding rounds of the
	// set-sampling estimator (two per keyed predicate test).
	SamplingRounds int
	// SamplingTests is the number of sequential tests behind it.
	SamplingTests int
}

// RunRounds executes the comparison.
func RunRounds(cfg RoundsConfig) ([]RoundsRow, error) {
	// One "trial" per network size: the sizes are independent runs, so
	// they fan out across workers like Monte-Carlo trials do.
	return RunTrials(subSeed(cfg.Seed, "rounds", 0),
		len(cfg.NetworkSizes), cfg.Workers,
		func(i int, _ *crypto.Stream) (RoundsRow, error) {
			n := cfg.NetworkSizes[i]
			env, err := newProtoEnv(n, denseProtoParams, cfg.Seed+uint64(n))
			if err != nil {
				return RoundsRow{}, err
			}
			eng, err := core.NewEngine(env.baseConfig(topology.NodeID(n-1), 1))
			if err != nil {
				return RoundsRow{}, err
			}
			out, err := eng.Run()
			if err != nil {
				return RoundsRow{}, err
			}
			ss := &baseline.SetSampling{Graph: env.graph, RepeatsPerLevel: cfg.Repeats, Seed: cfg.Seed}
			sres := ss.Run(func(id topology.NodeID) bool { return id != topology.BaseStation })
			return RoundsRow{
				N:              n,
				L:              eng.L(),
				VMATRounds:     out.FloodingRounds,
				SamplingRounds: sres.FloodingRounds,
				SamplingTests:  sres.Tests,
			}, nil
		})
}

// RoundsTable renders the comparison.
func RoundsTable(rows []RoundsRow) *Table {
	t := &Table{
		Title:   "Section I: flooding rounds per query, VMAT O(1) vs set-sampling Omega(log n)",
		Columns: []string{"n", "L", "vmat_rounds", "sampling_rounds", "sampling_tests"},
	}
	for _, r := range rows {
		t.Rows = append(t.Rows, []string{d(r.N), d(r.L), f2(r.VMATRounds), d(r.SamplingRounds), d(r.SamplingTests)})
	}
	return t
}
