//go:build linux

package experiments

import "syscall"

// peakRSSMB returns the process's peak resident set size in MiB (Linux
// reports ru_maxrss in KiB), or 0 if the syscall fails.
func peakRSSMB() float64 {
	var ru syscall.Rusage
	if err := syscall.Getrusage(syscall.RUSAGE_SELF, &ru); err != nil {
		return 0
	}
	return float64(ru.Maxrss) / 1024
}
