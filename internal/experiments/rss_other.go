//go:build !linux

package experiments

// peakRSSMB reports 0 on platforms without getrusage peak-RSS support;
// the scale table shows heap figures either way.
func peakRSSMB() float64 { return 0 }
