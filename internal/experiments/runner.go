package experiments

import (
	"encoding/binary"
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"

	"repro/internal/crypto"
)

// This file is the deterministic parallel trial-runner every experiment
// driver is built on. The Monte-Carlo shape shared by the drivers —
// independent trials whose statistics are merged — is embarrassingly
// parallel, but naive parallelisation breaks reproducibility: a shared
// RNG consumed by racing workers makes every run depend on scheduling.
//
// RunTrials restores bit-identical results for any worker count by
// splitting randomness from scheduling:
//
//  1. One child crypto.Stream per trial is pre-derived *sequentially* from
//     the seed via Stream.Fork keyed on the trial index, before any worker
//     starts. A trial's randomness is a pure function of (seed, index).
//  2. Trials are fanned across workers in any order; each writes its
//     result into its own slot.
//  3. Results are merged in trial order by the caller (or returned as an
//     index-ordered slice), so even floating-point accumulation — which is
//     not associative — happens in a fixed order.
//  4. Errors are collected per trial and the lowest-index error is
//     returned, so error propagation is deterministic too.

// resolveWorkers normalizes a worker-count knob: non-positive means "use
// every core" (GOMAXPROCS); the result never exceeds n, the number of
// work items.
func resolveWorkers(workers, n int) int {
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > n {
		workers = n
	}
	if workers < 1 {
		workers = 1
	}
	return workers
}

// subSeed derives an independent 64-bit seed for a labelled sub-experiment
// (one network size, one theta, one loss rate, ...). Hashing avoids the
// accidental seed collisions that ad-hoc XOR schemes invite when sweep
// indices overlap.
func subSeed(seed uint64, label string, idx uint64) uint64 {
	h := crypto.HashOf([]byte(label), crypto.Uint64(seed), crypto.Uint64(idx))
	return binary.BigEndian.Uint64(h[:8])
}

// RunTrials runs n independent trials of fn across the given number of
// workers (0 = GOMAXPROCS) and returns the results in trial order. Each
// trial receives its own pre-derived random stream; see the file comment
// for the determinism scheme. If any trial fails, the error of the
// lowest-index failing trial is returned.
func RunTrials[T any](seed uint64, n, workers int, fn func(trial int, rng *crypto.Stream) (T, error)) ([]T, error) {
	return RunTrialRange(seed, n, 0, n, workers, fn)
}

// RunTrialRange runs trials [start, end) of a total-trial experiment and
// returns their results in trial order (len = end-start, index 0 is
// trial start). The streams handed to fn are bit-identical to the ones
// RunTrials(seed, total, ...) would derive for the same indices: forks
// consume exactly one parent draw each, so the trials before start are
// skipped with one discarded Uint64 per trial — no hashing, no
// execution. This is what lets a scenario be split into trial-range
// shards that different machines execute independently while the
// concatenated rows stay bit-identical to a single-box run.
func RunTrialRange[T any](seed uint64, total, start, end, workers int, fn func(trial int, rng *crypto.Stream) (T, error)) ([]T, error) {
	if total <= 0 {
		return nil, nil
	}
	if start < 0 || end > total || start > end {
		return nil, fmt.Errorf("experiments: trial range [%d,%d) out of bounds for %d trials", start, end, total)
	}
	n := end - start
	if n == 0 {
		return nil, nil
	}
	parent := crypto.NewStreamFromSeed(seed)
	for i := 0; i < start; i++ {
		parent.Uint64()
	}
	streams := make([]*crypto.Stream, n)
	for i := range streams {
		streams[i] = parent.Fork([]byte("trial"), crypto.Uint64(uint64(start+i)))
	}
	results := make([]T, n)
	errs := make([]error, n)
	if w := resolveWorkers(workers, n); w == 1 {
		for i := 0; i < n; i++ {
			results[i], errs[i] = fn(start+i, streams[i])
		}
	} else {
		var next atomic.Int64
		var wg sync.WaitGroup
		for k := 0; k < w; k++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				for {
					i := int(next.Add(1)) - 1
					if i >= n {
						return
					}
					results[i], errs[i] = fn(start+i, streams[i])
				}
			}()
		}
		wg.Wait()
	}
	for i, err := range errs {
		if err != nil {
			return nil, fmt.Errorf("trial %d: %w", start+i, err)
		}
	}
	return results, nil
}
