package experiments

import (
	"fmt"
	"math"
	"runtime"
	"time"

	"repro/internal/core"
	"repro/internal/crypto"
	"repro/internal/keydist"
	"repro/internal/topology"
)

// ScaleConfig parameterizes the scale experiment: full VMAT MIN queries
// over grid deployments far beyond the paper's evaluation sizes, probing
// the simulator's capacity ceiling rather than protocol behavior. The
// event-loop simnet core makes this feasible — per-slot cost tracks
// traffic, not network size, and per-node state is flat arrays — where
// the goroutine-per-execution fan-out previously made million-node runs
// unreachable.
type ScaleConfig struct {
	// Sizes are the target node counts; each is rounded up to a full
	// grid square (the base station at one corner, the worst-case depth
	// position).
	Sizes []int
	// Seed drives the deployment and readings.
	Seed uint64
}

// DefaultScale sweeps 10k, 100k, and 1M sensors.
func DefaultScale() ScaleConfig {
	return ScaleConfig{Sizes: []int{10_000, 100_000, 1_000_000}, Seed: 2011}
}

// QuickScale is the CI-sized tier: 10k and 100k sensors.
func QuickScale() ScaleConfig {
	return ScaleConfig{Sizes: []int{10_000, 100_000}, Seed: 2011}
}

// scaleParams is the key pre-distribution for capacity runs: a small
// pool with r^2/u = 8 expected shared keys per neighbor pair, so the
// secure graph loses a negligible fraction of grid edges (P[no shared
// key] ~ e^-8) while ring storage stays ~0.5 GB at a million sensors.
// Capacity probing wants the protocol executed at full fidelity, not the
// paper's resilience parameterization (which at this scale would spend
// gigabytes on rings alone).
func scaleParams() keydist.Params { return keydist.Params{PoolSize: 512, RingSize: 64} }

// ScaleRow is one network size's capacity measurement.
type ScaleRow struct {
	// N is the actual node count (grid side squared); L the depth bound.
	N int
	L int
	// Outcome and Answer report the query result (the deterministic
	// minimum reading), witnessing that the full protocol ran.
	Outcome string
	Answer  float64
	// Slots and TotalMB are the execution's simulated cost.
	Slots   int
	TotalMB float64
	// BuildSeconds covers topology plus key pre-distribution;
	// RunSeconds the engine execution (announce through confirmation).
	BuildSeconds float64
	RunSeconds   float64
	// HeapMB is the live heap after the run; PeakRSSMB the process peak
	// resident set so far (monotone across rows — the largest size's row
	// is the meaningful one; 0 where the platform cannot report it).
	HeapMB    float64
	PeakRSSMB float64
}

// RunScale executes one full MIN query per network size and reports
// wall-clock and memory alongside the simulated cost. Unlike the other
// experiment drivers its rows are machine-dependent by design, so they
// are never content-cached or golden-pinned; the protocol outputs
// (outcome, answer, slots, bytes) are still deterministic per seed.
func RunScale(cfg ScaleConfig) ([]ScaleRow, error) {
	rows := make([]ScaleRow, 0, len(cfg.Sizes))
	for _, size := range cfg.Sizes {
		row, err := runScaleOne(cfg, size)
		if err != nil {
			return rows, fmt.Errorf("scale %d: %w", size, err)
		}
		rows = append(rows, row)
	}
	return rows, nil
}

func runScaleOne(cfg ScaleConfig, size int) (ScaleRow, error) {
	side := int(math.Ceil(math.Sqrt(float64(size))))
	n := side * side

	buildStart := time.Now()
	g := topology.Grid(side, side)
	rng := crypto.NewStreamFromSeed(subSeed(cfg.Seed, "scale", uint64(n)))
	dep, err := keydist.NewDeployment(n, scaleParams(), crypto.KeyFromUint64(cfg.Seed), rng)
	if err != nil {
		return ScaleRow{}, err
	}
	buildSeconds := time.Since(buildStart).Seconds()

	readings := func(id topology.NodeID, _ int) float64 {
		// A fixed multiplicative hash spreads readings deterministically;
		// the query's answer is the minimum over all sensors.
		return float64(1 + (uint64(id)*2654435761)%1_000_000)
	}
	runStart := time.Now()
	eng, err := core.NewEngine(core.Config{
		Graph:      g,
		Deployment: dep,
		Readings:   readings,
		Seed:       subSeed(cfg.Seed, "scale-query", uint64(n)),
		Workers:    1,
	})
	if err != nil {
		return ScaleRow{}, err
	}
	out, err := eng.Run()
	if err != nil {
		return ScaleRow{}, err
	}
	runSeconds := time.Since(runStart).Seconds()

	answer := math.NaN()
	if len(out.Mins) > 0 {
		answer = out.Mins[0]
	}
	var ms runtime.MemStats
	runtime.ReadMemStats(&ms)
	return ScaleRow{
		N:            n,
		L:            eng.L(),
		Outcome:      out.Kind.String(),
		Answer:       answer,
		Slots:        out.Slots,
		TotalMB:      float64(out.Stats.TotalBytes()) / (1 << 20),
		BuildSeconds: buildSeconds,
		RunSeconds:   runSeconds,
		HeapMB:       float64(ms.HeapAlloc) / (1 << 20),
		PeakRSSMB:    peakRSSMB(),
	}, nil
}

// ScaleTable renders the capacity sweep.
func ScaleTable(rows []ScaleRow) *Table {
	t := &Table{
		Title: "Scale: full MIN query on grid deployments (event-loop simnet core)",
		Columns: []string{
			"n", "L", "outcome", "answer", "slots", "sim_traffic_mb",
			"build_s", "run_s", "heap_mb", "peak_rss_mb",
		},
	}
	for _, r := range rows {
		t.Rows = append(t.Rows, []string{
			d(r.N), d(r.L), r.Outcome, f4(r.Answer), d(r.Slots), f4(r.TotalMB),
			f4(r.BuildSeconds), f4(r.RunSeconds), f4(r.HeapMB), f4(r.PeakRSSMB),
		})
	}
	return t
}
