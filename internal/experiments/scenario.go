package experiments

import (
	"context"
	"fmt"
	"math"

	"repro/internal/adversary"
	"repro/internal/core"
	"repro/internal/crypto"
	"repro/internal/faults"
	"repro/internal/keydist"
	"repro/internal/metrics"
	"repro/internal/simnet"
	"repro/internal/topology"
)

// ScenarioConfig is the service-shaped workload: the vmat-sim scenario
// (topology, query, attack) run as Trials independent executions through
// the deterministic trial-runner. It is the job spec cmd/vmat-server
// accepts over HTTP and the workload `vmat-bench -exp scenario` prints,
// so both front ends produce bit-identical rows for the same seed and
// any worker count.
type ScenarioConfig struct {
	// N is the node count; node 0 is the base station.
	N int `json:"n"`
	// Topology is geometric, grid, or line.
	Topology string `json:"topology"`
	// Query is min, count, sum, or average.
	Query string `json:"query"`
	// Attack is none, drop, hide, junk, choke, drop-choke, or mute.
	Attack string `json:"attack"`
	// Malicious is the number of compromised sensors (ignored for
	// Attack "none").
	Malicious int `json:"malicious"`
	// Multipath enables ring-based multi-path aggregation.
	Multipath bool `json:"multipath"`
	// LossRate drops each delivered message with this probability.
	LossRate float64 `json:"loss_rate"`
	// Synopses is the instance count for count/sum/average (default 100).
	Synopses int `json:"synopses"`
	// Theta is the whole-sensor revocation threshold; 0 auto-calibrates
	// via keydist.SuggestTheta.
	Theta int `json:"theta"`
	// Trials is the number of independent executions.
	Trials int `json:"trials"`
	// Seed drives the whole scenario deterministically.
	Seed uint64 `json:"seed"`
	// Workers caps trial parallelism; 0 uses GOMAXPROCS. Rows are
	// identical for every worker count.
	Workers int `json:"workers"`
	// Faults, when present and non-zero, injects a deterministic fault
	// schedule (crashes, link churn, bursty loss, partitions) into every
	// trial; degraded trials report partial/unreachable/retransmit
	// columns. Omitted or zero keeps fault-free behavior bit-identical.
	Faults *faults.Spec `json:"faults,omitempty"`
	// ARQ, when present, enables the simnet link-layer ARQ for every
	// trial (zero-valued fields take the documented defaults).
	ARQ *simnet.ARQConfig `json:"arq,omitempty"`
	// MaxSlots is the per-execution slot deadline; 0 derives a default
	// when faults or the ARQ are configured (see core.Config.MaxSlots).
	MaxSlots int `json:"max_slots,omitempty"`

	// Context, when non-nil, cancels the run: each trial checks it
	// before starting and the run returns the context's error. Used by
	// the job service's DELETE endpoint.
	Context context.Context `json:"-"`
	// Trace, when non-nil, receives every engine event of every trial,
	// tagged with the trial index. Trials run concurrently, so the
	// callback must be safe for concurrent use.
	Trace func(trial int, ev core.Event) `json:"-"`
	// Metrics, when non-nil, receives per-execution engine counters.
	Metrics *metrics.Registry `json:"-"`
}

// DefaultScenario returns a small attacked deployment: the drop attack
// of Section III on a geometric network, MIN query, 20 trials.
func DefaultScenario() ScenarioConfig {
	return ScenarioConfig{
		N:         60,
		Topology:  "geometric",
		Query:     "min",
		Attack:    "drop",
		Malicious: 2,
		Synopses:  100,
		Trials:    20,
		Seed:      2011,
	}
}

// scenarioTopologies and scenarioQueries/scenarioAttacks are the
// accepted enum values, shared with Validate's error messages.
var (
	scenarioTopologies = []string{"geometric", "grid", "line"}
	scenarioQueries    = []string{"min", "count", "sum", "average"}
	scenarioAttacks    = []string{"none", "drop", "hide", "junk", "choke", "drop-choke", "mute"}
)

func oneOf(v string, allowed []string) bool {
	for _, a := range allowed {
		if v == a {
			return true
		}
	}
	return false
}

// Normalize fills defaulted fields in place (empty topology/query/attack
// strings, zero synopsis count).
func (c *ScenarioConfig) Normalize() {
	if c.Topology == "" {
		c.Topology = "geometric"
	}
	if c.Query == "" {
		c.Query = "min"
	}
	if c.Attack == "" {
		c.Attack = "none"
	}
	if c.Synopses == 0 {
		c.Synopses = 100
	}
	if c.Attack == "none" {
		c.Malicious = 0
	}
}

// Validate reports the first problem with the scenario, or nil. It does
// not normalize; call Normalize first when accepting external specs.
func (c *ScenarioConfig) Validate() error {
	if c.N < 2 {
		return fmt.Errorf("scenario: need at least 2 nodes, got %d", c.N)
	}
	if c.N > 100_000 {
		return fmt.Errorf("scenario: n %d exceeds the 100000-node limit", c.N)
	}
	if !oneOf(c.Topology, scenarioTopologies) {
		return fmt.Errorf("scenario: unknown topology %q (want one of %v)", c.Topology, scenarioTopologies)
	}
	if !oneOf(c.Query, scenarioQueries) {
		return fmt.Errorf("scenario: unknown query %q (want one of %v)", c.Query, scenarioQueries)
	}
	if !oneOf(c.Attack, scenarioAttacks) {
		return fmt.Errorf("scenario: unknown attack %q (want one of %v)", c.Attack, scenarioAttacks)
	}
	if c.Attack != "none" && (c.Malicious < 1 || c.Malicious >= c.N) {
		return fmt.Errorf("scenario: malicious count %d out of range [1, n)", c.Malicious)
	}
	if c.LossRate < 0 || c.LossRate >= 1 {
		return fmt.Errorf("scenario: loss rate %g out of range [0, 1)", c.LossRate)
	}
	if c.Synopses < 1 || c.Synopses > 10_000 {
		return fmt.Errorf("scenario: synopsis count %d out of range [1, 10000]", c.Synopses)
	}
	if c.Theta < 0 {
		return fmt.Errorf("scenario: negative theta %d", c.Theta)
	}
	if c.Trials < 1 || c.Trials > 100_000 {
		return fmt.Errorf("scenario: trial count %d out of range [1, 100000]", c.Trials)
	}
	if err := c.Faults.Validate(c.N); err != nil {
		return fmt.Errorf("scenario: %w", err)
	}
	if err := c.ARQ.Validate(); err != nil {
		return fmt.Errorf("scenario: %w", err)
	}
	if c.MaxSlots < 0 {
		return fmt.Errorf("scenario: negative max_slots %d", c.MaxSlots)
	}
	return nil
}

// ScenarioRow is one trial's result. Every field is JSON-safe (no NaN or
// Inf): Answer is zero when Answered is false.
type ScenarioRow struct {
	Trial          int     `json:"trial"`
	Outcome        string  `json:"outcome"`
	Answered       bool    `json:"answered"`
	Answer         float64 `json:"answer"`
	Slots          int     `json:"slots"`
	FloodingRounds float64 `json:"flooding_rounds"`
	PredicateTests int     `json:"predicate_tests"`
	RevokedKeys    int     `json:"revoked_keys"`
	RevokedNodes   int     `json:"revoked_nodes"`
	TotalBytes     int64   `json:"total_bytes"`
	MaxNodeBytes   int64   `json:"max_node_bytes"`
	// Degradation columns, all zero on fault-free scenarios (and then
	// omitted from JSON, keeping pre-fault job output byte-identical).
	Partial     bool  `json:"partial,omitempty"`
	Unreachable int   `json:"unreachable,omitempty"`
	Retransmits int64 `json:"retransmits,omitempty"`
}

// RunScenario executes the scenario's trials through RunTrials and
// returns per-trial rows in trial order. Rows are a pure function of the
// config's scenario fields for any Workers value.
func RunScenario(cfg ScenarioConfig) ([]ScenarioRow, error) {
	cfg.Normalize()
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	return RunTrials(subSeed(cfg.Seed, "scenario", uint64(cfg.N)),
		cfg.Trials, cfg.Workers,
		func(trial int, rng *crypto.Stream) (ScenarioRow, error) {
			if cfg.Context != nil && cfg.Context.Err() != nil {
				return ScenarioRow{}, cfg.Context.Err()
			}
			return scenarioTrial(cfg, trial, rng)
		})
}

// RunScenarioRange executes trials [start, end) of the scenario and
// returns their rows in trial order (rows[0].Trial == start). The rows
// are bit-identical to the corresponding slice of a full RunScenario:
// the per-trial streams come from the same fork sequence (see
// RunTrialRange), and each row carries its global trial index. This is
// the execution primitive behind internal/shard — a fleet runs disjoint
// ranges and the coordinator concatenates them back in range order.
func RunScenarioRange(cfg ScenarioConfig, start, end int) ([]ScenarioRow, error) {
	cfg.Normalize()
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	return RunTrialRange(subSeed(cfg.Seed, "scenario", uint64(cfg.N)),
		cfg.Trials, start, end, cfg.Workers,
		func(trial int, rng *crypto.Stream) (ScenarioRow, error) {
			if cfg.Context != nil && cfg.Context.Err() != nil {
				return ScenarioRow{}, cfg.Context.Err()
			}
			return scenarioTrial(cfg, trial, rng)
		})
}

// scenarioTrial runs one independent execution: fresh topology, key
// material, and malicious set, all drawn from the trial's private
// stream.
func scenarioTrial(cfg ScenarioConfig, trial int, rng *crypto.Stream) (ScenarioRow, error) {
	graph, err := scenarioTopology(cfg.Topology, cfg.N, rng)
	if err != nil {
		return ScenarioRow{}, err
	}
	dep, err := keydist.NewDeployment(cfg.N, denseProtoParams,
		crypto.KeyFromUint64(rng.Uint64()), rng.Fork([]byte("keys")))
	if err != nil {
		return ScenarioRow{}, err
	}

	// Malicious placement follows vmat-sim: rejection-sample compromised
	// sensors that keep the honest component connected, so the attack
	// tests the protocol rather than a partitioned network.
	mal := map[topology.NodeID]bool{}
	if cfg.Attack != "none" {
		for attempts := 0; len(mal) < cfg.Malicious && attempts < 20*cfg.Malicious+60; attempts++ {
			cand := topology.NodeID(rng.Intn(cfg.N-1) + 1)
			if mal[cand] {
				continue
			}
			mal[cand] = true
			if !graph.ConnectedExcluding(topology.BaseStation, mal) {
				delete(mal, cand)
			}
		}
	}
	adv, err := scenarioAttack(cfg.Attack)
	if err != nil {
		return ScenarioRow{}, err
	}
	theta := cfg.Theta
	if theta == 0 {
		theta = keydist.SuggestTheta(denseProtoParams, maxOf(len(mal), 1), cfg.N, 0.05)
	}

	ecfg := core.Config{
		Graph:      graph,
		Deployment: dep,
		Registry:   keydist.NewRegistry(dep, theta),
		Malicious:  mal,
		Adversary:  adv,
		Multipath:  cfg.Multipath,
		LossRate:   cfg.LossRate,
		Seed:       rng.Uint64(),
		Metrics:    cfg.Metrics,
		Readings: func(id topology.NodeID, _ int) float64 {
			if id == topology.BaseStation {
				return core.Inf()
			}
			return 100 + float64(id)
		},
		AdversaryFavored: cfg.Attack != "none",
		Faults:           cfg.Faults,
		ARQ:              cfg.ARQ,
		MaxSlots:         cfg.MaxSlots,
		// Trials parallelize across RunTrials workers; keep each engine's
		// per-slot fan-out on its own worker.
		Workers: 1,
	}
	if cfg.Trace != nil {
		trace := cfg.Trace
		ecfg.Trace = func(ev core.Event) { trace(trial, ev) }
	}

	switch cfg.Query {
	case "min":
		eng, err := core.NewEngine(ecfg)
		if err != nil {
			return ScenarioRow{}, err
		}
		out, err := eng.Run()
		if err != nil {
			return ScenarioRow{}, err
		}
		row := newScenarioRow(trial, out)
		// Under fault injection the base station can announce a minimum of
		// +Inf — every sensor value was lost in transit. That is not a
		// usable answer, and a non-finite float would make the whole row
		// slice unmarshalable (json.Marshal rejects Inf), turning a server
		// job view into an empty 200.
		if out.Kind == core.OutcomeResult && !math.IsInf(out.Mins[0], 0) && !math.IsNaN(out.Mins[0]) {
			row.Answered = true
			row.Answer = out.Mins[0]
		}
		return row, nil
	case "count":
		res, err := core.RunCount(ecfg, func(id topology.NodeID) bool { return id%2 == 0 }, cfg.Synopses)
		if err != nil {
			return ScenarioRow{}, err
		}
		return aggregateRow(trial, res), nil
	case "sum":
		res, err := core.RunSum(ecfg, scenarioSumReading, scenarioSumDomain, cfg.Synopses)
		if err != nil {
			return ScenarioRow{}, err
		}
		return aggregateRow(trial, res), nil
	case "average":
		res, err := core.RunAverageCombined(ecfg, scenarioAvgReading, scenarioAvgDomain, cfg.Synopses)
		if err != nil {
			return ScenarioRow{}, err
		}
		row := newScenarioRow(trial, res.Sum.Outcome)
		if !math.IsNaN(res.Estimate) && !math.IsInf(res.Estimate, 0) {
			row.Answered = true
			row.Answer = res.Estimate
		}
		return row, nil
	default:
		return ScenarioRow{}, fmt.Errorf("scenario: unknown query %q", cfg.Query)
	}
}

// The deterministic readings of the sum/average queries, shared with
// vmat-sim's demo workload.
var (
	scenarioSumDomain = []int64{1, 2, 3, 4, 5, 6, 7, 8, 9, 10}
	scenarioAvgDomain = []int64{1, 2, 3, 4, 5}
)

func scenarioSumReading(id topology.NodeID) int64 {
	if id == topology.BaseStation {
		return 0
	}
	return int64(id%10) + 1
}

func scenarioAvgReading(id topology.NodeID) int64 {
	if id == topology.BaseStation {
		return 0
	}
	return int64(id%5) + 1
}

func newScenarioRow(trial int, out *core.Outcome) ScenarioRow {
	return ScenarioRow{
		Trial:          trial,
		Outcome:        out.Kind.String(),
		Slots:          out.Slots,
		FloodingRounds: out.FloodingRounds,
		PredicateTests: out.PredicateTests,
		RevokedKeys:    len(out.RevokedKeys),
		RevokedNodes:   len(out.RevokedNodes),
		TotalBytes:     out.Stats.TotalBytes(),
		MaxNodeBytes:   out.Stats.MaxNodeBytes(),
		Partial:        out.Partial,
		Unreachable:    out.Unreachable,
		Retransmits:    out.Stats.Retransmits,
	}
}

func aggregateRow(trial int, res *core.AggregateResult) ScenarioRow {
	row := newScenarioRow(trial, res.Outcome)
	if res.Answered() && !math.IsNaN(res.Estimate) && !math.IsInf(res.Estimate, 0) {
		row.Answered = true
		row.Answer = res.Estimate
	}
	return row
}

func scenarioTopology(kind string, n int, rng *crypto.Stream) (*topology.Graph, error) {
	switch kind {
	case "geometric":
		g, _ := topology.RandomGeometric(n, connectivityRadius(n, 12), rng.Fork([]byte("topo")))
		return g, nil
	case "grid":
		side := 1
		for side*side < n {
			side++
		}
		return topology.Grid(side, (n+side-1)/side), nil
	case "line":
		return topology.Line(n), nil
	default:
		return nil, fmt.Errorf("scenario: unknown topology %q", kind)
	}
}

func scenarioAttack(name string) (core.Adversary, error) {
	switch name {
	case "none":
		return core.HonestAdversary{}, nil
	case "drop":
		return adversary.NewDropper(1000), nil
	case "hide":
		return adversary.NewHider(), nil
	case "junk":
		return adversary.NewJunkInjector(-1e6), nil
	case "choke":
		return adversary.NewChoker(), nil
	case "drop-choke":
		return adversary.NewDropAndChoke(1000), nil
	case "mute":
		return adversary.NewMute(), nil
	default:
		return nil, fmt.Errorf("scenario: unknown attack %q", name)
	}
}

func maxOf(a, b int) int {
	if a > b {
		return a
	}
	return b
}

// ScenarioTable renders the rows as vmat-bench prints them.
func ScenarioTable(cfg ScenarioConfig, rows []ScenarioRow) *Table {
	t := &Table{
		Title: fmt.Sprintf("Scenario: n=%d %s %s query, attack=%s x%d, %d trials, seed %d",
			cfg.N, cfg.Topology, cfg.Query, cfg.Attack, cfg.Malicious, cfg.Trials, cfg.Seed),
		Columns: []string{"trial", "outcome", "answered", "answer", "slots", "rounds", "tests", "rev_keys", "rev_nodes", "total_bytes"},
	}
	for _, r := range rows {
		t.Rows = append(t.Rows, []string{
			d(r.Trial), r.Outcome, fmt.Sprintf("%v", r.Answered), f2(r.Answer),
			d(r.Slots), f2(r.FloodingRounds), d(r.PredicateTests),
			d(r.RevokedKeys), d(r.RevokedNodes), fmt.Sprintf("%d", r.TotalBytes),
		})
	}
	return t
}
