package experiments

import (
	"encoding/json"
	"reflect"
	"testing"

	"repro/internal/crypto"
)

// The shard fabric's whole correctness story rests on one property:
// running trials [start, end) in isolation yields exactly the rows a
// full run produces for those indices. These tests pin it at both the
// runner and the scenario level, byte-for-byte.

func TestRunTrialRangeMatchesFullRun(t *testing.T) {
	const total = 17
	fn := func(trial int, rng *crypto.Stream) (uint64, error) {
		// Mix the trial index with several draws so any stream or index
		// drift changes the value.
		return uint64(trial)*1e9 + rng.Uint64()%1e9 ^ rng.Uint64(), nil
	}
	full, err := RunTrials(uint64(42), total, 3, fn)
	if err != nil {
		t.Fatal(err)
	}
	for _, split := range [][]int{
		{0, total},
		{0, 1, total},
		{0, 5, 10, 15, total},
		{0, 4, 8, 12, 16, total},
	} {
		var got []uint64
		for i := 0; i+1 < len(split); i++ {
			part, err := RunTrialRange(uint64(42), total, split[i], split[i+1], 2, fn)
			if err != nil {
				t.Fatal(err)
			}
			got = append(got, part...)
		}
		if !reflect.DeepEqual(got, full) {
			t.Fatalf("split %v: concatenated ranges differ from full run", split)
		}
	}
}

func TestRunTrialRangeRejectsBadRanges(t *testing.T) {
	fn := func(trial int, rng *crypto.Stream) (int, error) { return trial, nil }
	for _, bad := range [][2]int{{-1, 3}, {0, 11}, {7, 3}} {
		if _, err := RunTrialRange(1, 10, bad[0], bad[1], 1, fn); err == nil {
			t.Fatalf("range [%d,%d) of 10: want error", bad[0], bad[1])
		}
	}
	if rows, err := RunTrialRange(1, 10, 4, 4, 1, fn); err != nil || rows != nil {
		t.Fatalf("empty range: got (%v, %v), want (nil, nil)", rows, err)
	}
}

func TestRunScenarioRangeBitIdenticalToFullScenario(t *testing.T) {
	cfg := ScenarioConfig{
		N: 24, Topology: "line", Query: "min", Attack: "none",
		Trials: 9, Seed: 7, Workers: 2,
	}
	full, err := RunScenario(cfg)
	if err != nil {
		t.Fatal(err)
	}
	want, err := json.Marshal(full)
	if err != nil {
		t.Fatal(err)
	}
	// An uneven partition, including a single-trial shard.
	var merged []ScenarioRow
	for _, r := range [][2]int{{0, 4}, {4, 5}, {5, 9}} {
		part, err := RunScenarioRange(cfg, r[0], r[1])
		if err != nil {
			t.Fatal(err)
		}
		if len(part) != r[1]-r[0] {
			t.Fatalf("range [%d,%d): got %d rows", r[0], r[1], len(part))
		}
		for i, row := range part {
			if row.Trial != r[0]+i {
				t.Fatalf("range [%d,%d) row %d: Trial=%d, want global index %d", r[0], r[1], i, row.Trial, r[0]+i)
			}
		}
		merged = append(merged, part...)
	}
	got, err := json.Marshal(merged)
	if err != nil {
		t.Fatal(err)
	}
	if string(got) != string(want) {
		t.Fatal("merged shard rows are not bit-identical to the full scenario")
	}
}

func TestRunScenarioRangeValidates(t *testing.T) {
	cfg := ScenarioConfig{N: 24, Trials: 4, Seed: 1}
	if _, err := RunScenarioRange(cfg, 2, 9); err == nil {
		t.Fatal("out-of-bounds range: want error")
	}
	bad := cfg
	bad.Query = "median" // not a supported aggregate
	if _, err := RunScenarioRange(bad, 0, 2); err == nil {
		t.Fatal("invalid spec: want validation error")
	}
}
