package experiments

import (
	"context"
	"encoding/json"
	"errors"
	"reflect"
	"sync"
	"testing"

	"repro/internal/core"
	"repro/internal/faults"
	"repro/internal/simnet"
)

// TestScenarioDeterministicAcrossWorkers is the serving layer's parity
// contract: the rows the HTTP API returns must be bit-identical to the
// CLI's for any worker count.
func TestScenarioDeterministicAcrossWorkers(t *testing.T) {
	cfg := DefaultScenario()
	cfg.N = 40
	cfg.Trials = 6
	base, err := RunScenario(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(base) != cfg.Trials {
		t.Fatalf("got %d rows, want %d", len(base), cfg.Trials)
	}
	for _, workers := range []int{1, 2, 3, 8} {
		c := cfg
		c.Workers = workers
		rows, err := RunScenario(c)
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(rows, base) {
			t.Fatalf("workers=%d rows differ from workers=0", workers)
		}
	}
}

func TestScenarioQueries(t *testing.T) {
	for _, query := range []string{"min", "count", "sum", "average"} {
		cfg := ScenarioConfig{N: 30, Query: query, Synopses: 50, Trials: 2, Seed: 5}
		rows, err := RunScenario(cfg)
		if err != nil {
			t.Fatalf("%s: %v", query, err)
		}
		for _, r := range rows {
			if r.Outcome != core.OutcomeResult.String() {
				t.Fatalf("%s trial %d: outcome %s, want result", query, r.Trial, r.Outcome)
			}
			if !r.Answered || r.Answer <= 0 {
				t.Fatalf("%s trial %d: unanswered honest run (answer=%g)", query, r.Trial, r.Answer)
			}
		}
	}
}

// TestScenarioRowsAlwaysJSONSafe: under heavy burst loss the base
// station can announce a minimum of +Inf (no sensor value survived the
// trip), and json.Marshal rejects non-finite floats — which used to turn
// a server job view into an empty 200 body. This seed reproduces the
// all-values-lost trial; the row must come back unanswered and the slice
// must marshal.
func TestScenarioRowsAlwaysJSONSafe(t *testing.T) {
	rows, err := RunScenario(ScenarioConfig{
		N: 40, Topology: "geometric", Query: "min", Attack: "none",
		Trials: 3, Seed: 19,
		Faults: &faults.Spec{Burst: &faults.BurstSpec{EnterProb: 0.1, ExitProb: 0.2, LossBad: 0.5}},
		ARQ:    &simnet.ARQConfig{},
	})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := json.Marshal(rows); err != nil {
		t.Fatalf("fault rows not JSON-safe: %v", err)
	}
	sawUnanswered := false
	for _, r := range rows {
		if !r.Answered {
			sawUnanswered = true
			if r.Answer != 0 {
				t.Fatalf("trial %d: unanswered row carries answer %v", r.Trial, r.Answer)
			}
		}
	}
	if !sawUnanswered {
		t.Fatal("seed no longer reproduces an all-values-lost trial; pick a new one")
	}
}

func TestScenarioValidate(t *testing.T) {
	bad := []ScenarioConfig{
		{N: 1, Topology: "line", Query: "min", Attack: "none", Synopses: 1, Trials: 1},
		{N: 10, Topology: "ring", Query: "min", Attack: "none", Synopses: 1, Trials: 1},
		{N: 10, Topology: "line", Query: "max", Attack: "none", Synopses: 1, Trials: 1},
		{N: 10, Topology: "line", Query: "min", Attack: "explode", Synopses: 1, Trials: 1},
		{N: 10, Topology: "line", Query: "min", Attack: "drop", Synopses: 1, Trials: 1},
		{N: 10, Topology: "line", Query: "min", Attack: "none", Synopses: 1, Trials: 0},
		{N: 10, Topology: "line", Query: "min", Attack: "none", Synopses: 1, Trials: 1, LossRate: 1},
	}
	for i, cfg := range bad {
		if err := cfg.Validate(); err == nil {
			t.Errorf("case %d: Validate accepted %+v", i, cfg)
		}
	}
	good := DefaultScenario()
	good.Normalize()
	if err := good.Validate(); err != nil {
		t.Errorf("default scenario rejected: %v", err)
	}
}

func TestScenarioCancellation(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	cfg := DefaultScenario()
	cfg.Context = ctx
	_, err := RunScenario(cfg)
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
}

func TestScenarioTraceTagsTrials(t *testing.T) {
	cfg := ScenarioConfig{N: 20, Topology: "line", Query: "min", Attack: "none", Synopses: 1, Trials: 3, Seed: 9}
	var mu sync.Mutex
	seen := map[int]int{}
	cfg.Trace = func(trial int, ev core.Event) {
		mu.Lock()
		seen[trial]++
		mu.Unlock()
	}
	if _, err := RunScenario(cfg); err != nil {
		t.Fatal(err)
	}
	for trial := 0; trial < cfg.Trials; trial++ {
		if seen[trial] == 0 {
			t.Fatalf("trial %d emitted no events (seen=%v)", trial, seen)
		}
	}
}
