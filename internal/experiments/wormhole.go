package experiments

import (
	"repro/internal/baseline"
	"repro/internal/core"
	"repro/internal/crypto"
	"repro/internal/topology"
)

// WormholeConfig parameterizes the Figure 2(c) demonstration: the same
// wormhole adversary against traditional hop-count tree formation and
// against VMAT's timestamp-based formation.
type WormholeConfig struct {
	// NetworkSizes to sweep.
	NetworkSizes []int
	// Trials per size with fresh wormhole placements.
	Trials int
	Seed   uint64
	// Workers caps trial parallelism; 0 uses GOMAXPROCS. Results are
	// identical for every worker count.
	Workers int
}

// DefaultWormhole returns the default sweep.
func DefaultWormhole() WormholeConfig {
	return WormholeConfig{NetworkSizes: []int{50, 100, 200}, Trials: 10, Seed: 2011}
}

// WormholeRow aggregates one network size.
type WormholeRow struct {
	N int
	// HopCountInvalid is the average number of honest sensors pushed
	// beyond level L by the wormhole under hop-count formation.
	HopCountInvalid float64
	// TimestampInvalid is the same count under VMAT's timestamp
	// formation (Theorem: always 0 — levels are arrival intervals, which
	// a wormhole can only shrink).
	TimestampInvalid float64
	// TimestampUnleveled is the average number of honest sensors left
	// without any level by the VMAT formation (0 when the honest
	// subgraph is connected).
	TimestampUnleveled float64
}

// RunWormhole executes the comparison. The wormhole entry sits adjacent
// to the base station; the exit is placed at maximum depth, the paper's
// Figure 2(c) geometry.
func RunWormhole(cfg WormholeConfig) ([]WormholeRow, error) {
	type wormholeTrial struct {
		counted            bool
		hopCountInvalid    float64
		timestampInvalid   float64
		timestampUnleveled float64
	}
	rows := make([]WormholeRow, 0, len(cfg.NetworkSizes))
	for _, n := range cfg.NetworkSizes {
		trials, err := RunTrials(subSeed(cfg.Seed, "wormhole", uint64(n)),
			cfg.Trials, cfg.Workers,
			func(trial int, _ *crypto.Stream) (wormholeTrial, error) {
				var tr wormholeTrial
				env, err := newProtoEnv(n, denseProtoParams, cfg.Seed+uint64(n*100+trial))
				if err != nil {
					return tr, err
				}
				g := env.graph
				entry, exit, ok := placeWormhole(g)
				if !ok {
					// No placement keeps the honest subgraph connected (the
					// paper's model assumption); skip this topology draw.
					return tr, nil
				}
				tr.counted = true
				l := g.Depth(topology.BaseStation)
				w := &baseline.WormholeConfig{
					Pairs:        [][2]topology.NodeID{{entry, exit}},
					InflatedHops: 3 * l,
				}
				hres := baseline.RunHopCountTree(g, l, w, 6*l+20)
				tr.hopCountInvalid = float64(hres.Invalid)

				// The same adversary against VMAT: wormhole endpoints rush
				// the tree-formation flood through their tunnel. Timestamp
				// levels only ever shrink, so nothing exceeds L.
				mal := map[topology.NodeID]bool{entry: true, exit: true}
				base := env.baseConfig(0, 0)
				base.Malicious = mal
				base.Adversary = &wormholeRusher{exit: exit}
				base.AdversaryFavored = true
				eng, err := core.NewEngine(base)
				if err != nil {
					return tr, err
				}
				levels, err := eng.TreeLevels()
				if err != nil {
					return tr, err
				}
				for id, lvl := range levels {
					if mal[topology.NodeID(id)] || id == 0 {
						continue
					}
					if lvl > eng.L() {
						tr.timestampInvalid++
					}
					if lvl == -1 {
						tr.timestampUnleveled++
					}
				}
				return tr, nil
			})
		if err != nil {
			return nil, err
		}
		row := WormholeRow{N: n}
		counted := 0
		for _, tr := range trials {
			if !tr.counted {
				continue
			}
			counted++
			row.HopCountInvalid += tr.hopCountInvalid
			row.TimestampInvalid += tr.timestampInvalid
			row.TimestampUnleveled += tr.timestampUnleveled
		}
		if counted > 0 {
			row.HopCountInvalid /= float64(counted)
			row.TimestampInvalid /= float64(counted)
			row.TimestampUnleveled /= float64(counted)
		}
		rows = append(rows, row)
	}
	return rows, nil
}

// placeWormhole picks a wormhole entry adjacent to the base station and
// the deepest possible exit such that removing both keeps the honest
// subgraph connected (the paper's no-partition assumption).
func placeWormhole(g *topology.Graph) (entry, exit topology.NodeID, ok bool) {
	depths := g.Depths(topology.BaseStation)
	n := g.NumNodes()
	for _, entryCand := range g.Neighbors(topology.BaseStation) {
		// Deepest exit first.
		bestExit := topology.NodeID(-1)
		for id := 1; id < n; id++ {
			cand := topology.NodeID(id)
			if cand == entryCand || depths[id] <= 1 {
				continue
			}
			if bestExit != -1 && depths[id] <= depths[bestExit] {
				continue
			}
			if g.ConnectedExcluding(topology.BaseStation,
				map[topology.NodeID]bool{entryCand: true, cand: true}) {
				bestExit = cand
			}
		}
		if bestExit != -1 {
			return entryCand, bestExit, true
		}
	}
	return 0, 0, false
}

// wormholeRusher is the VMAT-side wormhole adversary: the entry relays
// the tree-formation message to the exit out of band, the exit re-floods
// it immediately. Against timestamp levels this only *lowers* the
// victims' levels (they hear the flood earlier), which is exactly the
// paper's point: the attack is defanged.
type wormholeRusher struct {
	core.HonestAdversary
	exit topology.NodeID
}

func (w *wormholeRusher) Step(phase core.Phase, a *core.AdvContext) {
	if phase != core.PhaseTree {
		a.ActHonestly()
		return
	}
	if a.Node() != w.exit {
		// Entry: act honestly, then tunnel the first tree message.
		if a.Level() == -1 {
			for _, env := range a.Inbox() {
				if !env.Valid {
					continue
				}
				if key, ok := a.EdgeKeyWith(w.exit); ok {
					a.SendSealed(w.exit, key, env.Payload)
					break
				}
			}
		}
		a.ActHonestly()
		return
	}
	// Exit: on the tunneled copy, flood tree messages to neighbors right
	// away (earlier than the honest flood would arrive).
	a.ActHonestly()
}

// WormholeTable renders the comparison.
func WormholeTable(rows []WormholeRow) *Table {
	t := &Table{
		Title:   "Figure 2(c): honest sensors broken by a wormhole, hop-count vs timestamp formation",
		Columns: []string{"n", "hopcount_invalid", "timestamp_invalid", "timestamp_unleveled"},
	}
	for _, r := range rows {
		t.Rows = append(t.Rows, []string{d(r.N), f2(r.HopCountInvalid), f2(r.TimestampInvalid), f2(r.TimestampUnleveled)})
	}
	return t
}
