// Package faults is a deterministic fault-injection subsystem for the
// slot-synchronous simulator. The paper's system model (Section III)
// assumes reliable link-layer delivery "through retransmission" and
// Section IV-D treats only residual independent loss; real deployments
// additionally fail in correlated ways — node crashes, link churn,
// bursty Gilbert–Elliott radio loss, regional partitions. This package
// models those modes as a seed-driven *schedule* that the simulator
// consults once per slot, so an execution under faults is a pure
// function of (spec, graph, seed): experiment rows stay bit-identical
// for any worker count, and a failing fault scenario can be replayed
// exactly from its seed.
//
// Concurrency contract: Schedule state advances only in BeginSlot and
// DeliveryLost, which the simulator calls from its driver goroutine.
// NodeDown and LinkDown are pure reads of per-slot state and may be
// called concurrently from step goroutines within a slot.
package faults

import (
	"fmt"

	"repro/internal/crypto"
	"repro/internal/topology"
)

// Spec describes a fault environment. The zero value injects nothing.
// It is JSON-serializable so scenarios (and therefore vmat-server jobs)
// can carry a fault environment in their spec.
type Spec struct {
	// CrashProb crashes each live non-base sensor independently with
	// this probability per slot (fail-stop: a crashed sensor neither
	// sends nor receives).
	CrashProb float64 `json:"crash_prob,omitempty"`
	// RecoverProb recovers each crashed sensor independently with this
	// probability per slot. Zero means crashes are permanent.
	RecoverProb float64 `json:"recover_prob,omitempty"`
	// Crashes are explicitly scheduled node outages, applied on top of
	// the random crash process. They make targeted scenarios ("the
	// aggregation-subtree root dies mid-execution") reproducible.
	Crashes []NodeEvent `json:"crashes,omitempty"`
	// LinkDownProb takes each up link down independently with this
	// probability per slot (link churn); LinkUpProb restores each downed
	// link per slot.
	LinkDownProb float64 `json:"link_down_prob,omitempty"`
	LinkUpProb   float64 `json:"link_up_prob,omitempty"`
	// Burst, when non-nil, adds Gilbert–Elliott two-state bursty loss on
	// top of any independent DropRate the simulator applies.
	Burst *BurstSpec `json:"burst,omitempty"`
	// Partition, when non-nil, cuts a connected region off from the rest
	// of the network for a slot window (a regional outage).
	Partition *PartitionSpec `json:"partition,omitempty"`
}

// NodeEvent schedules one deterministic outage: node crashes at the
// start of slot At and recovers at the start of slot RecoverAt (0 or
// anything <= At means it never recovers).
type NodeEvent struct {
	Node      int `json:"node"`
	At        int `json:"at"`
	RecoverAt int `json:"recover_at,omitempty"`
}

// BurstSpec is a network-wide Gilbert–Elliott loss chain: the channel
// alternates between a good and a bad state; each delivered message is
// lost with the state's loss probability. The chain advances once per
// slot, so losses cluster into bursts with mean length 1/ExitProb.
type BurstSpec struct {
	// EnterProb moves good -> bad per slot; ExitProb moves bad -> good.
	EnterProb float64 `json:"enter_prob"`
	ExitProb  float64 `json:"exit_prob"`
	// LossBad (LossGood) is the per-delivery loss probability while the
	// chain is in the bad (good) state.
	LossBad  float64 `json:"loss_bad"`
	LossGood float64 `json:"loss_good,omitempty"`
}

// PartitionSpec cuts a region off during slots [FromSlot, ToSlot): a
// random epicenter sensor is drawn from the schedule seed and the
// region grows from it in BFS order to Frac of the non-base sensors;
// every link crossing the region boundary is down for the window.
type PartitionSpec struct {
	FromSlot int     `json:"from_slot"`
	ToSlot   int     `json:"to_slot"`
	Frac     float64 `json:"frac"`
}

// Enabled reports whether the spec injects anything at all.
func (s *Spec) Enabled() bool {
	if s == nil {
		return false
	}
	return s.CrashProb > 0 || len(s.Crashes) > 0 || s.LinkDownProb > 0 ||
		s.Burst != nil || s.Partition != nil
}

func probRange(name string, v float64) error {
	if v < 0 || v >= 1 {
		return fmt.Errorf("faults: %s %g out of range [0, 1)", name, v)
	}
	return nil
}

// Validate reports the first problem with the spec for an n-node
// network, or nil. The base station (node 0) may not be crashed: the
// protocols are defined from the base station's perspective and a dead
// querier has no result to degrade gracefully.
func (s *Spec) Validate(n int) error {
	if s == nil {
		return nil
	}
	for _, c := range []struct {
		name string
		v    float64
	}{
		{"crash_prob", s.CrashProb}, {"recover_prob", s.RecoverProb},
		{"link_down_prob", s.LinkDownProb}, {"link_up_prob", s.LinkUpProb},
	} {
		if err := probRange(c.name, c.v); err != nil {
			return err
		}
	}
	for _, ev := range s.Crashes {
		if ev.Node <= 0 || ev.Node >= n {
			return fmt.Errorf("faults: crash event node %d out of range [1, %d) (node 0 is the base station)", ev.Node, n)
		}
		if ev.At < 0 {
			return fmt.Errorf("faults: crash event for node %d at negative slot %d", ev.Node, ev.At)
		}
	}
	if b := s.Burst; b != nil {
		for _, c := range []struct {
			name string
			v    float64
		}{
			{"burst.enter_prob", b.EnterProb}, {"burst.exit_prob", b.ExitProb},
			{"burst.loss_bad", b.LossBad}, {"burst.loss_good", b.LossGood},
		} {
			if err := probRange(c.name, c.v); err != nil {
				return err
			}
		}
	}
	if p := s.Partition; p != nil {
		if p.Frac <= 0 || p.Frac >= 1 {
			return fmt.Errorf("faults: partition frac %g out of range (0, 1)", p.Frac)
		}
		if p.FromSlot < 0 || p.ToSlot <= p.FromSlot {
			return fmt.Errorf("faults: partition window [%d, %d) is empty", p.FromSlot, p.ToSlot)
		}
	}
	return nil
}

// Counters aggregates what a schedule injected over one execution.
type Counters struct {
	Crashes       int64 `json:"crashes"`
	Recoveries    int64 `json:"recoveries"`
	LinksDowned   int64 `json:"links_downed"`
	LinksRestored int64 `json:"links_restored"`
	// BurstSlots counts slots the Gilbert–Elliott chain spent in the bad
	// state; PartitionSlots counts slots the partition was active.
	BurstSlots     int64 `json:"burst_slots"`
	PartitionSlots int64 `json:"partition_slots"`
}

// Schedule is the per-execution realization of a Spec over a concrete
// graph: it owns the crash/link/burst state and advances it one slot at
// a time. Construct one Schedule per execution (it is stateful and
// single-use, like the simulator it plugs into).
type Schedule struct {
	spec Spec
	g    *topology.Graph
	rng  *crypto.Stream
	slot int

	crashed   []bool
	downEdges map[[2]topology.NodeID]bool
	burstBad  bool
	inRegion  []bool // non-nil only while the partition window is active
	region    []bool // precomputed membership, fixed at schedule creation

	counters Counters

	// scratch buffers for Unreachable's BFS, reused across calls.
	bfsSeen  []bool
	bfsQueue []topology.NodeID
}

// NewSchedule realizes spec over the graph. The seed drives every
// random choice (crash coins, churn coins, burst transitions, the
// partition epicenter), so two schedules built from equal arguments
// inject identical fault sequences.
func NewSchedule(spec Spec, g *topology.Graph, seed uint64) *Schedule {
	n := g.NumNodes()
	s := &Schedule{
		spec:      spec,
		g:         g,
		rng:       crypto.NewStreamFromSeed(seed),
		slot:      -1,
		crashed:   make([]bool, n),
		downEdges: map[[2]topology.NodeID]bool{},
	}
	if p := spec.Partition; p != nil && n > 1 {
		s.region = s.pickRegion(p.Frac)
	}
	return s
}

// pickRegion draws the partition region: a random non-base epicenter,
// grown in BFS order to frac of the non-base sensors.
func (s *Schedule) pickRegion(frac float64) []bool {
	n := s.g.NumNodes()
	want := int(frac * float64(n-1))
	if want < 1 {
		want = 1
	}
	epicenter := topology.NodeID(s.rng.Intn(n-1) + 1)
	region := make([]bool, n)
	region[epicenter] = true
	got := 1
	queue := []topology.NodeID{epicenter}
	for len(queue) > 0 && got < want {
		cur := queue[0]
		queue = queue[1:]
		for _, nb := range s.g.Neighbors(cur) {
			if nb == topology.BaseStation || region[nb] || got >= want {
				continue
			}
			region[nb] = true
			got++
			queue = append(queue, nb)
		}
	}
	return region
}

// BeginSlot advances the fault state to the given slot: scheduled and
// random crashes/recoveries, link churn, the burst chain, and the
// partition window. It must be called exactly once per slot, in order,
// from the simulator's driver goroutine before any delivery or step of
// that slot.
func (s *Schedule) BeginSlot(slot int) {
	s.slot = slot
	n := s.g.NumNodes()

	// Explicitly scheduled outages first, so a NodeEvent beats the
	// random process in the same slot.
	for _, ev := range s.spec.Crashes {
		if ev.Node <= 0 || ev.Node >= n {
			continue
		}
		if slot == ev.At && !s.crashed[ev.Node] {
			s.crashed[ev.Node] = true
			s.counters.Crashes++
		}
		if ev.RecoverAt > ev.At && slot == ev.RecoverAt && s.crashed[ev.Node] {
			s.crashed[ev.Node] = false
			s.counters.Recoveries++
		}
	}
	if s.spec.CrashProb > 0 || s.spec.RecoverProb > 0 {
		for id := 1; id < n; id++ {
			if s.crashed[id] {
				if s.spec.RecoverProb > 0 && s.rng.Float64() < s.spec.RecoverProb {
					s.crashed[id] = false
					s.counters.Recoveries++
				}
			} else if s.spec.CrashProb > 0 && s.rng.Float64() < s.spec.CrashProb {
				s.crashed[id] = true
				s.counters.Crashes++
			}
		}
	}

	if s.spec.LinkDownProb > 0 || len(s.downEdges) > 0 {
		// Restore first (iterating the sorted edge list keeps rng
		// consumption deterministic), then churn up links down.
		for _, e := range s.g.Edges() {
			down := s.downEdges[e]
			if down && s.spec.LinkUpProb > 0 && s.rng.Float64() < s.spec.LinkUpProb {
				delete(s.downEdges, e)
				s.counters.LinksRestored++
				down = false
			}
			if !down && s.spec.LinkDownProb > 0 && s.rng.Float64() < s.spec.LinkDownProb {
				s.downEdges[e] = true
				s.counters.LinksDowned++
			}
		}
	}

	if b := s.spec.Burst; b != nil {
		if s.burstBad {
			if s.rng.Float64() < b.ExitProb {
				s.burstBad = false
			}
		} else if s.rng.Float64() < b.EnterProb {
			s.burstBad = true
		}
		if s.burstBad {
			s.counters.BurstSlots++
		}
	}

	if p := s.spec.Partition; p != nil {
		if slot >= p.FromSlot && slot < p.ToSlot {
			s.inRegion = s.region
			s.counters.PartitionSlots++
		} else {
			s.inRegion = nil
		}
	}
}

// NodeDown reports whether the node is crashed in the current slot.
// Safe for concurrent use between BeginSlot calls.
func (s *Schedule) NodeDown(id topology.NodeID) bool {
	return s.crashed[id]
}

// LinkDown reports whether the (directed) link is unusable this slot —
// downed by churn or crossing an active partition boundary. Safe for
// concurrent use between BeginSlot calls.
func (s *Schedule) LinkDown(from, to topology.NodeID) bool {
	if s.inRegion != nil && s.inRegion[from] != s.inRegion[to] {
		return true
	}
	if len(s.downEdges) == 0 {
		return false
	}
	if from > to {
		from, to = to, from
	}
	return s.downEdges[[2]topology.NodeID{from, to}]
}

// DeliveryLost draws one bursty-loss coin for a delivery attempt. The
// simulator calls it from the driver goroutine in deterministic message
// order, so the loss sequence is reproducible.
func (s *Schedule) DeliveryLost() bool {
	b := s.spec.Burst
	if b == nil {
		return false
	}
	p := b.LossGood
	if s.burstBad {
		p = b.LossBad
	}
	if p <= 0 {
		return false
	}
	return s.rng.Float64() < p
}

// DownCount returns how many sensors are crashed in the current slot.
func (s *Schedule) DownCount() int {
	c := 0
	for _, down := range s.crashed {
		if down {
			c++
		}
	}
	return c
}

// Counters returns the cumulative injection counts so far.
func (s *Schedule) Counters() Counters { return s.counters }

// Unreachable returns how many non-root nodes cannot currently reach
// root over live nodes and links: the network's honest coverage deficit
// at this instant, which the engine reports as the unreachable count of
// a Partial result.
func (s *Schedule) Unreachable(root topology.NodeID) int {
	n := s.g.NumNodes()
	if s.bfsSeen == nil {
		s.bfsSeen = make([]bool, n)
	} else {
		for i := range s.bfsSeen {
			s.bfsSeen[i] = false
		}
	}
	seen := s.bfsSeen
	queue := s.bfsQueue[:0]
	reached := 0
	if !s.crashed[root] {
		seen[root] = true
		queue = append(queue, root)
	}
	for head := 0; head < len(queue); head++ {
		cur := queue[head]
		for _, nb := range s.g.Neighbors(cur) {
			if seen[nb] || s.crashed[nb] || s.LinkDown(cur, nb) {
				continue
			}
			seen[nb] = true
			reached++
			queue = append(queue, nb)
		}
	}
	s.bfsQueue = queue
	return n - 1 - reached
}
