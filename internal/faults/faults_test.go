package faults

import (
	"testing"

	"repro/internal/topology"
)

func runSlots(s *Schedule, upto int) {
	for slot := 0; slot <= upto; slot++ {
		s.BeginSlot(slot)
	}
}

func TestZeroSpecInjectsNothing(t *testing.T) {
	g := topology.Line(20)
	var spec Spec
	if spec.Enabled() {
		t.Fatal("zero spec reports enabled")
	}
	s := NewSchedule(spec, g, 1)
	for slot := 0; slot < 50; slot++ {
		s.BeginSlot(slot)
		for id := 0; id < 20; id++ {
			if s.NodeDown(topology.NodeID(id)) {
				t.Fatalf("node %d down under zero spec", id)
			}
		}
		if s.DeliveryLost() {
			t.Fatal("delivery lost under zero spec")
		}
	}
	if got := s.Unreachable(topology.BaseStation); got != 0 {
		t.Fatalf("unreachable = %d under zero spec, want 0", got)
	}
	if s.Counters() != (Counters{}) {
		t.Fatalf("counters = %+v under zero spec", s.Counters())
	}
}

func TestScheduledCrashAndRecovery(t *testing.T) {
	g := topology.Line(10)
	s := NewSchedule(Spec{Crashes: []NodeEvent{{Node: 3, At: 5, RecoverAt: 9}}}, g, 7)
	for slot := 0; slot < 12; slot++ {
		s.BeginSlot(slot)
		wantDown := slot >= 5 && slot < 9
		if got := s.NodeDown(3); got != wantDown {
			t.Fatalf("slot %d: NodeDown(3) = %v, want %v", slot, got, wantDown)
		}
		if wantDown {
			// On a line, crashing node 3 cuts off nodes 4..9.
			if got := s.Unreachable(topology.BaseStation); got != 7 {
				t.Fatalf("slot %d: unreachable = %d, want 7", slot, got)
			}
		} else if got := s.Unreachable(topology.BaseStation); got != 0 {
			t.Fatalf("slot %d: unreachable = %d, want 0", slot, got)
		}
	}
	c := s.Counters()
	if c.Crashes != 1 || c.Recoveries != 1 {
		t.Fatalf("counters = %+v, want 1 crash and 1 recovery", c)
	}
}

func TestRandomCrashesAreDeterministicAndRecoverable(t *testing.T) {
	g := topology.Grid(6, 6)
	spec := Spec{CrashProb: 0.05, RecoverProb: 0.2}
	a := NewSchedule(spec, g, 42)
	b := NewSchedule(spec, g, 42)
	sawDown, sawRecovery := false, false
	for slot := 0; slot < 200; slot++ {
		a.BeginSlot(slot)
		b.BeginSlot(slot)
		for id := 0; id < g.NumNodes(); id++ {
			if a.NodeDown(topology.NodeID(id)) != b.NodeDown(topology.NodeID(id)) {
				t.Fatalf("slot %d: schedules with equal seeds disagree on node %d", slot, id)
			}
		}
		if a.DownCount() > 0 {
			sawDown = true
		}
	}
	if !sawDown {
		t.Fatal("no crash in 200 slots at p=0.05 over 36 nodes")
	}
	if a.Counters().Recoveries > 0 {
		sawRecovery = true
	}
	if !sawRecovery {
		t.Fatal("no recovery in 200 slots at recover_prob=0.2")
	}
	if a.NodeDown(topology.BaseStation) {
		t.Fatal("base station crashed; the schedule must never take node 0 down")
	}
}

func TestLinkChurn(t *testing.T) {
	g := topology.Grid(5, 5)
	s := NewSchedule(Spec{LinkDownProb: 0.1, LinkUpProb: 0.3}, g, 11)
	runSlots(s, 100)
	c := s.Counters()
	if c.LinksDowned == 0 || c.LinksRestored == 0 {
		t.Fatalf("counters = %+v, want both churn directions exercised", c)
	}
	// LinkDown must be symmetric in its arguments (undirected links).
	downSeen := false
	for slot := 101; slot <= 140 && !downSeen; slot++ {
		s.BeginSlot(slot)
		for _, e := range g.Edges() {
			if s.LinkDown(e[0], e[1]) {
				downSeen = true
				if !s.LinkDown(e[1], e[0]) {
					t.Fatalf("LinkDown(%d,%d) asymmetric", e[0], e[1])
				}
			}
		}
	}
	if !downSeen {
		t.Fatal("no link observed down in 40 churn slots")
	}
}

func TestBurstLossClusters(t *testing.T) {
	g := topology.Line(4)
	spec := Spec{Burst: &BurstSpec{EnterProb: 0.1, ExitProb: 0.2, LossBad: 0.9}}
	s := NewSchedule(spec, g, 3)
	lossesInBad, drawsInBad := 0, 0
	for slot := 0; slot < 500; slot++ {
		s.BeginSlot(slot)
		for d := 0; d < 10; d++ {
			lost := s.DeliveryLost()
			if s.burstBad {
				drawsInBad++
				if lost {
					lossesInBad++
				}
			} else if lost {
				t.Fatal("loss in good state with loss_good = 0")
			}
		}
	}
	if s.Counters().BurstSlots == 0 {
		t.Fatal("chain never entered the bad state")
	}
	if drawsInBad == 0 || float64(lossesInBad)/float64(drawsInBad) < 0.7 {
		t.Fatalf("bad-state loss rate %d/%d, want about 0.9", lossesInBad, drawsInBad)
	}
}

func TestPartitionWindow(t *testing.T) {
	g := topology.Grid(6, 6)
	spec := Spec{Partition: &PartitionSpec{FromSlot: 10, ToSlot: 20, Frac: 0.3}}
	s := NewSchedule(spec, g, 99)
	for slot := 0; slot < 30; slot++ {
		s.BeginSlot(slot)
		unreached := s.Unreachable(topology.BaseStation)
		active := slot >= 10 && slot < 20
		if active && unreached == 0 {
			t.Fatalf("slot %d: partition active but everything reachable", slot)
		}
		if !active && unreached != 0 {
			t.Fatalf("slot %d: partition inactive but %d unreachable", slot, unreached)
		}
	}
	if got := s.Counters().PartitionSlots; got != 10 {
		t.Fatalf("partition slots = %d, want 10", got)
	}
}

func TestValidate(t *testing.T) {
	cases := []struct {
		name string
		spec Spec
		ok   bool
	}{
		{"zero", Spec{}, true},
		{"good", Spec{CrashProb: 0.01, RecoverProb: 0.1}, true},
		{"crash prob too high", Spec{CrashProb: 1}, false},
		{"negative recover", Spec{RecoverProb: -0.1}, false},
		{"crash base station", Spec{Crashes: []NodeEvent{{Node: 0, At: 3}}}, false},
		{"crash out of range", Spec{Crashes: []NodeEvent{{Node: 50, At: 3}}}, false},
		{"crash negative slot", Spec{Crashes: []NodeEvent{{Node: 1, At: -1}}}, false},
		{"burst ok", Spec{Burst: &BurstSpec{EnterProb: 0.1, ExitProb: 0.5, LossBad: 0.8}}, true},
		{"burst loss out of range", Spec{Burst: &BurstSpec{LossBad: 1.5}}, false},
		{"partition ok", Spec{Partition: &PartitionSpec{FromSlot: 0, ToSlot: 5, Frac: 0.2}}, true},
		{"partition empty window", Spec{Partition: &PartitionSpec{FromSlot: 5, ToSlot: 5, Frac: 0.2}}, false},
		{"partition frac", Spec{Partition: &PartitionSpec{FromSlot: 0, ToSlot: 5, Frac: 1}}, false},
	}
	for _, c := range cases {
		err := c.spec.Validate(40)
		if c.ok && err != nil {
			t.Errorf("%s: unexpected error %v", c.name, err)
		}
		if !c.ok && err == nil {
			t.Errorf("%s: expected a validation error", c.name)
		}
	}
	if (*Spec)(nil).Validate(10) != nil || (*Spec)(nil).Enabled() {
		t.Fatal("nil spec must validate and be disabled")
	}
}
