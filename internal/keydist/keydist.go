// Package keydist implements the Eschenauer-Gligor random key
// pre-distribution scheme the paper assumes for pair-wise sensor
// authentication (Section III), plus the revocation bookkeeping VMAT's
// pinpointing builds on (Section VI-C).
//
// Each sensor is loaded with a key ring of r keys drawn uniformly at
// random from a global pool of u symmetric keys. Two neighboring sensors
// that share a pool key use it as their edge key. Key rings are derived
// from per-sensor seeds so that revoking an entire sensor only requires
// announcing its seed, exactly as the paper notes in Section VI-A.
//
// The base station knows the full assignment: which sensor holds which
// pool keys and, symmetrically, the exact holder set of every pool key.
// Figures 5 and 6 of the paper rely on that knowledge for the binary
// searches of the pinpointing protocol.
package keydist

import (
	"fmt"
	"math"
	"slices"
	"sort"

	"repro/internal/crypto"
	"repro/internal/topology"
)

// Params configures an Eschenauer-Gligor deployment.
type Params struct {
	// PoolSize is u, the size of the global key pool.
	PoolSize int
	// RingSize is r, the number of pool keys loaded onto each sensor.
	RingSize int
}

// PaperParams returns the parameters of the paper's Section IX evaluation:
// rings of 250 keys drawn from a pool of 100,000, which give two sensors a
// common key with probability around 0.5.
func PaperParams() Params { return Params{PoolSize: 100000, RingSize: 250} }

// DenseParams returns parameters with a high key-share probability
// (r = 3*sqrt(u), share probability roughly 1-e^-9 > 0.999), suitable for
// protocol simulations where the secure graph should closely track the
// radio graph. The paper notes (Section III) that r = c*sqrt(u) yields
// share probability at least 1-e^{-c^2}.
func DenseParams() Params { return Params{PoolSize: 10000, RingSize: 300} }

// Validate checks the parameters for basic sanity.
func (p Params) Validate() error {
	if p.PoolSize <= 0 {
		return fmt.Errorf("keydist: pool size must be positive, got %d", p.PoolSize)
	}
	if p.RingSize <= 0 || p.RingSize > p.PoolSize {
		return fmt.Errorf("keydist: ring size %d out of range (pool %d)", p.RingSize, p.PoolSize)
	}
	return nil
}

// Deployment is a concrete key assignment for n nodes (node 0 is the base
// station, which also carries a ring so it can receive edge-authenticated
// messages from its radio neighbors). A Deployment is immutable after
// construction and safe for concurrent reads.
type Deployment struct {
	params Params
	master crypto.Key
	n      int
	rings  [][]int // per-node sorted pool indices
	// The holder sets of all pool keys share one flat backing array:
	// holderIDs[holderOff[i]:holderOff[i+1]] are the sorted holders of pool
	// index i. A flat layout replaces a map of u small slices, which
	// dominated deployment construction time and allocations at paper scale
	// (u = 100,000).
	holderOff []int32
	holderIDs []topology.NodeID
	seeds     []crypto.Key // per-node ring seed (announcing it revokes the ring)
}

// NewDeployment draws a ring for each of n nodes using rng. The master key
// seeds the key pool; each node's ring seed is derived from the master and
// the node ID so the base station can reconstruct or announce it.
func NewDeployment(n int, params Params, master crypto.Key, rng *crypto.Stream) (*Deployment, error) {
	if err := params.Validate(); err != nil {
		return nil, err
	}
	if n <= 0 {
		return nil, fmt.Errorf("keydist: need at least one node, got %d", n)
	}
	d := &Deployment{
		params: params,
		master: master,
		n:      n,
		rings:  make([][]int, n),
		seeds:  make([]crypto.Key, n),
	}
	// The trial randomness is folded into the per-node seed itself, so the
	// ring is a pure function of its seed: announcing the seed is enough
	// for every sensor to reconstruct (and ignore) the revoked ring.
	salt := crypto.DeriveKey(master, "deployment-salt", rng.Uint64())
	scratch := make([]uint64, (params.PoolSize+63)/64)
	ringBacking := make([]int, n*params.RingSize)
	for id := 0; id < n; id++ {
		d.seeds[id] = crypto.DeriveKey(salt, "ring-seed", uint64(id))
		ringRNG := crypto.NewStream(d.seeds[id][:])
		ring := ringBacking[id*params.RingSize : (id+1)*params.RingSize : (id+1)*params.RingSize]
		sampleDistinct(ring, params.PoolSize, ringRNG, scratch)
		d.rings[id] = ring
	}
	// Build the holder sets with a counting pass: sizes first, then one
	// flat fill. Appending in node-ID order keeps every holder set sorted.
	d.holderOff = make([]int32, params.PoolSize+1)
	counts := make([]int32, params.PoolSize)
	for _, ring := range d.rings {
		for _, idx := range ring {
			counts[idx]++
		}
	}
	var total int32
	for i, c := range counts {
		d.holderOff[i] = total
		total += c
	}
	d.holderOff[params.PoolSize] = total
	d.holderIDs = make([]topology.NodeID, total)
	next := counts // reuse as per-key fill cursors
	copy(next, d.holderOff[:params.PoolSize])
	for id := 0; id < n; id++ {
		for _, idx := range d.rings[id] {
			d.holderIDs[next[idx]] = topology.NodeID(id)
			next[idx]++
		}
	}
	return d, nil
}

// sampleDistinct draws len(ring) distinct integers from [0, u) via Floyd's
// algorithm and stores them in ring, sorted. The scratch bitset must have
// at least u bits; it is used to test membership and is left cleared on
// return, so one scratch buffer serves every node of a deployment. The
// rejection-sampling draws are identical to the earlier map-backed
// implementation, so rings are unchanged for a given seed.
func sampleDistinct(ring []int, u int, rng *crypto.Stream, scratch []uint64) {
	k := len(ring)
	out := ring[:0]
	for j := u - k; j < u; j++ {
		t := rng.Intn(j + 1)
		if scratch[t>>6]&(1<<(uint(t)&63)) != 0 {
			t = j
		}
		scratch[t>>6] |= 1 << (uint(t) & 63)
		out = append(out, t)
	}
	for _, idx := range out {
		scratch[idx>>6] &^= 1 << (uint(idx) & 63)
	}
	sort.Ints(ring)
}

// NumNodes returns the number of nodes in the deployment.
func (d *Deployment) NumNodes() int { return d.n }

// Params returns the deployment parameters.
func (d *Deployment) Params() Params { return d.params }

// SensorKey returns the unique symmetric key the given node shares with
// the base station (the paper's "sensor key").
func (d *Deployment) SensorKey(id topology.NodeID) crypto.Key {
	return crypto.DeriveKey(d.master, "sensor-key", uint64(id))
}

// PoolKey returns the pool key with the given index.
func (d *Deployment) PoolKey(index int) crypto.Key {
	return crypto.DeriveKey(d.master, "pool-key", uint64(index))
}

// Ring returns the sorted pool indices held by id. The returned slice is
// shared and must not be modified.
func (d *Deployment) Ring(id topology.NodeID) []int {
	if int(id) < 0 || int(id) >= d.n {
		return nil
	}
	return d.rings[id]
}

// RingSeed returns the seed from which id's ring was derived. Announcing
// this seed revokes the whole ring (Section VI-A).
func (d *Deployment) RingSeed(id topology.NodeID) crypto.Key { return d.seeds[id] }

// Holds reports whether id's ring contains the pool key with this index.
// Rings are sorted, so this is a binary search — no per-node set needed.
func (d *Deployment) Holds(id topology.NodeID, index int) bool {
	if int(id) < 0 || int(id) >= d.n {
		return false
	}
	_, found := slices.BinarySearch(d.rings[id], index)
	return found
}

// Holders returns the sorted IDs of all nodes holding the pool key with
// the given index. The returned slice is shared and must not be modified.
// The base station uses this set in the Figure 6 binary search.
func (d *Deployment) Holders(index int) []topology.NodeID {
	if index < 0 || index >= d.params.PoolSize {
		return nil
	}
	return d.holderIDs[d.holderOff[index]:d.holderOff[index+1]]
}

// SharedIndices returns the sorted pool indices common to the rings of a
// and b — their candidate edge keys.
func (d *Deployment) SharedIndices(a, b topology.NodeID) []int {
	ra, rb := d.Ring(a), d.Ring(b)
	var out []int
	i, j := 0, 0
	for i < len(ra) && j < len(rb) {
		switch {
		case ra[i] == rb[j]:
			out = append(out, ra[i])
			i++
			j++
		case ra[i] < rb[j]:
			i++
		default:
			j++
		}
	}
	return out
}

// EdgeKeyIndex returns the pool index of the edge key a and b use: the
// lowest-indexed common key not filtered out by revoked (which may be
// nil). The second result reports whether a usable edge key exists. Both
// endpoints compute the same answer, so no negotiation is needed.
func (d *Deployment) EdgeKeyIndex(a, b topology.NodeID, revoked func(index int) bool) (int, bool) {
	for _, idx := range d.SharedIndices(a, b) {
		if revoked != nil && revoked(idx) {
			continue
		}
		return idx, true
	}
	return 0, false
}

// SecureGraph returns the subgraph of physical containing only edges whose
// endpoints share at least one non-revoked pool key. VMAT's protocols run
// over this graph: without a common edge key two radio neighbors cannot
// authenticate each other (Section III).
func (d *Deployment) SecureGraph(physical *topology.Graph, revoked func(index int) bool) *topology.Graph {
	return physical.Subgraph(func(a, b topology.NodeID) bool {
		_, ok := d.EdgeKeyIndex(a, b, revoked)
		return ok
	})
}

// OverlapWithUnion returns, for the given node, how many of its ring keys
// appear in the union set. Figure 7's mis-revocation analysis asks, for
// each honest sensor, how many of its keys the adversary's combined rings
// cover.
func (d *Deployment) OverlapWithUnion(id topology.NodeID, union map[int]bool) int {
	count := 0
	for _, idx := range d.Ring(id) {
		if union[idx] {
			count++
		}
	}
	return count
}

// SuggestTheta returns the smallest whole-sensor revocation threshold
// theta such that the expected number of honest sensors mis-revoked — out
// of n sensors, against an adversary controlling f rings — stays below
// maxExpected. The ring overlap of an honest sensor with the adversary's
// combined key material is approximately Poisson with mean
// r * min(f*r, u) / u, so the threshold is the Poisson tail's crossing
// point. This is the calibration behind the paper's Figure 7 readings
// (theta around 7 for f=1, around 27 for f=20 at r=250, u=100,000); for
// denser rings the threshold must grow with the innocent overlap mean.
func SuggestTheta(p Params, f, n int, maxExpected float64) int {
	if maxExpected <= 0 {
		maxExpected = 0.1
	}
	adversaryKeys := float64(f * p.RingSize)
	if adversaryKeys > float64(p.PoolSize) {
		adversaryKeys = float64(p.PoolSize)
	}
	lambda := float64(p.RingSize) * adversaryKeys / float64(p.PoolSize)
	// Walk the Poisson pmf upward accumulating the tail from above.
	pmf := math.Exp(-lambda)
	cdf := pmf
	for theta := 1; theta <= p.RingSize; theta++ {
		tail := 1 - cdf // P(X >= theta)
		if float64(n)*tail <= maxExpected {
			return theta
		}
		pmf *= lambda / float64(theta)
		cdf += pmf
	}
	return p.RingSize
}

// UnionOfRings returns the set union of the rings of the given nodes: the
// full set of edge keys an adversary controlling those nodes can use,
// including for framing honest sensors (Section VI-C).
func (d *Deployment) UnionOfRings(ids []topology.NodeID) map[int]bool {
	union := make(map[int]bool)
	for _, id := range ids {
		for _, idx := range d.Ring(id) {
			union[idx] = true
		}
	}
	return union
}
