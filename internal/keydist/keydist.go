// Package keydist implements the Eschenauer-Gligor random key
// pre-distribution scheme the paper assumes for pair-wise sensor
// authentication (Section III), plus the revocation bookkeeping VMAT's
// pinpointing builds on (Section VI-C).
//
// Each sensor is loaded with a key ring of r keys drawn uniformly at
// random from a global pool of u symmetric keys. Two neighboring sensors
// that share a pool key use it as their edge key. Key rings are derived
// from per-sensor seeds so that revoking an entire sensor only requires
// announcing its seed, exactly as the paper notes in Section VI-A.
//
// The base station knows the full assignment: which sensor holds which
// pool keys and, symmetrically, the exact holder set of every pool key.
// Figures 5 and 6 of the paper rely on that knowledge for the binary
// searches of the pinpointing protocol.
package keydist

import (
	"fmt"
	"math"
	"sort"

	"repro/internal/crypto"
	"repro/internal/topology"
)

// Params configures an Eschenauer-Gligor deployment.
type Params struct {
	// PoolSize is u, the size of the global key pool.
	PoolSize int
	// RingSize is r, the number of pool keys loaded onto each sensor.
	RingSize int
}

// PaperParams returns the parameters of the paper's Section IX evaluation:
// rings of 250 keys drawn from a pool of 100,000, which give two sensors a
// common key with probability around 0.5.
func PaperParams() Params { return Params{PoolSize: 100000, RingSize: 250} }

// DenseParams returns parameters with a high key-share probability
// (r = 3*sqrt(u), share probability roughly 1-e^-9 > 0.999), suitable for
// protocol simulations where the secure graph should closely track the
// radio graph. The paper notes (Section III) that r = c*sqrt(u) yields
// share probability at least 1-e^{-c^2}.
func DenseParams() Params { return Params{PoolSize: 10000, RingSize: 300} }

// Validate checks the parameters for basic sanity.
func (p Params) Validate() error {
	if p.PoolSize <= 0 {
		return fmt.Errorf("keydist: pool size must be positive, got %d", p.PoolSize)
	}
	if p.RingSize <= 0 || p.RingSize > p.PoolSize {
		return fmt.Errorf("keydist: ring size %d out of range (pool %d)", p.RingSize, p.PoolSize)
	}
	return nil
}

// Deployment is a concrete key assignment for n nodes (node 0 is the base
// station, which also carries a ring so it can receive edge-authenticated
// messages from its radio neighbors). A Deployment is immutable after
// construction and safe for concurrent reads.
type Deployment struct {
	params  Params
	master  crypto.Key
	n       int
	rings   [][]int                   // per-node sorted pool indices
	ringSet []map[int]bool            // per-node membership
	holders map[int][]topology.NodeID // pool index -> sorted holder IDs
	seeds   []crypto.Key              // per-node ring seed (announcing it revokes the ring)
}

// NewDeployment draws a ring for each of n nodes using rng. The master key
// seeds the key pool; each node's ring seed is derived from the master and
// the node ID so the base station can reconstruct or announce it.
func NewDeployment(n int, params Params, master crypto.Key, rng *crypto.Stream) (*Deployment, error) {
	if err := params.Validate(); err != nil {
		return nil, err
	}
	if n <= 0 {
		return nil, fmt.Errorf("keydist: need at least one node, got %d", n)
	}
	d := &Deployment{
		params:  params,
		master:  master,
		n:       n,
		rings:   make([][]int, n),
		ringSet: make([]map[int]bool, n),
		holders: make(map[int][]topology.NodeID),
		seeds:   make([]crypto.Key, n),
	}
	// The trial randomness is folded into the per-node seed itself, so the
	// ring is a pure function of its seed: announcing the seed is enough
	// for every sensor to reconstruct (and ignore) the revoked ring.
	salt := crypto.DeriveKey(master, "deployment-salt", rng.Uint64())
	for id := 0; id < n; id++ {
		d.seeds[id] = crypto.DeriveKey(salt, "ring-seed", uint64(id))
		ringRNG := crypto.NewStream(d.seeds[id][:])
		ring := sampleDistinct(params.PoolSize, params.RingSize, ringRNG)
		d.rings[id] = ring
		set := make(map[int]bool, len(ring))
		for _, idx := range ring {
			set[idx] = true
			d.holders[idx] = append(d.holders[idx], topology.NodeID(id))
		}
		d.ringSet[id] = set
	}
	return d, nil
}

// sampleDistinct draws k distinct integers from [0, u) via Floyd's
// algorithm and returns them sorted.
func sampleDistinct(u, k int, rng *crypto.Stream) []int {
	chosen := make(map[int]bool, k)
	for j := u - k; j < u; j++ {
		t := rng.Intn(j + 1)
		if chosen[t] {
			chosen[j] = true
		} else {
			chosen[t] = true
		}
	}
	out := make([]int, 0, k)
	for idx := range chosen {
		out = append(out, idx)
	}
	sort.Ints(out)
	return out
}

// NumNodes returns the number of nodes in the deployment.
func (d *Deployment) NumNodes() int { return d.n }

// Params returns the deployment parameters.
func (d *Deployment) Params() Params { return d.params }

// SensorKey returns the unique symmetric key the given node shares with
// the base station (the paper's "sensor key").
func (d *Deployment) SensorKey(id topology.NodeID) crypto.Key {
	return crypto.DeriveKey(d.master, "sensor-key", uint64(id))
}

// PoolKey returns the pool key with the given index.
func (d *Deployment) PoolKey(index int) crypto.Key {
	return crypto.DeriveKey(d.master, "pool-key", uint64(index))
}

// Ring returns the sorted pool indices held by id. The returned slice is
// shared and must not be modified.
func (d *Deployment) Ring(id topology.NodeID) []int {
	if int(id) < 0 || int(id) >= d.n {
		return nil
	}
	return d.rings[id]
}

// RingSeed returns the seed from which id's ring was derived. Announcing
// this seed revokes the whole ring (Section VI-A).
func (d *Deployment) RingSeed(id topology.NodeID) crypto.Key { return d.seeds[id] }

// Holds reports whether id's ring contains the pool key with this index.
func (d *Deployment) Holds(id topology.NodeID, index int) bool {
	if int(id) < 0 || int(id) >= d.n {
		return false
	}
	return d.ringSet[id][index]
}

// Holders returns the sorted IDs of all nodes holding the pool key with
// the given index. The returned slice is shared and must not be modified.
// The base station uses this set in the Figure 6 binary search.
func (d *Deployment) Holders(index int) []topology.NodeID {
	return d.holders[index]
}

// SharedIndices returns the sorted pool indices common to the rings of a
// and b — their candidate edge keys.
func (d *Deployment) SharedIndices(a, b topology.NodeID) []int {
	ra, rb := d.Ring(a), d.Ring(b)
	var out []int
	i, j := 0, 0
	for i < len(ra) && j < len(rb) {
		switch {
		case ra[i] == rb[j]:
			out = append(out, ra[i])
			i++
			j++
		case ra[i] < rb[j]:
			i++
		default:
			j++
		}
	}
	return out
}

// EdgeKeyIndex returns the pool index of the edge key a and b use: the
// lowest-indexed common key not filtered out by revoked (which may be
// nil). The second result reports whether a usable edge key exists. Both
// endpoints compute the same answer, so no negotiation is needed.
func (d *Deployment) EdgeKeyIndex(a, b topology.NodeID, revoked func(index int) bool) (int, bool) {
	for _, idx := range d.SharedIndices(a, b) {
		if revoked != nil && revoked(idx) {
			continue
		}
		return idx, true
	}
	return 0, false
}

// SecureGraph returns the subgraph of physical containing only edges whose
// endpoints share at least one non-revoked pool key. VMAT's protocols run
// over this graph: without a common edge key two radio neighbors cannot
// authenticate each other (Section III).
func (d *Deployment) SecureGraph(physical *topology.Graph, revoked func(index int) bool) *topology.Graph {
	return physical.Subgraph(func(a, b topology.NodeID) bool {
		_, ok := d.EdgeKeyIndex(a, b, revoked)
		return ok
	})
}

// OverlapWithUnion returns, for the given node, how many of its ring keys
// appear in the union set. Figure 7's mis-revocation analysis asks, for
// each honest sensor, how many of its keys the adversary's combined rings
// cover.
func (d *Deployment) OverlapWithUnion(id topology.NodeID, union map[int]bool) int {
	count := 0
	for _, idx := range d.Ring(id) {
		if union[idx] {
			count++
		}
	}
	return count
}

// SuggestTheta returns the smallest whole-sensor revocation threshold
// theta such that the expected number of honest sensors mis-revoked — out
// of n sensors, against an adversary controlling f rings — stays below
// maxExpected. The ring overlap of an honest sensor with the adversary's
// combined key material is approximately Poisson with mean
// r * min(f*r, u) / u, so the threshold is the Poisson tail's crossing
// point. This is the calibration behind the paper's Figure 7 readings
// (theta around 7 for f=1, around 27 for f=20 at r=250, u=100,000); for
// denser rings the threshold must grow with the innocent overlap mean.
func SuggestTheta(p Params, f, n int, maxExpected float64) int {
	if maxExpected <= 0 {
		maxExpected = 0.1
	}
	adversaryKeys := float64(f * p.RingSize)
	if adversaryKeys > float64(p.PoolSize) {
		adversaryKeys = float64(p.PoolSize)
	}
	lambda := float64(p.RingSize) * adversaryKeys / float64(p.PoolSize)
	// Walk the Poisson pmf upward accumulating the tail from above.
	pmf := math.Exp(-lambda)
	cdf := pmf
	for theta := 1; theta <= p.RingSize; theta++ {
		tail := 1 - cdf // P(X >= theta)
		if float64(n)*tail <= maxExpected {
			return theta
		}
		pmf *= lambda / float64(theta)
		cdf += pmf
	}
	return p.RingSize
}

// UnionOfRings returns the set union of the rings of the given nodes: the
// full set of edge keys an adversary controlling those nodes can use,
// including for framing honest sensors (Section VI-C).
func (d *Deployment) UnionOfRings(ids []topology.NodeID) map[int]bool {
	union := make(map[int]bool)
	for _, id := range ids {
		for _, idx := range d.Ring(id) {
			union[idx] = true
		}
	}
	return union
}
