package keydist

import (
	"math"
	"testing"
	"testing/quick"

	"repro/internal/crypto"
	"repro/internal/topology"
)

func testDeployment(t *testing.T, n int, p Params, seed uint64) *Deployment {
	t.Helper()
	d, err := NewDeployment(n, p, crypto.KeyFromUint64(seed), crypto.NewStreamFromSeed(seed))
	if err != nil {
		t.Fatalf("NewDeployment: %v", err)
	}
	return d
}

func TestParamsValidate(t *testing.T) {
	cases := []struct {
		name    string
		p       Params
		wantErr bool
	}{
		{"paper", PaperParams(), false},
		{"dense", DenseParams(), false},
		{"zero pool", Params{PoolSize: 0, RingSize: 1}, true},
		{"zero ring", Params{PoolSize: 10, RingSize: 0}, true},
		{"ring exceeds pool", Params{PoolSize: 10, RingSize: 11}, true},
		{"ring equals pool", Params{PoolSize: 10, RingSize: 10}, false},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			if err := tc.p.Validate(); (err != nil) != tc.wantErr {
				t.Fatalf("Validate() error = %v, wantErr %v", err, tc.wantErr)
			}
		})
	}
}

func TestNewDeploymentRejectsBadInput(t *testing.T) {
	if _, err := NewDeployment(0, DenseParams(), crypto.Key{}, crypto.NewStreamFromSeed(1)); err == nil {
		t.Fatal("expected error for n=0")
	}
	if _, err := NewDeployment(5, Params{}, crypto.Key{}, crypto.NewStreamFromSeed(1)); err == nil {
		t.Fatal("expected error for invalid params")
	}
}

func TestRingSizeAndSortedDistinct(t *testing.T) {
	d := testDeployment(t, 30, Params{PoolSize: 500, RingSize: 60}, 1)
	for id := 0; id < 30; id++ {
		ring := d.Ring(topology.NodeID(id))
		if len(ring) != 60 {
			t.Fatalf("ring of %d has %d keys, want 60", id, len(ring))
		}
		for i := 1; i < len(ring); i++ {
			if ring[i] <= ring[i-1] {
				t.Fatalf("ring of %d not sorted/distinct at %d: %v", id, i, ring[i-1:i+1])
			}
		}
		for _, idx := range ring {
			if idx < 0 || idx >= 500 {
				t.Fatalf("ring index %d out of pool range", idx)
			}
			if !d.Holds(topology.NodeID(id), idx) {
				t.Fatalf("Holds(%d, %d) = false for ring member", id, idx)
			}
		}
	}
}

func TestHoldersInverseOfRings(t *testing.T) {
	d := testDeployment(t, 40, Params{PoolSize: 200, RingSize: 30}, 2)
	for idx := 0; idx < 200; idx++ {
		holders := d.Holders(idx)
		for i := 1; i < len(holders); i++ {
			if holders[i] <= holders[i-1] {
				t.Fatalf("holders of key %d not sorted: %v", idx, holders)
			}
		}
		for _, h := range holders {
			if !d.Holds(h, idx) {
				t.Fatalf("holder %d of key %d does not hold it", h, idx)
			}
		}
	}
	// Total ring size must equal total holder count.
	total := 0
	for idx := 0; idx < 200; idx++ {
		total += len(d.Holders(idx))
	}
	if total != 40*30 {
		t.Fatalf("holder total %d != 40*30", total)
	}
}

func TestSharedIndicesSymmetricAndCorrect(t *testing.T) {
	d := testDeployment(t, 20, Params{PoolSize: 100, RingSize: 40}, 3)
	for a := topology.NodeID(0); a < 20; a++ {
		for b := a + 1; b < 20; b++ {
			ab := d.SharedIndices(a, b)
			ba := d.SharedIndices(b, a)
			if len(ab) != len(ba) {
				t.Fatalf("SharedIndices not symmetric for (%d,%d)", a, b)
			}
			for i := range ab {
				if ab[i] != ba[i] {
					t.Fatalf("SharedIndices not symmetric for (%d,%d)", a, b)
				}
				if !d.Holds(a, ab[i]) || !d.Holds(b, ab[i]) {
					t.Fatalf("shared index %d not held by both", ab[i])
				}
			}
		}
	}
}

func TestEdgeKeyIndexDeterministicLowestUnrevoked(t *testing.T) {
	d := testDeployment(t, 10, Params{PoolSize: 50, RingSize: 25}, 4)
	a, b := topology.NodeID(1), topology.NodeID(2)
	shared := d.SharedIndices(a, b)
	if len(shared) < 2 {
		t.Skip("fixture produced fewer than 2 shared keys; adjust seed")
	}
	idx, ok := d.EdgeKeyIndex(a, b, nil)
	if !ok || idx != shared[0] {
		t.Fatalf("EdgeKeyIndex = %d, %v; want lowest shared %d", idx, ok, shared[0])
	}
	// Revoking the lowest shared key moves to the next one.
	idx2, ok := d.EdgeKeyIndex(a, b, func(i int) bool { return i == shared[0] })
	if !ok || idx2 != shared[1] {
		t.Fatalf("EdgeKeyIndex after revocation = %d, %v; want %d", idx2, ok, shared[1])
	}
	// Revoking everything kills the link.
	if _, ok := d.EdgeKeyIndex(a, b, func(int) bool { return true }); ok {
		t.Fatal("EdgeKeyIndex returned a fully revoked key")
	}
}

func TestSecureGraphFiltersKeylessEdges(t *testing.T) {
	// With a sparse pool, some radio links lack a shared key.
	d := testDeployment(t, 30, Params{PoolSize: 1000, RingSize: 20}, 5)
	phys := topology.Grid(5, 6)
	sec := d.SecureGraph(phys, nil)
	if sec.NumEdges() > phys.NumEdges() {
		t.Fatal("secure graph gained edges")
	}
	for _, e := range sec.Edges() {
		if _, ok := d.EdgeKeyIndex(e[0], e[1], nil); !ok {
			t.Fatalf("secure graph kept keyless edge %v", e)
		}
	}
	// With r = pool, every edge shares keys.
	dense := testDeployment(t, 30, Params{PoolSize: 30, RingSize: 30}, 6)
	if got := dense.SecureGraph(phys, nil).NumEdges(); got != phys.NumEdges() {
		t.Fatalf("full-ring secure graph lost edges: %d != %d", got, phys.NumEdges())
	}
}

func TestShareProbabilityMatchesBirthdayParadox(t *testing.T) {
	// Section III: with r = c*sqrt(u), share probability >= 1-e^{-c^2}.
	// Use c = 2 (r=200, u=10000): expect share prob around 1-e^-4 ~ 0.982.
	d := testDeployment(t, 120, Params{PoolSize: 10000, RingSize: 200}, 7)
	pairs, shared := 0, 0
	for a := topology.NodeID(0); a < 120; a++ {
		for b := a + 1; b < 120; b++ {
			pairs++
			if len(d.SharedIndices(a, b)) > 0 {
				shared++
			}
		}
	}
	got := float64(shared) / float64(pairs)
	want := 1 - math.Exp(-4)
	if got < want-0.03 {
		t.Fatalf("share probability %.3f below birthday-paradox bound %.3f", got, want)
	}
}

func TestPaperParamsShareProbabilityNearHalf(t *testing.T) {
	// Section IX: r=250, u=100000 gives share probability around 0.5.
	d := testDeployment(t, 100, PaperParams(), 8)
	pairs, shared := 0, 0
	for a := topology.NodeID(0); a < 100; a++ {
		for b := a + 1; b < 100; b++ {
			pairs++
			if len(d.SharedIndices(a, b)) > 0 {
				shared++
			}
		}
	}
	got := float64(shared) / float64(pairs)
	if got < 0.40 || got > 0.55 {
		t.Fatalf("paper-params share probability %.3f, want around 0.47", got)
	}
}

func TestDeploymentDeterministic(t *testing.T) {
	d1 := testDeployment(t, 15, Params{PoolSize: 100, RingSize: 10}, 9)
	d2 := testDeployment(t, 15, Params{PoolSize: 100, RingSize: 10}, 9)
	for id := topology.NodeID(0); id < 15; id++ {
		r1, r2 := d1.Ring(id), d2.Ring(id)
		for i := range r1 {
			if r1[i] != r2[i] {
				t.Fatalf("non-deterministic ring for node %d", id)
			}
		}
		if d1.SensorKey(id) != d2.SensorKey(id) {
			t.Fatal("non-deterministic sensor key")
		}
		if d1.RingSeed(id) != d2.RingSeed(id) {
			t.Fatal("non-deterministic ring seed")
		}
	}
}

func TestSensorKeysDistinct(t *testing.T) {
	d := testDeployment(t, 50, Params{PoolSize: 100, RingSize: 10}, 10)
	seen := make(map[crypto.Key]bool)
	for id := topology.NodeID(0); id < 50; id++ {
		k := d.SensorKey(id)
		if seen[k] {
			t.Fatalf("duplicate sensor key for node %d", id)
		}
		seen[k] = true
	}
}

func TestPoolKeysDistinct(t *testing.T) {
	d := testDeployment(t, 2, Params{PoolSize: 300, RingSize: 10}, 11)
	seen := make(map[crypto.Key]bool)
	for idx := 0; idx < 300; idx++ {
		k := d.PoolKey(idx)
		if seen[k] {
			t.Fatalf("duplicate pool key at index %d", idx)
		}
		seen[k] = true
	}
}

func TestUnionAndOverlap(t *testing.T) {
	d := testDeployment(t, 10, Params{PoolSize: 60, RingSize: 20}, 12)
	union := d.UnionOfRings([]topology.NodeID{1, 2})
	for _, idx := range d.Ring(1) {
		if !union[idx] {
			t.Fatalf("union missing ring-1 key %d", idx)
		}
	}
	for _, idx := range d.Ring(2) {
		if !union[idx] {
			t.Fatalf("union missing ring-2 key %d", idx)
		}
	}
	// Overlap of node 1 with the union must be its full ring.
	if got := d.OverlapWithUnion(1, union); got != 20 {
		t.Fatalf("overlap of member with union = %d, want 20", got)
	}
}

func TestSampleDistinctProperty(t *testing.T) {
	f := func(seed uint64) bool {
		rng := crypto.NewStreamFromSeed(seed)
		u := 50 + rng.Intn(200)
		k := 1 + rng.Intn(u)
		s := make([]int, k)
		scratch := make([]uint64, (u+63)/64)
		sampleDistinct(s, u, rng, scratch)
		if len(s) != k {
			return false
		}
		for _, w := range scratch {
			if w != 0 {
				return false // scratch must come back cleared
			}
		}
		for i := 1; i < len(s); i++ {
			if s[i] <= s[i-1] {
				return false
			}
		}
		for _, v := range s {
			if v < 0 || v >= u {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func TestRegistryKeyRevocation(t *testing.T) {
	d := testDeployment(t, 20, Params{PoolSize: 100, RingSize: 30}, 13)
	r := NewRegistry(d, 5)
	idx := d.Ring(3)[0]
	if r.KeyRevoked(idx) {
		t.Fatal("fresh registry has revoked keys")
	}
	r.RevokeKey(idx)
	if !r.KeyRevoked(idx) {
		t.Fatal("RevokeKey did not revoke")
	}
	if r.KeyRevocationAnnouncements() != 1 {
		t.Fatalf("announcements = %d, want 1", r.KeyRevocationAnnouncements())
	}
	// Idempotent.
	r.RevokeKey(idx)
	if r.KeyRevocationAnnouncements() != 1 {
		t.Fatal("duplicate revocation counted")
	}
	for _, h := range d.Holders(idx) {
		if r.RevokedCountFor(h) != 1 {
			t.Fatalf("holder %d count = %d, want 1", h, r.RevokedCountFor(h))
		}
	}
}

func TestRegistryThresholdCrossing(t *testing.T) {
	d := testDeployment(t, 10, Params{PoolSize: 200, RingSize: 20}, 14)
	r := NewRegistry(d, 3)
	target := topology.NodeID(4)
	ring := d.Ring(target)
	// Revoke target's keys one at a time; it must be wholly revoked at the
	// third.
	revoked := r.RevokeKey(ring[0])
	if len(revoked) != 0 || r.NodeRevoked(target) {
		t.Fatal("node revoked too early")
	}
	r.RevokeKey(ring[1])
	if r.NodeRevoked(target) {
		t.Fatal("node revoked too early")
	}
	newly := r.RevokeKey(ring[2])
	if !r.NodeRevoked(target) {
		t.Fatal("node not revoked at threshold")
	}
	found := false
	for _, id := range newly {
		if id == target {
			found = true
		}
	}
	if !found {
		t.Fatalf("threshold crossing did not report target; got %v", newly)
	}
	// After whole revocation, all its ring keys are revoked.
	for _, idx := range ring {
		if !r.KeyRevoked(idx) {
			t.Fatalf("ring key %d not revoked after node revocation", idx)
		}
	}
	// Individual announcements stay at 3: the rest went via the seed.
	if r.KeyRevocationAnnouncements() != 3 {
		t.Fatalf("announcements = %d, want 3", r.KeyRevocationAnnouncements())
	}
}

func TestRegistryRevokeNodeDirect(t *testing.T) {
	d := testDeployment(t, 10, Params{PoolSize: 200, RingSize: 20}, 15)
	r := NewRegistry(d, 0) // threshold disabled
	newly := r.RevokeNode(7)
	if len(newly) != 1 || newly[0] != 7 {
		t.Fatalf("RevokeNode returned %v, want [7]", newly)
	}
	if !r.NodeRevoked(7) {
		t.Fatal("node not revoked")
	}
	for _, idx := range d.Ring(7) {
		if !r.KeyRevoked(idx) {
			t.Fatal("ring key not revoked with node")
		}
	}
	// With theta=0 no other node is ever threshold-revoked.
	if len(r.RevokedNodes()) != 1 {
		t.Fatalf("unexpected cascade with theta=0: %v", r.RevokedNodes())
	}
	// Idempotent.
	if got := r.RevokeNode(7); got != nil {
		t.Fatalf("re-revocation returned %v", got)
	}
}

func TestRegistryNeverRevokesBaseStation(t *testing.T) {
	d := testDeployment(t, 5, Params{PoolSize: 20, RingSize: 20}, 16)
	r := NewRegistry(d, 1) // absurdly aggressive threshold
	// Revoking any key revokes every holder... except the base station.
	r.RevokeKey(d.Ring(1)[0])
	if r.NodeRevoked(topology.BaseStation) {
		t.Fatal("base station was revoked")
	}
}

func TestRegistryCascade(t *testing.T) {
	// Full-overlap rings: revoking one node revokes everyone (except BS)
	// when theta is low, demonstrating cascade propagation.
	d := testDeployment(t, 6, Params{PoolSize: 10, RingSize: 10}, 17)
	r := NewRegistry(d, 2)
	newly := r.RevokeNode(1)
	if len(newly) != 5 { // nodes 1..5; base station spared
		t.Fatalf("cascade revoked %d nodes, want 5 (got %v)", len(newly), newly)
	}
	if r.NodeRevoked(topology.BaseStation) {
		t.Fatal("cascade hit the base station")
	}
}

func TestSuggestThetaPaperCalibration(t *testing.T) {
	// The paper's Figure 7 readings: theta around 7 for f=1 and around 27
	// for f=20 at r=250, u=100,000, n=1,000.
	p := PaperParams()
	if got := SuggestTheta(p, 1, 1000, 0.1); got < 5 || got > 9 {
		t.Fatalf("SuggestTheta(f=1) = %d, want around 7", got)
	}
	if got := SuggestTheta(p, 20, 1000, 0.1); got < 22 || got > 33 {
		t.Fatalf("SuggestTheta(f=20) = %d, want around 27", got)
	}
}

func TestSuggestThetaMonotoneInF(t *testing.T) {
	p := PaperParams()
	prev := 0
	for _, f := range []int{1, 5, 10, 20} {
		got := SuggestTheta(p, f, 10000, 0.1)
		if got < prev {
			t.Fatalf("theta not monotone in f: f=%d gives %d after %d", f, got, prev)
		}
		prev = got
	}
}

func TestSuggestThetaScalesWithDensity(t *testing.T) {
	// Denser rings (higher innocent overlap) need larger thetas.
	sparse := SuggestTheta(PaperParams(), 2, 100, 0.05)
	dense := SuggestTheta(Params{PoolSize: 10000, RingSize: 300}, 2, 100, 0.05)
	if dense <= sparse {
		t.Fatalf("dense theta %d not above sparse %d", dense, sparse)
	}
}

func TestSuggestThetaDefaultsAndBounds(t *testing.T) {
	p := Params{PoolSize: 100, RingSize: 100}
	// Full-overlap rings: every key is shared, theta must top out at the
	// ring size rather than loop forever.
	if got := SuggestTheta(p, 1, 1000, 0); got < 1 || got > p.RingSize {
		t.Fatalf("theta %d outside [1, %d]", got, p.RingSize)
	}
}

func TestMisRevocationProbabilityDropsWithTheta(t *testing.T) {
	// Sanity of the Figure 7 mechanic: with one malicious node, the number
	// of honest sensors whose overlap exceeds theta must fall sharply as
	// theta grows.
	d := testDeployment(t, 200, Params{PoolSize: 10000, RingSize: 100}, 18)
	union := d.UnionOfRings([]topology.NodeID{5})
	count := func(theta int) int {
		n := 0
		for id := topology.NodeID(0); id < 200; id++ {
			if id == 5 {
				continue
			}
			if d.OverlapWithUnion(id, union) >= theta {
				n++
			}
		}
		return n
	}
	if c1, c7 := count(1), count(7); c7 > c1/10 && c7 > 2 {
		t.Fatalf("mis-revocation did not drop: theta=1 -> %d, theta=7 -> %d", c1, c7)
	}
}
