package keydist

import (
	"sort"

	"repro/internal/topology"
)

// Registry tracks revocation state for a deployment: individually revoked
// pool keys and wholly revoked sensors. It implements the threshold rule
// of Section VI-C: once at least Theta of a sensor's ring keys have been
// revoked, the whole sensor is revoked by announcing its ring seed, which
// in turn revokes every key in its ring. Because those keys may push other
// sensors past the threshold, revocation cascades; the cascade is exactly
// what makes mis-revocation of honest sensors possible when the adversary
// frames them, which Figure 7 quantifies.
//
// A Theta of 0 disables threshold-based sensor revocation (pure sequential
// edge-key revocation, the baseline the paper's ">90% fewer individually
// revoked keys" claim is measured against).
//
// Registry is not safe for concurrent mutation.
type Registry struct {
	deployment *Deployment
	theta      int

	revokedKeys  map[int]bool
	revokedNodes map[topology.NodeID]bool
	counts       map[topology.NodeID]int // revoked keys per node ring

	keyRevocations int // number of individual key-revocation announcements
}

// NewRegistry creates an empty registry with the given threshold.
func NewRegistry(d *Deployment, theta int) *Registry {
	return &Registry{
		deployment:   d,
		theta:        theta,
		revokedKeys:  make(map[int]bool),
		revokedNodes: make(map[topology.NodeID]bool),
		counts:       make(map[topology.NodeID]int),
	}
}

// Theta returns the sensor-revocation threshold.
func (r *Registry) Theta() int { return r.theta }

// KeyRevoked reports whether the pool key with this index is revoked.
func (r *Registry) KeyRevoked(index int) bool { return r.revokedKeys[index] }

// NodeRevoked reports whether the node has been wholly revoked.
func (r *Registry) NodeRevoked(id topology.NodeID) bool { return r.revokedNodes[id] }

// RevokedKeyCount returns the number of distinct revoked pool keys.
func (r *Registry) RevokedKeyCount() int { return len(r.revokedKeys) }

// KeyRevocationAnnouncements returns how many individual key revocations
// were announced (excluding keys revoked wholesale via a ring seed). This
// is the cost metric for the sequential-vs-threshold comparison.
func (r *Registry) KeyRevocationAnnouncements() int { return r.keyRevocations }

// RevokedNodes returns the sorted list of wholly revoked nodes.
func (r *Registry) RevokedNodes() []topology.NodeID {
	out := make([]topology.NodeID, 0, len(r.revokedNodes))
	for id := range r.revokedNodes {
		out = append(out, id)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// RevokedCountFor returns how many of id's ring keys are revoked.
func (r *Registry) RevokedCountFor(id topology.NodeID) int { return r.counts[id] }

// RevokeKey revokes a single pool key (the base station announces its
// index). It returns the nodes newly revoked by the threshold cascade, in
// the order they crossed the threshold.
func (r *Registry) RevokeKey(index int) []topology.NodeID {
	if r.revokedKeys[index] {
		return nil
	}
	r.keyRevocations++
	return r.revokeAll(r.markKey(index))
}

// RevokeNode wholly revokes a node (the base station announces its ring
// seed), revoking every key in its ring. It returns all nodes newly
// revoked, starting with id itself, including any cascade victims.
func (r *Registry) RevokeNode(id topology.NodeID) []topology.NodeID {
	return r.revokeAll([]topology.NodeID{id})
}

// markKey marks one key revoked and returns nodes that just crossed the
// threshold.
func (r *Registry) markKey(index int) []topology.NodeID {
	if r.revokedKeys[index] {
		return nil
	}
	r.revokedKeys[index] = true
	var crossed []topology.NodeID
	for _, holder := range r.deployment.Holders(index) {
		r.counts[holder]++
		if r.theta > 0 && !r.revokedNodes[holder] && r.counts[holder] == r.theta {
			crossed = append(crossed, holder)
		}
	}
	return crossed
}

// revokeAll wholly revokes each pending node, marking its ring keys
// revoked and following threshold crossings transitively. The base
// station is never revoked (it is trusted and its "ring" keys stay valid
// for its honest peers).
func (r *Registry) revokeAll(pending []topology.NodeID) []topology.NodeID {
	var revoked []topology.NodeID
	for len(pending) > 0 {
		id := pending[0]
		pending = pending[1:]
		if id == topology.BaseStation || r.revokedNodes[id] {
			continue
		}
		r.revokedNodes[id] = true
		revoked = append(revoked, id)
		for _, idx := range r.deployment.Ring(id) {
			pending = append(pending, r.markKey(idx)...)
		}
	}
	return revoked
}
