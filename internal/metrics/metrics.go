// Package metrics is a small, allocation-conscious metrics registry for
// the serving layer: counters, gauges, and fixed-bucket histograms, all
// backed by atomics so the hot paths they instrument never take a lock.
//
// The design follows the flush-once discipline the simulator's hot loops
// require: per-slot code accumulates into its own plain counters (see
// simnet.Stats) and reports aggregate deltas into a Registry once per
// execution. Handles returned by Counter/Gauge/Histogram are stable and
// should be cached by callers on hot paths; the name-to-handle lookup
// takes a mutex, updates through a handle are a single atomic op.
//
// Names follow the Prometheus text convention and may carry a label
// section, e.g. `vmat_jobs_total{outcome="done"}`. The exposition writer
// groups metrics by family (the name before the label section) and emits
// one `# TYPE` line per family, so the output is scrapeable as-is.
package metrics

import (
	"fmt"
	"io"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
)

// Counter is a monotonically increasing 64-bit counter.
type Counter struct {
	v atomic.Int64
}

// Add increments the counter by n (n must be non-negative; negative
// deltas are ignored to keep counters monotone).
func (c *Counter) Add(n int64) {
	if n > 0 {
		c.v.Add(n)
	}
}

// Inc increments the counter by one.
func (c *Counter) Inc() { c.v.Add(1) }

// Value returns the current count.
func (c *Counter) Value() int64 { return c.v.Load() }

// Gauge is a 64-bit value that can go up and down (queue depths,
// in-flight jobs).
type Gauge struct {
	v atomic.Int64
}

// Set replaces the gauge value.
func (g *Gauge) Set(n int64) { g.v.Store(n) }

// Add moves the gauge by delta (may be negative).
func (g *Gauge) Add(delta int64) { g.v.Add(delta) }

// Inc moves the gauge up by one.
func (g *Gauge) Inc() { g.v.Add(1) }

// Dec moves the gauge down by one.
func (g *Gauge) Dec() { g.v.Add(-1) }

// Value returns the current value.
func (g *Gauge) Value() int64 { return g.v.Load() }

// Histogram is a fixed-bucket cumulative histogram over int64
// observations (the unit is the caller's — the serving layer uses
// microseconds for latencies). Buckets are chosen at creation and never
// reallocated, so Observe is two atomic adds and a small scan.
type Histogram struct {
	bounds []int64        // sorted upper bounds; an implicit +Inf bucket follows
	counts []atomic.Int64 // len(bounds)+1
	sum    atomic.Int64
	count  atomic.Int64
}

// Observe records one value.
func (h *Histogram) Observe(v int64) {
	i := 0
	for i < len(h.bounds) && v > h.bounds[i] {
		i++
	}
	h.counts[i].Add(1)
	h.sum.Add(v)
	h.count.Add(1)
}

// Count returns the number of observations.
func (h *Histogram) Count() int64 { return h.count.Load() }

// Sum returns the sum of all observations.
func (h *Histogram) Sum() int64 { return h.sum.Load() }

// Registry holds named metrics. The zero value is not usable; construct
// with New. All methods are safe for concurrent use. A nil *Registry is
// accepted by the instrumented layers and means "don't measure".
type Registry struct {
	mu         sync.Mutex
	counters   map[string]*Counter
	gauges     map[string]*Gauge
	histograms map[string]*Histogram
}

// New returns an empty registry.
func New() *Registry {
	return &Registry{
		counters:   map[string]*Counter{},
		gauges:     map[string]*Gauge{},
		histograms: map[string]*Histogram{},
	}
}

// Counter returns the counter registered under name, creating it on
// first use. Panics if the name is already registered as another kind.
func (r *Registry) Counter(name string) *Counter {
	r.mu.Lock()
	defer r.mu.Unlock()
	if c, ok := r.counters[name]; ok {
		return c
	}
	r.mustBeFree(name, "counter")
	c := &Counter{}
	r.counters[name] = c
	return c
}

// Gauge returns the gauge registered under name, creating it on first
// use. Panics if the name is already registered as another kind.
func (r *Registry) Gauge(name string) *Gauge {
	r.mu.Lock()
	defer r.mu.Unlock()
	if g, ok := r.gauges[name]; ok {
		return g
	}
	r.mustBeFree(name, "gauge")
	g := &Gauge{}
	r.gauges[name] = g
	return g
}

// Histogram returns the histogram registered under name, creating it
// with the given bucket upper bounds on first use (bounds are sorted and
// deduplicated; later calls may pass nil to reuse the existing one).
// Panics if the name is already registered as another kind.
func (r *Registry) Histogram(name string, bounds []int64) *Histogram {
	r.mu.Lock()
	defer r.mu.Unlock()
	if h, ok := r.histograms[name]; ok {
		return h
	}
	r.mustBeFree(name, "histogram")
	bs := append([]int64(nil), bounds...)
	sort.Slice(bs, func(i, j int) bool { return bs[i] < bs[j] })
	bs = dedupe(bs)
	h := &Histogram{bounds: bs, counts: make([]atomic.Int64, len(bs)+1)}
	r.histograms[name] = h
	return h
}

func dedupe(sorted []int64) []int64 {
	out := sorted[:0]
	for i, v := range sorted {
		if i == 0 || v != sorted[i-1] {
			out = append(out, v)
		}
	}
	return out
}

// mustBeFree panics when name is taken by a different metric kind; a
// kind clash is a programming error, not a runtime condition.
func (r *Registry) mustBeFree(name, kind string) {
	if _, ok := r.counters[name]; ok {
		panic(fmt.Sprintf("metrics: %q already registered as a counter, requested as %s", name, kind))
	}
	if _, ok := r.gauges[name]; ok {
		panic(fmt.Sprintf("metrics: %q already registered as a gauge, requested as %s", name, kind))
	}
	if _, ok := r.histograms[name]; ok {
		panic(fmt.Sprintf("metrics: %q already registered as a histogram, requested as %s", name, kind))
	}
}

// SanitizeLabel restricts an externally-supplied string to
// [a-zA-Z0-9_.-] so it is safe to interpolate into a metric label
// value. A quote, brace, backslash, or newline in a hostile worker
// name, tenant ID, or header value would otherwise corrupt the text
// exposition format (and with it every scrape). Disallowed runes are
// dropped, not escaped: label values are identifiers here, not
// free-form text.
func SanitizeLabel(s string) string {
	return strings.Map(func(r rune) rune {
		switch {
		case r >= 'a' && r <= 'z', r >= 'A' && r <= 'Z', r >= '0' && r <= '9',
			r == '_', r == '.', r == '-':
			return r
		}
		return -1
	}, s)
}

// family splits off the label section: `a_total{x="y"}` -> `a_total`.
func family(name string) string {
	if i := strings.IndexByte(name, '{'); i >= 0 {
		return name[:i]
	}
	return name
}

// WriteText renders every metric in the Prometheus text exposition
// format, sorted by name, with one # TYPE line per family.
func (r *Registry) WriteText(w io.Writer) error {
	// Snapshot name->metric pairs while holding the lock: labeled metrics
	// are registered lazily at runtime, so indexing the live maps after
	// unlocking would race with a concurrent insert (a fatal concurrent
	// map read/write). The values themselves are atomics, so rendering
	// outside the lock stays safe.
	type entry struct {
		name string
		kind string // counter | gauge | histogram
		c    *Counter
		g    *Gauge
		h    *Histogram
	}
	r.mu.Lock()
	entries := make([]entry, 0, len(r.counters)+len(r.gauges)+len(r.histograms))
	for name, c := range r.counters {
		entries = append(entries, entry{name: name, kind: "counter", c: c})
	}
	for name, g := range r.gauges {
		entries = append(entries, entry{name: name, kind: "gauge", g: g})
	}
	for name, h := range r.histograms {
		entries = append(entries, entry{name: name, kind: "histogram", h: h})
	}
	r.mu.Unlock()

	sort.Slice(entries, func(i, j int) bool { return entries[i].name < entries[j].name })
	lastFamily := ""
	for _, e := range entries {
		if f := family(e.name); f != lastFamily {
			if _, err := fmt.Fprintf(w, "# TYPE %s %s\n", f, e.kind); err != nil {
				return err
			}
			lastFamily = f
		}
		switch e.kind {
		case "counter":
			if _, err := fmt.Fprintf(w, "%s %d\n", e.name, e.c.Value()); err != nil {
				return err
			}
		case "gauge":
			if _, err := fmt.Fprintf(w, "%s %d\n", e.name, e.g.Value()); err != nil {
				return err
			}
		case "histogram":
			if err := writeHistogram(w, e.name, e.h); err != nil {
				return err
			}
		}
	}
	return nil
}

// writeHistogram renders cumulative buckets plus _sum and _count. Bucket
// lines splice the le label into any existing label section.
func writeHistogram(w io.Writer, name string, h *Histogram) error {
	base, labels := name, ""
	if i := strings.IndexByte(name, '{'); i >= 0 {
		base, labels = name[:i], strings.TrimSuffix(name[i+1:], "}")
		labels += ","
	}
	var cum int64
	for i := range h.counts {
		cum += h.counts[i].Load()
		le := "+Inf"
		if i < len(h.bounds) {
			le = fmt.Sprintf("%d", h.bounds[i])
		}
		if _, err := fmt.Fprintf(w, "%s_bucket{%sle=%q} %d\n", base, labels, le, cum); err != nil {
			return err
		}
	}
	suffix := ""
	if labels != "" {
		suffix = "{" + strings.TrimSuffix(labels, ",") + "}"
	}
	if _, err := fmt.Fprintf(w, "%s_sum%s %d\n", base, suffix, h.Sum()); err != nil {
		return err
	}
	_, err := fmt.Fprintf(w, "%s_count%s %d\n", base, suffix, h.Count())
	return err
}
