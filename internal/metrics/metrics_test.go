package metrics

import (
	"fmt"
	"io"
	"strings"
	"sync"
	"testing"
)

func TestCounterGaugeBasics(t *testing.T) {
	r := New()
	c := r.Counter("jobs_total")
	c.Inc()
	c.Add(4)
	c.Add(-10) // ignored: counters are monotone
	if got := c.Value(); got != 5 {
		t.Fatalf("counter = %d, want 5", got)
	}
	if r.Counter("jobs_total") != c {
		t.Fatal("Counter is not get-or-create")
	}
	g := r.Gauge("queue_depth")
	g.Set(7)
	g.Add(-3)
	g.Dec()
	if got := g.Value(); got != 3 {
		t.Fatalf("gauge = %d, want 3", got)
	}
}

func TestHistogramBuckets(t *testing.T) {
	r := New()
	h := r.Histogram("latency_us", []int64{10, 100, 1000})
	for _, v := range []int64{1, 10, 11, 99, 100, 5000} {
		h.Observe(v)
	}
	if h.Count() != 6 {
		t.Fatalf("count = %d, want 6", h.Count())
	}
	if h.Sum() != 1+10+11+99+100+5000 {
		t.Fatalf("sum = %d", h.Sum())
	}
	var sb strings.Builder
	if err := r.WriteText(&sb); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, want := range []string{
		"# TYPE latency_us histogram",
		`latency_us_bucket{le="10"} 2`,
		`latency_us_bucket{le="100"} 5`,
		`latency_us_bucket{le="1000"} 5`,
		`latency_us_bucket{le="+Inf"} 6`,
		"latency_us_count 6",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("exposition missing %q in:\n%s", want, out)
		}
	}
}

func TestLabeledNamesShareOneTypeLine(t *testing.T) {
	r := New()
	r.Counter(`jobs_total{outcome="done"}`).Add(2)
	r.Counter(`jobs_total{outcome="failed"}`).Inc()
	var sb strings.Builder
	if err := r.WriteText(&sb); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	if strings.Count(out, "# TYPE jobs_total counter") != 1 {
		t.Fatalf("want exactly one TYPE line for the jobs_total family:\n%s", out)
	}
	if !strings.Contains(out, `jobs_total{outcome="done"} 2`) ||
		!strings.Contains(out, `jobs_total{outcome="failed"} 1`) {
		t.Fatalf("missing labeled samples:\n%s", out)
	}
}

func TestLabeledHistogramExposition(t *testing.T) {
	r := New()
	h := r.Histogram(`dur_us{route="/v1/jobs"}`, []int64{50})
	h.Observe(10)
	h.Observe(60)
	var sb strings.Builder
	if err := r.WriteText(&sb); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, want := range []string{
		`dur_us_bucket{route="/v1/jobs",le="50"} 1`,
		`dur_us_bucket{route="/v1/jobs",le="+Inf"} 2`,
		`dur_us_sum{route="/v1/jobs"} 70`,
		`dur_us_count{route="/v1/jobs"} 2`,
	} {
		if !strings.Contains(out, want) {
			t.Errorf("exposition missing %q in:\n%s", want, out)
		}
	}
}

func TestKindClashPanics(t *testing.T) {
	r := New()
	r.Counter("x")
	defer func() {
		if recover() == nil {
			t.Fatal("want panic on kind clash")
		}
	}()
	r.Gauge("x")
}

// TestConcurrentScrapeAndRegister scrapes WriteText while other
// goroutines lazily register new labeled metrics — the serving pattern
// where a /metrics scrape races the first job outcome or first HTTP
// status of a route. Under -race this proves exposition never indexes
// the live maps outside the registry lock.
func TestConcurrentScrapeAndRegister(t *testing.T) {
	r := New()
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 300; i++ {
				r.Counter(fmt.Sprintf(`jobs_total{outcome="o%d_%d"}`, g, i)).Inc()
				r.Gauge(fmt.Sprintf("depth_%d_%d", g, i)).Set(int64(i))
				r.Histogram(fmt.Sprintf(`dur_us{route="/r%d/%d"}`, g, i), []int64{10, 100}).Observe(int64(i))
				r.Counter(`http_total{code="200"}`).Inc()
			}
		}(g)
	}
	done := make(chan struct{})
	go func() { wg.Wait(); close(done) }()
	for scraping := true; scraping; {
		select {
		case <-done:
			scraping = false
		default:
		}
		if err := r.WriteText(io.Discard); err != nil {
			t.Fatal(err)
		}
	}
	var sb strings.Builder
	if err := r.WriteText(&sb); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(sb.String(), fmt.Sprintf(`http_total{code="200"} %d`, 8*300)) {
		t.Fatalf("final scrape missing expected sample:\n%s", sb.String())
	}
}

// TestConcurrentUse exercises registration and updates from many
// goroutines; run under -race it proves the lock/atomic split.
func TestConcurrentUse(t *testing.T) {
	r := New()
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 500; i++ {
				r.Counter("shared_total").Inc()
				r.Gauge("depth").Add(1)
				r.Gauge("depth").Add(-1)
				r.Histogram("h_us", []int64{1, 10}).Observe(int64(i % 20))
			}
		}()
	}
	wg.Wait()
	if got := r.Counter("shared_total").Value(); got != 8*500 {
		t.Fatalf("counter = %d, want %d", got, 8*500)
	}
	if got := r.Gauge("depth").Value(); got != 0 {
		t.Fatalf("gauge = %d, want 0", got)
	}
	if got := r.Histogram("h_us", nil).Count(); got != 8*500 {
		t.Fatalf("histogram count = %d, want %d", got, 8*500)
	}
}
