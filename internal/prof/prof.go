// Package prof wires the standard -cpuprofile/-memprofile flags for the
// repo's binaries: profiles target the simulator hot paths (slot sweeps,
// seed hashing), so both vmat-bench and vmat-sim expose the same switches.
package prof

import (
	"fmt"
	"os"
	"runtime"
	"runtime/pprof"
)

// Start begins CPU profiling into cpuPath (if non-empty) and returns a
// stop function that finishes the CPU profile and writes a heap profile
// to memPath (if non-empty). The stop function is safe to call exactly
// once, typically via defer around the program's work.
func Start(cpuPath, memPath string) (func(), error) {
	var cpuFile *os.File
	if cpuPath != "" {
		f, err := os.Create(cpuPath)
		if err != nil {
			return nil, fmt.Errorf("create cpu profile: %w", err)
		}
		if err := pprof.StartCPUProfile(f); err != nil {
			f.Close()
			return nil, fmt.Errorf("start cpu profile: %w", err)
		}
		cpuFile = f
	}
	return func() {
		if cpuFile != nil {
			pprof.StopCPUProfile()
			cpuFile.Close()
		}
		if memPath != "" {
			f, err := os.Create(memPath)
			if err != nil {
				fmt.Fprintln(os.Stderr, "mem profile:", err)
				return
			}
			defer f.Close()
			runtime.GC() // settle live-heap accounting before the snapshot
			if err := pprof.WriteHeapProfile(f); err != nil {
				fmt.Fprintln(os.Stderr, "mem profile:", err)
			}
		}
	}, nil
}
