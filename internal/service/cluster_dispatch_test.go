package service

import (
	"context"
	"encoding/json"
	"errors"
	"net/http"
	"net/http/httptest"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/experiments"
)

// fakeExecutor scripts the cluster side of the dispatch seam.
type fakeExecutor struct {
	calls atomic.Int64
	rows  []experiments.ScenarioRow
	ok    bool
	err   error
}

func (f *fakeExecutor) Execute(ctx context.Context, cfg experiments.ScenarioConfig) ([]experiments.ScenarioRow, bool, error) {
	f.calls.Add(1)
	return f.rows, f.ok, f.err
}

func waitDone(t *testing.T, job *Job) {
	t.Helper()
	select {
	case <-job.Done():
	case <-time.After(30 * time.Second):
		t.Fatalf("job %s never finished", job.ID())
	}
}

func dispatchSpec() Spec {
	return Spec{ScenarioConfig: experiments.ScenarioConfig{
		N: 12, Topology: "line", Query: "min", Trials: 2, Seed: 3, Synopses: 8,
	}}
}

func TestDispatchPrefersCluster(t *testing.T) {
	want := []experiments.ScenarioRow{{Trial: 42}}
	exec := &fakeExecutor{rows: want, ok: true}
	m := New(Config{Workers: 1, Cluster: exec})
	defer m.Drain(context.Background())

	job, err := m.Submit(dispatchSpec())
	if err != nil {
		t.Fatal(err)
	}
	waitDone(t, job)
	if job.Status() != StatusDone {
		t.Fatalf("status = %s (%s)", job.Status(), job.Err())
	}
	if rows := job.Rows(); len(rows) != 1 || rows[0].Trial != 42 {
		t.Fatalf("rows %+v did not come from the cluster", rows)
	}
	if exec.calls.Load() != 1 {
		t.Fatalf("executor called %d times, want 1", exec.calls.Load())
	}
	if v := m.Registry().Counter(MetricJobsExecuted + `{path="cluster"}`).Value(); v != 1 {
		t.Fatalf("cluster-path executions = %d, want 1", v)
	}
}

func TestDispatchFallsBackToLocalPool(t *testing.T) {
	exec := &fakeExecutor{ok: false} // fleet cannot take the unit
	m := New(Config{Workers: 1, Cluster: exec})
	defer m.Drain(context.Background())

	job, err := m.Submit(dispatchSpec())
	if err != nil {
		t.Fatal(err)
	}
	waitDone(t, job)
	if job.Status() != StatusDone {
		t.Fatalf("status = %s (%s)", job.Status(), job.Err())
	}
	if len(job.Rows()) == 0 {
		t.Fatal("local fallback produced no rows")
	}
	if exec.calls.Load() != 1 {
		t.Fatalf("executor called %d times, want 1", exec.calls.Load())
	}
	if v := m.Registry().Counter(MetricJobsExecuted + `{path="local"}`).Value(); v != 1 {
		t.Fatalf("local-path executions = %d, want 1", v)
	}
}

func TestDispatchClusterErrorFailsJob(t *testing.T) {
	exec := &fakeExecutor{ok: true, err: errors.New("remote execution failed")}
	m := New(Config{Workers: 1, Cluster: exec})
	defer m.Drain(context.Background())

	job, err := m.Submit(dispatchSpec())
	if err != nil {
		t.Fatal(err)
	}
	waitDone(t, job)
	if job.Status() != StatusFailed {
		t.Fatalf("status = %s, want failed", job.Status())
	}
}

func TestTracedJobsBypassCluster(t *testing.T) {
	exec := &fakeExecutor{ok: true}
	m := New(Config{Workers: 1, Cluster: exec})
	defer m.Drain(context.Background())

	spec := dispatchSpec()
	spec.Trace = true
	job, err := m.Submit(spec)
	if err != nil {
		t.Fatal(err)
	}
	waitDone(t, job)
	if job.Status() != StatusDone {
		t.Fatalf("status = %s (%s)", job.Status(), job.Err())
	}
	if exec.calls.Load() != 0 {
		t.Fatal("traced job was dispatched to the cluster; its events cannot stream from there")
	}
}

// fakeReporter scripts the /healthz workers section.
type fakeReporter struct{ ws WorkersStatus }

func (f *fakeReporter) WorkersStatus() WorkersStatus { return f.ws }

func TestHealthzWorkersSection(t *testing.T) {
	m := New(Config{Workers: 1})
	defer m.Drain(context.Background())

	get := func(h *fakeReporter) map[string]any {
		t.Helper()
		var rep WorkersReporter
		if h != nil {
			rep = h
		}
		srv := httptest.NewServer(NewHandler(m, "test", rep, nil))
		defer srv.Close()
		var body map[string]any
		getJSONBody(t, srv.URL+"/healthz", &body)
		return body
	}

	// Cluster mode off: no workers section, status ok.
	body := get(nil)
	if _, present := body["workers"]; present {
		t.Fatal("workers section present without a reporter")
	}
	if body["status"] != "ok" {
		t.Fatalf("status = %v, want ok", body["status"])
	}

	// Cluster mode on with an empty fleet: degraded, counters visible.
	body = get(&fakeReporter{ws: WorkersStatus{Connected: 0, LeasesExpired: 7}})
	if body["status"] != "degraded" {
		t.Fatalf("status with empty fleet = %v, want degraded", body["status"])
	}
	ws, _ := body["workers"].(map[string]any)
	if ws == nil || ws["connected"] != float64(0) || ws["leases_expired"] != float64(7) {
		t.Fatalf("workers section = %v", body["workers"])
	}

	// Workers connected: back to ok.
	body = get(&fakeReporter{ws: WorkersStatus{Connected: 2, LeasesActive: 1}})
	if body["status"] != "ok" {
		t.Fatalf("status with workers = %v, want ok", body["status"])
	}
	ws, _ = body["workers"].(map[string]any)
	if ws == nil || ws["connected"] != float64(2) || ws["leases_active"] != float64(1) {
		t.Fatalf("workers section = %v", body["workers"])
	}
}

func getJSONBody(t *testing.T, url string, v any) {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if err := json.NewDecoder(resp.Body).Decode(v); err != nil {
		t.Fatal(err)
	}
}
