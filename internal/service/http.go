package service

import (
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"strings"
	"time"

	"repro/internal/metrics"
	"repro/internal/tenant"
)

// HTTP metric names. Both carry route and (for requests) status-code
// labels, e.g. `http_requests_total{route="POST /v1/jobs",code="202"}`.
const (
	MetricHTTPRequests = "http_requests_total"
	MetricHTTPDuration = "http_request_duration_us"
)

// maxSpecBytes bounds a job-submission body.
const maxSpecBytes = 1 << 20

// WorkersStatus is the cluster coordinator's contribution to /healthz:
// the connected-worker count and the lease counters operators alarm
// on. internal/cluster's Coordinator implements WorkersReporter.
type WorkersStatus struct {
	Connected     int   `json:"connected"`
	LeasesActive  int   `json:"leases_active"`
	LeasesExpired int64 `json:"leases_expired"`
	// WireConnected counts workers holding a live streaming-transport
	// conn; always ≤ Connected (HTTP-polling workers are connected but
	// not wired).
	WireConnected int `json:"wire_connected,omitempty"`
}

// WorkersReporter reports the worker fleet's state for /healthz.
type WorkersReporter interface {
	WorkersStatus() WorkersStatus
}

// RecoveryStatus is the crash-recovery subsystem's contribution to
// /healthz: what startup replay of the control-plane WAL found and did.
// The sweep manager implements RecoveryReporter.
type RecoveryStatus struct {
	// Active is true while replay is still rebuilding state; the server
	// reports "degraded" until it flips false.
	Active          bool  `json:"active"`
	ReplayedRecords int64 `json:"replayed_records"`
	ResumedSweeps   int64 `json:"resumed_sweeps"`
	ReenqueuedUnits int64 `json:"reenqueued_units"`
	WallTimeMicros  int64 `json:"wall_time_us"`
}

// RecoveryReporter reports crash-recovery progress for /healthz.
type RecoveryReporter interface {
	RecoveryStatus() RecoveryStatus
}

// NewHandler returns the server's HTTP API over a manager:
//
//	POST   /v1/jobs            submit a job (202; 400 invalid, 429 full, 503 draining)
//	GET    /v1/jobs/{id}       job status and, when done, result rows
//	GET    /v1/jobs/{id}/trace stream buffered engine events as NDJSON
//	DELETE /v1/jobs/{id}       cancel a queued or running job
//	GET    /healthz            liveness (includes version and drain state)
//	GET    /metrics            text exposition of the manager's registry
//
// workers, when non-nil, adds a "workers" section to /healthz and flips
// its status to "degraded" while cluster mode has zero workers
// connected (jobs still run — the local pool absorbs them — but the
// operator asked for a fleet and has none). Pass nil when cluster mode
// is off.
//
// recovery, when non-nil, adds a "recovery" section to /healthz with
// the control-plane WAL replay counters and flips the status to
// "degraded" while the replay is still rebuilding state (submissions
// wait on it). Pass nil when the server runs without a data dir.
//
// Every route is instrumented with a request counter and a latency
// histogram in the manager's registry.
func NewHandler(m *Manager, version string, workers WorkersReporter, recovery RecoveryReporter) http.Handler {
	h := &api{m: m, version: version, workers: workers, recovery: recovery}
	mux := http.NewServeMux()
	mux.HandleFunc("POST /v1/jobs", h.instrument("POST /v1/jobs", WithTenant(m, h.submit)))
	mux.HandleFunc("GET /v1/jobs/{id}", h.instrument("GET /v1/jobs/{id}", WithTenant(m, h.get)))
	mux.HandleFunc("GET /v1/jobs/{id}/trace", h.instrument("GET /v1/jobs/{id}/trace", WithTenant(m, h.trace)))
	mux.HandleFunc("DELETE /v1/jobs/{id}", h.instrument("DELETE /v1/jobs/{id}", WithTenant(m, h.cancel)))
	mux.HandleFunc("GET /healthz", h.instrument("GET /healthz", h.healthz))
	mux.HandleFunc("GET /metrics", h.metrics) // not instrumented: scrapes shouldn't move the metrics they read
	return mux
}

// TenantHandler is an HTTP handler that has passed the front door: t is
// the authenticated (or anonymous) tenant.
type TenantHandler func(w http.ResponseWriter, r *http.Request, t *tenant.Tenant)

// WithTenant authenticates the request against the manager's front
// door before calling fn. A server running with a keyfile answers 401
// to missing or unknown keys (unless the keyfile admits anonymous
// traffic); an open server maps everything to the anonymous tenant.
// Every authenticated request is counted in tenant_requests_total.
// /healthz and /metrics stay outside the front door — probes and
// scrapers don't carry keys. Exported for sibling subsystems mounting
// routes on the same server (the sweep API).
func WithTenant(m *Manager, fn TenantHandler) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		t, err := m.Tenants().FromRequest(r)
		if err != nil {
			w.Header().Set("WWW-Authenticate", `Bearer realm="vmat"`)
			writeError(w, http.StatusUnauthorized, err.Error())
			return
		}
		fn(w, r, t)
	}
}

// writeAdmissionError maps a Submit rejection to its status code. All
// front-door pressure (rate limit, quota, shed, full queue) is 429 with
// a Retry-After header derived from the tenant's token-bucket refill
// time, so well-behaved clients reschedule instead of hammering.
func writeAdmissionError(w http.ResponseWriter, err error) {
	var adm *tenant.AdmissionError
	switch {
	case errors.As(err, &adm):
		w.Header().Set("Retry-After", adm.RetryAfterHeader())
		writeError(w, http.StatusTooManyRequests, err.Error())
	case errors.Is(err, ErrQueueFull):
		w.Header().Set("Retry-After", "1")
		writeError(w, http.StatusTooManyRequests, err.Error())
	case errors.Is(err, ErrDraining):
		writeError(w, http.StatusServiceUnavailable, err.Error())
	default:
		writeError(w, http.StatusBadRequest, err.Error())
	}
}

type api struct {
	m        *Manager
	version  string
	workers  WorkersReporter
	recovery RecoveryReporter
}

// statusRecorder captures the response code for instrumentation.
type statusRecorder struct {
	http.ResponseWriter
	code int
}

func (r *statusRecorder) WriteHeader(code int) {
	r.code = code
	r.ResponseWriter.WriteHeader(code)
}

// Flush forwards to the underlying writer so NDJSON streaming works
// through the recorder.
func (r *statusRecorder) Flush() {
	if f, ok := r.ResponseWriter.(http.Flusher); ok {
		f.Flush()
	}
}

func (h *api) instrument(route string, fn http.HandlerFunc) http.HandlerFunc {
	return Instrument(h.m.Registry(), route, fn)
}

// Instrument wraps an HTTP handler with the server's standard per-route
// request counter and latency histogram in reg. Exported so sibling
// subsystems mounting extra routes on the same server (the sweep API)
// report into the same metric families.
func Instrument(reg *metrics.Registry, route string, fn http.HandlerFunc) http.HandlerFunc {
	dur := reg.Histogram(
		fmt.Sprintf("%s{route=%q}", MetricHTTPDuration, route),
		[]int64{100, 1_000, 10_000, 100_000, 1_000_000, 10_000_000})
	return func(w http.ResponseWriter, r *http.Request) {
		rec := &statusRecorder{ResponseWriter: w, code: http.StatusOK}
		start := time.Now()
		fn(rec, r)
		dur.Observe(time.Since(start).Microseconds())
		reg.Counter(fmt.Sprintf("%s{route=%q,code=\"%d\"}", MetricHTTPRequests, route, rec.code)).Inc()
	}
}

func writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	_ = json.NewEncoder(w).Encode(v)
}

func writeError(w http.ResponseWriter, code int, msg string) {
	writeJSON(w, code, map[string]string{"error": msg})
}

func (h *api) submit(w http.ResponseWriter, r *http.Request, t *tenant.Tenant) {
	var spec Spec
	dec := json.NewDecoder(http.MaxBytesReader(w, r.Body, maxSpecBytes))
	// Reject unknown keys outright: a typo'd field (say "fautls") in a
	// fault-injection spec would otherwise run a quietly fault-free job
	// and report misleading availability numbers.
	dec.DisallowUnknownFields()
	if err := dec.Decode(&spec); err != nil {
		writeError(w, http.StatusBadRequest, "invalid job spec: "+err.Error())
		return
	}
	job, err := h.m.SubmitAs(t, spec)
	if err != nil {
		writeAdmissionError(w, err)
		return
	}
	writeJSON(w, http.StatusAccepted, map[string]string{
		"id":     job.ID(),
		"status": string(job.Status()),
	})
}

// lookup resolves the path's job and enforces ownership:
// authentication alone is not authorization, and job IDs are
// sequential, so a job owned by another tenant reads as absent (404,
// never 403 — existence itself is the leak) for reads and cancels
// alike. Admin tenants (keyfile `"admin": true`) see every job.
func (h *api) lookup(r *http.Request, t *tenant.Tenant) (*Job, bool) {
	job, ok := h.m.Get(r.PathValue("id"))
	if !ok || !t.CanAccess(job.Tenant()) {
		return nil, false
	}
	return job, true
}

func (h *api) get(w http.ResponseWriter, r *http.Request, t *tenant.Tenant) {
	job, ok := h.lookup(r, t)
	if !ok {
		writeError(w, http.StatusNotFound, ErrNotFound.Error())
		return
	}
	writeJSON(w, http.StatusOK, job.View())
}

func (h *api) cancel(w http.ResponseWriter, r *http.Request, t *tenant.Tenant) {
	if _, ok := h.lookup(r, t); !ok {
		writeError(w, http.StatusNotFound, ErrNotFound.Error())
		return
	}
	job, err := h.m.Cancel(r.PathValue("id"))
	if err != nil {
		writeError(w, http.StatusNotFound, err.Error())
		return
	}
	writeJSON(w, http.StatusOK, map[string]string{
		"id":     job.ID(),
		"status": string(job.Status()),
	})
}

// trace streams the job's buffered engine events as NDJSON, following
// a still-running job until it finishes (or the client goes away).
func (h *api) trace(w http.ResponseWriter, r *http.Request, t *tenant.Tenant) {
	job, ok := h.lookup(r, t)
	if !ok {
		writeError(w, http.StatusNotFound, ErrNotFound.Error())
		return
	}
	if !job.Spec().Trace {
		writeError(w, http.StatusBadRequest, "job was not submitted with trace enabled")
		return
	}
	w.Header().Set("Content-Type", "application/x-ndjson")
	w.WriteHeader(http.StatusOK)
	enc := NewTraceEncoder(w)
	flusher, _ := w.(http.Flusher)
	next := 0
	for {
		events, terminal := job.TraceSince(next)
		for _, te := range events {
			if err := enc.EncodeEvent(te); err != nil {
				return
			}
		}
		next += len(events)
		if flusher != nil && len(events) > 0 {
			flusher.Flush()
		}
		if terminal {
			// The snapshot was taken under the job lock after the final
			// transition, so events includes everything: done.
			return
		}
		select {
		case <-r.Context().Done():
			return
		case <-job.Done():
		case <-time.After(50 * time.Millisecond):
		}
	}
}

func (h *api) healthz(w http.ResponseWriter, r *http.Request) {
	// The status field is tiered: "ok" when nothing is wrong, "degraded"
	// while back-pressure builds (queue occupancy past the degraded
	// threshold, an empty cluster fleet, or WAL replay in flight — still
	// a live 200, work still runs), and "shedding" once the admission
	// layer has started bouncing over-share tenants to keep the rest
	// live. Shedding comes only from the fair queue and is never
	// downgraded by the other checks.
	adm := h.m.AdmissionStatus()
	status := adm.Tier
	body := map[string]any{
		"version":   h.version,
		"draining":  h.m.Draining(),
		"admission": adm,
	}
	degrade := func() {
		if status == tenant.TierOK {
			status = tenant.TierDegraded
		}
	}
	if h.workers != nil {
		ws := h.workers.WorkersStatus()
		body["workers"] = ws
		if ws.Connected == 0 {
			degrade()
		}
	}
	if h.recovery != nil {
		rs := h.recovery.RecoveryStatus()
		body["recovery"] = rs
		if rs.Active {
			degrade()
		}
	}
	if ss, ok := h.m.StoreStatus(); ok {
		body["store"] = ss
	}
	body["status"] = status
	writeJSON(w, http.StatusOK, body)
}

func (h *api) metrics(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "text/plain; version=0.0.4")
	var sb strings.Builder
	if err := h.m.Registry().WriteText(&sb); err != nil {
		writeError(w, http.StatusInternalServerError, err.Error())
		return
	}
	_, _ = w.Write([]byte(sb.String()))
}
