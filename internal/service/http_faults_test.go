package service

import (
	"bytes"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"repro/internal/experiments"
	"repro/internal/faults"
	"repro/internal/simnet"
)

// TestSubmitRejectsUnknownFields: a typo'd key in a job spec must be a
// 400, not a silently ignored field — a job with "fautls" instead of
// "faults" would otherwise run fault-free and report misleading
// availability numbers.
func TestSubmitRejectsUnknownFields(t *testing.T) {
	m := New(Config{QueueSize: 2, Workers: 1})
	defer drain(t, m)
	srv := httptest.NewServer(NewHandler(m, "test", nil, nil))
	defer srv.Close()

	body := `{"n":30,"topology":"line","query":"min","trials":1,"seed":1,"fautls":{"crash_prob":0.5}}`
	resp, err := http.Post(srv.URL+"/v1/jobs", "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("POST with unknown field -> %d, want 400", resp.StatusCode)
	}
	var out map[string]string
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out["error"], "fautls") {
		t.Fatalf("error %q does not name the offending field", out["error"])
	}
}

// TestHealthzDegradedWhenQueueFull: a saturated queue keeps /healthz at
// 200 (the process is alive) but escalates the body status through the
// admission tiers — at full occupancy the fair queue is shedding.
func TestHealthzDegradedWhenQueueFull(t *testing.T) {
	gate := make(chan struct{})
	m := New(Config{QueueSize: 2, Workers: 1})
	m.runGate = gate
	srv := httptest.NewServer(NewHandler(m, "test", nil, nil))
	defer srv.Close()

	health := func() string {
		t.Helper()
		resp, err := http.Get(srv.URL + "/healthz")
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("GET /healthz -> %d, want 200 even when degraded", resp.StatusCode)
		}
		var out map[string]any
		if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
			t.Fatal(err)
		}
		status, _ := out["status"].(string)
		return status
	}

	if got := health(); got != "ok" {
		t.Fatalf("idle healthz status = %q, want ok", got)
	}
	// One job held at the gate by the worker, two more saturating the
	// queue.
	first, code := postJob(t, srv, testSpec())
	if code != http.StatusAccepted {
		t.Fatalf("job 1 -> %d", code)
	}
	waitStatus(t, srv, first, StatusRunning)
	for i := 2; i <= 3; i++ {
		if _, code := postJob(t, srv, testSpec()); code != http.StatusAccepted {
			t.Fatalf("job %d -> %d, want 202", i, code)
		}
	}
	if got := health(); got != "shedding" {
		t.Fatalf("saturated healthz status = %q, want shedding", got)
	}

	close(gate)
	drain(t, m)
	if got := health(); got != "ok" {
		t.Fatalf("drained healthz status = %q, want ok", got)
	}
}

// TestFaultJobRunsEndToEnd: a fault-injection spec travels through the
// HTTP API and comes back with degradation columns matching a direct
// experiments.RunScenario call.
func TestFaultJobRunsEndToEnd(t *testing.T) {
	m := New(Config{QueueSize: 2, Workers: 1})
	defer drain(t, m)
	srv := httptest.NewServer(NewHandler(m, "test", nil, nil))
	defer srv.Close()

	spec := Spec{ScenarioConfig: experiments.ScenarioConfig{
		N:        30,
		Topology: "geometric",
		Query:    "min",
		Attack:   "none",
		Trials:   3,
		Seed:     19,
		Workers:  2,
		Faults:   &faults.Spec{Burst: &faults.BurstSpec{EnterProb: 0.1, ExitProb: 0.2, LossBad: 0.5}},
		ARQ:      &simnet.ARQConfig{},
	}}
	id, code := postJob(t, srv, spec)
	if code != http.StatusAccepted {
		t.Fatalf("POST fault job -> %d, want 202", code)
	}
	v := waitStatus(t, srv, id, StatusDone)
	if len(v.Rows) != spec.Trials {
		t.Fatalf("got %d rows, want %d", len(v.Rows), spec.Trials)
	}
	var retransmits int64
	for _, r := range v.Rows {
		retransmits += r.Retransmits
	}
	if retransmits == 0 {
		t.Fatal("burst loss with the ARQ enabled produced no retransmissions")
	}
	want, err := experiments.RunScenario(spec.ScenarioConfig)
	if err != nil {
		t.Fatal(err)
	}
	gotJSON, _ := json.Marshal(v.Rows)
	wantJSON, _ := json.Marshal(want)
	if !bytes.Equal(gotJSON, wantJSON) {
		t.Fatalf("HTTP fault rows differ from direct rows:\n got %s\nwant %s", gotJSON, wantJSON)
	}
}
