// Package service is the aggregation-as-a-service layer: a job manager
// that accepts VMAT scenario specs, runs them on a bounded worker pool,
// and retains results for retrieval. It is the subsystem cmd/vmat-server
// fronts over HTTP and later scaling work (sharding, caching,
// multi-backend) plugs into.
//
// Admission control is explicit and tenant-aware: submissions pass the
// multi-tenant front door (internal/tenant) — API-key identity, a
// per-tenant submissions/sec token bucket, per-tenant queue quotas —
// and then land in a weighted fair queue (per-tenant FIFOs drained by
// deficit round robin) instead of one global FIFO, so a greedy tenant's
// backlog cannot delay another tenant's first job. Submit never blocks:
// capacity and quota pressure reject with a tenant.AdmissionError
// carrying a Retry-After, so overload turns into fast, schedulable 429s
// rather than unbounded memory growth. Completed jobs are retained in a
// bounded FIFO of terminal jobs (an LRU where insertion order is
// completion order); clients polling old jobs eventually see a 404 and
// must re-submit.
//
// Execution goes through experiments.RunScenario, which is built on the
// deterministic trial-runner — rows returned over HTTP are bit-identical
// to what `vmat-bench -exp scenario` prints for the same seed, for any
// queue pressure or worker count.
package service

import (
	"context"
	"errors"
	"fmt"
	"runtime"
	"sync"
	"time"

	"repro/internal/core"
	"repro/internal/experiments"
	"repro/internal/metrics"
	"repro/internal/store"
	"repro/internal/tenant"
)

// Spec is a job submission: the scenario to run plus service options.
type Spec struct {
	experiments.ScenarioConfig
	// Trace records engine events (bounded; see Config.MaxTraceEvents)
	// for streaming from GET /v1/jobs/{id}/trace.
	Trace bool `json:"trace"`
}

// Status is a job's lifecycle state.
type Status string

// Job lifecycle: queued -> running -> done | failed | cancelled. A job
// cancelled while still queued skips running entirely.
const (
	StatusQueued    Status = "queued"
	StatusRunning   Status = "running"
	StatusDone      Status = "done"
	StatusFailed    Status = "failed"
	StatusCancelled Status = "cancelled"
)

// terminal reports whether a status is final.
func (s Status) terminal() bool {
	return s == StatusDone || s == StatusFailed || s == StatusCancelled
}

// Submission and execution errors. HTTP maps ErrQueueFull (and every
// other tenant.AdmissionError) to 429 with a Retry-After header and
// ErrDraining to 503; validation errors map to 400. ErrQueueFull is the
// front door's sentinel re-exported so pre-tenancy callers'
// errors.Is(err, service.ErrQueueFull) checks keep working.
var (
	ErrQueueFull = tenant.ErrQueueFull
	ErrDraining  = errors.New("service: manager is draining, not accepting jobs")
	ErrNotFound  = errors.New("service: no such job")
)

// Metric names the manager reports. Jobs-by-outcome counters carry an
// outcome label, e.g. `service_jobs_total{outcome="done"}`.
const (
	MetricJobsSubmitted    = "service_jobs_submitted_total"
	MetricJobsRejected     = "service_jobs_rejected_total"
	MetricJobs             = "service_jobs_total"
	MetricJobsCached       = "service_jobs_cached_total"
	MetricQueueDepth       = "service_queue_depth"
	MetricJobsRunning      = "service_jobs_running"
	MetricJobDuration      = "service_job_duration_us"
	MetricStoreWriteErrors = "service_store_write_errors_total"
	// MetricJobsExecuted counts executions by dispatch path, e.g.
	// `service_jobs_executed_total{path="cluster"}` vs `path="local"`.
	MetricJobsExecuted = "service_jobs_executed_total"
)

// Executor is the dispatch seam between the job manager and the
// distributed execution plane (internal/cluster's coordinator
// implements it). Execute runs cfg remotely: ok=true means the cluster
// owned the outcome — rows on success, err for a remote execution
// failure or a cancelled/expired ctx, exactly as a local run would
// report. ok=false (with err nil) means the fleet could not take the
// unit — no workers connected, coordinator draining, lease retry
// budget exhausted — and the manager runs the job on its local pool
// instead, so enabling cluster mode can never strand work.
type Executor interface {
	Execute(ctx context.Context, cfg experiments.ScenarioConfig) (rows []experiments.ScenarioRow, ok bool, err error)
}

// Config configures a Manager. Zero values pick serving defaults.
type Config struct {
	// QueueSize bounds the number of queued (admitted, not yet running)
	// jobs. Default 64.
	QueueSize int
	// Workers is the number of concurrent job executors. Each job
	// additionally parallelizes its trials per its spec. Default
	// GOMAXPROCS.
	Workers int
	// Retain bounds how many terminal jobs stay retrievable; the oldest
	// completed job is evicted first. Default 128.
	Retain int
	// MaxTraceEvents bounds the per-job trace buffer; events beyond the
	// cap are counted but not stored. Default 65536.
	MaxTraceEvents int
	// JobTimeout bounds each job's execution: a job still running after
	// this long fails with a timeout error at its next trial boundary,
	// so one huge spec cannot occupy a worker indefinitely. 0 disables
	// the deadline (cmd/vmat-server sets its own default via
	// -job-timeout).
	JobTimeout time.Duration
	// Metrics receives service and engine counters. Nil creates a
	// private registry (still served by Registry()).
	Metrics *metrics.Registry
	// Store, when non-nil, persists finished job results content-
	// addressed by their scenario spec and serves resubmissions of an
	// identical spec straight from disk: the job completes at Submit
	// time with the stored rows and no engine execution (determinism
	// makes the cached rows provably equivalent). Jobs submitted with
	// Trace bypass the lookup — a cached result has no events to
	// stream — but their results are still written back.
	Store *store.Store
	// Version stamps store write-backs so operators can tell which
	// build produced a cached result.
	Version string
	// Cluster, when non-nil, dispatches job execution to the worker
	// fleet with local fallback (see Executor). Traced jobs always run
	// locally — their live engine events cannot stream across the wire.
	Cluster Executor
	// Tenants is the multi-tenant front door: API-key auth, per-tenant
	// rate limits and quotas, fair-queue weights. Nil runs open — every
	// submission is the anonymous tenant with unlimited limits, the
	// pre-tenancy behavior.
	Tenants *tenant.Controller
	// DegradedFrac and ShedFrac override the queue occupancies at which
	// /healthz reports "degraded" and admission starts shedding
	// over-share tenants. Zero picks the tenant package defaults
	// (0.75 / 0.9).
	DegradedFrac float64
	ShedFrac     float64
}

// Job is one submitted scenario run.
type Job struct {
	id     string
	spec   Spec
	owner  *tenant.Tenant
	cancel context.CancelFunc
	ctx    context.Context
	done   chan struct{}

	mu           sync.Mutex
	status       Status
	rows         []experiments.ScenarioRow
	fromStore    bool
	errMsg       string
	trace        []TraceEvent
	traceDropped int64
	maxTrace     int
	submitted    time.Time
	started      time.Time
	finished     time.Time
}

// ID returns the job's identifier.
func (j *Job) ID() string { return j.id }

// Spec returns the normalized spec the job was admitted with.
func (j *Job) Spec() Spec { return j.spec }

// Tenant returns the ID of the tenant that submitted the job.
func (j *Job) Tenant() string { return j.owner.ID() }

// Status returns the job's current state.
func (j *Job) Status() Status {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.status
}

// Done is closed when the job reaches a terminal status.
func (j *Job) Done() <-chan struct{} { return j.done }

// Rows returns the result rows (non-nil only when done).
func (j *Job) Rows() []experiments.ScenarioRow {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.rows
}

// Err returns the failure message ("" unless failed or cancelled).
func (j *Job) Err() string {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.errMsg
}

// TraceSince returns a copy of the buffered trace events from index from
// on, and whether the job has reached a terminal state. Streaming
// clients loop: emit new events, then stop once terminal with no
// remainder.
func (j *Job) TraceSince(from int) ([]TraceEvent, bool) {
	j.mu.Lock()
	defer j.mu.Unlock()
	var out []TraceEvent
	if from < len(j.trace) {
		out = append(out, j.trace[from:]...)
	}
	return out, j.status.terminal()
}

// appendTrace is the engine trace hook; trials call it concurrently.
func (j *Job) appendTrace(trial int, ev core.Event) {
	te := NewTraceEvent(trial, ev)
	j.mu.Lock()
	if len(j.trace) < j.maxTrace {
		j.trace = append(j.trace, te)
	} else {
		j.traceDropped++
	}
	j.mu.Unlock()
}

// transition moves the job to a new status if the current one allows
// it, closing done on terminal transitions. Returns false when the job
// is already terminal.
func (j *Job) transition(to Status) bool {
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.status.terminal() {
		return false
	}
	j.status = to
	switch to {
	case StatusRunning:
		j.started = time.Now()
	case StatusDone, StatusFailed, StatusCancelled:
		j.finished = time.Now()
		close(j.done)
	}
	return true
}

// cancelIfQueued atomically finalizes a job that has not started yet.
func (j *Job) cancelIfQueued() bool {
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.status != StatusQueued {
		return false
	}
	j.status = StatusCancelled
	j.finished = time.Now()
	close(j.done)
	return true
}

// View is the JSON projection of a job served by the HTTP API.
type View struct {
	ID     string                    `json:"id"`
	Status Status                    `json:"status"`
	Tenant string                    `json:"tenant,omitempty"`
	Spec   Spec                      `json:"spec"`
	Error  string                    `json:"error,omitempty"`
	Rows   []experiments.ScenarioRow `json:"rows,omitempty"`
	// Source is "store" when the rows were served from the persistent
	// result store instead of a fresh execution.
	Source string `json:"source,omitempty"`
	// TraceEvents is the number of buffered trace events;
	// TraceDropped counts events beyond the buffer cap.
	TraceEvents  int    `json:"trace_events,omitempty"`
	TraceDropped int64  `json:"trace_dropped,omitempty"`
	SubmittedAt  string `json:"submitted_at"`
	StartedAt    string `json:"started_at,omitempty"`
	FinishedAt   string `json:"finished_at,omitempty"`
}

// View snapshots the job for serialization.
func (j *Job) View() View {
	j.mu.Lock()
	defer j.mu.Unlock()
	v := View{
		ID:           j.id,
		Status:       j.status,
		Tenant:       j.owner.ID(),
		Spec:         j.spec,
		Error:        j.errMsg,
		Rows:         j.rows,
		TraceEvents:  len(j.trace),
		TraceDropped: j.traceDropped,
		SubmittedAt:  j.submitted.UTC().Format(time.RFC3339Nano),
	}
	if j.fromStore {
		v.Source = "store"
	}
	if !j.started.IsZero() {
		v.StartedAt = j.started.UTC().Format(time.RFC3339Nano)
	}
	if !j.finished.IsZero() {
		v.FinishedAt = j.finished.UTC().Format(time.RFC3339Nano)
	}
	return v
}

// Manager owns the fair queue, the worker pool, and the job table.
type Manager struct {
	cfg     Config
	reg     *metrics.Registry
	tenants *tenant.Controller

	queue *tenant.Queue[*Job]
	wg    sync.WaitGroup

	mu        sync.Mutex
	draining  bool
	jobs      map[string]*Job
	doneOrder []string // terminal job IDs, oldest first (retention FIFO)
	nextID    uint64

	queueDepth *metrics.Gauge
	running    *metrics.Gauge
	submitted  *metrics.Counter
	jobDur     *metrics.Histogram

	// runGate, when non-nil, is received from after a job transitions to
	// running and before it executes. Tests use it to hold workers so
	// queue-full and drain behavior is deterministic.
	runGate chan struct{}
}

// New starts a manager with cfg.Workers executor goroutines.
func New(cfg Config) *Manager {
	if cfg.QueueSize <= 0 {
		cfg.QueueSize = 64
	}
	if cfg.Workers <= 0 {
		cfg.Workers = runtime.GOMAXPROCS(0)
	}
	if cfg.Retain <= 0 {
		cfg.Retain = 128
	}
	if cfg.MaxTraceEvents <= 0 {
		cfg.MaxTraceEvents = 65536
	}
	if cfg.Metrics == nil {
		cfg.Metrics = metrics.New()
	}
	if cfg.Tenants == nil {
		cfg.Tenants = tenant.Open(cfg.Metrics)
	}
	m := &Manager{
		cfg:     cfg,
		reg:     cfg.Metrics,
		tenants: cfg.Tenants,
		queue: tenant.NewQueue[*Job](cfg.Tenants, tenant.QueueConfig{
			Capacity:     cfg.QueueSize,
			DegradedFrac: cfg.DegradedFrac,
			ShedFrac:     cfg.ShedFrac,
		}),
		jobs:       map[string]*Job{},
		queueDepth: cfg.Metrics.Gauge(MetricQueueDepth),
		running:    cfg.Metrics.Gauge(MetricJobsRunning),
		submitted:  cfg.Metrics.Counter(MetricJobsSubmitted),
		jobDur: cfg.Metrics.Histogram(MetricJobDuration, []int64{
			1_000, 10_000, 100_000, 1_000_000, 10_000_000, 100_000_000, 1_000_000_000,
		}),
	}
	for i := 0; i < cfg.Workers; i++ {
		m.wg.Add(1)
		go m.worker()
	}
	return m
}

// Registry returns the registry the manager reports into (never nil).
func (m *Manager) Registry() *metrics.Registry { return m.reg }

// Tenants returns the front-door controller the manager admits through
// (never nil; an open controller when Config.Tenants was nil). The HTTP
// layers — this package's and the sweep API's — authenticate against
// it.
func (m *Manager) Tenants() *tenant.Controller { return m.tenants }

// reject counts one rejected submission by reason.
func (m *Manager) reject(reason string) {
	m.reg.Counter(MetricJobsRejected + `{reason="` + reason + `"}`).Inc()
}

// Submit validates and enqueues a job under the anonymous tenant — the
// pre-tenancy API, kept for library callers and recovered sweeps. See
// SubmitAs.
func (m *Manager) Submit(spec Spec) (*Job, error) {
	return m.SubmitAs(nil, spec)
}

// SubmitAs validates and enqueues a job for tenant t (nil = anonymous).
// It never blocks: an invalid spec returns the validation error, a
// draining manager ErrDraining, and front-door pressure — an empty rate
// bucket, an exhausted per-tenant queue quota, the shedding tier, or a
// full global queue — a *tenant.AdmissionError carrying the suggested
// Retry-After. Admission order: rate bucket first (a submission is a
// submission, cached or not), then the result-store lookup (a hit
// completes here without touching the queue), then the fair queue's
// quota/shed/capacity checks. A submission the queue then rejects
// refunds its rate token — capacity back-pressure must not also burn
// the tenant's rate budget.
func (m *Manager) SubmitAs(t *tenant.Tenant, spec Spec) (*Job, error) {
	if t == nil {
		t = m.tenants.Anonymous()
	}
	spec.Normalize()
	if err := spec.Validate(); err != nil {
		m.reject("invalid")
		return nil, err
	}
	if err := m.tenants.AdmitSubmission(t); err != nil {
		m.reject(tenant.ReasonRateLimited)
		return nil, err
	}
	// Result-store lookup: an identical spec already executed (this
	// process or any earlier one) completes here, before it ever
	// touches the queue — no engine execution, no worker slot. Trace
	// jobs need live events, so they always execute. A store read
	// error degrades to a miss; the store counts the corruption.
	if m.cfg.Store != nil && !spec.Trace {
		if rows, ok, _ := m.cfg.Store.GetScenario(spec.ScenarioConfig); ok {
			return m.admitCached(t, spec, rows)
		}
	}
	ctx, cancel := context.WithCancel(context.Background())
	job := &Job{
		spec:      spec,
		owner:     t,
		ctx:       ctx,
		cancel:    cancel,
		done:      make(chan struct{}),
		status:    StatusQueued,
		maxTrace:  m.cfg.MaxTraceEvents,
		submitted: time.Now(),
	}

	m.mu.Lock()
	if m.draining {
		m.mu.Unlock()
		cancel()
		m.tenants.RefundSubmission(t)
		m.reject(tenant.ReasonDraining)
		return nil, ErrDraining
	}
	m.nextID++
	job.id = fmt.Sprintf("j%06d", m.nextID)
	if err := m.queue.Push(t, job); err != nil {
		m.nextID-- // not admitted; reuse the ID
		m.mu.Unlock()
		cancel()
		m.tenants.RefundSubmission(t)
		if errors.Is(err, tenant.ErrQueueClosed) {
			// Drain closed the queue between the draining check and here
			// (or a caller races Drain): shutdown, not back-pressure.
			m.reject(tenant.ReasonDraining)
			return nil, ErrDraining
		}
		var adm *tenant.AdmissionError
		if errors.As(err, &adm) {
			m.reject(adm.Reason)
		} else {
			m.reject(tenant.ReasonQueueFull)
		}
		return nil, err
	}
	m.jobs[job.id] = job
	m.queueDepth.Inc()
	m.mu.Unlock()
	m.submitted.Inc()
	return job, nil
}

// admitCached registers a job that is born terminal: its rows came out
// of the result store, so it skips the queue and the worker pool
// entirely and is immediately retrievable as done.
func (m *Manager) admitCached(t *tenant.Tenant, spec Spec, rows []experiments.ScenarioRow) (*Job, error) {
	ctx, cancel := context.WithCancel(context.Background())
	job := &Job{
		spec:      spec,
		owner:     t,
		ctx:       ctx,
		cancel:    cancel,
		done:      make(chan struct{}),
		status:    StatusQueued,
		rows:      rows,
		fromStore: true,
		maxTrace:  m.cfg.MaxTraceEvents,
		submitted: time.Now(),
	}
	m.mu.Lock()
	if m.draining {
		m.mu.Unlock()
		cancel()
		m.tenants.RefundSubmission(t)
		m.reject(tenant.ReasonDraining)
		return nil, ErrDraining
	}
	m.nextID++
	job.id = fmt.Sprintf("j%06d", m.nextID)
	m.jobs[job.id] = job
	m.mu.Unlock()
	m.submitted.Inc()
	m.reg.Counter(MetricJobsCached).Inc()
	job.transition(StatusDone)
	m.countOutcome(StatusDone)
	cancel()
	m.retire(job)
	return job, nil
}

// Get returns a job by ID; ok is false when unknown or evicted.
func (m *Manager) Get(id string) (*Job, bool) {
	m.mu.Lock()
	defer m.mu.Unlock()
	j, ok := m.jobs[id]
	return j, ok
}

// Cancel cancels a job. A queued job is finalized immediately; a
// running one aborts at its next trial boundary. Cancelling a terminal
// job is a no-op.
func (m *Manager) Cancel(id string) (*Job, error) {
	job, ok := m.Get(id)
	if !ok {
		return nil, ErrNotFound
	}
	job.cancel()
	// If still queued, finalize here; the worker skips terminal jobs. A
	// running job instead aborts at its next trial boundary and is
	// finalized by its worker.
	if job.cancelIfQueued() {
		m.countOutcome(StatusCancelled)
		m.retire(job)
	}
	return job, nil
}

// Drain stops admission, lets the workers finish every queued and
// running job, and returns when the pool is idle (or ctx expires).
// Safe to call more than once.
func (m *Manager) Drain(ctx context.Context) error {
	m.mu.Lock()
	if !m.draining {
		m.draining = true
		m.queue.Close()
	}
	m.mu.Unlock()
	idle := make(chan struct{})
	go func() {
		m.wg.Wait()
		close(idle)
	}()
	select {
	case <-idle:
		return nil
	case <-ctx.Done():
		return ctx.Err()
	}
}

// Draining reports whether the manager has stopped accepting jobs.
func (m *Manager) Draining() bool {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.draining
}

// QueueSaturated reports whether the job queue is at capacity, i.e. the
// next Submit would be rejected with ErrQueueFull.
func (m *Manager) QueueSaturated() bool {
	return m.queue.Len() >= m.queue.Cap()
}

// AdmissionStatus reports the fair queue's tier and occupancy for the
// "admission" section of /healthz: "ok" under light load, "degraded"
// once back-pressure builds, "shedding" while over-share tenants are
// being bounced to keep the rest live.
func (m *Manager) AdmissionStatus() tenant.Status {
	return m.queue.Status()
}

// StoreStatus reports the result-store engine's shape (segments,
// live/dead bytes, compaction state, snapshot age) for the "store"
// section of /healthz. ok is false when the service runs without a
// persistent store.
func (m *Manager) StoreStatus() (store.Status, bool) {
	if m.cfg.Store == nil {
		return store.Status{}, false
	}
	return m.cfg.Store.Status(), true
}

func (m *Manager) worker() {
	defer m.wg.Done()
	for {
		job, ok := m.queue.Pop()
		if !ok {
			return
		}
		m.queueDepth.Dec()
		m.runJob(job)
	}
}

func (m *Manager) runJob(job *Job) {
	if !job.transition(StatusRunning) {
		return // cancelled while queued
	}
	m.running.Inc()
	defer m.running.Dec()
	m.tenants.JobStarted(job.owner)
	defer m.tenants.JobFinished(job.owner)
	if m.runGate != nil {
		<-m.runGate
	}

	cfg := job.spec.ScenarioConfig
	runCtx := job.ctx
	if m.cfg.JobTimeout > 0 {
		var cancelTimeout context.CancelFunc
		runCtx, cancelTimeout = context.WithTimeout(runCtx, m.cfg.JobTimeout)
		defer cancelTimeout()
	}
	cfg.Context = runCtx
	cfg.Metrics = m.reg
	if job.spec.Trace {
		cfg.Trace = job.appendTrace
	}
	start := time.Now()
	rows, err := m.execute(runCtx, job, cfg)
	m.jobDur.Observe(time.Since(start).Microseconds())

	var outcome Status
	switch {
	case err == nil:
		outcome = StatusDone
		job.mu.Lock()
		job.rows = rows
		job.mu.Unlock()
		// Write-back: persist the rows under the spec's content address
		// so identical future submissions (and sweeps, and restarts)
		// skip execution. A write failure only costs future cache hits,
		// never the job — count it and move on.
		if m.cfg.Store != nil {
			meta := store.Meta{
				DurationMicros: time.Since(start).Microseconds(),
				Version:        m.cfg.Version,
			}
			if perr := m.cfg.Store.PutScenario(job.spec.ScenarioConfig, rows, meta); perr != nil {
				m.reg.Counter(MetricStoreWriteErrors).Inc()
			}
		}
	case errors.Is(err, context.Canceled):
		outcome = StatusCancelled
	case errors.Is(err, context.DeadlineExceeded):
		outcome = StatusFailed
		job.mu.Lock()
		job.errMsg = fmt.Sprintf("service: job exceeded the %s execution timeout", m.cfg.JobTimeout)
		job.mu.Unlock()
	default:
		outcome = StatusFailed
		job.mu.Lock()
		job.errMsg = err.Error()
		job.mu.Unlock()
	}
	if job.transition(outcome) {
		m.countOutcome(outcome)
	}
	job.cancel() // release the context's resources
	m.retire(job)
}

// execute runs one job through the configured dispatch path: the
// cluster fleet when available, the local pool otherwise (and always
// for traced jobs). The remote spec omits the execution-only fields
// (Context/Trace/Metrics are json:"-"), so the unit's content address
// and its results are identical to a local run's.
func (m *Manager) execute(ctx context.Context, job *Job, cfg experiments.ScenarioConfig) ([]experiments.ScenarioRow, error) {
	if m.cfg.Cluster != nil && !job.spec.Trace {
		rows, ok, err := m.cfg.Cluster.Execute(ctx, cfg)
		if ok {
			m.countExecuted("cluster")
			return rows, err
		}
		if err != nil {
			return nil, err
		}
		// Fall through: the fleet could not take the unit.
	}
	m.countExecuted("local")
	return experiments.RunScenario(cfg)
}

func (m *Manager) countExecuted(path string) {
	m.reg.Counter(MetricJobsExecuted + `{path="` + path + `"}`).Inc()
}

func (m *Manager) countOutcome(s Status) {
	m.reg.Counter(MetricJobs + `{outcome="` + string(s) + `"}`).Inc()
}

// retire records a terminal job in completion order and evicts beyond
// the retention bound.
func (m *Manager) retire(job *Job) {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.doneOrder = append(m.doneOrder, job.id)
	for len(m.doneOrder) > m.cfg.Retain {
		evict := m.doneOrder[0]
		m.doneOrder = m.doneOrder[1:]
		delete(m.jobs, evict)
	}
}
