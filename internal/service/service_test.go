package service

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"reflect"
	"strings"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/experiments"
	"repro/internal/metrics"
	"repro/internal/store"
)

func testSpec() Spec {
	return Spec{ScenarioConfig: experiments.ScenarioConfig{
		N:         30,
		Topology:  "geometric",
		Query:     "min",
		Attack:    "drop",
		Malicious: 1,
		Trials:    4,
		Seed:      7,
		Workers:   2,
	}}
}

func postJob(t *testing.T, srv *httptest.Server, spec Spec) (id string, code int) {
	t.Helper()
	body, err := json.Marshal(spec)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(srv.URL+"/v1/jobs", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var out map[string]string
	_ = json.NewDecoder(resp.Body).Decode(&out)
	return out["id"], resp.StatusCode
}

func getView(t *testing.T, srv *httptest.Server, id string) (View, int) {
	t.Helper()
	resp, err := http.Get(srv.URL + "/v1/jobs/" + id)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var v View
	if resp.StatusCode == http.StatusOK {
		if err := json.NewDecoder(resp.Body).Decode(&v); err != nil {
			t.Fatal(err)
		}
	}
	return v, resp.StatusCode
}

func waitStatus(t *testing.T, srv *httptest.Server, id string, want Status) View {
	t.Helper()
	deadline := time.Now().Add(30 * time.Second)
	for time.Now().Before(deadline) {
		v, code := getView(t, srv, id)
		if code != http.StatusOK {
			t.Fatalf("GET %s -> %d", id, code)
		}
		if v.Status == want {
			return v
		}
		if v.Status.terminal() {
			t.Fatalf("job %s reached %s (error %q), want %s", id, v.Status, v.Error, want)
		}
		time.Sleep(10 * time.Millisecond)
	}
	t.Fatalf("job %s never reached %s", id, want)
	return View{}
}

// TestHTTPJobMatchesBenchRows is acceptance criterion (a): rows returned
// by the HTTP API are byte-identical to the CLI's for the same
// seed/worker count. experiments.RunScenario is exactly what
// `vmat-bench -exp scenario` wraps, so comparing serialized rows against
// a direct call proves the parity.
func TestHTTPJobMatchesBenchRows(t *testing.T) {
	m := New(Config{QueueSize: 4, Workers: 2})
	defer drain(t, m)
	srv := httptest.NewServer(NewHandler(m, "test", nil, nil))
	defer srv.Close()

	spec := testSpec()
	id, code := postJob(t, srv, spec)
	if code != http.StatusAccepted || id == "" {
		t.Fatalf("POST -> %d id=%q, want 202", code, id)
	}
	v := waitStatus(t, srv, id, StatusDone)
	if len(v.Rows) != spec.Trials {
		t.Fatalf("got %d rows, want %d", len(v.Rows), spec.Trials)
	}

	want, err := experiments.RunScenario(spec.ScenarioConfig)
	if err != nil {
		t.Fatal(err)
	}
	gotJSON, _ := json.Marshal(v.Rows)
	wantJSON, _ := json.Marshal(want)
	if !bytes.Equal(gotJSON, wantJSON) {
		t.Fatalf("HTTP rows differ from vmat-bench rows:\n got %s\nwant %s", gotJSON, wantJSON)
	}
}

// TestQueueRejectsWhenFull is acceptance criterion (b): a full queue
// rejects with 429 instead of blocking. The run gate holds the single
// worker so occupancy is deterministic.
func TestQueueRejectsWhenFull(t *testing.T) {
	gate := make(chan struct{})
	m := New(Config{QueueSize: 2, Workers: 1})
	m.runGate = gate
	srv := httptest.NewServer(NewHandler(m, "test", nil, nil))
	defer srv.Close()

	// First job is dequeued by the worker and held at the gate.
	first, code := postJob(t, srv, testSpec())
	if code != http.StatusAccepted {
		t.Fatalf("job 1 -> %d", code)
	}
	waitStatus(t, srv, first, StatusRunning)

	// Two more fill the queue; the fourth must bounce with 429.
	for i := 2; i <= 3; i++ {
		if _, code := postJob(t, srv, testSpec()); code != http.StatusAccepted {
			t.Fatalf("job %d -> %d, want 202", i, code)
		}
	}
	if _, code := postJob(t, srv, testSpec()); code != http.StatusTooManyRequests {
		t.Fatalf("job 4 -> %d, want 429", code)
	}
	if got := m.reg.Counter(MetricJobsRejected + `{reason="queue_full"}`).Value(); got != 1 {
		t.Fatalf("rejected counter = %d, want 1", got)
	}

	close(gate)
	drain(t, m)
}

// TestDrainCompletesInFlightJobs is acceptance criterion (c):
// SIGTERM-style shutdown finishes queued and running jobs, and
// /metrics afterwards reports queue depth 0.
func TestDrainCompletesInFlightJobs(t *testing.T) {
	m := New(Config{QueueSize: 8, Workers: 1})
	srv := httptest.NewServer(NewHandler(m, "test", nil, nil))
	defer srv.Close()

	var ids []string
	for i := 0; i < 3; i++ {
		id, code := postJob(t, srv, testSpec())
		if code != http.StatusAccepted {
			t.Fatalf("job %d -> %d", i, code)
		}
		ids = append(ids, id)
	}

	drain(t, m) // what main() runs on SIGTERM

	for _, id := range ids {
		v, code := getView(t, srv, id)
		if code != http.StatusOK {
			t.Fatalf("GET %s -> %d after drain", id, code)
		}
		if v.Status != StatusDone {
			t.Fatalf("job %s = %s after drain, want done", id, v.Status)
		}
	}

	// Submissions after drain bounce with 503.
	if _, code := postJob(t, srv, testSpec()); code != http.StatusServiceUnavailable {
		t.Fatalf("post-drain submit -> %d, want 503", code)
	}

	resp, err := http.Get(srv.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var sb strings.Builder
	if _, err := fmt.Fprint(&sb, readAll(t, resp)); err != nil {
		t.Fatal(err)
	}
	text := sb.String()
	if !strings.Contains(text, MetricQueueDepth+" 0") {
		t.Fatalf("/metrics missing %q:\n%s", MetricQueueDepth+" 0", text)
	}
	if !strings.Contains(text, MetricJobs+`{outcome="done"} 3`) {
		t.Fatalf("/metrics missing done-jobs counter:\n%s", text)
	}
	if !strings.Contains(text, "core_executions_total") {
		t.Fatalf("/metrics missing engine counters:\n%s", text)
	}
}

func TestTraceStreamsNDJSON(t *testing.T) {
	m := New(Config{QueueSize: 4, Workers: 1})
	defer drain(t, m)
	srv := httptest.NewServer(NewHandler(m, "test", nil, nil))
	defer srv.Close()

	spec := testSpec()
	spec.Trials = 2
	spec.Trace = true
	id, code := postJob(t, srv, spec)
	if code != http.StatusAccepted {
		t.Fatalf("POST -> %d", code)
	}
	resp, err := http.Get(srv.URL + "/v1/jobs/" + id + "/trace")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if ct := resp.Header.Get("Content-Type"); ct != "application/x-ndjson" {
		t.Fatalf("Content-Type = %q", ct)
	}
	sc := bufio.NewScanner(resp.Body)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	trialsSeen := map[int]bool{}
	lines := 0
	for sc.Scan() {
		var te TraceEvent
		if err := json.Unmarshal(sc.Bytes(), &te); err != nil {
			t.Fatalf("line %d not JSON: %v: %s", lines, err, sc.Text())
		}
		if te.Kind == "" {
			t.Fatalf("line %d has empty kind", lines)
		}
		trialsSeen[te.Trial] = true
		lines++
	}
	if err := sc.Err(); err != nil {
		t.Fatal(err)
	}
	if lines == 0 {
		t.Fatal("trace stream was empty")
	}
	for trial := 0; trial < spec.Trials; trial++ {
		if !trialsSeen[trial] {
			t.Fatalf("no events for trial %d", trial)
		}
	}

	// A job without trace enabled refuses the stream.
	plainID, _ := postJob(t, srv, testSpec())
	resp2, err := http.Get(srv.URL + "/v1/jobs/" + plainID + "/trace")
	if err != nil {
		t.Fatal(err)
	}
	resp2.Body.Close()
	if resp2.StatusCode != http.StatusBadRequest {
		t.Fatalf("trace of untraced job -> %d, want 400", resp2.StatusCode)
	}
}

func TestCancelQueuedAndRunning(t *testing.T) {
	gate := make(chan struct{})
	m := New(Config{QueueSize: 4, Workers: 1})
	m.runGate = gate
	srv := httptest.NewServer(NewHandler(m, "test", nil, nil))
	defer srv.Close()

	runningID, _ := postJob(t, srv, testSpec())
	waitStatus(t, srv, runningID, StatusRunning)
	queuedID, _ := postJob(t, srv, testSpec())

	// Cancel the queued job: it finalizes without ever running.
	req, _ := http.NewRequest(http.MethodDelete, srv.URL+"/v1/jobs/"+queuedID, nil)
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if v, _ := getView(t, srv, queuedID); v.Status != StatusCancelled {
		t.Fatalf("queued job after cancel = %s, want cancelled", v.Status)
	}

	// Cancel the running job, then release the gate: it aborts at a
	// trial boundary.
	req, _ = http.NewRequest(http.MethodDelete, srv.URL+"/v1/jobs/"+runningID, nil)
	resp, err = http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	close(gate)
	deadline := time.Now().Add(30 * time.Second)
	for {
		v, _ := getView(t, srv, runningID)
		if v.Status == StatusCancelled {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("running job = %s, want cancelled", v.Status)
		}
		time.Sleep(10 * time.Millisecond)
	}
	drain(t, m)

	// Cancelling an unknown job is a 404.
	req, _ = http.NewRequest(http.MethodDelete, srv.URL+"/v1/jobs/nope", nil)
	resp, err = http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("cancel unknown -> %d, want 404", resp.StatusCode)
	}
}

func TestInvalidSpecRejected(t *testing.T) {
	m := New(Config{QueueSize: 2, Workers: 1})
	defer drain(t, m)
	srv := httptest.NewServer(NewHandler(m, "test", nil, nil))
	defer srv.Close()

	spec := testSpec()
	spec.Topology = "moebius"
	if _, code := postJob(t, srv, spec); code != http.StatusBadRequest {
		t.Fatalf("invalid spec -> %d, want 400", code)
	}
	resp, err := http.Post(srv.URL+"/v1/jobs", "application/json", strings.NewReader("{not json"))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("malformed body -> %d, want 400", resp.StatusCode)
	}
}

// TestJobTimeoutFailsLongJobs proves a configured JobTimeout bounds
// execution: with an already-expired deadline the job fails at its first
// trial boundary instead of occupying the worker, and the failure
// message names the timeout.
func TestJobTimeoutFailsLongJobs(t *testing.T) {
	m := New(Config{QueueSize: 2, Workers: 1, JobTimeout: time.Nanosecond})
	defer drain(t, m)
	srv := httptest.NewServer(NewHandler(m, "test", nil, nil))
	defer srv.Close()

	id, code := postJob(t, srv, testSpec())
	if code != http.StatusAccepted {
		t.Fatalf("POST -> %d, want 202", code)
	}
	v := waitStatus(t, srv, id, StatusFailed)
	if !strings.Contains(v.Error, "execution timeout") {
		t.Fatalf("error = %q, want it to mention the execution timeout", v.Error)
	}
	if got := m.reg.Counter(MetricJobs + `{outcome="failed"}`).Value(); got != 1 {
		t.Fatalf("failed-outcome counter = %d, want 1", got)
	}
}

func TestRetentionEvictsOldestTerminalJobs(t *testing.T) {
	m := New(Config{QueueSize: 8, Workers: 1, Retain: 2})
	srv := httptest.NewServer(NewHandler(m, "test", nil, nil))
	defer srv.Close()

	spec := testSpec()
	spec.N = 16
	spec.Topology = "line"
	spec.Attack = "none"
	spec.Trials = 1
	var ids []string
	for i := 0; i < 4; i++ {
		id, code := postJob(t, srv, spec)
		if code != http.StatusAccepted {
			t.Fatalf("job %d -> %d", i, code)
		}
		ids = append(ids, id)
	}
	drain(t, m)

	if _, code := getView(t, srv, ids[0]); code != http.StatusNotFound {
		t.Fatalf("oldest job -> %d, want 404 after eviction", code)
	}
	if _, code := getView(t, srv, ids[3]); code != http.StatusOK {
		t.Fatalf("newest job -> %d, want 200", code)
	}
}

func TestHealthz(t *testing.T) {
	m := New(Config{QueueSize: 2, Workers: 1})
	srv := httptest.NewServer(NewHandler(m, "v-test", nil, nil))
	defer srv.Close()

	resp, err := http.Get(srv.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var out map[string]any
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		t.Fatal(err)
	}
	if out["status"] != "ok" || out["version"] != "v-test" || out["draining"] != false {
		t.Fatalf("healthz = %v", out)
	}
	drain(t, m)
	resp2, err := http.Get(srv.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	defer resp2.Body.Close()
	out = map[string]any{}
	if err := json.NewDecoder(resp2.Body).Decode(&out); err != nil {
		t.Fatal(err)
	}
	if out["draining"] != true {
		t.Fatalf("healthz after drain = %v, want draining true", out)
	}
}

func TestHTTPInstrumentation(t *testing.T) {
	reg := metrics.New()
	m := New(Config{QueueSize: 2, Workers: 1, Metrics: reg})
	defer drain(t, m)
	srv := httptest.NewServer(NewHandler(m, "test", nil, nil))
	defer srv.Close()

	if _, err := http.Get(srv.URL + "/healthz"); err != nil {
		t.Fatal(err)
	}
	want := MetricHTTPRequests + `{route="GET /healthz",code="200"}`
	if got := reg.Counter(want).Value(); got != 1 {
		t.Fatalf("%s = %d, want 1", want, got)
	}
	durName := MetricHTTPDuration + `{route="GET /healthz"}`
	if got := reg.Histogram(durName, nil).Count(); got != 1 {
		t.Fatalf("%s count = %d, want 1", durName, got)
	}
}

func drain(t *testing.T, m *Manager) {
	t.Helper()
	ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
	defer cancel()
	if err := m.Drain(ctx); err != nil {
		t.Fatalf("Drain: %v", err)
	}
}

func readAll(t *testing.T, resp *http.Response) string {
	t.Helper()
	var sb strings.Builder
	sc := bufio.NewScanner(resp.Body)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	for sc.Scan() {
		sb.WriteString(sc.Text())
		sb.WriteByte('\n')
	}
	if err := sc.Err(); err != nil {
		t.Fatal(err)
	}
	return sb.String()
}

// TestResubmittedJobServedFromStore is the acceptance check for the
// persistent result store: the second submission of an identical spec
// must complete from the store — hit counter up, cached counter up, and
// crucially zero additional engine executions — with rows exactly equal
// to the first run's, even across a store reopen (journal replay).
func TestResubmittedJobServedFromStore(t *testing.T) {
	dir := t.TempDir()
	reg := metrics.New()
	st, err := store.Open(dir, store.Config{Metrics: reg})
	if err != nil {
		t.Fatalf("store.Open: %v", err)
	}
	m := New(Config{Workers: 2, Metrics: reg, Store: st, Version: "test"})

	job1, err := m.Submit(testSpec())
	if err != nil {
		t.Fatalf("first Submit: %v", err)
	}
	<-job1.Done()
	if job1.Status() != StatusDone {
		t.Fatalf("first job: %s (%s)", job1.Status(), job1.Err())
	}
	execsAfterFirst := reg.Counter(core.MetricExecutions).Value()
	if execsAfterFirst == 0 {
		t.Fatalf("first job ran no engine executions")
	}
	if job1.View().Source != "" {
		t.Fatalf("first job claims source %q, want fresh execution", job1.View().Source)
	}

	job2, err := m.Submit(testSpec())
	if err != nil {
		t.Fatalf("resubmit: %v", err)
	}
	select {
	case <-job2.Done():
	case <-time.After(5 * time.Second):
		t.Fatalf("cached job did not complete immediately")
	}
	if job2.Status() != StatusDone || job2.View().Source != "store" {
		t.Fatalf("cached job: status %s source %q, want done from store", job2.Status(), job2.View().Source)
	}
	if !reflect.DeepEqual(job2.Rows(), job1.Rows()) {
		t.Fatalf("cached rows differ from executed rows")
	}
	if got := reg.Counter(core.MetricExecutions).Value(); got != execsAfterFirst {
		t.Fatalf("cache hit executed the engine: %d -> %d executions", execsAfterFirst, got)
	}
	if hits := reg.Counter(store.MetricHits).Value(); hits == 0 {
		t.Fatalf("store hit counter did not increment")
	}
	if cached := reg.Counter(MetricJobsCached).Value(); cached != 1 {
		t.Fatalf("service_jobs_cached_total = %d, want 1", cached)
	}

	// A worker-count change must still hit: workers are not identity.
	respec := testSpec()
	respec.Workers = 7
	job3, err := m.Submit(respec)
	if err != nil {
		t.Fatalf("submit with different workers: %v", err)
	}
	<-job3.Done()
	if job3.View().Source != "store" {
		t.Fatalf("worker-count change missed the store")
	}

	// Trace jobs bypass the lookup — they need live engine events.
	traced := testSpec()
	traced.Trace = true
	job4, err := m.Submit(traced)
	if err != nil {
		t.Fatalf("submit traced: %v", err)
	}
	<-job4.Done()
	if job4.View().Source == "store" {
		t.Fatalf("traced job served from store; it has no events to stream")
	}
	if got := reg.Counter(core.MetricExecutions).Value(); got == execsAfterFirst {
		t.Fatalf("traced job did not execute")
	}

	drainCtx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	if err := m.Drain(drainCtx); err != nil {
		t.Fatalf("drain: %v", err)
	}
	if err := st.Close(); err != nil {
		t.Fatalf("store close: %v", err)
	}

	// Restart: a fresh manager over a reopened store serves the same
	// spec with no execution at all.
	reg2 := metrics.New()
	st2, err := store.Open(dir, store.Config{Metrics: reg2})
	if err != nil {
		t.Fatalf("reopen store: %v", err)
	}
	defer st2.Close()
	m2 := New(Config{Workers: 1, Metrics: reg2, Store: st2})
	job5, err := m2.Submit(testSpec())
	if err != nil {
		t.Fatalf("submit after restart: %v", err)
	}
	<-job5.Done()
	if job5.View().Source != "store" {
		t.Fatalf("restarted manager missed the journal-replayed store")
	}
	if !reflect.DeepEqual(job5.Rows(), job1.Rows()) {
		t.Fatalf("rows across restart differ")
	}
	if got := reg2.Counter(core.MetricExecutions).Value(); got != 0 {
		t.Fatalf("restarted manager executed %d times for a stored spec", got)
	}
}
