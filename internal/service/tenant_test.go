package service

import (
	"bytes"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strconv"
	"strings"
	"testing"
	"time"

	"repro/internal/metrics"
	"repro/internal/tenant"
)

// newTenantedManager builds a manager behind a keyfile front door.
func newTenantedManager(t *testing.T, keyfile string, cfg Config) *Manager {
	t.Helper()
	path := filepath.Join(t.TempDir(), "tenants.json")
	if err := os.WriteFile(path, []byte(keyfile), 0o600); err != nil {
		t.Fatal(err)
	}
	if cfg.Metrics == nil {
		cfg.Metrics = metrics.New()
	}
	ctl, err := tenant.NewController(tenant.Config{Path: path, Metrics: cfg.Metrics})
	if err != nil {
		t.Fatal(err)
	}
	cfg.Tenants = ctl
	return New(cfg)
}

// postJobKey is postJob with a bearer key ("" sends no Authorization
// header) and returns the response headers too.
func postJobKey(t *testing.T, srv *httptest.Server, key string, spec Spec) (id string, code int, hdr http.Header) {
	t.Helper()
	body, err := json.Marshal(spec)
	if err != nil {
		t.Fatal(err)
	}
	req, err := http.NewRequest("POST", srv.URL+"/v1/jobs", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set("Content-Type", "application/json")
	if key != "" {
		req.Header.Set("Authorization", "Bearer "+key)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var out map[string]string
	_ = json.NewDecoder(resp.Body).Decode(&out)
	return out["id"], resp.StatusCode, resp.Header
}

// getViewKey is getView with a bearer key ("" sends no Authorization
// header) — with per-tenant authorization, polls must carry the
// submitting tenant's key.
func getViewKey(t *testing.T, srv *httptest.Server, key, id string) (View, int) {
	t.Helper()
	req, err := http.NewRequest("GET", srv.URL+"/v1/jobs/"+id, nil)
	if err != nil {
		t.Fatal(err)
	}
	if key != "" {
		req.Header.Set("Authorization", "Bearer "+key)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var v View
	if resp.StatusCode == http.StatusOK {
		if err := json.NewDecoder(resp.Body).Decode(&v); err != nil {
			t.Fatal(err)
		}
	}
	return v, resp.StatusCode
}

// waitStatusKey is waitStatus authenticated as key's tenant.
func waitStatusKey(t *testing.T, srv *httptest.Server, key, id string, want Status) View {
	t.Helper()
	deadline := time.Now().Add(30 * time.Second)
	for time.Now().Before(deadline) {
		v, code := getViewKey(t, srv, key, id)
		if code != http.StatusOK {
			t.Fatalf("GET %s as %q -> %d", id, key, code)
		}
		if v.Status == want {
			return v
		}
		if v.Status.terminal() {
			t.Fatalf("job %s reached %s (error %q), want %s", id, v.Status, v.Error, want)
		}
		time.Sleep(10 * time.Millisecond)
	}
	t.Fatalf("job %s never reached %s", id, want)
	return View{}
}

// TestHTTPRequiresKeyWhenKeyfileHasNoAnonymous: a keyed server answers
// 401 to missing, malformed, and unknown keys on every /v1 route, and
// 202 to a valid one. /healthz and /metrics stay open for probes.
func TestHTTPRequiresKeyWhenKeyfileHasNoAnonymous(t *testing.T) {
	m := newTenantedManager(t, `{"tenants": [{"id": "lab", "key": "secret"}]}`, Config{QueueSize: 4, Workers: 1})
	defer drain(t, m)
	srv := httptest.NewServer(NewHandler(m, "test", nil, nil))
	defer srv.Close()

	for _, key := range []string{"", "wrong"} {
		if _, code, _ := postJobKey(t, srv, key, testSpec()); code != http.StatusUnauthorized {
			t.Fatalf("POST with key %q -> %d, want 401", key, code)
		}
	}
	resp, err := http.Get(srv.URL + "/v1/jobs/j000001")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusUnauthorized {
		t.Fatalf("unauthenticated GET /v1/jobs/{id} -> %d, want 401", resp.StatusCode)
	}
	id, code, _ := postJobKey(t, srv, "secret", testSpec())
	if code != http.StatusAccepted {
		t.Fatalf("POST with valid key -> %d, want 202", code)
	}

	// Reads also need the key; the job's view names its tenant.
	req, _ := http.NewRequest("GET", srv.URL+"/v1/jobs/"+id, nil)
	req.Header.Set("Authorization", "Bearer secret")
	resp2, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp2.Body.Close()
	var v View
	if err := json.NewDecoder(resp2.Body).Decode(&v); err != nil {
		t.Fatal(err)
	}
	if v.Tenant != "lab" {
		t.Fatalf("job view tenant = %q, want lab", v.Tenant)
	}

	// Probes stay outside the front door.
	for _, path := range []string{"/healthz", "/metrics"} {
		resp, err := http.Get(srv.URL + path)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("unauthenticated GET %s -> %d, want 200", path, resp.StatusCode)
		}
	}
}

// TestRateLimit429CarriesRetryAfter: an exhausted token bucket answers
// 429 with a Retry-After derived from the bucket's refill time.
func TestRateLimit429CarriesRetryAfter(t *testing.T) {
	m := newTenantedManager(t, `{"tenants": [{"id": "lab", "key": "k", "rate": 0.5, "burst": 1}]}`, Config{QueueSize: 8, Workers: 1})
	defer drain(t, m)
	srv := httptest.NewServer(NewHandler(m, "test", nil, nil))
	defer srv.Close()

	if _, code, _ := postJobKey(t, srv, "k", testSpec()); code != http.StatusAccepted {
		t.Fatalf("first POST -> %d, want 202", code)
	}
	_, code, hdr := postJobKey(t, srv, "k", testSpec())
	if code != http.StatusTooManyRequests {
		t.Fatalf("second POST -> %d, want 429", code)
	}
	after, err := strconv.Atoi(hdr.Get("Retry-After"))
	if err != nil {
		t.Fatalf("429 Retry-After header = %q, want integer seconds", hdr.Get("Retry-After"))
	}
	// 0.5 tokens/sec means the next token is ~2s away; the header is
	// rounded up and never zero.
	if after < 1 || after > 3 {
		t.Fatalf("Retry-After = %d, want ~2s for a 0.5/sec bucket", after)
	}

	// The rejection is visible per-tenant in the registry.
	text := &strings.Builder{}
	if err := m.Registry().WriteText(text); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(text.String(), `tenant_rejected_total{reason="rate_limited",tenant="lab"}`) &&
		!strings.Contains(text.String(), `tenant_rejected_total{tenant="lab",reason="rate_limited"}`) {
		t.Fatalf("metrics lack the per-tenant rejection counter:\n%s", text.String())
	}
}

// TestQueueFull429CarriesRetryAfter: capacity rejections carry a
// Retry-After too (the fallback schedule), so no 429 leaves the client
// guessing.
func TestQueueFull429CarriesRetryAfter(t *testing.T) {
	gate := make(chan struct{})
	m := New(Config{QueueSize: 1, Workers: 1})
	m.runGate = gate
	srv := httptest.NewServer(NewHandler(m, "test", nil, nil))
	defer srv.Close()

	first, code := postJob(t, srv, testSpec())
	if code != http.StatusAccepted {
		t.Fatalf("job 1 -> %d", code)
	}
	waitStatus(t, srv, first, StatusRunning)
	if _, code := postJob(t, srv, testSpec()); code != http.StatusAccepted {
		t.Fatalf("job 2 -> %d, want 202", code)
	}
	_, code, hdr := postJobKey(t, srv, "", testSpec())
	if code != http.StatusTooManyRequests {
		t.Fatalf("overflow POST -> %d, want 429", code)
	}
	if hdr.Get("Retry-After") == "" {
		t.Fatal("queue-full 429 has no Retry-After header")
	}
	close(gate)
	drain(t, m)
}

// TestFairQueueLightTenantNotStarved is the fairness acceptance test:
// with a single gated worker, a heavy tenant's six-job backlog does not
// keep a light tenant's single job from completing — deficit round
// robin serves the light tenant at the next round boundary.
func TestFairQueueLightTenantNotStarved(t *testing.T) {
	gate := make(chan struct{})
	m := newTenantedManager(t,
		`{"anonymous": {}, "tenants": [{"id": "heavy", "key": "kh"}, {"id": "light", "key": "kl"}]}`,
		Config{QueueSize: 16, Workers: 1})
	m.runGate = gate
	srv := httptest.NewServer(NewHandler(m, "test", nil, nil))
	defer srv.Close()

	// Heavy floods first: one job held at the gate, five more queued.
	heavyIDs := make([]string, 0, 6)
	for i := 0; i < 6; i++ {
		spec := testSpec()
		spec.Seed = uint64(100 + i) // distinct jobs
		id, code, _ := postJobKey(t, srv, "kh", spec)
		if code != http.StatusAccepted {
			t.Fatalf("heavy job %d -> %d, want 202", i, code)
		}
		heavyIDs = append(heavyIDs, id)
	}
	waitStatusKey(t, srv, "kh", heavyIDs[0], StatusRunning)

	// Light arrives with one job, behind five queued heavy jobs.
	lightSpec := testSpec()
	lightSpec.Seed = 999
	lightID, code, _ := postJobKey(t, srv, "kl", lightSpec)
	if code != http.StatusAccepted {
		t.Fatalf("light job -> %d, want 202", code)
	}

	// Release workers one run at a time: heavy's gated job, then one
	// more heavy pop finishes heavy's round, then the light job. Under
	// the old global FIFO the light job would need all six releases.
	for i := 0; i < 3; i++ {
		gate <- struct{}{}
	}
	waitStatusKey(t, srv, "kl", lightID, StatusDone)

	queuedHeavy := 0
	for _, id := range heavyIDs {
		if v, _ := getViewKey(t, srv, "kh", id); v.Status == StatusQueued {
			queuedHeavy++
		}
	}
	if queuedHeavy < 3 {
		t.Fatalf("light job done with only %d heavy jobs still queued; it waited out the heavy backlog", queuedHeavy)
	}
	close(gate)
	drain(t, m)
}

// TestJobAccessScopedToTenant: authentication is not authorization —
// with sequential job IDs, tenant B must not be able to read, trace,
// or (destructively) cancel tenant A's jobs, and anonymous must not
// touch keyed tenants' jobs. An admin tenant may do both; the owner's
// own access keeps working.
func TestJobAccessScopedToTenant(t *testing.T) {
	gate := make(chan struct{})
	m := newTenantedManager(t,
		`{"anonymous": {}, "tenants": [{"id": "lab-a", "key": "ka"}, {"id": "lab-b", "key": "kb"}, {"id": "ops", "key": "ko", "admin": true}]}`,
		Config{QueueSize: 8, Workers: 1})
	m.runGate = gate
	srv := httptest.NewServer(NewHandler(m, "test", nil, nil))
	defer srv.Close()

	spec := testSpec()
	spec.Trace = true
	id, code, _ := postJobKey(t, srv, "ka", spec)
	if code != http.StatusAccepted {
		t.Fatalf("POST as lab-a -> %d, want 202", code)
	}

	// Reads: another tenant and anonymous both see 404, never the job.
	for _, key := range []string{"kb", ""} {
		if _, code := getViewKey(t, srv, key, id); code != http.StatusNotFound {
			t.Fatalf("GET %s as %q -> %d, want 404", id, key, code)
		}
		req, _ := http.NewRequest("GET", srv.URL+"/v1/jobs/"+id+"/trace", nil)
		if key != "" {
			req.Header.Set("Authorization", "Bearer "+key)
		}
		resp, err := http.DefaultClient.Do(req)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusNotFound {
			t.Fatalf("trace of %s as %q -> %d, want 404", id, key, resp.StatusCode)
		}
	}

	// Cancels: the destructive path is the one the review called out.
	cancelAs := func(key string) int {
		req, _ := http.NewRequest("DELETE", srv.URL+"/v1/jobs/"+id, nil)
		if key != "" {
			req.Header.Set("Authorization", "Bearer "+key)
		}
		resp, err := http.DefaultClient.Do(req)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		return resp.StatusCode
	}
	for _, key := range []string{"kb", ""} {
		if code := cancelAs(key); code != http.StatusNotFound {
			t.Fatalf("DELETE %s as %q -> %d, want 404", id, key, code)
		}
	}
	if v, code := getViewKey(t, srv, "ka", id); code != http.StatusOK || v.Status == StatusCancelled {
		t.Fatalf("cross-tenant DELETE went through: owner sees %d/%s", code, v.Status)
	}

	// The owner and the admin both still have full access.
	if v, code := getViewKey(t, srv, "ko", id); code != http.StatusOK || v.Tenant != "lab-a" {
		t.Fatalf("admin GET -> %d (tenant %q), want 200 for lab-a", code, v.Tenant)
	}
	if code := cancelAs("ka"); code != http.StatusOK {
		t.Fatalf("owner DELETE -> %d, want 200", code)
	}
	close(gate)
	drain(t, m)
}

// TestQueueRejectionRefundsRateToken: bouncing off a full queue must
// not burn the tenant's rate budget — after the queue frees up, the
// tenant's original burst is still available instead of everything
// having turned into rate-limit 429s.
func TestQueueRejectionRefundsRateToken(t *testing.T) {
	gate := make(chan struct{})
	m := newTenantedManager(t,
		`{"tenants": [{"id": "lab", "key": "k", "rate": 0.001, "burst": 4}]}`,
		Config{QueueSize: 1, Workers: 1})
	m.runGate = gate
	srv := httptest.NewServer(NewHandler(m, "test", nil, nil))
	defer srv.Close()

	// Two admits: one held at the gate, one fills the queue. Burst spent: 2.
	for i := 0; i < 2; i++ {
		spec := testSpec()
		spec.Seed = uint64(100 + i)
		if _, code, _ := postJobKey(t, srv, "k", spec); code != http.StatusAccepted {
			t.Fatalf("job %d -> %d, want 202", i, code)
		}
	}
	// Hammer the full queue: every rejection must be queue-class (token
	// refunded), not rate_limited (token burned).
	for i := 0; i < 10; i++ {
		spec := testSpec()
		spec.Seed = uint64(200 + i)
		_, code, _ := postJobKey(t, srv, "k", spec)
		if code != http.StatusTooManyRequests {
			t.Fatalf("full-queue POST %d -> %d, want 429", i, code)
		}
	}
	text := &strings.Builder{}
	if err := m.Registry().WriteText(text); err != nil {
		t.Fatal(err)
	}
	if strings.Contains(text.String(), `reason="rate_limited"`) {
		t.Fatalf("full-queue bounces consumed rate tokens:\n%s", text.String())
	}
	// Let the backlog finish, then spend the rest of the burst: only 2
	// of 4 tokens went to admitted jobs, and with the refill rate near
	// zero the next two 202s can only come from refunded tokens.
	close(gate)
	for i := 0; i < 2; i++ {
		waitStatusKey(t, srv, "k", fmt.Sprintf("j%06d", i+1), StatusDone)
	}
	for i := 0; i < 2; i++ {
		spec := testSpec()
		spec.Seed = uint64(300 + i)
		if _, code, _ := postJobKey(t, srv, "k", spec); code != http.StatusAccepted {
			t.Fatalf("remaining-burst job %d -> %d, want 202 (queue bounces burned the budget)", i, code)
		}
	}
	drain(t, m)
}

// TestRowsIdenticalAcrossTenants is the determinism acceptance test:
// the same spec produces bit-identical rows no matter which tenant
// submits it — tenancy shapes scheduling, never results.
func TestRowsIdenticalAcrossTenants(t *testing.T) {
	m := newTenantedManager(t,
		`{"anonymous": {}, "tenants": [{"id": "lab-a", "key": "ka"}, {"id": "lab-b", "key": "kb"}]}`,
		Config{QueueSize: 8, Workers: 2})
	defer drain(t, m)
	srv := httptest.NewServer(NewHandler(m, "test", nil, nil))
	defer srv.Close()

	var rows [][]byte
	for _, key := range []string{"ka", "kb", ""} { // "" = anonymous
		id, code, _ := postJobKey(t, srv, key, testSpec())
		if code != http.StatusAccepted {
			t.Fatalf("POST as %q -> %d, want 202", key, code)
		}
		v := waitStatusKey(t, srv, key, id, StatusDone)
		buf, err := json.Marshal(v.Rows)
		if err != nil {
			t.Fatal(err)
		}
		rows = append(rows, buf)
	}
	for i := 1; i < len(rows); i++ {
		if !bytes.Equal(rows[0], rows[i]) {
			t.Fatalf("rows differ between tenants:\n%s\nvs\n%s", rows[0], rows[i])
		}
	}
}
