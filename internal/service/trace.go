package service

import (
	"encoding/json"
	"io"
	"math"

	"repro/internal/core"
)

// TraceEvent is the NDJSON wire form of a core.Event, tagged with the
// trial that emitted it. It is the one encoding shared by every trace
// surface: `vmat-sim -trace` prints it (trial 0) and the server's
// `GET /v1/jobs/{id}/trace` streams it.
type TraceEvent struct {
	Trial int    `json:"trial"`
	Kind  string `json:"kind"`
	Slot  int    `json:"slot"`
	Label string `json:"label,omitempty"`
	// Node is the sensor involved; -1 (core.NoNode) for key-only events.
	Node     int `json:"node"`
	Instance int `json:"instance"`
	// Value is omitted when the event's value is NaN or infinite
	// (encoding/json cannot represent those).
	Value *float64 `json:"value,omitempty"`
	// Key is the pool key index involved; core.NoKey when absent.
	Key int  `json:"key"`
	OK  bool `json:"ok"`
}

// NewTraceEvent converts an engine event.
func NewTraceEvent(trial int, ev core.Event) TraceEvent {
	te := TraceEvent{
		Trial:    trial,
		Kind:     ev.Kind.String(),
		Slot:     ev.Slot,
		Label:    ev.Label,
		Node:     int(ev.Node),
		Instance: ev.Instance,
		Key:      ev.KeyIndex,
		OK:       ev.OK,
	}
	if !math.IsNaN(ev.Value) && !math.IsInf(ev.Value, 0) {
		v := ev.Value
		te.Value = &v
	}
	return te
}

// TraceEncoder writes trace events as NDJSON: one JSON object per line.
type TraceEncoder struct {
	enc *json.Encoder
}

// NewTraceEncoder returns an encoder writing to w.
func NewTraceEncoder(w io.Writer) *TraceEncoder {
	return &TraceEncoder{enc: json.NewEncoder(w)}
}

// Encode writes one engine event.
func (t *TraceEncoder) Encode(trial int, ev core.Event) error {
	return t.enc.Encode(NewTraceEvent(trial, ev))
}

// EncodeEvent writes an already-converted event.
func (t *TraceEncoder) EncodeEvent(te TraceEvent) error {
	return t.enc.Encode(te)
}
