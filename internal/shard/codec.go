package shard

import (
	"encoding/binary"
	"encoding/json"
	"errors"
	"fmt"
)

// Binary batch codec for lease grants. A wire grant frame carries a
// batch of descriptors; the framing layer (internal/wire) has already
// checked magic, length, and CRC, so this codec's job is purely
// structural: length-prefixed fields with hard caps, so hostile or
// truncated payloads fail decoding instead of allocating unbounded
// memory or panicking. DecodeBatch is a fuzz target (fuzz_test.go).
//
// Layout (all little-endian):
//
//	count  uint16
//	count × descriptor:
//	  id, key, parent  uvarint length + bytes (≤ maxFieldBytes each)
//	  start, end       uvarint               (≤ maxTrialIndex)
//	  spec             uvarint length + JSON (≤ maxSpecBytes)

const (
	// maxBatch caps descriptors per grant; the coordinator grants at
	// most a worker's advertised demand, far below this.
	maxBatch = 4096
	// maxFieldBytes caps the id/key/parent strings (hex SHA-256 keys
	// are 64 bytes).
	maxFieldBytes = 1024
	// maxSpecBytes caps one encoded scenario spec.
	maxSpecBytes = 1 << 20
)

// ErrBatchTooLarge reports an encode-side batch over the wire cap.
var ErrBatchTooLarge = errors.New("shard: batch exceeds wire cap")

// EncodeBatch serializes a grant batch.
func EncodeBatch(ds []Descriptor) ([]byte, error) {
	if len(ds) > maxBatch {
		return nil, ErrBatchTooLarge
	}
	buf := make([]byte, 2, 2+len(ds)*512)
	binary.LittleEndian.PutUint16(buf, uint16(len(ds)))
	for i := range ds {
		d := &ds[i]
		spec, err := json.Marshal(d.Spec)
		if err != nil {
			return nil, fmt.Errorf("shard: encode spec for %s: %w", d.ID, err)
		}
		if len(d.ID) > maxFieldBytes || len(d.Key) > maxFieldBytes || len(d.Parent) > maxFieldBytes {
			return nil, fmt.Errorf("shard: descriptor %s has an oversized field", d.ID)
		}
		if len(spec) > maxSpecBytes {
			return nil, fmt.Errorf("shard: descriptor %s spec exceeds %d bytes", d.ID, maxSpecBytes)
		}
		buf = appendBytes(buf, []byte(d.ID))
		buf = appendBytes(buf, []byte(d.Key))
		buf = appendBytes(buf, []byte(d.Parent))
		buf = binary.AppendUvarint(buf, uint64(d.Start))
		buf = binary.AppendUvarint(buf, uint64(d.End))
		buf = appendBytes(buf, spec)
	}
	return buf, nil
}

func appendBytes(dst, b []byte) []byte {
	dst = binary.AppendUvarint(dst, uint64(len(b)))
	return append(dst, b...)
}

// DecodeBatch parses a grant batch. Every length and count is bounded
// before any allocation depends on it; malformed input yields an error,
// never a panic — the receiving side drops the conn and re-syncs via
// re-registration.
func DecodeBatch(b []byte) ([]Descriptor, error) {
	if len(b) < 2 {
		return nil, errors.New("shard: batch truncated before count")
	}
	count := int(binary.LittleEndian.Uint16(b))
	b = b[2:]
	if count > maxBatch {
		return nil, fmt.Errorf("shard: batch count %d exceeds cap %d", count, maxBatch)
	}
	ds := make([]Descriptor, 0, count)
	for i := 0; i < count; i++ {
		var d Descriptor
		var f []byte
		var err error
		if f, b, err = readBytes(b, maxFieldBytes); err != nil {
			return nil, fmt.Errorf("shard: descriptor %d id: %w", i, err)
		}
		d.ID = string(f)
		if f, b, err = readBytes(b, maxFieldBytes); err != nil {
			return nil, fmt.Errorf("shard: descriptor %d key: %w", i, err)
		}
		d.Key = string(f)
		if f, b, err = readBytes(b, maxFieldBytes); err != nil {
			return nil, fmt.Errorf("shard: descriptor %d parent: %w", i, err)
		}
		d.Parent = string(f)
		if d.Start, b, err = readTrialIndex(b); err != nil {
			return nil, fmt.Errorf("shard: descriptor %d start: %w", i, err)
		}
		if d.End, b, err = readTrialIndex(b); err != nil {
			return nil, fmt.Errorf("shard: descriptor %d end: %w", i, err)
		}
		if d.End > 0 && d.End <= d.Start {
			return nil, fmt.Errorf("shard: descriptor %d has empty range [%d,%d)", i, d.Start, d.End)
		}
		if f, b, err = readBytes(b, maxSpecBytes); err != nil {
			return nil, fmt.Errorf("shard: descriptor %d spec: %w", i, err)
		}
		if err := json.Unmarshal(f, &d.Spec); err != nil {
			return nil, fmt.Errorf("shard: descriptor %d spec: %w", i, err)
		}
		ds = append(ds, d)
	}
	if len(b) != 0 {
		return nil, fmt.Errorf("shard: %d trailing bytes after batch", len(b))
	}
	return ds, nil
}

// readBytes consumes one length-prefixed field of at most maxLen bytes.
func readBytes(b []byte, maxLen int) (field, rest []byte, err error) {
	n, w := binary.Uvarint(b)
	if w <= 0 {
		return nil, nil, errors.New("bad length prefix")
	}
	if n > uint64(maxLen) {
		return nil, nil, fmt.Errorf("length %d exceeds cap %d", n, maxLen)
	}
	b = b[w:]
	if uint64(len(b)) < n {
		return nil, nil, errors.New("truncated field")
	}
	return b[:n], b[n:], nil
}

// maxTrialIndex bounds trial indices on the wire; scenario specs cap
// trials far below this, so anything larger is hostile or corrupt.
const maxTrialIndex = 1 << 30

func readTrialIndex(b []byte) (int, []byte, error) {
	n, w := binary.Uvarint(b)
	if w <= 0 {
		return 0, nil, errors.New("bad varint")
	}
	if n > maxTrialIndex {
		return 0, nil, fmt.Errorf("trial index %d exceeds cap", n)
	}
	return int(n), b[w:], nil
}
