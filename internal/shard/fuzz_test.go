package shard

import (
	"reflect"
	"testing"

	"repro/internal/experiments"
)

// FuzzDecodeBatch feeds arbitrary bytes to the grant-batch decoder: it
// must never panic or over-allocate, and anything it does accept must
// re-encode to the same batch (so a worker and the coordinator can
// never disagree about a grant that passed decoding). Same contract as
// the store's journal replay: hostile bytes are an error, not a crash.
func FuzzDecodeBatch(f *testing.F) {
	spec := experiments.ScenarioConfig{N: 24, Topology: "line", Query: "min", Attack: "none", Trials: 8, Seed: 3}
	seed, err := EncodeBatch([]Descriptor{
		{ID: "u000001", Key: Key("f00d", 0, 4), Parent: "f00d", Start: 0, End: 4, Spec: spec},
		{ID: "u000002", Key: "f00d", Spec: spec},
	})
	if err != nil {
		f.Fatal(err)
	}
	f.Add(seed)
	f.Add(seed[:len(seed)/2])
	f.Add([]byte{})
	f.Add([]byte{0xff, 0xff, 0xff})
	f.Fuzz(func(t *testing.T, b []byte) {
		ds, err := DecodeBatch(b)
		if err != nil {
			return
		}
		re, err := EncodeBatch(ds)
		if err != nil {
			t.Fatalf("accepted batch does not re-encode: %v", err)
		}
		ds2, err := DecodeBatch(re)
		if err != nil || !reflect.DeepEqual(ds, ds2) {
			t.Fatalf("accepted batch is not round-trip stable: %v", err)
		}
	})
}
