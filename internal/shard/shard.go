// Package shard splits a scenario into per-trial-range work units and
// reassembles their results. It is the planning half of the sharded
// execution fabric: internal/cluster leases the descriptors this
// package plans, internal/wire carries them, and the Merger puts the
// completed rows back together in trial order at the coordinator.
//
// The split is safe because the trial runner derives one random stream
// per trial from the seed alone (see experiments.RunTrialRange): trials
// [start, end) executed on another machine produce rows bit-identical
// to the same slice of a single-box run, so concatenating shard rows in
// range order preserves the repository's bit-identical-CSV guarantee.
// Each shard carries its own content address derived from the parent
// scenario's store key plus the trial range — the completing worker
// echoes it, exactly like whole-scenario units echo theirs — but only
// the fully assembled scenario is written to the store, under the
// parent key.
package shard

import (
	"crypto/sha256"
	"encoding/binary"
	"encoding/hex"
	"fmt"

	"repro/internal/experiments"
)

// Descriptor identifies one leased unit of work: a fully normalized
// scenario spec plus, when the scenario is sharded, the half-open trial
// range this unit covers and the parent scenario's content address.
// End == 0 means the unit is the whole scenario (the pre-sharding unit
// shape, still used when -shard-trials is 0 or the scenario fits in one
// shard).
type Descriptor struct {
	ID     string                     `json:"id"`
	Key    string                     `json:"key"`
	Parent string                     `json:"parent,omitempty"`
	Start  int                        `json:"start,omitempty"`
	End    int                        `json:"end,omitempty"`
	Spec   experiments.ScenarioConfig `json:"spec"`
}

// Sharded reports whether the descriptor covers a trial sub-range
// rather than the whole scenario.
func (d *Descriptor) Sharded() bool { return d.End > 0 }

// Run executes the descriptor: the trial range when sharded, the whole
// scenario otherwise.
func (d *Descriptor) Run() ([]experiments.ScenarioRow, error) {
	if d.Sharded() {
		return experiments.RunScenarioRange(d.Spec, d.Start, d.End)
	}
	return experiments.RunScenario(d.Spec)
}

// Key derives a shard's content address from its parent scenario's
// address and the trial range. Workers echo it on completion so the
// coordinator can tell a shard result apart from any other unit's
// payload without trusting the reporter.
func Key(parent string, start, end int) string {
	h := sha256.New()
	h.Write([]byte("shard\x00"))
	h.Write([]byte(parent))
	var buf [16]byte
	binary.LittleEndian.PutUint64(buf[0:8], uint64(start))
	binary.LittleEndian.PutUint64(buf[8:16], uint64(end))
	h.Write(buf[:])
	return hex.EncodeToString(h.Sum(nil))
}

// Range is a half-open trial interval [Start, End).
type Range struct {
	Start, End int
}

// Plan splits trials into consecutive ranges of at most per trials
// each. It returns nil when sharding is off (per <= 0) or the scenario
// fits in a single shard — the caller should lease the whole scenario
// as one unit, which skips the merge entirely.
func Plan(trials, per int) []Range {
	if per <= 0 || trials <= per {
		return nil
	}
	ranges := make([]Range, 0, (trials+per-1)/per)
	for s := 0; s < trials; s += per {
		e := s + per
		if e > trials {
			e = trials
		}
		ranges = append(ranges, Range{Start: s, End: e})
	}
	return ranges
}

// Merger reassembles a scenario from completed shard results. Shards
// may arrive in any order; rows are stitched back in range order, so
// the assembled slice is bit-identical to a single-box run. Add
// validates each shard's rows against its range — a result with the
// wrong row count or wrong trial indices is rejected before it can
// corrupt the assembly. Merger is not safe for concurrent use; the
// coordinator calls it under its own lock.
type Merger struct {
	ranges []Range
	rows   [][]experiments.ScenarioRow
	filled int
}

// NewMerger prepares the assembly for the planned ranges.
func NewMerger(ranges []Range) *Merger {
	return &Merger{ranges: ranges, rows: make([][]experiments.ScenarioRow, len(ranges))}
}

// Shards returns how many shards the merger expects.
func (m *Merger) Shards() int { return len(m.ranges) }

// Add records shard i's rows after validating them against its range.
func (m *Merger) Add(i int, rows []experiments.ScenarioRow) error {
	if i < 0 || i >= len(m.ranges) {
		return fmt.Errorf("shard: index %d out of range (%d shards)", i, len(m.ranges))
	}
	if m.rows[i] != nil {
		return fmt.Errorf("shard: shard %d already merged", i)
	}
	r := m.ranges[i]
	if len(rows) != r.End-r.Start {
		return fmt.Errorf("shard: shard %d covers [%d,%d) but carries %d rows", i, r.Start, r.End, len(rows))
	}
	for j, row := range rows {
		if row.Trial != r.Start+j {
			return fmt.Errorf("shard: shard %d row %d has trial index %d, want %d", i, j, row.Trial, r.Start+j)
		}
	}
	m.rows[i] = rows
	m.filled++
	return nil
}

// Done reports whether every shard has been merged.
func (m *Merger) Done() bool { return m.filled == len(m.ranges) }

// Rows returns the assembled scenario rows in trial order, or nil until
// every shard has arrived.
func (m *Merger) Rows() []experiments.ScenarioRow {
	if !m.Done() {
		return nil
	}
	total := 0
	for _, rs := range m.rows {
		total += len(rs)
	}
	out := make([]experiments.ScenarioRow, 0, total)
	for _, rs := range m.rows {
		out = append(out, rs...)
	}
	return out
}
