package shard

import (
	"reflect"
	"strings"
	"testing"

	"repro/internal/experiments"
)

func TestPlan(t *testing.T) {
	cases := []struct {
		trials, per int
		want        []Range
	}{
		{trials: 10, per: 0, want: nil},  // sharding off
		{trials: 10, per: 10, want: nil}, // fits in one shard
		{trials: 10, per: 64, want: nil}, // fits in one shard
		{trials: 10, per: 4, want: []Range{{0, 4}, {4, 8}, {8, 10}}},
		{trials: 8, per: 4, want: []Range{{0, 4}, {4, 8}}},
		{trials: 3, per: 1, want: []Range{{0, 1}, {1, 2}, {2, 3}}},
	}
	for _, c := range cases {
		got := Plan(c.trials, c.per)
		if !reflect.DeepEqual(got, c.want) {
			t.Errorf("Plan(%d, %d) = %v, want %v", c.trials, c.per, got, c.want)
		}
	}
}

func TestKeyDistinguishesParentAndRange(t *testing.T) {
	seen := map[string]string{}
	for _, c := range []struct {
		parent     string
		start, end int
	}{
		{"aaaa", 0, 64}, {"aaaa", 64, 128}, {"aaaa", 0, 128}, {"bbbb", 0, 64},
	} {
		k := Key(c.parent, c.start, c.end)
		if len(k) != 64 {
			t.Fatalf("Key length %d, want 64 hex chars", len(k))
		}
		if prev, dup := seen[k]; dup {
			t.Fatalf("key collision between %q and %v", prev, c)
		}
		seen[k] = k
	}
	if Key("aaaa", 0, 64) != Key("aaaa", 0, 64) {
		t.Fatal("Key is not deterministic")
	}
}

func mergerRows(r Range) []experiments.ScenarioRow {
	rows := make([]experiments.ScenarioRow, r.End-r.Start)
	for i := range rows {
		rows[i].Trial = r.Start + i
		rows[i].Answered = true
	}
	return rows
}

func TestMergerAssemblesOutOfOrder(t *testing.T) {
	ranges := Plan(10, 4)
	m := NewMerger(ranges)
	if m.Shards() != 3 || m.Done() || m.Rows() != nil {
		t.Fatal("fresh merger should be empty and incomplete")
	}
	for _, i := range []int{2, 0, 1} {
		if err := m.Add(i, mergerRows(ranges[i])); err != nil {
			t.Fatal(err)
		}
	}
	if !m.Done() {
		t.Fatal("all shards merged but Done is false")
	}
	rows := m.Rows()
	if len(rows) != 10 {
		t.Fatalf("assembled %d rows, want 10", len(rows))
	}
	for i, row := range rows {
		if row.Trial != i {
			t.Fatalf("row %d has trial index %d", i, row.Trial)
		}
	}
}

func TestMergerRejectsBadShards(t *testing.T) {
	ranges := Plan(10, 4)
	m := NewMerger(ranges)
	if err := m.Add(5, nil); err == nil {
		t.Fatal("out-of-range shard index accepted")
	}
	if err := m.Add(0, mergerRows(Range{0, 3})); err == nil {
		t.Fatal("wrong row count accepted")
	}
	wrong := mergerRows(ranges[0])
	wrong[2].Trial = 99
	if err := m.Add(0, wrong); err == nil {
		t.Fatal("wrong trial index accepted")
	}
	if err := m.Add(0, mergerRows(ranges[0])); err != nil {
		t.Fatal(err)
	}
	if err := m.Add(0, mergerRows(ranges[0])); err == nil {
		t.Fatal("duplicate shard accepted")
	}
}

func TestBatchRoundTrip(t *testing.T) {
	spec := experiments.ScenarioConfig{N: 24, Topology: "line", Query: "min", Attack: "none", Trials: 8, Seed: 3}
	parent := "f00d"
	var ds []Descriptor
	for i, r := range Plan(8, 3) {
		ds = append(ds, Descriptor{
			ID: "u000001", Key: Key(parent, r.Start, r.End), Parent: parent,
			Start: r.Start, End: r.End, Spec: spec,
		})
		ds[i].ID = ds[i].ID + string(rune('a'+i))
	}
	b, err := EncodeBatch(ds)
	if err != nil {
		t.Fatal(err)
	}
	got, err := DecodeBatch(b)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, ds) {
		t.Fatalf("round trip mismatch:\n got %+v\nwant %+v", got, ds)
	}
	// A whole-scenario descriptor (End 0) survives too.
	whole := []Descriptor{{ID: "u9", Key: parent, Spec: spec}}
	b, err = EncodeBatch(whole)
	if err != nil {
		t.Fatal(err)
	}
	got, err = DecodeBatch(b)
	if err != nil {
		t.Fatal(err)
	}
	if got[0].Sharded() || !reflect.DeepEqual(got, whole) {
		t.Fatalf("whole-scenario round trip mismatch: %+v", got)
	}
}

func TestDecodeBatchRejectsHostileInput(t *testing.T) {
	spec := experiments.ScenarioConfig{N: 24, Trials: 4, Seed: 1}
	good, err := EncodeBatch([]Descriptor{{ID: "u1", Key: "k", Spec: spec}})
	if err != nil {
		t.Fatal(err)
	}
	cases := map[string][]byte{
		"empty":          {},
		"count only":     good[:2],
		"truncated tail": good[:len(good)-3],
		"trailing bytes": append(append([]byte{}, good...), 0xff),
		"huge count":     {0xff, 0xff},
		"huge field len": {1, 0, 0xff, 0xff, 0xff, 0xff, 0x7f},
	}
	for name, b := range cases {
		if _, err := DecodeBatch(b); err == nil {
			t.Errorf("%s: decoded without error", name)
		}
	}
}

func TestDescriptorRunRange(t *testing.T) {
	spec := experiments.ScenarioConfig{N: 24, Topology: "line", Query: "min", Attack: "none", Trials: 6, Seed: 11}
	full, err := (&Descriptor{Key: "k", Spec: spec}).Run()
	if err != nil {
		t.Fatal(err)
	}
	part, err := (&Descriptor{Key: "k", Parent: "p", Start: 2, End: 5, Spec: spec}).Run()
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(part, full[2:5]) {
		t.Fatal("sharded Run is not the matching slice of the full run")
	}
}

func TestEncodeBatchCaps(t *testing.T) {
	if _, err := EncodeBatch(make([]Descriptor, maxBatch+1)); err == nil {
		t.Fatal("oversized batch accepted")
	}
	d := Descriptor{ID: strings.Repeat("x", maxFieldBytes+1)}
	if _, err := EncodeBatch([]Descriptor{d}); err == nil {
		t.Fatal("oversized field accepted")
	}
}
