package simnet

import "fmt"

// ARQConfig configures the link-layer stop-and-wait ARQ. The paper's
// system model (Section III) assumes every link-layer frame is delivered
// reliably "through retransmission"; the ARQ makes that assumption
// concrete and charges its cost honestly: every unicast is acknowledged
// by the receiver, unacked frames are retransmitted after an ack timeout
// that backs off exponentially up to a cap, and a frame is abandoned once
// its retransmit budget is spent. Zero-valued fields take the documented
// defaults, so `&ARQConfig{}` enables the ARQ with sensible parameters.
type ARQConfig struct {
	// Timeout is the ack timeout, in slots, for the first transmission
	// attempt. The minimum useful value is 2: delivery takes one slot
	// and the ack returns within the delivery slot, so a sender first
	// learns of a missing ack two slots after transmitting. Zero means 2.
	Timeout int `json:"timeout,omitempty"`
	// MaxRetries bounds retransmissions per frame (beyond the initial
	// transmission). When the budget is spent the frame is abandoned and
	// counted in Stats.ARQFailed if it never got through. Zero means 3.
	MaxRetries int `json:"max_retries,omitempty"`
	// BackoffCap caps the exponentially doubling ack timeout, in slots.
	// Zero means 8×Timeout.
	BackoffCap int `json:"backoff_cap,omitempty"`
	// AckBytes is the wire size charged for each acknowledgement frame
	// (a short header plus the sequence number being acked). Zero means 8.
	AckBytes int `json:"ack_bytes,omitempty"`
}

// withDefaults returns a copy with zero fields replaced by defaults.
func (c ARQConfig) withDefaults() ARQConfig {
	if c.Timeout == 0 {
		c.Timeout = 2
	}
	if c.MaxRetries == 0 {
		c.MaxRetries = 3
	}
	if c.BackoffCap == 0 {
		c.BackoffCap = 8 * c.Timeout
	}
	if c.AckBytes == 0 {
		c.AckBytes = 8
	}
	return c
}

// Validate reports whether the configuration is usable. A nil config is
// valid (ARQ disabled).
func (c *ARQConfig) Validate() error {
	if c == nil {
		return nil
	}
	if c.Timeout < 0 {
		return fmt.Errorf("arq: timeout %d must be >= 0", c.Timeout)
	}
	if c.MaxRetries < 0 {
		return fmt.Errorf("arq: max_retries %d must be >= 0", c.MaxRetries)
	}
	if c.BackoffCap < 0 {
		return fmt.Errorf("arq: backoff_cap %d must be >= 0", c.BackoffCap)
	}
	if c.AckBytes < 0 {
		return fmt.Errorf("arq: ack_bytes %d must be >= 0", c.AckBytes)
	}
	return nil
}

// arqEntry tracks one frame awaiting acknowledgement. Entries live on
// the network's driver goroutine only: they are created at the merge
// barrier, consulted at delivery, and retired in arqTick — never from
// step goroutines.
type arqEntry struct {
	msg       Message // the frame as originally sent (retransmitted verbatim)
	attempt   int     // retransmissions performed so far
	lastSent  int     // slot of the most recent (re)transmission
	acked     bool    // an ack reached the sender
	delivered bool    // at least one copy reached the receiver
}

// deliverARQ performs receiver-side ARQ for a frame that survived the
// radio: the receiver acks it (charging ack bytes; the ack itself may be
// lost to the same loss processes as data frames), and the caller learns
// whether the payload should be handed to the application — false for
// duplicates already delivered by an earlier copy.
func (n *Network) deliverARQ(e *arqEntry) bool {
	dup := e.delivered
	e.delivered = true
	// The receiver acks every copy it hears, duplicates included: a
	// duplicate means the previous ack was lost.
	n.stats.AcksSent++
	n.stats.BytesSent[e.msg.To] += int64(n.arqCfg.AckBytes)
	lost := false
	if n.cfg.DropRate > 0 && n.cfg.DropRNG != nil && n.cfg.DropRNG.Float64() < n.cfg.DropRate {
		lost = true
	} else if f := n.cfg.Faults; f != nil && f.DeliveryLost() {
		lost = true
	}
	if lost {
		n.stats.AcksLost++
	} else {
		n.stats.BytesReceived[e.msg.From] += int64(n.arqCfg.AckBytes)
		e.acked = true
	}
	if dup {
		n.stats.ARQDuplicates++
		return false
	}
	return true
}

// arqTick retires acked frames and retransmits timed-out ones. It runs
// once per slot on the driver goroutine, right after delivery, so
// retransmissions enter the just-drained pending queue and go out with
// this slot's fresh traffic.
func (n *Network) arqTick() {
	if len(n.arq) == 0 {
		return
	}
	live := n.arq[:0]
	for _, e := range n.arq {
		if e.acked {
			continue
		}
		wait := n.arqCfg.Timeout << e.attempt
		if wait > n.arqCfg.BackoffCap {
			wait = n.arqCfg.BackoffCap
		}
		if n.slot-e.lastSent < wait {
			live = append(live, e)
			continue
		}
		senderDown := n.cfg.Faults != nil && n.cfg.Faults.NodeDown(e.msg.From)
		if e.attempt >= n.arqCfg.MaxRetries || senderDown {
			// Budget spent (or the sender itself crashed). Only count a
			// failure if no copy ever got through; a delivered frame whose
			// acks all died is a sender-side bookkeeping loss, not a
			// delivery failure.
			if !e.delivered {
				n.stats.ARQFailed++
			}
			continue
		}
		e.attempt++
		e.lastSent = n.slot
		m := e.msg
		m.seq = n.seq
		n.seq++
		n.stats.Retransmits++
		n.stats.BytesSent[m.From] += int64(m.Payload.WireSize())
		n.stats.MessagesSent[m.From]++
		n.pending = append(n.pending, m)
		live = append(live, e)
	}
	n.arq = live
}
