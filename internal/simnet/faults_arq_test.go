package simnet

import (
	"runtime"
	"sync"
	"testing"
	"time"

	"repro/internal/faults"
	"repro/internal/topology"
)

// The faults package's Schedule must satisfy the network's fault hook.
var _ FaultModel = (*faults.Schedule)(nil)

// scriptedFaults is a fully scripted FaultModel for tests: node and link
// outages are fixed predicates, and delivery-loss draws are answered from
// a per-draw-index table (default: not lost).
type scriptedFaults struct {
	downNodes map[topology.NodeID]bool
	downLinks func(from, to topology.NodeID) bool
	lossAt    map[int]bool
	draws     int
}

func (f *scriptedFaults) BeginSlot(int) {}

func (f *scriptedFaults) NodeDown(id topology.NodeID) bool { return f.downNodes[id] }

func (f *scriptedFaults) LinkDown(from, to topology.NodeID) bool {
	return f.downLinks != nil && f.downLinks(from, to)
}

func (f *scriptedFaults) DeliveryLost() bool {
	lost := f.lossAt[f.draws]
	f.draws++
	return lost
}

func TestCrashedNodeNeitherStepsNorReceives(t *testing.T) {
	fm := &scriptedFaults{downNodes: map[topology.NodeID]bool{1: true}}
	net := New(topology.Line(3), Config{Sequential: true, Faults: fm})
	stepped := make([]int, 3)
	received := 0
	net.RunSlots(3, func(ctx *Context) {
		stepped[ctx.Node()]++
		received += len(ctx.Inbox)
		if ctx.Slot() == 0 && ctx.Node() == 0 {
			ctx.Send(1, payload{"to-crashed", 10})
		}
	})
	if stepped[1] != 0 {
		t.Fatalf("crashed node stepped %d times, want 0", stepped[1])
	}
	if stepped[0] != 3 || stepped[2] != 3 {
		t.Fatalf("live nodes stepped %v, want 3 each", stepped)
	}
	if received != 0 {
		t.Fatal("a message reached a crashed node")
	}
	if s := net.Stats(); s.DroppedFault != 1 {
		t.Fatalf("DroppedFault = %d, want 1", s.DroppedFault)
	}
}

func TestDownLinkDropsDelivery(t *testing.T) {
	fm := &scriptedFaults{downLinks: func(from, to topology.NodeID) bool {
		return (from == 0 && to == 1) || (from == 1 && to == 0)
	}}
	net := New(topology.Line(3), Config{Sequential: true, Faults: fm})
	received := 0
	net.RunSlots(3, func(ctx *Context) {
		received += len(ctx.Inbox)
		if ctx.Slot() == 0 && ctx.Node() == 0 {
			// Send succeeds (the sender cannot know the link faded) but the
			// delivery is lost.
			if !ctx.Send(1, payload{"x", 4}) {
				t.Error("send over a faded link must still report success")
			}
		}
		if ctx.Slot() == 0 && ctx.Node() == 2 {
			ctx.Send(1, payload{"y", 4}) // the 1-2 link is fine
		}
	})
	if received != 1 {
		t.Fatalf("received %d messages, want 1 (only over the live link)", received)
	}
	if s := net.Stats(); s.DroppedFault != 1 {
		t.Fatalf("DroppedFault = %d, want 1", s.DroppedFault)
	}
}

func TestARQRecoversFromBurstLoss(t *testing.T) {
	// Draw 0 is the first delivery attempt: lost. The retransmission
	// (draw 1) and its ack (draw 2) get through.
	fm := &scriptedFaults{lossAt: map[int]bool{0: true}}
	net := New(topology.Line(2), Config{Sequential: true, Faults: fm, ARQ: &ARQConfig{}})
	var got []Message
	net.RunSlots(6, func(ctx *Context) {
		got = append(got, ctx.Inbox...)
		if ctx.Slot() == 0 && ctx.Node() == 0 {
			ctx.Send(1, payload{"reliable", 20})
		}
	})
	if len(got) != 1 || got[0].Payload.(payload).tag != "reliable" {
		t.Fatalf("delivered %v, want exactly one copy of the frame", got)
	}
	s := net.Stats()
	if s.Retransmits != 1 || s.ARQFailed != 0 || s.ARQDuplicates != 0 {
		t.Fatalf("stats = %+v, want 1 retransmit and no failures/duplicates", s)
	}
	if s.AcksSent != 1 || s.AcksLost != 0 {
		t.Fatalf("acks sent/lost = %d/%d, want 1/0", s.AcksSent, s.AcksLost)
	}
	// Ack bytes are charged: the receiver paid to send the ack, the
	// sender paid to receive it. Frame: 20 bytes sent twice by node 0.
	if s.BytesSent[1] != 8 || s.BytesReceived[0] != 8 {
		t.Fatalf("ack accounting: node1 sent %d, node0 received %d, want 8/8",
			s.BytesSent[1], s.BytesReceived[0])
	}
	if s.BytesSent[0] != 40 {
		t.Fatalf("node0 sent %d bytes, want 40 (frame + retransmission)", s.BytesSent[0])
	}
}

func TestARQSuppressesDuplicateOnLostAck(t *testing.T) {
	// Draw 0: data delivered. Draw 1: its ack is lost. The sender times
	// out and retransmits; draw 2 delivers the duplicate, which the
	// receiver suppresses and re-acks (draw 3 lets the ack through).
	fm := &scriptedFaults{lossAt: map[int]bool{1: true}}
	net := New(topology.Line(2), Config{Sequential: true, Faults: fm, ARQ: &ARQConfig{}})
	var got []Message
	net.RunSlots(6, func(ctx *Context) {
		got = append(got, ctx.Inbox...)
		if ctx.Slot() == 0 && ctx.Node() == 0 {
			ctx.Send(1, payload{"once", 16})
		}
	})
	if len(got) != 1 {
		t.Fatalf("application saw %d copies, want 1 (duplicate suppressed)", len(got))
	}
	s := net.Stats()
	if s.ARQDuplicates != 1 || s.Retransmits != 1 {
		t.Fatalf("duplicates/retransmits = %d/%d, want 1/1", s.ARQDuplicates, s.Retransmits)
	}
	if s.AcksSent != 2 || s.AcksLost != 1 {
		t.Fatalf("acks sent/lost = %d/%d, want 2/1", s.AcksSent, s.AcksLost)
	}
}

func TestARQGivesUpAfterBudget(t *testing.T) {
	// The 0-1 link is permanently down: every attempt is dropped and the
	// sender must abandon the frame after MaxRetries retransmissions.
	fm := &scriptedFaults{downLinks: func(from, to topology.NodeID) bool { return true }}
	net := New(topology.Line(2), Config{Sequential: true, Faults: fm, ARQ: &ARQConfig{}})
	net.RunSlots(40, func(ctx *Context) {
		if ctx.Slot() == 0 && ctx.Node() == 0 {
			ctx.Send(1, payload{"doomed", 12})
		}
	})
	s := net.Stats()
	if s.Retransmits != 3 {
		t.Fatalf("Retransmits = %d, want 3 (the default budget)", s.Retransmits)
	}
	if s.ARQFailed != 1 {
		t.Fatalf("ARQFailed = %d, want 1", s.ARQFailed)
	}
	if s.DroppedFault != 4 {
		t.Fatalf("DroppedFault = %d, want 4 (initial + 3 retransmissions)", s.DroppedFault)
	}
}

func TestARQZeroCountersWhenDisabled(t *testing.T) {
	net := New(topology.Line(3), Config{Sequential: true})
	net.RunSlots(3, func(ctx *Context) {
		if ctx.Slot() == 0 && ctx.Node() == 0 {
			ctx.Send(1, payload{"plain", 10})
		}
	})
	s := net.Stats()
	if s.Retransmits != 0 || s.AcksSent != 0 || s.ARQFailed != 0 || s.ARQDuplicates != 0 || s.AcksLost != 0 || s.DroppedFault != 0 {
		t.Fatalf("fault/ARQ counters nonzero without faults or ARQ: %+v", s)
	}
}

func TestARQConfigValidateAndDefaults(t *testing.T) {
	if err := (*ARQConfig)(nil).Validate(); err != nil {
		t.Fatalf("nil config: %v", err)
	}
	if err := (&ARQConfig{Timeout: -1}).Validate(); err == nil {
		t.Fatal("negative timeout accepted")
	}
	if err := (&ARQConfig{MaxRetries: -1}).Validate(); err == nil {
		t.Fatal("negative retries accepted")
	}
	d := ARQConfig{}.withDefaults()
	if d.Timeout != 2 || d.MaxRetries != 3 || d.BackoffCap != 16 || d.AckBytes != 8 {
		t.Fatalf("defaults = %+v", d)
	}
}

// TestNoGoroutineLeakAfterFaultyRun is the simnet half of the
// goroutine-leak regression check: after concurrent executions under an
// aggressive fault schedule, every per-slot step goroutine must have
// exited.
func TestNoGoroutineLeakAfterFaultyRun(t *testing.T) {
	before := runtime.NumGoroutine()
	for trial := 0; trial < 4; trial++ {
		g := topology.Grid(6, 6)
		sched := faults.NewSchedule(faults.Spec{
			CrashProb:    0.05,
			RecoverProb:  0.2,
			LinkDownProb: 0.05,
			LinkUpProb:   0.3,
		}, g, uint64(trial)+1)
		net := New(g, Config{Workers: 4, Faults: sched, ARQ: &ARQConfig{}})
		var mu sync.Mutex
		net.RunSlots(30, func(ctx *Context) {
			mu.Lock()
			mu.Unlock()
			if ctx.Slot()%3 == int(ctx.Node())%3 {
				ctx.Broadcast(payload{"churn", 6})
			}
		})
	}
	deadline := time.Now().Add(2 * time.Second)
	for {
		if runtime.NumGoroutine() <= before {
			return
		}
		if time.Now().After(deadline) {
			t.Fatalf("goroutines: %d before, %d after", before, runtime.NumGoroutine())
		}
		runtime.Gosched()
		time.Sleep(10 * time.Millisecond)
	}
}
