package simnet

import "repro/internal/metrics"

// Metric names reported by ReportTo. They aggregate across all nodes of
// an execution; the serving layer sums them across executions.
const (
	MetricBytesSent       = "simnet_bytes_sent_total"
	MetricBytesReceived   = "simnet_bytes_received_total"
	MetricMessagesSent    = "simnet_messages_sent_total"
	MetricSlots           = "simnet_slots_total"
	MetricDroppedCapacity = "simnet_dropped_capacity_total"
	MetricDroppedNoLink   = "simnet_dropped_nolink_total"
	MetricDroppedLoss     = "simnet_dropped_loss_total"
	MetricDroppedFault    = "simnet_dropped_fault_total"
	MetricRetransmits     = "simnet_arq_retransmits_total"
	MetricARQFailed       = "simnet_arq_failed_total"
	MetricARQDuplicates   = "simnet_arq_duplicates_total"
	MetricAcksSent        = "simnet_arq_acks_sent_total"
	MetricAcksLost        = "simnet_arq_acks_lost_total"
)

// ReportTo adds this snapshot's aggregate counters to the registry. The
// per-slot hot loop stays metrics-free: accounting accumulates in plain
// Stats fields during execution and is flushed here once per execution
// (the registry lookups and atomic adds are amortized over the whole
// run). A nil registry is a no-op, preserving the zero-overhead path.
func (s *Stats) ReportTo(reg *metrics.Registry) {
	if reg == nil {
		return
	}
	var sent, received, msgs int64
	for i := range s.BytesSent {
		sent += s.BytesSent[i]
		received += s.BytesReceived[i]
		msgs += s.MessagesSent[i]
	}
	reg.Counter(MetricBytesSent).Add(sent)
	reg.Counter(MetricBytesReceived).Add(received)
	reg.Counter(MetricMessagesSent).Add(msgs)
	reg.Counter(MetricSlots).Add(int64(s.Slots))
	reg.Counter(MetricDroppedCapacity).Add(s.DroppedCapacity)
	reg.Counter(MetricDroppedNoLink).Add(s.DroppedNoLink)
	reg.Counter(MetricDroppedLoss).Add(s.DroppedLoss)
	reg.Counter(MetricDroppedFault).Add(s.DroppedFault)
	reg.Counter(MetricRetransmits).Add(s.Retransmits)
	reg.Counter(MetricARQFailed).Add(s.ARQFailed)
	reg.Counter(MetricARQDuplicates).Add(s.ARQDuplicates)
	reg.Counter(MetricAcksSent).Add(s.AcksSent)
	reg.Counter(MetricAcksLost).Add(s.AcksLost)
}
