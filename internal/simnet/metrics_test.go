package simnet

import (
	"testing"

	"repro/internal/metrics"
	"repro/internal/topology"
)

// TestStatsSnapshotWhileStepsInFlight calls Stats() from inside step
// functions — i.e. while the other nodes' steps of the same slot are
// still running and sending. Under -race this proves the documented
// contract: a snapshot is safe concurrently with in-flight steps because
// the drop counters are atomics and the byte/message arrays are only
// written by the driver goroutine between slots.
func TestStatsSnapshotWhileStepsInFlight(t *testing.T) {
	const n = 32
	net := New(topology.Grid(8, 4), Config{MaxSendsPerSlot: 2})
	net.RunSlots(20, func(ctx *Context) {
		// Every node floods every neighbor every slot; with the send cap
		// at 2 this also exercises the capacity-drop atomic.
		for _, nb := range ctx.Neighbors() {
			ctx.Send(nb, payload{"m", 8})
		}
		s := ctx.net.Stats()
		if len(s.BytesSent) != n || len(s.BytesReceived) != n {
			t.Errorf("snapshot has %d/%d per-node rows, want %d",
				len(s.BytesSent), len(s.BytesReceived), n)
		}
		// Mutating the snapshot must not touch the live accounting.
		s.BytesSent[0] += 1 << 40
	})
	final := net.Stats()
	if final.BytesSent[0] >= 1<<40 {
		t.Fatal("snapshot mutation leaked into the live Stats")
	}
	if final.DroppedCapacity == 0 {
		t.Fatal("expected capacity drops with MaxSendsPerSlot=2")
	}
	if final.Slots != 20 {
		t.Fatalf("Slots = %d, want 20", final.Slots)
	}
}

// TestReportToMatchesStats checks the flushed counters against the
// snapshot they were derived from, including TotalBytes as the sum of
// the sent and received counters.
func TestReportToMatchesStats(t *testing.T) {
	net := New(topology.Line(5), Config{MaxSendsPerSlot: 1})
	net.RunSlots(6, func(ctx *Context) {
		// Self-send first: the capacity budget is still free, so it is
		// counted as a no-link drop rather than a capacity drop.
		ctx.Send(ctx.Node(), payload{"self", 1})
		for _, nb := range ctx.Neighbors() {
			ctx.Send(nb, payload{"m", 16})
		}
	})
	s := net.Stats()
	reg := metrics.New()
	s.ReportTo(reg)

	sent := reg.Counter(MetricBytesSent).Value()
	received := reg.Counter(MetricBytesReceived).Value()
	if got, want := sent+received, s.TotalBytes(); got != want {
		t.Fatalf("bytes_sent+bytes_received = %d, want Stats.TotalBytes %d", got, want)
	}
	if got := reg.Counter(MetricSlots).Value(); got != int64(s.Slots) {
		t.Fatalf("slots counter = %d, want %d", got, s.Slots)
	}
	if got := reg.Counter(MetricDroppedCapacity).Value(); got != s.DroppedCapacity {
		t.Fatalf("capacity drops = %d, want %d", got, s.DroppedCapacity)
	}
	if got := reg.Counter(MetricDroppedNoLink).Value(); got != s.DroppedNoLink {
		t.Fatalf("nolink drops = %d, want %d", got, s.DroppedNoLink)
	}
	if s.DroppedCapacity == 0 || s.DroppedNoLink == 0 {
		t.Fatal("workload should produce both capacity and no-link drops")
	}

	// Flushing a second snapshot accumulates (per-execution flushes sum
	// across executions in a long-lived registry).
	s.ReportTo(reg)
	if got := reg.Counter(MetricBytesSent).Value(); got != 2*sent {
		t.Fatalf("second flush: bytes_sent = %d, want %d", got, 2*sent)
	}

	// Nil registry is the documented zero-overhead no-op.
	s.ReportTo(nil)
}
