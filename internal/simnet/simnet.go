// Package simnet is a slot-synchronous message-passing simulator for
// multi-hop sensor networks. It is the substrate every VMAT phase runs on.
//
// The paper's protocols are interval-slotted by construction: tree
// formation, aggregation, and the SOF confirmation flood all divide time
// into L intervals and prescribe, per interval, what each sensor sends
// (Sections IV-A through IV-C). A slot-faithful simulator therefore
// preserves every property the paper proves — flooding-round counts,
// audit-trail lengths, per-sensor communication complexity — without
// modelling radio-level detail. Clock skew is absorbed exactly as in the
// paper: the bounded-error guard band reduces to "transmit mid-interval",
// an additive constant the evaluation never depends on.
//
// # Execution model and determinism
//
// One execution is a deterministic single-threaded event loop: sensors
// are indexed slots in flat arrays, a slot executes as a sweep over the
// node set in ascending node-ID order, and message delivery is a queue
// append. Every run of the same configuration replays the identical
// event sequence because each ordering decision is structural, not
// scheduled: steps run in node order, outgoing messages merge in node
// order and are stamped with a global send sequence, inboxes sort by
// (From, seq) plus the configurable Orderer, and every random coin
// (loss, faults) is drawn from a seeded stream at a fixed point in the
// delivery pipeline. There are no goroutines, channels, or atomics in
// the loop — parallelism belongs one level up, across independent trials
// (see internal/experiments.RunTrials), where it scales without touching
// the per-execution event order.
//
// Protocol drivers with slot-triggered behavior can register wake-ups
// (WakeAt, WakeAllAt, SetAlwaysActive) and run sparse sweeps
// (RunSlotsActive, RunUntilQuiescentActive) that step only nodes with a
// reason to act: a non-empty inbox, a scheduled wake, or standing
// always-active status. Because a skipped step is one that could only
// have been a no-op, sparse sweeps are bit-identical to dense ones while
// making slot cost proportional to activity instead of network size —
// the property that lets million-node topologies run in memory and time
// proportional to traffic.
//
// Message delivery takes one slot. Messages are delivered only over edges
// of the supplied graph (optionally restricted by a live link filter, used
// for key revocation) or over explicitly configured out-of-band links
// (used for wormhole collusion between malicious sensors).
package simnet

import (
	"cmp"
	"slices"

	"repro/internal/crypto"
	"repro/internal/topology"
)

// Payload is any message body. WireSize returns the payload's size in
// bytes as transmitted over the radio, used for the paper's
// communication-complexity accounting (total bits sent and received per
// sensor, Section VII).
type Payload interface {
	WireSize() int
}

// Message is a payload in flight or delivered.
type Message struct {
	// From is the transmitting node. Receivers may use it only as "which
	// radio link delivered this" — trust derives from MACs, not From.
	From topology.NodeID
	// To is the receiving node.
	To topology.NodeID
	// Slot is the slot in which the message is delivered.
	Slot int
	// Payload is the message body.
	Payload Payload

	seq uint64    // global send order, for deterministic default sorting
	arq *arqEntry // link-layer tracking entry; nil when ARQ is disabled
}

// FaultModel is the per-slot fault-injection hook (implemented by
// faults.Schedule). The network calls BeginSlot exactly once per slot
// before any delivery; NodeDown and LinkDown must then be pure reads
// until the next BeginSlot (they are consulted during delivery and step
// setup, and a sparse sweep may consult them for fewer nodes than a
// dense one). DeliveryLost is drawn once per delivery attempt, in
// deterministic message order, so fault sequences reproduce exactly from
// a seed.
type FaultModel interface {
	BeginSlot(slot int)
	NodeDown(id topology.NodeID) bool
	LinkDown(from, to topology.NodeID) bool
	DeliveryLost() bool
}

// Orderer rearranges a node's inbox for one slot, in place. The default
// order is (From, send sequence). Experiments may install an order that
// places adversary-originated messages first to model worst-case arrival
// timing.
type Orderer func(inbox []Message)

// Config configures a Network.
type Config struct {
	// MaxSendsPerSlot caps how many messages one node can transmit in a
	// single slot; sends beyond the cap are dropped and counted. Zero
	// means unlimited. A finite cap models the limited forwarding
	// capacity that choking attacks exhaust (Section III).
	MaxSendsPerSlot int

	// Order, if non-nil, rearranges each node's inbox every slot.
	Order Orderer

	// LinkFilter, if non-nil, can veto delivery over a graph edge. It is
	// consulted live each slot, so a closure over revocation state makes
	// revoked edge keys take effect immediately.
	LinkFilter func(from, to topology.NodeID) bool

	// ExtraLink, if non-nil, allows delivery between nodes with no graph
	// edge. VMAT's attack model lets colluding malicious sensors
	// communicate out of band (e.g. the wormhole of Figure 2(c)).
	ExtraLink func(from, to topology.NodeID) bool

	// Sequential is retained for configuration compatibility. The event
	// loop always runs node steps sequentially in node order; the flag
	// has no effect.
	Sequential bool

	// Workers is retained for configuration compatibility. Execution is
	// single-threaded per network — rows were already bit-identical for
	// every worker count, and trial-level parallelism (experiments'
	// RunTrials) is where cores pay off — so the knob has no effect.
	Workers int

	// DropRate, with DropRNG, drops each delivered message independently
	// with the given probability. The paper assumes reliable links after
	// retransmission; this models the residual loss that motivates the
	// multi-path aggregation of Section IV-D. Zero disables losses.
	DropRate float64
	// DropRNG drives the loss coin flips; required when DropRate > 0.
	DropRNG *crypto.Stream

	// Faults, when non-nil, injects deterministic correlated failures
	// (node crashes, link churn, bursty loss, partitions): crashed nodes
	// neither step nor receive, messages over downed links and bursty-
	// loss casualties are dropped and counted in Stats.DroppedFault. Nil
	// keeps the exact pre-fault behavior, byte for byte.
	Faults FaultModel
	// ARQ, when non-nil, enables the link-layer stop-and-wait ARQ that
	// substantiates the paper's "reliable delivery through
	// retransmission" assumption: every unicast is acked by the
	// receiver, retransmitted on ack timeout with bounded exponential
	// backoff, and abandoned once the retransmit budget is spent. Ack
	// and retransmission traffic is charged to the byte accounting. Nil
	// disables the ARQ with zero accounting change.
	ARQ *ARQConfig
}

// Stats holds per-node and aggregate accounting for one Network.
type Stats struct {
	BytesSent        []int64
	BytesReceived    []int64
	MessagesSent     []int64
	MessagesReceived []int64
	DroppedCapacity  int64
	DroppedNoLink    int64
	DroppedLoss      int64
	// DroppedFault counts deliveries lost to injected faults (crashed
	// endpoints, downed links, bursty loss).
	DroppedFault int64
	// ARQ accounting: link-layer retransmissions performed, frames
	// abandoned after the retransmit budget, duplicate deliveries
	// suppressed by the receiver, and acks sent/lost. All zero when
	// Config.ARQ is nil.
	Retransmits   int64
	ARQFailed     int64
	ARQDuplicates int64
	AcksSent      int64
	AcksLost      int64
	Slots         int
}

// TotalBytes returns the total bytes sent plus received across all nodes
// (the paper's communication complexity summed over sensors).
func (s *Stats) TotalBytes() int64 {
	var total int64
	for i := range s.BytesSent {
		total += s.BytesSent[i] + s.BytesReceived[i]
	}
	return total
}

// NodeBytes returns bytes sent plus received for one node.
func (s *Stats) NodeBytes(id topology.NodeID) int64 {
	return s.BytesSent[id] + s.BytesReceived[id]
}

// MaxNodeBytes returns the maximum per-node communication complexity.
func (s *Stats) MaxNodeBytes() int64 {
	var max int64
	for i := range s.BytesSent {
		if b := s.BytesSent[i] + s.BytesReceived[i]; b > max {
			max = b
		}
	}
	return max
}

// Network is a slot-synchronous simulated network over a fixed node set.
// It is not safe for concurrent use; a single Run drives all nodes.
type Network struct {
	graph   *topology.Graph
	cfg     Config
	pending []Message
	slot    int
	seq     uint64
	stats   Stats

	// The per-slot hot loop reuses these buffers across slots so steady-
	// state execution allocates nothing: per-node inboxes, the Context
	// structs handed to step functions, and the pending buffer all keep
	// their backing arrays between slots. Only inboxes touched by a
	// delivery are truncated (touched tracks them), so idle nodes cost
	// nothing per slot.
	inboxes [][]Message
	ctxs    []Context
	touched []topology.NodeID

	// Sparse-sweep scheduling: wakes maps a slot to the nodes explicitly
	// scheduled to step in it, wakeAll marks slots where every node
	// steps, alwaysActive lists nodes stepped every slot (sorted), and
	// activeStamp/active are the per-slot active-set scratch (a node is
	// in this slot's set when its stamp equals slot+1).
	wakes        map[int][]topology.NodeID
	wakeAll      map[int]bool
	alwaysActive []topology.NodeID
	activeStamp  []int
	active       []topology.NodeID

	// Link-layer ARQ state: unacked frames in send order, and the
	// normalized (defaults-applied) configuration.
	arq    []*arqEntry
	arqCfg ARQConfig
}

// New creates a network over the given graph.
func New(g *topology.Graph, cfg Config) *Network {
	n := g.NumNodes()
	net := &Network{
		graph:   g,
		cfg:     cfg,
		inboxes: make([][]Message, n),
		ctxs:    make([]Context, n),
		stats: Stats{
			BytesSent:        make([]int64, n),
			BytesReceived:    make([]int64, n),
			MessagesSent:     make([]int64, n),
			MessagesReceived: make([]int64, n),
		},
	}
	if cfg.ARQ != nil {
		net.arqCfg = cfg.ARQ.withDefaults()
	}
	return net
}

// Graph returns the underlying physical graph.
func (n *Network) Graph() *topology.Graph { return n.graph }

// Stats returns a snapshot copy of the accounting counters.
func (n *Network) Stats() Stats {
	s := n.stats
	s.BytesSent = append([]int64(nil), n.stats.BytesSent...)
	s.BytesReceived = append([]int64(nil), n.stats.BytesReceived...)
	s.MessagesSent = append([]int64(nil), n.stats.MessagesSent...)
	s.MessagesReceived = append([]int64(nil), n.stats.MessagesReceived...)
	return s
}

// Slot returns the index of the next slot to execute.
func (n *Network) Slot() int { return n.slot }

// Pending returns the number of messages awaiting delivery next slot.
func (n *Network) Pending() int { return len(n.pending) }

// StepFunc is one node's behavior for one slot: it receives the node's
// inbox for the slot and sends messages through the context. Steps run
// sequentially in ascending node order within a slot; a step function
// should still only touch state owned by its node, so behavior cannot
// come to depend on the sweep order. The Context and its Inbox slice are
// only valid for the duration of the call — both are reused by the
// network on the next slot, so a step must copy out any Message values
// it wants to keep.
type StepFunc func(ctx *Context)

// Context is handed to a StepFunc; it carries the node identity, the slot
// inbox, and buffers outgoing sends until the end-of-slot merge. Contexts
// are pooled per node and recycled every slot.
type Context struct {
	net   *Network
	node  topology.NodeID
	slot  int
	Inbox []Message
	out   []Message
	sends int
	down  bool // crashed this slot per the fault model; step is skipped
}

// Node returns the node this context belongs to.
func (c *Context) Node() topology.NodeID { return c.node }

// Slot returns the current slot index.
func (c *Context) Slot() int { return c.slot }

// Neighbors returns the node's graph neighbors (shared slice; do not
// modify).
func (c *Context) Neighbors() []topology.NodeID { return c.net.graph.Neighbors(c.node) }

// Send transmits payload to a single node, to be delivered next slot. It
// returns false if the node's per-slot send capacity is exhausted or there
// is no usable link; such messages are dropped and counted.
func (c *Context) Send(to topology.NodeID, p Payload) bool {
	if limit := c.net.cfg.MaxSendsPerSlot; limit > 0 && c.sends >= limit {
		c.net.stats.DroppedCapacity++
		return false
	}
	if !c.net.linkAllowed(c.node, to) {
		c.net.stats.DroppedNoLink++
		return false
	}
	c.sends++
	c.out = append(c.out, Message{From: c.node, To: to, Payload: p})
	return true
}

// Broadcast transmits payload to every neighbor, as individual sends (the
// paper notes a sensor must send distinct edge MACs to distinct neighbors,
// so a local broadcast is d unicasts). It returns how many sends went out.
func (c *Context) Broadcast(p Payload) int {
	sent := 0
	for _, nb := range c.Neighbors() {
		if c.Send(nb, p) {
			sent++
		}
	}
	return sent
}

func (n *Network) linkAllowed(from, to topology.NodeID) bool {
	if from == to {
		return false
	}
	if n.graph.HasEdge(from, to) {
		if n.cfg.LinkFilter == nil || n.cfg.LinkFilter(from, to) {
			return true
		}
	}
	return n.cfg.ExtraLink != nil && n.cfg.ExtraLink(from, to)
}

// WakeAt schedules id to step in the given (absolute) slot of a sparse
// sweep, whether or not it receives anything. Protocol drivers use it
// for slot-triggered behavior: flood origins, per-level aggregation send
// slots, predicate-test reply holders. Wakes for past slots are ignored;
// wakes are consumed when their slot executes. Dense sweeps step every
// node regardless.
func (n *Network) WakeAt(slot int, id topology.NodeID) {
	if slot < n.slot || int(id) < 0 || int(id) >= len(n.ctxs) {
		return
	}
	if n.wakes == nil {
		n.wakes = make(map[int][]topology.NodeID)
	}
	n.wakes[slot] = append(n.wakes[slot], id)
}

// WakeAllAt schedules every node to step in the given slot of a sparse
// sweep (the SOF confirmation phase needs one such slot: every sensor
// checks its own reading against the announced minimum).
func (n *Network) WakeAllAt(slot int) {
	if slot < n.slot {
		return
	}
	if n.wakeAll == nil {
		n.wakeAll = make(map[int]bool)
	}
	n.wakeAll[slot] = true
}

// SetAlwaysActive declares nodes that step in every sparse-swept slot
// regardless of traffic. The engine registers the malicious set here: an
// adversary may act spontaneously (inject, flood, probe) on any slot, so
// its nodes can never be skipped. The slice is copied and sorted.
func (n *Network) SetAlwaysActive(ids []topology.NodeID) {
	n.alwaysActive = append(n.alwaysActive[:0], ids...)
	slices.Sort(n.alwaysActive)
}

// RunSlots executes exactly count slots, invoking step once per node per
// slot (a dense sweep).
func (n *Network) RunSlots(count int, step StepFunc) {
	for i := 0; i < count; i++ {
		n.runOneSlot(step, false)
	}
}

// RunSlotsActive executes exactly count slots as sparse sweeps: step runs
// only for nodes with a non-empty inbox, a matching WakeAt/WakeAllAt
// registration, or always-active status. Skipping a node is bit-identical
// to dense execution whenever its step would have been a no-op — the
// caller's contract is that steps act only on received messages or at
// pre-registered slots.
func (n *Network) RunSlotsActive(count int, step StepFunc) {
	for i := 0; i < count; i++ {
		n.runOneSlot(step, true)
	}
}

// RunUntilQuiescent executes slots until a slot begins with no messages in
// flight (but always runs at least one slot, so initiators can act), or
// until maxSlots have run. It returns the number of slots executed.
// Protocols whose non-initial behavior is purely reactive (such as the
// keyed predicate test's reply relay) terminate as soon as the network
// drains, which keeps long binary-search pinpointing runs cheap.
func (n *Network) RunUntilQuiescent(maxSlots int, step StepFunc) int {
	return n.runUntilQuiescent(maxSlots, step, false)
}

// RunUntilQuiescentActive is RunUntilQuiescent with sparse sweeps. The
// drain condition is unchanged — pending wakes in later slots do not keep
// the run alive, exactly as a dense run would stop stepping reactive
// nodes once nothing is in flight.
func (n *Network) RunUntilQuiescentActive(maxSlots int, step StepFunc) int {
	return n.runUntilQuiescent(maxSlots, step, true)
}

func (n *Network) runUntilQuiescent(maxSlots int, step StepFunc, sparse bool) int {
	ran := 0
	for ran < maxSlots {
		if ran > 0 && len(n.pending) == 0 {
			break
		}
		n.runOneSlot(step, sparse)
		ran++
	}
	return ran
}

// runOneSlot advances the network one slot: fault-state tick, delivery of
// last slot's sends into inboxes, ARQ tick, inbox ordering, the node
// sweep, and the deterministic merge of outgoing messages. Everything
// runs on the calling goroutine; the check order in the delivery loop is
// load-bearing for reproducibility (fault coins only when Faults is set,
// then DropRNG, then bursty loss, in message order).
func (n *Network) runOneSlot(step StepFunc, sparse bool) {
	faults := n.cfg.Faults
	if faults != nil {
		faults.BeginSlot(n.slot)
	}

	// Truncate only the inboxes the previous slot touched (backing arrays
	// kept), then deliver pending messages. A steady-state slot allocates
	// nothing here, and an idle node costs nothing.
	inboxes := n.inboxes
	for _, id := range n.touched {
		inboxes[id] = inboxes[id][:0]
	}
	n.touched = n.touched[:0]
	for _, m := range n.pending {
		if faults != nil && (faults.NodeDown(m.From) || faults.NodeDown(m.To) || faults.LinkDown(m.From, m.To)) {
			n.stats.DroppedFault++
			continue
		}
		if n.cfg.DropRate > 0 && n.cfg.DropRNG != nil && n.cfg.DropRNG.Float64() < n.cfg.DropRate {
			n.stats.DroppedLoss++
			continue
		}
		if faults != nil && faults.DeliveryLost() {
			n.stats.DroppedFault++
			continue
		}
		if m.arq != nil && !n.deliverARQ(m.arq) {
			continue // duplicate suppressed by the receiver
		}
		m.Slot = n.slot
		if len(inboxes[m.To]) == 0 {
			n.touched = append(n.touched, m.To)
		}
		inboxes[m.To] = append(inboxes[m.To], m)
		n.stats.BytesReceived[m.To] += int64(m.Payload.WireSize())
		n.stats.MessagesReceived[m.To]++
	}
	n.pending = n.pending[:0]
	if n.cfg.ARQ != nil {
		n.arqTick()
	}
	for _, id := range n.touched {
		box := inboxes[id]
		slices.SortFunc(box, func(a, b Message) int {
			if a.From != b.From {
				return cmp.Compare(a.From, b.From)
			}
			return cmp.Compare(a.seq, b.seq)
		})
		if n.cfg.Order != nil {
			n.cfg.Order(box)
		}
	}

	// Sweep the slot's node set in ascending node order: reset each
	// node's context, run its step unless it is crashed, and merge its
	// outgoing messages immediately — sweep order is merge order, so
	// sequence stamping matches the dense order restricted to the nodes
	// that act.
	if sparse {
		n.sweepNodes(step, faults, n.activeSet())
	} else {
		n.sweepAll(step, faults)
	}
	n.slot++
	n.stats.Slots++
}

// activeSet collects this slot's sparse active set in ascending node
// order: explicitly woken nodes, nodes with a non-empty inbox, and the
// always-active set. A WakeAllAt registration short-circuits to nil with
// all=true semantics handled by the caller via the second return.
func (n *Network) activeSet() []topology.NodeID {
	if n.wakeAll[n.slot] {
		delete(n.wakeAll, n.slot)
		delete(n.wakes, n.slot)
		if cap(n.active) < len(n.ctxs) {
			n.active = make([]topology.NodeID, 0, len(n.ctxs))
		}
		n.active = n.active[:0]
		for id := range n.ctxs {
			n.active = append(n.active, topology.NodeID(id))
		}
		return n.active
	}
	if n.activeStamp == nil {
		n.activeStamp = make([]int, len(n.ctxs))
	}
	stamp := n.slot + 1 // nonzero, unique per slot
	n.active = n.active[:0]
	mark := func(id topology.NodeID) {
		if n.activeStamp[id] != stamp {
			n.activeStamp[id] = stamp
			n.active = append(n.active, id)
		}
	}
	for _, id := range n.touched {
		mark(id)
	}
	if ids, ok := n.wakes[n.slot]; ok {
		for _, id := range ids {
			mark(id)
		}
		delete(n.wakes, n.slot)
	}
	for _, id := range n.alwaysActive {
		mark(id)
	}
	slices.Sort(n.active)
	return n.active
}

// sweepAll steps every node in node order (the dense sweep).
func (n *Network) sweepAll(step StepFunc, faults FaultModel) {
	for id := range n.ctxs {
		n.stepNode(step, faults, topology.NodeID(id))
	}
}

// sweepNodes steps the given (ascending) node set.
func (n *Network) sweepNodes(step StepFunc, faults FaultModel, ids []topology.NodeID) {
	for _, id := range ids {
		n.stepNode(step, faults, id)
	}
}

// stepNode resets one node's context, runs its step unless crashed, and
// merges its sends into the pending queue with sequence stamps and
// sender-side accounting. With the ARQ enabled every frame gets a
// tracking entry; the message copy placed in pending (and any
// retransmitted copy) carries a pointer back to it.
func (n *Network) stepNode(step StepFunc, faults FaultModel, id topology.NodeID) {
	c := &n.ctxs[id]
	c.net = n
	c.node = id
	c.slot = n.slot
	c.Inbox = n.inboxes[id]
	c.out = c.out[:0]
	c.sends = 0
	c.down = faults != nil && faults.NodeDown(id)
	if c.down {
		return
	}
	step(c)
	for _, m := range c.out {
		m.seq = n.seq
		n.seq++
		n.stats.BytesSent[m.From] += int64(m.Payload.WireSize())
		n.stats.MessagesSent[m.From]++
		if n.cfg.ARQ != nil {
			e := &arqEntry{lastSent: n.slot}
			m.arq = e
			e.msg = m
			n.arq = append(n.arq, e)
		}
		n.pending = append(n.pending, m)
	}
}

// MaliciousFirstOrder returns an Orderer that moves messages originated by
// malicious nodes to the front of each inbox, modelling the worst case
// where the adversary's transmissions always beat honest ones within a
// slot (the "first veto wins" races of the SOF protocol).
func MaliciousFirstOrder(malicious map[topology.NodeID]bool) Orderer {
	return func(inbox []Message) {
		slices.SortStableFunc(inbox, func(a, b Message) int {
			am, bm := malicious[a.From], malicious[b.From]
			switch {
			case am && !bm:
				return -1
			case bm && !am:
				return 1
			default:
				return 0
			}
		})
	}
}
