// Package simnet is a slot-synchronous message-passing simulator for
// multi-hop sensor networks. It is the substrate every VMAT phase runs on.
//
// The paper's protocols are interval-slotted by construction: tree
// formation, aggregation, and the SOF confirmation flood all divide time
// into L intervals and prescribe, per interval, what each sensor sends
// (Sections IV-A through IV-C). A slot-faithful simulator therefore
// preserves every property the paper proves — flooding-round counts,
// audit-trail lengths, per-sensor communication complexity — without
// modelling radio-level detail. Clock skew is absorbed exactly as in the
// paper: the bounded-error guard band reduces to "transmit mid-interval",
// an additive constant the evaluation never depends on.
//
// Within a slot, every node's step function runs concurrently (one
// goroutine per node, joined at a barrier), matching the physical reality
// that sensors act independently; determinism is preserved by collecting
// outgoing messages at the barrier in node order and sorting inboxes with
// a configurable delivery order. Experiments install an adversary-favoring
// order to model worst-case message timing.
//
// Message delivery takes one slot. Messages are delivered only over edges
// of the supplied graph (optionally restricted by a live link filter, used
// for key revocation) or over explicitly configured out-of-band links
// (used for wormhole collusion between malicious sensors).
package simnet

import (
	"cmp"
	"runtime"
	"slices"
	"sync"
	"sync/atomic"

	"repro/internal/crypto"
	"repro/internal/topology"
)

// Payload is any message body. WireSize returns the payload's size in
// bytes as transmitted over the radio, used for the paper's
// communication-complexity accounting (total bits sent and received per
// sensor, Section VII).
type Payload interface {
	WireSize() int
}

// Message is a payload in flight or delivered.
type Message struct {
	// From is the transmitting node. Receivers may use it only as "which
	// radio link delivered this" — trust derives from MACs, not From.
	From topology.NodeID
	// To is the receiving node.
	To topology.NodeID
	// Slot is the slot in which the message is delivered.
	Slot int
	// Payload is the message body.
	Payload Payload

	seq uint64    // global send order, for deterministic default sorting
	arq *arqEntry // link-layer tracking entry; nil when ARQ is disabled
}

// FaultModel is the per-slot fault-injection hook (implemented by
// faults.Schedule). The network calls BeginSlot exactly once per slot
// from its driver goroutine before any delivery; NodeDown and LinkDown
// must then be pure reads until the next BeginSlot (they are consulted
// during delivery and step setup). DeliveryLost is drawn once per
// delivery attempt on the driver goroutine, in deterministic message
// order, so fault sequences reproduce exactly from a seed.
type FaultModel interface {
	BeginSlot(slot int)
	NodeDown(id topology.NodeID) bool
	LinkDown(from, to topology.NodeID) bool
	DeliveryLost() bool
}

// Orderer rearranges a node's inbox for one slot, in place. The default
// order is (From, send sequence). Experiments may install an order that
// places adversary-originated messages first to model worst-case arrival
// timing.
type Orderer func(inbox []Message)

// Config configures a Network.
type Config struct {
	// MaxSendsPerSlot caps how many messages one node can transmit in a
	// single slot; sends beyond the cap are dropped and counted. Zero
	// means unlimited. A finite cap models the limited forwarding
	// capacity that choking attacks exhaust (Section III).
	MaxSendsPerSlot int

	// Order, if non-nil, rearranges each node's inbox every slot.
	Order Orderer

	// LinkFilter, if non-nil, can veto delivery over a graph edge. It is
	// consulted live each slot, so a closure over revocation state makes
	// revoked edge keys take effect immediately.
	LinkFilter func(from, to topology.NodeID) bool

	// ExtraLink, if non-nil, allows delivery between nodes with no graph
	// edge. VMAT's attack model lets colluding malicious sensors
	// communicate out of band (e.g. the wormhole of Figure 2(c)).
	ExtraLink func(from, to topology.NodeID) bool

	// Sequential disables the per-slot goroutine fan-out and runs node
	// steps in node order on the calling goroutine. Useful for debugging.
	Sequential bool

	// Workers caps the per-slot step fan-out; 0 uses GOMAXPROCS. Trial-
	// parallel experiment harnesses set 1 so each simulated network stays
	// on its own worker instead of oversubscribing the machine.
	Workers int

	// DropRate, with DropRNG, drops each delivered message independently
	// with the given probability. The paper assumes reliable links after
	// retransmission; this models the residual loss that motivates the
	// multi-path aggregation of Section IV-D. Zero disables losses.
	DropRate float64
	// DropRNG drives the loss coin flips; required when DropRate > 0.
	DropRNG *crypto.Stream

	// Faults, when non-nil, injects deterministic correlated failures
	// (node crashes, link churn, bursty loss, partitions): crashed nodes
	// neither step nor receive, messages over downed links and bursty-
	// loss casualties are dropped and counted in Stats.DroppedFault. Nil
	// keeps the exact pre-fault behavior, byte for byte.
	Faults FaultModel
	// ARQ, when non-nil, enables the link-layer stop-and-wait ARQ that
	// substantiates the paper's "reliable delivery through
	// retransmission" assumption: every unicast is acked by the
	// receiver, retransmitted on ack timeout with bounded exponential
	// backoff, and abandoned once the retransmit budget is spent. Ack
	// and retransmission traffic is charged to the byte accounting. Nil
	// disables the ARQ with zero accounting change.
	ARQ *ARQConfig
}

// Stats holds per-node and aggregate accounting for one Network.
type Stats struct {
	BytesSent        []int64
	BytesReceived    []int64
	MessagesSent     []int64
	MessagesReceived []int64
	DroppedCapacity  int64
	DroppedNoLink    int64
	DroppedLoss      int64
	// DroppedFault counts deliveries lost to injected faults (crashed
	// endpoints, downed links, bursty loss).
	DroppedFault int64
	// ARQ accounting: link-layer retransmissions performed, frames
	// abandoned after the retransmit budget, duplicate deliveries
	// suppressed by the receiver, and acks sent/lost. All zero when
	// Config.ARQ is nil.
	Retransmits   int64
	ARQFailed     int64
	ARQDuplicates int64
	AcksSent      int64
	AcksLost      int64
	Slots         int
}

// TotalBytes returns the total bytes sent plus received across all nodes
// (the paper's communication complexity summed over sensors).
func (s *Stats) TotalBytes() int64 {
	var total int64
	for i := range s.BytesSent {
		total += s.BytesSent[i] + s.BytesReceived[i]
	}
	return total
}

// NodeBytes returns bytes sent plus received for one node.
func (s *Stats) NodeBytes(id topology.NodeID) int64 {
	return s.BytesSent[id] + s.BytesReceived[id]
}

// MaxNodeBytes returns the maximum per-node communication complexity.
func (s *Stats) MaxNodeBytes() int64 {
	var max int64
	for i := range s.BytesSent {
		if b := s.BytesSent[i] + s.BytesReceived[i]; b > max {
			max = b
		}
	}
	return max
}

// Network is a slot-synchronous simulated network over a fixed node set.
// It is not safe for concurrent use; a single Run drives all nodes.
type Network struct {
	graph   *topology.Graph
	cfg     Config
	pending []Message
	slot    int
	seq     uint64
	stats   Stats

	// The per-slot hot loop reuses these buffers across slots so steady-
	// state execution allocates nothing: per-node inboxes, the Context
	// structs handed to step functions, and the pending buffer all keep
	// their backing arrays between slots.
	inboxes [][]Message
	ctxs    []Context

	// Drop counters are incremented from concurrent step goroutines (via
	// Context.Send) and read by Stats, so they live outside Stats as
	// atomics.
	droppedCapacity atomic.Int64
	droppedNoLink   atomic.Int64

	// Link-layer ARQ state: unacked frames in send order, and the
	// normalized (defaults-applied) configuration.
	arq    []*arqEntry
	arqCfg ARQConfig
}

// New creates a network over the given graph.
func New(g *topology.Graph, cfg Config) *Network {
	n := g.NumNodes()
	net := &Network{
		graph:   g,
		cfg:     cfg,
		inboxes: make([][]Message, n),
		ctxs:    make([]Context, n),
		stats: Stats{
			BytesSent:        make([]int64, n),
			BytesReceived:    make([]int64, n),
			MessagesSent:     make([]int64, n),
			MessagesReceived: make([]int64, n),
		},
	}
	if cfg.ARQ != nil {
		net.arqCfg = cfg.ARQ.withDefaults()
	}
	return net
}

// Graph returns the underlying physical graph.
func (n *Network) Graph() *topology.Graph { return n.graph }

// Stats returns a snapshot copy of the accounting counters. The drop
// counters are loaded atomically, so a snapshot is safe even while step
// goroutines of the current slot are still sending.
func (n *Network) Stats() Stats {
	s := n.stats
	s.DroppedCapacity = n.droppedCapacity.Load()
	s.DroppedNoLink = n.droppedNoLink.Load()
	s.BytesSent = append([]int64(nil), n.stats.BytesSent...)
	s.BytesReceived = append([]int64(nil), n.stats.BytesReceived...)
	s.MessagesSent = append([]int64(nil), n.stats.MessagesSent...)
	s.MessagesReceived = append([]int64(nil), n.stats.MessagesReceived...)
	return s
}

// Slot returns the index of the next slot to execute.
func (n *Network) Slot() int { return n.slot }

// Pending returns the number of messages awaiting delivery next slot.
func (n *Network) Pending() int { return len(n.pending) }

// StepFunc is one node's behavior for one slot: it receives the node's
// inbox for the slot and sends messages through the context. Step
// functions for different nodes run concurrently; a step function must
// only touch state owned by its node (or synchronize explicitly). The
// Context and its Inbox slice are only valid for the duration of the
// call — both are reused by the network on the next slot, so a step must
// copy out any Message values it wants to keep.
type StepFunc func(ctx *Context)

// Context is handed to a StepFunc; it carries the node identity, the slot
// inbox, and buffers outgoing sends until the slot barrier. Contexts are
// pooled per node and recycled every slot.
type Context struct {
	net   *Network
	node  topology.NodeID
	slot  int
	Inbox []Message
	out   []Message
	sends int
	down  bool // crashed this slot per the fault model; step is skipped
}

// Node returns the node this context belongs to.
func (c *Context) Node() topology.NodeID { return c.node }

// Slot returns the current slot index.
func (c *Context) Slot() int { return c.slot }

// Neighbors returns the node's graph neighbors (shared slice; do not
// modify).
func (c *Context) Neighbors() []topology.NodeID { return c.net.graph.Neighbors(c.node) }

// Send transmits payload to a single node, to be delivered next slot. It
// returns false if the node's per-slot send capacity is exhausted or there
// is no usable link; such messages are dropped and counted.
func (c *Context) Send(to topology.NodeID, p Payload) bool {
	if limit := c.net.cfg.MaxSendsPerSlot; limit > 0 && c.sends >= limit {
		c.net.noteCapacityDrop()
		return false
	}
	if !c.net.linkAllowed(c.node, to) {
		c.net.noteLinkDrop()
		return false
	}
	c.sends++
	c.out = append(c.out, Message{From: c.node, To: to, Payload: p})
	return true
}

// Broadcast transmits payload to every neighbor, as individual sends (the
// paper notes a sensor must send distinct edge MACs to distinct neighbors,
// so a local broadcast is d unicasts). It returns how many sends went out.
func (c *Context) Broadcast(p Payload) int {
	sent := 0
	for _, nb := range c.Neighbors() {
		if c.Send(nb, p) {
			sent++
		}
	}
	return sent
}

func (n *Network) linkAllowed(from, to topology.NodeID) bool {
	if from == to {
		return false
	}
	if n.graph.HasEdge(from, to) {
		if n.cfg.LinkFilter == nil || n.cfg.LinkFilter(from, to) {
			return true
		}
	}
	return n.cfg.ExtraLink != nil && n.cfg.ExtraLink(from, to)
}

func (n *Network) noteCapacityDrop() { n.droppedCapacity.Add(1) }

func (n *Network) noteLinkDrop() { n.droppedNoLink.Add(1) }

// RunSlots executes exactly count slots, invoking step once per node per
// slot.
func (n *Network) RunSlots(count int, step StepFunc) {
	for i := 0; i < count; i++ {
		n.runOneSlot(step)
	}
}

// RunUntilQuiescent executes slots until a slot begins with no messages in
// flight (but always runs at least one slot, so initiators can act), or
// until maxSlots have run. It returns the number of slots executed.
// Protocols whose non-initial behavior is purely reactive (such as the
// keyed predicate test's reply relay) terminate as soon as the network
// drains, which keeps long binary-search pinpointing runs cheap.
func (n *Network) RunUntilQuiescent(maxSlots int, step StepFunc) int {
	ran := 0
	for ran < maxSlots {
		if ran > 0 && len(n.pending) == 0 {
			break
		}
		n.runOneSlot(step)
		ran++
	}
	return ran
}

func (n *Network) runOneSlot(step StepFunc) {
	numNodes := n.graph.NumNodes()
	faults := n.cfg.Faults
	if faults != nil {
		faults.BeginSlot(n.slot)
	}

	// Deliver pending messages into per-node inboxes. The inbox slices are
	// reused across slots (truncated, backing arrays kept), so a steady-
	// state slot performs no allocation here. The check order matters for
	// reproducibility: fault checks run only when Faults is configured, so
	// the DropRNG coin sequence — and therefore every byte of behavior —
	// is unchanged when they are not.
	inboxes := n.inboxes
	for id := range inboxes {
		inboxes[id] = inboxes[id][:0]
	}
	for _, m := range n.pending {
		if faults != nil && (faults.NodeDown(m.From) || faults.NodeDown(m.To) || faults.LinkDown(m.From, m.To)) {
			n.stats.DroppedFault++
			continue
		}
		if n.cfg.DropRate > 0 && n.cfg.DropRNG != nil && n.cfg.DropRNG.Float64() < n.cfg.DropRate {
			n.stats.DroppedLoss++
			continue
		}
		if faults != nil && faults.DeliveryLost() {
			n.stats.DroppedFault++
			continue
		}
		if m.arq != nil && !n.deliverARQ(m.arq) {
			continue // duplicate suppressed by the receiver
		}
		m.Slot = n.slot
		inboxes[m.To] = append(inboxes[m.To], m)
		n.stats.BytesReceived[m.To] += int64(m.Payload.WireSize())
		n.stats.MessagesReceived[m.To]++
	}
	n.pending = n.pending[:0]
	if n.cfg.ARQ != nil {
		n.arqTick()
	}
	for id := range inboxes {
		box := inboxes[id]
		slices.SortFunc(box, func(a, b Message) int {
			if a.From != b.From {
				return cmp.Compare(a.From, b.From)
			}
			return cmp.Compare(a.seq, b.seq)
		})
		if n.cfg.Order != nil {
			n.cfg.Order(box)
		}
	}

	// Run every node's step, concurrently unless configured otherwise. The
	// Context structs are reused across slots too; only their per-slot
	// fields are reset (the out buffers keep their backing arrays).
	// Crashed nodes are marked down here, on the driver goroutine, so the
	// concurrent fan-out below never calls into the fault model.
	for id := 0; id < numNodes; id++ {
		c := &n.ctxs[id]
		c.net = n
		c.node = topology.NodeID(id)
		c.slot = n.slot
		c.Inbox = inboxes[id]
		c.out = c.out[:0]
		c.sends = 0
		c.down = faults != nil && faults.NodeDown(c.node)
	}
	workers := n.cfg.Workers
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > numNodes {
		workers = numNodes
	}
	if n.cfg.Sequential || workers == 1 || numNodes == 1 {
		for id := range n.ctxs {
			if n.ctxs[id].down {
				continue
			}
			step(&n.ctxs[id])
		}
	} else {
		var wg sync.WaitGroup
		stride := (numNodes + workers - 1) / workers
		for w := 0; w < workers; w++ {
			lo := w * stride
			hi := lo + stride
			if hi > numNodes {
				hi = numNodes
			}
			if lo >= hi {
				break
			}
			wg.Add(1)
			go func(ctxs []Context) {
				defer wg.Done()
				for i := range ctxs {
					if ctxs[i].down {
						continue
					}
					step(&ctxs[i])
				}
			}(n.ctxs[lo:hi])
		}
		wg.Wait()
	}

	// Merge outgoing messages in node order for determinism, stamping
	// sequence numbers and sender-side accounting. With the ARQ enabled
	// every frame gets a tracking entry; the message copy placed in
	// pending (and any retransmitted copy) carries a pointer back to it.
	for id := range n.ctxs {
		for _, m := range n.ctxs[id].out {
			m.seq = n.seq
			n.seq++
			n.stats.BytesSent[m.From] += int64(m.Payload.WireSize())
			n.stats.MessagesSent[m.From]++
			if n.cfg.ARQ != nil {
				e := &arqEntry{lastSent: n.slot}
				m.arq = e
				e.msg = m
				n.arq = append(n.arq, e)
			}
			n.pending = append(n.pending, m)
		}
	}
	n.slot++
	n.stats.Slots++
}

// MaliciousFirstOrder returns an Orderer that moves messages originated by
// malicious nodes to the front of each inbox, modelling the worst case
// where the adversary's transmissions always beat honest ones within a
// slot (the "first veto wins" races of the SOF protocol).
func MaliciousFirstOrder(malicious map[topology.NodeID]bool) Orderer {
	return func(inbox []Message) {
		slices.SortStableFunc(inbox, func(a, b Message) int {
			am, bm := malicious[a.From], malicious[b.From]
			switch {
			case am && !bm:
				return -1
			case bm && !am:
				return 1
			default:
				return 0
			}
		})
	}
}
