package simnet

import (
	"sync"
	"testing"

	"repro/internal/crypto"
	"repro/internal/topology"
)

// payload is a trivial test payload.
type payload struct {
	tag  string
	size int
}

func (p payload) WireSize() int { return p.size }

func TestDeliveryTakesOneSlot(t *testing.T) {
	net := New(topology.Line(3), Config{})
	var got []Message
	var mu sync.Mutex
	net.RunSlots(3, func(ctx *Context) {
		if ctx.Slot() == 0 && ctx.Node() == 0 {
			ctx.Send(1, payload{"hello", 10})
		}
		mu.Lock()
		got = append(got, ctx.Inbox...)
		mu.Unlock()
	})
	if len(got) != 1 {
		t.Fatalf("delivered %d messages, want 1", len(got))
	}
	m := got[0]
	if m.From != 0 || m.To != 1 || m.Slot != 1 {
		t.Fatalf("message = %+v, want from 0 to 1 at slot 1", m)
	}
	if m.Payload.(payload).tag != "hello" {
		t.Fatal("payload corrupted")
	}
}

func TestNoDeliveryWithoutLink(t *testing.T) {
	net := New(topology.Line(3), Config{})
	delivered := 0
	var mu sync.Mutex
	net.RunSlots(2, func(ctx *Context) {
		if ctx.Slot() == 0 && ctx.Node() == 0 {
			if ctx.Send(2, payload{"skip", 1}) { // 0 and 2 are not adjacent
				t.Error("Send over missing link reported success")
			}
		}
		mu.Lock()
		delivered += len(ctx.Inbox)
		mu.Unlock()
	})
	if delivered != 0 {
		t.Fatalf("message crossed a missing link")
	}
	if s := net.Stats(); s.DroppedNoLink != 1 {
		t.Fatalf("DroppedNoLink = %d, want 1", s.DroppedNoLink)
	}
}

func TestSelfSendRejected(t *testing.T) {
	net := New(topology.Line(2), Config{})
	net.RunSlots(1, func(ctx *Context) {
		if ctx.Node() == 0 && ctx.Send(0, payload{"self", 1}) {
			t.Error("self-send reported success")
		}
	})
}

func TestExtraLinkWormhole(t *testing.T) {
	// Nodes 0 and 4 are far apart on a line but colluding out of band.
	colluders := map[topology.NodeID]bool{0: true, 4: true}
	net := New(topology.Line(5), Config{
		ExtraLink: func(from, to topology.NodeID) bool {
			return colluders[from] && colluders[to]
		},
	})
	var got []Message
	var mu sync.Mutex
	net.RunSlots(2, func(ctx *Context) {
		if ctx.Slot() == 0 && ctx.Node() == 0 {
			if !ctx.Send(4, payload{"wormhole", 4}) {
				t.Error("wormhole send failed")
			}
		}
		mu.Lock()
		got = append(got, ctx.Inbox...)
		mu.Unlock()
	})
	if len(got) != 1 || got[0].To != 4 {
		t.Fatalf("wormhole message not delivered: %v", got)
	}
}

func TestLinkFilterVetoesEdges(t *testing.T) {
	blocked := true
	net := New(topology.Line(2), Config{
		LinkFilter: func(from, to topology.NodeID) bool { return !blocked },
	})
	delivered := 0
	var mu sync.Mutex
	step := func(ctx *Context) {
		if ctx.Node() == 0 {
			ctx.Send(1, payload{"x", 1})
		}
		mu.Lock()
		delivered += len(ctx.Inbox)
		mu.Unlock()
	}
	net.RunSlots(2, step)
	if delivered != 0 {
		t.Fatal("filtered link delivered a message")
	}
	// The filter is consulted live: unblock and the same network delivers.
	blocked = false
	net.RunSlots(2, step)
	if delivered == 0 {
		t.Fatal("unblocked link failed to deliver")
	}
}

func TestCapacityCap(t *testing.T) {
	g := topology.Star(5) // node 0 has 4 neighbors
	net := New(g, Config{MaxSendsPerSlot: 2})
	received := 0
	var mu sync.Mutex
	net.RunSlots(2, func(ctx *Context) {
		if ctx.Slot() == 0 && ctx.Node() == 0 {
			if sent := ctx.Broadcast(payload{"b", 1}); sent != 2 {
				t.Errorf("Broadcast sent %d, want cap 2", sent)
			}
		}
		mu.Lock()
		received += len(ctx.Inbox)
		mu.Unlock()
	})
	if received != 2 {
		t.Fatalf("received %d, want 2 (cap)", received)
	}
	if s := net.Stats(); s.DroppedCapacity != 2 {
		t.Fatalf("DroppedCapacity = %d, want 2", s.DroppedCapacity)
	}
}

func TestBroadcastReachesAllNeighbors(t *testing.T) {
	g := topology.Star(6)
	net := New(g, Config{})
	var mu sync.Mutex
	gotAt := map[topology.NodeID]int{}
	net.RunSlots(2, func(ctx *Context) {
		if ctx.Slot() == 0 && ctx.Node() == 0 {
			if sent := ctx.Broadcast(payload{"b", 3}); sent != 5 {
				t.Errorf("Broadcast sent %d, want 5", sent)
			}
		}
		mu.Lock()
		gotAt[ctx.Node()] += len(ctx.Inbox)
		mu.Unlock()
	})
	for id := topology.NodeID(1); id < 6; id++ {
		if gotAt[id] != 1 {
			t.Fatalf("neighbor %d received %d messages, want 1", id, gotAt[id])
		}
	}
}

func TestByteAccounting(t *testing.T) {
	net := New(topology.Line(2), Config{})
	net.RunSlots(3, func(ctx *Context) {
		if ctx.Slot() == 0 && ctx.Node() == 0 {
			ctx.Send(1, payload{"a", 100})
		}
		if ctx.Slot() == 1 && ctx.Node() == 1 {
			ctx.Send(0, payload{"reply", 40})
		}
	})
	s := net.Stats()
	if s.BytesSent[0] != 100 || s.BytesReceived[1] != 100 {
		t.Fatalf("forward accounting wrong: sent0=%d recv1=%d", s.BytesSent[0], s.BytesReceived[1])
	}
	if s.BytesSent[1] != 40 || s.BytesReceived[0] != 40 {
		t.Fatalf("reply accounting wrong: sent1=%d recv0=%d", s.BytesSent[1], s.BytesReceived[0])
	}
	if s.TotalBytes() != 280 {
		t.Fatalf("TotalBytes = %d, want 280", s.TotalBytes())
	}
	if s.NodeBytes(0) != 140 || s.MaxNodeBytes() != 140 {
		t.Fatalf("NodeBytes/MaxNodeBytes wrong: %d, %d", s.NodeBytes(0), s.MaxNodeBytes())
	}
	if s.MessagesSent[0] != 1 || s.MessagesReceived[0] != 1 {
		t.Fatal("message counters wrong")
	}
	if s.Slots != 3 {
		t.Fatalf("Slots = %d, want 3", s.Slots)
	}
}

func TestInboxDefaultOrderDeterministic(t *testing.T) {
	// Many senders to one hub; inbox must arrive sorted by sender.
	g := topology.Star(10)
	run := func() []topology.NodeID {
		net := New(g, Config{})
		var order []topology.NodeID
		net.RunSlots(2, func(ctx *Context) {
			if ctx.Slot() == 0 && ctx.Node() != 0 {
				ctx.Send(0, payload{"x", 1})
			}
			if ctx.Node() == 0 {
				for _, m := range ctx.Inbox {
					order = append(order, m.From)
				}
			}
		})
		return order
	}
	o1, o2 := run(), run()
	if len(o1) != 9 || len(o2) != 9 {
		t.Fatalf("hub received %d/%d messages, want 9", len(o1), len(o2))
	}
	for i := range o1 {
		if o1[i] != o2[i] {
			t.Fatal("inbox order not deterministic across runs")
		}
		if i > 0 && o1[i] < o1[i-1] {
			t.Fatal("default inbox order not sorted by sender")
		}
	}
}

func TestMaliciousFirstOrder(t *testing.T) {
	g := topology.Star(10)
	mal := map[topology.NodeID]bool{7: true, 9: true}
	net := New(g, Config{Order: MaliciousFirstOrder(mal)})
	var order []topology.NodeID
	net.RunSlots(2, func(ctx *Context) {
		if ctx.Slot() == 0 && ctx.Node() != 0 {
			ctx.Send(0, payload{"x", 1})
		}
		if ctx.Node() == 0 {
			for _, m := range ctx.Inbox {
				order = append(order, m.From)
			}
		}
	})
	if len(order) != 9 {
		t.Fatalf("hub received %d, want 9", len(order))
	}
	if !mal[order[0]] || !mal[order[1]] {
		t.Fatalf("malicious messages not first: %v", order)
	}
	// Honest portion stays sorted (stable reorder).
	for i := 3; i < len(order); i++ {
		if order[i] < order[i-1] {
			t.Fatalf("honest suffix not stable-sorted: %v", order)
		}
	}
}

func TestRunUntilQuiescent(t *testing.T) {
	// A message ping-pongs 0->1->2 then stops; quiescence after 3 slots of
	// activity (send at 0, hop at 1, final delivery processed at 2, then
	// slot 3 starts empty).
	net := New(topology.Line(3), Config{})
	ran := net.RunUntilQuiescent(100, func(ctx *Context) {
		if ctx.Slot() == 0 && ctx.Node() == 0 {
			ctx.Send(1, payload{"x", 1})
		}
		for range ctx.Inbox {
			if ctx.Node() == 1 {
				ctx.Send(2, payload{"x", 1})
			}
		}
	})
	if ran != 3 {
		t.Fatalf("ran %d slots, want 3", ran)
	}
}

func TestRunUntilQuiescentHonorsMax(t *testing.T) {
	// Two nodes bounce a message forever; the max must stop it.
	net := New(topology.Line(2), Config{})
	ran := net.RunUntilQuiescent(7, func(ctx *Context) {
		if ctx.Slot() == 0 && ctx.Node() == 0 {
			ctx.Send(1, payload{"x", 1})
		}
		for _, m := range ctx.Inbox {
			ctx.Send(m.From, payload{"x", 1})
		}
	})
	if ran != 7 {
		t.Fatalf("ran %d slots, want 7 (max)", ran)
	}
}

func TestSequentialAndParallelAgree(t *testing.T) {
	// A small flooding protocol must produce identical stats under both
	// execution modes.
	build := func(sequential bool) Stats {
		g := topology.Grid(4, 5)
		net := New(g, Config{Sequential: sequential})
		seen := make([]bool, g.NumNodes())
		var mu sync.Mutex
		net.RunSlots(12, func(ctx *Context) {
			if ctx.Slot() == 0 && ctx.Node() == 0 {
				mu.Lock()
				seen[0] = true
				mu.Unlock()
				ctx.Broadcast(payload{"flood", 8})
				return
			}
			mu.Lock()
			first := !seen[ctx.Node()] && len(ctx.Inbox) > 0
			if first {
				seen[ctx.Node()] = true
			}
			mu.Unlock()
			if first {
				ctx.Broadcast(payload{"flood", 8})
			}
		})
		for id, ok := range seen {
			if !ok {
				t.Fatalf("flood missed node %d (sequential=%v)", id, sequential)
			}
		}
		return net.Stats()
	}
	seq, par := build(true), build(false)
	if seq.TotalBytes() != par.TotalBytes() {
		t.Fatalf("sequential/parallel divergence: %d vs %d bytes", seq.TotalBytes(), par.TotalBytes())
	}
	for i := range seq.BytesSent {
		if seq.BytesSent[i] != par.BytesSent[i] || seq.BytesReceived[i] != par.BytesReceived[i] {
			t.Fatalf("per-node divergence at node %d", i)
		}
	}
}

func TestDropRateLosesMessages(t *testing.T) {
	g := topology.Star(2)
	net := New(g, Config{DropRate: 0.5, DropRNG: crypto.NewStreamFromSeed(1)})
	delivered := 0
	var mu sync.Mutex
	const sends = 400
	net.RunSlots(sends+1, func(ctx *Context) {
		if ctx.Node() == 0 && ctx.Slot() < sends {
			ctx.Send(1, payload{"x", 1})
		}
		mu.Lock()
		delivered += len(ctx.Inbox)
		mu.Unlock()
	})
	s := net.Stats()
	if s.DroppedLoss == 0 {
		t.Fatal("no losses at 50% drop rate")
	}
	if delivered+int(s.DroppedLoss) != sends {
		t.Fatalf("delivered %d + lost %d != sent %d", delivered, s.DroppedLoss, sends)
	}
	if delivered < sends/4 || delivered > 3*sends/4 {
		t.Fatalf("delivered %d of %d at 50%% loss, implausible", delivered, sends)
	}
	// Lost messages must not be charged to the receiver.
	if s.BytesReceived[1] != int64(delivered) {
		t.Fatalf("receiver charged %d bytes for %d deliveries", s.BytesReceived[1], delivered)
	}
}

func TestDropRateZeroIsLossless(t *testing.T) {
	net := New(topology.Star(2), Config{DropRNG: crypto.NewStreamFromSeed(2)})
	got := 0
	var mu sync.Mutex
	net.RunSlots(10, func(ctx *Context) {
		if ctx.Node() == 0 && ctx.Slot() < 5 {
			ctx.Send(1, payload{"x", 1})
		}
		mu.Lock()
		got += len(ctx.Inbox)
		mu.Unlock()
	})
	if got != 5 {
		t.Fatalf("delivered %d of 5 without loss configured", got)
	}
}

func TestStatsSnapshotIsolated(t *testing.T) {
	net := New(topology.Line(2), Config{})
	s := net.Stats()
	s.BytesSent[0] = 999
	if net.Stats().BytesSent[0] != 0 {
		t.Fatal("Stats snapshot shares state with network")
	}
}

func TestFloodCoversGraphWithinDepthSlots(t *testing.T) {
	// Property-ish check: flooding from the base station reaches every
	// node within Depth slots — the definition of a flooding round.
	g, _ := gridAndDepth(t)
	depth := g.Depth(0)
	net := New(g, Config{})
	seen := make([]bool, g.NumNodes())
	var mu sync.Mutex
	net.RunSlots(depth+1, func(ctx *Context) {
		first := false
		mu.Lock()
		if ctx.Slot() == 0 && ctx.Node() == 0 && !seen[0] {
			seen[0] = true
			first = true
		} else if len(ctx.Inbox) > 0 && !seen[ctx.Node()] {
			seen[ctx.Node()] = true
			first = true
		}
		mu.Unlock()
		if first {
			ctx.Broadcast(payload{"f", 1})
		}
	})
	for id, ok := range seen {
		if !ok {
			t.Fatalf("flood did not reach node %d within depth+1 slots", id)
		}
	}
}

func gridAndDepth(t *testing.T) (*topology.Graph, int) {
	t.Helper()
	g := topology.Grid(5, 6)
	return g, g.Depth(0)
}
