package store

import (
	"encoding/json"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"time"
)

// Offline admin views over a store directory, consumed by the
// vmat-store command. Inspect and Verify are strictly read-only — they
// never migrate, truncate, or commit anything, so an operator can point
// them at a live or suspect data dir without changing what a later Open
// would see.

// SegmentInfo describes one segment file as found on disk.
type SegmentInfo struct {
	Name  string `json:"name"`
	ID    int64  `json:"id"`
	Gen   int64  `json:"gen"`
	Bytes int64  `json:"bytes"`
}

// InspectReport is the layout of a store directory, as-is.
type InspectReport struct {
	Dir                string        `json:"dir"`
	HasManifest        bool          `json:"has_manifest"`
	ManifestError      string        `json:"manifest_error,omitempty"`
	ManifestGeneration int64         `json:"manifest_generation,omitempty"`
	NextID             int64         `json:"next_id,omitempty"`
	Segments           []SegmentInfo `json:"segments"`
	Unlisted           []SegmentInfo `json:"unlisted,omitempty"`
	LegacyJournalBytes int64         `json:"legacy_journal_bytes,omitempty"`
	HasLegacyJournal   bool          `json:"has_legacy_journal"`
	HasSnapshot        bool          `json:"has_snapshot"`
	SnapshotError      string        `json:"snapshot_error,omitempty"`
	SnapshotKeys       int           `json:"snapshot_keys,omitempty"`
	SnapshotAgeSeconds int64         `json:"snapshot_age_seconds,omitempty"`
}

// Inspect reads a store directory's layout without touching it.
func Inspect(dir string) (*InspectReport, error) {
	if _, err := os.Stat(dir); err != nil {
		return nil, fmt.Errorf("store: inspect %s: %w", dir, err)
	}
	rep := &InspectReport{Dir: dir}

	segInfo := func(ms manifestSegment) SegmentInfo {
		info := SegmentInfo{Name: segName(ms.ID, ms.Gen), ID: ms.ID, Gen: ms.Gen, Bytes: -1}
		if fi, err := os.Stat(filepath.Join(dir, info.Name)); err == nil {
			info.Bytes = fi.Size()
		}
		return info
	}

	m, merr := loadManifest(dir)
	files, err := scanSegmentFiles(dir)
	if err != nil {
		return nil, err
	}
	switch {
	case merr != nil:
		rep.ManifestError = merr.Error()
	case m != nil:
		rep.HasManifest = true
		rep.ManifestGeneration = m.Generation
		rep.NextID = m.NextID
		listed := map[[2]int64]bool{}
		for _, ms := range m.Segments {
			rep.Segments = append(rep.Segments, segInfo(ms))
			listed[[2]int64{ms.ID, ms.Gen}] = true
		}
		for _, f := range files {
			if !listed[[2]int64{f.ID, f.Gen}] {
				rep.Unlisted = append(rep.Unlisted, segInfo(f))
			}
		}
	default:
		// No manifest: show the layout a bootstrap would adopt.
		boot, drop := bootstrapManifest(files)
		if len(files) > 0 {
			for _, ms := range boot.Segments {
				rep.Segments = append(rep.Segments, segInfo(ms))
			}
			for _, d := range drop {
				rep.Unlisted = append(rep.Unlisted, segInfo(d))
			}
		}
	}

	if fi, err := os.Stat(filepath.Join(dir, JournalName)); err == nil {
		rep.HasLegacyJournal = true
		rep.LegacyJournalBytes = fi.Size()
	}
	if sn, reason := loadSnapshotFile(dir); sn != nil {
		rep.HasSnapshot = true
		rep.SnapshotKeys = len(sn.keys)
		if age := time.Now().Unix() - sn.unixTime; age >= 0 {
			rep.SnapshotAgeSeconds = age
		}
	} else if reason != "" {
		rep.SnapshotError = reason
	}
	return rep, nil
}

// VerifyReport is the result of a full offline integrity pass.
type VerifyReport struct {
	Segments    int      `json:"segments"`
	Records     int64    `json:"records"` // complete, checksummed records
	LiveKeys    int64    `json:"live_keys"`
	DeadRecords int64    `json:"dead_records"` // superseded + tombstones
	Warnings    []string `json:"warnings,omitempty"`
	Problems    []string `json:"problems,omitempty"`
}

// OK reports whether the directory verified clean: recoverable tail
// damage is a warning, anything that would lose committed data is a
// problem.
func (v *VerifyReport) OK() bool { return len(v.Problems) == 0 }

// Verify replays every committed segment record-by-record (CRC and
// JSON checks), checks the manifest against the files on disk, and
// validates the index snapshot's coverage — all without writing.
func Verify(dir string) (*VerifyReport, error) {
	if _, err := os.Stat(dir); err != nil {
		return nil, fmt.Errorf("store: verify %s: %w", dir, err)
	}
	rep := &VerifyReport{}
	m, merr := loadManifest(dir)
	files, err := scanSegmentFiles(dir)
	if err != nil {
		return nil, err
	}
	if merr != nil {
		rep.Problems = append(rep.Problems, fmt.Sprintf("manifest unreadable (%v); open would rebuild from segment files", merr))
	}
	if m == nil {
		if len(files) == 0 {
			legacy := filepath.Join(dir, JournalName)
			if _, err := os.Stat(legacy); err == nil {
				rep.Warnings = append(rep.Warnings, "pre-segmented layout (legacy journal.vmat); open would migrate it")
				return verifyChain(rep, []string{legacy}, []string{JournalName})
			}
			return rep, nil // empty dir: nothing to verify
		}
		m, _ = bootstrapManifest(files)
		rep.Warnings = append(rep.Warnings, "no manifest; verifying the bootstrap order (id, gen)")
	}

	var paths, names []string
	for _, ms := range m.Segments {
		name := segName(ms.ID, ms.Gen)
		p := filepath.Join(dir, name)
		if _, err := os.Stat(p); err != nil {
			rep.Problems = append(rep.Problems, fmt.Sprintf("manifest lists %s but it is missing", name))
			continue
		}
		paths = append(paths, p)
		names = append(names, name)
	}
	listed := map[[2]int64]bool{}
	for _, ms := range m.Segments {
		listed[[2]int64{ms.ID, ms.Gen}] = true
	}
	for _, f := range files {
		if !listed[[2]int64{f.ID, f.Gen}] {
			rep.Warnings = append(rep.Warnings, fmt.Sprintf("unlisted segment %s; open would delete it as uncommitted", segName(f.ID, f.Gen)))
		}
	}
	if _, err := verifyChain(rep, paths, names); err != nil {
		return nil, err
	}

	// Snapshot: usable means decodable and within the coverage the
	// files can actually back.
	if sn, reason := loadSnapshotFile(dir); reason != "" {
		rep.Warnings = append(rep.Warnings, fmt.Sprintf("index snapshot unusable (%s); open would replay in full", reason))
	} else if sn != nil {
		if len(sn.segs) > len(m.Segments) {
			rep.Warnings = append(rep.Warnings, "index snapshot covers more segments than the manifest; open would replay in full")
		} else {
			for i, ss := range sn.segs {
				ms := m.Segments[i]
				fi, err := os.Stat(filepath.Join(dir, segName(ms.ID, ms.Gen)))
				if ss.id != ms.ID || ss.gen != ms.Gen || err != nil || ss.covered > fi.Size() {
					rep.Warnings = append(rep.Warnings, "index snapshot stale; open would replay in full")
					break
				}
			}
		}
	}
	return rep, nil
}

// verifyChain scans the given journal files in replay order, running
// the put/tombstone state machine and recording damage.
func verifyChain(rep *VerifyReport, paths, names []string) (*VerifyReport, error) {
	live := map[string]bool{}
	for i, p := range paths {
		f, err := os.Open(p)
		if err != nil {
			return nil, fmt.Errorf("store: verify: open %s: %w", p, err)
		}
		fi, err := f.Stat()
		if err != nil {
			f.Close()
			return nil, fmt.Errorf("store: verify: stat %s: %w", p, err)
		}
		off, reason, err := scanFrames(f, journalMagic, func(off int64, payload []byte) error {
			var e Entry
			if jerr := json.Unmarshal(payload, &e); jerr != nil || e.Key == "" {
				return errors.New("undecodable record payload")
			}
			rep.Records++
			switch {
			case e.Tomb:
				delete(live, e.Key)
				rep.DeadRecords++
			case live[e.Key]:
				rep.DeadRecords++
			default:
				live[e.Key] = true
			}
			return nil
		})
		f.Close()
		if err != nil {
			return nil, err
		}
		rep.Segments++
		if reason != "" {
			lost := fi.Size() - off
			msg := fmt.Sprintf("%s corrupt at offset %d (%s), %d bytes affected", names[i], off, reason, lost)
			if i == len(paths)-1 {
				// Tail damage in the active segment is the expected
				// signature of a torn write; open recovers it.
				rep.Warnings = append(rep.Warnings, msg+"; open would truncate (torn tail)")
			} else {
				rep.Problems = append(rep.Problems, msg+" in a sealed segment; open would truncate, losing committed records")
			}
		}
	}
	rep.LiveKeys = int64(len(live))
	return rep, nil
}
